(* A deliberately tiny HTTP/1.0 GET responder for metrics scrapes. One
   accept thread, one request per connection, response then close — a
   Prometheus scraper needs nothing more, and anything more (keep-alive,
   chunking, a real parser) would be dead weight next to the wire
   protocol the actual clients use. *)

type t = {
  fd : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let request_path line =
  (* "GET /metrics HTTP/1.1" — anything else is a 400 *)
  match String.split_on_char ' ' (String.trim line) with
  | [ "GET"; path; _version ] -> Some path
  | _ -> None

(* Read up to the end of the request line; the rest of the request
   (headers) is irrelevant and may be cut off mid-flight. *)
let read_request_line fd =
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 256 in
  let rec go () =
    if Buffer.length buf > 4096 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n -> (
        Buffer.add_subbytes buf chunk 0 n;
        match String.index_opt (Buffer.contents buf) '\n' with
        | Some i -> Some (String.sub (Buffer.contents buf) 0 i)
        | None -> go ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        None
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let answer fd =
  let body =
    match read_request_line fd with
    | None -> http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
    | Some line -> (
      match request_path line with
      | None ->
        http_response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
          "only GET is supported\n"
      | Some path -> (
        match Pref_obs.Export.content path with
        | Some (content_type, payload) ->
          http_response ~status:"200 OK" ~content_type payload
        | None ->
          http_response ~status:"404 Not Found" ~content_type:"text/plain"
            "not found; try /metrics or /metrics.json\n"))
  in
  let n = String.length body in
  let rec write off =
    if off < n then
      match Unix.write_substring fd body off (n - off) with
      | written -> write (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
  in
  write 0

let accept_loop t () =
  Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO 0.25;
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.accept t.fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        loop ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        (* scrapes are rare (seconds apart) and the render is cheap:
           serve inline on the accept thread *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
        (try answer fd with _ -> ());
        (try Unix.close fd with _ -> ());
        loop ()
  in
  loop ()

let start ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t = { fd; bound_port; stop = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (accept_loop t) ());
  t

let port t = t.bound_port

let stop t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Option.iter Thread.join t.thread;
    t.thread <- None;
    try Unix.close t.fd with _ -> ()
  end
