open Pref_relation

exception Framing_error of string

let () =
  Printexc.register_printer (function
    | Framing_error msg -> Some ("Pref_server.Protocol.Framing_error: " ^ msg)
    | _ -> None)

let max_frame = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let is_wait_error = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR -> true
  | _ -> false

let rec read_retry on_wait fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (e, _, _) when is_wait_error e ->
    on_wait ();
    read_retry on_wait fd buf off len

(* The length header is tiny, so byte-at-a-time reads cost nothing
   compared to the payload transfer. *)
let read_header on_wait fd =
  let buf = Bytes.create 1 in
  let rec go acc n =
    if n > 10 then raise (Framing_error "length header too long")
    else
      match read_retry on_wait fd buf 0 1 with
      | 0 ->
        if acc = [] then None
        else raise (Framing_error "eof inside length header")
      | _ ->
        let c = Bytes.get buf 0 in
        if c = '\n' then
          if acc = [] then raise (Framing_error "empty length header")
          else Some (String.init n (fun i -> List.nth (List.rev acc) i))
        else if c >= '0' && c <= '9' then go (c :: acc) (n + 1)
        else raise (Framing_error "non-digit in length header")
  in
  go [] 0

let read_exact on_wait fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off < len then
      match read_retry on_wait fd buf off (len - off) with
      | 0 -> raise (Framing_error "eof inside frame payload")
      | n -> go (off + n)
  in
  go 0;
  Bytes.unsafe_to_string buf

let read_frame ?(on_wait = fun () -> ()) fd =
  match read_header on_wait fd with
  | None -> None
  | Some header -> (
    match int_of_string_opt header with
    | Some len when len >= 0 && len <= max_frame ->
      Some (read_exact on_wait fd len)
    | Some _ ->
      raise (Framing_error (Printf.sprintf "frame length %s too large" header))
    | None -> raise (Framing_error "unreadable frame length"))

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.write_frame: payload too large";
  let msg = Bytes.of_string (Printf.sprintf "%d\n%s" n payload) in
  let total = Bytes.length msg in
  let rec go off =
    if off < total then go (off + Unix.write fd msg off (total - off))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Payload helpers                                                     *)

let split_verb payload =
  match String.index_opt payload '\n' with
  | Some i ->
    ( String.sub payload 0 i,
      String.sub payload (i + 1) (String.length payload - i - 1) )
  | None -> (payload, "")

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* RFC-4180 quoting, matching the CSV loader's [split_line]. *)
let quote_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* Split a CSV body into records on newlines that sit outside quotes, so
   quoted fields may carry embedded newlines across the wire. *)
let split_records body =
  let n = String.length body in
  let records = ref [] in
  let start = ref 0 in
  let in_quotes = ref false in
  for i = 0 to n - 1 do
    match body.[i] with
    | '"' -> in_quotes := not !in_quotes
    | '\n' when not !in_quotes ->
      records := String.sub body !start (i - !start) :: !records;
      start := i + 1
    | _ -> ()
  done;
  if !start < n then records := String.sub body !start (n - !start) :: !records;
  List.rev !records

let ty_of_string = function
  | "bool" -> Some Value.TBool
  | "int" -> Some Value.TInt
  | "float" -> Some Value.TFloat
  | "string" -> Some Value.TStr
  | "date" -> Some Value.TDate
  | _ -> None

(* Floats travel as the shortest decimal that parses back exactly; the
   engine's display rendering ([Value.to_string]) is lossy past 6
   significant digits. *)
let float_wire f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let value_wire = function
  | Value.Null -> "NULL"
  | Value.Float f when not (Float.is_integer f) -> float_wire f
  | v -> Value.to_string v

let value_of_wire ty s =
  if s = "" || s = "NULL" then Some Value.Null else Value.of_string_as ty s

let schema_wire schema =
  String.concat ","
    (List.map
       (fun (name, ty) -> quote_field (name ^ ":" ^ Value.ty_to_string ty))
       schema)

let schema_of_wire line =
  if line = "" then Ok []
  else
    let fields = Csv.split_line line in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
        match String.rindex_opt f ':' with
        | None -> Error (Printf.sprintf "schema field %S has no type" f)
        | Some i -> (
          let name = String.sub f 0 i in
          let ty = String.sub f (i + 1) (String.length f - i - 1) in
          match ty_of_string ty with
          | Some ty -> go ((name, ty) :: acc) rest
          | None -> Error (Printf.sprintf "unknown column type %S" ty)))
    in
    go [] fields

(* ------------------------------------------------------------------ *)
(* Trace context                                                       *)

(* Trace context travels as [trace=<id> span=<id>] words on the verb
   line — both sides parse verb lines word-wise and ignore words they do
   not know, so traced frames remain readable by pre-trace peers. *)
type trace = { trace_id : string; span_id : string }

let valid_trace_id s =
  s <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s

let trace_words = function
  | None -> ""
  | Some { trace_id; span_id } ->
    if not (valid_trace_id trace_id && valid_trace_id span_id) then
      invalid_arg "Protocol: trace ids must be non-empty [A-Za-z0-9._-]"
    else Printf.sprintf " trace=%s span=%s" trace_id span_id

let word_value key w =
  let prefix = key ^ "=" in
  let pl = String.length prefix in
  if String.length w > pl && String.sub w 0 pl = prefix then
    Some (String.sub w pl (String.length w - pl))
  else None

let trace_of_words ws =
  match
    ( List.find_map (word_value "trace") ws,
      List.find_map (word_value "span") ws )
  with
  | Some trace_id, Some span_id when valid_trace_id trace_id && valid_trace_id span_id
    ->
    Some { trace_id; span_id }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type dml_op = Dml_insert | Dml_delete

type request =
  | Query of { sql : string; trace : trace option }
  | Prepare of { name : string; sql : string; trace : trace option }
  | Explain of {
      sql : string;
      analyze : bool;
      json : bool;
      trace : trace option;
    }
  | Set of string * string
  | Stats
  | Metrics of { json : bool }
  | Ping
  | Refine of { term : string; trace : trace option }
  | Subscribe of { sql : string; trace : trace option }
  | Dml of { op : dml_op; table : string; row : string; trace : trace option }

let encode_request = function
  | Query { sql; trace } -> Printf.sprintf "QUERY%s\n%s" (trace_words trace) sql
  | Prepare { name; sql; trace } ->
    Printf.sprintf "PREPARE %s%s\n%s" name (trace_words trace) sql
  | Explain { sql; analyze; json; trace } ->
    Printf.sprintf "EXPLAIN%s%s%s\n%s"
      (if analyze then " ANALYZE" else "")
      (if json then " JSON" else "")
      (trace_words trace) sql
  | Set (key, value) -> Printf.sprintf "SET %s %s" key value
  | Stats -> "STATS"
  | Metrics { json } -> if json then "METRICS JSON" else "METRICS"
  | Ping -> "PING"
  | Refine { term; trace } ->
    Printf.sprintf "REFINE%s\n%s" (trace_words trace) term
  | Subscribe { sql; trace } ->
    Printf.sprintf "SUBSCRIBE%s\n%s" (trace_words trace) sql
  | Dml { op; table; row; trace } ->
    Printf.sprintf "DML %s %s%s\n%s"
      (match op with Dml_insert -> "INSERT" | Dml_delete -> "DELETE")
      table (trace_words trace) row

(* Table-driven request parsing: each verb registers a parser taking the
   remaining verb-line words and the body. Adding a wire verb means one
   constructor, one [register_verb] call and one handler arm — the
   unknown-verb error enumerates whatever is registered. *)

type verb_parser = string list -> string -> (request, string) result

let request_parsers : (string, verb_parser) Hashtbl.t = Hashtbl.create 16

let register_verb name parser = Hashtbl.replace request_parsers name parser

let verbs () =
  Hashtbl.fold (fun v _ acc -> v :: acc) request_parsers []
  |> List.sort compare

let need_body verb rest k =
  if String.trim rest = "" then
    Error (Printf.sprintf "%s needs a statement" verb)
  else k rest

let () =
  register_verb "QUERY" (fun opts rest ->
      need_body "QUERY" rest (fun sql ->
          Ok (Query { sql; trace = trace_of_words opts })));
  register_verb "PREPARE" (fun opts rest ->
      match opts with
      | name :: opts ->
        need_body "PREPARE" rest (fun sql ->
            Ok (Prepare { name; sql; trace = trace_of_words opts }))
      | [] -> Error "PREPARE needs a statement name");
  register_verb "EXPLAIN" (fun opts rest ->
      need_body "EXPLAIN" rest (fun sql ->
          Ok
            (Explain
               {
                 sql;
                 analyze = List.mem "ANALYZE" opts;
                 json = List.mem "JSON" opts;
                 trace = trace_of_words opts;
               })));
  register_verb "SET" (fun opts _rest ->
      match opts with
      | key :: (_ :: _ as value) -> Ok (Set (key, String.concat " " value))
      | _ -> Error "SET needs a key and a value");
  register_verb "STATS" (fun _ _ -> Ok Stats);
  register_verb "METRICS" (fun opts _ ->
      Ok (Metrics { json = List.mem "JSON" opts }));
  register_verb "PING" (fun _ _ -> Ok Ping);
  register_verb "REFINE" (fun opts rest ->
      need_body "REFINE" rest (fun term ->
          Ok (Refine { term; trace = trace_of_words opts })));
  register_verb "SUBSCRIBE" (fun opts rest ->
      need_body "SUBSCRIBE" rest (fun sql ->
          Ok (Subscribe { sql; trace = trace_of_words opts })));
  register_verb "DML" (fun opts rest ->
      match opts with
      | op_word :: table :: opts -> (
        let op =
          match String.uppercase_ascii op_word with
          | "INSERT" -> Some Dml_insert
          | "DELETE" -> Some Dml_delete
          | _ -> None
        in
        match op with
        | None ->
          Error
            (Printf.sprintf "DML operation must be INSERT or DELETE, got %S"
               op_word)
        | Some op ->
          need_body "DML" rest (fun row ->
              Ok (Dml { op; table; row; trace = trace_of_words opts })))
      | _ -> Error "DML needs an operation and a table")

let parse_request payload =
  let verb_line, rest = split_verb payload in
  match words verb_line with
  | verb :: opts -> (
    match Hashtbl.find_opt request_parsers verb with
    | Some parser -> parser opts rest
    | None ->
      Error
        (Printf.sprintf "unknown verb %S (expected one of: %s)" verb
           (String.concat ", " (verbs ()))))
  | [] -> Error "empty request"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

type response =
  | Rows of {
      relation : Relation.t;
      flags : Pref_bmo.Engine.flags;
      served : (int * int) option;
      trace : trace option;
    }
  | Delta of {
      added : Relation.t;
      removed : Relation.t;  (** same schema as [added] *)
      resync : bool;
      trace : trace option;
    }
  | Done of string
  | Pong
  | Stats_resp of (string * string) list
  | Explain_resp of string
  | Metrics_resp of string
  | Err of {
      kind : string;
      retriable : bool;
      message : string;
      trace : trace option;
    }

let served_word = function
  | None -> ""
  | Some (k, n) -> Printf.sprintf " served=%d/%d" k n

let served_of_words ws =
  match List.find_map (word_value "served") ws with
  | None -> None
  | Some s -> (
    match String.split_on_char '/' s with
    | [ k; n ] -> (
      match (int_of_string_opt k, int_of_string_opt n) with
      | Some k, Some n when k >= 0 && n > 0 && k <= n -> Some (k, n)
      | _ -> None)
    | _ -> None)

let add_csv_rows buf rows =
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun v -> quote_field (value_wire v)) (Tuple.to_list row))))
    rows

let encode_response = function
  | Rows { relation; flags; served; trace } ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "ROWS %d%s%s%s%s\n"
         (Relation.cardinality relation)
         (if flags.Pref_bmo.Engine.partial then " partial" else "")
         (if flags.Pref_bmo.Engine.truncated then " truncated" else "")
         (served_word served) (trace_words trace));
    Buffer.add_string buf (schema_wire (Relation.schema relation));
    add_csv_rows buf (Relation.rows relation);
    Buffer.contents buf
  | Delta { added; removed; resync; trace } ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "DELTA %d %d%s%s\n"
         (Relation.cardinality added)
         (Relation.cardinality removed)
         (if resync then " resync" else "")
         (trace_words trace));
    Buffer.add_string buf (schema_wire (Relation.schema added));
    add_csv_rows buf (Relation.rows added);
    add_csv_rows buf (Relation.rows removed);
    Buffer.contents buf
  | Done "" -> "OK"
  | Done text -> "OK " ^ text
  | Pong -> "PONG"
  | Stats_resp kvs ->
    String.concat "\n"
      ("STATS" :: List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
  | Explain_resp body -> "EXPLAIN\n" ^ body
  | Metrics_resp body -> "METRICS\n" ^ body
  | Err { kind; retriable; message; trace } ->
    Printf.sprintf "ERR %s %s%s\n%s" kind
      (if retriable then "retriable" else "fatal")
      (trace_words trace) message

let decode_rows schema records =
  let rec rows acc = function
    | [] -> Ok (List.rev acc)
    | record :: rest -> (
      let fields = Csv.split_line record in
      if List.length fields <> List.length schema then
        Error (Printf.sprintf "row %S does not match the schema" record)
      else
        match
          List.fold_right2
            (fun (_, ty) field acc ->
              match acc, value_of_wire ty field with
              | Some vs, Some v -> Some (v :: vs)
              | _ -> None)
            schema fields (Some [])
        with
        | Some vs -> rows (Tuple.make vs :: acc) rest
        | None ->
          Error
            (Printf.sprintf "row %S does not decode as %s" record
               (schema_wire schema)))
  in
  rows [] records

let parse_rows verb_words body =
  match verb_words with
  | count :: flag_words -> (
    match int_of_string_opt count with
    | None -> Error (Printf.sprintf "unreadable row count %S" count)
    | Some count -> (
      let flags =
        {
          Pref_bmo.Engine.partial = List.mem "partial" flag_words;
          truncated = List.mem "truncated" flag_words;
        }
      in
      let trace = trace_of_words flag_words in
      let served = served_of_words flag_words in
      match split_records body with
      | [] -> Error "ROWS response without a schema line"
      | schema_line :: records -> (
        match schema_of_wire schema_line with
        | Error _ as e -> e
        | Ok schema ->
          if List.length records <> count then
            Error
              (Printf.sprintf "expected %d row(s), got %d" count
                 (List.length records))
          else (
            match decode_rows schema records with
            | Ok tuples ->
              Ok
                (Rows
                   {
                     relation = Relation.make schema tuples;
                     flags;
                     served;
                     trace;
                   })
            | Error _ as e -> e))))
  | [] -> Error "ROWS response without a row count"

let parse_delta verb_words body =
  match verb_words with
  | n_added :: n_removed :: flag_words -> (
    match (int_of_string_opt n_added, int_of_string_opt n_removed) with
    | Some n_added, Some n_removed when n_added >= 0 && n_removed >= 0 -> (
      match split_records body with
      | [] -> Error "DELTA response without a schema line"
      | schema_line :: records -> (
        match schema_of_wire schema_line with
        | Error _ as e -> e
        | Ok schema ->
          if List.length records <> n_added + n_removed then
            Error
              (Printf.sprintf "expected %d delta row(s), got %d"
                 (n_added + n_removed) (List.length records))
          else (
            match decode_rows schema records with
            | Ok tuples ->
              let added = List.filteri (fun i _ -> i < n_added) tuples in
              let removed = List.filteri (fun i _ -> i >= n_added) tuples in
              Ok
                (Delta
                   {
                     added = Relation.make schema added;
                     removed = Relation.make schema removed;
                     resync = List.mem "resync" flag_words;
                     trace = trace_of_words flag_words;
                   })
            | Error _ as e -> e)))
    | _ -> Error "unreadable DELTA counts")
  | _ -> Error "DELTA response needs added and removed counts"

let parse_response payload =
  let verb_line, rest = split_verb payload in
  match words verb_line with
  | "ROWS" :: vw -> parse_rows vw rest
  | "DELTA" :: vw -> parse_delta vw rest
  | "OK" :: text -> Ok (Done (String.concat " " text))
  | [ "PONG" ] -> Ok Pong
  | "EXPLAIN" :: _ -> Ok (Explain_resp rest)
  | "METRICS" :: _ -> Ok (Metrics_resp rest)
  | [ "STATS" ] ->
    let kvs =
      List.filter_map
        (fun line ->
          if line = "" then None
          else
            match String.index_opt line '=' with
            | Some i ->
              Some
                ( String.sub line 0 i,
                  String.sub line (i + 1) (String.length line - i - 1) )
            | None -> Some (line, ""))
        (String.split_on_char '\n' rest)
    in
    Ok (Stats_resp kvs)
  | "ERR" :: kind :: how :: extra ->
    Ok
      (Err
         {
           kind;
           retriable = how = "retriable";
           message = rest;
           trace = trace_of_words extra;
         })
  | verb :: _ -> Error (Printf.sprintf "unknown response verb %S" verb)
  | [] -> Error "empty response"
