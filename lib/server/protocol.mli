(** The Preference SQL wire protocol: length-prefixed frames carrying a
    line-oriented payload.

    A frame is the payload's byte length in ASCII decimal, a newline,
    then exactly that many payload bytes:

    {v 23\nQUERY\nSELECT * FROM car v}

    The payload's first line is the verb. Requests:

    - [QUERY [trace=<id> span=<id>]\n<sql>] — execute Preference SQL (or
      [@name] for a prepared statement)
    - [PREPARE <name> [trace words]\n<sql>] — parse and store a statement
    - [EXPLAIN [ANALYZE] [JSON] [trace words]\n<sql>] — explain the
      statement's plan instead of answering it
    - [SET <key> <value>] — update one engine knob ({!Pref_bmo.Engine.set})
    - [STATS] — server, session and engine counters, with histogram
      summaries as [hist.<name>.<count|sum|p50|p90|p99>] keys
    - [METRICS [JSON]] — the whole metrics registry in Prometheus text
      exposition format (or as a JSON snapshot)
    - [PING] — liveness probe

    Responses:

    - [ROWS <n> [partial] [truncated] [served=k/n] [trace words]\n<schema>\n<csv rows>]
      — a result relation; the schema line is comma-separated [name:type]
      fields and rows are RFC-4180 CSV in schema column order. [partial]
      marks a deadline-degraded (sound but incomplete) BMO set,
      [truncated] a row-capped one, and [served=k/n] (router responses
      only) says [k] of [n] shards contributed.
    - [OK <text>] — acknowledgement
    - [PONG]
    - [STATS\n<key>=<value> lines]
    - [EXPLAIN\n<plan text or JSON>]
    - [METRICS\n<exposition text or JSON>]
    - [ERR <kind> <retriable|fatal> [trace words]\n<message>] — [retriable]
      means the same request may succeed later (admission-control
      rejections: [busy], [draining]); [fatal] errors will fail again
      unchanged.

    Trace context ({!trace}) rides as [trace=<id> span=<id>] words on the
    verb line of QUERY / PREPARE / EXPLAIN requests, and is echoed the
    same way on the matching ROWS / ERR response. Verb lines are parsed
    word-wise on both sides with unknown words ignored, so traced frames
    interoperate with pre-trace peers in either direction.

    Framing errors (no length line, a non-numeric or oversized length)
    raise {!Framing_error}: the stream cannot be resynchronised, so the
    peer must close the connection. A syntactically valid frame with an
    unparsable payload is recoverable — it yields [Error] from the parse
    functions and an [ERR proto] response, and the connection lives on. *)

open Pref_relation

exception Framing_error of string

val max_frame : int
(** Upper bound on a frame's payload size (16 MiB); bigger lengths raise
    {!Framing_error} on read and [Invalid_argument] on write. *)

(** {1 Frames} *)

val read_frame : ?on_wait:(unit -> unit) -> Unix.file_descr -> string option
(** Read one frame; [None] on a clean EOF at a frame boundary. EOF
    mid-frame, a malformed header, or an oversized length raise
    {!Framing_error}. When the descriptor has a receive timeout,
    [on_wait] runs on every timeout tick (raise from it to abort — the
    server's drain check); by default timeouts just retry. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, handling short writes. *)

(** {1 Trace context} *)

type trace = { trace_id : string; span_id : string }
(** Client-generated end-to-end trace context. Ids are non-empty
    [A-Za-z0-9._-] strings (they travel as verb-line words, so no
    whitespace); encoding a trace with other characters raises
    [Invalid_argument], and malformed incoming trace words parse as no
    trace rather than an error. *)

val trace_of_words : string list -> trace option
(** Extract [trace=]/[span=] words (exposed for tests). *)

(** {1 Requests} *)

type request =
  | Query of { sql : string; trace : trace option }
  | Prepare of { name : string; sql : string; trace : trace option }
  | Explain of {
      sql : string;
      analyze : bool;
      json : bool;
      trace : trace option;
    }
  | Set of string * string
  | Stats
  | Metrics of { json : bool }
  | Ping

val encode_request : request -> string
val parse_request : string -> (request, string) result

(** {1 Responses} *)

type response =
  | Rows of {
      relation : Relation.t;
      flags : Pref_bmo.Engine.flags;
      served : (int * int) option;
          (** [(k, n)] when a router answered from [k] of [n] shards; rides
              as a [served=k/n] verb-line word. [None] from a single node. *)
      trace : trace option;  (** request trace, echoed *)
    }
  | Done of string
  | Pong
  | Stats_resp of (string * string) list
  | Explain_resp of string  (** plan rendering: text lines, or JSON *)
  | Metrics_resp of string  (** Prometheus exposition text, or JSON *)
  | Err of {
      kind : string;
      retriable : bool;
      message : string;
      trace : trace option;  (** request trace, echoed *)
    }

val encode_response : response -> string
val parse_response : string -> (response, string) result
(** Round-trip inverse of {!encode_response} up to value rendering:
    floats travel as shortest-exact decimals, so relations survive the
    wire unchanged. *)

(** {1 Value rendering}

    Exposed for the shell's remote-result display and the protocol
    tests. *)

val float_wire : float -> string
(** Shortest decimal rendering that parses back to exactly the same
    float ([Value.to_string] is lossy past 6 significant digits). *)

val value_wire : Pref_relation.Value.t -> string
(** [Null] renders as [NULL]; empty strings are indistinguishable from
    [Null] on the wire. *)

val value_of_wire :
  Pref_relation.Value.ty -> string -> Pref_relation.Value.t option
