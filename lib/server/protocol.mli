(** The Preference SQL wire protocol: length-prefixed frames carrying a
    line-oriented payload.

    A frame is the payload's byte length in ASCII decimal, a newline,
    then exactly that many payload bytes:

    {v 23\nQUERY\nSELECT * FROM car v}

    The payload's first line is the verb. Requests:

    - [QUERY [trace=<id> span=<id>]\n<sql>] — execute Preference SQL (or
      [@name] for a prepared statement)
    - [PREPARE <name> [trace words]\n<sql>] — parse and store a statement
    - [EXPLAIN [ANALYZE] [JSON] [trace words]\n<sql>] — explain the
      statement's plan instead of answering it
    - [SET <key> <value>] — update one engine knob ({!Pref_bmo.Engine.set})
    - [STATS] — server, session and engine counters, with histogram
      summaries as [hist.<name>.<count|sum|p50|p90|p99>] keys
    - [METRICS [JSON]] — the whole metrics registry in Prometheus text
      exposition format (or as a JSON snapshot)
    - [PING] — liveness probe
    - [REFINE [trace words]\n<term>] — revise the session's last
      preference statement to the bare preference [term]
      ({!Pref_engine.Session.refine})
    - [SUBSCRIBE [trace words]\n<sql>] — answer the statement once
      (a ROWS snapshot), then keep the connection open streaming DELTA
      frames as DML changes the result
    - [DML INSERT|DELETE <table> [trace words]\n<csv row>] — single-row
      table mutation; the row is RFC-4180 CSV in the table's column order

    A verb unknown to the receiver yields an [ERR proto] whose message
    lists the registered verbs. The verb table is extensible
    ({!register_verb}); the router registers no extra verbs but answers
    the same ten.

    Responses:

    - [ROWS <n> [partial] [truncated] [served=k/n] [trace words]\n<schema>\n<csv rows>]
      — a result relation; the schema line is comma-separated [name:type]
      fields and rows are RFC-4180 CSV in schema column order. [partial]
      marks a deadline-degraded (sound but incomplete) BMO set,
      [truncated] a row-capped one, and [served=k/n] (router responses
      only) says [k] of [n] shards contributed.
    - [DELTA <n_added> <n_removed> [resync] [trace words]\n<schema>\n<csv rows>]
      — a subscription update: the first [n_added] rows entered the BMO
      set, the next [n_removed] left it. [resync] marks a full snapshot
      replacing all previously streamed state (sent after subscriber
      backpressure overflow — discard your view and start from this
      frame's added rows).
    - [OK <text>] — acknowledgement
    - [PONG]
    - [STATS\n<key>=<value> lines]
    - [EXPLAIN\n<plan text or JSON>]
    - [METRICS\n<exposition text or JSON>]
    - [ERR <kind> <retriable|fatal> [trace words]\n<message>] — [retriable]
      means the same request may succeed later (admission-control
      rejections: [busy], [draining]); [fatal] errors will fail again
      unchanged.

    Trace context ({!trace}) rides as [trace=<id> span=<id>] words on the
    verb line of QUERY / PREPARE / EXPLAIN requests, and is echoed the
    same way on the matching ROWS / ERR response. Verb lines are parsed
    word-wise on both sides with unknown words ignored, so traced frames
    interoperate with pre-trace peers in either direction.

    Framing errors (no length line, a non-numeric or oversized length)
    raise {!Framing_error}: the stream cannot be resynchronised, so the
    peer must close the connection. A syntactically valid frame with an
    unparsable payload is recoverable — it yields [Error] from the parse
    functions and an [ERR proto] response, and the connection lives on. *)

open Pref_relation

exception Framing_error of string

val max_frame : int
(** Upper bound on a frame's payload size (16 MiB); bigger lengths raise
    {!Framing_error} on read and [Invalid_argument] on write. *)

(** {1 Frames} *)

val read_frame : ?on_wait:(unit -> unit) -> Unix.file_descr -> string option
(** Read one frame; [None] on a clean EOF at a frame boundary. EOF
    mid-frame, a malformed header, or an oversized length raise
    {!Framing_error}. When the descriptor has a receive timeout,
    [on_wait] runs on every timeout tick (raise from it to abort — the
    server's drain check); by default timeouts just retry. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, handling short writes. *)

(** {1 Trace context} *)

type trace = { trace_id : string; span_id : string }
(** Client-generated end-to-end trace context. Ids are non-empty
    [A-Za-z0-9._-] strings (they travel as verb-line words, so no
    whitespace); encoding a trace with other characters raises
    [Invalid_argument], and malformed incoming trace words parse as no
    trace rather than an error. *)

val trace_of_words : string list -> trace option
(** Extract [trace=]/[span=] words (exposed for tests). *)

(** {1 Requests} *)

type dml_op = Dml_insert | Dml_delete

type request =
  | Query of { sql : string; trace : trace option }
  | Prepare of { name : string; sql : string; trace : trace option }
  | Explain of {
      sql : string;
      analyze : bool;
      json : bool;
      trace : trace option;
    }
  | Set of string * string
  | Stats
  | Metrics of { json : bool }
  | Ping
  | Refine of { term : string; trace : trace option }
  | Subscribe of { sql : string; trace : trace option }
  | Dml of { op : dml_op; table : string; row : string; trace : trace option }
      (** [row] is one RFC-4180 CSV record in the table's column order;
          the server decodes it against the table's schema. *)

val encode_request : request -> string

val parse_request : string -> (request, string) result
(** Dispatches on the verb through the registered parser table; an
    unregistered verb's error message lists {!verbs}. *)

(** {1 Verb registry}

    [parse_request] is table-driven: each verb maps to a parser taking
    the remaining verb-line words and the body (the payload after the
    verb line, [""] when absent). The built-in verbs are pre-registered;
    embedders may add their own before serving. *)

val register_verb :
  string -> (string list -> string -> (request, string) result) -> unit
(** [register_verb name parse] adds (or replaces) the parser for
    verb [name] (matched case-sensitively, by convention uppercase). *)

val verbs : unit -> string list
(** The registered verb names, sorted. *)

(** {1 Responses} *)

type response =
  | Rows of {
      relation : Relation.t;
      flags : Pref_bmo.Engine.flags;
      served : (int * int) option;
          (** [(k, n)] when a router answered from [k] of [n] shards; rides
              as a [served=k/n] verb-line word. [None] from a single node. *)
      trace : trace option;  (** request trace, echoed *)
    }
  | Delta of {
      added : Relation.t;
      removed : Relation.t;
      resync : bool;
          (** full snapshot after backpressure overflow: [added] is the
              whole current BMO set; discard previously streamed state *)
      trace : trace option;  (** subscription trace, echoed on every frame *)
    }
  | Done of string
  | Pong
  | Stats_resp of (string * string) list
  | Explain_resp of string  (** plan rendering: text lines, or JSON *)
  | Metrics_resp of string  (** Prometheus exposition text, or JSON *)
  | Err of {
      kind : string;
      retriable : bool;
      message : string;
      trace : trace option;  (** request trace, echoed *)
    }

val encode_response : response -> string
val parse_response : string -> (response, string) result
(** Round-trip inverse of {!encode_response} up to value rendering:
    floats travel as shortest-exact decimals, so relations survive the
    wire unchanged. *)

(** {1 Value rendering}

    Exposed for the shell's remote-result display and the protocol
    tests. *)

val float_wire : float -> string
(** Shortest decimal rendering that parses back to exactly the same
    float ([Value.to_string] is lossy past 6 significant digits). *)

val value_wire : Pref_relation.Value.t -> string
(** [Null] renders as [NULL]; empty strings are indistinguishable from
    [Null] on the wire. *)

val value_of_wire :
  Pref_relation.Value.ty -> string -> Pref_relation.Value.t option

val decode_rows : Schema.t -> string list -> (Tuple.t list, string) result
(** Decode CSV records against a schema — the row codec shared by ROWS /
    DELTA parsing and the server's DML handler. *)
