(** Minimal HTTP listener serving the metrics registry for scrapers.

    [GET /metrics] answers {!Pref_obs.Export.prometheus} with content
    type [text/plain; version=0.0.4; charset=utf-8]; [GET /metrics.json]
    the JSON snapshot; other paths 404, other methods 405. HTTP/1.0, one
    request per connection, served directly on the accept thread —
    scrapes arrive seconds apart and render in microseconds, so there is
    nothing to parallelise. Started by [prefserve --metrics-port]. *)

type t

val start : ?host:string -> port:int -> unit -> t
(** Bind and start the accept thread. [port = 0] picks an ephemeral
    port — read it back with {!port} (the tests do). Raises
    [Unix.Unix_error] when the bind fails. *)

val port : t -> int

val stop : t -> unit
(** Stop accepting and join the thread; idempotent. The accept loop
    polls its stop flag every 0.25 s, so this returns quickly. *)
