(** Multi-client soak driver: hammer a server with concurrent clients
    and account for every single response.

    Each client runs on its own thread with its own connection, executes
    its share of queries round-robin over the statement list, retries
    retriable admission rejections, and tallies outcomes. The aggregate
    report makes loss visible: [sent = ok + degraded_included + errors]
    must hold or the server dropped or duplicated a response — the soak
    test and the CI smoke job assert exactly that. *)

type report = {
  clients : int;
  sent : int;  (** queries that received any response *)
  ok : int;  (** complete ROWS responses *)
  degraded : int;  (** ROWS responses flagged [partial] *)
  errors : int;  (** ERR responses after retries were exhausted *)
  retried : int;  (** retriable rejections that were retried *)
  traced : int;
      (** first-attempt ROWS responses whose trace context came back —
          equals the first-attempt successes against a trace-aware
          server, 0 against a pre-trace one *)
  short : int;
      (** ROWS responses served from fewer shards than registered
          ([served=k/n] with [k < n]) — a router degrading gracefully
          around a down backend; always 0 against a single server *)
  elapsed_s : float;
  qps : float;  (** sent / elapsed *)
  first_error : string option;
      (** the first error message any client saw, for diagnostics *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  host:string ->
  port:int ->
  clients:int ->
  queries_per_client:int ->
  ?setup:(Client.t -> unit) ->
  statements:string list ->
  unit ->
  (report, string) result
(** [Error] when a connection cannot be established or a client hits a
    protocol-level failure (corrupt frame, unexpected response) — the
    soak treats those as fatal, unlike query-level [ERR] responses which
    are counted. [setup] runs once per fresh connection (e.g. [SET]
    knobs) before its query loop. *)
