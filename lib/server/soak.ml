type report = {
  clients : int;
  sent : int;
  ok : int;
  degraded : int;
  errors : int;
  retried : int;
  traced : int;
  short : int;
  elapsed_s : float;
  qps : float;
  first_error : string option;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%d client(s): %d sent, %d ok, %d degraded, %d error(s), %d retried, %d \
     traced, %d short in %.3fs (%.0f qps)%s"
    r.clients r.sent r.ok r.degraded r.errors r.retried r.traced r.short
    r.elapsed_s r.qps
    (match r.first_error with
    | Some e -> "; first error: " ^ e
    | None -> "")

type tally = {
  mutable t_sent : int;
  mutable t_ok : int;
  mutable t_degraded : int;
  mutable t_errors : int;
  mutable t_retried : int;
  mutable t_traced : int;
  mutable t_short : int;
  mutable t_first_error : string option;
  mutable t_fatal : string option;
}

let client_loop ~host ~port ~queries ~setup ~statements tally =
  match Client.connect ~host ~port () with
  | exception e -> tally.t_fatal <- Some (Printexc.to_string e)
  | client ->
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        try
          setup client;
          let n_stmts = Array.length statements in
          for i = 0 to queries - 1 do
            if tally.t_fatal = None then begin
              let sql = statements.(i mod n_stmts) in
              (* count a retry by comparing attempts: query_retry hides
                 them, so probe once unretried first. Every query carries
                 a fresh trace; a matching echo proves the server
                 round-tripped the context. *)
              let count_rows (reply : Client.reply) =
                tally.t_sent <- tally.t_sent + 1;
                (match reply.Client.served with
                | Some (k, n) when k < n -> tally.t_short <- tally.t_short + 1
                | _ -> ());
                if reply.Client.flags.Pref_bmo.Engine.partial then
                  tally.t_degraded <- tally.t_degraded + 1
                else tally.t_ok <- tally.t_ok + 1
              in
              match Client.query_reply ~trace:(Client.fresh_trace ()) client sql with
              | Ok reply ->
                if reply.Client.echoed <> None then
                  tally.t_traced <- tally.t_traced + 1;
                count_rows reply
              | Error msg
                when String.length msg >= 6
                     && (String.sub msg 0 6 = "[busy]"
                        || String.sub msg 0 6 = "[drain") -> (
                tally.t_retried <- tally.t_retried + 1;
                (* retriable means "will succeed later": a soak client
                   persists, so only genuine failures surface as errors *)
                match
                  Client.query_reply_retry ~attempts:10_000 ~backoff_s:0.001
                    client sql
                with
                | Ok reply -> count_rows reply
                | Error msg ->
                  tally.t_sent <- tally.t_sent + 1;
                  tally.t_errors <- tally.t_errors + 1;
                  if tally.t_first_error = None then
                    tally.t_first_error <- Some msg)
              | Error msg ->
                tally.t_sent <- tally.t_sent + 1;
                tally.t_errors <- tally.t_errors + 1;
                if tally.t_first_error = None then
                  tally.t_first_error <- Some msg
            end
          done
        with e -> tally.t_fatal <- Some (Printexc.to_string e))

let run ~host ~port ~clients ~queries_per_client ?(setup = fun _ -> ())
    ~statements () =
  if clients < 1 then invalid_arg "Soak.run: clients must be >= 1";
  if statements = [] then invalid_arg "Soak.run: no statements";
  let statements = Array.of_list statements in
  let tallies =
    Array.init clients (fun _ ->
        {
          t_sent = 0;
          t_ok = 0;
          t_degraded = 0;
          t_errors = 0;
          t_retried = 0;
          t_traced = 0;
          t_short = 0;
          t_first_error = None;
          t_fatal = None;
        })
  in
  let t0 = Pref_obs.Clock.now_ns () in
  let threads =
    Array.map
      (fun tally ->
        Thread.create
          (fun () ->
            client_loop ~host ~port ~queries:queries_per_client ~setup
              ~statements tally)
          ())
      tallies
  in
  Array.iter Thread.join threads;
  let elapsed_s =
    Int64.to_float (Int64.sub (Pref_obs.Clock.now_ns ()) t0) /. 1e9
  in
  match
    Array.fold_left
      (fun acc tally -> match acc with Some _ -> acc | None -> tally.t_fatal)
      None tallies
  with
  | Some fatal -> Error fatal
  | None ->
    let sum f = Array.fold_left (fun a tally -> a + f tally) 0 tallies in
    let sent = sum (fun x -> x.t_sent) in
    Ok
      {
        clients;
        sent;
        ok = sum (fun x -> x.t_ok);
        degraded = sum (fun x -> x.t_degraded);
        errors = sum (fun x -> x.t_errors);
        retried = sum (fun x -> x.t_retried);
        traced = sum (fun x -> x.t_traced);
        short = sum (fun x -> x.t_short);
        elapsed_s;
        qps = (if elapsed_s > 0. then float_of_int sent /. elapsed_s else 0.);
        first_error =
          Array.fold_left
            (fun acc tally ->
              match acc with Some _ -> acc | None -> tally.t_first_error)
            None tallies;
      }
