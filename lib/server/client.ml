type t = { fd : Unix.file_descr; mutable open_ : bool }

exception Closed

let () =
  Printexc.register_printer (function
    | Closed -> Some "Pref_server.Client.Closed"
    | _ -> None)

let connect ~host ~port =
  (* a server vanishing mid-request must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
    try Unix.close t.fd with _ -> ()
  end

let request t req =
  Protocol.write_frame t.fd (Protocol.encode_request req);
  match Protocol.read_frame t.fd with
  | None -> raise Closed
  | Some payload -> (
    match Protocol.parse_response payload with
    | Ok resp -> resp
    | Error msg -> failwith ("unparsable response: " ^ msg))

let ping t = match request t Protocol.Ping with
  | Protocol.Pong -> true
  | _ -> false

(* Trace ids only need to be unique enough to stitch a client call to
   the server's span dumps; a pid/time hash plus a process-wide sequence
   is plenty, and keeps us off any RNG state the application may seed. *)
let trace_seq = Atomic.make 1

let fresh_trace () =
  let seq = Atomic.fetch_and_add trace_seq 1 in
  let seed = Hashtbl.hash (Unix.getpid (), Unix.gettimeofday (), seq) in
  {
    Protocol.trace_id = Printf.sprintf "c%08x.%x" (seed land 0xffffffff) seq;
    span_id = Printf.sprintf "s%x" seq;
  }

let render_err kind message = Printf.sprintf "[%s] %s" kind message

let query ?trace t sql =
  match request t (Protocol.Query { sql; trace }) with
  | Protocol.Rows { relation; flags; _ } -> Ok (relation, flags)
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to QUERY"

let query_traced t sql =
  let trace = fresh_trace () in
  match request t (Protocol.Query { sql; trace = Some trace }) with
  | Protocol.Rows { relation; flags; trace = echoed } ->
    Ok (relation, flags, echoed)
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to QUERY"

let query_retry ?(attempts = 50) ?(backoff_s = 0.002) ?trace t sql =
  let rec go n =
    match request t (Protocol.Query { sql; trace }) with
    | Protocol.Rows { relation; flags; _ } -> Ok (relation, flags)
    | Protocol.Err { retriable = true; kind; message; _ } ->
      if n <= 1 then Error (render_err kind message)
      else begin
        Thread.delay backoff_s;
        go (n - 1)
      end
    | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
    | _ -> Error "[proto] unexpected response to QUERY"
  in
  go (max 1 attempts)

let explain ?(analyze = false) ?(json = false) ?trace t sql =
  match request t (Protocol.Explain { sql; analyze; json; trace }) with
  | Protocol.Explain_resp body -> Ok body
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to EXPLAIN"

let metrics ?(json = false) t =
  match request t (Protocol.Metrics { json }) with
  | Protocol.Metrics_resp body -> Ok body
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to METRICS"

let set t ~key ~value =
  match request t (Protocol.Set (key, value)) with
  | Protocol.Done line -> Ok line
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to SET"

let prepare t ~name sql =
  match request t (Protocol.Prepare { name; sql; trace = None }) with
  | Protocol.Done line -> Ok line
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to PREPARE"

let stats t =
  match request t Protocol.Stats with
  | Protocol.Stats_resp kvs -> Ok kvs
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to STATS"
