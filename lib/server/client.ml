open Pref_relation

type t = {
  fd : Unix.file_descr;
  mutable open_ : bool;
  timeout_s : float option;
}

exception Closed
exception Timeout
exception Response_lost of exn

let () =
  Printexc.register_printer (function
    | Closed -> Some "Pref_server.Client.Closed"
    | Timeout -> Some "Pref_server.Client.Timeout"
    | Response_lost e ->
      Some ("Pref_server.Client.Response_lost(" ^ Printexc.to_string e ^ ")")
    | _ -> None)

let connect ?timeout_s ~host ~port () =
  (* a server vanishing mid-request must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     (* a receive timeout makes reads tick every 250 ms so [request] can
        check its deadline without committing to one blocking read *)
     if timeout_s <> None then
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; open_ = true; timeout_s }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
    try Unix.close t.fd with _ -> ()
  end

(* Failures before the request frame is fully written are safe to retry
   — the server never saw the request. Once the frame is on the wire the
   server may already be executing it, so every later failure (EOF,
   deadline, framing corruption) is wrapped in [Response_lost]: retrying
   it blindly could execute the statement twice. *)
let request t req =
  Protocol.write_frame t.fd (Protocol.encode_request req);
  let on_wait =
    match t.timeout_s with
    | None -> fun () -> ()
    | Some limit ->
      let deadline = Unix.gettimeofday () +. limit in
      fun () -> if Unix.gettimeofday () > deadline then raise Timeout
  in
  match
    match Protocol.read_frame ~on_wait t.fd with
    | None -> raise Closed
    | Some payload -> (
      match Protocol.parse_response payload with
      | Ok resp -> resp
      | Error msg -> failwith ("unparsable response: " ^ msg))
  with
  | resp -> resp
  | exception e -> raise (Response_lost e)

let ping t = match request t Protocol.Ping with
  | Protocol.Pong -> true
  | _ -> false

(* Trace ids only need to be unique enough to stitch a client call to
   the server's span dumps; a pid/time hash plus a process-wide sequence
   is plenty, and keeps us off any RNG state the application may seed. *)
let trace_seq = Atomic.make 1

let fresh_trace () =
  let seq = Atomic.fetch_and_add trace_seq 1 in
  let seed = Hashtbl.hash (Unix.getpid (), Unix.gettimeofday (), seq) in
  {
    Protocol.trace_id = Printf.sprintf "c%08x.%x" (seed land 0xffffffff) seq;
    span_id = Printf.sprintf "s%x" seq;
  }

let render_err kind message = Printf.sprintf "[%s] %s" kind message

type reply = {
  rel : Relation.t;
  flags : Pref_bmo.Engine.flags;
  served : (int * int) option;
  echoed : Protocol.trace option;
}

let reply_of_response = function
  | Protocol.Rows { relation; flags; served; trace } ->
    Ok { rel = relation; flags; served; echoed = trace }
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to QUERY"

let query_reply ?trace t sql =
  reply_of_response (request t (Protocol.Query { sql; trace }))

let query_reply_retry ?(attempts = 50) ?(backoff_s = 0.002) ?trace t sql =
  let rec go n =
    match request t (Protocol.Query { sql; trace }) with
    | Protocol.Err { retriable = true; _ } when n > 1 ->
      Thread.delay backoff_s;
      go (n - 1)
    | resp -> reply_of_response resp
  in
  go (max 1 attempts)

let query ?trace t sql =
  match query_reply ?trace t sql with
  | Ok { rel; flags; _ } -> Ok (rel, flags)
  | Error msg -> Error msg

let query_traced t sql =
  let trace = fresh_trace () in
  match query_reply ~trace t sql with
  | Ok { rel; flags; echoed; _ } -> Ok (rel, flags, echoed)
  | Error msg -> Error msg

let query_retry ?attempts ?backoff_s ?trace t sql =
  match query_reply_retry ?attempts ?backoff_s ?trace t sql with
  | Ok { rel; flags; _ } -> Ok (rel, flags)
  | Error msg -> Error msg

let explain ?(analyze = false) ?(json = false) ?trace t sql =
  match request t (Protocol.Explain { sql; analyze; json; trace }) with
  | Protocol.Explain_resp body -> Ok body
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to EXPLAIN"

let metrics ?(json = false) t =
  match request t (Protocol.Metrics { json }) with
  | Protocol.Metrics_resp body -> Ok body
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to METRICS"

let set t ~key ~value =
  match request t (Protocol.Set (key, value)) with
  | Protocol.Done line -> Ok line
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to SET"

let prepare t ~name sql =
  match request t (Protocol.Prepare { name; sql; trace = None }) with
  | Protocol.Done line -> Ok line
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to PREPARE"

let stats t =
  match request t Protocol.Stats with
  | Protocol.Stats_resp kvs -> Ok kvs
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to STATS"

let refine ?trace t term =
  match request t (Protocol.Refine { term; trace }) with
  | Protocol.Rows { relation; flags; _ } -> Ok (relation, flags)
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to REFINE"

let insert ?trace t ~table row =
  match request t (Protocol.Dml { op = Protocol.Dml_insert; table; row; trace })
  with
  | Protocol.Done line -> Ok line
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to DML"

let delete ?trace t ~table row =
  match request t (Protocol.Dml { op = Protocol.Dml_delete; table; row; trace })
  with
  | Protocol.Done line -> Ok line
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to DML"

(* ------------------------------------------------------------------ *)
(* Subscriptions: after SUBSCRIBE is accepted the connection carries a
   one-way DELTA stream — [next_delta] blocks for the next frame, and no
   other request may use the connection again. *)

type delta = {
  d_added : Relation.t;
  d_removed : Relation.t;
  d_resync : bool;
}

let subscribe ?trace t sql =
  match request t (Protocol.Subscribe { sql; trace }) with
  | Protocol.Rows { relation; flags; _ } -> Ok (relation, flags)
  | Protocol.Err { kind; message; _ } -> Error (render_err kind message)
  | _ -> Error "[proto] unexpected response to SUBSCRIBE"

let next_delta ?timeout_s t =
  (* reads only tick (and can time out) when the socket has a receive
     timeout; arm one if the connection was opened without *)
  if timeout_s <> None && t.timeout_s = None then
    Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO 0.25;
  let on_wait =
    match timeout_s with
    | None -> fun () -> ()
    | Some limit ->
      let deadline = Unix.gettimeofday () +. limit in
      fun () -> if Unix.gettimeofday () > deadline then raise Timeout
  in
  match Protocol.read_frame ~on_wait t.fd with
  | None -> None
  | Some payload -> (
    match Protocol.parse_response payload with
    | Ok (Protocol.Delta { added; removed; resync; _ }) ->
      Some { d_added = added; d_removed = removed; d_resync = resync }
    | Ok _ -> failwith "unexpected non-DELTA frame on a subscription"
    | Error msg -> failwith ("unparsable delta frame: " ^ msg))
