(** Blocking client for the Preference SQL wire protocol — used by the
    shell's [\connect], the soak driver, and the tests.

    One request is in flight at a time; every call blocks until the
    response frame arrives. Not thread-safe: give each thread its own
    client. *)

open Pref_relation

type t

exception Closed
(** The server closed the connection (EOF where a response was due). *)

exception Timeout
(** No response within the client's [timeout_s] (see {!connect}). *)

exception Response_lost of exn
(** A failure {e after} the request frame was fully written — {!Closed},
    {!Timeout}, {!Protocol.Framing_error}, [Failure] on an unparsable
    payload, or a socket error mid-read. The server may already have
    executed the request, so the caller must not silently resend it;
    failures before the frame is on the wire raise unwrapped and are
    safe to retry. *)

val connect : ?timeout_s:float -> host:string -> port:int -> unit -> t
(** Raises [Unix.Unix_error] when the connection is refused. With
    [timeout_s], each request raises {!Response_lost} {!Timeout} when no
    response arrives within that many seconds (checked every 250 ms). *)

val close : t -> unit
(** Idempotent. *)

val request : t -> Protocol.request -> Protocol.response
(** Send one request and read its response. Failures after the frame is
    written arrive wrapped in {!Response_lost} (carrying {!Closed} on
    EOF, {!Protocol.Framing_error} on a corrupt stream, or [Failure]
    when the response payload does not parse); after any of these the
    connection is unusable and should be closed. *)

(** {1 Convenience wrappers} *)

val ping : t -> bool
(** [true] iff the server answers PONG. *)

val fresh_trace : unit -> Protocol.trace
(** A new client-side trace context: process-unique ids built from a
    pid/time hash and a sequence number. *)

val query :
  ?trace:Protocol.trace ->
  t ->
  string ->
  (Relation.t * Pref_bmo.Engine.flags, string) result
(** [Error] carries the server's rendered error message (including its
    kind). Retriable rejections are surfaced as errors too — see
    {!query_retry}. [trace] rides the request's verb line and is stamped
    onto the server-side span tree. *)

val query_traced :
  t ->
  string ->
  (Relation.t * Pref_bmo.Engine.flags * Protocol.trace option, string) result
(** {!query} with a {!fresh_trace} attached; the third component is the
    trace the server echoed on the ROWS frame ([None] against a
    pre-trace server — old peers ignore the trace words). *)

val query_retry :
  ?attempts:int -> ?backoff_s:float -> ?trace:Protocol.trace -> t -> string ->
  (Relation.t * Pref_bmo.Engine.flags, string) result
(** Like {!query}, but a retriable [ERR] (admission-control [busy] /
    [draining]) is retried up to [attempts] times (default 50) with a
    fixed [backoff_s] sleep (default 2 ms) between tries. Only explicit
    retriable rejections are retried — the server answered without
    executing, so a resend cannot double-execute; connection failures
    propagate as exceptions. *)

type reply = {
  rel : Relation.t;
  flags : Pref_bmo.Engine.flags;
  served : (int * int) option;  (** router responses: shards answered / total *)
  echoed : Protocol.trace option;  (** request trace, echoed by the server *)
}
(** Everything a ROWS frame carries, for callers (the soak driver, the
    router tests) that need more than the relation + flags pair. *)

val query_reply :
  ?trace:Protocol.trace -> t -> string -> (reply, string) result

val query_reply_retry :
  ?attempts:int -> ?backoff_s:float -> ?trace:Protocol.trace -> t -> string ->
  (reply, string) result
(** {!query_reply} with {!query_retry}'s retriable-rejection loop. *)

val explain :
  ?analyze:bool ->
  ?json:bool ->
  ?trace:Protocol.trace ->
  t ->
  string ->
  (string, string) result
(** The server-side plan report for [sql] — text lines joined with
    newlines, or one JSON document with [~json:true]. [~analyze:true]
    executes the statement to fill in actual row counts and timings. *)

val metrics : ?json:bool -> t -> (string, string) result
(** The server's metrics registry: Prometheus text exposition format, or
    a JSON snapshot with [~json:true]. *)

val set : t -> key:string -> value:string -> (string, string) result
val prepare : t -> name:string -> string -> (string, string) result
val stats : t -> ((string * string) list, string) result

(** {1 Changing preferences} *)

val refine :
  ?trace:Protocol.trace ->
  t ->
  string ->
  (Relation.t * Pref_bmo.Engine.flags, string) result
(** REFINE: revise the connection's last preference statement to the
    given bare preference term and return the revised BMO set (served
    from the cached seed when the revision class allows). *)

val insert :
  ?trace:Protocol.trace -> t -> table:string -> string -> (string, string) result

val delete :
  ?trace:Protocol.trace -> t -> table:string -> string -> (string, string) result
(** Single-row DML; the row is one RFC-4180 CSV record in the table's
    column order, values rendered as by {!Protocol.value_wire}. [Ok]
    carries the server's acknowledgement line; deleting an absent row is
    an [Error]. *)

(** {1 Subscriptions} *)

type delta = {
  d_added : Relation.t;  (** rows that entered the BMO set *)
  d_removed : Relation.t;  (** rows that left it *)
  d_resync : bool;
      (** [true]: the subscriber fell behind and [d_added] is a full
          snapshot — discard all previously applied state first *)
}

val subscribe :
  ?trace:Protocol.trace ->
  t ->
  string ->
  (Relation.t * Pref_bmo.Engine.flags, string) result
(** Register a continuous query ([SELECT * FROM <table> PREFERRING ...])
    and return its current BMO set. On [Ok] the connection becomes a
    one-way delta stream: only {!next_delta} (and {!close}) may be used
    afterwards. On [Error] the connection is still usable. *)

val next_delta : ?timeout_s:float -> t -> delta option
(** Block for the next DELTA frame; [None] when the server closed the
    stream. Raises {!Timeout} after [timeout_s] seconds without a frame,
    and [Failure] on a non-delta or unparsable frame. *)
