(** Blocking client for the Preference SQL wire protocol — used by the
    shell's [\connect], the soak driver, and the tests.

    One request is in flight at a time; every call blocks until the
    response frame arrives. Not thread-safe: give each thread its own
    client. *)

open Pref_relation

type t

exception Closed
(** The server closed the connection (EOF where a response was due). *)

val connect : host:string -> port:int -> t
(** Raises [Unix.Unix_error] when the connection is refused. *)

val close : t -> unit
(** Idempotent. *)

val request : t -> Protocol.request -> Protocol.response
(** Send one request and read its response. Raises {!Closed} on EOF,
    {!Protocol.Framing_error} on a corrupt stream, or [Failure] when the
    response payload does not parse. *)

(** {1 Convenience wrappers} *)

val ping : t -> bool
(** [true] iff the server answers PONG. *)

val query : t -> string -> (Relation.t * Pref_bmo.Engine.flags, string) result
(** [Error] carries the server's rendered error message (including its
    kind). Retriable rejections are surfaced as errors too — see
    {!query_retry}. *)

val query_retry :
  ?attempts:int -> ?backoff_s:float -> t -> string ->
  (Relation.t * Pref_bmo.Engine.flags, string) result
(** Like {!query}, but a retriable [ERR] (admission-control [busy] /
    [draining]) is retried up to [attempts] times (default 50) with a
    fixed [backoff_s] sleep (default 2 ms) between tries. *)

val set : t -> key:string -> value:string -> (string, string) result
val prepare : t -> name:string -> string -> (string, string) result
val stats : t -> ((string * string) list, string) result
