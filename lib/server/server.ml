open Pref_sql

type config = {
  host : string;
  port : int;
  max_connections : int;
  max_inflight : int;
  executors : int;
  session_config : Pref_bmo.Engine.config;
}

let default_executors = max 1 (min 16 (Domain.recommended_domain_count ()))

let default_config =
  {
    host = "127.0.0.1";
    port = 5877;
    max_connections = 64;
    max_inflight = 2 * default_executors;
    executors = default_executors;
    (* the wire rejects error-severity queries when an analyzer is
       installed (Pref_analysis.Install.install, done by bin/prefserve) *)
    session_config = { Pref_bmo.Engine.default with check = true };
  }

(* server.* metrics — mirrors of the always-on atomic counters below, fed
   when telemetry is globally enabled *)
let m_queries = Pref_obs.Metrics.counter "server.queries"
let m_busy = Pref_obs.Metrics.counter "server.busy_rejected"
let m_drain_rej = Pref_obs.Metrics.counter "server.draining_rejected"
let m_degraded = Pref_obs.Metrics.counter "server.degraded"
let m_deadline = Pref_obs.Metrics.counter "server.deadline_exceeded"
let m_truncated = Pref_obs.Metrics.counter "server.truncated"
let m_errors = Pref_obs.Metrics.counter "server.errors"
let g_inflight = Pref_obs.Metrics.gauge "server.inflight"
let g_queue = Pref_obs.Metrics.gauge "server.queue_depth"
let g_conns = Pref_obs.Metrics.gauge "server.connections"

type t = {
  cfg : config;
  registry : Translate.registry;
  env : Exec.env;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* executor state, all under [m] *)
  m : Mutex.t;
  nonempty : Condition.t;  (* a job was queued, or executors must stop *)
  idle : Condition.t;  (* queued + running reached 0 *)
  stopped_c : Condition.t;  (* full drain finished *)
  queue : (unit -> unit) Queue.t;
  mutable queued : int;
  mutable running : int;
  mutable draining : bool;
  mutable exec_stop : bool;
  mutable drain_started : bool;
  mutable stopped : bool;
  stop_requested : bool Atomic.t;
  mutable workers : unit Domain.t array;
  mutable accept_thread : Thread.t option;
  (* live connections *)
  conns_m : Mutex.t;
  mutable conns : (int * Unix.file_descr) list;  (* keyed by thread id *)
  mutable conn_threads : (int * Thread.t) list;
  (* always-on counters (STATS must work with telemetry off) *)
  c_accepted : int Atomic.t;
  c_conn_rejected : int Atomic.t;
  c_queries : int Atomic.t;
  c_busy : int Atomic.t;
  c_drain_rej : int Atomic.t;
  c_degraded : int Atomic.t;
  c_deadline : int Atomic.t;
  c_truncated : int Atomic.t;
  c_errors : int Atomic.t;
  c_next_id : int Atomic.t;
}

let port t = t.bound_port
let draining t = Mutex.protect t.m (fun () -> t.draining)

let sync_gauges t =
  (* called with [t.m] held *)
  Pref_obs.Metrics.set g_queue (float_of_int t.queued);
  Pref_obs.Metrics.set g_inflight (float_of_int (t.queued + t.running))

(* ------------------------------------------------------------------ *)
(* Executor domains                                                    *)

let worker t () =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.exec_stop do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.m
    else begin
      let job = Queue.pop t.queue in
      t.queued <- t.queued - 1;
      t.running <- t.running + 1;
      sync_gauges t;
      Mutex.unlock t.m;
      (try job () with _ -> ());
      Mutex.lock t.m;
      t.running <- t.running - 1;
      sync_gauges t;
      if t.running = 0 && t.queued = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let submit t job =
  Mutex.lock t.m;
  let verdict =
    if t.draining then Error `Draining
    else if t.queued + t.running >= t.cfg.max_inflight then Error `Busy
    else begin
      Queue.push job t.queue;
      t.queued <- t.queued + 1;
      sync_gauges t;
      Condition.signal t.nonempty;
      Ok ()
    end
  in
  Mutex.unlock t.m;
  verdict

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let error_response ?trace e =
  let err ?(retriable = false) kind message =
    Protocol.Err { kind; retriable; message; trace }
  in
  match e with
  | Parser.Error (msg, pos) ->
    err "parse" (Printf.sprintf "syntax error at offset %d: %s" pos msg)
  | Translate.Error msg -> err "translate" msg
  | Exec.Unknown_table { name; hint } ->
    err "exec" (Exec.unknown_table_message ~name ~hint)
  | Exec.Error msg -> err "exec" msg
  | Exec.Rejected findings ->
    err "check"
      (String.concat "\n"
         ("rejected by static analysis:"
         :: List.map
              (fun f ->
                Printf.sprintf "  %s[%s] %s: %s" f.Exec.check_severity
                  f.Exec.check_code f.Exec.check_path f.Exec.check_message)
              findings))
  | Preferences.Pref.Ill_formed { code; message; _ } ->
    err "pref" (Printf.sprintf "[%s] %s" code message)
  | Pref_bmo.Pool.Job_error { exn; _ } ->
    err "exec" (Printexc.to_string exn)
  | e -> err "internal" (Printexc.to_string e)

let counters t =
  Mutex.lock t.m;
  let queued = t.queued and running = t.running and draining = t.draining in
  Mutex.unlock t.m;
  let active = Mutex.protect t.conns_m (fun () -> List.length t.conns) in
  [
    ("server.accepted", Atomic.get t.c_accepted);
    ("server.active_connections", active);
    ("server.connections_rejected", Atomic.get t.c_conn_rejected);
    ("server.queries", Atomic.get t.c_queries);
    ("server.queue_depth", queued);
    ("server.running", running);
    ("server.inflight", queued + running);
    ("server.busy_rejected", Atomic.get t.c_busy);
    ("server.draining_rejected", Atomic.get t.c_drain_rej);
    ("server.degraded", Atomic.get t.c_degraded);
    ("server.deadline_exceeded", Atomic.get t.c_deadline);
    ("server.truncated", Atomic.get t.c_truncated);
    ("server.errors", Atomic.get t.c_errors);
    ("server.slow_queries", Pref_engine.Slowlog.count ());
    ("server.draining", if draining then 1 else 0);
  ]

(* Histogram summaries for the extended STATS response: count, sum and
   interpolated p50/p90/p99 per non-empty histogram. Only meaningful
   while telemetry is on (otherwise the registry stays at zero). *)
let histogram_lines () =
  List.concat_map
    (fun (name, s) ->
      [
        (name ^ ".count", string_of_int s.Pref_obs.Metrics.s_count);
        (name ^ ".sum", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_sum);
        (name ^ ".p50", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_p50);
        (name ^ ".p90", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_p90);
        (name ^ ".p99", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_p99);
      ])
    (Pref_obs.Metrics.summaries ())
  |> List.map (fun (k, v) -> ("hist." ^ k, v))

(* Evaluate *and* encode on an executor domain — encoding large results
   is part of the serving cost, and connection threads all share one
   runtime lock, so everything heavy must leave them. [compute] returns
   the encoded response payload. *)
let submit_and_wait t fd ?trace compute =
  let done_m = Mutex.create () in
  let done_c = Condition.create () in
  let finished = ref false in
  let job () =
    let payload = compute () in
    (* the peer may have vanished; the connection thread will see EOF *)
    (try Protocol.write_frame fd payload with _ -> ());
    Mutex.lock done_m;
    finished := true;
    Condition.signal done_c;
    Mutex.unlock done_m
  in
  match submit t job with
  | Ok () ->
    (* requests on one connection are strictly serial: wait for the
       response to be written before reading the next frame *)
    Mutex.lock done_m;
    while not !finished do
      Condition.wait done_c done_m
    done;
    Mutex.unlock done_m
  | Error `Busy ->
    Atomic.incr t.c_busy;
    Pref_obs.Metrics.incr m_busy;
    Protocol.write_frame fd
      (Protocol.encode_response
         (Protocol.Err
            {
              kind = "busy";
              retriable = true;
              message = "server at max in-flight queries; retry";
              trace;
            }))
  | Error `Draining ->
    Atomic.incr t.c_drain_rej;
    Pref_obs.Metrics.incr m_drain_rej;
    Protocol.write_frame fd
      (Protocol.encode_response
         (Protocol.Err
            {
              kind = "draining";
              retriable = true;
              message = "server is draining; retry elsewhere";
              trace;
            }))

(* Span attributes stamping the server-side trace with the wire trace
   context, so a client can stitch its trace to the span dumps in the
   slow-query log. *)
let trace_attrs session trace =
  (match trace with
  | Some tr ->
    [
      ("trace", tr.Protocol.trace_id);
      ("parent_span", tr.Protocol.span_id);
    ]
  | None -> [])
  @ [ ("session", string_of_int (Pref_engine.Session.id session)) ]

let explain_payload session ~analyze ~json ~deadline ?trace sql =
  match Pref_engine.Session.explain_within session ~analyze ~deadline sql with
  | plan ->
    let body =
      if json then
        Pref_obs.Json.to_string (Pref_bmo.Explain.Plan.to_json plan)
      else String.concat "\n" (Pref_bmo.Explain.Plan.to_text plan)
    in
    Protocol.encode_response (Protocol.Explain_resp body)
  | exception e -> Protocol.encode_response (error_response ?trace e)

let run_query t session fd ?trace sql =
  let deadline = Pref_bmo.Engine.deadline_of (Pref_engine.Session.config session) in
  submit_and_wait t fd ?trace @@ fun () ->
  Pref_obs.Span.with_span "server.query" ~attrs:(trace_attrs session trace)
  @@ fun () ->
  (* a QUERY whose statement starts with EXPLAIN answers with the plan
     (text rendering) instead of rows *)
  match Pref_sql.Parser.explain_prefix sql with
  | Some (analyze, rest) ->
    explain_payload session ~analyze ~json:false ~deadline ?trace rest
  | None -> (
    match Pref_engine.Session.run_within session ~deadline sql with
    | result ->
      Atomic.incr t.c_queries;
      Pref_obs.Metrics.incr m_queries;
      let flags = result.Exec.flags in
      if flags.Pref_bmo.Engine.partial then begin
        Atomic.incr t.c_degraded;
        Pref_obs.Metrics.incr m_degraded
      end;
      if Pref_bmo.Engine.expired deadline then begin
        Atomic.incr t.c_deadline;
        Pref_obs.Metrics.incr m_deadline
      end;
      if flags.Pref_bmo.Engine.truncated then begin
        Atomic.incr t.c_truncated;
        Pref_obs.Metrics.incr m_truncated
      end;
      Protocol.encode_response
        (Protocol.Rows
           { relation = result.Exec.relation; flags; served = None; trace })
    | exception e ->
      Atomic.incr t.c_queries;
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_queries;
      Pref_obs.Metrics.incr m_errors;
      Protocol.encode_response (error_response ?trace e))

let run_explain t session fd ~analyze ~json ?trace sql =
  let deadline = Pref_bmo.Engine.deadline_of (Pref_engine.Session.config session) in
  submit_and_wait t fd ?trace @@ fun () ->
  Pref_obs.Span.with_span "server.explain" ~attrs:(trace_attrs session trace)
  @@ fun () -> explain_payload session ~analyze ~json ~deadline ?trace sql

exception Drain

let handle_connection t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
  let session =
    Pref_engine.Session.create ~registry:t.registry
      ~config:t.cfg.session_config ~env:t.env ()
  in
  let send resp = Protocol.write_frame fd (Protocol.encode_response resp) in
  let on_wait () = if draining t then raise Drain in
  let rec loop () =
    match Protocol.read_frame ~on_wait fd with
    | None -> ()
    | Some payload ->
      (match Protocol.parse_request payload with
      | Error msg ->
        send
          (Protocol.Err
             { kind = "proto"; retriable = false; message = msg; trace = None })
      | Ok (Protocol.Query { sql; trace }) -> run_query t session fd ?trace sql
      | Ok (Protocol.Prepare { name; sql; trace }) -> (
        match Pref_engine.Session.prepare session ~name sql with
        | () -> send (Protocol.Done ("prepared " ^ name))
        | exception e -> send (error_response ?trace e))
      | Ok (Protocol.Explain { sql; analyze; json; trace }) ->
        run_explain t session fd ~analyze ~json ?trace sql
      | Ok (Protocol.Set (key, value)) -> (
        match Pref_engine.Session.set session ~key ~value with
        | Ok line -> send (Protocol.Done line)
        | Error msg ->
          send
            (Protocol.Err
               { kind = "set"; retriable = false; message = msg; trace = None }))
      | Ok Protocol.Stats ->
        send
          (Protocol.Stats_resp
             (List.map (fun (k, v) -> (k, string_of_int v)) (counters t)
             @ Pref_engine.Session.stats_lines session
             @ histogram_lines ()))
      | Ok (Protocol.Metrics { json }) ->
        (* rendering the registry is cheap — answer on the connection
           thread rather than queueing behind queries *)
        let body =
          if json then Pref_obs.Json.to_string (Pref_obs.Export.to_json ())
          else Pref_obs.Export.prometheus ()
        in
        send (Protocol.Metrics_resp body)
      | Ok Protocol.Ping -> send Protocol.Pong);
      loop ()
  in
  try loop () with
  | Drain | Protocol.Framing_error _ | Unix.Unix_error _ | Sys_error _ -> ()

let spawn_connection t fd =
  (* register the connection before spawning, so the thread's cleanup can
     never race its own registration *)
  let id = Atomic.fetch_and_add t.c_next_id 1 in
  Mutex.protect t.conns_m (fun () ->
      t.conns <- (id, fd) :: t.conns;
      Pref_obs.Metrics.set g_conns (float_of_int (List.length t.conns)));
  let thread =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect t.conns_m (fun () ->
                t.conns <- List.remove_assoc id t.conns;
                Pref_obs.Metrics.set g_conns
                  (float_of_int (List.length t.conns)));
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
            try Unix.close fd with _ -> ())
          (fun () -> handle_connection t fd))
      ()
  in
  Mutex.protect t.conns_m (fun () ->
      t.conn_threads <- (id, thread) :: t.conn_threads)

let accept_loop t () =
  Unix.setsockopt_float t.listen_fd Unix.SO_RCVTIMEO 0.25;
  let rec loop () =
    if draining t || Atomic.get t.stop_requested then ()
    else
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        loop ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Atomic.incr t.c_accepted;
        let active = Mutex.protect t.conns_m (fun () -> List.length t.conns) in
        if active >= t.cfg.max_connections then begin
          Atomic.incr t.c_conn_rejected;
          (try
             Protocol.write_frame fd
               (Protocol.encode_response
                  (Protocol.Err
                     {
                       kind = "busy";
                       retriable = true;
                       message = "server at max connections; retry";
                       trace = None;
                     }))
           with _ -> ());
          (try Unix.close fd with _ -> ())
        end
        else spawn_connection t fd;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start ?(config = default_config) ?(registry = Translate.default_registry)
    ~env () =
  (* a peer vanishing mid-response must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      cfg = config;
      registry;
      env;
      listen_fd;
      bound_port;
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      stopped_c = Condition.create ();
      queue = Queue.create ();
      queued = 0;
      running = 0;
      draining = false;
      exec_stop = false;
      drain_started = false;
      stopped = false;
      stop_requested = Atomic.make false;
      workers = [||];
      accept_thread = None;
      conns_m = Mutex.create ();
      conns = [];
      conn_threads = [];
      c_accepted = Atomic.make 0;
      c_conn_rejected = Atomic.make 0;
      c_queries = Atomic.make 0;
      c_busy = Atomic.make 0;
      c_drain_rej = Atomic.make 0;
      c_degraded = Atomic.make 0;
      c_deadline = Atomic.make 0;
      c_truncated = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_next_id = Atomic.make 0;
    }
  in
  t.workers <- Array.init (max 1 config.executors) (fun _ -> Domain.spawn (worker t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let request_stop t = Atomic.set t.stop_requested true

let stop t =
  let first =
    Mutex.protect t.m (fun () ->
        if t.drain_started then false
        else begin
          t.drain_started <- true;
          t.draining <- true;
          true
        end)
  in
  if not first then
    (* someone else is (or finished) draining: wait it out *)
    Mutex.protect t.m (fun () ->
        while not t.stopped do
          Condition.wait t.stopped_c t.m
        done)
  else begin
    (* 1. stop accepting; the accept loop polls [draining] on its timeout *)
    Option.iter Thread.join t.accept_thread;
    t.accept_thread <- None;
    (try Unix.close t.listen_fd with _ -> ());
    (* 2. let every admitted query finish and flush its response; new
       queries are already answered with retriable draining errors *)
    Mutex.lock t.m;
    while t.queued + t.running > 0 do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m;
    (* 3. connection threads notice [draining] on their read timeout and
       exit, closing their own sockets; nudge blocked reads via shutdown *)
    let conns = Mutex.protect t.conns_m (fun () -> t.conns) in
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    let threads = Mutex.protect t.conns_m (fun () -> t.conn_threads) in
    List.iter (fun (_, th) -> Thread.join th) threads;
    Mutex.protect t.conns_m (fun () -> t.conn_threads <- []);
    (* 4. release the executor domains *)
    Mutex.lock t.m;
    t.exec_stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    Mutex.protect t.m (fun () ->
        t.stopped <- true;
        Condition.broadcast t.stopped_c)
  end

let wait t =
  let rec poll () =
    let stopped = Mutex.protect t.m (fun () -> t.stopped) in
    if stopped then ()
    else if Atomic.get t.stop_requested then stop t
    else begin
      Thread.delay 0.1;
      poll ()
    end
  in
  poll ()
