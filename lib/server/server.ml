open Pref_sql

type config = {
  host : string;
  port : int;
  max_connections : int;
  max_inflight : int;
  executors : int;
  session_config : Pref_bmo.Engine.config;
}

let default_executors = max 1 (min 16 (Domain.recommended_domain_count ()))

let default_config =
  {
    host = "127.0.0.1";
    port = 5877;
    max_connections = 64;
    max_inflight = 2 * default_executors;
    executors = default_executors;
    (* the wire rejects error-severity queries when an analyzer is
       installed (Pref_analysis.Install.install, done by bin/prefserve) *)
    session_config = { Pref_bmo.Engine.default with check = true };
  }

(* server.* metrics — mirrors of the always-on atomic counters below, fed
   when telemetry is globally enabled *)
let m_queries = Pref_obs.Metrics.counter "server.queries"
let m_busy = Pref_obs.Metrics.counter "server.busy_rejected"
let m_drain_rej = Pref_obs.Metrics.counter "server.draining_rejected"
let m_degraded = Pref_obs.Metrics.counter "server.degraded"
let m_deadline = Pref_obs.Metrics.counter "server.deadline_exceeded"
let m_truncated = Pref_obs.Metrics.counter "server.truncated"
let m_errors = Pref_obs.Metrics.counter "server.errors"
let m_deltas = Pref_obs.Metrics.counter "server.deltas"
let m_resyncs = Pref_obs.Metrics.counter "server.subscription_resyncs"
let g_inflight = Pref_obs.Metrics.gauge "server.inflight"
let g_queue = Pref_obs.Metrics.gauge "server.queue_depth"
let g_conns = Pref_obs.Metrics.gauge "server.connections"
let g_subs = Pref_obs.Metrics.gauge "server.subscriptions"

(* One continuous query (SUBSCRIBE): the maintained BMO state plus a
   bounded queue of encoded-but-unsent DELTA frames. DML executors push
   under [sub_m]; the subscriber's own connection thread drains and
   writes. When the queue overflows the slow consumer loses the backlog:
   the queue is cleared, [sub_overflow] set, and the drain loop answers
   with one full-snapshot resync frame instead. *)
type subscriber = {
  sub_fd : Unix.file_descr;
  sub_table : string;
  sub_trace : Protocol.trace option;
  sub_m : Mutex.t;
  sub_c : Condition.t;
  sub_queue : Protocol.response Queue.t;
  mutable sub_overflow : bool;
  mutable sub_closed : bool;
  sub_inc : Pref_bmo.Incremental.t;
}

let max_sub_queue = 64

type t = {
  cfg : config;
  registry : Translate.registry;
  mutable env : Exec.env;  (* authoritative tables, under [env_m] *)
  env_m : Mutex.t;
  env_v : int Atomic.t;  (* bumped by every DML write-back *)
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* executor state, all under [m] *)
  m : Mutex.t;
  nonempty : Condition.t;  (* a job was queued, or executors must stop *)
  idle : Condition.t;  (* queued + running reached 0 *)
  stopped_c : Condition.t;  (* full drain finished *)
  queue : (unit -> unit) Queue.t;
  mutable queued : int;
  mutable running : int;
  mutable draining : bool;
  mutable exec_stop : bool;
  mutable drain_started : bool;
  mutable stopped : bool;
  stop_requested : bool Atomic.t;
  mutable workers : unit Domain.t array;
  mutable accept_thread : Thread.t option;
  (* live connections *)
  conns_m : Mutex.t;
  mutable conns : (int * Unix.file_descr) list;  (* keyed by thread id *)
  mutable conn_threads : (int * Thread.t) list;
  (* live subscriptions *)
  subs_m : Mutex.t;
  mutable subs : subscriber list;
  (* always-on counters (STATS must work with telemetry off) *)
  c_accepted : int Atomic.t;
  c_conn_rejected : int Atomic.t;
  c_queries : int Atomic.t;
  c_busy : int Atomic.t;
  c_drain_rej : int Atomic.t;
  c_degraded : int Atomic.t;
  c_deadline : int Atomic.t;
  c_truncated : int Atomic.t;
  c_errors : int Atomic.t;
  c_deltas : int Atomic.t;
  c_resyncs : int Atomic.t;
  c_next_id : int Atomic.t;
}

let port t = t.bound_port
let draining t = Mutex.protect t.m (fun () -> t.draining)

let sync_gauges t =
  (* called with [t.m] held *)
  Pref_obs.Metrics.set g_queue (float_of_int t.queued);
  Pref_obs.Metrics.set g_inflight (float_of_int (t.queued + t.running))

(* ------------------------------------------------------------------ *)
(* Executor domains                                                    *)

let worker t () =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.exec_stop do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.m
    else begin
      let job = Queue.pop t.queue in
      t.queued <- t.queued - 1;
      t.running <- t.running + 1;
      sync_gauges t;
      Mutex.unlock t.m;
      (try job () with _ -> ());
      Mutex.lock t.m;
      t.running <- t.running - 1;
      sync_gauges t;
      if t.running = 0 && t.queued = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let submit t job =
  Mutex.lock t.m;
  let verdict =
    if t.draining then Error `Draining
    else if t.queued + t.running >= t.cfg.max_inflight then Error `Busy
    else begin
      Queue.push job t.queue;
      t.queued <- t.queued + 1;
      sync_gauges t;
      Condition.signal t.nonempty;
      Ok ()
    end
  in
  Mutex.unlock t.m;
  verdict

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let error_response ?trace e =
  let err ?(retriable = false) kind message =
    Protocol.Err { kind; retriable; message; trace }
  in
  match e with
  | Parser.Error (msg, pos) ->
    err "parse" (Printf.sprintf "syntax error at offset %d: %s" pos msg)
  | Translate.Error msg -> err "translate" msg
  | Exec.Unknown_table { name; hint } ->
    err "exec" (Exec.unknown_table_message ~name ~hint)
  | Exec.Error msg -> err "exec" msg
  | Exec.Rejected findings ->
    err "check"
      (String.concat "\n"
         ("rejected by static analysis:"
         :: List.map
              (fun f ->
                Printf.sprintf "  %s[%s] %s: %s" f.Exec.check_severity
                  f.Exec.check_code f.Exec.check_path f.Exec.check_message)
              findings))
  | Preferences.Pref.Ill_formed { code; message; _ } ->
    err "pref" (Printf.sprintf "[%s] %s" code message)
  | Pref_bmo.Pool.Job_error { exn; _ } ->
    err "exec" (Printexc.to_string exn)
  | e -> err "internal" (Printexc.to_string e)

let counters t =
  Mutex.lock t.m;
  let queued = t.queued and running = t.running and draining = t.draining in
  Mutex.unlock t.m;
  let active = Mutex.protect t.conns_m (fun () -> List.length t.conns) in
  [
    ("server.accepted", Atomic.get t.c_accepted);
    ("server.active_connections", active);
    ("server.connections_rejected", Atomic.get t.c_conn_rejected);
    ("server.queries", Atomic.get t.c_queries);
    ("server.queue_depth", queued);
    ("server.running", running);
    ("server.inflight", queued + running);
    ("server.busy_rejected", Atomic.get t.c_busy);
    ("server.draining_rejected", Atomic.get t.c_drain_rej);
    ("server.degraded", Atomic.get t.c_degraded);
    ("server.deadline_exceeded", Atomic.get t.c_deadline);
    ("server.truncated", Atomic.get t.c_truncated);
    ("server.errors", Atomic.get t.c_errors);
    ("server.subscriptions", Mutex.protect t.subs_m (fun () -> List.length t.subs));
    ("server.deltas", Atomic.get t.c_deltas);
    ("server.subscription_resyncs", Atomic.get t.c_resyncs);
    ("server.slow_queries", Pref_engine.Slowlog.count ());
    ("server.draining", if draining then 1 else 0);
  ]

(* Histogram summaries for the extended STATS response: count, sum and
   interpolated p50/p90/p99 per non-empty histogram. Only meaningful
   while telemetry is on (otherwise the registry stays at zero). *)
let histogram_lines () =
  List.concat_map
    (fun (name, s) ->
      [
        (name ^ ".count", string_of_int s.Pref_obs.Metrics.s_count);
        (name ^ ".sum", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_sum);
        (name ^ ".p50", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_p50);
        (name ^ ".p90", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_p90);
        (name ^ ".p99", Printf.sprintf "%.6g" s.Pref_obs.Metrics.s_p99);
      ])
    (Pref_obs.Metrics.summaries ())
  |> List.map (fun (k, v) -> ("hist." ^ k, v))

(* Evaluate *and* encode on an executor domain — encoding large results
   is part of the serving cost, and connection threads all share one
   runtime lock, so everything heavy must leave them. [compute] returns
   the encoded response payload. *)
let submit_and_wait t fd ?trace compute =
  let done_m = Mutex.create () in
  let done_c = Condition.create () in
  let finished = ref false in
  let job () =
    let payload = compute () in
    (* the peer may have vanished; the connection thread will see EOF *)
    (try Protocol.write_frame fd payload with _ -> ());
    Mutex.lock done_m;
    finished := true;
    Condition.signal done_c;
    Mutex.unlock done_m
  in
  match submit t job with
  | Ok () ->
    (* requests on one connection are strictly serial: wait for the
       response to be written before reading the next frame *)
    Mutex.lock done_m;
    while not !finished do
      Condition.wait done_c done_m
    done;
    Mutex.unlock done_m
  | Error `Busy ->
    Atomic.incr t.c_busy;
    Pref_obs.Metrics.incr m_busy;
    Protocol.write_frame fd
      (Protocol.encode_response
         (Protocol.Err
            {
              kind = "busy";
              retriable = true;
              message = "server at max in-flight queries; retry";
              trace;
            }))
  | Error `Draining ->
    Atomic.incr t.c_drain_rej;
    Pref_obs.Metrics.incr m_drain_rej;
    Protocol.write_frame fd
      (Protocol.encode_response
         (Protocol.Err
            {
              kind = "draining";
              retriable = true;
              message = "server is draining; retry elsewhere";
              trace;
            }))

(* Run [f] on an executor domain and hand its outcome back to the
   connection thread — like {!submit_and_wait}, but for handlers that
   need the computed value (DML, SUBSCRIBE setup) rather than a payload
   to write. *)
let on_executor t f =
  let done_m = Mutex.create () in
  let done_c = Condition.create () in
  let outcome = ref None in
  let job () =
    let r = try Ok (f ()) with e -> Error e in
    Mutex.lock done_m;
    outcome := Some r;
    Condition.signal done_c;
    Mutex.unlock done_m
  in
  match submit t job with
  | Ok () ->
    Mutex.lock done_m;
    while !outcome = None do
      Condition.wait done_c done_m
    done;
    Mutex.unlock done_m;
    (match !outcome with
    | Some (Ok v) -> `Ok v
    | Some (Error e) -> `Exn e
    | None -> assert false)
  | Error `Busy ->
    Atomic.incr t.c_busy;
    Pref_obs.Metrics.incr m_busy;
    `Rejected
      (Protocol.Err
         {
           kind = "busy";
           retriable = true;
           message = "server at max in-flight queries; retry";
           trace = None;
         })
  | Error `Draining ->
    Atomic.incr t.c_drain_rej;
    Pref_obs.Metrics.incr m_drain_rej;
    `Rejected
      (Protocol.Err
         {
           kind = "draining";
           retriable = true;
           message = "server is draining; retry elsewhere";
           trace = None;
         })

(* ------------------------------------------------------------------ *)
(* Shared tables: sessions are per-connection, the environment is not.
   [t.env] is authoritative; DML rewrites it under [env_m] and bumps
   [env_v], and every connection re-snapshots its session environment
   when it notices the version moved ([refresh_env] — which also drops
   the session's revision seed, computed against the old tables). *)

let refresh_env t session last_v =
  let v = Atomic.get t.env_v in
  if v <> !last_v then begin
    last_v := v;
    Pref_engine.Session.set_env session
      (Mutex.protect t.env_m (fun () -> t.env))
  end

(* ------------------------------------------------------------------ *)
(* Subscriptions                                                       *)

let sync_subs_gauge t =
  (* called with [t.subs_m] held *)
  Pref_obs.Metrics.set g_subs (float_of_int (List.length t.subs))

let unregister_subscriber t sub =
  Mutex.protect t.subs_m (fun () ->
      t.subs <- List.filter (fun s -> s != sub) t.subs;
      sync_subs_gauge t);
  Mutex.protect sub.sub_m (fun () ->
      sub.sub_closed <- true;
      Condition.broadcast sub.sub_c)

(* Patch one subscriber's maintained BMO state with a DML event and queue
   the resulting DELTA frame. Called with [t.env_m] held, so deltas reach
   every subscriber in DML order. Overflowing the bounded queue drops the
   backlog and schedules a resync instead. *)
let notify_subscriber t sub op row =
  Mutex.lock sub.sub_m;
  if not sub.sub_closed then begin
    let delta =
      match op with
      | Protocol.Dml_insert ->
        Some (Pref_bmo.Incremental.insert_delta sub.sub_inc row)
      | Protocol.Dml_delete -> Pref_bmo.Incremental.delete_delta sub.sub_inc row
    in
    match delta with
    | Some { Pref_bmo.Incremental.added; removed }
      when added <> [] || removed <> [] ->
      let schema =
        Pref_relation.Relation.schema (Pref_bmo.Incremental.result sub.sub_inc)
      in
      if Queue.length sub.sub_queue >= max_sub_queue then begin
        Queue.clear sub.sub_queue;
        sub.sub_overflow <- true;
        Atomic.incr t.c_resyncs;
        Pref_obs.Metrics.incr m_resyncs
      end
      else
        Queue.push
          (Protocol.Delta
             {
               added = Pref_relation.Relation.make schema added;
               removed = Pref_relation.Relation.make schema removed;
               resync = false;
               trace = sub.sub_trace;
             })
          sub.sub_queue;
      Condition.signal sub.sub_c
    | _ -> ()
  end;
  Mutex.unlock sub.sub_m

(* The subscriber's connection thread: drain queued DELTA frames to the
   socket until the peer vanishes or the server closes the subscription.
   An overflow turns into one full-snapshot frame ([resync]) — the
   client discards its replica and starts over from it. *)
let stream_subscriber t sub =
  let next () =
    Mutex.lock sub.sub_m;
    let rec wait () =
      if sub.sub_closed then None
      else if sub.sub_overflow then begin
        sub.sub_overflow <- false;
        Queue.clear sub.sub_queue;
        let snap = Pref_bmo.Incremental.result sub.sub_inc in
        Some
          (Protocol.Delta
             {
               added = snap;
               removed =
                 Pref_relation.Relation.empty (Pref_relation.Relation.schema snap);
               resync = true;
               trace = sub.sub_trace;
             })
      end
      else
        match Queue.take_opt sub.sub_queue with
        | Some frame -> Some frame
        | None ->
          Condition.wait sub.sub_c sub.sub_m;
          wait ()
    in
    let r = wait () in
    Mutex.unlock sub.sub_m;
    r
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some frame ->
      Protocol.write_frame sub.sub_fd (Protocol.encode_response frame);
      Atomic.incr t.c_deltas;
      Pref_obs.Metrics.incr m_deltas;
      loop ()
  in
  loop ()

let subscribe_shape_message =
  "SUBSCRIBE needs SELECT * FROM <table> PREFERRING ... (one table, no \
   WHERE / TOP / BUT ONLY / GROUP BY)"

let subscribable (q : Ast.query) =
  (match q.Ast.select with [ Ast.Star ] -> true | _ -> false)
  && q.Ast.where = None && q.Ast.top = None && q.Ast.but_only = []
  && q.Ast.grouping = []
  && match q.Ast.from with [ _ ] -> true | _ -> false

let run_subscribe t session fd last_v ?trace sql =
  refresh_env t session last_v;
  let send resp = Protocol.write_frame fd (Protocol.encode_response resp) in
  let setup () =
    (* build the maintained state and register under [env_m]: no DML can
       slip between the snapshot and the first queued delta *)
    Mutex.protect t.env_m (fun () ->
        let q = Parser.parse_query sql in
        if not (subscribable q) then raise (Exec.Error subscribe_shape_message);
        let table = String.lowercase_ascii (List.hd q.Ast.from) in
        let rel =
          match Exec.find_table t.env table with
          | Some rel -> rel
          | None -> raise (Exec.Unknown_table { name = table; hint = None })
        in
        let p =
          match Exec.full_preference ~registry:t.registry q with
          | Some p -> p
          | None -> raise (Exec.Error "SUBSCRIBE needs a PREFERRING clause")
        in
        let inc =
          Pref_bmo.Incremental.create
            (Pref_relation.Relation.schema rel)
            p
            (Pref_relation.Relation.rows rel)
        in
        let sub =
          {
            sub_fd = fd;
            sub_table = table;
            sub_trace = trace;
            sub_m = Mutex.create ();
            sub_c = Condition.create ();
            sub_queue = Queue.create ();
            sub_overflow = false;
            sub_closed = false;
            sub_inc = inc;
          }
        in
        let snapshot = Pref_bmo.Incremental.result inc in
        Mutex.protect t.subs_m (fun () ->
            t.subs <- sub :: t.subs;
            sync_subs_gauge t);
        (sub, snapshot))
  in
  (* returns [true] when the connection should keep serving requests
     (the subscription never started), [false] once the stream ended *)
  match on_executor t setup with
  | `Rejected err ->
    send err;
    true
  | `Exn e ->
    Atomic.incr t.c_queries;
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_queries;
    Pref_obs.Metrics.incr m_errors;
    send (error_response ?trace e);
    true
  | `Ok (sub, snapshot) ->
    Atomic.incr t.c_queries;
    Pref_obs.Metrics.incr m_queries;
    (try
       send
         (Protocol.Rows
            {
              relation = snapshot;
              flags = Pref_bmo.Engine.complete;
              served = None;
              trace;
            });
       stream_subscriber t sub
     with _ -> ());
    unregister_subscriber t sub;
    false

(* ------------------------------------------------------------------ *)
(* Single-row DML                                                      *)

(* Apply one insert/delete: refresh the session from the authoritative
   environment, run {!Pref_engine.Session.insert}/[delete] (table update
   + cache patch + revision-seed patch), write the environment back, and
   fan the event out to this table's subscribers — all under [env_m], so
   concurrent DML serializes and every subscriber sees events in the
   same order. *)
let apply_dml t session last_v op table row_csv =
  Mutex.protect t.env_m (fun () ->
      let v = Atomic.get t.env_v in
      if v <> !last_v then begin
        last_v := v;
        Pref_engine.Session.set_env session t.env
      end;
      let table = String.lowercase_ascii table in
      let rel =
        match Exec.find_table t.env table with
        | Some rel -> rel
        | None -> raise (Exec.Unknown_table { name = table; hint = None })
      in
      let row =
        match
          Protocol.decode_rows (Pref_relation.Relation.schema rel) [ row_csv ]
        with
        | Ok [ row ] -> row
        | Ok _ -> assert false
        | Error msg -> raise (Exec.Error msg)
      in
      let outcome =
        match op with
        | Protocol.Dml_insert ->
          `Applied ("inserted into", Pref_engine.Session.insert session table row)
        | Protocol.Dml_delete -> (
          match Pref_engine.Session.delete session table row with
          | Some patched -> `Applied ("deleted from", patched)
          | None -> `No_match table)
      in
      (match outcome with
      | `No_match _ -> ()
      | `Applied _ ->
        t.env <- Pref_engine.Session.env session;
        let v' = Atomic.get t.env_v + 1 in
        Atomic.set t.env_v v';
        last_v := v';
        let subs = Mutex.protect t.subs_m (fun () -> t.subs) in
        List.iter
          (fun sub ->
            if String.equal sub.sub_table table then
              notify_subscriber t sub op row)
          subs);
      (outcome, table))

let run_dml t session fd last_v ?trace op table row_csv =
  let send resp = Protocol.write_frame fd (Protocol.encode_response resp) in
  match on_executor t (fun () -> apply_dml t session last_v op table row_csv) with
  | `Rejected err -> send err
  | `Exn e ->
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_errors;
    send (error_response ?trace e)
  | `Ok (`Applied (verb, patched), table) ->
    send
      (Protocol.Done
         (Printf.sprintf "%s %s (%d cached result%s patched)" verb table
            patched
            (if patched = 1 then "" else "s")))
  | `Ok (`No_match table, _) ->
    send
      (Protocol.Err
         {
           kind = "exec";
           retriable = false;
           message = Printf.sprintf "no matching row in %s" table;
           trace;
         })

(* Span attributes stamping the server-side trace with the wire trace
   context, so a client can stitch its trace to the span dumps in the
   slow-query log. *)
let trace_attrs session trace =
  (match trace with
  | Some tr ->
    [
      ("trace", tr.Protocol.trace_id);
      ("parent_span", tr.Protocol.span_id);
    ]
  | None -> [])
  @ [ ("session", string_of_int (Pref_engine.Session.id session)) ]

let explain_payload session ~analyze ~json ~deadline ?trace sql =
  match Pref_engine.Session.explain_within session ~analyze ~deadline sql with
  | plan ->
    let body =
      if json then
        Pref_obs.Json.to_string (Pref_bmo.Explain.Plan.to_json plan)
      else String.concat "\n" (Pref_bmo.Explain.Plan.to_text plan)
    in
    Protocol.encode_response (Protocol.Explain_resp body)
  | exception e -> Protocol.encode_response (error_response ?trace e)

let run_query t session fd ?trace sql =
  let deadline = Pref_bmo.Engine.deadline_of (Pref_engine.Session.config session) in
  submit_and_wait t fd ?trace @@ fun () ->
  Pref_obs.Span.with_span "server.query" ~attrs:(trace_attrs session trace)
  @@ fun () ->
  (* a QUERY whose statement starts with EXPLAIN answers with the plan
     (text rendering) instead of rows *)
  match Pref_sql.Parser.explain_prefix sql with
  | Some (analyze, rest) ->
    explain_payload session ~analyze ~json:false ~deadline ?trace rest
  | None -> (
    match Pref_engine.Session.run_within session ~deadline sql with
    | result ->
      Atomic.incr t.c_queries;
      Pref_obs.Metrics.incr m_queries;
      let flags = result.Exec.flags in
      if flags.Pref_bmo.Engine.partial then begin
        Atomic.incr t.c_degraded;
        Pref_obs.Metrics.incr m_degraded
      end;
      if Pref_bmo.Engine.expired deadline then begin
        Atomic.incr t.c_deadline;
        Pref_obs.Metrics.incr m_deadline
      end;
      if flags.Pref_bmo.Engine.truncated then begin
        Atomic.incr t.c_truncated;
        Pref_obs.Metrics.incr m_truncated
      end;
      Protocol.encode_response
        (Protocol.Rows
           { relation = result.Exec.relation; flags; served = None; trace })
    | exception e ->
      Atomic.incr t.c_queries;
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_queries;
      Pref_obs.Metrics.incr m_errors;
      Protocol.encode_response (error_response ?trace e))

let run_explain t session fd ~analyze ~json ?trace sql =
  let deadline = Pref_bmo.Engine.deadline_of (Pref_engine.Session.config session) in
  submit_and_wait t fd ?trace @@ fun () ->
  Pref_obs.Span.with_span "server.explain" ~attrs:(trace_attrs session trace)
  @@ fun () -> explain_payload session ~analyze ~json ~deadline ?trace sql

let run_refine t session fd ?trace term =
  let deadline = Pref_bmo.Engine.deadline_of (Pref_engine.Session.config session) in
  submit_and_wait t fd ?trace @@ fun () ->
  Pref_obs.Span.with_span "server.refine" ~attrs:(trace_attrs session trace)
  @@ fun () ->
  match Pref_engine.Session.refine_within session ~deadline term with
  | outcome ->
    Atomic.incr t.c_queries;
    Pref_obs.Metrics.incr m_queries;
    let result = outcome.Pref_engine.Revise.o_result in
    let flags = result.Exec.flags in
    if flags.Pref_bmo.Engine.partial then begin
      Atomic.incr t.c_degraded;
      Pref_obs.Metrics.incr m_degraded
    end;
    if flags.Pref_bmo.Engine.truncated then begin
      Atomic.incr t.c_truncated;
      Pref_obs.Metrics.incr m_truncated
    end;
    Protocol.encode_response
      (Protocol.Rows { relation = result.Exec.relation; flags; served = None; trace })
  | exception e ->
    Atomic.incr t.c_queries;
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_queries;
    Pref_obs.Metrics.incr m_errors;
    Protocol.encode_response (error_response ?trace e)

exception Drain

let handle_connection t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
  let session =
    Pref_engine.Session.create ~registry:t.registry
      ~config:t.cfg.session_config ~env:t.env ()
  in
  let send resp = Protocol.write_frame fd (Protocol.encode_response resp) in
  let on_wait () = if draining t then raise Drain in
  (* the environment version this session last snapshot — see refresh_env *)
  let last_v = ref (Atomic.get t.env_v) in
  let rec loop () =
    match Protocol.read_frame ~on_wait fd with
    | None -> ()
    | Some payload ->
      let continue =
        match Protocol.parse_request payload with
        | Error msg ->
          send
            (Protocol.Err
               { kind = "proto"; retriable = false; message = msg; trace = None });
          true
        | Ok (Protocol.Query { sql; trace }) ->
          refresh_env t session last_v;
          run_query t session fd ?trace sql;
          true
        | Ok (Protocol.Prepare { name; sql; trace }) ->
          (match Pref_engine.Session.prepare session ~name sql with
          | () -> send (Protocol.Done ("prepared " ^ name))
          | exception e -> send (error_response ?trace e));
          true
        | Ok (Protocol.Explain { sql; analyze; json; trace }) ->
          refresh_env t session last_v;
          run_explain t session fd ~analyze ~json ?trace sql;
          true
        | Ok (Protocol.Refine { term; trace }) ->
          refresh_env t session last_v;
          run_refine t session fd ?trace term;
          true
        | Ok (Protocol.Dml { op; table; row; trace }) ->
          run_dml t session fd last_v ?trace op table row;
          true
        | Ok (Protocol.Subscribe { sql; trace }) ->
          (* on success the connection is a one-way delta stream from
             here on: serve it until the peer or the server closes it *)
          run_subscribe t session fd last_v ?trace sql
        | Ok (Protocol.Set (key, value)) ->
          (match Pref_engine.Session.set session ~key ~value with
          | Ok line -> send (Protocol.Done line)
          | Error msg ->
            send
              (Protocol.Err
                 { kind = "set"; retriable = false; message = msg; trace = None }));
          true
        | Ok Protocol.Stats ->
          send
            (Protocol.Stats_resp
               (List.map (fun (k, v) -> (k, string_of_int v)) (counters t)
               @ Pref_engine.Session.stats_lines session
               @ histogram_lines ()));
          true
        | Ok (Protocol.Metrics { json }) ->
          (* rendering the registry is cheap — answer on the connection
             thread rather than queueing behind queries *)
          let body =
            if json then Pref_obs.Json.to_string (Pref_obs.Export.to_json ())
            else Pref_obs.Export.prometheus ()
          in
          send (Protocol.Metrics_resp body);
          true
        | Ok Protocol.Ping ->
          send Protocol.Pong;
          true
      in
      if continue then loop ()
  in
  try loop () with
  | Drain | Protocol.Framing_error _ | Unix.Unix_error _ | Sys_error _ -> ()

let spawn_connection t fd =
  (* register the connection before spawning, so the thread's cleanup can
     never race its own registration *)
  let id = Atomic.fetch_and_add t.c_next_id 1 in
  Mutex.protect t.conns_m (fun () ->
      t.conns <- (id, fd) :: t.conns;
      Pref_obs.Metrics.set g_conns (float_of_int (List.length t.conns)));
  let thread =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect t.conns_m (fun () ->
                t.conns <- List.remove_assoc id t.conns;
                Pref_obs.Metrics.set g_conns
                  (float_of_int (List.length t.conns)));
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
            try Unix.close fd with _ -> ())
          (fun () -> handle_connection t fd))
      ()
  in
  Mutex.protect t.conns_m (fun () ->
      t.conn_threads <- (id, thread) :: t.conn_threads)

let accept_loop t () =
  Unix.setsockopt_float t.listen_fd Unix.SO_RCVTIMEO 0.25;
  let rec loop () =
    if draining t || Atomic.get t.stop_requested then ()
    else
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        loop ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Atomic.incr t.c_accepted;
        let active = Mutex.protect t.conns_m (fun () -> List.length t.conns) in
        if active >= t.cfg.max_connections then begin
          Atomic.incr t.c_conn_rejected;
          (try
             Protocol.write_frame fd
               (Protocol.encode_response
                  (Protocol.Err
                     {
                       kind = "busy";
                       retriable = true;
                       message = "server at max connections; retry";
                       trace = None;
                     }))
           with _ -> ());
          (try Unix.close fd with _ -> ())
        end
        else spawn_connection t fd;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start ?(config = default_config) ?(registry = Translate.default_registry)
    ~env () =
  (* a peer vanishing mid-response must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      cfg = config;
      registry;
      env;
      env_m = Mutex.create ();
      env_v = Atomic.make 0;
      listen_fd;
      bound_port;
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      stopped_c = Condition.create ();
      queue = Queue.create ();
      queued = 0;
      running = 0;
      draining = false;
      exec_stop = false;
      drain_started = false;
      stopped = false;
      stop_requested = Atomic.make false;
      workers = [||];
      accept_thread = None;
      conns_m = Mutex.create ();
      conns = [];
      conn_threads = [];
      subs_m = Mutex.create ();
      subs = [];
      c_accepted = Atomic.make 0;
      c_conn_rejected = Atomic.make 0;
      c_queries = Atomic.make 0;
      c_busy = Atomic.make 0;
      c_drain_rej = Atomic.make 0;
      c_degraded = Atomic.make 0;
      c_deadline = Atomic.make 0;
      c_truncated = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_deltas = Atomic.make 0;
      c_resyncs = Atomic.make 0;
      c_next_id = Atomic.make 0;
    }
  in
  t.workers <- Array.init (max 1 config.executors) (fun _ -> Domain.spawn (worker t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let request_stop t = Atomic.set t.stop_requested true

let stop t =
  let first =
    Mutex.protect t.m (fun () ->
        if t.drain_started then false
        else begin
          t.drain_started <- true;
          t.draining <- true;
          true
        end)
  in
  if not first then
    (* someone else is (or finished) draining: wait it out *)
    Mutex.protect t.m (fun () ->
        while not t.stopped do
          Condition.wait t.stopped_c t.m
        done)
  else begin
    (* 1. stop accepting; the accept loop polls [draining] on its timeout *)
    Option.iter Thread.join t.accept_thread;
    t.accept_thread <- None;
    (try Unix.close t.listen_fd with _ -> ());
    (* 2. let every admitted query finish and flush its response; new
       queries are already answered with retriable draining errors *)
    Mutex.lock t.m;
    while t.queued + t.running > 0 do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m;
    (* 3. connection threads notice [draining] on their read timeout and
       exit, closing their own sockets; nudge blocked reads via shutdown *)
    let conns = Mutex.protect t.conns_m (fun () -> t.conns) in
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    (* streaming subscribers block on their queue condition, not the
       socket: close them explicitly so their threads can be joined *)
    let subs = Mutex.protect t.subs_m (fun () -> t.subs) in
    List.iter
      (fun sub ->
        Mutex.protect sub.sub_m (fun () ->
            sub.sub_closed <- true;
            Condition.broadcast sub.sub_c))
      subs;
    let threads = Mutex.protect t.conns_m (fun () -> t.conn_threads) in
    List.iter (fun (_, th) -> Thread.join th) threads;
    Mutex.protect t.conns_m (fun () -> t.conn_threads <- []);
    (* 4. release the executor domains *)
    Mutex.lock t.m;
    t.exec_stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    Mutex.protect t.m (fun () ->
        t.stopped <- true;
        Condition.broadcast t.stopped_c)
  end

let wait t =
  let rec poll () =
    let stopped = Mutex.protect t.m (fun () -> t.stopped) in
    if stopped then ()
    else if Atomic.get t.stop_requested then stop t
    else begin
      Thread.delay 0.1;
      poll ()
    end
  in
  poll ()
