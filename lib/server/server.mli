(** The concurrent Preference SQL query server.

    Architecture: one accept thread and one lightweight thread per
    connection handle the wire protocol; query evaluation (parse →
    translate → BMO → encode) runs on a fixed pool of executor
    {e domains}, so concurrent clients scale across cores while
    connection threads only block on I/O. Each connection owns a
    {!Pref_engine.Session.t}; all sessions share the table environment
    and the process-wide result cache (a session opts out with
    [SET cache off]).

    {2 Admission control}

    At most [max_inflight] queries are admitted (queued or running) at
    any time; a QUERY over that bound is rejected immediately with a
    retriable [ERR busy] frame instead of queueing unboundedly. At most
    [max_connections] connections are served; excess accepts get an
    [ERR busy] and a close.

    {2 Deadlines}

    A session's [deadline] knob starts counting at admission, so queue
    wait draws down the same budget as evaluation. On expiry the engine
    degrades — the response is a well-formed [ROWS ... partial] frame
    with the BMO set of the scanned prefix — and never hangs; the
    [server.deadline_exceeded] counter records each degradation.

    {2 Graceful drain}

    {!stop} stops accepting, answers new queries with a retriable
    [ERR draining], lets every in-flight query complete and flush its
    response, then closes the connections and joins all threads and
    executor domains. Idempotent and thread-safe (callable from a signal
    handler's context via {!request_stop}). *)

type config = {
  host : string;  (** bind address, default 127.0.0.1 *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  max_connections : int;
  max_inflight : int;  (** admission bound: queued + running queries *)
  executors : int;  (** executor domains evaluating queries *)
  session_config : Pref_bmo.Engine.config;
      (** initial per-session engine config *)
}

val default_config : config
(** 127.0.0.1:5877, 64 connections, [2 * executors] in-flight queries,
    one executor per recommended domain (capped at 16). *)

type t

val start :
  ?config:config ->
  ?registry:Pref_sql.Translate.registry ->
  env:Pref_sql.Exec.env ->
  unit ->
  t
(** Bind, listen, and spawn the accept thread and executor domains.
    Raises [Unix.Unix_error] when the address cannot be bound. *)

val port : t -> int
(** The bound port — the actual one when [config.port] was 0. *)

val stop : t -> unit
(** Graceful drain (see above); returns once everything is joined. *)

val request_stop : t -> unit
(** Async-signal-safe stop request: flags the server to drain and
    returns immediately. {!wait} then performs and completes the drain. *)

val wait : t -> unit
(** Block until the server has fully stopped (via {!stop} or
    {!request_stop}). *)

val counters : t -> (string * int) list
(** Server-level counters, as [server.*] key/value pairs: accepted and
    active connections, queued and in-flight queries, totals for
    completed queries, busy/draining rejections, degradations
    ([server.deadline_exceeded]), truncations and errors. Always live,
    independent of {!Pref_obs.Control} (the same values also feed
    [server.*] metrics when telemetry is on). *)
