open Pref_relation
open Preferences

exception Error of string

type env = (string * Relation.t) list

let find_table env name =
  match List.assoc_opt name env with
  | Some r -> Some r
  | None ->
    (* table names are case-insensitive *)
    List.fold_left
      (fun acc (n, r) ->
        if acc = None && String.lowercase_ascii n = String.lowercase_ascii name
        then Some r
        else acc)
      None env

exception Unknown_table of { name : string; hint : string option }

let unknown_table_message ~name ~hint =
  Printf.sprintf "unknown table %S%s" name
    (match hint with
    | Some c -> Printf.sprintf " (did you mean %S?)" c
    | None -> "")

let () =
  Printexc.register_printer (function
    | Unknown_table { name; hint } ->
      Some ("Psql.Exec: " ^ unknown_table_message ~name ~hint)
    | _ -> None)

type result = {
  relation : Relation.t;
  preference : Pref.t option;  (** the translated preference term, for explain *)
  profile : Pref_obs.Profile.t option;
      (** per-clause timings and evaluation counts, when requested *)
  flags : Pref_bmo.Engine.flags;
      (** deadline degradation / row-cap truncation markers *)
}

let full_preference ?registry (q : Ast.query) =
  (* PREFERRING p CASCADE c1 CASCADE c2 = (p & c1) & c2 *)
  match q.Ast.preferring with
  | None -> (
    match q.Ast.cascade with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun acc c -> Pref.prior acc (Translate.pref ?registry c))
           (Translate.pref ?registry first)
           rest))
  | Some p ->
    Some
      (List.fold_left
         (fun acc c -> Pref.prior acc (Translate.pref ?registry c))
         (Translate.pref ?registry p)
         q.Ast.cascade)

(* ------------------------------------------------------------------ *)
(* Static checking: an injected hook, so the analyzer library can sit   *)
(* above this one in the build graph yet vet queries before execution.  *)

type check_finding = {
  check_code : string;
  check_severity : string;
  check_path : string;
  check_message : string;
}

exception Rejected of check_finding list

let () =
  Printexc.register_printer (function
    | Rejected fs ->
      Some
        (Printf.sprintf "Psql.Exec.Rejected: %s"
           (String.concat "; "
              (List.map
                 (fun f ->
                   Printf.sprintf "%s[%s] %s" f.check_severity f.check_code
                     f.check_message)
                 fs)))
    | _ -> None)

let checker :
    (?registry:Translate.registry -> env -> Ast.query -> check_finding list)
    option
    ref =
  ref None

let set_checker c = checker := c

let static_check ?registry env q =
  match !checker with None -> [] | Some f -> f ?registry env q

(* ------------------------------------------------------------------ *)
(* FROM clause: single tables stay unqualified; joins qualify every     *)
(* column as table.column and pull equi-join conjuncts out of WHERE.    *)

let get_table env name =
  match find_table env name with
  | Some r -> r
  | None ->
    raise (Unknown_table { name; hint = Typo.nearest (List.map fst env) name })

let qualified env name =
  let r = get_table env name in
  Relation.rename_schema r (Schema.prefix name (Relation.schema r))

(* Split the WHERE conjuncts into equi-join predicates usable between the
   already-joined schema and the next table, and the rest. *)
let split_join_keys left_schema right_schema conjuncts =
  List.partition_map
    (fun c ->
      match c with
      | Ast.Cmp_attr (a, Ast.Eq, b) -> (
        let try_pair x y =
          match Schema.resolve left_schema x, Schema.resolve right_schema y with
          | Ok l, Ok r -> Some (l, r)
          | _ -> None
        in
        match try_pair a b with
        | Some (l, r) -> Either.Left (l, r)
        | None -> (
          match try_pair b a with
          | Some (l, r) -> Either.Left (l, r)
          | None -> Either.Right c))
      | c -> Either.Right c)
    conjuncts

let build_from env (q : Ast.query) =
  match q.Ast.from with
  | [] -> raise (Error "FROM requires at least one table")
  | [ t ] -> (get_table env t, q.Ast.where)
  | first :: rest ->
    let conjuncts =
      match q.Ast.where with Some c -> Ast.conjuncts c | None -> []
    in
    let joined, remaining =
      List.fold_left
        (fun (acc, conjuncts) t ->
          let r = qualified env t in
          let keys, rest =
            split_join_keys (Relation.schema acc) (Relation.schema r) conjuncts
          in
          match keys with
          | [] -> (Relation.product acc r, rest)
          | _ ->
            ( Relation.hash_join acc r ~left_cols:(List.map fst keys)
                ~right_cols:(List.map snd keys),
              rest ))
        (qualified env first, conjuncts)
        rest
    in
    (joined, Ast.conjoin remaining)

(* Resolve a possibly-qualified attribute name against the working schema.
   Over a single table a [table.column] reference naming that table is
   accepted and stripped. *)
let resolver (q : Ast.query) schema name =
  match Schema.resolve schema name with
  | Ok n -> n
  | Error msg -> (
    match q.Ast.from, String.index_opt name '.' with
    | [ t ], Some i when String.sub name 0 i = t -> (
      let bare = String.sub name (i + 1) (String.length name - i - 1) in
      match Schema.resolve schema bare with
      | Ok n -> n
      | Error msg -> raise (Error msg))
    | _ -> raise (Error msg))

let project_result resolve (q : Ast.query) rel =
  match q.Ast.select with
  | [ Ast.Star ] -> rel
  | items ->
    let cols =
      List.map
        (function
          | Ast.Star -> raise (Error "SELECT * cannot be mixed with columns")
          | Ast.Column c -> resolve c)
        items
    in
    Relation.project rel cols

(* ------------------------------------------------------------------ *)
(* Semantic rewrites the executor consults when the cost model is on.   *)

(* σ[P](σ_W(R)) = σ_W(σ[P](R)) when every WHERE conjunct keeps the
   better side of one of P's chains (LOWEST a with a <= c or a < c,
   HIGHEST a with a >= c or a > c): such a selection is closed under
   domination — any tuple preferred to a surviving tuple also survives —
   so the winnow commutes with it (Chomicki's semantic optimization of
   preference queries). The executor uses it to serve a filtered query
   from the cached winnow of the unfiltered relation. *)
let selection_commutes resolve p conjuncts =
  match Pref_bmo.Planner.chain_dims p with
  | None -> false
  | Some (attrs, maximize) -> (
    conjuncts <> []
    &&
    try
      List.for_all
        (fun c ->
          match c with
          | Ast.Cmp (a, op, _) ->
            List.mem (resolve a) attrs
            && (match op with
               | Ast.Le | Ast.Lt -> not maximize
               | Ast.Ge | Ast.Gt -> maximize
               | Ast.Eq | Ast.Neq -> false)
          | _ -> false)
        conjuncts
    with _ -> false)

let run_query_within ?registry ~deadline (cfg : Pref_bmo.Engine.config) env
    (q : Ast.query) : result =
  let profile = cfg.Pref_bmo.Engine.profile in
  Pref_obs.Span.with_span "psql.query" @@ fun () ->
  if cfg.Pref_bmo.Engine.check then begin
    let findings = static_check ?registry env q in
    if List.exists (fun f -> f.check_severity = "error") findings then
      raise (Rejected findings)
  end;
  (* Per-clause phase runner: always a tracing span; additionally a timed
     profile phase when the caller asked for a profile. *)
  let phases = ref [] in
  let phase name f =
    if profile then begin
      let r, ms = Pref_obs.Span.timed_span ("psql." ^ name) f in
      phases := Pref_obs.Profile.phase name ms :: !phases;
      r
    end
    else Pref_obs.Span.with_span ("psql." ^ name) f
  in
  let rel, where = phase "from" (fun () -> build_from env q) in
  let schema = Relation.schema rel in
  let resolve = resolver q schema in
  (* hard constraints first: the exact-match world *)
  let where_pred =
    Option.map
      (fun c ->
        Translate.condition schema (Ast.map_condition_attrs resolve c))
      where
  in
  let filtered =
    match where_pred with
    | None -> rel
    | Some pred -> phase "where" (fun () -> Relation.select pred rel)
  in
  let preference =
    phase "translate" (fun () ->
        full_preference ?registry
          {
            q with
            Ast.preferring =
              Option.map (Ast.map_pref_attrs resolve) q.Ast.preferring;
            cascade = List.map (Ast.map_pref_attrs resolve) q.Ast.cascade;
          })
  in
  (* algebraic optimizer step: rewrite the term to a fixpoint of the §4
     laws; every rule preserves ≡ (Definition 13), hence the BMO result
     (Proposition 7). The original term is kept for EXPLAIN and the BUT
     ONLY quality functions. *)
  let evaluated, rewrite_steps =
    match preference with
    | None -> (None, 0)
    | Some p ->
      let p', steps = phase "rewrite" (fun () -> Rewrite.simplify_count p) in
      (Some p', steps)
  in
  let grouping = List.map resolve q.Ast.grouping in
  (* soft constraints: BMO match-making.  The BMO layer draws down the
     query deadline and reports degradation through its flags; the row cap
     is applied to the final result below, not inside the BMO set. *)
  let bmo_profile = ref None in
  let bmo_flags = ref Pref_bmo.Engine.complete in
  let bmo_cfg = { cfg with Pref_bmo.Engine.max_rows = None } in
  let after_pref =
    match preference, evaluated with
    | None, _ | _, None -> filtered
    | Some p, Some p_eval ->
      phase "evaluate" (fun () ->
          match q.Ast.top, grouping with
          | Some k, [] when Pref.is_scorable p ->
            (* the ranked query model of §6.2: k best by score *)
            let r = Pref_bmo.Topk.kbest schema p ~k filtered in
            if profile then
              bmo_profile :=
                Some
                  (Pref_obs.Profile.make ~algorithm:"topk"
                     ~input_rows:(Relation.cardinality filtered)
                     ~output_rows:(Relation.cardinality r) ());
            r
          | _, [] ->
            let semantic_ok =
              cfg.Pref_bmo.Engine.costmodel
              && cfg.Pref_bmo.Engine.algorithm = Pref_bmo.Engine.Alg_auto
            in
            let record algorithm attrs r =
              if profile then
                bmo_profile :=
                  Some
                    (List.fold_left
                       (fun prof (k, v) -> Pref_obs.Profile.add_attr prof k v)
                       (Pref_obs.Profile.make ~algorithm
                          ~input_rows:(Relation.cardinality filtered)
                          ~output_rows:(Relation.cardinality r) ())
                       attrs);
              r
            in
            (* Selection / winnow commute: serve σ_W(σ[P](R)) from the
               cached unfiltered winnow when W is domination-closed. *)
            let commute_serve () =
              match where, where_pred with
              | Some c, Some pred
                when semantic_ok && cfg.Pref_bmo.Engine.cache
                     && Pref_bmo.Cache.is_enabled ()
                     && selection_commutes resolve p_eval (Ast.conjuncts c)
                -> (
                (* probe (non-counting) before lookup so a cold base
                   winnow does not count an extra miss *)
                match
                  Pref_bmo.Cache.probe Pref_bmo.Cache.global schema p_eval rel
                with
                | None -> None
                | Some _ -> (
                  match
                    Pref_bmo.Cache.lookup Pref_bmo.Cache.global schema p_eval
                      rel
                  with
                  | Some (res, reuse) ->
                    let tier =
                      match reuse with
                      | Pref_bmo.Cache.Exact -> "exact"
                      | Pref_bmo.Cache.Semantic s -> "semantic:" ^ s
                    in
                    Some
                      (record "cache-commute"
                         [ ("reuse", tier) ]
                         (Relation.select pred res))
                  | None -> None))
              | _ -> None
            in
            (* Redundant winnow: P provably relates no two input rows, so
               σ[P](filtered) = filtered. *)
            let identity_serve () =
              if not semantic_ok then None
              else
                match Constraints.redundant schema p_eval filtered with
                | Some reason ->
                  Some (record "identity" [ ("reason", reason) ] filtered)
                | None -> None
            in
            (* Join fan-out pushdown: winnow the (much smaller) distinct
               projection onto attrs(P) and keep the rows whose
               projection survived — σ[P] only reads attrs(P). *)
            let pushdown_serve () =
              if not (semantic_ok && List.length q.Ast.from > 1) then None
              else
                let pa = Pref.attrs p_eval in
                if
                  pa = []
                  || List.length pa >= Schema.arity schema
                  || not (List.for_all (Schema.mem schema) pa)
                then None
                else begin
                  let proj = Relation.project_distinct filtered pa in
                  let dn = Relation.cardinality proj in
                  let n = Relation.cardinality filtered in
                  if 2 * dn > n then None
                  else begin
                    let winnowed, f =
                      Pref_bmo.Query.sigma_within ~deadline bmo_cfg
                        (Relation.schema proj) p_eval proj
                    in
                    bmo_flags := f;
                    let keep = Hashtbl.create (max 16 (2 * dn)) in
                    List.iter
                      (fun t -> Hashtbl.replace keep t ())
                      (Relation.rows winnowed);
                    let r =
                      Relation.select
                        (fun t ->
                          Hashtbl.mem keep (Tuple.project schema t pa))
                        filtered
                    in
                    Some
                      (record "pushdown"
                         [ ("distinct", string_of_int dn) ]
                         r)
                  end
                end
            in
            let fallback () =
              if profile then begin
                let r, f, prof =
                  Pref_bmo.Query.sigma_profiled_within ~deadline bmo_cfg
                    schema p_eval filtered
                in
                bmo_flags := f;
                bmo_profile := Some prof;
                r
              end
              else begin
                let r, f =
                  Pref_bmo.Query.sigma_within ~deadline bmo_cfg schema p_eval
                    filtered
                in
                bmo_flags := f;
                r
              end
            in
            (match commute_serve () with
            | Some r -> r
            | None -> (
              match identity_serve () with
              | Some r -> r
              | None -> (
                match pushdown_serve () with
                | Some r -> r
                | None -> fallback ())))
          | _, by ->
            let r, f =
              Pref_bmo.Query.sigma_groupby_within ~deadline bmo_cfg schema
                p_eval ~by filtered
            in
            bmo_flags := f;
            if profile then
              bmo_profile :=
                Some
                  (Pref_obs.Profile.make
                     ~algorithm:
                       ("groupby:"
                       ^ Pref_bmo.Query.algorithm_to_string
                           cfg.Pref_bmo.Engine.algorithm)
                     ~input_rows:(Relation.cardinality filtered)
                     ~output_rows:(Relation.cardinality r) ());
            r)
  in
  (* BUT ONLY quality supervision *)
  let after_quality =
    match q.Ast.but_only, preference with
    | [], _ -> after_pref
    | qs, Some p ->
      phase "quality" (fun () ->
          Relation.select
            (Translate.quality_filter schema p
               (List.map (Ast.map_quality_attrs resolve) qs))
            after_pref)
    | _ :: _, None -> raise (Error "BUT ONLY requires a PREFERRING clause")
  in
  (* presentation order *)
  let ordered =
    match q.Ast.order_by with
    | [] -> after_quality
    | keys ->
      phase "order" (fun () ->
          let idx =
            List.map
              (fun (a, asc) -> (Schema.index_of_exn schema (resolve a), asc))
              keys
          in
          Relation.sort_by
            (fun t u ->
              let rec go = function
                | [] -> 0
                | (i, asc) :: rest ->
                  let c = Value.compare (Tuple.get t i) (Tuple.get u i) in
                  if c <> 0 then if asc then c else -c else go rest
              in
              go idx)
            after_quality)
  in
  let after_quality = ordered in
  (* TOP k truncation for non-ranked results *)
  let truncated =
    match q.Ast.top, preference with
    | Some _, Some p when Pref.is_scorable p && grouping = [] ->
      after_quality (* already the k best *)
    | Some k, _ ->
      let rows = Relation.rows after_quality in
      let rec take n = function
        | [] -> []
        | r :: rest -> if n = 0 then [] else r :: take (n - 1) rest
      in
      Relation.make (Relation.schema after_quality) (take k rows)
    | None, _ -> after_quality
  in
  let projected = project_result resolve q truncated in
  (* the engine row cap applies to the final, presentation-ordered result *)
  let relation, capped =
    match cfg.Pref_bmo.Engine.max_rows with
    | None -> (projected, false)
    | Some k ->
      let rows = Relation.rows projected in
      if List.length rows <= k then (projected, false)
      else
        ( Relation.make (Relation.schema projected)
            (List.filteri (fun i _ -> i < k) rows),
          true )
  in
  let flags =
    Pref_bmo.Engine.union_flags !bmo_flags
      { Pref_bmo.Engine.partial = false; truncated = capped }
  in
  let prof =
    if not profile then None
    else begin
      (* the executor owns the clause-level phase list; the BMO profile
         contributes algorithm, counts and attrs (its internal phases are
         subsumed by the [evaluate] clause) *)
      let base =
        match !bmo_profile with
        | Some bp -> bp
        | None ->
          Pref_obs.Profile.make ~algorithm:"scan"
            ~input_rows:(Relation.cardinality rel)
            ~output_rows:(Relation.cardinality relation) ()
      in
      let base =
        { base with Pref_obs.Profile.phases = List.rev !phases }
      in
      Some
        (if rewrite_steps > 0 || preference <> None then
           Pref_obs.Profile.add_attr base "rewrite_steps"
             (string_of_int rewrite_steps)
         else base)
    end
  in
  { relation; preference; profile = prof; flags }

(* ------------------------------------------------------------------ *)
(* EXPLAIN [ANALYZE]: the same pipeline, narrating instead of answering.
   FROM / WHERE / translate / rewrite always execute — the plan decision
   needs the real filtered relation (cardinality, sampling, cache
   fingerprints).  The σ[P] step and everything after it run only under
   ANALYZE; a plain EXPLAIN reports their structure and estimates. *)

module Plan = Pref_bmo.Explain.Plan

let explain_query_within ?registry ?(parse_ms = None) ~analyze ~deadline
    (cfg : Pref_bmo.Engine.config) env ~query_text (q : Ast.query) : Plan.t =
  Pref_obs.Span.with_span "psql.explain" @@ fun () ->
  if cfg.Pref_bmo.Engine.check then begin
    let findings = static_check ?registry env q in
    if List.exists (fun f -> f.check_severity = "error") findings then
      raise (Rejected findings)
  end;
  let ops = ref [] in
  let push o = ops := o :: !ops in
  (match parse_ms with
  | Some ms -> push (Plan.op "parse" ~ms)
  | None -> ());
  let timed name f = Pref_obs.Span.timed_span ("psql." ^ name) f in
  let (rel, where), from_ms = timed "from" (fun () -> build_from env q) in
  let n0 = Relation.cardinality rel in
  push
    (Plan.op "from" ~rows_out:n0 ~ms:from_ms
       ~attrs:[ ("tables", String.concat "," q.Ast.from) ]);
  let schema = Relation.schema rel in
  let resolve = resolver q schema in
  let filtered =
    match where with
    | None -> rel
    | Some c ->
      let r, ms =
        timed "where" (fun () ->
            Relation.select
              (Translate.condition schema (Ast.map_condition_attrs resolve c))
              rel)
      in
      push
        (Plan.op "where" ~rows_in:n0 ~rows_out:(Relation.cardinality r) ~ms);
      r
  in
  let n1 = Relation.cardinality filtered in
  let preference, translate_ms =
    timed "translate" (fun () ->
        full_preference ?registry
          {
            q with
            Ast.preferring =
              Option.map (Ast.map_pref_attrs resolve) q.Ast.preferring;
            cascade = List.map (Ast.map_pref_attrs resolve) q.Ast.cascade;
          })
  in
  let p =
    match preference with
    | Some p -> p
    | None ->
      raise (Error "EXPLAIN requires a PREFERRING or CASCADE clause")
  in
  push (Plan.op "translate" ~ms:translate_ms);
  let (p_eval, rewrite_steps), rewrite_ms =
    timed "rewrite" (fun () -> Rewrite.simplify_count p)
  in
  push
    (Plan.op "rewrite" ~ms:rewrite_ms
       ~attrs:[ ("steps", string_of_int rewrite_steps) ]);
  let grouping = List.map resolve q.Ast.grouping in
  let bmo_cfg = { cfg with Pref_bmo.Engine.max_rows = None } in
  let plan, trace, forced =
    Plan.decide bmo_cfg ~deadline schema p_eval filtered
  in
  (* Winnow elimination mirrors the executor: when P provably relates no
     two rows of the input, the identity plan replaces whatever the
     planner picked (which moves to the rejected list). *)
  let plan, trace =
    if
      cfg.Pref_bmo.Engine.costmodel && forced = None && grouping = []
      && not (q.Ast.top <> None && Pref.is_scorable p)
    then
      match Constraints.redundant schema p_eval filtered with
      | Some reason ->
        ( Pref_bmo.Planner.Plan_identity,
          {
            trace with
            Pref_bmo.Planner.t_rejected =
              ( Pref_bmo.Planner.plan_kind plan,
                "winnow provably redundant: " ^ reason )
              :: trace.Pref_bmo.Planner.t_rejected;
          } )
      | None -> (plan, trace)
    else (plan, trace)
  in
  let identity =
    match plan with Pref_bmo.Planner.Plan_identity -> true | _ -> false
  in
  let est = trace.Pref_bmo.Planner.t_estimate in
  (* evaluation: real under ANALYZE, structural otherwise *)
  let after_pref =
    match q.Ast.top, grouping with
    | Some k, [] when Pref.is_scorable p ->
      if analyze then begin
        let r, ms =
          timed "topk" (fun () -> Pref_bmo.Topk.kbest schema p ~k filtered)
        in
        push
          (Plan.op "topk" ~rows_in:n1 ~rows_out:(Relation.cardinality r) ~ms
             ~attrs:[ ("k", string_of_int k) ]);
        Some r
      end
      else begin
        push (Plan.op "topk" ~rows_in:n1 ~attrs:[ ("k", string_of_int k) ]);
        None
      end
    | _, [] ->
      if analyze && identity then begin
        push
          (Plan.op "sigma" ~rows_in:n1 ~rows_out:n1 ?est_out:est
             ~attrs:[ ("algorithm", "identity") ]);
        Some filtered
      end
      else if analyze then begin
        let (r, flags, prof), ms =
          timed "evaluate" (fun () ->
              Pref_bmo.Query.sigma_profiled_within ~deadline bmo_cfg schema
                p_eval filtered)
        in
        let children =
          List.map
            (fun ph ->
              Plan.op ph.Pref_obs.Profile.phase_name
                ~ms:ph.Pref_obs.Profile.phase_ms)
            prof.Pref_obs.Profile.phases
        in
        push
          (Plan.op "sigma" ~rows_in:n1 ~rows_out:(Relation.cardinality r)
             ?est_out:est ~ms ~children
             ~attrs:
               ((("algorithm", prof.Pref_obs.Profile.algorithm)
                ::
                (if prof.Pref_obs.Profile.comparisons >= 0 then
                   [
                     ( "comparisons",
                       string_of_int prof.Pref_obs.Profile.comparisons );
                   ]
                 else []))
               @ prof.Pref_obs.Profile.attrs
               @ Pref_bmo.Engine.flags_attrs flags));
        Some r
      end
      else begin
        push (Plan.op "sigma" ~rows_in:n1 ?est_out:est);
        None
      end
    | _, by ->
      if analyze then begin
        let (r, flags), ms =
          timed "evaluate" (fun () ->
              Pref_bmo.Query.sigma_groupby_within ~deadline bmo_cfg schema
                p_eval ~by filtered)
        in
        push
          (Plan.op "sigma_groupby" ~rows_in:n1
             ~rows_out:(Relation.cardinality r) ~ms
             ~attrs:
               (("by", String.concat "," by)
               :: Pref_bmo.Engine.flags_attrs flags));
        Some r
      end
      else begin
        push
          (Plan.op "sigma_groupby" ~rows_in:n1
             ~attrs:[ ("by", String.concat "," by) ]);
        None
      end
  in
  (* the presentation tail: BUT ONLY / ORDER BY / TOP / projection *)
  let structural name attrs = push (Plan.op name ~attrs) in
  let tail r =
    let r =
      match q.Ast.but_only with
      | [] -> r
      | qs -> (
        match r with
        | None ->
          structural "quality" [];
          None
        | Some rel_in ->
          let rows_in = Relation.cardinality rel_in in
          let out, ms =
            timed "quality" (fun () ->
                Relation.select
                  (Translate.quality_filter schema p
                     (List.map (Ast.map_quality_attrs resolve) qs))
                  rel_in)
          in
          push
            (Plan.op "quality" ~rows_in ~rows_out:(Relation.cardinality out)
               ~ms);
          Some out)
    in
    let r =
      match q.Ast.order_by with
      | [] -> r
      | keys -> (
        let attrs = [ ("by", String.concat "," (List.map fst keys)) ] in
        match r with
        | None ->
          structural "order" attrs;
          None
        | Some rel_in ->
          let idx =
            List.map
              (fun (a, asc) -> (Schema.index_of_exn schema (resolve a), asc))
              keys
          in
          let out, ms =
            timed "order" (fun () ->
                Relation.sort_by
                  (fun t u ->
                    let rec go = function
                      | [] -> 0
                      | (i, asc) :: rest ->
                        let c = Value.compare (Tuple.get t i) (Tuple.get u i) in
                        if c <> 0 then if asc then c else -c else go rest
                    in
                    go idx)
                  rel_in)
          in
          push
            (Plan.op "order" ~rows_out:(Relation.cardinality out) ~ms ~attrs);
          Some out)
    in
    let r =
      match q.Ast.top with
      | Some k when not (Pref.is_scorable p && grouping = []) -> (
        let attrs = [ ("k", string_of_int k) ] in
        match r with
        | None ->
          structural "top" attrs;
          None
        | Some rel_in ->
          let rows = Relation.rows rel_in in
          let out =
            Relation.make (Relation.schema rel_in)
              (List.filteri (fun i _ -> i < k) rows)
          in
          push
            (Plan.op "top" ~rows_in:(List.length rows)
               ~rows_out:(Relation.cardinality out) ~attrs);
          Some out)
      | _ -> r
    in
    match q.Ast.select with
    | [ Ast.Star ] -> r
    | _ -> (
      match r with
      | None ->
        structural "project" [];
        None
      | Some rel_in ->
        let out, ms = timed "project" (fun () -> project_result resolve q rel_in) in
        push (Plan.op "project" ~rows_out:(Relation.cardinality out) ~ms);
        Some out)
  in
  ignore (tail after_pref : Relation.t option);
  let ops = List.rev !ops in
  let total_ms =
    if analyze then
      Some
        (List.fold_left
           (fun acc o -> acc +. Option.value o.Plan.op_ms ~default:0.)
           0. ops)
    else None
  in
  Plan.make ~query:query_text ~analyze ~plan ~forced ~trace ~ops ~total_ms ()

let explain_within ?registry ~analyze ~deadline cfg env src =
  let q, parse_ms =
    Pref_obs.Span.timed_span "psql.parse" (fun () -> Parser.parse_query src)
  in
  explain_query_within ?registry ~parse_ms:(Some parse_ms) ~analyze ~deadline
    cfg env ~query_text:(String.trim src) q

let run_query_cfg ?registry cfg env q =
  run_query_within ?registry ~deadline:(Pref_bmo.Engine.deadline_of cfg) cfg
    env q

let run_within ?registry ~deadline cfg env src =
  if cfg.Pref_bmo.Engine.profile then begin
    let q, parse_ms =
      Pref_obs.Span.timed_span "psql.parse" (fun () -> Parser.parse_query src)
    in
    let r = run_query_within ?registry ~deadline cfg env q in
    {
      r with
      profile =
        Option.map
          (fun p ->
            Pref_obs.Profile.add_phases p
              [ Pref_obs.Profile.phase "parse" parse_ms ])
          r.profile;
    }
  end
  else
    run_query_within ?registry ~deadline cfg env
      (Pref_obs.Span.with_span "psql.parse" (fun () -> Parser.parse_query src))

let run_cfg ?registry cfg env src =
  (* the deadline starts before parsing, so parse / join / BMO all draw
     down the same budget *)
  run_within ?registry ~deadline:(Pref_bmo.Engine.deadline_of cfg) cfg env src

(* ------------------------------------------------------------------ *)
(* Compatibility wrappers: the pre-engine optional-argument surface,
   each a one-liner through the shared Compat.legacy_cfg builder. *)

let run_query ?registry ?algorithm ?cache ?domains ?profile ?check env q =
  run_query_cfg ?registry
    (Pref_bmo.Compat.legacy_cfg ?algorithm ?cache ?domains ?profile ?check ())
    env q

let run ?registry ?algorithm ?cache ?domains ?profile ?check env src =
  run_cfg ?registry
    (Pref_bmo.Compat.legacy_cfg ?algorithm ?cache ?domains ?profile ?check ())
    env src
