(** Recursive-descent parser for Preference SQL (§6.1).

    Grammar sketch:
    {v
    query   ::= SELECT ('*' | col, ...) FROM table
                [WHERE cond] [PREFERRING pref] (CASCADE pref)*
                [BUT ONLY quality (AND quality)*]
                [GROUPING attr, ...] [TOP k] [;]
    pref    ::= pareto (PRIOR TO pareto)*
    pareto  ::= atom (AND atom)*
    atom    ::= '(' pref ')' | LOWEST(a) | HIGHEST(a) | DUAL(pref)
              | a AROUND lit | a BETWEEN lit AND lit
              | a = lit [ELSE a (=|<>|IN|NOT IN) ...]
              | a <> lit | a IN (lits) [ELSE ...] | a NOT IN (lits)
              | EXPLICIT(a, (worse, better), ...)
              | SCORE(a, fname) | RANK(fname, pref, pref)
    quality ::= LEVEL(a) cmp int | DISTANCE(a) cmp num
    v}
    [AND] inside PREFERRING is Pareto accumulation ⊗; [PRIOR TO] is
    prioritized accumulation &; [CASCADE] chains prioritization below the
    whole PREFERRING term. Keywords are case-insensitive; identifiers are
    lowercased. *)

exception Error of string * int
(** Message and byte offset into the query text. *)

val parse_query : string -> Ast.query
val parse_pref : string -> Ast.pref
val parse_condition : string -> Ast.condition

val explain_prefix : string -> (bool * string) option
(** [Some (analyze, rest)] when the source starts with [EXPLAIN]
    (case-insensitive), where [analyze] records an [ANALYZE] modifier
    and [rest] is the query text after the prefix, verbatim. [EXPLAIN]
    and [ANALYZE] are reserved words, so the prefix can never be the
    start of a plain query. *)
