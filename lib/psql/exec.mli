(** Preference SQL execution against in-memory relations.

    Pipeline: hard WHERE filter (exact-match world) → preference
    construction (PREFERRING & CASCADEs) → BMO evaluation (or the ranked
    k-best model when TOP k is given and the preference is scorable, §6.2) →
    BUT ONLY quality supervision → projection. *)

open Pref_relation

exception Error of string

type env = (string * Relation.t) list
(** Named tables; lookup is case-insensitive. *)

val find_table : env -> string -> Relation.t option

exception Unknown_table of { name : string; hint : string option }
(** A FROM clause named a table the environment does not hold. [hint] is
    the nearest known table name under edit distance, when one is close
    enough to plausibly be a typo ({!Pref_relation.Typo.nearest}). *)

val unknown_table_message : name:string -> hint:string option -> string
(** Human-readable rendering of {!Unknown_table}, suggestion included. *)

type result = {
  relation : Relation.t;
  preference : Preferences.Pref.t option;
      (** the translated preference term, for EXPLAIN-style output *)
  profile : Pref_obs.Profile.t option;
      (** present when the query ran with [~profile:true]: per-clause phase
          timings (parse → from → where → translate → rewrite → evaluate →
          quality/order), the BMO algorithm and its dominance-test count *)
  flags : Pref_bmo.Engine.flags;
      (** [partial] when a deadline expired and the BMO set is a sound
          prefix; [truncated] when [max_rows] dropped result rows.
          {!Pref_bmo.Engine.complete} for every query run through the
          compatibility wrappers. *)
}

val full_preference :
  ?registry:Translate.registry -> Ast.query -> Preferences.Pref.t option
(** The complete term: PREFERRING p CASCADE c1 CASCADE c2 = (p & c1) & c2. *)

(** {1 Static checking}

    The executor can vet queries through an externally installed static
    analyzer before running them (dependency injection keeps this library
    below the analyzer in the build graph — [Pref_analysis.Install.install]
    plugs in the real checker). *)

type check_finding = {
  check_code : string;  (** stable diagnostic code, e.g. ["E102"] *)
  check_severity : string;  (** ["error"], ["warning"] or ["hint"] *)
  check_path : string;  (** dotted location inside the query *)
  check_message : string;
}

exception Rejected of check_finding list
(** Raised by [run]/[run_query] with [~check:true] when the installed
    checker reports at least one error-severity finding; carries the full
    report (warnings and hints included). *)

val set_checker :
  (?registry:Translate.registry -> env -> Ast.query -> check_finding list)
  option ->
  unit

val static_check :
  ?registry:Translate.registry -> env -> Ast.query -> check_finding list
(** The installed checker's findings; [[]] when no checker is installed. *)

(** {1 Engine entry points}

    The executor's primary interface: one {!Pref_bmo.Engine.config}
    record carries every knob (algorithm, domains, cache, check, profile,
    deadline, row cap). The [_within] variants accept an
    already-started deadline so a server can begin the budget at
    admission rather than at parse time. *)

val run_query_within :
  ?registry:Translate.registry ->
  deadline:Pref_bmo.Engine.deadline ->
  Pref_bmo.Engine.config ->
  env ->
  Ast.query ->
  result

val run_query_cfg :
  ?registry:Translate.registry ->
  Pref_bmo.Engine.config ->
  env ->
  Ast.query ->
  result

val run_within :
  ?registry:Translate.registry ->
  deadline:Pref_bmo.Engine.deadline ->
  Pref_bmo.Engine.config ->
  env ->
  string ->
  result

val run_cfg :
  ?registry:Translate.registry ->
  Pref_bmo.Engine.config ->
  env ->
  string ->
  result
(** Parse and execute under a configuration. The deadline starts before
    parsing; on expiry during BMO evaluation the result degrades to a
    sound prefix with [flags.partial] set (see {!Pref_bmo.Query.sigma_within}).
    [config.max_rows] caps the final projected, ordered result and sets
    [flags.truncated]. Raises {!Parser.Error}, {!Translate.Error},
    {!Error}, {!Unknown_table}, or {!Rejected} (with [config.check]). *)

(** {1 EXPLAIN [ANALYZE]} *)

val explain_query_within :
  ?registry:Translate.registry ->
  ?parse_ms:float option ->
  analyze:bool ->
  deadline:Pref_bmo.Engine.deadline ->
  Pref_bmo.Engine.config ->
  env ->
  query_text:string ->
  Ast.query ->
  Pref_bmo.Explain.Plan.t

val explain_within :
  ?registry:Translate.registry ->
  analyze:bool ->
  deadline:Pref_bmo.Engine.deadline ->
  Pref_bmo.Engine.config ->
  env ->
  string ->
  Pref_bmo.Explain.Plan.t
(** Explain the query instead of answering it: parse, execute the
    FROM/WHERE/translate/rewrite prefix (the plan decision needs the
    real filtered relation), take the σ[P] plan decision exactly as
    execution would ({!Pref_bmo.Explain.Plan.decide} — cache probe with
    per-tier timings, deadline ladder, algorithm knob, planner), and
    report the plan, the rejected alternatives and the estimated BMO
    cardinality. With [analyze:true] the σ step and the presentation
    tail (BUT ONLY / ORDER BY / TOP / projection) also run, filling
    per-operator actual cardinalities and timings. Raises {!Error} when
    the query has no PREFERRING/CASCADE clause, plus everything
    {!run_within} raises. *)

(** {1 Compatibility wrappers}

    Deprecated: the pre-engine optional-argument surface; each is a
    one-line wrapper building its config via
    {!Pref_bmo.Compat.legacy_cfg}. No deadline, no row cap —
    [result.flags] is always {!Pref_bmo.Engine.complete}. Prefer the
    [_cfg]/[_within] entry points above. *)

val run_query :
  ?registry:Translate.registry ->
  ?algorithm:Pref_bmo.Query.algorithm ->
  ?cache:bool ->
  ?domains:int ->
  ?profile:bool ->
  ?check:bool ->
  env ->
  Ast.query ->
  result

val run :
  ?registry:Translate.registry ->
  ?algorithm:Pref_bmo.Query.algorithm ->
  ?cache:bool ->
  ?domains:int ->
  ?profile:bool ->
  ?check:bool ->
  env ->
  string ->
  result
(** Parse and execute. Raises {!Parser.Error}, {!Translate.Error} or
    {!Error}. [~check:true] runs the installed static checker first and
    raises {!Rejected} on error-severity findings (a no-op when no checker
    is installed). [domains] sets the degree of parallelism for the parallel
    and auto algorithms (the shell's [\set domains N]). [cache] opts the
    BMO evaluation out of the result cache for this call (the cache only
    acts at all when {!Pref_bmo.Cache.global} is enabled, e.g. via the
    shell's [\cache on]); it applies to the pre-projection BMO set, so
    queries differing only in their SELECT list share cache entries.
    [~profile:true] additionally fills {!result.profile};
    independent of that, every clause runs inside a {!Pref_obs.Span} so
    traces appear whenever telemetry is globally enabled. *)
