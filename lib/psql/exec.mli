(** Preference SQL execution against in-memory relations.

    Pipeline: hard WHERE filter (exact-match world) → preference
    construction (PREFERRING & CASCADEs) → BMO evaluation (or the ranked
    k-best model when TOP k is given and the preference is scorable, §6.2) →
    BUT ONLY quality supervision → projection. *)

open Pref_relation

exception Error of string

type env = (string * Relation.t) list
(** Named tables; lookup is case-insensitive. *)

val find_table : env -> string -> Relation.t option

type result = {
  relation : Relation.t;
  preference : Preferences.Pref.t option;
      (** the translated preference term, for EXPLAIN-style output *)
  profile : Pref_obs.Profile.t option;
      (** present when the query ran with [~profile:true]: per-clause phase
          timings (parse → from → where → translate → rewrite → evaluate →
          quality/order), the BMO algorithm and its dominance-test count *)
}

val full_preference :
  ?registry:Translate.registry -> Ast.query -> Preferences.Pref.t option
(** The complete term: PREFERRING p CASCADE c1 CASCADE c2 = (p & c1) & c2. *)

(** {1 Static checking}

    The executor can vet queries through an externally installed static
    analyzer before running them (dependency injection keeps this library
    below the analyzer in the build graph — [Pref_analysis.Install.install]
    plugs in the real checker). *)

type check_finding = {
  check_code : string;  (** stable diagnostic code, e.g. ["E102"] *)
  check_severity : string;  (** ["error"], ["warning"] or ["hint"] *)
  check_path : string;  (** dotted location inside the query *)
  check_message : string;
}

exception Rejected of check_finding list
(** Raised by [run]/[run_query] with [~check:true] when the installed
    checker reports at least one error-severity finding; carries the full
    report (warnings and hints included). *)

val set_checker :
  (?registry:Translate.registry -> env -> Ast.query -> check_finding list)
  option ->
  unit

val static_check :
  ?registry:Translate.registry -> env -> Ast.query -> check_finding list
(** The installed checker's findings; [[]] when no checker is installed. *)

val run_query :
  ?registry:Translate.registry ->
  ?algorithm:Pref_bmo.Query.algorithm ->
  ?cache:bool ->
  ?domains:int ->
  ?profile:bool ->
  ?check:bool ->
  env ->
  Ast.query ->
  result

val run :
  ?registry:Translate.registry ->
  ?algorithm:Pref_bmo.Query.algorithm ->
  ?cache:bool ->
  ?domains:int ->
  ?profile:bool ->
  ?check:bool ->
  env ->
  string ->
  result
(** Parse and execute. Raises {!Parser.Error}, {!Translate.Error} or
    {!Error}. [~check:true] runs the installed static checker first and
    raises {!Rejected} on error-severity findings (a no-op when no checker
    is installed). [domains] sets the degree of parallelism for the parallel
    and auto algorithms (the shell's [\set domains N]). [cache] opts the
    BMO evaluation out of the result cache for this call (the cache only
    acts at all when {!Pref_bmo.Cache.global} is enabled, e.g. via the
    shell's [\cache on]); it applies to the pre-projection BMO set, so
    queries differing only in their SELECT list share cache entries.
    [~profile:true] additionally fills {!result.profile};
    independent of that, every clause runs inside a {!Pref_obs.Span} so
    traces appear whenever telemetry is globally enabled. *)
