open Pref_relation

exception Error of string * int

type state = {
  tokens : Token.located array;
  mutable i : int;
}

let peek st = st.tokens.(st.i).Token.token
let pos st = st.tokens.(st.i).Token.pos
let advance st = if st.i < Array.length st.tokens - 1 then st.i <- st.i + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (Token.to_string (peek st)), pos st))

let is_word st kw =
  match peek st with
  | Token.Word w -> String.uppercase_ascii w = kw
  | _ -> false

let eat_word st kw =
  if is_word st kw then advance st else fail st (Printf.sprintf "expected %s" kw)

let try_word st kw =
  if is_word st kw then begin
    advance st;
    true
  end
  else false

let is_sym st s = match peek st with Token.Sym x -> String.equal x s | _ -> false

let eat_sym st s =
  if is_sym st s then advance st else fail st (Printf.sprintf "expected '%s'" s)

let try_sym st s =
  if is_sym st s then begin
    advance st;
    true
  end
  else false

let reserved =
  [
    "SELECT"; "FROM"; "WHERE"; "PREFERRING"; "CASCADE"; "BUT"; "ONLY";
    "GROUPING"; "TOP"; "AND"; "OR"; "NOT"; "IN"; "BETWEEN"; "LIKE"; "IS";
    "NULL"; "AROUND"; "LOWEST"; "HIGHEST"; "EXPLICIT"; "SCORE"; "RANK";
    "PRIOR"; "TO"; "ELSE"; "DUAL"; "LEVEL"; "DISTANCE"; "ORDER"; "BY";
    "ASC"; "DESC"; "EXPLAIN"; "ANALYZE";
  ]

let ident st =
  match peek st with
  | Token.Word w when not (List.mem (String.uppercase_ascii w) reserved) ->
    advance st;
    let base = String.lowercase_ascii w in
    (* qualified names: table.column *)
    if is_sym st "." then begin
      advance st;
      match peek st with
      | Token.Word w2 when not (List.mem (String.uppercase_ascii w2) reserved)
        ->
        advance st;
        base ^ "." ^ String.lowercase_ascii w2
      | _ -> fail st "expected a column name after '.'"
    end
    else base
  | _ -> fail st "expected an identifier"

let literal st =
  match peek st with
  | Token.Int i ->
    advance st;
    Value.Int i
  | Token.Float f ->
    advance st;
    Value.Float f
  | Token.String s -> (
    advance st;
    (* date-shaped strings become dates so AROUND works on them *)
    match Value.of_string_as Value.TDate s with
    | Some d -> d
    | None -> Value.Str s)
  | Token.Word w when String.uppercase_ascii w = "NULL" ->
    advance st;
    Value.Null
  | Token.Word w
    when String.uppercase_ascii w = "TRUE" || String.uppercase_ascii w = "FALSE"
    ->
    advance st;
    Value.Bool (String.uppercase_ascii w = "TRUE")
  | Token.Sym "-" -> fail st "expected a literal"
  | _ -> fail st "expected a literal"

let literal_list st =
  eat_sym st "(";
  let rec go acc =
    let v = literal st in
    if try_sym st "," then go (v :: acc) else (eat_sym st ")"; List.rev (v :: acc))
  in
  go []

let comparison st =
  match peek st with
  | Token.Sym "=" ->
    advance st;
    Ast.Eq
  | Token.Sym "<>" ->
    advance st;
    Ast.Neq
  | Token.Sym "<" ->
    advance st;
    Ast.Lt
  | Token.Sym "<=" ->
    advance st;
    Ast.Le
  | Token.Sym ">" ->
    advance st;
    Ast.Gt
  | Token.Sym ">=" ->
    advance st;
    Ast.Ge
  | _ -> fail st "expected a comparison operator"

(* ------------------------------------------------------------------ *)
(* Hard conditions                                                     *)

let rec condition st = or_cond st

and or_cond st =
  let left = and_cond st in
  if try_word st "OR" then Ast.Or (left, or_cond st) else left

and and_cond st =
  let left = not_cond st in
  if try_word st "AND" then Ast.And (left, and_cond st) else left

and not_cond st =
  if try_word st "NOT" then Ast.Not (not_cond st)
  else if try_sym st "(" then begin
    let c = condition st in
    eat_sym st ")";
    c
  end
  else predicate st

and predicate st =
  let a = ident st in
  if try_word st "IS" then
    if try_word st "NOT" then begin
      eat_word st "NULL";
      Ast.Is_not_null a
    end
    else begin
      eat_word st "NULL";
      Ast.Is_null a
    end
  else if try_word st "IN" then Ast.In (a, literal_list st)
  else if try_word st "NOT" then
    if try_word st "IN" then Ast.Not_in (a, literal_list st)
    else if try_word st "LIKE" then
      match peek st with
      | Token.String p ->
        advance st;
        Ast.Not (Ast.Like (a, p))
      | _ -> fail st "expected a pattern string after LIKE"
    else fail st "expected IN or LIKE after NOT"
  else if try_word st "BETWEEN" then begin
    let low = literal st in
    eat_word st "AND";
    let up = literal st in
    Ast.Between_cond (a, low, up)
  end
  else if try_word st "LIKE" then
    match peek st with
    | Token.String p ->
      advance st;
      Ast.Like (a, p)
    | _ -> fail st "expected a pattern string after LIKE"
  else
    let op = comparison st in
    (* an identifier on the right-hand side makes this an attribute-to-
       attribute comparison (e.g. an equi-join predicate) *)
    match peek st with
    | Token.Word w
      when (not (List.mem (String.uppercase_ascii w) reserved))
           && String.uppercase_ascii w <> "NULL"
           && String.uppercase_ascii w <> "TRUE"
           && String.uppercase_ascii w <> "FALSE" ->
      Ast.Cmp_attr (a, op, ident st)
    | _ -> Ast.Cmp (a, op, literal st)

(* ------------------------------------------------------------------ *)
(* Preferences                                                         *)

let rec pref st = prior_pref st

and prior_pref st =
  let left = pareto_pref st in
  if try_word st "PRIOR" then begin
    eat_word st "TO";
    Ast.P_prior (left, prior_pref st)
  end
  else left

and pareto_pref st =
  let left = pref_atom st in
  if try_word st "AND" then Ast.P_pareto (left, pareto_pref st) else left

and pref_atom st =
  if try_sym st "(" then begin
    let p = pref st in
    eat_sym st ")";
    p
  end
  else if try_word st "LOWEST" then begin
    eat_sym st "(";
    let a = ident st in
    eat_sym st ")";
    Ast.P_lowest a
  end
  else if try_word st "HIGHEST" then begin
    eat_sym st "(";
    let a = ident st in
    eat_sym st ")";
    Ast.P_highest a
  end
  else if try_word st "DUAL" then begin
    eat_sym st "(";
    let p = pref st in
    eat_sym st ")";
    Ast.P_dual p
  end
  else if try_word st "EXPLICIT" then begin
    eat_sym st "(";
    let a = ident st in
    let edges = ref [] in
    while try_sym st "," do
      eat_sym st "(";
      let worse = literal st in
      eat_sym st ",";
      let better = literal st in
      eat_sym st ")";
      edges := (worse, better) :: !edges
    done;
    eat_sym st ")";
    Ast.P_explicit (a, List.rev !edges)
  end
  else if try_word st "SCORE" then begin
    eat_sym st "(";
    let a = ident st in
    eat_sym st ",";
    let f = ident st in
    eat_sym st ")";
    Ast.P_score (a, f)
  end
  else if try_word st "RANK" then begin
    eat_sym st "(";
    let f = ident st in
    eat_sym st ",";
    let p1 = pref st in
    eat_sym st ",";
    let p2 = pref st in
    eat_sym st ")";
    Ast.P_rank (f, p1, p2)
  end
  else begin
    let a = ident st in
    if try_word st "AROUND" then Ast.P_around (a, literal st)
    else if try_word st "BETWEEN" then begin
      let low = literal st in
      eat_word st "AND";
      let up = literal st in
      Ast.P_between (a, low, up)
    end
    else if try_word st "IN" then begin
      let vs = literal_list st in
      else_clause st a vs
    end
    else if try_word st "NOT" then begin
      eat_word st "IN";
      Ast.P_neg (a, literal_list st)
    end
    else if try_sym st "=" then begin
      let v = literal st in
      else_clause st a [ v ]
    end
    else if try_sym st "<>" then Ast.P_neg (a, [ literal st ])
    else fail st "expected a preference"
  end

and else_clause st a pos_set =
  (* [a = x ELSE a = y] is POS/POS, [a = x ELSE a <> y] is POS/NEG *)
  if try_word st "ELSE" then begin
    let a' = ident st in
    if a' <> a then
      fail st
        (Printf.sprintf "ELSE must refer to the same attribute (%s vs %s)" a a');
    if try_word st "IN" then Ast.P_pos_pos (a, pos_set, literal_list st)
    else if try_word st "NOT" then begin
      eat_word st "IN";
      Ast.P_pos_neg (a, pos_set, literal_list st)
    end
    else if try_sym st "=" then Ast.P_pos_pos (a, pos_set, [ literal st ])
    else if try_sym st "<>" then Ast.P_pos_neg (a, pos_set, [ literal st ])
    else fail st "expected =, <>, IN or NOT IN after ELSE"
  end
  else Ast.P_pos (a, pos_set)

(* ------------------------------------------------------------------ *)
(* BUT ONLY qualities                                                  *)

let quality st =
  if try_word st "LEVEL" then begin
    eat_sym st "(";
    let a = ident st in
    eat_sym st ")";
    let op = comparison st in
    match peek st with
    | Token.Int k ->
      advance st;
      Ast.Q_level (a, op, k)
    | _ -> fail st "expected an integer level bound"
  end
  else if try_word st "DISTANCE" then begin
    eat_sym st "(";
    let a = ident st in
    eat_sym st ")";
    let op = comparison st in
    match peek st with
    | Token.Int k ->
      advance st;
      Ast.Q_distance (a, op, float_of_int k)
    | Token.Float f ->
      advance st;
      Ast.Q_distance (a, op, f)
    | _ -> fail st "expected a numeric distance bound"
  end
  else fail st "expected LEVEL(...) or DISTANCE(...)"

let qualities st =
  let rec go acc =
    let q = quality st in
    if try_word st "AND" then go (q :: acc) else List.rev (q :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let select_list st =
  if try_sym st "*" then [ Ast.Star ]
  else
    let rec go acc =
      let c = Ast.Column (ident st) in
      if try_sym st "," then go (c :: acc) else List.rev (c :: acc)
    in
    go []

let query st =
  eat_word st "SELECT";
  let select = select_list st in
  eat_word st "FROM";
  let from =
    let rec go acc =
      let t = ident st in
      if try_sym st "," then go (t :: acc) else List.rev (t :: acc)
    in
    go []
  in
  let where = if try_word st "WHERE" then Some (condition st) else None in
  let preferring = if try_word st "PREFERRING" then Some (pref st) else None in
  let cascade =
    let rec go acc = if try_word st "CASCADE" then go (pref st :: acc) else List.rev acc in
    go []
  in
  let but_only =
    if try_word st "BUT" then begin
      eat_word st "ONLY";
      qualities st
    end
    else []
  in
  let grouping =
    if try_word st "GROUPING" then begin
      let rec go acc =
        let a = ident st in
        if try_sym st "," then go (a :: acc) else List.rev (a :: acc)
      in
      go []
    end
    else []
  in
  let order_by =
    if try_word st "ORDER" then begin
      eat_word st "BY";
      let rec go acc =
        let a = ident st in
        let asc =
          if try_word st "DESC" then false
          else begin
            ignore (try_word st "ASC");
            true
          end
        in
        if try_sym st "," then go ((a, asc) :: acc) else List.rev ((a, asc) :: acc)
      in
      go []
    end
    else []
  in
  let top =
    if try_word st "TOP" then (
      match peek st with
      | Token.Int k ->
        advance st;
        Some k
      | _ -> fail st "expected an integer after TOP")
    else None
  in
  ignore (try_sym st ";");
  (match peek st with
  | Token.Eof -> ()
  | _ -> fail st "unexpected trailing input");
  {
    Ast.select;
    from;
    where;
    preferring;
    cascade;
    but_only;
    grouping;
    order_by;
    top;
  }

let of_tokens tokens = { tokens = Array.of_list tokens; i = 0 }

let parse_query src =
  try query (of_tokens (Lexer.tokenize src))
  with Lexer.Error (msg, p) -> raise (Error (msg, p))

let parse_pref src =
  try
    let st = of_tokens (Lexer.tokenize src) in
    let p = pref st in
    (match peek st with
    | Token.Eof -> ()
    | _ -> fail st "unexpected trailing input");
    p
  with Lexer.Error (msg, p) -> raise (Error (msg, p))

(* String-level EXPLAIN [ANALYZE] prefix detection, deliberately ahead of
   the tokenizer: the caller keeps the inner query text verbatim for the
   normal [parse_query] path (and for re-sending over the wire). *)
let explain_prefix src =
  let n = String.length src in
  let rec skip_ws i =
    if
      i < n
      && (match src.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then skip_ws (i + 1)
    else i
  in
  let word i =
    let j = ref i in
    while
      !j < n
      && match src.[!j] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
    do
      incr j
    done;
    (String.uppercase_ascii (String.sub src i (!j - i)), !j)
  in
  let i = skip_ws 0 in
  match word i with
  | "EXPLAIN", j ->
    let k = skip_ws j in
    (match word k with
    | "ANALYZE", l -> Some (true, String.sub src (skip_ws l) (n - skip_ws l))
    | _ -> Some (false, String.sub src k (n - k)))
  | _ -> None

let parse_condition src =
  try
    let st = of_tokens (Lexer.tokenize src) in
    let c = condition st in
    (match peek st with
    | Token.Eof -> ()
    | _ -> fail st "unexpected trailing input");
    c
  with Lexer.Error (msg, p) -> raise (Error (msg, p))
