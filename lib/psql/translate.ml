open Pref_relation
open Preferences

exception Error of string

type registry = {
  scores : (string * (Value.t -> float)) list;
      (** named scoring functions for SCORE(attr, name) *)
  combiners : (string * (float -> float -> float)) list;
      (** named combining functions for RANK(name, p1, p2) *)
}

let default_registry =
  {
    scores =
      [
        ("identity", fun v -> Option.value (Value.as_float v) ~default:Float.neg_infinity);
        ("negate",
         fun v ->
           match Value.as_float v with
           | Some f -> -.f
           | None -> Float.neg_infinity);
        ("length",
         fun v ->
           match v with Value.Str s -> float_of_int (String.length s) | _ -> 0.);
      ];
    combiners =
      [
        ("sum", ( +. ));
        ("min", Float.min);
        ("max", Float.max);
        ("product", ( *. ));
      ];
  }

(* Error messages carry the surface clause — which constructor on which
   attribute — so a failing query names the offending text, not only the
   registry/argument detail. *)
let numeric_target ~constructor ~attr lit =
  match Value.as_float lit with
  | Some f -> f
  | None ->
    raise
      (Error
         (Printf.sprintf "%s(%s): needs a numeric or date argument, got %s"
            constructor attr (Value.to_string lit)))

let rec pref ?(registry = default_registry) (p : Ast.pref) : Pref.t =
  match p with
  | Ast.P_pos (a, vs) -> Pref.pos a vs
  | Ast.P_neg (a, vs) -> Pref.neg a vs
  | Ast.P_pos_pos (a, vs1, vs2) -> Pref.pos_pos a ~pos1:vs1 ~pos2:vs2
  | Ast.P_pos_neg (a, vs, ns) -> Pref.pos_neg a ~pos:vs ~neg:ns
  | Ast.P_around (a, lit) ->
    Pref.around a (numeric_target ~constructor:"AROUND" ~attr:a lit)
  | Ast.P_between (a, low, up) ->
    Pref.between a
      ~low:(numeric_target ~constructor:"BETWEEN" ~attr:a low)
      ~up:(numeric_target ~constructor:"BETWEEN" ~attr:a up)
  | Ast.P_lowest a -> Pref.lowest a
  | Ast.P_highest a -> Pref.highest a
  | Ast.P_explicit (a, edges) -> Pref.explicit a edges
  | Ast.P_score (a, name) -> (
    match List.assoc_opt name registry.scores with
    | Some f -> Pref.score a ~name f
    | None ->
      raise
        (Error
           (Printf.sprintf "SCORE(%s, %S): unknown scoring function %S%s" a
              name name
              (Typo.suggest (List.map fst registry.scores) name))))
  | Ast.P_rank (name, p1, p2) -> (
    match List.assoc_opt name registry.combiners with
    | Some f ->
      Pref.rank
        { Pref.cname = name; combine = f }
        (pref ~registry p1) (pref ~registry p2)
    | None ->
      raise
        (Error
           (Printf.sprintf "RANK(%S) over %s: unknown combining function %S%s"
              name
              (String.concat ", " (Ast.pref_attrs (Ast.P_rank (name, p1, p2))))
              name
              (Typo.suggest (List.map fst registry.combiners) name))))
  | Ast.P_pareto (p1, p2) -> Pref.pareto (pref ~registry p1) (pref ~registry p2)
  | Ast.P_prior (p1, p2) -> Pref.prior (pref ~registry p1) (pref ~registry p2)
  | Ast.P_dual p -> Pref.dual (pref ~registry p)

(* LIKE patterns: % matches any run, _ any single character. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoised recursion is overkill for CLI-sized patterns *)
  let rec go pi si =
    if pi >= np then si >= ns
    else
      match pattern.[pi] with
      | '%' ->
        let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
        try_from si
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && Char.lowercase_ascii s.[si] = Char.lowercase_ascii c && go (pi + 1) (si + 1)
  in
  go 0 0

let compare_values op a b =
  let c = Value.compare a b in
  match op with
  | Ast.Eq -> Value.equal a b
  | Ast.Neq -> not (Value.equal a b)
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let rec condition schema (c : Ast.condition) : Tuple.t -> bool =
  match c with
  | Ast.Cmp (a, op, lit) ->
    let i = Schema.index_of_exn schema a in
    fun t ->
      let v = Tuple.get t i in
      (not (Value.is_null v)) && compare_values op v lit
  | Ast.Cmp_attr (a, op, b) ->
    let i = Schema.index_of_exn schema a and j = Schema.index_of_exn schema b in
    fun t ->
      let va = Tuple.get t i and vb = Tuple.get t j in
      (not (Value.is_null va))
      && (not (Value.is_null vb))
      && compare_values op va vb
  | Ast.In (a, vs) ->
    let i = Schema.index_of_exn schema a in
    fun t -> List.exists (Value.equal (Tuple.get t i)) vs
  | Ast.Not_in (a, vs) ->
    let i = Schema.index_of_exn schema a in
    fun t ->
      let v = Tuple.get t i in
      (not (Value.is_null v)) && not (List.exists (Value.equal v) vs)
  | Ast.Between_cond (a, low, up) ->
    let i = Schema.index_of_exn schema a in
    fun t ->
      let v = Tuple.get t i in
      (not (Value.is_null v))
      && Value.compare low v <= 0
      && Value.compare v up <= 0
  | Ast.Like (a, pattern) ->
    let i = Schema.index_of_exn schema a in
    fun t -> (
      match Tuple.get t i with
      | Value.Str s -> like_match ~pattern s
      | _ -> false)
  | Ast.Is_null a ->
    let i = Schema.index_of_exn schema a in
    fun t -> Value.is_null (Tuple.get t i)
  | Ast.Is_not_null a ->
    let i = Schema.index_of_exn schema a in
    fun t -> not (Value.is_null (Tuple.get t i))
  | Ast.And (c1, c2) ->
    let f1 = condition schema c1 and f2 = condition schema c2 in
    fun t -> f1 t && f2 t
  | Ast.Or (c1, c2) ->
    let f1 = condition schema c1 and f2 = condition schema c2 in
    fun t -> f1 t || f2 t
  | Ast.Not c1 ->
    let f = condition schema c1 in
    fun t -> not (f t)

let compare_int op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

let compare_float op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

(* BUT ONLY supervision (§6.1): a quality predicate over result tuples,
   relative to the complete preference term. *)
let quality_filter schema (p : Pref.t) (qs : Ast.quality list) : Tuple.t -> bool =
  let checks =
    List.map
      (fun q t ->
        match q with
        | Ast.Q_level (a, op, bound) -> (
          match Quality.level_of schema p a t with
          | Some l -> compare_int op l bound
          | None ->
            raise
              (Error
                 (Printf.sprintf
                    "LEVEL(%s): no discrete-level base preference on this \
                     attribute" a)))
        | Ast.Q_distance (a, op, bound) -> (
          match Quality.distance_of schema p a t with
          | Some d -> compare_float op d bound
          | None ->
            raise
              (Error
                 (Printf.sprintf
                    "DISTANCE(%s): no numerical base preference on this \
                     attribute" a))))
      qs
  in
  fun t -> List.for_all (fun check -> check t) checks
