let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <-
        min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let nearest candidates name =
  let lname = String.lowercase_ascii name in
  let best =
    List.fold_left
      (fun acc c ->
        let d = levenshtein lname (String.lowercase_ascii c) in
        match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (c, d))
      None candidates
  in
  match best with
  | Some (c, d) when d > 0 && d <= 2 && d < String.length name -> Some c
  | _ -> None

let suggest candidates name =
  match nearest candidates name with
  | Some c -> Printf.sprintf " (did you mean %S?)" c
  | None -> ""
