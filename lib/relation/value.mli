(** Typed attribute values.

    Domains of attribute values (Definition 1's [dom(A_i)]) are drawn from the
    SQL-ish type universe the paper works with: booleans, integers, reals,
    strings and dates. Numerical base preferences (Definition 7) additionally
    need a total ['<'] and a subtraction on the domain — dates qualify via a
    days-since-epoch encoding, as the paper notes ("also applicable to other
    ordered SQL types like Date"). *)

type date = { year : int; month : int; day : int }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of date

type ty = TBool | TInt | TFloat | TStr | TDate

val ty_to_string : ty -> string
val pp_ty : ty Fmt.t

val type_of : t -> ty option
(** [None] for [Null]. *)

val date : year:int -> month:int -> day:int -> t
(** Smart constructor; raises [Invalid_argument] on an invalid calendar
    date. *)

val valid_date : date -> bool

val date_to_days : date -> int
(** Days in the proleptic Gregorian calendar; gives dates the ['<'] / ['-']
    structure required by AROUND / BETWEEN / LOWEST / HIGHEST. *)

val equal : t -> t -> bool
(** Structural equality; [Int] and [Float] compare numerically. *)

val compare : t -> t -> int
(** Total order: within a type, the natural order; across types, an arbitrary
    but fixed order ([Null] least). *)

val as_float : t -> float option
(** Numeric view: ints, floats, dates (as days) and bools (0/1). *)

val to_float_exn : t -> float

val is_null : t -> bool

val to_string : t -> string
val pp : t Fmt.t

val pp_quoted : t Fmt.t
(** Like [pp] but strings are single-quoted, for SQL-ish output. *)

val of_string_as : ty -> string -> t option
(** Parse a string as the given type; [None] when it does not parse. *)

val infer : string -> t
(** Parse with type inference in the order int, float, date, bool, string;
    empty or ["NULL"] becomes [Null]. Used by the CSV loader. *)

val hash : t -> int
(** Consistent with {!equal}: numerically equal [Int]/[Float] values hash
    equal. *)
