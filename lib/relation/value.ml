type date = { year : int; month : int; day : int }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of date

type ty = TBool | TInt | TFloat | TStr | TDate

let ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"
  | TDate -> "date"

let pp_ty ppf ty = Fmt.string ppf (ty_to_string ty)

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Date _ -> Some TDate

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Value.days_in_month"

let valid_date d =
  d.month >= 1 && d.month <= 12 && d.day >= 1 && d.day <= days_in_month d.year d.month

let date ~year ~month ~day =
  let d = { year; month; day } in
  if not (valid_date d) then invalid_arg "Value.date: invalid date";
  Date d

(* Days since a fixed epoch (proleptic Gregorian), used to give dates the
   '<' and '-' operators required by numerical base preferences. *)
let date_to_days d =
  let y = d.year and m = d.month in
  let a = (14 - m) / 12 in
  let y' = y + 4800 - a in
  let m' = m + (12 * a) - 3 in
  d.day
  + (((153 * m') + 2) / 5)
  + (365 * y')
  + (y' / 4)
  - (y' / 100)
  + (y' / 400)
  - 32045

let equal a b =
  match a, b with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Str a, Str b -> String.equal a b
  | Date a, Date b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | (Null | Bool _ | Int _ | Float _ | Str _ | Date _), _ -> false

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Int a, Float b -> Float.compare (float_of_int a) b
  | Float a, Int b -> Float.compare a (float_of_int b)
  | Str a, Str b -> String.compare a b
  | Date a, Date b -> Int.compare (date_to_days a) (date_to_days b)
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | (Int _ | Float _), _ -> -1
  | _, (Int _ | Float _) -> 1
  | Str _, _ -> -1
  | _, Str _ -> 1

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Date d -> Some (float_of_int (date_to_days d))
  | Bool b -> Some (if b then 1. else 0.)
  | Null | Str _ -> None

let to_float_exn v =
  match as_float v with
  | Some f -> f
  | None -> invalid_arg "Value.to_float_exn: non-numeric value"

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ | Date _ -> false

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Str s -> s
  | Date d -> Printf.sprintf "%04d-%02d-%02d" d.year d.month d.day

let pp ppf v = Fmt.string ppf (to_string v)

let pp_quoted ppf v =
  match v with Str s -> Fmt.pf ppf "'%s'" s | _ -> pp ppf v

let parse_date s =
  let fail () = None in
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
    match int_of_string_opt y, int_of_string_opt m, int_of_string_opt d with
    | Some year, Some month, Some day ->
      let dt = { year; month; day } in
      if valid_date dt then Some (Date dt) else fail ()
    | _ -> fail ())
  | _ -> (
    (* also accept the paper's '2001/11/23' form *)
    match String.split_on_char '/' s with
    | [ y; m; d ] -> (
      match int_of_string_opt y, int_of_string_opt m, int_of_string_opt d with
      | Some year, Some month, Some day ->
        let dt = { year; month; day } in
        if valid_date dt then Some (Date dt) else fail ()
      | _ -> fail ())
    | _ -> fail ())

let of_string_as ty s =
  let s' = String.trim s in
  match ty with
  | TBool -> (
    match String.lowercase_ascii s' with
    | "true" | "t" | "1" | "yes" -> Some (Bool true)
    | "false" | "f" | "0" | "no" -> Some (Bool false)
    | _ -> None)
  | TInt -> Option.map (fun i -> Int i) (int_of_string_opt s')
  | TFloat -> Option.map (fun f -> Float f) (float_of_string_opt s')
  | TStr -> Some (Str s)
  | TDate -> parse_date s'

let infer s =
  let s' = String.trim s in
  if s' = "" || String.uppercase_ascii s' = "NULL" then Null
  else
    match int_of_string_opt s' with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s' with
      | Some f -> Float f
      | None -> (
        match parse_date s' with
        | Some d -> d
        | None -> (
          match String.lowercase_ascii s' with
          | "true" -> Bool true
          | "false" -> Bool false
          | _ -> Str s)))

(* Hash consistent with [equal]: ints and floats that compare equal (Int 3,
   Float 3.0) must hash equal, so both numeric cases hash their float image.
   A small per-constructor salt keeps e.g. Bool true away from Int 1. *)
let hash = function
  | Null -> 0x2545
  | Bool b -> 0x632be59b lxor Hashtbl.hash b
  | Int i -> 0x9e3779b9 lxor Hashtbl.hash (float_of_int i)
  | Float f -> 0x9e3779b9 lxor Hashtbl.hash f
  | Str s -> 0x85ebca6b lxor Hashtbl.hash s
  | Date d -> 0xc2b2ae35 lxor Hashtbl.hash (date_to_days d)
