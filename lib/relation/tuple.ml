type t = Value.t array

let make values = Array.of_list values
let of_array a = a
let to_list (t : t) = Array.to_list t
let arity (t : t) = Array.length t

let get (t : t) i = t.(i)

let get_by_name schema (t : t) name = t.(Schema.index_of_exn schema name)

let project schema (t : t) attrs =
  Array.of_list (List.map (get_by_name schema t) attrs)

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let equal_on schema attrs a b =
  List.for_all
    (fun attr ->
      let i = Schema.index_of_exn schema attr in
      Value.equal a.(i) b.(i))
    attrs

let compare (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) (Array.to_list t)

(* Mix the per-field hashes directly — no intermediate string (or any other)
   allocation per field. The multiplier spreads positional information so
   permuted tuples hash apart. *)
let hash (t : t) =
  let h = ref (Array.length t) in
  for i = 0 to Array.length t - 1 do
    h := (!h * 0x01000193) lxor Value.hash (Array.unsafe_get t i)
  done;
  !h land max_int
