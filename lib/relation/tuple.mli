(** Tuples: flat arrays of values, interpreted against a {!Schema.t}. *)

type t = Value.t array

val make : Value.t list -> t
val of_array : Value.t array -> t
val to_list : t -> Value.t list
val arity : t -> int

val get : t -> int -> Value.t
val get_by_name : Schema.t -> t -> string -> Value.t

val project : Schema.t -> t -> string list -> t
(** [project schema t attrs] is [t[A]], the projection onto the named
    attributes in the given order. *)

val equal : t -> t -> bool
(** Pointwise {!Value.equal}. *)

val equal_on : Schema.t -> string list -> t -> t -> bool
(** Equality of the projections onto the named attributes — the "[x1 = y1]"
    tests of Definitions 8 and 9. *)

val compare : t -> t -> int
(** Lexicographic total order via {!Value.compare}, for sorting and sets. *)

val pp : t Fmt.t

val hash : t -> int
(** Allocation-free positional mix of {!Value.hash} over the fields;
    consistent with {!equal} (equal tuples hash equal). *)
