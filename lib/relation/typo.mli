(** "Did you mean?" suggestions for misspelled names.

    The edit-distance machinery behind the static analyzer's typo
    diagnostics, factored down here so run-time lookups (unknown tables,
    unknown registry functions) can reuse it without depending on the
    analyzer library. *)

val levenshtein : string -> string -> int
(** Classic edit distance (insert / delete / substitute, all cost 1). *)

val nearest : string list -> string -> string option
(** The candidate closest to the name under case-insensitive edit
    distance, when it is close enough to plausibly be a typo (distance in
    [1, 2] and strictly below the name's length). [None] otherwise. *)

val suggest : string list -> string -> string
(** [" (did you mean %S?)"] for {!nearest}'s pick, or [""] — ready to
    append to an error message. *)
