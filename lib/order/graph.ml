type 'a t = {
  nodes : 'a array;
  (* [edge.(i).(j)] holds iff node [i] is strictly better than node [j],
     i.e. nodes.(j) <_P nodes.(i). *)
  edge : bool array array;
}

let size g = Array.length g.nodes
let nodes g = Array.to_list g.nodes
let node g i = g.nodes.(i)
let is_better g i j = g.edge.(i).(j)

let of_order ?(equal = ( = )) better carrier =
  (* Collapse duplicate carrier values so each node is unique. *)
  let rec dedup acc = function
    | [] -> List.rev acc
    | v :: rest ->
      if List.exists (equal v) acc then dedup acc rest else dedup (v :: acc) rest
  in
  let nodes = Array.of_list (dedup [] carrier) in
  let n = Array.length nodes in
  let edge = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then edge.(i).(j) <- better nodes.(i) nodes.(j)
    done
  done;
  { nodes; edge }

let of_edges ?(equal = ( = )) values pairs =
  let nodes = Array.of_list values in
  let n = Array.length nodes in
  let index v =
    let rec go i =
      if i >= n then invalid_arg "Graph.of_edges: edge value not in node list"
      else if equal nodes.(i) v then i
      else go (i + 1)
    in
    go 0
  in
  let edge = Array.make_matrix n n false in
  List.iter (fun (better_v, worse_v) -> edge.(index better_v).(index worse_v) <- true) pairs;
  { nodes; edge }

let copy_matrix m = Array.map Array.copy m

let transitive_closure g =
  let n = size g in
  let e = copy_matrix g.edge in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if e.(i).(k) then
        for j = 0 to n - 1 do
          if e.(k).(j) then e.(i).(j) <- true
        done
    done
  done;
  { g with edge = e }

let is_acyclic g =
  let c = transitive_closure g in
  let ok = ref true in
  for i = 0 to size g - 1 do
    if c.edge.(i).(i) then ok := false
  done;
  !ok

let hasse g =
  (* The transitive reduction of an acyclic graph: drop every edge implied by
     a two-step path through the closure. *)
  let c = transitive_closure g in
  let n = size g in
  let e = copy_matrix c.edge in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if e.(i).(j) then
        for k = 0 to n - 1 do
          if k <> i && k <> j && c.edge.(i).(k) && c.edge.(k).(j) then
            e.(i).(j) <- false
        done
    done
  done;
  { g with edge = e }

let maximal_indices g =
  let n = size g in
  let res = ref [] in
  for i = n - 1 downto 0 do
    let dominated = ref false in
    for j = 0 to n - 1 do
      if g.edge.(j).(i) then dominated := true
    done;
    if not !dominated then res := i :: !res
  done;
  !res

let minimal_indices g =
  let n = size g in
  let res = ref [] in
  for i = n - 1 downto 0 do
    let dominates = ref false in
    for j = 0 to n - 1 do
      if g.edge.(i).(j) then dominates := true
    done;
    if not !dominates then res := i :: !res
  done;
  !res

let maximals g = List.map (node g) (maximal_indices g)
let minimals g = List.map (node g) (minimal_indices g)

let levels g =
  (* Definition 2: x is on level j if the longest path from a maximal value
     down to x has j-1 edges.  Computed on the Hasse diagram by a longest-path
     relaxation in topological order; on the closure the result is equal. *)
  if not (is_acyclic g) then invalid_arg "Graph.levels: graph is cyclic";
  let h = hasse g in
  let n = size g in
  let level = Array.make n 1 in
  (* Topological order: repeatedly relax until fixpoint; n passes suffice for
     a DAG of n nodes. *)
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes <= n do
    changed := false;
    incr passes;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if h.edge.(i).(j) && level.(j) < level.(i) + 1 then begin
          level.(j) <- level.(i) + 1;
          changed := true
        end
      done
    done
  done;
  level

let level_of ?(equal = ( = )) g v =
  let lv = levels g in
  let rec go i =
    if i >= size g then invalid_arg "Graph.level_of: value not in graph"
    else if equal g.nodes.(i) v then lv.(i)
    else go (i + 1)
  in
  go 0

let by_level g =
  let lv = levels g in
  let max_level = Array.fold_left max 1 lv in
  List.init max_level (fun l ->
      let l = l + 1 in
      let res = ref [] in
      for i = size g - 1 downto 0 do
        if lv.(i) = l then res := g.nodes.(i) :: !res
      done;
      (l, !res))

let unranked g i j =
  let c = transitive_closure g in
  i <> j && (not c.edge.(i).(j)) && not c.edge.(j).(i)

let to_dot ?(name = "better_than") pp g =
  let h = hasse g in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  Array.iteri
    (fun i v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=%S];\n" i (Fmt.str "%a" pp v)))
    h.nodes;
  for i = 0 to size h - 1 do
    for j = 0 to size h - 1 do
      if h.edge.(i).(j) then
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i j)
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_levels pp ppf g =
  List.iter
    (fun (l, vs) ->
      Fmt.pf ppf "Level %d: %a@." l Fmt.(list ~sep:(any "  ") pp) vs)
    (by_level g)

let edges g =
  let res = ref [] in
  for i = size g - 1 downto 0 do
    for j = size g - 1 downto 0 do
      if g.edge.(i).(j) then res := (g.nodes.(i), g.nodes.(j)) :: !res
    done
  done;
  !res
