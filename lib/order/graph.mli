(** 'Better-than' graphs (Definition 2).

    In finite domains a preference can be drawn as a directed acyclic graph
    whose transitive reduction is the Hasse diagram. This module materialises
    such graphs from an order relation or an explicit edge list, and derives
    the paper's quality notions: maximal / minimal values, the discrete level
    function (level 1 = maximal values; the level of [x] is one more than the
    longest path from a maximal value down to [x]), and unranked pairs. *)

type 'a t

val of_order : ?equal:('a -> 'a -> bool) -> ('a -> 'a -> bool) -> 'a list -> 'a t
(** [of_order better carrier] materialises the graph of a strict order over
    the (deduplicated) carrier. [better x y] means "[x] is better than [y]",
    so the resulting edge runs from [x] down to [y]. *)

val of_edges : ?equal:('a -> 'a -> bool) -> 'a list -> ('a * 'a) list -> 'a t
(** [of_edges values pairs] builds a graph over [values] with one edge
    [(better, worse)] per pair. Raises [Invalid_argument] if an edge mentions
    a value outside [values]. The edge list is {e not} transitively closed. *)

val size : 'a t -> int
val nodes : 'a t -> 'a list
val node : 'a t -> int -> 'a

val is_better : 'a t -> int -> int -> bool
(** Direct edge test by node index (no implicit transitive closure). *)

val edges : 'a t -> ('a * 'a) list
(** All [(better, worse)] pairs with a direct edge. *)

val transitive_closure : 'a t -> 'a t

val hasse : 'a t -> 'a t
(** Transitive reduction: the Hasse diagram drawn in the paper's figures. *)

val is_acyclic : 'a t -> bool

val maximals : 'a t -> 'a list
(** Values without a predecessor — level 1. *)

val minimals : 'a t -> 'a list
(** Values without a successor. *)

val maximal_indices : 'a t -> int list
val minimal_indices : 'a t -> int list

val levels : 'a t -> int array
(** Level of every node, indexed like [nodes]; raises [Invalid_argument] on a
    cyclic graph. *)

val level_of : ?equal:('a -> 'a -> bool) -> 'a t -> 'a -> int
(** Level of the node matching [v] under [equal] (defaults to structural
    equality); raises [Invalid_argument] when no node matches. Pass the same
    [equal] the graph was built with so membership and lookup agree. *)

val by_level : 'a t -> (int * 'a list) list
(** Nodes grouped by level, level 1 first — the layout of the paper's
    better-than figures. *)

val unranked : 'a t -> int -> int -> bool
(** No directed path in either direction between the two nodes. *)

val to_dot : ?name:string -> 'a Fmt.t -> 'a t -> string
(** Graphviz rendering of the Hasse diagram. *)

val pp_levels : 'a Fmt.t -> Format.formatter -> 'a t -> unit
(** Print the graph as the paper does: one line per level. *)
