(** The slow-query log.

    Sessions whose [slowlog] knob is set record every query at or above
    the threshold here: one JSON object carrying the wall time, the
    query text, the session id, a plan summary, and — for a configurable
    1-in-n sample — the full {!Pref_obs.Span} tree of the execution
    (spans exist only while telemetry is enabled; unsampled or untraced
    entries simply omit the tree).

    Process-global and mutex-guarded, like the metrics registry: a
    bounded in-memory ring (64 entries, newest first) plus an optional
    append-only file sink writing one JSON line per entry ([prefserve
    --slowlog-file]). *)

val record :
  ms:float ->
  threshold_ms:float ->
  query:string ->
  session:int ->
  plan:string option ->
  ?span:Pref_obs.Span.node ->
  unit ->
  unit

val recent : unit -> Pref_obs.Json.t list
(** Ring contents, newest first. *)

val count : unit -> int
(** Slow queries recorded since start (or {!clear}), including entries
    the ring has since dropped. *)

val clear : unit -> unit

val set_sample : int -> unit
(** Keep the span tree on every nth entry only (default 1 = all);
    clamped to >= 1. *)

val set_file : string option -> unit
(** Open (append/create) a file sink, replacing any previous one;
    [None] closes it. *)

val file : unit -> string option
(** Path of the active sink, if any. *)
