open Pref_relation
open Pref_sql

type stats = {
  queries : int;
  degraded : int;
  truncated : int;
  errors : int;
}

(* The last successful preference statement, when its shape makes its
   result a sound revision seed: SELECT * over one table, no WHERE, no
   TOP / BUT ONLY / GROUP BY, complete flags.  [l_seed] is kept equal to
   sigma[P](table) across single-row DML (inserts are patched in place;
   a delete that touches a seed row drops the seed — promotions would
   need the shadow set). *)
type last = {
  l_table : string;
  l_query : Ast.query;
  l_dom : Pref_bmo.Dominance.t;
  mutable l_seed : Relation.t;
}

type t = {
  s_id : int;
  mutable env : Exec.env;
  reg : Translate.registry;
  mutable config : Pref_bmo.Engine.config;
  mutable statements : (string * Ast.query) list;
  mutable last : last option;
  mutable queries : int;
  mutable degraded : int;
  mutable truncated : int;
  mutable errors : int;
}

(* Session ids only need to be distinct within the process — slow-query
   log entries and trace attributes use them to tell sessions apart. *)
let next_id = Atomic.make 1

let create ?(registry = Translate.default_registry)
    ?(config = Pref_bmo.Engine.default) ?(env = []) () =
  {
    s_id = Atomic.fetch_and_add next_id 1;
    env;
    reg = registry;
    config;
    statements = [];
    last = None;
    queries = 0;
    degraded = 0;
    truncated = 0;
    errors = 0;
  }

let id t = t.s_id

let env t = t.env

let set_env t env =
  (* the revision seed was computed against the old tables *)
  if env != t.env then t.last <- None;
  t.env <- env

(* swap a table without touching the revision seed — single-row DML
   below patches the seed itself *)
let set_table t name rel = t.env <- (name, rel) :: List.remove_assoc name t.env

let add_table t name rel =
  let name = String.lowercase_ascii name in
  (match t.last with
  | Some l when String.equal l.l_table name -> t.last <- None
  | _ -> ());
  set_table t name rel

let find_table t name = Exec.find_table t.env name
let config t = t.config
let set_config t cfg = t.config <- cfg

let set t ~key ~value =
  match Pref_bmo.Engine.set t.config ~key ~value with
  | Ok cfg ->
    t.config <- cfg;
    let shown =
      List.assoc_opt (String.lowercase_ascii key)
        (Pref_bmo.Engine.describe cfg)
    in
    Ok
      (Printf.sprintf "%s: %s"
         (String.lowercase_ascii key)
         (Option.value shown ~default:value))
  | Error _ as e -> e

let describe t = Pref_bmo.Engine.describe t.config
let registry t = t.reg

let prepare t ~name src =
  let q = Parser.parse_query src in
  t.statements <- (name, q) :: List.remove_assoc name t.statements

let prepared t = List.map fst t.statements

let count_result t (r : Exec.result) =
  if r.flags.Pref_bmo.Engine.partial then t.degraded <- t.degraded + 1;
  if r.flags.Pref_bmo.Engine.truncated then t.truncated <- t.truncated + 1;
  r

(* [@name] resolves a prepared statement; anything else is source text. *)
let resolve_statement t src =
  let src = String.trim src in
  if String.length src > 0 && src.[0] = '@' then begin
    let name = String.sub src 1 (String.length src - 1) in
    match List.assoc_opt name t.statements with
    | Some q -> (src, Some q)
    | None ->
      raise
        (Exec.Error
           (Printf.sprintf "no prepared statement %S%s" name
              (Typo.suggest (List.map fst t.statements) name)))
  end
  else (src, None)

(* Seed tracking: remember the statement iff its result is literally
   sigma[P](table) — the shape every revision strategy is proved
   against. Everything else clears the seed (the "last term" changed
   to something we cannot revise from). *)
let seedable (q : Ast.query) =
  (match q.Ast.select with [ Ast.Star ] -> true | _ -> false)
  && q.Ast.where = None && q.Ast.top = None && q.Ast.but_only = []
  && q.Ast.grouping = []
  && match q.Ast.from with [ _ ] -> true | _ -> false

let track t src qopt (r : Exec.result) =
  match r.Exec.preference with
  | Some p when r.Exec.flags = Pref_bmo.Engine.complete -> (
    let q =
      match qopt with
      | Some q -> Some q
      | None -> ( try Some (Parser.parse_query src) with _ -> None)
    in
    match q with
    | Some q when seedable q ->
      t.last <-
        Some
          {
            l_table = String.lowercase_ascii (List.hd q.Ast.from);
            l_query = q;
            l_dom = Pref_bmo.Dominance.of_pref (Relation.schema r.relation) p;
            l_seed = r.relation;
          }
    | _ -> t.last <- None)
  | _ -> t.last <- None

let execute t ~deadline src =
  match resolve_statement t src with
  | src, Some q ->
    let r =
      count_result t
        (Exec.run_query_within ~registry:t.reg ~deadline t.config t.env q)
    in
    track t src (Some q) r;
    r
  | src, None ->
    let r =
      count_result t
        (Exec.run_within ~registry:t.reg ~deadline t.config t.env src)
    in
    track t src None r;
    r

let plan_summary (r : Exec.result) =
  match r.Exec.profile with
  | Some p -> Some p.Pref_obs.Profile.algorithm
  | None -> None

let run_within t ~deadline src =
  t.queries <- t.queries + 1;
  try
    match t.config.Pref_bmo.Engine.slowlog_ms with
    | None -> execute t ~deadline src
    | Some threshold_ms ->
      (* Time the whole statement and collect its span tree (present only
         while telemetry is on); at or above the threshold the query goes
         to the slow-query log.  The profile knob decides whether a plan
         summary is available — slowlog itself does not force profiling. *)
      let since = Pref_obs.Clock.now_ns () in
      let r, span =
        Pref_obs.Span.collect "session.query"
          ~attrs:[ ("session", string_of_int t.s_id) ]
          (fun () -> execute t ~deadline src)
      in
      let ms = Pref_obs.Clock.elapsed_ms ~since in
      if ms >= threshold_ms then
        Slowlog.record ~ms ~threshold_ms ~query:(String.trim src)
          ~session:t.s_id ~plan:(plan_summary r) ?span ();
      r
  with e ->
    t.errors <- t.errors + 1;
    raise e

let run t src =
  run_within t ~deadline:(Pref_bmo.Engine.deadline_of t.config) src

(* ------------------------------------------------------------------ *)
(* Preference revision (\refine / the REFINE wire verb)                *)

let no_seed_message =
  "no preceding preference query to refine (run SELECT * FROM <table> \
   PREFERRING ... first)"

let revised_query t term_src =
  match t.last with
  | None -> raise (Exec.Error no_seed_message)
  | Some l ->
    let term = Parser.parse_pref term_src in
    (l, { l.l_query with Ast.preferring = Some term; Ast.cascade = [] })

let refine_within t ~deadline term_src =
  let l, q' = revised_query t term_src in
  t.queries <- t.queries + 1;
  try
    let o =
      Revise.execute ~registry:t.reg ~deadline t.config t.env ~table:l.l_table
        ~seed:l.l_seed ~old_q:l.l_query q'
    in
    let r = count_result t o.Revise.o_result in
    track t "" (Some q') r;
    { o with Revise.o_result = r }
  with e ->
    t.errors <- t.errors + 1;
    raise e

let refine t term_src =
  refine_within t ~deadline:(Pref_bmo.Engine.deadline_of t.config) term_src

let refine_explain t term_src =
  let l, q' = revised_query t term_src in
  Revise.explain ~registry:t.reg
    ~deadline:(Pref_bmo.Engine.deadline_of t.config)
    t.config t.env ~table:l.l_table ~seed:l.l_seed ~old_q:l.l_query
    ~query_text:("REFINE " ^ String.trim term_src)
    q'

(* ------------------------------------------------------------------ *)
(* Single-row DML, shared by the shell's .insert/.delete and the wire
   DML verb: update the table, patch the global result cache, keep the
   revision seed in sync. *)

let require_table t name =
  match find_table t name with
  | Some rel -> rel
  | None ->
    raise (Exec.Unknown_table { name = String.lowercase_ascii name; hint = None })

let seed_note_insert t name row =
  match t.last with
  | Some l when String.equal l.l_table name ->
    let rows = Relation.rows l.l_seed in
    if not (List.exists (fun r -> l.l_dom r row) rows) then begin
      let kept = List.filter (fun r -> not (l.l_dom row r)) rows in
      l.l_seed <- Relation.make (Relation.schema l.l_seed) (kept @ [ row ])
    end
  | _ -> ()

let seed_note_delete t name row =
  match t.last with
  | Some l when String.equal l.l_table name ->
    (* a deleted best match may promote shadow tuples we do not keep;
       drop the seed and let the next refine run cold *)
    if List.exists (Tuple.equal row) (Relation.rows l.l_seed) then
      t.last <- None
  | _ -> ()

let insert t name row =
  let name = String.lowercase_ascii name in
  let rel = require_table t name in
  let new_rel = Relation.add_row rel row in
  let patched =
    Pref_bmo.Cache.on_insert Pref_bmo.Cache.global ~old_rel:rel ~new_rel row
  in
  set_table t name new_rel;
  seed_note_insert t name row;
  patched

let delete t name row =
  let name = String.lowercase_ascii name in
  let rel = require_table t name in
  let removed = ref false in
  let rows =
    List.filter
      (fun r ->
        if (not !removed) && Tuple.equal r row then begin
          removed := true;
          false
        end
        else true)
      (Relation.rows rel)
  in
  if not !removed then None
  else begin
    let new_rel = Relation.make (Relation.schema rel) rows in
    let patched =
      Pref_bmo.Cache.on_delete Pref_bmo.Cache.global ~old_rel:rel ~new_rel row
    in
    set_table t name new_rel;
    seed_note_delete t name row;
    Some patched
  end

(* ------------------------------------------------------------------ *)

(* [EXPLAIN] SUBSCRIBE <query>: the continuous-query plan is the inner
   query's plan under a [delta] operator — the per-update patch priced
   by the cost model over the maintained result + shadow rows. *)
let subscribe_payload src =
  let s = String.trim src in
  if String.length s > 10 && String.uppercase_ascii (String.sub s 0 10) = "SUBSCRIBE "
  then Some (String.sub s 10 (String.length s - 10))
  else None

let delta_op t inner_src =
  let q =
    match resolve_statement t inner_src with
    | _, Some q -> Some q
    | inner, None -> ( try Some (Parser.parse_query inner) with _ -> None)
  in
  let n, dims =
    match q with
    | Some q ->
      let n =
        match q.Ast.from with
        | [ tbl ] -> (
          match find_table t tbl with
          | Some rel -> Relation.cardinality rel
          | None -> 0)
        | _ -> 0
      in
      let dims =
        match Exec.full_preference ~registry:t.reg q with
        | Some p -> List.length (Preferences.Pref.attrs p)
        | None -> 1
      in
      (n, dims)
    | None -> (0, 1)
  in
  let w =
    { Pref_bmo.Cost.n; dims = max 1 dims; domains = 1; correlation = 0. }
  in
  Pref_bmo.Explain.Plan.op "delta" ~rows_in:n
    ~attrs:
      [
        ("continuous", "true");
        ( "patch_ms",
          Printf.sprintf "%.4f" (Pref_bmo.Cost.predict_ms ~kind:"delta" w) );
      ]

let explain_within t ~analyze ~deadline src =
  match subscribe_payload src with
  | Some inner ->
    let plan =
      match resolve_statement t inner with
      | text, Some q ->
        Exec.explain_query_within ~registry:t.reg ~analyze ~deadline t.config
          t.env ~query_text:text q
      | inner, None ->
        Exec.explain_within ~registry:t.reg ~analyze ~deadline t.config t.env
          inner
    in
    {
      plan with
      Pref_bmo.Explain.Plan.query = String.trim src;
      Pref_bmo.Explain.Plan.ops =
        delta_op t inner :: plan.Pref_bmo.Explain.Plan.ops;
    }
  | None -> (
    match resolve_statement t src with
    | text, Some q ->
      Exec.explain_query_within ~registry:t.reg ~analyze ~deadline t.config
        t.env ~query_text:text q
    | src, None ->
      Exec.explain_within ~registry:t.reg ~analyze ~deadline t.config t.env src)

let explain t ~analyze src =
  explain_within t ~analyze ~deadline:(Pref_bmo.Engine.deadline_of t.config) src

let stats t =
  {
    queries = t.queries;
    degraded = t.degraded;
    truncated = t.truncated;
    errors = t.errors;
  }

let stats_lines t =
  [
    ("session.queries", string_of_int t.queries);
    ("session.degraded", string_of_int t.degraded);
    ("session.truncated", string_of_int t.truncated);
    ("session.errors", string_of_int t.errors);
  ]
