open Pref_relation
open Pref_sql

type stats = {
  queries : int;
  degraded : int;
  truncated : int;
  errors : int;
}

type t = {
  mutable env : Exec.env;
  reg : Translate.registry;
  mutable config : Pref_bmo.Engine.config;
  mutable statements : (string * Ast.query) list;
  mutable queries : int;
  mutable degraded : int;
  mutable truncated : int;
  mutable errors : int;
}

let create ?(registry = Translate.default_registry)
    ?(config = Pref_bmo.Engine.default) ?(env = []) () =
  {
    env;
    reg = registry;
    config;
    statements = [];
    queries = 0;
    degraded = 0;
    truncated = 0;
    errors = 0;
  }

let env t = t.env
let set_env t env = t.env <- env

let add_table t name rel =
  let name = String.lowercase_ascii name in
  t.env <- (name, rel) :: List.remove_assoc name t.env

let find_table t name = Exec.find_table t.env name
let config t = t.config
let set_config t cfg = t.config <- cfg

let set t ~key ~value =
  match Pref_bmo.Engine.set t.config ~key ~value with
  | Ok cfg ->
    t.config <- cfg;
    let shown =
      List.assoc_opt (String.lowercase_ascii key)
        (Pref_bmo.Engine.describe cfg)
    in
    Ok
      (Printf.sprintf "%s: %s"
         (String.lowercase_ascii key)
         (Option.value shown ~default:value))
  | Error _ as e -> e

let describe t = Pref_bmo.Engine.describe t.config
let registry t = t.reg

let prepare t ~name src =
  let q = Parser.parse_query src in
  t.statements <- (name, q) :: List.remove_assoc name t.statements

let prepared t = List.map fst t.statements

let count_result t (r : Exec.result) =
  if r.flags.Pref_bmo.Engine.partial then t.degraded <- t.degraded + 1;
  if r.flags.Pref_bmo.Engine.truncated then t.truncated <- t.truncated + 1;
  r

let run_within t ~deadline src =
  t.queries <- t.queries + 1;
  try
    let src = String.trim src in
    if String.length src > 0 && src.[0] = '@' then begin
      let name = String.sub src 1 (String.length src - 1) in
      match List.assoc_opt name t.statements with
      | Some q ->
        count_result t
          (Exec.run_query_within ~registry:t.reg ~deadline t.config t.env q)
      | None ->
        raise
          (Exec.Error
             (Printf.sprintf "no prepared statement %S%s" name
                (Typo.suggest (List.map fst t.statements) name)))
    end
    else
      count_result t (Exec.run_within ~registry:t.reg ~deadline t.config t.env src)
  with e ->
    t.errors <- t.errors + 1;
    raise e

let run t src =
  run_within t ~deadline:(Pref_bmo.Engine.deadline_of t.config) src

let stats t =
  {
    queries = t.queries;
    degraded = t.degraded;
    truncated = t.truncated;
    errors = t.errors;
  }

let stats_lines t =
  [
    ("session.queries", string_of_int t.queries);
    ("session.degraded", string_of_int t.degraded);
    ("session.truncated", string_of_int t.truncated);
    ("session.errors", string_of_int t.errors);
  ]
