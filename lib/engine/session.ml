open Pref_relation
open Pref_sql

type stats = {
  queries : int;
  degraded : int;
  truncated : int;
  errors : int;
}

type t = {
  s_id : int;
  mutable env : Exec.env;
  reg : Translate.registry;
  mutable config : Pref_bmo.Engine.config;
  mutable statements : (string * Ast.query) list;
  mutable queries : int;
  mutable degraded : int;
  mutable truncated : int;
  mutable errors : int;
}

(* Session ids only need to be distinct within the process — slow-query
   log entries and trace attributes use them to tell sessions apart. *)
let next_id = Atomic.make 1

let create ?(registry = Translate.default_registry)
    ?(config = Pref_bmo.Engine.default) ?(env = []) () =
  {
    s_id = Atomic.fetch_and_add next_id 1;
    env;
    reg = registry;
    config;
    statements = [];
    queries = 0;
    degraded = 0;
    truncated = 0;
    errors = 0;
  }

let id t = t.s_id

let env t = t.env
let set_env t env = t.env <- env

let add_table t name rel =
  let name = String.lowercase_ascii name in
  t.env <- (name, rel) :: List.remove_assoc name t.env

let find_table t name = Exec.find_table t.env name
let config t = t.config
let set_config t cfg = t.config <- cfg

let set t ~key ~value =
  match Pref_bmo.Engine.set t.config ~key ~value with
  | Ok cfg ->
    t.config <- cfg;
    let shown =
      List.assoc_opt (String.lowercase_ascii key)
        (Pref_bmo.Engine.describe cfg)
    in
    Ok
      (Printf.sprintf "%s: %s"
         (String.lowercase_ascii key)
         (Option.value shown ~default:value))
  | Error _ as e -> e

let describe t = Pref_bmo.Engine.describe t.config
let registry t = t.reg

let prepare t ~name src =
  let q = Parser.parse_query src in
  t.statements <- (name, q) :: List.remove_assoc name t.statements

let prepared t = List.map fst t.statements

let count_result t (r : Exec.result) =
  if r.flags.Pref_bmo.Engine.partial then t.degraded <- t.degraded + 1;
  if r.flags.Pref_bmo.Engine.truncated then t.truncated <- t.truncated + 1;
  r

(* [@name] resolves a prepared statement; anything else is source text. *)
let resolve_statement t src =
  let src = String.trim src in
  if String.length src > 0 && src.[0] = '@' then begin
    let name = String.sub src 1 (String.length src - 1) in
    match List.assoc_opt name t.statements with
    | Some q -> (src, Some q)
    | None ->
      raise
        (Exec.Error
           (Printf.sprintf "no prepared statement %S%s" name
              (Typo.suggest (List.map fst t.statements) name)))
  end
  else (src, None)

let execute t ~deadline src =
  match resolve_statement t src with
  | _, Some q ->
    count_result t
      (Exec.run_query_within ~registry:t.reg ~deadline t.config t.env q)
  | src, None ->
    count_result t (Exec.run_within ~registry:t.reg ~deadline t.config t.env src)

let plan_summary (r : Exec.result) =
  match r.Exec.profile with
  | Some p -> Some p.Pref_obs.Profile.algorithm
  | None -> None

let run_within t ~deadline src =
  t.queries <- t.queries + 1;
  try
    match t.config.Pref_bmo.Engine.slowlog_ms with
    | None -> execute t ~deadline src
    | Some threshold_ms ->
      (* Time the whole statement and collect its span tree (present only
         while telemetry is on); at or above the threshold the query goes
         to the slow-query log.  The profile knob decides whether a plan
         summary is available — slowlog itself does not force profiling. *)
      let since = Pref_obs.Clock.now_ns () in
      let r, span =
        Pref_obs.Span.collect "session.query"
          ~attrs:[ ("session", string_of_int t.s_id) ]
          (fun () -> execute t ~deadline src)
      in
      let ms = Pref_obs.Clock.elapsed_ms ~since in
      if ms >= threshold_ms then
        Slowlog.record ~ms ~threshold_ms ~query:(String.trim src)
          ~session:t.s_id ~plan:(plan_summary r) ?span ();
      r
  with e ->
    t.errors <- t.errors + 1;
    raise e

let run t src =
  run_within t ~deadline:(Pref_bmo.Engine.deadline_of t.config) src

let explain_within t ~analyze ~deadline src =
  match resolve_statement t src with
  | text, Some q ->
    Exec.explain_query_within ~registry:t.reg ~analyze ~deadline t.config t.env
      ~query_text:text q
  | src, None ->
    Exec.explain_within ~registry:t.reg ~analyze ~deadline t.config t.env src

let explain t ~analyze src =
  explain_within t ~analyze ~deadline:(Pref_bmo.Engine.deadline_of t.config) src

let stats t =
  {
    queries = t.queries;
    degraded = t.degraded;
    truncated = t.truncated;
    errors = t.errors;
  }

let stats_lines t =
  [
    ("session.queries", string_of_int t.queries);
    ("session.degraded", string_of_int t.degraded);
    ("session.truncated", string_of_int t.truncated);
    ("session.errors", string_of_int t.errors);
  ]
