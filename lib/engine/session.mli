(** An engine session: one client's view of the preference engine.

    A session bundles what used to be loose state threaded through the
    shell and the CLIs — the table environment, the function registry,
    one {!Pref_bmo.Engine.config} record, prepared statements, and
    per-session counters. The interactive shell holds one; the query
    server creates one per connection (sharing the process-wide result
    cache unless the session opts out via [SET cache off]).

    A session is used from one thread at a time (the server runs each
    connection's queries serially); different sessions may run
    concurrently on different domains. *)

open Pref_relation
open Pref_sql

type stats = {
  queries : int;  (** queries attempted (successful or not) *)
  degraded : int;  (** results returned [partial] after a deadline *)
  truncated : int;  (** results capped by [maxrows] *)
  errors : int;  (** queries that raised *)
}

type t

val create :
  ?registry:Translate.registry ->
  ?config:Pref_bmo.Engine.config ->
  ?env:Exec.env ->
  unit ->
  t

val id : t -> int
(** Process-unique session id — the [session] field of slow-query log
    entries and span attributes. *)

(** {1 Tables} *)

val env : t -> Exec.env
val set_env : t -> Exec.env -> unit

val add_table : t -> string -> Relation.t -> unit
(** Register (or replace) a table; names are stored lowercase, matching
    the shell's behaviour. *)

val find_table : t -> string -> Relation.t option

(** {1 Configuration} *)

val config : t -> Pref_bmo.Engine.config
val set_config : t -> Pref_bmo.Engine.config -> unit

val set : t -> key:string -> value:string -> (string, string) result
(** {!Pref_bmo.Engine.set} applied to the session's config; [Ok] carries
    a ["key: value"] confirmation line. *)

val describe : t -> (string * string) list
(** Current knob values ({!Pref_bmo.Engine.describe}). *)

val registry : t -> Translate.registry

(** {1 Prepared statements} *)

val prepare : t -> name:string -> string -> unit
(** Parse and store a query under [name] (replacing any previous one).
    Raises {!Parser.Error} on a syntax error — nothing is stored. *)

val prepared : t -> string list
(** Names of stored statements, most recently prepared first. *)

(** {1 Execution} *)

val run_within : t -> deadline:Pref_bmo.Engine.deadline -> string -> Exec.result
(** Execute Preference SQL under the session's config and an
    already-running deadline (servers start the budget at admission).
    [@name] executes the prepared statement [name]. Counts the query in
    {!stats} — including errors, which re-raise after counting. *)

val run : t -> string -> Exec.result
(** {!run_within} with the deadline started now from the session's
    [deadline_ms].

    With the session's [slowlog] knob set, statements at or above the
    threshold are recorded into {!Slowlog} (query text, session id, plan
    summary when profiling is on, and — telemetry permitting — the span
    tree). *)

val explain_within :
  t ->
  analyze:bool ->
  deadline:Pref_bmo.Engine.deadline ->
  string ->
  Pref_bmo.Explain.Plan.t

val explain : t -> analyze:bool -> string -> Pref_bmo.Explain.Plan.t
(** EXPLAIN the statement (source text or [@name]) under the session's
    config without answering it: {!Pref_sql.Exec.explain_within}. Not
    counted in {!stats} — explanation is introspection, not load. *)

(** {1 Stats} *)

val stats : t -> stats
val stats_lines : t -> (string * string) list
(** The counters as [key, value] string pairs (for STATS / [\set]). *)
