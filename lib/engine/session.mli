(** An engine session: one client's view of the preference engine.

    A session bundles what used to be loose state threaded through the
    shell and the CLIs — the table environment, the function registry,
    one {!Pref_bmo.Engine.config} record, prepared statements, and
    per-session counters. The interactive shell holds one; the query
    server creates one per connection (sharing the process-wide result
    cache unless the session opts out via [SET cache off]).

    A session is used from one thread at a time (the server runs each
    connection's queries serially); different sessions may run
    concurrently on different domains. *)

open Pref_relation
open Pref_sql

type stats = {
  queries : int;  (** queries attempted (successful or not) *)
  degraded : int;  (** results returned [partial] after a deadline *)
  truncated : int;  (** results capped by [maxrows] *)
  errors : int;  (** queries that raised *)
}

type t

val create :
  ?registry:Translate.registry ->
  ?config:Pref_bmo.Engine.config ->
  ?env:Exec.env ->
  unit ->
  t

val id : t -> int
(** Process-unique session id — the [session] field of slow-query log
    entries and span attributes. *)

(** {1 Tables} *)

val env : t -> Exec.env

val set_env : t -> Exec.env -> unit
(** Replace the whole table environment. Invalidates the revision seed
    (the last statement's result was computed against the old tables);
    the server uses this to propagate another connection's DML. *)

val add_table : t -> string -> Relation.t -> unit
(** Register (or replace) a table; names are stored lowercase, matching
    the shell's behaviour. Replacing the revision-seed table invalidates
    the seed — only {!insert}/{!delete} patch it in place. *)

val find_table : t -> string -> Relation.t option

(** {1 Configuration} *)

val config : t -> Pref_bmo.Engine.config
val set_config : t -> Pref_bmo.Engine.config -> unit

val set : t -> key:string -> value:string -> (string, string) result
(** {!Pref_bmo.Engine.set} applied to the session's config; [Ok] carries
    a ["key: value"] confirmation line. *)

val describe : t -> (string * string) list
(** Current knob values ({!Pref_bmo.Engine.describe}). *)

val registry : t -> Translate.registry

(** {1 Prepared statements} *)

val prepare : t -> name:string -> string -> unit
(** Parse and store a query under [name] (replacing any previous one).
    Raises {!Parser.Error} on a syntax error — nothing is stored. *)

val prepared : t -> string list
(** Names of stored statements, most recently prepared first. *)

(** {1 Execution} *)

val run_within : t -> deadline:Pref_bmo.Engine.deadline -> string -> Exec.result
(** Execute Preference SQL under the session's config and an
    already-running deadline (servers start the budget at admission).
    [@name] executes the prepared statement [name]. Counts the query in
    {!stats} — including errors, which re-raise after counting. *)

val run : t -> string -> Exec.result
(** {!run_within} with the deadline started now from the session's
    [deadline_ms].

    With the session's [slowlog] knob set, statements at or above the
    threshold are recorded into {!Slowlog} (query text, session id, plan
    summary when profiling is on, and — telemetry permitting — the span
    tree). *)

val explain_within :
  t ->
  analyze:bool ->
  deadline:Pref_bmo.Engine.deadline ->
  string ->
  Pref_bmo.Explain.Plan.t

val explain : t -> analyze:bool -> string -> Pref_bmo.Explain.Plan.t
(** EXPLAIN the statement (source text or [@name]) under the session's
    config without answering it: {!Pref_sql.Exec.explain_within}. Not
    counted in {!stats} — explanation is introspection, not load.
    [SUBSCRIBE <query>] explains the continuous form of the inner query:
    its plan under a [delta] operator priced by {!Pref_bmo.Cost}. *)

(** {1 Preference revision}

    The session remembers its last statement whenever the result is
    literally σ\[P\](table) — [SELECT *] over one table, no WHERE / TOP /
    BUT ONLY / GROUP BY, complete flags — and [refine] revises that
    statement's preference in place: the new term is classified against
    the old one ({!Revise.classify}) and evaluated from the cached BMO
    seed when the class allows ({!Revise.execute}). Single-row DML
    through {!insert}/{!delete} keeps the seed in sync. *)

val refine_within :
  t -> deadline:Pref_bmo.Engine.deadline -> string -> Revise.outcome
(** Revise the last statement's preference to the given term (bare
    Preference SQL preference syntax, e.g. ["LOWEST(price) AND
    HIGHEST(power)"]). Counts as a query in {!stats}; the revised
    statement becomes the new last statement. Raises {!Pref_sql.Exec.Error}
    when there is no seedable previous statement, and whatever parsing
    or execution raises. *)

val refine : t -> string -> Revise.outcome
(** {!refine_within} with the deadline started now. *)

val refine_explain : t -> string -> Pref_bmo.Explain.Plan.t
(** The plan {!refine} would execute — the revised query's plan under a
    [refine] operator recording the revision class and chosen route. *)

(** {1 Single-row DML}

    Shared by the shell's [.insert]/[.delete] and the server's DML wire
    verb: update the table in the session environment, patch the global
    result cache ({!Pref_bmo.Cache.on_insert}/[on_delete]) and keep the
    revision seed consistent. *)

val insert : t -> string -> Pref_relation.Tuple.t -> int
(** Append one row; returns the number of cached results patched.
    Raises {!Pref_sql.Exec.Unknown_table} on an unknown table. *)

val delete : t -> string -> Pref_relation.Tuple.t -> int option
(** Remove one occurrence of the row; [None] when no row matches,
    [Some patched] otherwise. Raises {!Pref_sql.Exec.Unknown_table} on an
    unknown table. *)

(** {1 Stats} *)

val stats : t -> stats
val stats_lines : t -> (string * string) list
(** The counters as [key, value] string pairs (for STATS / [\set]). *)
