(** Preference-term revision: classify a session's new term against its
    previous one and evaluate the revised query from the cheapest sound
    seed (Chomicki, {e Database Querying under Changing Preferences};
    composition Propositions 8–12).

    The classifier works on {!Preferences.Canon} canonical forms, so
    pure reorderings of the algebra never mask a refinement. The
    executor turns the class into an evaluation strategy:

    - [Prior_suffix] ([P' = P & S]): σ\[P'\](R) ⊆ σ\[P\](R), so the old
      BMO set alone is re-winnowed — exact by the same substitutability
      argument as the cache's prior-prefix tier (Prop. 10).
    - [Pareto_extend] ([P' = P ⊗ Q]): the new BMO set may grow outside
      the seed, but evaluating the base relation with the seed rows
      first gives the window algorithm a hot window of already-maximal
      tuples — exact for every algorithm, fast for the window family.
    - [Contraction] / [Disjoint]: no sound seed; a cold run (which the
      semantic cache tiers may still serve when the cache is on).

    {!Session.refine} drives this from the shell's [\refine], the wire
    REFINE verb and the router. *)

open Pref_relation
open Pref_sql

type kind =
  | Same  (** canonically equal terms *)
  | Prior_suffix  (** the old prioritisation spine is a strict prefix *)
  | Pareto_extend  (** the old Pareto operands are a strict subset *)
  | Contraction  (** the new term is a strict prefix/subset of the old *)
  | Disjoint  (** unrelated revision *)

val kind_to_string : kind -> string
(** [same], [prior-suffix], [pareto-extend], [contraction], [disjoint] —
    the spelling used by plan attributes, H210 findings and metrics. *)

val classify : old_p:Preferences.Pref.t -> new_p:Preferences.Pref.t -> kind

type outcome = {
  o_result : Exec.result;
  o_kind : kind;
  o_plan : string;
      (** the evaluation route: [refine:same], [refine:seed] (winnow of
          the seed only), [refine:hot] (seed-first base scan) or [cold] *)
  o_seed_rows : int;  (** size of the seed BMO set *)
}

val execute :
  ?registry:Translate.registry ->
  deadline:Pref_bmo.Engine.deadline ->
  Pref_bmo.Engine.config ->
  Exec.env ->
  table:string ->
  seed:Relation.t ->
  old_q:Ast.query ->
  Ast.query ->
  outcome
(** Evaluate the revised query [new_q] against [env], seeding from
    [seed] = σ\[P\](table) of the previous statement [old_q] when the
    classification allows it. Exact for every class — the class only
    changes the cost. Raises whatever {!Exec.run_query_within} raises. *)

val explain :
  ?registry:Translate.registry ->
  deadline:Pref_bmo.Engine.deadline ->
  Pref_bmo.Engine.config ->
  Exec.env ->
  table:string ->
  seed:Relation.t ->
  old_q:Ast.query ->
  query_text:string ->
  Ast.query ->
  Pref_bmo.Explain.Plan.t
(** The plan the revised query would run, with a [refine] operator on
    top recording the revision class, the chosen route and the
    {!Pref_bmo.Cost} prediction for the seed re-winnow. *)
