open Pref_relation
open Pref_sql
module Canon = Preferences.Canon

(* Revision of the session's preference term (Chomicki, "Database
   Querying under Changing Preferences").  The classifier compares the
   old and new term through their canonical forms; the executor picks
   the cheapest sound evaluation for the class:

   - prior-suffix refinement P' = P & S: sigma[P'](R) is contained in
     the old BMO set (anything outside it keeps its P-dominator, and
     SV-equivalence is substitutable), so re-winnowing the seed alone
     is exact — the Prop. 10 argument the cache's prior-prefix tier
     makes, without needing the cache to be on.
   - pareto-extend refinement P' = P (x) Q: the new BMO set is NOT a
     subset of the seed (a new dimension resurrects dominated tuples),
     but max[P'](R) = max[P'](max[P'](seed) ∪ rest): evaluating with the
     seed rows first hands the window algorithm a hot window of
     already-maximal tuples, so the scan over the rest degenerates to
     cheap dominance screening.
   - contraction / disjoint revision: no sound seed reuse; run cold
     (the semantic cache tiers still apply when enabled). *)

type kind = Same | Prior_suffix | Pareto_extend | Contraction | Disjoint

let kind_to_string = function
  | Same -> "same"
  | Prior_suffix -> "prior-suffix"
  | Pareto_extend -> "pareto-extend"
  | Contraction -> "contraction"
  | Disjoint -> "disjoint"

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: a', y :: b' -> String.equal x y && is_prefix a' b'
  | _ :: _, [] -> false

(* multiset containment over canonical keys (Pareto operands may repeat) *)
let multiset_subset a b =
  let remove_one x l =
    let rec go acc = function
      | [] -> None
      | y :: rest ->
        if String.equal x y then Some (List.rev_append acc rest)
        else go (y :: acc) rest
    in
    go [] l
  in
  let rec go a b =
    match a with
    | [] -> true
    | x :: rest -> (
      match remove_one x b with None -> false | Some b' -> go rest b')
  in
  go a b

let classify ~old_p ~new_p =
  if Canon.equal old_p new_p then Same
  else begin
    let ospine = List.map Canon.key (Canon.prior_spine old_p) in
    let nspine = List.map Canon.key (Canon.prior_spine new_p) in
    if List.length ospine < List.length nspine && is_prefix ospine nspine then
      Prior_suffix
    else if
      List.length nspine < List.length ospine && is_prefix nspine ospine
    then Contraction
    else begin
      let opar = List.map Canon.key (Canon.pareto_operands old_p) in
      let npar = List.map Canon.key (Canon.pareto_operands new_p) in
      if List.length opar < List.length npar && multiset_subset opar npar then
        Pareto_extend
      else if
        List.length npar < List.length opar && multiset_subset npar opar
      then Contraction
      else Disjoint
    end
  end

type outcome = {
  o_result : Exec.result;
  o_kind : kind;
  o_plan : string;
  o_seed_rows : int;
}

let rebind env table rel =
  let table = String.lowercase_ascii table in
  (table, rel) :: List.remove_assoc table env

(* remove one occurrence of every seed row from [rows], preserving order *)
let multiset_diff rows seed =
  List.fold_left
    (fun rows s ->
      let rec go acc = function
        | [] -> List.rev acc
        | r :: rest ->
          if Tuple.equal r s then List.rev_append acc rest
          else go (r :: acc) rest
      in
      go [] rows)
    rows seed

(* the evaluation environment for each revision class: the seed alone,
   the base relation reordered seed-first, or the environment as-is *)
let revision_env env ~table ~seed kind =
  match kind with
  | Same | Prior_suffix -> (rebind env table seed, "refine:seed")
  | Pareto_extend -> (
    match Exec.find_table env table with
    | Some base ->
      let rest = multiset_diff (Relation.rows base) (Relation.rows seed) in
      let hot = Relation.make (Relation.schema base) (Relation.rows seed @ rest) in
      (rebind env table hot, "refine:hot")
    | None -> (env, "cold"))
  | Contraction | Disjoint -> (env, "cold")

let prefs ?registry ~old_q new_q =
  match
    (Exec.full_preference ?registry old_q, Exec.full_preference ?registry new_q)
  with
  | Some old_p, Some new_p -> Some (old_p, new_p)
  | _ -> None

let execute ?registry ~deadline cfg env ~table ~seed ~old_q new_q =
  let kind =
    match prefs ?registry ~old_q new_q with
    | Some (old_p, new_p) -> classify ~old_p ~new_p
    | None -> Disjoint
  in
  let env', plan = revision_env env ~table ~seed kind in
  let plan = if kind = Same then "refine:same" else plan in
  let r = Exec.run_query_within ?registry ~deadline cfg env' new_q in
  {
    o_result = r;
    o_kind = kind;
    o_plan = plan;
    o_seed_rows = Relation.cardinality seed;
  }

let explain ?registry ~deadline cfg env ~table ~seed ~old_q ~query_text new_q =
  let kind, dims =
    match prefs ?registry ~old_q new_q with
    | Some (old_p, new_p) ->
      ( classify ~old_p ~new_p,
        List.length (Preferences.Pref.attrs new_p) )
    | None -> (Disjoint, 1)
  in
  let env', plan = revision_env env ~table ~seed kind in
  let plan = if kind = Same then "refine:same" else plan in
  let seed_rows = Relation.cardinality seed in
  let inner =
    Exec.explain_query_within ?registry ~analyze:false ~deadline cfg env'
      ~query_text new_q
  in
  let w =
    { Pref_bmo.Cost.n = seed_rows; dims = max 1 dims; domains = 1;
      correlation = 0. }
  in
  let refine_op =
    Pref_bmo.Explain.Plan.op "refine" ~rows_in:seed_rows
      ~attrs:
        [
          ("revision", kind_to_string kind);
          ("plan", plan);
          ( "predicted_ms",
            Printf.sprintf "%.3f" (Pref_bmo.Cost.predict_ms ~kind:"refine" w)
          );
        ]
  in
  { inner with Pref_bmo.Explain.Plan.ops = refine_op :: inner.Pref_bmo.Explain.Plan.ops }
