(* The slow-query log: queries at or above the session's [slowlog]
   threshold are recorded as one JSON object each — wall time, query
   text, session id, plan summary, and (sampled) the full span tree of
   the execution. A bounded in-memory ring serves the shell and tests;
   an optional append-file sink serves operators (prefserve
   --slowlog-file), one JSON line per entry. *)

type entry = { seq : int; json : Pref_obs.Json.t }

let cap = 64
let m = Mutex.create ()
let ring : entry list ref = ref [] (* newest first, length <= cap *)
let seq = ref 0
let total = ref 0
let sample = ref 1 (* every nth slow query carries its span tree *)
let sink : out_channel option ref = ref None
let sink_path : string option ref = ref None

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let set_sample n = locked (fun () -> sample := max 1 n)

let close_sink () =
  (match !sink with Some oc -> close_out_noerr oc | None -> ());
  sink := None;
  sink_path := None

let set_file = function
  | None -> locked close_sink
  | Some path ->
    locked @@ fun () ->
    close_sink ();
    sink := Some (open_out_gen [ Open_append; Open_creat ] 0o644 path);
    sink_path := Some path

let file () = locked (fun () -> !sink_path)

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let record ~ms ~threshold_ms ~query ~session ~plan ?span () =
  locked @@ fun () ->
  incr total;
  incr seq;
  let with_span = (!seq - 1) mod !sample = 0 in
  let json =
    Pref_obs.Json.Obj
      ([
         ("seq", Pref_obs.Json.Int !seq);
         ("ms", Pref_obs.Json.Float ms);
         ("threshold_ms", Pref_obs.Json.Float threshold_ms);
         ("session", Pref_obs.Json.Int session);
         ("query", Pref_obs.Json.Str query);
         ( "plan",
           match plan with
           | Some p -> Pref_obs.Json.Str p
           | None -> Pref_obs.Json.Null );
       ]
      @
      match span with
      | Some node when with_span ->
        [ ("span", Pref_obs.Span.to_json node) ]
      | _ -> [])
  in
  ring := take cap ({ seq = !seq; json } :: !ring);
  match !sink with
  | Some oc ->
    output_string oc (Pref_obs.Json.to_string json ^ "\n");
    flush oc
  | None -> ()

let recent () = locked (fun () -> List.map (fun e -> e.json) !ring)
let count () = locked (fun () -> !total)

let clear () =
  locked @@ fun () ->
  ring := [];
  total := 0;
  seq := 0
