open Pref_relation

let explicit_graph closed_edges =
  let values =
    List.fold_left
      (fun acc (w, b) ->
        let add v acc =
          if List.exists (Value.equal v) acc then acc else v :: acc
        in
        add w (add b acc))
      [] closed_edges
  in
  Pref_order.Graph.of_edges ~equal:Value.equal values
    (List.map (fun (w, b) -> (b, w)) closed_edges)

let rec level p v =
  match p with
  | Pref.Pos (_, set) -> Some (if List.exists (Value.equal v) set then 1 else 2)
  | Pref.Neg (_, set) -> Some (if List.exists (Value.equal v) set then 2 else 1)
  | Pref.Pos_neg (_, pset, nset) ->
    Some
      (if List.exists (Value.equal v) pset then 1
       else if List.exists (Value.equal v) nset then 3
       else 2)
  | Pref.Pos_pos (_, p1, p2) ->
    Some
      (if List.exists (Value.equal v) p1 then 1
       else if List.exists (Value.equal v) p2 then 2
       else 3)
  | Pref.Explicit (_, closed) ->
    let g = explicit_graph closed in
    let in_range w = List.exists (Value.equal w) (Pref_order.Graph.nodes g) in
    let max_level =
      Array.fold_left max 1 (Pref_order.Graph.levels g)
    in
    Some
      (if in_range v then Pref_order.Graph.level_of ~equal:Value.equal g v
       else max_level + 1)
  | Pref.Two_graphs s ->
    (* POS block levels, then others, then NEG block levels below *)
    let block edges singles =
      let g = explicit_graph edges in
      let nodes = Pref_order.Graph.nodes g in
      let depth =
        if nodes = [] then if singles = [] then 0 else 1
        else
          max
            (Array.fold_left max 1 (Pref_order.Graph.levels g))
            (if singles = [] then 1 else 1)
      in
      let level_of v =
        if List.exists (Value.equal v) singles then Some 1
        else if List.exists (Value.equal v) nodes then
          Some (Pref_order.Graph.level_of ~equal:Value.equal g v)
        else None
      in
      (depth, level_of)
    in
    let pos_depth, pos_level = block s.Pref.tg_pos s.Pref.tg_pos_singles in
    let _, neg_level = block s.Pref.tg_neg s.Pref.tg_neg_singles in
    (match pos_level v with
    | Some l -> Some l
    | None -> (
      match neg_level v with
      | Some l -> Some (pos_depth + 1 + l)
      | None -> Some (pos_depth + 1)))
  | Pref.Dual _ | Pref.Around _ | Pref.Between _ | Pref.Lowest _
  | Pref.Highest _ | Pref.Score _ | Pref.Antichain _ | Pref.Pareto _
  | Pref.Prior _ | Pref.Rank _ | Pref.Inter _ | Pref.Dunion _ ->
    None
  | Pref.Lsum s ->
    (* Values of the left operand keep their level; right-operand values sit
       below every left level (Definition 12). *)
    let in_dom dom = List.exists (Value.equal v) dom in
    if in_dom s.ls_left_dom then level s.ls_left v
    else if in_dom s.ls_right_dom then
      let left_depth =
        match max_level_of s.ls_left s.ls_left_dom with
        | Some d -> d
        | None -> 1
      in
      Option.map (fun l -> left_depth + l) (level s.ls_right v)
    else None

and max_level_of p dom =
  List.fold_left
    (fun acc v ->
      match acc, level p v with
      | Some a, Some l -> Some (max a l)
      | None, l -> l
      | a, None -> a)
    None dom

let distance p v =
  match p with
  | Pref.Around (_, z) -> Some (Pref.distance_around v z)
  | Pref.Between (_, low, up) -> Some (Pref.distance_between v ~low ~up)
  | Pref.Pos _ | Pref.Neg _ | Pref.Pos_neg _ | Pref.Pos_pos _
  | Pref.Explicit _ | Pref.Lowest _ | Pref.Highest _ | Pref.Score _
  | Pref.Antichain _ | Pref.Dual _ | Pref.Pareto _ | Pref.Prior _
  | Pref.Rank _ | Pref.Inter _ | Pref.Dunion _ | Pref.Lsum _
  | Pref.Two_graphs _ ->
    None

let rec base_for_attr p attr =
  match p with
  | Pref.Pos (a, _) | Pref.Neg (a, _) | Pref.Pos_neg (a, _, _)
  | Pref.Pos_pos (a, _, _) | Pref.Explicit (a, _) | Pref.Around (a, _)
  | Pref.Between (a, _, _) | Pref.Lowest a | Pref.Highest a
  | Pref.Score (a, _) ->
    if String.equal a attr then Some p else None
  | Pref.Antichain _ -> None
  | Pref.Dual q -> base_for_attr q attr
  | Pref.Pareto (q1, q2) | Pref.Prior (q1, q2) | Pref.Rank (_, q1, q2)
  | Pref.Inter (q1, q2) | Pref.Dunion (q1, q2) -> (
    match base_for_attr q1 attr with
    | Some _ as r -> r
    | None -> base_for_attr q2 attr)
  | Pref.Lsum s -> if String.equal s.ls_attr attr then Some p else None
  | Pref.Two_graphs s -> if String.equal s.tg_attr attr then Some p else None

let level_of schema p attr t =
  match base_for_attr p attr with
  | None -> None
  | Some base -> level base (Tuple.get_by_name schema t attr)

let distance_of schema p attr t =
  match base_for_attr p attr with
  | None -> None
  | Some base -> distance base (Tuple.get_by_name schema t attr)

let level_in_graph schema p rel t =
  let g = Show.better_than_graph schema p rel in
  Pref_order.Graph.level_of g t
