(** Equivalence-preserving simplification of preference terms.

    A small rewriting engine applying the laws of §4 syntactically: dual
    elimination, idempotence, anti-chain absorption, the generalised
    discrimination collapse (Proposition 4a) and the Pareto-to-intersection
    collapse on shared attribute sets (Proposition 6). This is the seed of
    the "preference query optimizer" the paper's outlook calls for: every
    rule preserves ≡ (Definition 13), hence BMO results (Proposition 7). *)

val step : Pref.t -> Pref.t option
(** One rewrite at the root, [None] if no rule applies. *)

val simplify : Pref.t -> Pref.t
(** Bottom-up rewriting to a fixpoint. Terminates: every rule either shrinks
    the term or moves strictly down a well-founded constructor ordering
    (⊗ → & / ♦, which no rule reverses). *)

val simplify_count : Pref.t -> Pref.t * int
(** [simplify] plus the number of rule applications it performed — the
    optimizer's rewrite-step telemetry. Each application also increments the
    engine-wide [core.rewrite_steps] counter when telemetry is enabled. *)

val size : Pref.t -> int
(** Number of constructors, for optimizer metrics and tests. *)
