(** Proving winnow redundancy from the input relation.

    Chomicki's semantic optimisation of preference queries eliminates a
    winnow σ[P](R) when integrity constraints make the preference
    degenerate on R: if no tuple of R is {e strictly} preferred to
    another, every tuple is maximal and σ[P](R) = R. This module decides
    that property against the materialised input — the strongest
    integrity constraint available to an in-memory executor — with lazy,
    early-exit scans:

    - {b constancy}: every attribute P reads is constant over R (and P
      does not relate a value to itself), so all rows are
      P-interchangeable;
    - {b band uniformity}: for POS/NEG-family terms, the column is
      uniform with respect to the named value sets (all inside, or none
      inside); for BETWEEN, every value already lies inside the band
      (distance 0 for all rows);
    - {b structure}: an antichain relates nothing; A ⊗ B, A & B and
      A + B are degenerate when both operands are; A ♦ B when either
      operand is; [dual] preserves degeneracy.

    The analysis is sound, not complete: [None] means "not provable",
    never "the winnow does something". The SQL executor consults it (when
    the cost model is on) to replace provably redundant winnows with the
    identity plan. *)

open Pref_relation

val redundant : Schema.t -> Pref.t -> Relation.t -> string option
(** [redundant schema p rel] is [Some reason] when σ[P](rel) = rel is
    provable — no tuple of [rel] is strictly preferred to another under
    [p]. Inputs with at most one row are always redundant. The reason
    string is human-readable, for EXPLAIN output. *)

val never_strict : Schema.t -> Pref.t -> Relation.t -> bool
(** [Option.is_some] of {!redundant}. *)
