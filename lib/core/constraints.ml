open Pref_relation

let value_mem v set = List.exists (Value.equal v) set

(* All scans early-exit and read attribute values through one accessor so
   a malformed attribute (not in the schema) aborts the proof instead of
   the query: we only ever claim redundancy when the scan finished. *)

type facts = {
  schema : Schema.t;
  rep : Tuple.t;  (** representative row (input is non-empty) *)
  rows : Tuple.t list;
  constant : (string, bool) Hashtbl.t;  (** memoised constancy per attr *)
}

let getv facts row a = Tuple.get_by_name facts.schema row a

let constant facts a =
  match Hashtbl.find_opt facts.constant a with
  | Some b -> b
  | None ->
    let b =
      try
        let v0 = getv facts facts.rep a in
        List.for_all (fun row -> Value.equal (getv facts row a) v0) facts.rows
      with _ -> false
    in
    Hashtbl.add facts.constant a b;
    b

let forall_in facts a set =
  try List.for_all (fun row -> value_mem (getv facts row a) set) facts.rows
  with _ -> false

let exists_in facts a set =
  try List.exists (fun row -> value_mem (getv facts row a) set) facts.rows
  with _ -> true (* unknown: assume a witness exists *)

let forall_in2 facts a s1 s2 =
  try
    List.for_all
      (fun row ->
        let v = getv facts row a in
        value_mem v s1 || value_mem v s2)
      facts.rows
  with _ -> false

let all_in_range facts a ~low ~up =
  try
    List.for_all
      (fun row ->
        match Value.as_float (getv facts row a) with
        | Some f -> low <= f && f <= up
        | None -> false)
      facts.rows
  with _ -> false

(* The generic rule: when every attribute the term reads is constant over
   R, any two rows are interchangeable for P, so x <_P y iff rep <_P rep
   — decidable by one evaluation.  (The reflexive check matters: an
   ill-formed term such as an LSUM with overlapping domains can relate a
   value to itself, and then the winnow is NOT redundant.) *)
let constant_attrs facts p =
  let attrs = Pref.attrs p in
  attrs <> []
  && List.for_all (constant facts) attrs
  && (try not (Pref.lt facts.schema p facts.rep facts.rep) with _ -> false)

let describe_attrs p =
  match Pref.attrs p with
  | [ a ] -> Printf.sprintf "attribute %s is constant" a
  | attrs -> Printf.sprintf "attributes %s are constant" (String.concat ", " attrs)

let rec prove facts p =
  if constant_attrs facts p then Some (describe_attrs p)
  else
    match p with
    | Pref.Antichain _ -> Some "antichain preference relates no two tuples"
    | Pref.Dual q -> prove facts q
    | Pref.Pos (a, set) | Pref.Neg (a, set) ->
      (* x <_P y needs one value inside the set and one outside. *)
      if not (exists_in facts a set) then
        Some (Printf.sprintf "no %s value lies in the named set" a)
      else if forall_in facts a set then
        Some (Printf.sprintf "every %s value lies in the named set" a)
      else None
    | Pref.Pos_neg (a, pset, nset) ->
      (* lt = (x in NEG, y not) or (x in neither, y in POS). *)
      let neg_uniform =
        (not (exists_in facts a nset)) || forall_in facts a nset
      in
      let pos_impossible =
        (not (exists_in facts a pset)) || forall_in2 facts a pset nset
      in
      if neg_uniform && pos_impossible then
        Some
          (Printf.sprintf "%s values are uniform w.r.t. the POS/NEG sets" a)
      else None
    | Pref.Pos_pos (a, p1, p2) ->
      (* lt = (x in P2, y in P1) or (x outside both, y inside either). *)
      let first_impossible =
        (not (exists_in facts a p2)) || not (exists_in facts a p1)
      in
      let second_impossible =
        forall_in2 facts a p1 p2
        || not
             (try
                List.exists
                  (fun row ->
                    let v = getv facts row a in
                    value_mem v p1 || value_mem v p2)
                  facts.rows
              with _ -> true)
      in
      if first_impossible && second_impossible then
        Some
          (Printf.sprintf "%s values are uniform w.r.t. the POS1/POS2 sets" a)
      else None
    | Pref.Explicit (a, closed) ->
      let range =
        List.concat_map (fun (worse, better) -> [ worse; better ]) closed
      in
      if not (exists_in facts a range) then
        Some (Printf.sprintf "no %s value occurs in the explicit graph" a)
      else None
    | Pref.Between (a, low, up) ->
      if all_in_range facts a ~low ~up then
        Some (Printf.sprintf "all %s values lie within [%g, %g]" a low up)
      else None
    | Pref.Pareto (p1, p2) | Pref.Prior (p1, p2) | Pref.Dunion (p1, p2) -> (
      (* Strictness of the compound needs strictness of an operand. *)
      match prove facts p1 with
      | None -> None
      | Some r1 -> (
        match prove facts p2 with
        | None -> None
        | Some r2 ->
          Some (if String.equal r1 r2 then r1 else r1 ^ "; " ^ r2)))
    | Pref.Inter (p1, p2) -> (
      (* x <_P y needs BOTH operands strict: one degenerate operand
         suffices. *)
      match prove facts p1 with
      | Some r -> Some r
      | None -> prove facts p2)
    | Pref.Around _ | Pref.Lowest _ | Pref.Highest _ | Pref.Score _
    | Pref.Rank _ | Pref.Lsum _ | Pref.Two_graphs _ ->
      (* Only degenerate via the constancy rule above. *)
      None

let redundant schema p rel =
  match Relation.rows rel with
  | [] | [ _ ] -> Some "at most one input row"
  | rep :: _ as rows ->
    prove { schema; rep; rows; constant = Hashtbl.create 8 } p

let never_strict schema p rel = Option.is_some (redundant schema p rel)
