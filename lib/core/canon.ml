open Pref_relation

(* Sorting keys: values sort by the total Value.compare; terms sort by their
   serialized text. Both orders are arbitrary but fixed, which is all a
   canonical form needs. *)

let sort_values vs = List.sort_uniq Value.compare vs

let sort_edges es =
  List.sort_uniq
    (fun (w1, b1) (w2, b2) ->
      let c = Value.compare w1 w2 in
      if c <> 0 then c else Value.compare b1 b2)
    es

let rec flatten_pareto = function
  | Pref.Pareto (p, q) -> flatten_pareto p @ flatten_pareto q
  | p -> [ p ]

let rec flatten_prior = function
  | Pref.Prior (p, q) -> flatten_prior p @ flatten_prior q
  | p -> [ p ]

let rec flatten_inter = function
  | Pref.Inter (p, q) -> flatten_inter p @ flatten_inter q
  | p -> [ p ]

let rec flatten_dunion = function
  | Pref.Dunion (p, q) -> flatten_dunion p @ flatten_dunion q
  | p -> [ p ]

(* Left-nested rebuild via the raw constructors: the operands come from a
   validated term, so re-running the smart-constructor checks would only
   cost time. *)
let rebuild mk = function
  | [] -> invalid_arg "Canon.rebuild: empty operand list"
  | first :: rest -> List.fold_left mk first rest

let rec canonical p =
  match p with
  | Pref.Pos (a, vs) -> Pref.Pos (a, sort_values vs)
  | Pref.Neg (a, vs) -> Pref.Neg (a, sort_values vs)
  | Pref.Pos_neg (a, ps, ns) -> Pref.Pos_neg (a, sort_values ps, sort_values ns)
  | Pref.Pos_pos (a, p1, p2) -> Pref.Pos_pos (a, sort_values p1, sort_values p2)
  | Pref.Explicit (a, es) -> Pref.Explicit (a, sort_edges es)
  | Pref.Around _ | Pref.Between _ | Pref.Lowest _ | Pref.Highest _
  | Pref.Score _ ->
    p
  | Pref.Antichain attrs -> Pref.Antichain (Attr.normalize attrs)
  | Pref.Dual q -> Pref.Dual (canonical q)
  | Pref.Pareto _ ->
    sorted_accum (fun a b -> Pref.Pareto (a, b)) (flatten_pareto p)
  | Pref.Inter _ -> sorted_accum (fun a b -> Pref.Inter (a, b)) (flatten_inter p)
  | Pref.Dunion _ ->
    sorted_accum (fun a b -> Pref.Dunion (a, b)) (flatten_dunion p)
  | Pref.Prior _ ->
    (* associative but not commutative: left-nest, keep order *)
    rebuild (fun a b -> Pref.Prior (a, b)) (List.map canonical (flatten_prior p))
  | Pref.Rank (f, q, r) -> Pref.Rank (f, canonical q, canonical r)
  | Pref.Lsum s ->
    Pref.Lsum
      {
        s with
        Pref.ls_left = canonical s.Pref.ls_left;
        ls_left_dom = sort_values s.Pref.ls_left_dom;
        ls_right = canonical s.Pref.ls_right;
        ls_right_dom = sort_values s.Pref.ls_right_dom;
      }
  | Pref.Two_graphs g ->
    Pref.Two_graphs
      {
        g with
        Pref.tg_pos = sort_edges g.Pref.tg_pos;
        tg_pos_singles = sort_values g.Pref.tg_pos_singles;
        tg_neg = sort_edges g.Pref.tg_neg;
        tg_neg_singles = sort_values g.Pref.tg_neg_singles;
      }

and sorted_accum mk operands =
  let keyed =
    List.map
      (fun q ->
        let q = canonical q in
        (Serialize.to_string q, q))
      operands
  in
  rebuild mk
    (List.map snd (List.sort (fun (a, _) (b, _) -> String.compare a b) keyed))

let key p = Serialize.to_string (canonical p)
let equal p q = String.equal (key p) (key q)
let prior_spine p = List.map canonical (flatten_prior p)

let pareto_operands p =
  match canonical p with
  | Pref.Pareto _ as c -> flatten_pareto c
  | c -> [ c ]

let dunion_operands p =
  match canonical p with
  | Pref.Dunion _ as c -> flatten_dunion c
  | c -> [ c ]
