open Pref_relation

type score_fn = {
  sname : string;
  score : Value.t -> float;
}

type combine_fn = {
  cname : string;
  combine : float -> float -> float;
}

type t =
  | Pos of string * Value.t list
  | Neg of string * Value.t list
  | Pos_neg of string * Value.t list * Value.t list
  | Pos_pos of string * Value.t list * Value.t list
  | Explicit of string * (Value.t * Value.t) list
  | Around of string * float
  | Between of string * float * float
  | Lowest of string
  | Highest of string
  | Score of string * score_fn
  | Antichain of Attr.t
  | Dual of t
  | Pareto of t * t
  | Prior of t * t
  | Rank of combine_fn * t * t
  | Inter of t * t
  | Dunion of t * t
  | Lsum of lsum_spec
  | Two_graphs of two_graphs_spec

and lsum_spec = {
  ls_attr : string;
  ls_left : t;
  ls_left_dom : Value.t list;
  ls_right : t;
  ls_right_dom : Value.t list;
}

and two_graphs_spec = {
  tg_attr : string;
  tg_pos : (Value.t * Value.t) list;  (* closed edges, (worse, better) *)
  tg_pos_singles : Value.t list;
  tg_neg : (Value.t * Value.t) list;
  tg_neg_singles : Value.t list;
}

(* Structured ill-formedness: the diagnostic code matches the static
   analyzer's (Pref_analysis.Diagnostic), so the executor and the analyzer
   report identical findings for the same defect. *)
exception Ill_formed of { code : string; message : string; term : t }

let ill_formed ~code ~message term = raise (Ill_formed { code; message; term })

let () =
  Printexc.register_printer (function
    | Ill_formed { code; message; _ } ->
      Some (Printf.sprintf "Pref.Ill_formed[%s]: %s" code message)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Attribute sets                                                      *)

let rec attrs = function
  | Pos (a, _) | Neg (a, _) | Pos_neg (a, _, _) | Pos_pos (a, _, _)
  | Explicit (a, _) | Around (a, _) | Between (a, _, _)
  | Lowest a | Highest a | Score (a, _) ->
    [ a ]
  | Antichain l -> Attr.normalize l
  | Dual p -> attrs p
  | Pareto (p, q) | Prior (p, q) | Rank (_, p, q) | Inter (p, q) | Dunion (p, q)
    ->
    Attr.union (attrs p) (attrs q)
  | Lsum s -> [ s.ls_attr ]
  | Two_graphs s -> [ s.tg_attr ]

let is_single_attribute p = match attrs p with [ _ ] -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)

let check_disjoint_sets what s1 s2 =
  if List.exists (fun v -> List.exists (Value.equal v) s2) s1 then
    invalid_arg (what ^ ": value sets must be disjoint")

let pos a set = Pos (a, set)
let neg a set = Neg (a, set)

let pos_neg a ~pos ~neg =
  check_disjoint_sets "Pref.pos_neg" pos neg;
  Pos_neg (a, pos, neg)

let pos_pos a ~pos1 ~pos2 =
  check_disjoint_sets "Pref.pos_pos" pos1 pos2;
  Pos_pos (a, pos1, pos2)

(* Close an edge list transitively, rejecting cycles; edges are in the
   paper's (worse, better) reading.  The result is sorted canonically so
   structurally equal orders have structurally equal terms regardless of
   how the edges were supplied. *)
let close_edge_list ~what edges =
  let values =
    List.fold_left
      (fun acc (x, y) ->
        let add v acc = if List.exists (Value.equal v) acc then acc else v :: acc in
        add x (add y acc))
      [] edges
  in
  (* of_edges expects (better, worse); the paper's pairs are (worse, better). *)
  let g =
    Pref_order.Graph.of_edges ~equal:Value.equal values
      (List.map (fun (worse, better) -> (better, worse)) edges)
  in
  if not (Pref_order.Graph.is_acyclic g) then
    invalid_arg (what ^ ": better-than graph is cyclic");
  let closed = Pref_order.Graph.transitive_closure g in
  List.map (fun (better, worse) -> (worse, better)) (Pref_order.Graph.edges closed)
  |> List.sort (fun (w1, b1) (w2, b2) ->
         match Value.compare w1 w2 with
         | 0 -> Value.compare b1 b2
         | c -> c)

let edge_values edges =
  List.fold_left
    (fun acc (x, y) ->
      let add v acc = if List.exists (Value.equal v) acc then acc else v :: acc in
      add x (add y acc))
    [] edges

let explicit a edges =
  (* The stored term carries the full strict order <_E of Definition 6(e). *)
  Explicit (a, close_edge_list ~what:"Pref.explicit" edges)

let two_graphs ~attr ?(pos_edges = []) ?(pos_singles = []) ?(neg_edges = [])
    ?(neg_singles = []) () =
  (* §3.4's suggested super-constructor of POS/NEG and EXPLICIT: a POS graph
     on top, all other domain values in the middle, a NEG graph at the
     bottom — assembled by linear sums in analogy to POS/NEG. *)
  let tg_pos = close_edge_list ~what:"Pref.two_graphs (pos)" pos_edges in
  let tg_neg = close_edge_list ~what:"Pref.two_graphs (neg)" neg_edges in
  let dedup_singles edges singles =
    let in_edges = edge_values edges in
    List.sort_uniq Value.compare
      (List.filter (fun v -> not (List.exists (Value.equal v) in_edges)) singles)
  in
  let tg_pos_singles = dedup_singles tg_pos pos_singles in
  let tg_neg_singles = dedup_singles tg_neg neg_singles in
  let pos_range = edge_values tg_pos @ tg_pos_singles in
  let neg_range = edge_values tg_neg @ tg_neg_singles in
  if List.exists (fun v -> List.exists (Value.equal v) neg_range) pos_range then
    invalid_arg "Pref.two_graphs: POS and NEG graphs must be disjoint";
  Two_graphs { tg_attr = attr; tg_pos; tg_pos_singles; tg_neg; tg_neg_singles }

let around a z = Around (a, z)

let between a ~low ~up =
  if low > up then invalid_arg "Pref.between: low must be <= up";
  Between (a, low, up)

let lowest a = Lowest a
let highest a = Highest a
let score a ~name f = Score (a, { sname = name; score = f })
let antichain l = Antichain (Attr.normalize l)
let dual p = Dual p
let pareto p q = Pareto (p, q)

let pareto_all = function
  | [] -> invalid_arg "Pref.pareto_all: empty list"
  | p :: rest -> List.fold_left pareto p rest

let prior p q = Prior (p, q)

let prior_all = function
  | [] -> invalid_arg "Pref.prior_all: empty list"
  | p :: rest -> List.fold_left prior p rest

let inter p q =
  if not (Attr.equal (attrs p) (attrs q)) then
    invalid_arg "Pref.inter: operands must share the same attribute set";
  Inter (p, q)

(* No attribute-set check: Definition 11b states both operands act on the
   same attribute set, but Proposition 4(b) applies '+' after order-embedding
   P1 into A1 ∪ A2 (appendix proof).  Tuple-level evaluation performs that
   embedding implicitly, so operands over different attribute sets are
   meaningful and needed. *)
let dunion p q = Dunion (p, q)

(* ------------------------------------------------------------------ *)
(* Scoring view (for rank(F) and constructor substitutability, §3.4)   *)

let rec score_via getv p =
  let num a t = Value.as_float (getv t a) in
  match p with
  | Score (a, f) -> Some (fun t -> f.score (getv t a))
  | Around (a, z) ->
    Some
      (fun t ->
        match num a t with
        | Some v -> -.Float.abs (v -. z)
        | None -> Float.neg_infinity)
  | Between (a, low, up) ->
    Some
      (fun t ->
        match num a t with
        | Some v -> if v < low then v -. low else if v > up then up -. v else 0.
        | None -> Float.neg_infinity)
  | Lowest a ->
    Some
      (fun t ->
        match num a t with Some v -> -.v | None -> Float.neg_infinity)
  | Highest a ->
    Some (fun t -> match num a t with Some v -> v | None -> Float.neg_infinity)
  | Dual p -> (
    match score_via getv p with
    | Some s -> Some (fun t -> -.s t)
    | None -> None)
  | Rank (f, p1, p2) -> (
    match score_via getv p1, score_via getv p2 with
    | Some s1, Some s2 -> Some (fun t -> f.combine (s1 t) (s2 t))
    | _ -> None)
  | Pos _ | Neg _ | Pos_neg _ | Pos_pos _ | Explicit _ | Antichain _
  | Pareto _ | Prior _ | Inter _ | Dunion _ | Lsum _ | Two_graphs _ ->
    None

let is_scorable p = Option.is_some (score_via (fun _ _ -> Value.Null) p)

let rank f p q =
  if not (is_scorable p && is_scorable q) then
    invalid_arg
      "Pref.rank: operands must be SCORE preferences or sub-constructors of \
       SCORE (AROUND, BETWEEN, LOWEST, HIGHEST, rank)";
  Rank (f, p, q)

let weighted_sum w1 w2 =
  {
    cname = Printf.sprintf "%g*x + %g*y" w1 w2;
    combine = (fun x y -> (w1 *. x) +. (w2 *. y));
  }

let lsum ~attr (left, left_dom) (right, right_dom) =
  if not (is_single_attribute left && is_single_attribute right) then
    invalid_arg "Pref.lsum: operands must be single-attribute preferences";
  check_disjoint_sets "Pref.lsum (domains)" left_dom right_dom;
  Lsum
    {
      ls_attr = attr;
      ls_left = left;
      ls_left_dom = left_dom;
      ls_right = right;
      ls_right_dom = right_dom;
    }

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)

let value_mem v set = List.exists (Value.equal v) set

(* Value-level order of a two-graphs preference: POS block on top (ordered
   by its graph), all other values in the middle, NEG block at the bottom
   (ordered by its graph) — a linear sum of three blocks, hence an SPO. *)
let tg_lt s vx vy =
  let mem_edges edges v =
    List.exists (fun (w, b) -> Value.equal v w || Value.equal v b) edges
  in
  let in_pos v = mem_edges s.tg_pos v || value_mem v s.tg_pos_singles in
  let in_neg v = mem_edges s.tg_neg v || value_mem v s.tg_neg_singles in
  let edge edges =
    List.exists (fun (w, b) -> Value.equal vx w && Value.equal vy b) edges
  in
  if in_neg vx then (not (in_neg vy)) || edge s.tg_neg
  else if in_pos vx then in_pos vy && edge s.tg_pos
  else in_pos vy

let distance_around v z =
  match Value.as_float v with
  | Some f -> Float.abs (f -. z)
  | None -> Float.infinity

let distance_between v ~low ~up =
  match Value.as_float v with
  | Some f -> if f < low then low -. f else if f > up then f -. up else 0.
  | None -> Float.infinity

(* [lt_via getv p x y] decides x <_P y ("y is better than x"), reading
   attribute values through [getv].  Polymorphic recursion: the Lsum case
   re-enters at the Value.t instantiation to evaluate its single-attribute
   operands directly on values. *)
let rec lt_via : 'row. ('row -> string -> Value.t) -> t -> 'row -> 'row -> bool =
  fun (type row) (getv : row -> string -> Value.t) p (x : row) (y : row) ->
  match p with
  | Pos (a, set) ->
    let vx = getv x a and vy = getv y a in
    (not (value_mem vx set)) && value_mem vy set
  | Neg (a, set) ->
    let vx = getv x a and vy = getv y a in
    (not (value_mem vy set)) && value_mem vx set
  | Pos_neg (a, pset, nset) ->
    let vx = getv x a and vy = getv y a in
    (value_mem vx nset && not (value_mem vy nset))
    || ((not (value_mem vx nset))
       && (not (value_mem vx pset))
       && value_mem vy pset)
  | Pos_pos (a, p1, p2) ->
    let vx = getv x a and vy = getv y a in
    (value_mem vx p2 && value_mem vy p1)
    || ((not (value_mem vx p1))
       && (not (value_mem vx p2))
       && (value_mem vy p2 || value_mem vy p1))
  | Explicit (a, closed) ->
    let vx = getv x a and vy = getv y a in
    let in_range v =
      List.exists (fun (w, b) -> Value.equal v w || Value.equal v b) closed
    in
    List.exists (fun (w, b) -> Value.equal vx w && Value.equal vy b) closed
    || ((not (in_range vx)) && in_range vy)
  | Around (a, z) -> distance_around (getv x a) z > distance_around (getv y a) z
  | Between (a, low, up) ->
    distance_between (getv x a) ~low ~up > distance_between (getv y a) ~low ~up
  | Lowest a -> (
    match Value.as_float (getv x a), Value.as_float (getv y a) with
    | Some vx, Some vy -> vx > vy
    | None, Some _ -> true (* NULL is worst *)
    | (Some _ | None), None -> false)
  | Highest a -> (
    match Value.as_float (getv x a), Value.as_float (getv y a) with
    | Some vx, Some vy -> vx < vy
    | None, Some _ -> true
    | (Some _ | None), None -> false)
  | Score (a, f) -> f.score (getv x a) < f.score (getv y a)
  | Antichain _ -> false
  | Dual p -> lt_via getv p y x
  | Pareto (p1, p2) ->
    let lt1 = lt_via getv p1 x y
    and lt2 = lt_via getv p2 x y
    and eq1 = eq_via getv (attrs p1) x y
    and eq2 = eq_via getv (attrs p2) x y in
    (lt1 && (lt2 || eq2)) || (lt2 && (lt1 || eq1))
  | Prior (p1, p2) ->
    lt_via getv p1 x y || (eq_via getv (attrs p1) x y && lt_via getv p2 x y)
  | Rank (f, p1, p2) -> (
    match score_via getv p1, score_via getv p2 with
    | Some s1, Some s2 -> f.combine (s1 x) (s2 x) < f.combine (s1 y) (s2 y)
    | _ -> invalid_arg "Pref: rank applied to non-scorable operand")
  | Inter (p1, p2) -> lt_via getv p1 x y && lt_via getv p2 x y
  | Dunion (p1, p2) -> lt_via getv p1 x y || lt_via getv p2 x y
  | Lsum s ->
    let vx = getv x s.ls_attr and vy = getv y s.ls_attr in
    let sub p v w =
      (* Evaluate the single-attribute operand on raw values by rerouting
         every attribute lookup to the linear sum's combined attribute. *)
      let getv' u (_ : string) = u in
      lt_via getv' p v w
    in
    sub s.ls_left vx vy || sub s.ls_right vx vy
    || (value_mem vx s.ls_right_dom && value_mem vy s.ls_left_dom)
  | Two_graphs s -> tg_lt s (getv x s.tg_attr) (getv y s.tg_attr)

and eq_via : 'row. ('row -> string -> Value.t) -> string list -> 'row -> 'row -> bool =
  fun getv names x y ->
  List.for_all (fun a -> Value.equal (getv x a) (getv y a)) names

(* ------------------------------------------------------------------ *)
(* Top-level evaluation over tuples of a schema                        *)

let getv_of_schema schema t a = Tuple.get_by_name schema t a

let lt schema p x y = lt_via (getv_of_schema schema) p x y
let better schema p x y = lt schema p y x

let cmp schema p x y =
  let names = attrs p in
  if eq_via (getv_of_schema schema) names x y then Pref_order.Cmp.Equal
  else if better schema p x y then Pref_order.Cmp.Better
  else if better schema p y x then Pref_order.Cmp.Worse
  else Pref_order.Cmp.Unranked

(* ------------------------------------------------------------------ *)
(* Value-level evaluation (single-attribute preferences)               *)

let lt_value p vx vy =
  if not (is_single_attribute p) then
    invalid_arg "Pref.lt_value: preference spans several attributes";
  lt_via (fun v (_ : string) -> v) p vx vy

let better_value p vx vy = lt_value p vy vx

(* ------------------------------------------------------------------ *)
(* Structural equality of terms                                        *)

let equal_values_list a b =
  List.length a = List.length b && List.for_all2 Value.equal a b

let rec equal p q =
  match p, q with
  | Pos (a, s), Pos (b, s') | Neg (a, s), Neg (b, s') ->
    String.equal a b && equal_values_list s s'
  | Pos_neg (a, s1, s2), Pos_neg (b, s1', s2')
  | Pos_pos (a, s1, s2), Pos_pos (b, s1', s2') ->
    String.equal a b && equal_values_list s1 s1' && equal_values_list s2 s2'
  | Explicit (a, e), Explicit (b, e') ->
    String.equal a b
    && List.length e = List.length e'
    && List.for_all2
         (fun (x, y) (x', y') -> Value.equal x x' && Value.equal y y')
         e e'
  | Around (a, z), Around (b, z') -> String.equal a b && z = z'
  | Between (a, l, u), Between (b, l', u') -> String.equal a b && l = l' && u = u'
  | Lowest a, Lowest b | Highest a, Highest b -> String.equal a b
  | Score (a, f), Score (b, f') -> String.equal a b && String.equal f.sname f'.sname
  | Antichain l, Antichain l' -> Attr.equal l l'
  | Dual p, Dual q -> equal p q
  | Pareto (p1, p2), Pareto (q1, q2)
  | Prior (p1, p2), Prior (q1, q2)
  | Inter (p1, p2), Inter (q1, q2)
  | Dunion (p1, p2), Dunion (q1, q2) ->
    equal p1 q1 && equal p2 q2
  | Rank (f, p1, p2), Rank (g, q1, q2) ->
    String.equal f.cname g.cname && equal p1 q1 && equal p2 q2
  | Lsum s, Lsum s' ->
    String.equal s.ls_attr s'.ls_attr
    && equal s.ls_left s'.ls_left
    && equal s.ls_right s'.ls_right
    && equal_values_list s.ls_left_dom s'.ls_left_dom
    && equal_values_list s.ls_right_dom s'.ls_right_dom
  | Two_graphs s, Two_graphs s' ->
    let edges_equal e e' =
      List.length e = List.length e'
      && List.for_all2
           (fun (x, y) (x', y') -> Value.equal x x' && Value.equal y y')
           e e'
    in
    String.equal s.tg_attr s'.tg_attr
    && edges_equal s.tg_pos s'.tg_pos
    && edges_equal s.tg_neg s'.tg_neg
    && equal_values_list s.tg_pos_singles s'.tg_pos_singles
    && equal_values_list s.tg_neg_singles s'.tg_neg_singles
  | ( ( Pos _ | Neg _ | Pos_neg _ | Pos_pos _ | Explicit _ | Around _
      | Between _ | Lowest _ | Highest _ | Score _ | Antichain _ | Dual _
      | Pareto _ | Prior _ | Rank _ | Inter _ | Dunion _ | Lsum _
      | Two_graphs _ ),
      _ ) ->
    false

(* ------------------------------------------------------------------ *)
(* Compilation: resolve attribute indices once for hot loops           *)

(* A membership key that coincides with Value.equal (ints and floats compare
   numerically; every other type only with itself). *)
let value_key v =
  match v with
  | Value.Null -> "n"
  | Value.Bool b -> "b" ^ string_of_bool b
  | Value.Int i -> "f" ^ string_of_float (float_of_int i)
  | Value.Float f -> "f" ^ string_of_float f
  | Value.Str s -> "s" ^ s
  | Value.Date d -> "d" ^ string_of_int (Value.date_to_days d)

let member_fn set =
  let tbl = Hashtbl.create (max 4 (List.length set)) in
  List.iter (fun v -> Hashtbl.replace tbl (value_key v) ()) set;
  fun v -> Hashtbl.mem tbl (value_key v)

(* Unambiguous key for a pair of values: the separator-free length prefix
   prevents collisions when a string value itself contains the separator. *)
let pair_key x y =
  let kx = value_key x and ky = value_key y in
  string_of_int (String.length kx) ^ ":" ^ kx ^ ky

(* Compiled value-level order for single-attribute operands (Lsum). *)
let rec compile_value p : Value.t -> Value.t -> bool =
  match p with
  | Pos (_, set) ->
    let m = member_fn set in
    fun vx vy -> (not (m vx)) && m vy
  | Neg (_, set) ->
    let m = member_fn set in
    fun vx vy -> (not (m vy)) && m vx
  | Pos_neg (_, pset, nset) ->
    let mp = member_fn pset and mn = member_fn nset in
    fun vx vy ->
      (mn vx && not (mn vy)) || ((not (mn vx)) && (not (mp vx)) && mp vy)
  | Pos_pos (_, p1, p2) ->
    let m1 = member_fn p1 and m2 = member_fn p2 in
    fun vx vy ->
      (m2 vx && m1 vy) || ((not (m1 vx)) && (not (m2 vx)) && (m2 vy || m1 vy))
  | Explicit (_, closed) ->
    let edge = Hashtbl.create (max 4 (List.length closed)) in
    let range = Hashtbl.create 16 in
    List.iter
      (fun (w, b) ->
        Hashtbl.replace edge (pair_key w b) ();
        Hashtbl.replace range (value_key w) ();
        Hashtbl.replace range (value_key b) ())
      closed;
    fun vx vy ->
      Hashtbl.mem edge (pair_key vx vy)
      || ((not (Hashtbl.mem range (value_key vx)))
         && Hashtbl.mem range (value_key vy))
  | Around (_, z) -> fun vx vy -> distance_around vx z > distance_around vy z
  | Between (_, low, up) ->
    fun vx vy -> distance_between vx ~low ~up > distance_between vy ~low ~up
  | Lowest _ -> (
    fun vx vy ->
      match Value.as_float vx, Value.as_float vy with
      | Some a, Some b -> a > b
      | None, Some _ -> true
      | (Some _ | None), None -> false)
  | Highest _ -> (
    fun vx vy ->
      match Value.as_float vx, Value.as_float vy with
      | Some a, Some b -> a < b
      | None, Some _ -> true
      | (Some _ | None), None -> false)
  | Score (_, f) -> fun vx vy -> f.score vx < f.score vy
  | Antichain _ -> fun _ _ -> false
  | Dual p ->
    let c = compile_value p in
    fun vx vy -> c vy vx
  | Pareto (p1, p2) ->
    let c1 = compile_value p1 and c2 = compile_value p2 in
    fun vx vy ->
      let eq = Value.equal vx vy in
      (c1 vx vy && (c2 vx vy || eq)) || (c2 vx vy && (c1 vx vy || eq))
  | Prior (p1, p2) ->
    let c1 = compile_value p1 and c2 = compile_value p2 in
    fun vx vy -> c1 vx vy || (Value.equal vx vy && c2 vx vy)
  | Rank _ | Inter (_, _) | Dunion (_, _) ->
    fun vx vy -> lt_via (fun v (_ : string) -> v) p vx vy
  | Lsum s ->
    let cl = compile_value s.ls_left
    and cr = compile_value s.ls_right
    and ml = member_fn s.ls_left_dom
    and mr = member_fn s.ls_right_dom in
    fun vx vy -> cl vx vy || cr vx vy || (mr vx && ml vy)
  | Two_graphs s ->
    let edge_tbl edges =
      let tbl = Hashtbl.create (max 4 (List.length edges)) in
      List.iter (fun (w, b) -> Hashtbl.replace tbl (pair_key w b) ()) edges;
      fun vx vy -> Hashtbl.mem tbl (pair_key vx vy)
    in
    let range_fn edges singles =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (w, b) ->
          Hashtbl.replace tbl (value_key w) ();
          Hashtbl.replace tbl (value_key b) ())
        edges;
      List.iter (fun v -> Hashtbl.replace tbl (value_key v) ()) singles;
      fun v -> Hashtbl.mem tbl (value_key v)
    in
    let pos_edge = edge_tbl s.tg_pos
    and neg_edge = edge_tbl s.tg_neg
    and in_pos = range_fn s.tg_pos s.tg_pos_singles
    and in_neg = range_fn s.tg_neg s.tg_neg_singles in
    fun vx vy ->
      if in_neg vx then (not (in_neg vy)) || neg_edge vx vy
      else if in_pos vx then in_pos vy && pos_edge vx vy
      else in_pos vy

(* [compile schema p] returns the relation [lt] (x <_P y) with attribute
   indices, membership tables and score closures resolved once. *)
let compile schema p : Tuple.t -> Tuple.t -> bool =
  let idx a = Schema.index_of_exn schema a in
  let eq_fn names =
    let is = List.map idx names in
    fun x y -> List.for_all (fun i -> Value.equal (Tuple.get x i) (Tuple.get y i)) is
  in
  let score_fn p =
    match score_via (fun t a -> Tuple.get t (idx a)) p with
    | Some s -> s
    | None ->
      ill_formed ~code:"E004"
        ~message:"Pref.compile: rank applied to non-scorable operand" p
  in
  let rec go p =
    match p with
    | Pos _ | Neg _ | Pos_neg _ | Pos_pos _ | Explicit _ | Around _ | Between _
    | Lowest _ | Highest _ | Score _ | Two_graphs _ -> (
      match attrs p with
      | [ a ] ->
        let i = idx a and c = compile_value p in
        fun x y -> c (Tuple.get x i) (Tuple.get y i)
      | _ ->
        ill_formed ~code:"E007"
          ~message:"Pref.compile: base preference spans several attributes" p)
    | Antichain _ -> fun _ _ -> false
    | Dual p ->
      let c = go p in
      fun x y -> c y x
    | Pareto (p1, p2) ->
      let c1 = go p1
      and c2 = go p2
      and eq1 = eq_fn (attrs p1)
      and eq2 = eq_fn (attrs p2) in
      fun x y ->
        let lt1 = c1 x y and lt2 = c2 x y in
        (lt1 && (lt2 || eq2 x y)) || (lt2 && (lt1 || eq1 x y))
    | Prior (p1, p2) ->
      let c1 = go p1 and c2 = go p2 and eq1 = eq_fn (attrs p1) in
      fun x y -> c1 x y || (eq1 x y && c2 x y)
    | Rank (f, p1, p2) ->
      let s1 = score_fn p1 and s2 = score_fn p2 in
      fun x y -> f.combine (s1 x) (s2 x) < f.combine (s1 y) (s2 y)
    | Inter (p1, p2) ->
      let c1 = go p1 and c2 = go p2 in
      fun x y -> c1 x y && c2 x y
    | Dunion (p1, p2) ->
      let c1 = go p1 and c2 = go p2 in
      fun x y -> c1 x y || c2 x y
    | Lsum s ->
      let i = idx s.ls_attr and c = compile_value (Lsum s) in
      fun x y -> c (Tuple.get x i) (Tuple.get y i)
  in
  go p

let compile_better schema p =
  let c = compile schema p in
  fun x y -> c y x

(* ------------------------------------------------------------------ *)
(* Structural analysis: pure numeric skylines                          *)

(* Is the term a Pareto accumulation of pure numeric chains over disjoint
   attributes, all in the same direction?  Then the skyline algorithms
   (KLP75 divide & conquer, SFS presorting, float-vector kernels) apply. *)
let rec chain_dims = function
  | Highest a -> Some ([ a ], true)
  | Lowest a -> Some ([ a ], false)
  | Dual p -> (
    match chain_dims p with
    | Some (attrs, maximize) -> Some (attrs, not maximize)
    | None -> None)
  | Pareto (p, q) -> (
    match chain_dims p, chain_dims q with
    | Some (a1, m1), Some (a2, m2) when m1 = m2 && Attr.disjoint a1 a2 ->
      Some (a1 @ a2, m1)
    | _ -> None)
  | Pos _ | Neg _ | Pos_neg _ | Pos_pos _ | Explicit _ | Around _ | Between _
  | Score _ | Antichain _ | Prior _ | Rank _ | Inter _ | Dunion _ | Lsum _
  | Two_graphs _ ->
    None

(* ------------------------------------------------------------------ *)
(* Vectorized compilation: dominance over flat projection vectors      *)

type vec_compiled = {
  vc_attrs : string list;  (* projected attributes, in slot order *)
  vc_index : int array;  (* slot -> index in the source schema *)
  vc_better : Tuple.t -> Tuple.t -> bool;  (* over projection vectors *)
}

(* [compile_vec schema p] compiles the better-than test to run on flat
   projection vectors instead of full tuples: project each tuple once with
   {!vec_project}, then every dominance test reads a short [Value.t array]
   whose slots were resolved at compile time.  Implemented by compiling [p]
   against the projected sub-schema — a projection vector *is* a tuple of
   that schema — so the vector semantics are the compiled semantics by
   construction. *)
let compile_vec schema p =
  let vc_attrs = attrs p in
  let proj_schema = Schema.project schema vc_attrs in
  let vc_index =
    Array.of_list (List.map (Schema.index_of_exn schema) vc_attrs)
  in
  let c = compile proj_schema p in
  { vc_attrs; vc_index; vc_better = (fun x y -> c y x) }

let vec_project vc (t : Tuple.t) =
  Array.map (fun i -> Tuple.get t i) vc.vc_index
