open Pref_relation

exception Error of string * int

type registry = {
  scores : (string * (Value.t -> float)) list;
  combiners : (string * (float -> float -> float)) list;
}

let empty_registry = { scores = []; combiners = [] }

(* "w1*x + w2*y" combiners round-trip without registration. *)
let parse_weighted_sum name =
  (* accept the exact shape produced by Pref.weighted_sum *)
  match String.index_opt name '*' with
  | None -> None
  | Some star -> (
    let w1 = float_of_string_opt (String.sub name 0 star) in
    let rest = String.sub name (star + 1) (String.length name - star - 1) in
    match w1, String.split_on_char '+' rest with
    | Some w1, [ left; right ] when String.trim left = "x" -> (
      let right = String.trim right in
      match String.index_opt right '*' with
      | Some star2
        when String.sub right (star2 + 1) (String.length right - star2 - 1)
             = "y" -> (
        match float_of_string_opt (String.sub right 0 star2) with
        | Some w2 -> Some (Pref.weighted_sum w1 w2)
        | None -> None)
      | _ -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_value ppf v =
  match v with
  | Value.Str s -> Fmt.pf ppf "%S" s
  | Value.Date d -> Fmt.pf ppf "%04d-%02d-%02d" d.Value.year d.Value.month d.Value.day
  | Value.Null -> Fmt.string ppf "NULL"
  | Value.Bool b -> Fmt.string ppf (if b then "TRUE" else "FALSE")
  | Value.Int i -> Fmt.int ppf i
  | Value.Float f -> Fmt.pf ppf "%h" f

let pp_set ppf set = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_value) set

let rec pp ppf p =
  match p with
  | Pref.Pos (a, set) -> Fmt.pf ppf "POS(%s; %a)" a pp_set set
  | Pref.Neg (a, set) -> Fmt.pf ppf "NEG(%s; %a)" a pp_set set
  | Pref.Pos_neg (a, ps, ns) ->
    Fmt.pf ppf "POSNEG(%s; %a; %a)" a pp_set ps pp_set ns
  | Pref.Pos_pos (a, p1, p2) ->
    Fmt.pf ppf "POSPOS(%s; %a; %a)" a pp_set p1 pp_set p2
  | Pref.Explicit (a, edges) ->
    Fmt.pf ppf "EXPLICIT(%s; {%a})" a
      Fmt.(
        list ~sep:(any ", ") (fun ppf (w, b) ->
            pf ppf "(%a < %a)" pp_value w pp_value b))
      edges
  | Pref.Around (a, z) -> Fmt.pf ppf "AROUND(%s; %h)" a z
  | Pref.Between (a, low, up) -> Fmt.pf ppf "BETWEEN(%s; %h; %h)" a low up
  | Pref.Lowest a -> Fmt.pf ppf "LOWEST(%s)" a
  | Pref.Highest a -> Fmt.pf ppf "HIGHEST(%s)" a
  | Pref.Score (a, f) -> Fmt.pf ppf "SCORE(%s; %S)" a f.Pref.sname
  | Pref.Antichain l ->
    Fmt.pf ppf "ANTICHAIN(%a)" Fmt.(list ~sep:(any ", ") string) l
  | Pref.Dual q -> Fmt.pf ppf "DUAL(%a)" pp q
  | Pref.Pareto (q, r) -> Fmt.pf ppf "PARETO(%a; %a)" pp q pp r
  | Pref.Prior (q, r) -> Fmt.pf ppf "PRIOR(%a; %a)" pp q pp r
  | Pref.Rank (f, q, r) ->
    Fmt.pf ppf "RANK(%S; %a; %a)" f.Pref.cname pp q pp r
  | Pref.Inter (q, r) -> Fmt.pf ppf "INTER(%a; %a)" pp q pp r
  | Pref.Dunion (q, r) -> Fmt.pf ppf "DUNION(%a; %a)" pp q pp r
  | Pref.Lsum s ->
    Fmt.pf ppf "LSUM(%s; %a; %a; %a; %a)" s.Pref.ls_attr pp s.Pref.ls_left
      pp_set s.Pref.ls_left_dom pp s.Pref.ls_right pp_set s.Pref.ls_right_dom
  | Pref.Two_graphs s ->
    let pp_edges ppf edges =
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (w, b) ->
              pf ppf "(%a < %a)" pp_value w pp_value b))
        edges
    in
    Fmt.pf ppf "TWOGRAPHS(%s; %a; %a; %a; %a)" s.Pref.tg_attr pp_edges
      s.Pref.tg_pos pp_set s.Pref.tg_pos_singles pp_edges s.Pref.tg_neg pp_set
      s.Pref.tg_neg_singles

let to_string p = Fmt.str "%a" pp p

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)

type token =
  | Word of string
  | Str of string
  | Num of float
  | Int of int
  | Sym of char
  | Eof

type lstate = { mutable toks : (token * int) list }

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let is_num_start c = (c >= '0' && c <= '9') || c = '-' || c = '+' in
  let rec scan i =
    if i >= n then out := (Eof, i) :: !out
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '(' | ')' | '{' | '}' | ';' | ',' | '<' ->
        out := (Sym src.[i], i) :: !out;
        scan (i + 1)
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Error ("unterminated string", i))
          else if src.[j] = '\\' && j + 1 < n then begin
            (* OCaml-style escapes, matching the %S printer *)
            let is_digit c = c >= '0' && c <= '9' in
            (* a decimal escape needs all three digits (the %S printer
               always emits three); anything else is a literal character *)
            let decimal =
              is_digit src.[j + 1]
              && j + 3 < n
              && is_digit src.[j + 2]
              && is_digit src.[j + 3]
            in
            (match src.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | '0' .. '9' when decimal ->
              let code = int_of_string (String.sub src (j + 1) 3) in
              if code > 255 then raise (Error ("invalid character escape", j));
              Buffer.add_char buf (Char.chr code)
            | c -> Buffer.add_char buf c);
            let width = if decimal then 4 else 2 in
            str (j + width)
          end
          else if src.[j] = '"' then j + 1
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let after = str (i + 1) in
        out := (Str (Buffer.contents buf), i) :: !out;
        scan after
      | c when is_num_start c || (c = '0') ->
        (* numbers, including hex floats from %h and dates 2001-11-23 *)
        let j = ref i in
        if src.[!j] = '-' || src.[!j] = '+' then incr j;
        let word_end = ref !j in
        while
          !word_end < n
          &&
          match src.[!word_end] with
          | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' | 'x' | 'X' | '.' | '-' | '+'
          | 'p' | 'P' ->
            true
          | _ -> false
        do
          incr word_end
        done;
        let text = String.sub src i (!word_end - i) in
        (* date? *)
        (match Value.of_string_as Value.TDate text with
        | Some (Value.Date _) ->
          out := (Word text, i) :: !out (* re-parse as date in [value] *)
        | _ -> (
          match int_of_string_opt text with
          | Some k -> out := (Int k, i) :: !out
          | None -> (
            match float_of_string_opt text with
            | Some f -> out := (Num f, i) :: !out
            | None -> raise (Error (Printf.sprintf "bad number %S" text, i)))));
        scan !word_end
      | c when is_word c ->
        let j = ref i in
        while !j < n && is_word src.[!j] do
          incr j
        done;
        out := (Word (String.sub src i (!j - i)), i) :: !out;
        scan !j
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  scan 0;
  { toks = List.rev !out }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Eof
let pos st = match st.toks with (_, p) :: _ -> p | [] -> 0
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st msg = raise (Error (msg, pos st))

let eat_sym st c =
  match peek st with
  | Sym x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let try_sym st c =
  match peek st with
  | Sym x when x = c ->
    advance st;
    true
  | _ -> false

let word st =
  match peek st with
  | Word w ->
    advance st;
    w
  | _ -> fail st "expected a name"

let string_lit st =
  match peek st with
  | Str s ->
    advance st;
    s
  | _ -> fail st "expected a quoted string"

let number st =
  match peek st with
  | Int i ->
    advance st;
    float_of_int i
  | Num f ->
    advance st;
    f
  | _ -> fail st "expected a number"

let value st =
  match peek st with
  | Int i ->
    advance st;
    Value.Int i
  | Num f ->
    advance st;
    Value.Float f
  | Str s ->
    advance st;
    Value.Str s
  | Word "NULL" ->
    advance st;
    Value.Null
  | Word "TRUE" ->
    advance st;
    Value.Bool true
  | Word "FALSE" ->
    advance st;
    Value.Bool false
  | Word w -> (
    match Value.of_string_as Value.TDate w with
    | Some d ->
      advance st;
      d
    | None -> fail st (Printf.sprintf "expected a value, got %S" w))
  | _ -> fail st "expected a value"

let value_set st =
  eat_sym st '{';
  if try_sym st '}' then []
  else
    let rec go acc =
      let v = value st in
      if try_sym st ',' then go (v :: acc)
      else begin
        eat_sym st '}';
        List.rev (v :: acc)
      end
    in
    go []

let edge_set st =
  eat_sym st '{';
  if try_sym st '}' then []
  else
    let rec go acc =
      eat_sym st '(';
      let w = value st in
      eat_sym st '<';
      let b = value st in
      eat_sym st ')';
      if try_sym st ',' then go ((w, b) :: acc)
      else begin
        eat_sym st '}';
        List.rev ((w, b) :: acc)
      end
    in
    go []

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let rec term registry st =
  let kw = word st in
  eat_sym st '(';
  let p =
    match String.uppercase_ascii kw with
    | "POS" ->
      let a = word st in
      eat_sym st ';';
      Pref.pos a (value_set st)
    | "NEG" ->
      let a = word st in
      eat_sym st ';';
      Pref.neg a (value_set st)
    | "POSNEG" ->
      let a = word st in
      eat_sym st ';';
      let ps = value_set st in
      eat_sym st ';';
      Pref.pos_neg a ~pos:ps ~neg:(value_set st)
    | "POSPOS" ->
      let a = word st in
      eat_sym st ';';
      let p1 = value_set st in
      eat_sym st ';';
      Pref.pos_pos a ~pos1:p1 ~pos2:(value_set st)
    | "EXPLICIT" ->
      let a = word st in
      eat_sym st ';';
      Pref.explicit a (edge_set st)
    | "AROUND" ->
      let a = word st in
      eat_sym st ';';
      Pref.around a (number st)
    | "BETWEEN" ->
      let a = word st in
      eat_sym st ';';
      let low = number st in
      eat_sym st ';';
      Pref.between a ~low ~up:(number st)
    | "LOWEST" -> Pref.lowest (word st)
    | "HIGHEST" -> Pref.highest (word st)
    | "SCORE" -> (
      let a = word st in
      eat_sym st ';';
      let name = string_lit st in
      match List.assoc_opt name registry.scores with
      | Some f -> Pref.score a ~name f
      | None -> fail st (Printf.sprintf "unknown scoring function %S" name))
    | "ANTICHAIN" ->
      let rec names acc =
        let a = word st in
        if try_sym st ',' then names (a :: acc) else List.rev (a :: acc)
      in
      Pref.antichain (names [])
    | "DUAL" -> Pref.dual (term registry st)
    | "PARETO" ->
      let q = term registry st in
      eat_sym st ';';
      Pref.pareto q (term registry st)
    | "PRIOR" ->
      let q = term registry st in
      eat_sym st ';';
      Pref.prior q (term registry st)
    | "RANK" -> (
      let name = string_lit st in
      eat_sym st ';';
      let q = term registry st in
      eat_sym st ';';
      let r = term registry st in
      match List.assoc_opt name registry.combiners with
      | Some f -> Pref.rank { Pref.cname = name; combine = f } q r
      | None -> (
        match parse_weighted_sum name with
        | Some f -> Pref.rank f q r
        | None -> fail st (Printf.sprintf "unknown combining function %S" name)))
    | "INTER" ->
      let q = term registry st in
      eat_sym st ';';
      Pref.inter q (term registry st)
    | "DUNION" ->
      let q = term registry st in
      eat_sym st ';';
      Pref.dunion q (term registry st)
    | "TWOGRAPHS" ->
      let a = word st in
      eat_sym st ';';
      let pos_edges = edge_set st in
      eat_sym st ';';
      let pos_singles = value_set st in
      eat_sym st ';';
      let neg_edges = edge_set st in
      eat_sym st ';';
      let neg_singles = value_set st in
      Pref.two_graphs ~attr:a ~pos_edges ~pos_singles ~neg_edges ~neg_singles
        ()
    | "LSUM" ->
      let a = word st in
      eat_sym st ';';
      let left = term registry st in
      eat_sym st ';';
      let left_dom = value_set st in
      eat_sym st ';';
      let right = term registry st in
      eat_sym st ';';
      let right_dom = value_set st in
      Pref.lsum ~attr:a (left, left_dom) (right, right_dom)
    | other -> fail st (Printf.sprintf "unknown constructor %S" other)
  in
  eat_sym st ')';
  p

let of_string ?(registry = empty_registry) src =
  let st = tokenize src in
  let p = term registry st in
  (match peek st with
  | Eof -> ()
  | _ -> fail st "unexpected trailing input");
  p
