(** Canonical forms and cache keys for preference terms.

    The result cache ({!Pref_bmo.Cache}) must recognise that two
    syntactically different terms denote the same preference whenever the
    paper's algebra says so cheaply — without running the full rewriting
    engine. This module normalises exactly the laws that are pure
    reorderings (Proposition 2 and the set-character of the base
    constructors) and leaves everything else alone:

    - Pareto (⊗), intersection (♦) and disjoint-union (+) accumulations are
      flattened and their operands sorted (commutative + associative);
    - prioritisation (&) is flattened to a left-nested spine but keeps its
      operand order (associative only, Proposition 2);
    - the value sets of POS/NEG/POS-POS/… and the closed edge lists of
      EXPLICIT / the two-graph constructor are sorted (they are sets);
    - RANK and LSUM keep their operand order (the combine function and the
      domain split are positional).

    The canonical term is semantically {e identical} to the input (the same
    strict partial order, not merely ≡), so a cache keyed on it may return
    the stored BMO set verbatim. *)

val canonical : Pref.t -> Pref.t
(** The normal form described above. Idempotent. *)

val key : Pref.t -> string
(** [Serialize.to_string (canonical p)] — an injective printable key for
    the canonical term. Function components (SCORE, rank(F)) are keyed by
    name, matching {!Pref.equal}. *)

val equal : Pref.t -> Pref.t -> bool
(** Key equality: [Pref.equal] modulo the reorderings above. *)

val prior_spine : Pref.t -> Pref.t list
(** The flattened operands of a prioritisation chain, in order:
    [(P1 & P2) & P3] ↦ [[P1; P2; P3]]; a non-& term is its own singleton
    spine. Operands are canonicalised. *)

val pareto_operands : Pref.t -> Pref.t list
(** The flattened operands of a Pareto accumulation in canonical order;
    a non-⊗ term is its own singleton. Operands are canonicalised. *)

val dunion_operands : Pref.t -> Pref.t list
(** The flattened operands of a disjoint-union accumulation in canonical
    order; a non-+ term is its own singleton. Operands are canonicalised. *)
