open Pref

(* The syntactic dual: push one Dual into the constructor when a dual-free
   form exists (HIGHEST ≡ LOWEST∂, POS∂ ≡ NEG, (S↔)∂ ≡ S↔, (P∂)∂ ≡ P).
   [equal r (syntactic_dual q)] then recognises "r is the dual of q" even
   after r itself was normalised — e.g. LOWEST(a) ⊗ HIGHEST(a). *)
let syntactic_dual = function
  | Dual q -> q
  | Lowest a -> Highest a
  | Highest a -> Lowest a
  | Pos (a, s) -> Neg (a, s)
  | Neg (a, s) -> Pos (a, s)
  | Antichain l -> Antichain l
  | ( Pos_neg _ | Pos_pos _ | Explicit _ | Around _ | Between _ | Score _
    | Pareto _ | Prior _ | Rank _ | Inter _ | Dunion _ | Lsum _
    | Two_graphs _ ) as q ->
    Dual q

let is_dual_pair q r = equal r (syntactic_dual q) || equal q (syntactic_dual r)

(* One top-level rewrite step; [None] when no rule applies at the root.
   Every rule is an instance of a law from §4, so rewriting preserves
   preference equivalence (Definition 13). *)
let step p =
  match p with
  (* (P∂)∂ ≡ P *)
  | Dual (Dual q) -> Some q
  (* HIGHEST ≡ LOWEST∂ and LOWEST ≡ HIGHEST∂ *)
  | Dual (Lowest a) -> Some (Highest a)
  | Dual (Highest a) -> Some (Lowest a)
  (* POS∂ ≡ NEG, NEG∂ ≡ POS (equal value sets) *)
  | Dual (Pos (a, s)) -> Some (Neg (a, s))
  | Dual (Neg (a, s)) -> Some (Pos (a, s))
  (* (S↔)∂ ≡ S↔ *)
  | Dual (Antichain l) -> Some (Antichain l)
  (* (P1 ⊕ P2)∂ ≡ P2∂ ⊕ P1∂ *)
  | Dual (Lsum s) ->
    Some
      (Lsum
         {
           s with
           ls_left = Dual s.ls_right;
           ls_left_dom = s.ls_right_dom;
           ls_right = Dual s.ls_left;
           ls_right_dom = s.ls_left_dom;
         })
  (* P ♦ P ≡ P *)
  | Inter (q, r) when equal q r -> Some q
  (* P ♦ P∂ ≡ A↔ *)
  | Inter (q, r) when is_dual_pair q r -> Some (Antichain (attrs q))
  (* P ♦ A↔ ≡ A↔ when attrs P ⊆ A (law g generalised) *)
  | Inter (q, Antichain l) when Attr.subset (attrs q) l -> Some (Antichain l)
  | Inter (Antichain l, q) when Attr.subset (attrs q) l -> Some (Antichain l)
  (* P & P ≡ P,  P & P∂ ≡ P *)
  | Prior (q, r) when equal q r -> Some q
  | Prior (q, r) when equal r (syntactic_dual q) -> Some q
  (* P & A↔ ≡ P when A ⊆ attrs P (law j) *)
  | Prior (q, Antichain l) when Attr.subset l (attrs q) -> Some q
  (* A↔ & P ≡ A↔ when attrs P ⊆ A (law k) *)
  | Prior (Antichain l, q) when Attr.subset (attrs q) l -> Some (Antichain l)
  (* Proposition 4(a) generalised: P1 & P2 ≡ P1 when attrs P2 ⊆ attrs P1 *)
  | Prior (q, r) when Attr.subset (attrs r) (attrs q) -> Some q
  (* P ⊗ P ≡ P *)
  | Pareto (q, r) when equal q r -> Some q
  (* P ⊗ P∂ ≡ A↔ (law n) *)
  | Pareto (q, r) when is_dual_pair q r -> Some (Antichain (attrs q))
  (* A↔ ⊗ P ≡ A↔ & P (law m), both orientations via commutativity *)
  | Pareto (Antichain l, q) -> Some (Prior (Antichain l, q))
  | Pareto (q, Antichain l) -> Some (Prior (Antichain l, q))
  (* Proposition 6: P1 ⊗ P2 ≡ P1 ♦ P2 for identical attribute sets *)
  | Pareto (q, r) when Attr.equal (attrs q) (attrs r) -> Some (Inter (q, r))
  (* P + A↔ ≡ P (x <+ y iff x <P y ∨ false); the subset condition keeps the
     attribute set of the term unchanged, as Definition 13 requires *)
  | Dunion (q, Antichain l) when Attr.subset l (attrs q) -> Some q
  | Dunion (Antichain l, q) when Attr.subset l (attrs q) -> Some q
  | Pos _ | Neg _ | Pos_neg _ | Pos_pos _ | Explicit _ | Around _ | Between _
  | Lowest _ | Highest _ | Score _ | Antichain _ | Dual _ | Pareto _ | Prior _
  | Rank _ | Inter _ | Dunion _ | Lsum _ | Two_graphs _ ->
    None

(* every applied rule bumps the engine-wide counter (visible in [\stats])
   and the per-invocation count behind [simplify_count] *)
let steps_metric = Pref_obs.Metrics.counter "core.rewrite_steps"

let rec rewrite_root_counting count p =
  match step p with
  | None -> p
  | Some q ->
    incr count;
    Pref_obs.Metrics.incr steps_metric;
    rewrite_root_counting count q

let simplify_count p =
  let count = ref 0 in
  let rec go p =
    let p' =
      match p with
      | Pos _ | Neg _ | Pos_neg _ | Pos_pos _ | Explicit _ | Around _
      | Between _ | Lowest _ | Highest _ | Score _ | Antichain _
      | Two_graphs _ ->
        p
      | Dual q -> Dual (go q)
      | Pareto (q, r) -> Pareto (go q, go r)
      | Prior (q, r) -> Prior (go q, go r)
      | Rank (f, q, r) -> Rank (f, go q, go r)
      | Inter (q, r) -> Inter (go q, go r)
      | Dunion (q, r) -> Dunion (go q, go r)
      | Lsum s -> Lsum { s with ls_left = go s.ls_left; ls_right = go s.ls_right }
    in
    let p'' = rewrite_root_counting count p' in
    if equal p'' p' then p'' else go p''
  in
  let simplified = Pref_obs.Span.with_span "core.rewrite" (fun () -> go p) in
  (simplified, !count)

let simplify p = fst (simplify_count p)

let rec size = function
  | Pos _ | Neg _ | Pos_neg _ | Pos_pos _ | Explicit _ | Around _ | Between _
  | Lowest _ | Highest _ | Score _ | Antichain _ | Two_graphs _ ->
    1
  | Dual q -> 1 + size q
  | Pareto (q, r) | Prior (q, r) | Rank (_, q, r) | Inter (q, r) | Dunion (q, r)
    ->
    1 + size q + size r
  | Lsum s -> 1 + size s.ls_left + size s.ls_right
