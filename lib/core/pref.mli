(** Preference terms and their strict-partial-order semantics.

    This is the paper's inductive preference model (§3): base preference
    constructors (Definition 6 and 7) and complex preference constructors
    (Definitions 8–12), each denoting a strict partial order [<_P] over the
    tuples of a schema, projected onto the term's attribute set.

    The representation type is exposed for pattern matching (the algebra in
    {!Laws} and {!Rewrite} needs it), but terms should be built through the
    smart constructors below, which validate the side conditions the paper
    imposes (disjoint value sets, acyclic EXPLICIT graphs, scorable rank
    operands, equal attribute sets for ♦ and +, single attributes and
    disjoint domains for ⊕). *)

open Pref_relation

type score_fn = {
  sname : string;  (** printable name, also used for term equality *)
  score : Value.t -> float;
}

type combine_fn = {
  cname : string;
  combine : float -> float -> float;
}

type t =
  | Pos of string * Value.t list
      (** POS(A, POS-set): favourites, everything else level 2. *)
  | Neg of string * Value.t list
      (** NEG(A, NEG-set): dislikes at level 2, everything else maximal. *)
  | Pos_neg of string * Value.t list * Value.t list
      (** POS/NEG(A, POS-set; NEG-set): three levels. *)
  | Pos_pos of string * Value.t list * Value.t list
      (** POS/POS(A, POS1-set; POS2-set): favourites, alternatives, rest. *)
  | Explicit of string * (Value.t * Value.t) list
      (** EXPLICIT(A, graph): hand-crafted finite order. The stored edge list
          is the {e transitive closure} in [(worse, better)] orientation. *)
  | Around of string * float
  | Between of string * float * float
  | Lowest of string
  | Highest of string
  | Score of string * score_fn
  | Antichain of Attr.t  (** S↔: no value better than any other. *)
  | Dual of t  (** P∂: reverses the order (Definition 3c). *)
  | Pareto of t * t  (** P1 ⊗ P2 (Definition 8). *)
  | Prior of t * t  (** P1 & P2 (Definition 9). *)
  | Rank of combine_fn * t * t  (** rank(F)(P1, P2) (Definition 10). *)
  | Inter of t * t  (** P1 ♦ P2 (Definition 11a). *)
  | Dunion of t * t  (** P1 + P2 (Definition 11b). *)
  | Lsum of lsum_spec  (** P1 ⊕ P2 (Definition 12). *)
  | Two_graphs of two_graphs_spec
      (** The super-constructor of POS/NEG and EXPLICIT suggested in §3.4:
          a POS graph on top, all other values in the middle, a NEG graph
          at the bottom, assembled by linear sums. *)

and lsum_spec = {
  ls_attr : string;  (** the new attribute name A with dom(A1) ∪ dom(A2) *)
  ls_left : t;
  ls_left_dom : Value.t list;
  ls_right : t;
  ls_right_dom : Value.t list;
}

and two_graphs_spec = {
  tg_attr : string;
  tg_pos : (Value.t * Value.t) list;
      (** transitively closed POS edges in [(worse, better)] orientation *)
  tg_pos_singles : Value.t list;  (** isolated POS values (no edges) *)
  tg_neg : (Value.t * Value.t) list;
  tg_neg_singles : Value.t list;
}

exception Ill_formed of { code : string; message : string; term : t }
(** A side-condition violation detected at evaluation/compile time, carrying
    the stable diagnostic code of the static analyzer ([Pref_analysis]) and
    the offending subterm — the executor and the analyzer report identical
    findings. Raised today by {!compile} for rank over a non-scorable
    operand ([E004]) and for a base constructor spanning several attributes
    ([E007]); the smart constructors keep their documented
    [Invalid_argument] behaviour. *)

(** {1 Attribute sets} *)

val attrs : t -> Attr.t
(** The attribute-name set A of the preference (normalized). *)

val is_single_attribute : t -> bool

(** {1 Smart constructors} *)

val pos : string -> Value.t list -> t
val neg : string -> Value.t list -> t

val pos_neg : string -> pos:Value.t list -> neg:Value.t list -> t
(** Raises [Invalid_argument] if the two sets intersect. *)

val pos_pos : string -> pos1:Value.t list -> pos2:Value.t list -> t

val explicit : string -> (Value.t * Value.t) list -> t
(** [explicit a edges] with edges in the paper's [(worse, better)] reading:
    [(v1, v2)] means [v1 <_E v2]. Computes the transitive closure; raises
    [Invalid_argument] on a cyclic graph. *)

val two_graphs :
  attr:string ->
  ?pos_edges:(Value.t * Value.t) list ->
  ?pos_singles:Value.t list ->
  ?neg_edges:(Value.t * Value.t) list ->
  ?neg_singles:Value.t list ->
  unit ->
  t
(** The §3.4 super-constructor: POS-graph values (ordered by their closed
    edge relation, isolated values unranked within the block) are better
    than all other domain values, which are better than all NEG-graph
    values. Specialises to POS/NEG (singles only) and EXPLICIT (POS edges
    only). Raises [Invalid_argument] on cyclic graphs or overlapping
    POS/NEG ranges. *)

val around : string -> float -> t
val between : string -> low:float -> up:float -> t
val lowest : string -> t
val highest : string -> t
val score : string -> name:string -> (Value.t -> float) -> t
val antichain : string list -> t
val dual : t -> t
val pareto : t -> t -> t

val pareto_all : t list -> t
(** Left-nested Pareto accumulation of a non-empty list (⊗ is associative and
    commutative, Proposition 2). *)

val prior : t -> t -> t
val prior_all : t list -> t

val rank : combine_fn -> t -> t -> t
(** Raises [Invalid_argument] unless both operands are SCORE preferences or
    sub-constructors of SCORE (constructor substitutability, §3.4). *)

val weighted_sum : float -> float -> combine_fn
(** [weighted_sum w1 w2] combines scores as [w1*x + w2*y]. *)

val inter : t -> t -> t
(** Raises [Invalid_argument] unless both operands share one attribute set. *)

val dunion : t -> t -> t
(** Disjoint union. The disjoint-range requirement of Definition 11b is a
    semantic condition checked by {!Laws.disjoint_on}; operands over
    different attribute sets are order-embedded into the union implicitly, as
    in the appendix proof of Proposition 4(b). *)

val lsum : attr:string -> t * Value.t list -> t * Value.t list -> t
(** [lsum ~attr (p1, dom1) (p2, dom2)] is P1 ⊕ P2 over the new attribute
    [attr]. Operands must be single-attribute preferences with disjoint
    declared domains. *)

(** {1 Semantics} *)

val lt : Schema.t -> t -> Tuple.t -> Tuple.t -> bool
(** [lt schema p x y] is [x <_P y]: "I like [y] better than [x]". *)

val better : Schema.t -> t -> Tuple.t -> Tuple.t -> bool
(** [better schema p x y] iff [y <_P x] — the dominance test used by BMO
    evaluation. *)

val cmp : Schema.t -> t -> Tuple.t -> Tuple.t -> Pref_order.Cmp.t
(** Classification from the first tuple's perspective; [Equal] means equal
    projections onto [attrs p]. *)

val lt_value : t -> Value.t -> Value.t -> bool
(** Value-level order for single-attribute preferences; raises
    [Invalid_argument] on multi-attribute terms. *)

val better_value : t -> Value.t -> Value.t -> bool

val score_via : ('row -> string -> Value.t) -> t -> ('row -> float) option
(** Scoring view, when the term is a sub-constructor of SCORE: SCORE itself,
    AROUND ([-distance]), BETWEEN ([-distance]), LOWEST ([-x]), HIGHEST
    ([x]), their duals, and rank(F) compositions. *)

val is_scorable : t -> bool

val distance_around : Value.t -> float -> float
(** [abs(v - z)], infinite for non-numeric values (Definition 7a). *)

val distance_between : Value.t -> low:float -> up:float -> float
(** Distance to the interval, 0 inside it (Definition 7b). *)

(** {1 Term equality and compilation} *)

val equal : t -> t -> bool
(** Structural (syntactic) equality of terms; function components compare by
    name. Semantic equivalence (Definition 13) lives in {!Equiv}. *)

val compile : Schema.t -> t -> Tuple.t -> Tuple.t -> bool
(** Compiled [lt]: attribute indices, membership tables and score closures
    are resolved once. Raises [Invalid_argument] if an attribute is missing
    from the schema. *)

val compile_better : Schema.t -> t -> Tuple.t -> Tuple.t -> bool
(** Compiled dominance test ([better]). *)

val chain_dims : t -> (string list * bool) option
(** [Some (attrs, maximize)] when the term is a Pareto accumulation of
    same-direction numeric chains over disjoint attributes — the pure
    skyline shape the float-vector kernels and the [KLP75] divide & conquer
    apply to. *)

type vec_compiled = {
  vc_attrs : string list;  (** projected attributes, in slot order *)
  vc_index : int array;  (** slot -> index in the source schema *)
  vc_better : Tuple.t -> Tuple.t -> bool;
      (** dominance over projection vectors, not full tuples *)
}

val compile_vec : Schema.t -> t -> vec_compiled
(** Compile the dominance test to run on flat projection vectors: project
    each tuple once with {!vec_project}, then every test reads a short
    [Value.t array] with slots resolved at compile time — no per-test
    name lookups and no wider-than-needed tuple traffic. The hot-loop
    contract of the array-based BMO kernels. *)

val vec_project : vec_compiled -> Tuple.t -> Tuple.t
(** The projection vector of a tuple (a tuple of the projected
    sub-schema). *)

val value_key : Value.t -> string
(** Injective key compatible with {!Value.equal}; exposed for hash-based set
    construction elsewhere. *)
