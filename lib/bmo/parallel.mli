(** Parallel BMO evaluation over a pool of domains.

    Two strategies, both exact for every strict partial order (the merge
    correctness argument is spelled out in DESIGN.md):

    - {!maxima_dnc} — divide-and-conquer: P contiguous chunks, array-window
      BNL per chunk in its own domain, pairwise merge of the chunk windows
      with cross-domination filtering.
    - {!maxima_sfs} — one global topological presort, then the append-only
      filter pass split across domains: parallel local windows, followed by
      a parallel cross-chunk filter of each chunk's survivors against all
      earlier chunks' survivors.

    The pool is cached and reused across queries; its size follows the
    [domains] argument (default {!default_domains}, settable through the
    shell's [\set domains N]). *)

open Pref_relation

val default_domains : unit -> int
(** Engine-wide default degree of parallelism; initially
    [Domain.recommended_domain_count ()]. *)

val set_default_domains : int -> unit
(** Raises [Invalid_argument] when the argument is [< 1]. [1] means
    sequential execution in the calling domain (no spawn at all). *)

(** {1 Statistics} *)

type chunk_stat = {
  c_rows : int;  (** input rows of the chunk *)
  c_out : int;  (** surviving rows after the final per-chunk phase *)
  c_tests : int;  (** dominance tests performed inside the chunk *)
  c_domain : int;  (** pool domain ({!Pool.self}) that ran the chunk *)
}

type stats = {
  s_domains : int;
  s_chunks : chunk_stat array;
  s_local_ms : float;  (** wall time of the parallel local phase *)
  s_merge_ms : float;  (** wall time of the merge / cross-filter phase *)
  s_merge_tests : int;  (** dominance tests spent merging *)
}

val total_tests : stats -> int
val stats_attrs : stats -> (string * string) list

(** {1 Kernels} *)

val maxima_dnc :
  domains:int -> Dominance.vec -> Tuple.t array -> Tuple.t array * stats
(** BMO set of the rows; result order is deterministic (chunk order, local
    window order within each chunk). *)

val maxima_sfs :
  domains:int ->
  key:(Tuple.t -> float) ->
  Dominance.vec ->
  Tuple.t array ->
  Tuple.t array * stats
(** Requires a topological [key] (see {!Sfs}); output in descending key
    order, exactly like sequential SFS. *)

(** {1 Relation-level wrappers} *)

val query :
  ?domains:int -> Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t
(** σ[P](R) via parallel divide-and-conquer. Reports chunk sizes,
    per-domain test counts and merge time into spans and metrics when
    telemetry is on. *)

val query_sfs :
  ?domains:int ->
  Schema.t ->
  attrs:string list ->
  maximize:bool ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t
(** σ[P](R) via parallel SFS with the {!Sfs.sum_key} topological key over
    [attrs] — only valid for preferences where that key is topological
    (Pareto compositions of uniform-direction numeric chains). *)
