(* The single home of the pre-Engine.config optional-argument surface.
   Every deprecated wrapper (Query.sigma, Exec.run, ...) builds its
   config here, so the mapping from old defaults to the unified record
   exists exactly once. *)

let legacy_cfg ?(algorithm = Engine.Alg_bnl) ?(cache = true) ?domains
    ?(profile = false) ?(check = false) () =
  { Engine.default with algorithm; cache; domains; profile; check }
