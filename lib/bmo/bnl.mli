(** Block-nested-loops BMO evaluation ([BKS01], in-memory variant).

    Maintains a window of mutually undominated tuples; average-case far
    fewer comparisons than {!Naive} because dominated tuples are discarded
    on the fly and never compared again. Correct for every strict partial
    order: transitivity guarantees a tuple dominated by an evicted window
    tuple is also dominated by the evicting one. Result order: first
    appearance order of the surviving tuples.

    The window lives in a mutable array and the scan is iterative, so the
    pass allocates nothing per candidate and handles anti-chain windows of
    any size (the former recursive scan kept a stack frame per window
    tuple). *)

open Pref_relation

val maxima : Dominance.t -> Tuple.t list -> Tuple.t list

val maxima_traced : Dominance.t -> Tuple.t list -> Tuple.t list * int
(** [maxima] plus the peak window size reached during the pass — the
    memory high-water mark query profiles report. Same result as
    {!maxima}. *)

val maxima_vec :
  ?count:int ref -> Dominance.vec -> Tuple.t array -> Tuple.t array
(** The vectorized kernel: projects each row once, then runs the window
    pass over flat vectors ([float array] for pure numeric skylines,
    [Value.t array] otherwise). [count] accumulates the number of dominance
    tests performed — a caller-owned ref, so per-chunk counting stays
    race-free in the parallel layer. Same result set and order as
    {!maxima}. *)

val maxima_proj :
  dominates:('p -> 'p -> bool) ->
  ?count:int ref ->
  ('p * Tuple.t) array ->
  ('p * Tuple.t) array
(** The window pass over caller-projected points, keeping the projections
    in the result — the building block {!Parallel} reuses so chunk windows
    can be merged without re-projecting. *)

val query : Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t
(** σ[P](R) via BNL. When telemetry ({!Pref_obs.Control}) is on, reports
    dominance-test counts, scanned/pruned tuples and the window peak; when
    off, runs the exact uninstrumented pass. *)
