(** Block-nested-loops BMO evaluation ([BKS01], in-memory variant).

    Maintains a window of mutually undominated tuples; average-case far
    fewer comparisons than {!Naive} because dominated tuples are discarded
    on the fly and never compared again. Correct for every strict partial
    order: transitivity guarantees a tuple dominated by an evicted window
    tuple is also dominated by the evicting one. Result order: first
    appearance order of the surviving tuples. *)

open Pref_relation

val maxima : Dominance.t -> Tuple.t list -> Tuple.t list

val maxima_traced : Dominance.t -> Tuple.t list -> Tuple.t list * int
(** [maxima] plus the peak window size reached during the pass — the
    memory high-water mark query profiles report. Same result as
    {!maxima}. *)

val query : Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t
(** σ[P](R) via BNL. When telemetry ({!Pref_obs.Control}) is on, reports
    dominance-test counts, scanned/pruned tuples and the window peak; when
    off, runs the exact uninstrumented pass. *)
