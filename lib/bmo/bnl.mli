(** Block-nested-loops BMO evaluation ([BKS01], in-memory variant).

    Maintains a window of mutually undominated tuples; average-case far
    fewer comparisons than {!Naive} because dominated tuples are discarded
    on the fly and never compared again. Correct for every strict partial
    order: transitivity guarantees a tuple dominated by an evicted window
    tuple is also dominated by the evicting one. Result order: first
    appearance order of the surviving tuples.

    The window lives in a mutable array and the scan is iterative, so the
    pass allocates nothing per candidate and handles anti-chain windows of
    any size (the former recursive scan kept a stack frame per window
    tuple). *)

open Pref_relation

val maxima : Dominance.t -> Tuple.t list -> Tuple.t list

val maxima_deadline :
  deadline:Engine.deadline -> Dominance.t -> Tuple.t list -> Tuple.t list * bool
(** The window pass with a time budget: the monotonic clock is polled
    every {!deadline_stride} candidates, and when the deadline expires the
    pass stops and returns the current window with [true] — the exact BMO
    set of the scanned prefix (window tuples are mutually undominated and
    every discarded tuple was dominated by a window tuple, so the prefix
    semantics is sound; unscanned rows may have dominated them, which is
    what the [partial] flag reports). With {!Engine.no_deadline} or a
    budget that never expires the result is exactly {!maxima} and [false].
    An already-expired deadline returns [([], true)] without scanning —
    degradation is deterministic, never an exception. *)

val deadline_stride : int
(** Candidates scanned between clock polls (clock reads are cheap but not
    free; the stride bounds deadline overshoot to [stride] dominance
    scans). *)

val maxima_traced : Dominance.t -> Tuple.t list -> Tuple.t list * int
(** [maxima] plus the peak window size reached during the pass — the
    memory high-water mark query profiles report. Same result as
    {!maxima}. *)

val maxima_vec :
  ?count:int ref -> Dominance.vec -> Tuple.t array -> Tuple.t array
(** The vectorized kernel: projects each row once, then runs the window
    pass over flat vectors ([float array] for pure numeric skylines,
    [Value.t array] otherwise). [count] accumulates the number of dominance
    tests performed — a caller-owned ref, so per-chunk counting stays
    race-free in the parallel layer. Same result set and order as
    {!maxima}. *)

val maxima_proj :
  dominates:('p -> 'p -> bool) ->
  ?count:int ref ->
  ('p * Tuple.t) array ->
  ('p * Tuple.t) array
(** The window pass over caller-projected points, keeping the projections
    in the result — the building block {!Parallel} reuses so chunk windows
    can be merged without re-projecting. *)

val query : Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t
(** σ[P](R) via BNL. When telemetry ({!Pref_obs.Control}) is on, reports
    dominance-test counts, scanned/pruned tuples and the window peak; when
    off, runs the exact uninstrumented pass. *)
