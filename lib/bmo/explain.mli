(** Query explanation (§6.1: the LEVEL and DISTANCE quality functions "can
    be exploited for advanced query explanation").

    For a tuple, a preference and a database set, report whether the tuple
    is a best match, which tuples exclude it, its level in the database
    better-than graph, and its per-attribute quality values. *)

open Pref_relation

type quality =
  | Level of int
  | Distance of float
  | Opaque

type t = {
  tuple : Tuple.t;
  in_result : bool;
  dominators : Tuple.t list;
  graph_level : int;
  qualities : (string * quality) list;
}

val explain :
  Schema.t -> Preferences.Pref.t -> Relation.t -> Tuple.t -> t
(** O(|R|²) in the worst case (graph level computation); intended for
    interactive explanation, not bulk evaluation. *)

val qualities_of :
  Schema.t -> Preferences.Pref.t -> Tuple.t -> (string * quality) list

val unranked_pairs :
  Schema.t -> Preferences.Pref.t -> Tuple.t list -> (Tuple.t * Tuple.t) list
(** All unranked pairs with distinct projections — the "natural reservoir to
    negotiate compromises" of §4.1. *)

val pp : t Fmt.t
val to_string : t -> string

(** {1 Plan-level explanation — EXPLAIN [ANALYZE]}

    Where {!explain} above answers "why is this {e tuple} (not) in the
    result", {!Plan} answers "why was this {e plan} chosen": the plan
    taken, the alternatives rejected with the threshold comparisons that
    rejected them, the cache tiers probed with per-tier timings, the
    estimated result cardinality — and, under ANALYZE, the actual
    per-operator cardinalities and timings. *)

module Plan : sig
  type op = {
    op_name : string;  (** e.g. [psql.from], [sigma], [psql.top] *)
    op_rows_in : int option;
    op_rows_out : int option;  (** actual output rows; [None] without ANALYZE *)
    op_est_out : float option;  (** estimated output rows, where modelled *)
    op_ms : float option;  (** wall time; [None] without ANALYZE *)
    op_attrs : (string * string) list;
    op_children : op list;
  }

  val op :
    ?rows_in:int ->
    ?rows_out:int ->
    ?est_out:float ->
    ?ms:float ->
    ?attrs:(string * string) list ->
    ?children:op list ->
    string ->
    op

  type t = {
    query : string;
    analyze : bool;
    plan : Planner.plan;
    forced : string option;
        (** why the planner was bypassed (deadline ladder, algorithm
            knob), when it was *)
    trace : Planner.trace;  (** the decision's inputs and rejected paths *)
    ops : op list;
    total_ms : float option;
  }

  val decide :
    Engine.config ->
    deadline:Engine.deadline ->
    Pref_relation.Schema.t ->
    Preferences.Pref.t ->
    Pref_relation.Relation.t ->
    Planner.plan * Planner.trace * string option
  (** The σ[P] plan decision exactly as [Query.sigma_within] would make
      it under this configuration: cache probe first, then the deadline
      degradation ladder, then the algorithm knob, then the planner.
      Returns the plan, the planner's trace (with the bypassed auto
      choice prepended to [t_rejected] when a forcing rule applied), and
      the forcing reason. Probes the cache non-destructively — no
      counting, no stores. *)

  val make :
    query:string ->
    analyze:bool ->
    plan:Planner.plan ->
    forced:string option ->
    trace:Planner.trace ->
    ops:op list ->
    total_ms:float option ->
    unit ->
    t

  val to_text : t -> string list
  val to_json : t -> Pref_obs.Json.t
end
