(** The BMO engine's shared telemetry instruments.

    One registration point for the metrics every evaluation algorithm
    reports into, plus the [record_query] helper the per-algorithm [query]
    wrappers call. Everything is a no-op while {!Pref_obs.Control} is off. *)

val dominance_tests : Pref_obs.Metrics.counter
(** Dominance ('better-than') tests performed across all queries. *)

val tuples_scanned : Pref_obs.Metrics.counter
val tuples_pruned : Pref_obs.Metrics.counter
val queries : Pref_obs.Metrics.counter

val window_peak : Pref_obs.Metrics.gauge
(** Largest BNL window seen (engine-wide peak). *)

val levels_computed : Pref_obs.Metrics.counter
(** Levels materialised by iterated-BMO ([sigma_levels]) evaluation. *)

val ta_examined : Pref_obs.Metrics.counter
(** Objects examined by the threshold algorithm. *)

val result_size : Pref_obs.Metrics.histogram
val query_ms : Pref_obs.Metrics.histogram

val par_queries : Pref_obs.Metrics.counter
(** Queries answered by the parallel evaluation layer. *)

val par_chunk_rows : Pref_obs.Metrics.histogram
(** Input rows per parallel chunk (one observation per chunk). *)

val par_merge_ms : Pref_obs.Metrics.histogram
(** Wall time of the merge / cross-filter phase of parallel evaluation. *)

val cache_hits : Pref_obs.Metrics.counter
(** Exact result-cache hits (same relation version, same canonical term). *)

val cache_misses : Pref_obs.Metrics.counter
val cache_semantic : Pref_obs.Metrics.counter
(** Results derived from a cached entry via an algebraic reuse identity. *)

val cache_patched : Pref_obs.Metrics.counter
(** Entries patched in place by incremental insert/delete maintenance. *)

val cache_evictions : Pref_obs.Metrics.counter

val cache_cost_skipped : Pref_obs.Metrics.counter
(** Semantic-tier lookups that matched but were refused because the cost
    model predicted the reconstruction would lose to a cold run. *)

val cache_entries : Pref_obs.Metrics.gauge
val cache_bytes : Pref_obs.Metrics.gauge

val cache_probe_ms : string -> Pref_obs.Metrics.histogram
(** Per-tier cache probe latency, [bmo.cache.probe_ms.<tier>] with tiers
    [exact], [prior-prefix], [dunion-inter], [pareto-restrict]. Bounds
    are sub-millisecond: probes are hash lookups, not evaluations. *)

val observe_probe : string -> float -> unit
(** Record one probe of the named tier (milliseconds) into its
    histogram; no-op while telemetry is off. *)

val plan_chosen : string -> unit
(** Bump the [bmo.plan_chosen.<kind>] counter for the planner's choice. *)

val record_query :
  algorithm:string -> n_in:int -> n_out:int -> comparisons:int -> ms:float -> unit
(** Report one finished BMO evaluation into the engine metrics; pass
    [comparisons:-1] when the algorithm did not count dominance tests. *)
