open Pref_relation

(* Branch & bound skyline over a kd-tree (BBS-style, adapted from R-trees to
   kd bounding boxes).  All coordinates are maximised.

   Entries are processed best-first by the sum of their upper corner.  Every
   dominator of a point p has a strictly larger coordinate sum, and every
   ancestor entry of that dominator has an upper corner at least as large,
   so all of p's potential dominators (or entries containing them) leave the
   queue before p: a popped, undominated point is definitely skyline. *)

type stats = {
  nodes_visited : int;  (** split nodes expanded *)
  points_tested : int;  (** points compared against the partial skyline *)
  pruned_subtrees : int;  (** subtrees discarded by one dominance test *)
}

let dominates = Dnc.dominates

let sum = Array.fold_left ( +. ) 0.

let skyline_indices tree =
  let points = Kdtree.points tree in
  let queue = Heap.create () in
  let skyline = ref [] in
  let nodes = ref 0 and tested = ref 0 and pruned = ref 0 in
  let upper node = snd (Kdtree.node_bbox points node) in
  let dominated_by_skyline corner =
    List.exists (fun i -> dominates points.(i) corner) !skyline
  in
  Heap.push queue (sum (upper (Kdtree.root tree))) (`Node (Kdtree.root tree));
  let rec drain () =
    match Heap.pop queue with
    | None -> ()
    | Some (_, entry) ->
      (match entry with
      | `Node node ->
        let _, corner = Kdtree.node_bbox points node in
        if dominated_by_skyline corner then incr pruned
        else begin
          match node with
          | Kdtree.Leaf idxs ->
            Array.iter
              (fun i -> Heap.push queue (sum points.(i)) (`Point i))
              idxs
          | Kdtree.Split s ->
            incr nodes;
            Heap.push queue (sum (upper s.left)) (`Node s.left);
            Heap.push queue (sum (upper s.right)) (`Node s.right)
        end
      | `Point i ->
        incr tested;
        if not (dominated_by_skyline points.(i)) then skyline := i :: !skyline);
      drain ()
  in
  drain ();
  ( List.rev !skyline,
    { nodes_visited = !nodes; points_tested = !tested; pruned_subtrees = !pruned }
  )

let maxima ~dims rows =
  match rows with
  | [] -> ([], { nodes_visited = 0; points_tested = 0; pruned_subtrees = 0 })
  | _ ->
    let arr = Array.of_list rows in
    let points = Array.map dims arr in
    let tree = Kdtree.build points in
    let idxs, stats = skyline_indices tree in
    (* restore input order, keeping duplicates of maximal vectors *)
    let keep = Array.make (Array.length arr) false in
    List.iter (fun i -> keep.(i) <- true) idxs;
    (* equal vectors never dominate each other, so every duplicate of a
       skyline vector was itself reported by the traversal *)
    let result =
      List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)
    in
    (result, stats)

let query schema ~attrs ~maximize rel =
  Pref_obs.Span.with_span "bmo.bbs" (fun () ->
      let dims = Dnc.dims_of schema attrs ~maximize in
      let rows = Relation.rows rel in
      let (best, stats), ms =
        Pref_obs.Span.timed (fun () -> maxima ~dims rows)
      in
      if Pref_obs.Control.is_enabled () then begin
        Obs.record_query ~algorithm:"bbs" ~n_in:(List.length rows)
          ~n_out:(List.length best) ~comparisons:(-1) ~ms;
        Pref_obs.Span.add_attr "pruned_subtrees"
          (string_of_int stats.pruned_subtrees);
        Pref_obs.Span.add_attr "nodes_visited" (string_of_int stats.nodes_visited)
      end;
      (Relation.make (Relation.schema rel) best, stats))
