open Pref_relation

type t = Tuple.t -> Tuple.t -> bool

let of_pref schema p = Preferences.Pref.compile_better schema p

let counting dom =
  let n = ref 0 in
  let dom' a b =
    incr n;
    dom a b
  in
  (dom', fun () -> !n)

(* ------------------------------------------------------------------ *)
(* Vectorized dominance                                                *)

type vec = {
  attrs : string list;
  width : int;
  project : Tuple.t -> Value.t array;
  better : Value.t array -> Value.t array -> bool;
  floats : (Tuple.t -> float array) option;
}

(* Float dominance with NULL encoded as nan: on each dimension a number
   beats nan strictly, two nans tie (NULL = NULL under Value.equal, which
   is what the compiled Pareto equality test sees), and two numbers compare
   normally. [v] dominates [w] iff v is >= on every dimension and > on at
   least one. *)
let ge_dim a b =
  if Float.is_nan b then true else (not (Float.is_nan a)) && a >= b

let gt_dim a b =
  (not (Float.is_nan a)) && (Float.is_nan b || a > b)

let float_dominates (v : float array) (w : float array) =
  let d = Array.length v in
  let i = ref 0 in
  while !i < d && ge_dim (Array.unsafe_get v !i) (Array.unsafe_get w !i) do
    incr i
  done;
  !i >= d
  &&
  let j = ref 0 in
  while
    !j < d && not (gt_dim (Array.unsafe_get v !j) (Array.unsafe_get w !j))
  do
    incr j
  done;
  !j < d

let float_projector schema attrs ~maximize =
  let idx = Array.of_list (List.map (Schema.index_of_exn schema) attrs) in
  let sign = if maximize then 1.0 else -1.0 in
  fun t ->
    Array.map
      (fun i ->
        match Value.as_float (Tuple.get t i) with
        | Some f -> sign *. f
        | None -> Float.nan)
      idx

(* The float path is exact only when the chain attributes are numeric in
   the schema (the relation layer enforces column types, so the values are
   then numbers or NULL — both encodable). A numeric chain over e.g. a
   string column keeps the general Value.t-vector path. *)
let numeric_ty = function
  | Value.TInt | Value.TFloat | Value.TDate | Value.TBool -> true
  | Value.TStr -> false

let of_pref_vec schema p =
  let vc = Preferences.Pref.compile_vec schema p in
  let floats =
    match Preferences.Pref.chain_dims p with
    | Some (attrs, maximize)
      when List.for_all
             (fun a ->
               match Schema.type_of schema a with
               | Some ty -> numeric_ty ty
               | None -> false)
             attrs ->
      Some (float_projector schema attrs ~maximize)
    | Some _ | None -> None
  in
  {
    attrs = vc.Preferences.Pref.vc_attrs;
    width = Array.length vc.Preferences.Pref.vc_index;
    project = Preferences.Pref.vec_project vc;
    better = vc.Preferences.Pref.vc_better;
    floats;
  }
