type algorithm =
  | Alg_naive
  | Alg_bnl
  | Alg_decompose
  | Alg_parallel
  | Alg_auto

let algorithm_of_string = function
  | "naive" -> Some Alg_naive
  | "bnl" -> Some Alg_bnl
  | "decompose" -> Some Alg_decompose
  | "parallel" -> Some Alg_parallel
  | "auto" -> Some Alg_auto
  | _ -> None

let algorithm_to_string = function
  | Alg_naive -> "naive"
  | Alg_bnl -> "bnl"
  | Alg_decompose -> "decompose"
  | Alg_parallel -> "parallel"
  | Alg_auto -> "auto"

type config = {
  algorithm : algorithm;
  domains : int option;
  cache : bool;
  check : bool;
  profile : bool;
  deadline_ms : float option;
  max_rows : int option;
  slowlog_ms : float option;
  costmodel : bool;
}

let default =
  {
    algorithm = Alg_bnl;
    domains = None;
    cache = true;
    check = false;
    profile = false;
    deadline_ms = None;
    max_rows = None;
    slowlog_ms = None;
    costmodel = true;
  }

type flags = { partial : bool; truncated : bool }

let complete = { partial = false; truncated = false }

let union_flags a b =
  { partial = a.partial || b.partial; truncated = a.truncated || b.truncated }

let flags_attrs f =
  (if f.partial then [ ("partial", "true") ] else [])
  @ if f.truncated then [ ("truncated", "true") ] else []

module Result = struct
  type nonrec t = {
    rows : Pref_relation.Relation.t;
    flags : flags;
    profile : Pref_obs.Profile.t option;
    plan : string option;
  }

  let make ?profile ?plan rows flags = { rows; flags; profile; plan }
end

(* A deadline is the absolute monotonic-clock expiry in nanoseconds.
   [Int64.max_int] encodes "none": every comparison against it is false,
   so the hot-path check stays one load and one compare. *)
type deadline = int64

let no_deadline = Int64.max_int

let deadline_of cfg =
  match cfg.deadline_ms with
  | None -> no_deadline
  | Some ms ->
    Int64.add (Pref_obs.Clock.now_ns ())
      (Int64.of_float (Float.max 0. ms *. 1e6))

let has_deadline d = not (Int64.equal d no_deadline)
let expired d = has_deadline d && Int64.compare (Pref_obs.Clock.now_ns ()) d >= 0

(* ------------------------------------------------------------------ *)
(* String-typed knob access, shared by shell \set and the wire SET     *)

let bool_of_knob = function
  | "on" | "true" | "1" -> Some true
  | "off" | "false" | "0" -> Some false
  | _ -> None

let off_knob v =
  match String.lowercase_ascii v with "off" | "none" -> true | _ -> false

let set cfg ~key ~value =
  match String.lowercase_ascii key with
  | "algorithm" -> (
    match algorithm_of_string value with
    | Some a -> Ok { cfg with algorithm = a }
    | None ->
      Error
        (Printf.sprintf
           "unknown algorithm %s (naive | bnl | decompose | parallel | auto)"
           value))
  | "domains" -> (
    match int_of_string_opt value with
    | Some d when d >= 1 -> Ok { cfg with domains = Some d }
    | Some _ | None ->
      Error
        (Printf.sprintf "domains must be a positive integer, got %s" value))
  | "cache" -> (
    match bool_of_knob value with
    | Some b -> Ok { cfg with cache = b }
    | None -> Error "cache must be on or off")
  | "check" -> (
    match bool_of_knob value with
    | Some b -> Ok { cfg with check = b }
    | None -> Error "check must be on or off")
  | "profile" -> (
    match bool_of_knob value with
    | Some b -> Ok { cfg with profile = b }
    | None -> Error "profile must be on or off")
  | "deadline" ->
    if off_knob value then Ok { cfg with deadline_ms = None }
    else (
      match float_of_string_opt value with
      | Some ms when ms >= 0. -> Ok { cfg with deadline_ms = Some ms }
      | Some _ | None ->
        Error
          (Printf.sprintf
             "deadline must be a non-negative millisecond count or off, got %s"
             value))
  | "maxrows" ->
    if off_knob value then Ok { cfg with max_rows = None }
    else (
      match int_of_string_opt value with
      | Some k when k >= 1 -> Ok { cfg with max_rows = Some k }
      | Some _ | None ->
        Error
          (Printf.sprintf "maxrows must be a positive integer or off, got %s"
             value))
  | "costmodel" -> (
    match bool_of_knob value with
    | Some b -> Ok { cfg with costmodel = b }
    | None -> Error "costmodel must be on or off")
  | "slowlog" ->
    if off_knob value then Ok { cfg with slowlog_ms = None }
    else (
      match float_of_string_opt value with
      | Some ms when ms >= 0. -> Ok { cfg with slowlog_ms = Some ms }
      | Some _ | None ->
        Error
          (Printf.sprintf
             "slowlog must be a non-negative millisecond threshold or off, \
              got %s"
             value))
  | _ ->
    Error
      (Printf.sprintf
         "unknown setting %s (algorithm | domains | cache | check | profile \
          | deadline | maxrows | slowlog | costmodel)"
         key)

let describe cfg =
  [
    ("algorithm", algorithm_to_string cfg.algorithm);
    ( "domains",
      match cfg.domains with Some d -> string_of_int d | None -> "default" );
    ("cache", if cfg.cache then "on" else "off");
    ("check", if cfg.check then "on" else "off");
    ("profile", if cfg.profile then "on" else "off");
    ( "deadline",
      match cfg.deadline_ms with
      | Some ms -> Printf.sprintf "%g" ms
      | None -> "off" );
    ( "maxrows",
      match cfg.max_rows with Some k -> string_of_int k | None -> "off" );
    ( "slowlog",
      match cfg.slowlog_ms with
      | Some ms -> Printf.sprintf "%g" ms
      | None -> "off" );
    ("costmodel", if cfg.costmodel then "on" else "off");
  ]
