open Pref_relation
open Preferences

type plan =
  | Plan_naive
  | Plan_bnl
  | Plan_sfs of { attrs : string list; maximize : bool }
  | Plan_dnc of { attrs : string list; maximize : bool }
  | Plan_par_dnc of { domains : int }
  | Plan_par_sfs of { attrs : string list; maximize : bool; domains : int }
  | Plan_cascade of Pref.t * Pref.t  (** Proposition 11: chain & rest *)
  | Plan_decompose
  | Plan_identity
      (** the winnow is provably redundant: sigma[P](R) = R holds under the
          relation's constraints, so the plan is "return the input" *)
  | Plan_cache_hit
  | Plan_cache_semantic of string

let plan_kind = function
  | Plan_naive -> "naive"
  | Plan_bnl -> "bnl"
  | Plan_sfs _ -> "sfs"
  | Plan_dnc _ -> "dnc"
  | Plan_par_dnc _ -> "par_dnc"
  | Plan_par_sfs _ -> "par_sfs"
  | Plan_cascade _ -> "cascade"
  | Plan_decompose -> "decompose"
  | Plan_identity -> "identity"
  | Plan_cache_hit -> "cache_hit"
  | Plan_cache_semantic _ -> "cache_semantic"

let plan_to_string = function
  | Plan_naive -> "naive"
  | Plan_bnl -> "bnl"
  | Plan_sfs { attrs; maximize } ->
    Printf.sprintf "sfs(%s %s)" (String.concat "," attrs)
      (if maximize then "max" else "min")
  | Plan_dnc { attrs; maximize } ->
    Printf.sprintf "dnc(%s %s)" (String.concat "," attrs)
      (if maximize then "max" else "min")
  | Plan_par_dnc { domains } -> Printf.sprintf "par_dnc(domains=%d)" domains
  | Plan_par_sfs { attrs; maximize; domains } ->
    Printf.sprintf "par_sfs(%s %s domains=%d)" (String.concat "," attrs)
      (if maximize then "max" else "min")
      domains
  | Plan_cascade (p1, p2) ->
    Printf.sprintf "cascade(%s; %s)" (Show.to_string p1) (Show.to_string p2)
  | Plan_decompose -> "decompose"
  | Plan_identity -> "identity (sigma[P](R) = R)"
  | Plan_cache_hit -> "cache(exact)"
  | Plan_cache_semantic desc -> Printf.sprintf "cache(semantic:%s)" desc

(* ------------------------------------------------------------------ *)
(* Structural analysis                                                 *)

(* Is the term a Pareto accumulation of pure numeric chains, all in the
   same direction?  Then the [KLP75] divide & conquer and SFS apply.
   The analysis itself lives in {!Preferences.Pref} (the vectorized
   dominance compiler needs it too); re-exported here because it is
   planner vocabulary. *)
let chain_dims = Pref.chain_dims

(* Is the head of a prioritization a chain on the data?  We accept the
   syntactic chains (LOWEST / HIGHEST / injective-by-construction rank is
   not guaranteed, so only the first two). *)
let syntactic_chain = function
  | Pref.Lowest _ | Pref.Highest _ -> true
  | Pref.Dual (Pref.Lowest _) | Pref.Dual (Pref.Highest _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Sampling-based statistics                                           *)

let sample_rows rows ~size =
  let n = List.length rows in
  if n <= size then rows
  else begin
    let step = n / size in
    List.filteri (fun i _ -> i mod step = 0) rows
  end

(* Pearson correlation of the first two numeric dims on a sample: strongly
   negative correlation predicts large skylines, where divide & conquer
   dominates window algorithms. *)
let sampled_correlation schema attrs rows =
  match attrs with
  | a :: b :: _ -> (
    let ia = Schema.index_of_exn schema a and ib = Schema.index_of_exn schema b in
    let sample = sample_rows rows ~size:500 in
    let xs =
      List.filter_map
        (fun t ->
          match Value.as_float (Tuple.get t ia), Value.as_float (Tuple.get t ib) with
          | Some x, Some y -> Some (x, y)
          | _ -> None)
        sample
    in
    match xs with
    | [] | [ _ ] -> 0.0
    | _ ->
      let n = float_of_int (List.length xs) in
      let mx = List.fold_left (fun acc (x, _) -> acc +. x) 0. xs /. n in
      let my = List.fold_left (fun acc (_, y) -> acc +. y) 0. xs /. n in
      let cov =
        List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0. xs
      in
      let sx =
        sqrt (List.fold_left (fun acc (x, _) -> acc +. ((x -. mx) ** 2.)) 0. xs)
      in
      let sy =
        sqrt (List.fold_left (fun acc (_, y) -> acc +. ((y -. my) ** 2.)) 0. xs)
      in
      if sx = 0. || sy = 0. then 0. else cov /. (sx *. sy))
  | _ -> 0.0

(* ------------------------------------------------------------------ *)
(* Plan choice                                                         *)

(* Minimum rows per domain before fanning out pays for the projection and
   merge overhead. *)
let par_chunk_threshold = 8192

(* ------------------------------------------------------------------ *)
(* Decision procedure                                                  *)

(* One decision record feeds both [choose] (which keeps only the plan)
   and [choose_traced] (which renders everything for EXPLAIN), so the two
   can never drift apart. *)
type decision = {
  d_plan : plan;
  d_correlation : float option;
  d_costs : (string * float) list;  (* predicted ms, cheapest first *)
  d_rejected : (string * string) list;
}

let pref_dims chain p =
  match chain with
  | Some (attrs, _) -> List.length attrs
  | None -> max 1 (List.length (Pref.attrs p))

(* Cost-based choice: price every alternative that can evaluate this
   preference shape and take the cheapest. Parallel plans carry their
   spawn + merge overhead, so they lose at small n no matter how many
   domains are available. *)
let decide_by_cost ~missed ~chain ~d ~n schema p rows =
  let correlation =
    match chain with
    | Some (attrs, _) -> Some (sampled_correlation schema attrs rows)
    | None -> None
  in
  let dims = pref_dims chain p in
  let w =
    {
      Cost.n;
      dims;
      domains = d;
      correlation = Option.value correlation ~default:0.;
    }
  in
  let candidates =
    [ ("bnl", Plan_bnl) ]
    @ (match chain with
      | Some (attrs, maximize) ->
        (if List.length attrs >= 2 then
           [ ("dnc", Plan_dnc { attrs; maximize }) ]
         else [])
        @ [ ("sfs", Plan_sfs { attrs; maximize }) ]
        @
        if d > 1 then
          [ ("par_sfs", Plan_par_sfs { attrs; maximize; domains = d }) ]
        else []
      | None -> [])
    @ (if d > 1 then [ ("par_dnc", Plan_par_dnc { domains = d }) ] else [])
    @ [ ("naive", Plan_naive); ("decompose", Plan_decompose) ]
  in
  let priced =
    List.map (fun (k, plan) -> (k, plan, Cost.predict_ms ~kind:k w)) candidates
  in
  let best =
    List.fold_left
      (fun ((_, _, bc) as acc) ((_, _, c) as cand) ->
        if c < bc then cand else acc)
      (List.hd priced) (List.tl priced)
  in
  let bk, bplan, bc = best in
  let by_cost =
    List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) priced
  in
  {
    d_plan = bplan;
    d_correlation = correlation;
    d_costs = List.map (fun (k, _, c) -> (k, c)) by_cost;
    d_rejected =
      missed
      @ List.filter_map
          (fun (k, _, c) ->
            if String.equal k bk then None
            else
              Some
                (k, Printf.sprintf "predicted %.3f ms vs %.3f ms for %s" c bc bk))
          by_cost;
  }

(* The pre-cost-model heuristics, kept behind [\set costmodel off] so a
   cost-model regression in production is bisectable to this switch. *)
let decide_by_rule ~missed ~chain ~big ~big_str ~d schema rows =
  match chain with
  | Some (attrs, maximize) ->
    let r = sampled_correlation schema attrs rows in
    let anti = r < -0.3 in
    let not_dnc =
      if not anti then Printf.sprintf "r=%.2f >= -0.3: skyline expected small" r
      else "chain has a single dimension: no median split to recurse on"
    in
    if anti && List.length attrs >= 2 then
      (* Large-skyline regime: the recursive median split of [KLP75]
         beats window passes, and chunked windows would make the merge
         itself quadratic in the (huge) result. Keep it sequential. *)
      {
        d_plan = Plan_dnc { attrs; maximize };
        d_correlation = Some r;
        d_costs = [];
        d_rejected =
          missed
          @ [
              ( "bnl",
                Printf.sprintf
                  "r=%.2f < -0.3 predicts a large skyline: window passes go \
                   quadratic in the result" r );
              ( "par_sfs",
                "chunked windows would make the merge quadratic in the (huge) \
                 result" );
            ];
      }
    else if big then
      {
        d_plan = Plan_par_sfs { attrs; maximize; domains = d };
        d_correlation = Some r;
        d_costs = [];
        d_rejected =
          missed
          @ [
              ("dnc", not_dnc);
              ( "bnl",
                Printf.sprintf "n=%d >= %s rows feed every domain"
                  (List.length rows) big_str );
            ];
      }
    else
      {
        d_plan = Plan_bnl;
        d_correlation = Some r;
        d_costs = [];
        d_rejected =
          missed
          @ [
              ("dnc", not_dnc);
              ( "par_sfs",
                Printf.sprintf
                  "n=%d < %s: fan-out would not pay for projection and merge"
                  (List.length rows) big_str );
            ];
      }
  | None ->
    if big then
      {
        d_plan = Plan_par_dnc { domains = d };
        d_correlation = None;
        d_costs = [];
        d_rejected =
          missed
          @ [
              ( "bnl",
                Printf.sprintf "n=%d >= %s rows feed every domain"
                  (List.length rows) big_str );
            ];
      }
    else
      {
        d_plan = Plan_bnl;
        d_correlation = None;
        d_costs = [];
        d_rejected =
          missed
          @ [
              ( "par_dnc",
                Printf.sprintf
                  "n=%d < %s: fan-out would not pay for projection and merge"
                  (List.length rows) big_str );
            ];
      }

let decide ~costmodel ~reuse ~probes ~d ~n schema p rel =
  let rows = Relation.rows rel in
  let big = d > 1 && n >= par_chunk_threshold * d in
  let big_str =
    Printf.sprintf "%d (= %d domains x %d)" (par_chunk_threshold * d) d
      par_chunk_threshold
  in
  match reuse with
  | Some Cache.Exact ->
    {
      d_plan = Plan_cache_hit;
      d_correlation = None;
      d_costs = [];
      d_rejected = [ ("bnl", "an exact cache hit beats any evaluation") ];
    }
  | Some (Cache.Semantic desc) ->
    {
      d_plan = Plan_cache_semantic desc;
      d_correlation = None;
      d_costs = [];
      d_rejected =
        [
          ( "bnl",
            "deriving from cached entries (" ^ desc
            ^ ") is predicted cheaper than re-evaluation" );
        ];
    }
  | None -> (
    let missed =
      if probes = [] then []
      else [ ("cache", "probe missed every applicable tier") ]
    in
    if n <= 64 then
      {
        d_plan = Plan_naive;
        d_correlation = None;
        d_costs = [];
        d_rejected =
          missed
          @ [ ("bnl", "n <= 64: window bookkeeping costs more than the n^2 scan") ];
      }
    else
      match p with
      | Pref.Prior (p1, p2) when syntactic_chain p1 ->
        (* Proposition 11: evaluate the chain first, then the rest on the
           (typically tiny) intermediate result. Structural, not costed:
           the cascade's first pass subsumes any alternative's scan. *)
        {
          d_plan = Plan_cascade (p1, p2);
          d_correlation = None;
          d_costs =
            (if costmodel then
               let w =
                 { Cost.n; dims = pref_dims None p; domains = d; correlation = 0. }
               in
               [
                 ("cascade", Cost.predict_ms ~kind:"cascade" w);
                 ("bnl", Cost.predict_ms ~kind:"bnl" w);
               ]
             else []);
          d_rejected =
            missed
            @ [
                ( "bnl",
                  "prioritisation head is a syntactic chain: the cascade \
                   prunes the input to a thin slice first (Prop. 11)" );
              ];
        }
      | _ ->
        let chain = chain_dims p in
        if costmodel then decide_by_cost ~missed ~chain ~d ~n schema p rows
        else decide_by_rule ~missed ~chain ~big ~big_str ~d schema rows)

let choose ?(cache = true) ?(costmodel = true) ?domains schema p rel =
  Pref_obs.Span.with_span "bmo.plan.choose" @@ fun () ->
  let d =
    match domains with Some d -> max 1 d | None -> Parallel.default_domains ()
  in
  let n = List.length (Relation.rows rel) in
  let reuse =
    if cache then Cache.probe ~gate:costmodel Cache.global schema p rel
    else None
  in
  (decide ~costmodel ~reuse ~probes:[] ~d ~n schema p rel).d_plan

(* ------------------------------------------------------------------ *)
(* Traced choice — the same [decide], with its inputs and the rejected
   alternatives (and their predicted costs) recorded for EXPLAIN. *)

type trace = {
  t_n : int;
  t_dims : int;
  t_domains : int;
  t_par_threshold : int;
  t_big : bool;
  t_chain : (string list * bool) option;
  t_correlation : float option;
  t_probes : Cache.tier_probe list;
  t_rejected : (string * string) list;
  t_estimate : float option;
  t_costs : (string * float) list;
}

let choose_traced ?(cache = true) ?(costmodel = true) ?probe ?domains schema p
    rel =
  let d =
    match domains with Some d -> max 1 d | None -> Parallel.default_domains ()
  in
  let n = List.length (Relation.rows rel) in
  let big = d > 1 && n >= par_chunk_threshold * d in
  let reuse, probes =
    match probe with
    | Some r -> r
    | None ->
      if cache then Cache.probe_traced ~gate:costmodel Cache.global schema p rel
      else (None, [])
  in
  let chain = chain_dims p in
  let dims = pref_dims chain p in
  let estimate =
    if n = 0 then None else Some (Estimate.expected_skyline_size_fast ~n ~dims)
  in
  let dec = decide ~costmodel ~reuse ~probes ~d ~n schema p rel in
  ( dec.d_plan,
    {
      t_n = n;
      t_dims = dims;
      t_domains = d;
      t_par_threshold = par_chunk_threshold;
      t_big = big;
      t_chain = chain;
      t_correlation = dec.d_correlation;
      t_probes = probes;
      t_rejected = dec.d_rejected;
      t_estimate = estimate;
      t_costs = dec.d_costs;
    } )

let execute schema p rel plan =
  Pref_obs.Span.with_span "bmo.plan.execute"
    ~attrs:[ ("plan", plan_kind plan) ]
  @@ fun () ->
  match plan with
  | Plan_naive -> Naive.query schema p rel
  | Plan_bnl -> Bnl.query schema p rel
  | Plan_sfs { attrs; maximize } ->
    Sfs.query schema ~key:(Sfs.sum_key schema attrs ~maximize) p rel
  | Plan_dnc { attrs; maximize } -> Dnc.query schema ~attrs ~maximize rel
  | Plan_par_dnc { domains } -> Parallel.query ~domains schema p rel
  | Plan_par_sfs { attrs; maximize; domains } ->
    Parallel.query_sfs ~domains schema ~attrs ~maximize p rel
  | Plan_cascade (p1, p2) -> Decompose.cascade schema p1 p2 rel
  | Plan_decompose -> Decompose.eval schema p rel
  | Plan_identity -> rel
  | Plan_cache_hit | Plan_cache_semantic _ -> (
    (* [choose] probed the cache; serve through the counting lookup. An
       eviction between probe and execute degrades to a plain BNL pass. *)
    match Cache.lookup Cache.global schema p rel with
    | Some (result, _) -> result
    | None ->
      let result = Bnl.query schema p rel in
      Cache.store Cache.global schema p rel result;
      result)

let run ?(cache = true) ?(costmodel = true) ?domains schema p rel =
  let plan = choose ~cache ~costmodel ?domains schema p rel in
  Obs.plan_chosen (plan_kind plan);
  let t0 = Pref_obs.Clock.now_ns () in
  let result = execute schema p rel plan in
  (if Cost.learning () then begin
     (* fold the measured runtime back into the model (per-kind EMA) and
        record the Prop. 13 filter effect the query exhibited *)
     let ms = Pref_obs.Clock.elapsed_ms ~since:t0 in
     let n = List.length (Relation.rows rel) in
     let dims = pref_dims (chain_dims p) p in
     let w = { Cost.n; dims; domains = 1; correlation = 0. } in
     (match plan with
     | Plan_naive | Plan_bnl | Plan_sfs _ | Plan_dnc _ | Plan_decompose
     | Plan_cascade _ ->
       Cost.observe ~kind:(plan_kind plan) w ~ms
     | Plan_par_dnc { domains } | Plan_par_sfs { domains; _ } ->
       Cost.observe ~kind:(plan_kind plan) { w with Cost.domains } ~ms
     | Plan_identity | Plan_cache_hit | Plan_cache_semantic _ -> ());
     Cost.observe_filter ~dims ~n_in:n
       ~n_out:(List.length (Relation.rows result))
   end);
  (match plan with
  | _ when not cache -> ()
  | Plan_cache_hit | Plan_cache_semantic _ -> ()
  | _ -> Cache.store Cache.global schema p rel result);
  (result, plan)
