(** Compatibility layer for the pre-{!Engine.config} API.

    The optional-argument entry points ([Query.sigma], [Exec.run],
    [Exec.run_query], ...) predate the unified configuration record and
    survive as one-line shims so existing call sites keep compiling. New
    code should pass an {!Engine.config} to the [_cfg]/[_within]
    functions instead; this module exists only so every shim derives its
    config from the same place. *)

val legacy_cfg :
  ?algorithm:Engine.algorithm ->
  ?cache:bool ->
  ?domains:int ->
  ?profile:bool ->
  ?check:bool ->
  unit ->
  Engine.config
(** The {!Engine.config} equivalent of the historical optional-argument
    defaults: BNL, cache on, engine-default domains, no profile, no
    checking, and no deadline / row cap / slow-query log. Deprecated in
    spirit — call sites should construct [{ Engine.default with ... }]
    directly. *)
