open Pref_relation
open Preferences

type quality =
  | Level of int  (** discrete level under the intrinsic level function *)
  | Distance of float  (** distance under the continuous distance function *)
  | Opaque  (** no quality function for this base preference *)

type t = {
  tuple : Tuple.t;
  in_result : bool;
  dominators : Tuple.t list;  (** witnesses that exclude the tuple *)
  graph_level : int;  (** level in the database better-than graph *)
  qualities : (string * quality) list;  (** per attribute of the preference *)
}

let qualities_of schema p t =
  List.map
    (fun attr ->
      let q =
        match Quality.level_of schema p attr t with
        | Some l -> Level l
        | None -> (
          match Quality.distance_of schema p attr t with
          | Some d -> Distance d
          | None -> Opaque)
      in
      (attr, q))
    (Pref.attrs p)

let explain schema p rel t =
  let dom = Dominance.of_pref schema p in
  let dominators = List.filter (fun u -> dom u t) (Relation.rows rel) in
  {
    tuple = t;
    in_result = dominators = [];
    dominators;
    graph_level = Quality.level_in_graph schema p rel t;
    qualities = qualities_of schema p t;
  }

let pp_quality ppf = function
  | Level l -> Fmt.pf ppf "level %d" l
  | Distance d ->
    if Float.is_integer d then Fmt.pf ppf "distance %.0f" d
    else Fmt.pf ppf "distance %g" d
  | Opaque -> Fmt.string ppf "-"

let pp ppf e =
  Fmt.pf ppf "%a: %s (graph level %d)@." Tuple.pp e.tuple
    (if e.in_result then "BEST MATCH" else "dominated")
    e.graph_level;
  List.iter
    (fun (attr, q) -> Fmt.pf ppf "  %-16s %a@." attr pp_quality q)
    e.qualities;
  match e.dominators with
  | [] -> ()
  | ds ->
    Fmt.pf ppf "  dominated by %d tuple(s), e.g. %a@." (List.length ds) Tuple.pp
      (List.hd ds)

let to_string e = Fmt.str "%a" pp e

(* ------------------------------------------------------------------ *)
(* Plan-level explanation: EXPLAIN [ANALYZE]                           *)

module Plan = struct
  type op = {
    op_name : string;
    op_rows_in : int option;
    op_rows_out : int option;
    op_est_out : float option;
    op_ms : float option;
    op_attrs : (string * string) list;
    op_children : op list;
  }

  let op ?rows_in ?rows_out ?est_out ?ms ?(attrs = []) ?(children = []) name =
    {
      op_name = name;
      op_rows_in = rows_in;
      op_rows_out = rows_out;
      op_est_out = est_out;
      op_ms = ms;
      op_attrs = attrs;
      op_children = children;
    }

  type t = {
    query : string;
    analyze : bool;
    plan : Planner.plan;
    forced : string option;
    trace : Planner.trace;
    ops : op list;
    total_ms : float option;
  }

  (* Mirror of the σ[P] dispatch in {!Query.sigma_within}: cache first
     (a probe hit wins over everything), then the deadline's degradation
     ladder, then the algorithm knob, then the planner. The trace always
     records the planner's own choice so a forced plan can show what was
     bypassed. *)
  let decide (cfg : Engine.config) ~deadline schema p rel =
    let use_cache = cfg.Engine.cache && Cache.is_enabled () in
    let probe =
      if use_cache then
        Cache.probe_traced ~gate:cfg.Engine.costmodel Cache.global schema p rel
      else (None, [])
    in
    let auto_plan, trace =
      Planner.choose_traced ~costmodel:cfg.Engine.costmodel ~probe
        ?domains:cfg.Engine.domains schema p rel
    in
    let bypass reason plan =
      let trace =
        {
          trace with
          Planner.t_rejected =
            ("auto:" ^ Planner.plan_kind auto_plan, reason)
            :: trace.Planner.t_rejected;
        }
      in
      (plan, trace, Some reason)
    in
    match fst probe with
    | Some _ -> (auto_plan, trace, None)
    | None ->
      if Engine.has_deadline deadline then
        bypass
          "deadline set: budgeted queries run on the interruptible \
           sequential window kernel (degradation ladder)"
          Planner.Plan_bnl
      else (
        match cfg.Engine.algorithm with
        | Engine.Alg_auto -> (auto_plan, trace, None)
        | alg ->
          let plan =
            match alg with
            | Engine.Alg_naive -> Planner.Plan_naive
            | Engine.Alg_bnl -> Planner.Plan_bnl
            | Engine.Alg_decompose -> Planner.Plan_decompose
            | Engine.Alg_parallel ->
              Planner.Plan_par_dnc
                {
                  domains =
                    (match cfg.Engine.domains with
                    | Some d -> max 1 d
                    | None -> Parallel.default_domains ());
                }
            | Engine.Alg_auto -> assert false
          in
          bypass
            ("algorithm knob forces " ^ Engine.algorithm_to_string alg)
            plan)

  let make ~query ~analyze ~plan ~forced ~trace ~ops ~total_ms () =
    { query; analyze; plan; forced; trace; ops; total_ms }

  (* {2 Text rendering} *)

  let fnum f =
    if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.2f" f

  let op_line ~analyze depth o =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf o.op_name;
    let cell fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("  " ^ s)) fmt in
    (match o.op_est_out with Some e -> cell "est=%s" (fnum e) | None -> ());
    (match (o.op_rows_in, o.op_rows_out) with
    | Some i, Some out -> cell "rows=%d->%d" i out
    | None, Some out -> cell "rows=%d" out
    | Some i, None -> cell "rows_in=%d" i
    | None, None -> ());
    (if analyze then
       match o.op_ms with Some ms -> cell "%.3fms" ms | None -> ());
    List.iter (fun (k, v) -> cell "%s=%s" k v) o.op_attrs;
    Buffer.contents buf

  let rec op_lines ~analyze depth o =
    op_line ~analyze depth o
    :: List.concat_map (op_lines ~analyze (depth + 1)) o.op_children

  let to_text e =
    let tr = e.trace in
    let header =
      Printf.sprintf "EXPLAIN%s %s" (if e.analyze then " ANALYZE" else "") e.query
    in
    let plan_line =
      Printf.sprintf "plan: %s%s"
        (Planner.plan_to_string e.plan)
        (match e.forced with None -> "" | Some r -> "  [forced: " ^ r ^ "]")
    in
    let inputs =
      [
        "decision inputs:";
        Printf.sprintf "  n=%d dims=%d domains=%d par_threshold=%d big=%b"
          tr.Planner.t_n tr.Planner.t_dims tr.Planner.t_domains
          tr.Planner.t_par_threshold tr.Planner.t_big;
      ]
      @ (match tr.Planner.t_chain with
        | Some (attrs, maximize) ->
          [
            Printf.sprintf "  chain: %s (%s)"
              (String.concat "," attrs)
              (if maximize then "max" else "min");
          ]
        | None -> [ "  chain: none" ])
      @ (match tr.Planner.t_correlation with
        | Some r -> [ Printf.sprintf "  correlation: r=%.2f" r ]
        | None -> [])
      @
      match tr.Planner.t_estimate with
      | Some est ->
        [
          Printf.sprintf "  estimated BMO size: %s (independence model)"
            (fnum est);
        ]
      | None -> []
    in
    let costs =
      match tr.Planner.t_costs with
      | [] -> []
      | cs ->
        let chosen = Planner.plan_kind e.plan in
        "predicted costs (ms):"
        :: List.map
             (fun (alt, ms) ->
               Printf.sprintf "  %-10s %8.3f%s" alt ms
                 (if String.equal alt chosen then "  <- chosen" else ""))
             cs
    in
    let probes =
      match tr.Planner.t_probes with
      | [] -> []
      | ps ->
        "cache probes:"
        :: List.map
             (fun { Cache.tier; hit; ms } ->
               Printf.sprintf "  %-16s %s  %.3f ms" tier
                 (if hit then "hit " else "miss")
                 ms)
             ps
    in
    let rejected =
      match tr.Planner.t_rejected with
      | [] -> []
      | rs ->
        "rejected alternatives:"
        :: List.map (fun (alt, why) -> Printf.sprintf "  %-10s %s" alt why) rs
    in
    let ops =
      match e.ops with
      | [] -> []
      | ops ->
        "operators:"
        :: List.concat_map (op_lines ~analyze:e.analyze 1) ops
    in
    let total =
      match e.total_ms with
      | Some ms when e.analyze -> [ Printf.sprintf "total: %.3f ms" ms ]
      | _ -> []
    in
    (header :: plan_line :: inputs) @ costs @ probes @ rejected @ ops @ total

  (* {2 JSON rendering} *)

  let json_opt f = function None -> Pref_obs.Json.Null | Some v -> f v

  let rec op_to_json o =
    Pref_obs.Json.Obj
      [
        ("name", Pref_obs.Json.Str o.op_name);
        ("rows_in", json_opt (fun i -> Pref_obs.Json.Int i) o.op_rows_in);
        ("rows_out", json_opt (fun i -> Pref_obs.Json.Int i) o.op_rows_out);
        ("est_out", json_opt (fun f -> Pref_obs.Json.Float f) o.op_est_out);
        ("ms", json_opt (fun f -> Pref_obs.Json.Float f) o.op_ms);
        ( "attrs",
          Pref_obs.Json.Obj
            (List.map (fun (k, v) -> (k, Pref_obs.Json.Str v)) o.op_attrs) );
        ("children", Pref_obs.Json.List (List.map op_to_json o.op_children));
      ]

  let to_json e =
    let tr = e.trace in
    let open Pref_obs.Json in
    Obj
      [
        ("query", Str e.query);
        ("analyze", Bool e.analyze);
        ("plan", Str (Planner.plan_to_string e.plan));
        ("plan_kind", Str (Planner.plan_kind e.plan));
        ("forced", json_opt (fun s -> Str s) e.forced);
        ( "inputs",
          Obj
            [
              ("n", Int tr.Planner.t_n);
              ("dims", Int tr.Planner.t_dims);
              ("domains", Int tr.Planner.t_domains);
              ("par_threshold", Int tr.Planner.t_par_threshold);
              ("big", Bool tr.Planner.t_big);
              ( "chain",
                match tr.Planner.t_chain with
                | None -> Null
                | Some (attrs, maximize) ->
                  Obj
                    [
                      ("attrs", List (List.map (fun a -> Str a) attrs));
                      ("maximize", Bool maximize);
                    ] );
              ("correlation", json_opt (fun f -> Float f) tr.Planner.t_correlation);
              ("estimate", json_opt (fun f -> Float f) tr.Planner.t_estimate);
            ] );
        ( "probes",
          List
            (List.map
               (fun { Cache.tier; hit; ms } ->
                 Obj
                   [ ("tier", Str tier); ("hit", Bool hit); ("ms", Float ms) ])
               tr.Planner.t_probes) );
        ( "costs",
          List
            (List.map
               (fun (alt, ms) ->
                 Obj [ ("plan", Str alt); ("predicted_ms", Float ms) ])
               tr.Planner.t_costs) );
        ( "rejected",
          List
            (List.map
               (fun (alt, why) ->
                 Obj [ ("plan", Str alt); ("reason", Str why) ])
               tr.Planner.t_rejected) );
        ("ops", List (List.map op_to_json e.ops));
        ("total_ms", json_opt (fun f -> Float f) e.total_ms);
      ]
end

(* The negotiation reservoir (§4.1): unranked pairs within a tuple set are
   the compromises left open by the preference. *)
let unranked_pairs schema p rows =
  let lt = Pref.compile schema p in
  let names = Pref.attrs p in
  let rec go acc = function
    | [] -> List.rev acc
    | t :: rest ->
      let acc =
        List.fold_left
          (fun acc u ->
            if
              (not (Tuple.equal_on schema names t u))
              && (not (lt t u))
              && not (lt u t)
            then (t, u) :: acc
            else acc)
          acc rest
      in
      go acc rest
  in
  go [] rows
