(** Analytic estimation of BMO result sizes for skylines.

    Under the independent-uniform model (the "independent" family of the
    skyline benchmarks), the expected number of Pareto maxima follows the
    classic recurrence E[S(n,d)] = Σₖ E[S(k,d−1)]/k — Θ(lnᵈ⁻¹ n / (d−1)!).
    Anti-correlated data blows past this, correlated data stays below it;
    the estimator gives the planner and the experiments a neutral baseline
    for "how adaptive is the BMO filter". *)

val harmonic : int -> float
(** H_n = E[S(n, 2)]. *)

val expected_skyline_size : n:int -> dims:int -> float
(** Exact expectation by dynamic programming; O(n·d). Raises on dims < 1. *)

val expected_skyline_size_fast : n:int -> dims:int -> float
(** {!expected_skyline_size} with a planning-time budget: exact DP up to
    n = 4096, the (ln n + γ)^(d−1)/(d−1)! asymptotic (clamped to [1, n])
    above it. Within a few percent of exact everywhere the cost model
    needs it, and O(1) at bench scale. Raises on dims < 1. *)

val log_closed_form : n:int -> dims:int -> float
(** The asymptotic lnᵈ⁻¹(n)/(d−1)! for sanity comparisons. *)
