(** A cost-based plan chooser for BMO queries — the optimizer skeleton the
    paper's roadmap asks for ("cost-based optimization to choose between
    direct implementations of the Pareto operator and divide & conquer
    algorithms", §7).

    Heuristics implemented:
    - tiny inputs run naively (no setup cost);
    - a prioritization headed by a syntactic chain becomes a query cascade
      (Proposition 11): the chain prunes the input to a thin slice first;
    - a Pareto accumulation of same-direction numeric chains is a skyline;
      a sampled correlation estimate picks [KLP75] divide & conquer on
      anti-correlated data (large skylines) and BNL otherwise; on inputs
      big enough to feed every domain (≥ 8192 rows per domain with more
      than one domain configured) the skyline runs as parallel SFS;
    - everything else runs BNL, or parallel divide & conquer when the
      input is big enough.

    All plans compute σ[P](R) exactly; the test suite checks each against
    the naive evaluation. *)

open Pref_relation

type plan =
  | Plan_naive
  | Plan_bnl
  | Plan_sfs of { attrs : string list; maximize : bool }
  | Plan_dnc of { attrs : string list; maximize : bool }
  | Plan_par_dnc of { domains : int }
  | Plan_par_sfs of { attrs : string list; maximize : bool; domains : int }
  | Plan_cascade of Preferences.Pref.t * Preferences.Pref.t
  | Plan_decompose
  | Plan_cache_hit
      (** Serve the stored BMO set from {!Cache.global} verbatim. *)
  | Plan_cache_semantic of string
      (** Derive the result from cached entries via the named reuse
          identity (see {!Cache.reuse}). *)

val plan_to_string : plan -> string

val plan_kind : plan -> string
(** Constructor name only ([naive], [bnl], [sfs], [dnc], [par_dnc],
    [par_sfs], [cascade], [decompose], [cache_hit], [cache_semantic]) —
    the label the [bmo.plan_chosen.*] metrics use. *)

val chain_dims : Preferences.Pref.t -> (string list * bool) option
(** [Some (attrs, maximize)] when the term is a Pareto accumulation of
    same-direction numeric chains over disjoint attributes. *)

val sampled_correlation :
  Schema.t -> string list -> Tuple.t list -> float
(** Pearson correlation of the first two numeric attributes over a sample
    of at most 500 rows; 0 when not estimable. *)

val choose :
  ?cache:bool ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  plan
(** [domains] caps the parallelism considered; defaults to
    {!Parallel.default_domains}. With [domains:1] no parallel plan is ever
    chosen. When the result cache is enabled it is probed first: a cache
    plan beats every evaluation plan. *)

(** {1 Traced choice (EXPLAIN)} *)

type trace = {
  t_n : int;  (** input cardinality *)
  t_dims : int;  (** chain dimensions, or attribute count of the term *)
  t_domains : int;  (** parallelism considered *)
  t_par_threshold : int;  (** rows per domain before fan-out pays *)
  t_big : bool;  (** [t_n >= t_par_threshold * t_domains] with [t_domains > 1] *)
  t_chain : (string list * bool) option;  (** {!chain_dims} of the term *)
  t_correlation : float option;
      (** sampled Pearson correlation, when the chain branch computed it *)
  t_probes : Cache.tier_probe list;  (** per-tier cache probe timings *)
  t_rejected : (string * string) list;
      (** alternatives not taken, with the threshold comparison that
          rejected each *)
  t_estimate : float option;
      (** {!Estimate.expected_skyline_size} under attribute independence *)
}

val choose_traced :
  ?cache:bool ->
  ?probe:Cache.reuse option * Cache.tier_probe list ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  plan * trace
(** The same decision procedure as {!choose} (a test pins them to the
    same answer) with every input it consulted recorded. [probe]
    substitutes an already-measured cache probe so callers that probed
    themselves (EXPLAIN) do not probe twice; without it the cache is
    probed as in {!choose}. *)

val execute :
  Schema.t -> Preferences.Pref.t -> Relation.t -> plan -> Relation.t

val run :
  ?cache:bool ->
  ?domains:int ->
  Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t * plan
(** Choose and execute; returns the chosen plan for EXPLAIN output. Cold
    results are stored into {!Cache.global} when it is enabled and [cache]
    (default [true]) is not overridden to [false]. *)
