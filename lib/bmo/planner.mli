(** A cost-based plan chooser for BMO queries — the optimizer the paper's
    roadmap asks for ("cost-based optimization to choose between direct
    implementations of the Pareto operator and divide & conquer
    algorithms", §7).

    By default every alternative that can evaluate the term — sequential
    BNL/SFS, [KLP75] divide & conquer, chunked parallel evaluation,
    decomposition — is priced by the calibrated {!Cost} model (output
    cardinality from {!Estimate}, bent by a sampled correlation) and the
    cheapest wins. Two structural rules short-circuit the comparison:
    tiny inputs (n ≤ 64) run naively, and a prioritization headed by a
    syntactic chain becomes a query cascade (Proposition 11) because its
    first pass subsumes any alternative's scan. When the result cache is
    enabled it is probed first; semantic reuse only short-circuits when
    the cache's own cost gate predicts the reconstruction beats a cold
    run.

    [~costmodel:false] falls back to the pre-cost-model threshold
    heuristics (anti-correlation picks divide & conquer, ≥ 8192 rows per
    domain picks a parallel plan, everything else BNL) — the
    [\set costmodel off] escape hatch.

    All plans compute σ[P](R) exactly; the test suite checks each against
    the naive evaluation. *)

open Pref_relation

type plan =
  | Plan_naive
  | Plan_bnl
  | Plan_sfs of { attrs : string list; maximize : bool }
  | Plan_dnc of { attrs : string list; maximize : bool }
  | Plan_par_dnc of { domains : int }
  | Plan_par_sfs of { attrs : string list; maximize : bool; domains : int }
  | Plan_cascade of Preferences.Pref.t * Preferences.Pref.t
  | Plan_decompose
  | Plan_identity
      (** σ[P](R) = R is provable (e.g. from {!Preferences.Constraints}):
          return the input unchanged. Never produced by {!choose} — the
      planner sees no integrity constraints — but chosen by the SQL
          executor when the winnow is redundant. *)
  | Plan_cache_hit
      (** Serve the stored BMO set from {!Cache.global} verbatim. *)
  | Plan_cache_semantic of string
      (** Derive the result from cached entries via the named reuse
          identity (see {!Cache.reuse}). *)

val plan_to_string : plan -> string

val plan_kind : plan -> string
(** Constructor name only ([naive], [bnl], [sfs], [dnc], [par_dnc],
    [par_sfs], [cascade], [decompose], [identity], [cache_hit],
    [cache_semantic]) — the label the [bmo.plan_chosen.*] metrics use. *)

val chain_dims : Preferences.Pref.t -> (string list * bool) option
(** [Some (attrs, maximize)] when the term is a Pareto accumulation of
    same-direction numeric chains over disjoint attributes. *)

val sampled_correlation :
  Schema.t -> string list -> Tuple.t list -> float
(** Pearson correlation of the first two numeric attributes over a sample
    of at most 500 rows; 0 when not estimable. *)

val choose :
  ?cache:bool ->
  ?costmodel:bool ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  plan
(** [domains] caps the parallelism considered; defaults to
    {!Parallel.default_domains}. With [domains:1] no parallel plan is ever
    chosen. When the result cache is enabled it is probed first: an exact
    hit beats every evaluation plan, and a semantic match wins only when
    its reconstruction is predicted to. [costmodel] (default [true])
    selects between cost-based choice and the legacy threshold
    heuristics. *)

(** {1 Traced choice (EXPLAIN)} *)

type trace = {
  t_n : int;  (** input cardinality *)
  t_dims : int;  (** chain dimensions, or attribute count of the term *)
  t_domains : int;  (** parallelism considered *)
  t_par_threshold : int;  (** rows per domain before fan-out pays *)
  t_big : bool;  (** [t_n >= t_par_threshold * t_domains] with [t_domains > 1] *)
  t_chain : (string list * bool) option;  (** {!chain_dims} of the term *)
  t_correlation : float option;
      (** sampled Pearson correlation, when the decision computed it *)
  t_probes : Cache.tier_probe list;  (** per-tier cache probe timings *)
  t_rejected : (string * string) list;
      (** alternatives not taken, each with the predicted-cost (or
          threshold) comparison that rejected it *)
  t_estimate : float option;
      (** {!Estimate.expected_skyline_size_fast} under independence *)
  t_costs : (string * float) list;
      (** predicted milliseconds for every alternative the cost model
          priced, cheapest first; empty under [~costmodel:false] and on
          the cache / tiny-input short-circuits *)
}

val choose_traced :
  ?cache:bool ->
  ?costmodel:bool ->
  ?probe:Cache.reuse option * Cache.tier_probe list ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  plan * trace
(** The same decision procedure as {!choose} (they share it; a test pins
    them to the same answer) with every input it consulted recorded.
    [probe] substitutes an already-measured cache probe so callers that
    probed themselves (EXPLAIN) do not probe twice; without it the cache
    is probed as in {!choose}. *)

val execute :
  Schema.t -> Preferences.Pref.t -> Relation.t -> plan -> Relation.t

val run :
  ?cache:bool ->
  ?costmodel:bool ->
  ?domains:int ->
  Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t * plan
(** Choose and execute; returns the chosen plan for EXPLAIN output. Cold
    results are stored into {!Cache.global} when it is enabled and [cache]
    (default [true]) is not overridden to [false]. While
    {!Cost.set_learning} is on, the measured runtime and the observed
    Prop. 13 filter effect are folded back into the cost model. *)
