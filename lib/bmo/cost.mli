(** Calibrated cost model for BMO evaluation alternatives.

    Prices every plan the {!Planner} can choose — and every cache-tier
    reconstruction the {!Cache} can serve — in milliseconds, so they can
    be compared on one scale instead of via fixed thresholds.  Costs are
    (dominant term count) × (per-operation constant); term counts come
    from {!Estimate.expected_skyline_size_fast} bent by the sampled
    correlation, constants from compiled-in defaults, a calibration file,
    {!calibrate} micro-benchmarks, or online {!observe} refinement.

    See DESIGN.md "Cost-based planning" for the model and its
    calibration story. *)

(** {1 Constants} *)

type constants = {
  c_cmp_ns : float;  (** one dominance test, per dimension *)
  c_row_ns : float;  (** per-row scan / window bookkeeping *)
  c_sort_ns : float;  (** per element per log2 n of sorting *)
  c_dnc_ns : float;  (** divide & conquer, per row per log2 n per extra dim *)
  c_group_ns : float;  (** grouping/partitioning, per row *)
  c_derive_ns : float;  (** semantic-cache reconstruction, per scanned row *)
  c_probe_us : float;  (** one cache-tier probe (hash + fingerprint) *)
  c_par_fixed_us : float;  (** fixed overhead of any parallel plan *)
  c_par_domain_us : float;  (** per-domain spawn + merge overhead *)
  c_par_pessimism : float;  (** multiplier on the parallel scan term *)
  c_shard_rtt_us : float;
      (** per-shard scatter dispatch + gather overhead (one wire round
          trip incl. frame encode/decode), used by {!scatter_gather_ms} *)
}

val defaults : constants
(** Fitted against BENCH_2026-08-06.json on the reference container. *)

val current : unit -> constants
val install : constants -> unit

val reset : unit -> unit
(** Back to {!defaults}; clears learned factors, filter-effect table and
    the learning flag. Tests use this to stay order-independent. *)

val calibrate : unit -> constants
(** Micro-benchmark the scan-side constants on this machine, clamp each
    to [default/8, default×8], install and return the result. Parallel
    overheads keep their defaults. *)

val load : string -> (constants, string) result
(** Read a [key=value] calibration file (blank lines and [#] comments
    ignored; unknown keys skipped; [factor.<kind>] lines restore learned
    factors), install and return the merged constants. The
    [PREF_COST_CALIBRATION] environment variable names a file to load at
    startup. *)

val save : string -> (unit, string) result
val to_assoc : unit -> (string * float) list
(** Constants plus learned [factor.<kind>] entries, for BENCH_JSON meta
    and the calibration file. *)

(** {1 Pricing} *)

type workload = {
  n : int;
  dims : int;
  domains : int;
  correlation : float;  (** sampled Pearson r; 0. when unknown *)
}

val effective_output : n:int -> dims:int -> correlation:float -> float
(** Expected BMO result size: the independent-uniform expectation
    interpolated toward n under anti-correlation and toward 1 under
    positive correlation, blended with observed Prop. 13 filter-effect
    ratios when online learning has recorded any. Clamped to [1, n]. *)

val predict_ms : kind:string -> workload -> float
(** Predicted wall time of one plan kind ([naive], [bnl], [sfs], [dnc],
    [par_dnc], [par_sfs], [cascade], [decompose], [refine] — a re-winnow
    of a cached BMO seed, [n] = seed size — or [delta] — one continuous-
    query patch, [n] = maintained result + shadow rows), including any
    learned correction factor. Raises [Invalid_argument] on unknown
    kinds. *)

(** {1 Cache-side pricing} *)

val probe_overhead_ms : unit -> float

val derive_prior_ms : rows:int -> dims:int -> float
(** Prior-prefix reconstruction over a cached result of [rows] tuples. *)

val derive_dunion_ms : rows:int -> float
(** Dunion-inter reconstruction over [rows] cached tuples in total. *)

val derive_pareto_overhead_ms : n:int -> float
(** What pareto-restrict reconstruction costs {e on top of} a cold run:
    it re-groups and re-filters the full [n]-row base relation. *)

val semantic_gate_slack_ms : float
(** Reconstructions predicted to cost at most this much more than a cold
    run are still served — below the model's resolution at tiny n. *)

(** {1 Scatter-gather pricing}

    Partition-wise evaluation (Props. 8/10/12) over N shards: the
    scatter phase costs the slowest shard (they run in parallel), the
    gather phase one dispatch round trip per shard plus — unless the
    partitioning proves per-shard results disjoint — a final BNL pass
    over the union of the per-shard BMO sets. The router's EXPLAIN uses
    these to price its plan. *)

val shard_overhead_ms : shards:int -> float
(** Fan-out/fan-in dispatch cost: [shards × c_shard_rtt_us]. *)

val merge_ms : rows:int -> dims:int -> float
(** One final BNL pass over [rows] gathered tuples. *)

type scatter_gather = {
  sg_shards : int;
  sg_slowest_ms : float;  (** max over the per-shard predictions *)
  sg_dispatch_ms : float;  (** fan-out/fan-in round trips *)
  sg_merge_ms : float;  (** final BNL pass; 0 when the merge is skipped *)
  sg_total_ms : float;
}

val scatter_gather_ms :
  per_shard_ms:float list -> merge_rows:int -> dims:int -> merge:bool ->
  scatter_gather
(** Price one scatter-gather plan from the per-shard predictions (one
    entry per shard) and the expected size of the gathered union. *)

(** {1 Online refinement} *)

val learning : unit -> bool
val set_learning : bool -> unit
(** Off by default so plan choices stay deterministic; {!Planner.run}
    only feeds measurements back while this is on. *)

val observe : kind:string -> workload -> ms:float -> unit
(** Fold one measured runtime into the plan kind's EMA correction factor
    (clamped to [1/8, 8]). *)

val observe_filter : dims:int -> n_in:int -> n_out:int -> unit
(** Record one Prop. 13 filter-effect observation (result/input ratio). *)

val factor : string -> float
(** Current correction factor for a plan kind (1. when unlearned). *)
