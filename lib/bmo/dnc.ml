open Pref_relation

(* Maxima of a set of d-dimensional float vectors, every coordinate to be
   maximised: v dominates w iff v >= w pointwise and v <> w. *)

let dominates v w =
  let d = Array.length v in
  let rec ge i = i >= d || (v.(i) >= w.(i) && ge (i + 1)) in
  let rec gt i = i < d && (v.(i) > w.(i) || gt (i + 1)) in
  ge 0 && gt 0

let naive_maxima points =
  List.filter
    (fun (v, _) -> not (List.exists (fun (w, _) -> dominates w v) points))
    points

let threshold = 32

let rec maxima_points points =
  let n = List.length points in
  if n <= threshold then naive_maxima points
  else
    (* Split on the first coordinate at a value boundary near the median so
       the two halves are strictly separated: no low-half point can dominate
       a high-half point. *)
    let sorted =
      List.stable_sort (fun (v, _) (w, _) -> Float.compare w.(0) v.(0)) points
    in
    let arr = Array.of_list sorted in
    let mid = n / 2 in
    let pivot = (fst arr.(mid)).(0) in
    let high = ref [] and low = ref [] in
    Array.iter
      (fun ((v, _) as p) ->
        if v.(0) > pivot then high := p :: !high else low := p :: !low)
      arr;
    if !high = [] || !low = [] then
      (* All points share the first coordinate value near the median; a
         strict split is impossible, fall back to the quadratic base case. *)
      naive_maxima points
    else
      let mh = maxima_points !high in
      let ml = maxima_points !low in
      (* A point of the low half survives iff no maximal high point
         dominates it (high points cannot be dominated by low points). *)
      let ml' =
        List.filter
          (fun (v, _) -> not (List.exists (fun (w, _) -> dominates w v) mh))
          ml
      in
      mh @ ml'

let maxima ~dims rows =
  let points = List.map (fun t -> (dims t, t)) rows in
  let kept = maxima_points points in
  (* Restore input order for deterministic comparisons with other
     algorithms. *)
  let module H = Hashtbl in
  let tbl = H.create (List.length kept) in
  List.iter (fun (_, t) -> H.replace tbl (Tuple.hash t, t) ()) kept;
  List.filter (fun t -> H.mem tbl (Tuple.hash t, t)) rows

let dims_of schema attrs ~maximize =
  let idx = List.map (Schema.index_of_exn schema) attrs in
  let sign = if maximize then 1.0 else -1.0 in
  fun t ->
    Array.of_list
      (List.map
         (fun i ->
           match Value.as_float (Tuple.get t i) with
           | Some f -> sign *. f
           | None -> Float.neg_infinity)
         idx)

let query schema ~attrs ~maximize rel =
  Pref_obs.Span.with_span "bmo.dnc" (fun () ->
      let dims = dims_of schema attrs ~maximize in
      let rows = Relation.rows rel in
      if Pref_obs.Control.is_enabled () then begin
        let best, ms = Pref_obs.Span.timed (fun () -> maxima ~dims rows) in
        (* vector dominance is not routed through Dominance.t, so the test
           count is not tracked here *)
        Obs.record_query ~algorithm:"dnc" ~n_in:(List.length rows)
          ~n_out:(List.length best) ~comparisons:(-1) ~ms;
        Relation.make (Relation.schema rel) best
      end
      else Relation.make (Relation.schema rel) (maxima ~dims rows))
