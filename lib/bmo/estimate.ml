(* Analytic skyline-cardinality estimation.

   For n points drawn independently and uniformly per dimension (no ties),
   the expected number of d-dimensional Pareto maxima satisfies the classic
   recurrence  E[S(n, d)] = sum_{k=1..n} E[S(k, d-1)] / k  with
   E[S(n, 1)] = 1, i.e. the generalized harmonic numbers:
   E[S(n, 2)] = H_n ~ ln n, and in general Theta(ln^(d-1) n / (d-1)!).
   The planner uses this to anticipate window blow-up. *)

let harmonic n =
  let rec go k acc = if k > n then acc else go (k + 1) (acc +. (1. /. float_of_int k)) in
  go 1 0.

let expected_skyline_size ~n ~dims =
  if n <= 0 then 0.
  else if dims <= 0 then invalid_arg "Estimate.expected_skyline_size: dims < 1"
  else if dims = 1 then 1.
  else begin
    (* dynamic programming over the recurrence; O(n * dims) *)
    let e = Array.make (n + 1) 1. in
    (* e.(k) = E[S(k, current_d)]; start at d = 1 where it is 1 for k >= 1 *)
    e.(0) <- 0.;
    for _d = 2 to dims do
      let acc = ref 0. in
      let next = Array.make (n + 1) 0. in
      for k = 1 to n do
        acc := !acc +. (e.(k) /. float_of_int k);
        next.(k) <- !acc
      done;
      Array.blit next 0 e 0 (n + 1)
    done;
    e.(n)
  end

(* The exact DP costs O(n * dims); at planning time the input can be
   hundreds of thousands of rows and the estimate only needs to be right
   to within the cost model's own error.  Below the cutoff we return the
   exact expectation, above it the (ln n + gamma)^(d-1)/(d-1)! asymptotic
   with the Euler-Mascheroni correction, clamped to [1, n]. *)
let approx_cutoff = 4096

let expected_skyline_size_fast ~n ~dims =
  if n <= approx_cutoff then expected_skyline_size ~n ~dims
  else if dims = 1 then 1.
  else begin
    let gamma = 0.5772156649015329 in
    let rec fact k = if k <= 1 then 1. else float_of_int k *. fact (k - 1) in
    let est =
      Float.pow (log (float_of_int n) +. gamma) (float_of_int (dims - 1))
      /. fact (dims - 1)
    in
    Float.min (float_of_int n) (Float.max 1. est)
  end

let log_closed_form ~n ~dims =
  (* the Theta(ln^(d-1) n / (d-1)!) asymptotic, for sanity checks *)
  if n <= 1 then 1.
  else begin
    let rec fact k = if k <= 1 then 1. else float_of_int k *. fact (k - 1) in
    Float.pow (log (float_of_int n)) (float_of_int (dims - 1))
    /. fact (dims - 1)
  end
