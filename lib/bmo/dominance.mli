(** Dominance tests — the 'better-than' checks driving BMO evaluation.

    [dom a b] holds when tuple [a] is strictly better than tuple [b]
    ([b <_P a]). All BMO algorithms are parameterised over such a test so
    they work for every preference constructor.

    The {!vec} form is the hot-loop contract of the array-based kernels:
    each tuple is projected once onto the preference's attributes and every
    dominance test then reads a short flat vector — no per-test name lookup
    and no closure-tree walk over unrelated columns. For pure numeric
    skylines ({!Preferences.Pref.chain_dims}) over numeric columns an
    additional unboxed [float array] path applies, with NULL encoded as
    [nan] (a number beats NULL, two NULLs tie). *)

open Pref_relation

type t = Tuple.t -> Tuple.t -> bool

val of_pref : Schema.t -> Preferences.Pref.t -> t
(** Compiled dominance test of a preference term. *)

val counting : t -> t * (unit -> int)
(** Instrument a test with a comparison counter, for the cost experiments. *)

(** {1 Vectorized dominance} *)

type vec = {
  attrs : string list;  (** projected attributes, in slot order *)
  width : int;
  project : Tuple.t -> Value.t array;  (** per-tuple projection, done once *)
  better : Value.t array -> Value.t array -> bool;
      (** dominance over projection vectors *)
  floats : (Tuple.t -> float array) option;
      (** [Some proj] when the preference is a pure numeric skyline over
          numeric columns: {!float_dominates} on [proj t] is then exactly
          [better] (larger is better; the projection folds in direction). *)
}

val of_pref_vec : Schema.t -> Preferences.Pref.t -> vec

val float_dominates : float array -> float array -> bool
(** Pointwise float dominance: >= everywhere, > somewhere; [nan] encodes
    NULL (strictly below every number, tied with itself). *)
