(* Fixed-size Domain work pool.

   [create ~domains:d] spawns [d - 1] worker domains blocked on a shared
   job queue; the caller itself acts as domain 0 during {!map}, so exactly
   [d] domains execute jobs and [domains:1] degenerates to a plain
   sequential loop with no domain spawned at all.

   Jobs are closures; {!map} enqueues one job per element, participates in
   draining the queue, then blocks until every job of the call has
   finished.  Results land in a per-call array indexed by input position,
   so the output order is deterministic regardless of which domain ran
   which job.  The first exception raised by any job is re-raised in the
   caller once the batch has drained. *)

type t = {
  domains : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  nonempty : Condition.t;  (* queue became non-empty, or shutdown *)
  finished : Condition.t;  (* some job of some batch completed *)
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
}

let self_key = Domain.DLS.new_key (fun () -> 0)
let self () = Domain.DLS.get self_key

exception
  Job_error of { index : int; domain : int; exn : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Job_error { index; domain; exn; _ } ->
      Some
        (Printf.sprintf "Pool.Job_error: job %d on domain %d: %s" index domain
           (Printexc.to_string exn))
    | _ -> None)

(* Cross-domain test hook: simulate a poisoned chunk.  Atomic so worker
   domains see the test thread's write without a synchronisation point. *)
let fault_injection : (int -> unit) option Atomic.t = Atomic.make None
let set_fault_injection f = Atomic.set fault_injection f

let worker pool id () =
  Domain.DLS.set self_key id;
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.nonempty pool.m
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.m
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.m;
      job ();
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      domains;
      workers = [||];
      m = Mutex.create ();
      nonempty = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      stopped = false;
    }
  in
  pool.workers <- Array.init (domains - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let size pool = pool.domains

let shutdown pool =
  Mutex.lock pool.m;
  pool.stopped <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.m;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let map pool f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let error = ref None in
    let remaining = ref n in
    let job i () =
      (try
         (match Atomic.get fault_injection with
         | Some inject -> inject i
         | None -> ());
         results.(i) <- Some (f items.(i))
       with e ->
         (* wrap with provenance: the submitting [map] call gets one typed
            error for its query; nothing propagates into the worker loop,
            so a poisoned chunk can never kill a pool (or server) domain *)
         let wrapped =
           match e with
           | Job_error _ -> e
           | e ->
             Job_error
               {
                 index = i;
                 domain = self ();
                 exn = e;
                 backtrace = Printexc.get_backtrace ();
               }
         in
         Mutex.lock pool.m;
         (match !error with None -> error := Some wrapped | Some _ -> ());
         Mutex.unlock pool.m);
      Mutex.lock pool.m;
      decr remaining;
      if !remaining = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.m
    in
    Mutex.lock pool.m;
    for i = 0 to n - 1 do
      Queue.push (job i) pool.queue
    done;
    Condition.broadcast pool.nonempty;
    (* The caller drains jobs alongside the workers (it IS domain 0), then
       waits for stragglers still running on worker domains. *)
    let rec drive () =
      if not (Queue.is_empty pool.queue) then begin
        let j = Queue.pop pool.queue in
        Mutex.unlock pool.m;
        j ();
        Mutex.lock pool.m;
        drive ()
      end
    in
    drive ();
    while !remaining > 0 do
      Condition.wait pool.finished pool.m
    done;
    Mutex.unlock pool.m;
    (match !error with Some e -> raise e | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end

let chunks ~domains n =
  let k = max 1 (min domains n) in
  let base = n / k and extra = n mod k in
  Array.init k (fun i ->
      let off = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (off, len))
