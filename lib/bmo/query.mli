(** Front door for BMO preference queries σ[P](R) (Definition 15).

    Dispatches to one of the interchangeable evaluation algorithms. All
    produce the same tuple set (the test suite checks this); they differ in
    cost and in row order / duplicate handling ([Alg_decompose] removes
    duplicate rows). *)

open Pref_relation

type algorithm =
  | Alg_naive  (** exhaustive better-than tests, O(n²) *)
  | Alg_bnl  (** block-nested-loops window algorithm *)
  | Alg_decompose  (** divide & conquer via Propositions 8–12 *)
  | Alg_parallel  (** chunked multi-domain evaluation ({!Parallel}) *)
  | Alg_auto  (** cost-based choice by {!Planner} *)

val algorithm_of_string : string -> algorithm option
val algorithm_to_string : algorithm -> string

val sigma :
  ?algorithm:algorithm ->
  ?cache:bool ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t
(** σ[P](R): all best-matching tuples, and only those. Default: BNL.
    [domains] sets the degree of parallelism for [Alg_parallel] and caps
    what [Alg_auto] may plan (default {!Parallel.default_domains}).
    When {!Cache.global} is enabled the query first consults the result
    cache (exact and semantic tiers) and stores cold results; [cache:false]
    opts this one call out. With the cache disabled the flag is dead and
    the evaluation path is byte-for-byte the old one. *)

val sigma_profiled :
  ?algorithm:algorithm ->
  ?cache:bool ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t * Pref_obs.Profile.t
(** [sigma] plus a query profile: input/output cardinality, the algorithm
    actually run (including the planner's choice under [Alg_auto]), exact
    dominance-test counts for [Alg_naive]/[Alg_bnl]/[Alg_parallel] ([-1]
    otherwise), and compile/plan/evaluate phase timings — for
    [Alg_parallel] additionally the local/merge phase split, chunk sizes
    and per-chunk test counts. The profile is built
    unconditionally — it does not require {!Pref_obs.Control} to be on;
    the global flag only decides whether the run also feeds the
    engine-wide metrics and spans. A query served by the result cache
    reports algorithm [cache:exact] or [cache:semantic:<identity>] with a
    single [cache_lookup] phase. *)

val sigma_groupby :
  ?algorithm:algorithm ->
  Schema.t ->
  Preferences.Pref.t ->
  by:string list ->
  Relation.t ->
  Relation.t
(** σ[P groupby A](R) (Definition 16). *)

val sigma_levels :
  Schema.t ->
  Preferences.Pref.t ->
  levels:int ->
  Relation.t ->
  Relation.t
(** The tuples within the top [levels] levels of the database better-than
    graph: [sigma_levels ~levels:1] is σ[P](R); larger bounds relax the
    query level by level — the engine-side counterpart of
    [BUT ONLY LEVEL <= k]. Raises on [levels < 1]. *)

val perfect_matches :
  Schema.t ->
  Preferences.Pref.t ->
  ideal:(Tuple.t -> bool) ->
  Relation.t ->
  Relation.t
(** The perfect matches (Definition 14b) within the BMO result: tuples that
    are maximal in the realm of wishes itself. [ideal] decides membership in
    max(P) over the full domain — e.g. "intrinsic level = 1" or "distance =
    0". *)
