(** Front door for BMO preference queries σ[P](R) (Definition 15).

    Dispatches to one of the interchangeable evaluation algorithms. All
    produce the same tuple set (the test suite checks this); they differ in
    cost and in row order / duplicate handling ([Alg_decompose] removes
    duplicate rows).

    The [_cfg] entry points take the unified {!Engine.config} record and
    are the primary API: they return the result together with
    {!Engine.flags} (and {!run_cfg} the full {!Engine.result}); the
    [_within] variants additionally accept an already-started deadline so
    several sub-queries can draw down one budget. The plain [sigma] /
    [sigma_profiled] / [sigma_groupby] functions are deprecated one-line
    shims over these via {!Compat.legacy_cfg} — same signatures and
    behaviour as before the engine API existed, kept so old call sites
    compile. *)

open Pref_relation

type algorithm = Engine.algorithm =
  | Alg_naive  (** exhaustive better-than tests, O(n²) *)
  | Alg_bnl  (** block-nested-loops window algorithm *)
  | Alg_decompose  (** divide & conquer via Propositions 8–12 *)
  | Alg_parallel  (** chunked multi-domain evaluation ({!Parallel}) *)
  | Alg_auto  (** cost-based choice by {!Planner} *)

val algorithm_of_string : string -> algorithm option
val algorithm_to_string : algorithm -> string

(** {1 Engine entry points} *)

val sigma_within :
  deadline:Engine.deadline ->
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t * Engine.flags
(** σ[P](R) under a configuration and a running deadline. The cache is
    consulted first (when [cfg.cache] and the global cache is enabled);
    on a miss, a query with a live deadline evaluates on the
    interruptible sequential window kernel ({!Bnl.maxima_deadline})
    regardless of [cfg.algorithm] — the domain fan-out cannot be
    cancelled — and degrades to the current window with [partial] set
    when the budget expires. Partial results are never stored in the
    cache. [cfg.max_rows] caps the returned rows and sets [truncated]. *)

val sigma_cfg :
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t * Engine.flags
(** {!sigma_within} with the deadline started now from
    [cfg.deadline_ms]. *)

val sigma_profiled_within :
  deadline:Engine.deadline ->
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t * Engine.flags * Pref_obs.Profile.t
(** {!sigma_within} plus a query profile: input/output cardinality, the
    algorithm actually run (including the planner's choice under
    [Alg_auto], [cache:*] for cache hits, [bnl:degraded] for
    deadline-expired queries), dominance-test counts where the kernel
    reports them, and per-phase timings. The profile is built
    unconditionally — {!Pref_obs.Control} only decides whether the run
    also feeds the engine-wide metrics and spans. *)

val sigma_profiled_cfg :
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t * Engine.flags * Pref_obs.Profile.t

val run_within :
  deadline:Engine.deadline ->
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Engine.Result.t
(** The structured-result front door: {!sigma_within} (or
    {!sigma_profiled_within} when [cfg.profile]) packaged as an
    {!Engine.Result.t} — rows, flags, the profile when one was built,
    and the executed plan identifier. *)

val run_cfg :
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Engine.Result.t
(** {!run_within} with the deadline started now from
    [cfg.deadline_ms]. *)

val sigma_groupby_within :
  deadline:Engine.deadline ->
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  by:string list ->
  Relation.t ->
  Relation.t * Engine.flags
(** σ[P groupby A](R) (Definition 16) under a configuration: every group
    runs as a sub-query through {!sigma_within}, so groups share the
    result cache, the domain setting and one deadline budget; flags are
    the union over groups and [cfg.max_rows] caps the combined result.
    With cache off, no deadline and default domains this takes the exact
    pre-engine evaluation path (one shared dominance compile, no cache
    probes). *)

val sigma_groupby_cfg :
  Engine.config ->
  Schema.t ->
  Preferences.Pref.t ->
  by:string list ->
  Relation.t ->
  Relation.t * Engine.flags

(** {1 Compatibility wrappers}

    Deprecated: thin shims over the [_cfg] API via {!Compat.legacy_cfg}.
    Prefer passing an {!Engine.config}. *)

val sigma :
  ?algorithm:algorithm ->
  ?cache:bool ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t
(** σ[P](R): all best-matching tuples, and only those. Default: BNL.
    [domains] sets the degree of parallelism for [Alg_parallel] and caps
    what [Alg_auto] may plan (default {!Parallel.default_domains}).
    When {!Cache.global} is enabled the query first consults the result
    cache (exact and semantic tiers) and stores cold results; [cache:false]
    opts this one call out. With the cache disabled the flag is dead and
    the evaluation path is byte-for-byte the old one. *)

val sigma_profiled :
  ?algorithm:algorithm ->
  ?cache:bool ->
  ?domains:int ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t * Pref_obs.Profile.t
(** [sigma] plus a query profile — {!sigma_profiled_cfg} without a
    deadline or row cap, flags dropped. A query served by the result
    cache reports algorithm [cache:exact] or [cache:semantic:<identity>]
    with a single [cache_lookup] phase. *)

val sigma_groupby :
  ?algorithm:algorithm ->
  Schema.t ->
  Preferences.Pref.t ->
  by:string list ->
  Relation.t ->
  Relation.t
(** σ[P groupby A](R) (Definition 16). *)

val sigma_levels :
  Schema.t ->
  Preferences.Pref.t ->
  levels:int ->
  Relation.t ->
  Relation.t
(** The tuples within the top [levels] levels of the database better-than
    graph: [sigma_levels ~levels:1] is σ[P](R); larger bounds relax the
    query level by level — the engine-side counterpart of
    [BUT ONLY LEVEL <= k]. Raises on [levels < 1]. *)

val perfect_matches :
  Schema.t ->
  Preferences.Pref.t ->
  ideal:(Tuple.t -> bool) ->
  Relation.t ->
  Relation.t
(** The perfect matches (Definition 14b) within the BMO result: tuples that
    are maximal in the realm of wishes itself. [ideal] decides membership in
    max(P) over the full domain — e.g. "intrinsic level = 1" or "distance =
    0". *)
