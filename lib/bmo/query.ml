open Pref_relation

type algorithm = Engine.algorithm =
  | Alg_naive
  | Alg_bnl
  | Alg_decompose
  | Alg_parallel
  | Alg_auto

let algorithm_of_string = Engine.algorithm_of_string
let algorithm_to_string = Engine.algorithm_to_string

(* [max_rows] caps the final result; the flag records that rows were
   dropped so callers can surface it (the wire protocol's [truncated]). *)
let cap_rows max_rows rel =
  match max_rows with
  | None -> (rel, false)
  | Some k ->
    let rows = Relation.rows rel in
    if List.length rows <= k then (rel, false)
    else
      ( Relation.make (Relation.schema rel)
          (List.filteri (fun i _ -> i < k) rows),
        true )

let evaluate (cfg : Engine.config) ~use_cache schema p rel =
  match cfg.algorithm with
  | Alg_naive -> Naive.query schema p rel
  | Alg_bnl -> Bnl.query schema p rel
  | Alg_decompose -> Decompose.eval schema p rel
  | Alg_parallel -> Parallel.query ?domains:cfg.domains schema p rel
  | Alg_auto ->
    fst
      (Planner.run ~cache:use_cache ~costmodel:cfg.costmodel
         ?domains:cfg.domains schema p rel)

let sigma_within ~deadline (cfg : Engine.config) schema p rel =
  let use_cache = cfg.cache && Cache.is_enabled () in
  let cached =
    if use_cache then
      Cache.lookup ~gate:cfg.costmodel Cache.global schema p rel
    else None
  in
  let result, flags =
    match cached with
    | Some (result, _) -> (result, Engine.complete)
    | None ->
      if Engine.has_deadline deadline then begin
        (* Degradation ladder: a budgeted query runs on the interruptible
           sequential window kernel regardless of [cfg.algorithm] — the
           domain fan-out cannot be cancelled mid-batch, the window scan
           can stop at any candidate.  On expiry the window so far is the
           exact BMO set of the scanned prefix: sound, merely partial. *)
        let dom = Dominance.of_pref schema p in
        let best, timed_out =
          Bnl.maxima_deadline ~deadline dom (Relation.rows rel)
        in
        let r = Relation.make (Relation.schema rel) best in
        if timed_out then (r, { Engine.partial = true; truncated = false })
        else begin
          if use_cache then Cache.store Cache.global schema p rel r;
          (r, Engine.complete)
        end
      end
      else begin
        let result = evaluate cfg ~use_cache schema p rel in
        (* the planner stores its own cold results *)
        if use_cache && cfg.algorithm <> Alg_auto then
          Cache.store Cache.global schema p rel result;
        (result, Engine.complete)
      end
  in
  let result, truncated = cap_rows cfg.max_rows result in
  (result, Engine.union_flags flags { partial = false; truncated })

let sigma_cfg cfg schema p rel =
  sigma_within ~deadline:(Engine.deadline_of cfg) cfg schema p rel

let sigma ?algorithm ?cache ?domains schema p rel =
  fst (sigma_cfg (Compat.legacy_cfg ?algorithm ?cache ?domains ()) schema p rel)

let sigma_profiled_within ~deadline (cfg : Engine.config) schema p rel =
  Pref_obs.Span.with_span "bmo.sigma_profiled" @@ fun () ->
  let rows = Relation.rows rel in
  let input_rows = List.length rows in
  let remake best = Relation.make (Relation.schema rel) best in
  let use_cache = cfg.cache && Cache.is_enabled () in
  let finish ~phases ~attrs ~comparisons ~alg_name (result, flags) =
    let result, truncated = cap_rows cfg.max_rows result in
    let flags =
      Engine.union_flags flags { Engine.partial = false; truncated }
    in
    let output_rows = Relation.cardinality result in
    let profile =
      Pref_obs.Profile.make ~phases
        ~attrs:(attrs @ Engine.flags_attrs flags)
        ~comparisons ~algorithm:alg_name ~input_rows ~output_rows ()
    in
    (result, flags, profile)
  in
  let cached =
    if not use_cache then None
    else
      let r, ms =
        Pref_obs.Span.timed (fun () ->
            Cache.lookup ~gate:cfg.costmodel Cache.global schema p rel)
      in
      Option.map (fun x -> (x, ms)) r
  in
  match cached with
  | Some ((result, reuse), lookup_ms) ->
    let alg_name, attrs =
      match reuse with
      | Cache.Exact -> ("cache:exact", [ ("cache", "exact") ])
      | Cache.Semantic desc ->
        ("cache:semantic:" ^ desc, [ ("cache", "semantic:" ^ desc) ])
    in
    Obs.record_query ~algorithm:alg_name ~n_in:input_rows
      ~n_out:(Relation.cardinality result) ~comparisons:(-1) ~ms:lookup_ms;
    finish
      ~phases:[ Pref_obs.Profile.phase "cache_lookup" lookup_ms ]
      ~attrs ~comparisons:(-1) ~alg_name (result, Engine.complete)
  | None when Engine.has_deadline deadline ->
    (* same degradation path as {!sigma_within}, with phase timings *)
    let dom_raw, compile_ms =
      Pref_obs.Span.timed (fun () -> Dominance.of_pref schema p)
    in
    let dom, comparisons = Dominance.counting dom_raw in
    let (best, timed_out), eval_ms =
      Pref_obs.Span.timed (fun () -> Bnl.maxima_deadline ~deadline dom rows)
    in
    let result = remake best in
    if not timed_out && use_cache then
      Cache.store Cache.global schema p rel result;
    let comparisons = comparisons () in
    let alg_name = if timed_out then "bnl:degraded" else "bnl" in
    Obs.record_query ~algorithm:alg_name ~n_in:input_rows
      ~n_out:(Relation.cardinality result) ~comparisons ~ms:eval_ms;
    finish
      ~phases:
        [
          Pref_obs.Profile.phase "compile" compile_ms;
          Pref_obs.Profile.phase "evaluate" eval_ms;
        ]
      ~attrs:[] ~comparisons ~alg_name
      (result, { Engine.partial = timed_out; truncated = false })
  | None ->
    let dom_raw, compile_ms =
      Pref_obs.Span.timed (fun () -> Dominance.of_pref schema p)
    in
    let dom, comparisons = Dominance.counting dom_raw in
    let alg_name, result, extra_phases, attrs, eval_ms, comparisons_of =
      match cfg.algorithm with
      | Alg_naive ->
        let best, ms = Pref_obs.Span.timed (fun () -> Naive.maxima dom rows) in
        ("naive", remake best, [], [], ms, comparisons)
      | Alg_bnl ->
        let (best, peak), ms =
          Pref_obs.Span.timed (fun () -> Bnl.maxima_traced dom rows)
        in
        Pref_obs.Metrics.set_max Obs.window_peak (float_of_int peak);
        ( "bnl",
          remake best,
          [],
          [ ("window_peak", string_of_int peak) ],
          ms,
          comparisons )
      | Alg_decompose ->
        (* decomposition compiles its own sub-preference dominance tests, so
           the explicit counter does not see them *)
        let r, ms =
          Pref_obs.Span.timed (fun () -> Decompose.eval schema p rel)
        in
        ("decompose", r, [], [], ms, fun () -> -1)
      | Alg_parallel ->
        let d =
          match cfg.domains with
          | Some d -> max 1 d
          | None -> Parallel.default_domains ()
        in
        let vec = Dominance.of_pref_vec schema p in
        let rows_arr = Array.of_list rows in
        let (best, stats), ms =
          Pref_obs.Span.timed (fun () ->
              Parallel.maxima_dnc ~domains:d vec rows_arr)
        in
        Pref_obs.Metrics.incr Obs.par_queries;
        Array.iter
          (fun c ->
            Pref_obs.Metrics.observe Obs.par_chunk_rows
              (float_of_int c.Parallel.c_rows))
          stats.Parallel.s_chunks;
        Pref_obs.Metrics.observe Obs.par_merge_ms stats.Parallel.s_merge_ms;
        ( "par_dnc",
          remake (Array.to_list best),
          [
            Pref_obs.Profile.phase "local" stats.Parallel.s_local_ms;
            Pref_obs.Profile.phase "merge" stats.Parallel.s_merge_ms;
          ],
          Parallel.stats_attrs stats,
          ms,
          fun () -> Parallel.total_tests stats )
      | Alg_auto ->
        let plan, plan_ms =
          Pref_obs.Span.timed (fun () ->
              Planner.choose ~cache:use_cache ~costmodel:cfg.costmodel
                ?domains:cfg.domains schema p rel)
        in
        Obs.plan_chosen (Planner.plan_kind plan);
        let r, ms =
          Pref_obs.Span.timed (fun () -> Planner.execute schema p rel plan)
        in
        ( "auto:" ^ Planner.plan_kind plan,
          r,
          [ Pref_obs.Profile.phase "plan" plan_ms ],
          [ ("plan", Planner.plan_to_string plan) ],
          ms,
          fun () -> -1 )
    in
    let comparisons = comparisons_of () in
    if use_cache then Cache.store Cache.global schema p rel result;
    Obs.record_query ~algorithm:alg_name ~n_in:input_rows
      ~n_out:(Relation.cardinality result) ~comparisons ~ms:eval_ms;
    finish
      ~phases:
        ((Pref_obs.Profile.phase "compile" compile_ms :: extra_phases)
        @ [ Pref_obs.Profile.phase "evaluate" eval_ms ])
      ~attrs ~comparisons ~alg_name
      (result, Engine.complete)

let sigma_profiled_cfg cfg schema p rel =
  sigma_profiled_within ~deadline:(Engine.deadline_of cfg) cfg schema p rel

let run_within ~deadline (cfg : Engine.config) schema p rel =
  if cfg.Engine.profile then
    let rows, flags, profile =
      sigma_profiled_within ~deadline cfg schema p rel
    in
    Engine.Result.make ~profile ~plan:profile.Pref_obs.Profile.algorithm rows
      flags
  else
    let rows, flags = sigma_within ~deadline cfg schema p rel in
    Engine.Result.make
      ~plan:(Engine.algorithm_to_string cfg.algorithm)
      rows flags

let run_cfg cfg schema p rel =
  run_within ~deadline:(Engine.deadline_of cfg) cfg schema p rel

let sigma_profiled ?algorithm ?cache ?domains schema p rel =
  let result, _flags, profile =
    sigma_profiled_cfg (Compat.legacy_cfg ?algorithm ?cache ?domains ()) schema
      p rel
  in
  (result, profile)

let sigma_groupby_within ~deadline (cfg : Engine.config) schema p ~by rel =
  let use_cache = cfg.Engine.cache && Cache.is_enabled () in
  let legacy =
    (not use_cache)
    && (not (Engine.has_deadline deadline))
    && cfg.domains = None
  in
  let result, flags =
    if legacy then
      (* the pre-engine evaluation: one dominance compile shared by every
         group, no per-group cache probes *)
      let r =
        match cfg.algorithm with
        | Alg_bnl ->
          let dom = Dominance.of_pref schema p in
          let rows =
            List.concat_map
              (fun g -> Bnl.maxima dom (Relation.rows g))
              (Relation.group_by rel by)
          in
          Relation.make (Relation.schema rel) rows
        (* groups are typically far below the parallel threshold, so the
           parallel algorithm routes through the generic per-group
           evaluation too *)
        | Alg_naive | Alg_decompose | Alg_parallel | Alg_auto ->
          Groupby.query schema p ~by rel
      in
      (r, Engine.complete)
    else begin
      (* engine path: each group is a sub-query through {!sigma_within},
         so groups share the cache, the domain setting and one deadline
         budget; the row cap applies to the combined result only *)
      let group_cfg = { cfg with Engine.max_rows = None } in
      let rows, flags =
        List.fold_left
          (fun (acc, flags) g ->
            let r, f = sigma_within ~deadline group_cfg schema p g in
            (List.rev_append (Relation.rows r) acc, Engine.union_flags flags f))
          ([], Engine.complete)
          (Relation.group_by rel by)
      in
      (Relation.make (Relation.schema rel) (List.rev rows), flags)
    end
  in
  let result, truncated = cap_rows cfg.max_rows result in
  (result, Engine.union_flags flags { Engine.partial = false; truncated })

let sigma_groupby_cfg cfg schema p ~by rel =
  sigma_groupby_within ~deadline:(Engine.deadline_of cfg) cfg schema p ~by rel

let sigma_groupby ?algorithm schema p ~by rel =
  fst
    (sigma_groupby_cfg (Compat.legacy_cfg ?algorithm ~cache:false ()) schema p
       ~by rel)

let sigma_levels schema p ~levels rel =
  (* iterated BMO: level 1 is sigma[P](R); level i+1 is sigma[P] of what is
     left after removing the better levels — exactly the level function of
     the database better-than graph (Definition 2), evaluated lazily *)
  if levels < 1 then invalid_arg "Query.sigma_levels: levels must be >= 1";
  Pref_obs.Span.with_span "bmo.sigma_levels"
    ~attrs:[ ("levels", string_of_int levels) ]
  @@ fun () ->
  let dom = Dominance.of_pref schema p in
  let rec go k remaining acc =
    if k = 0 || remaining = [] then List.concat (List.rev acc)
    else begin
      let best = Naive.maxima dom remaining in
      Pref_obs.Metrics.incr Obs.levels_computed;
      let rest = List.filter (fun t -> not (List.memq t best)) remaining in
      go (k - 1) rest (best :: acc)
    end
  in
  Relation.make (Relation.schema rel) (go levels (Relation.rows rel) [])

let perfect_matches schema p ~ideal rel =
  (* A perfect match (Definition 14b) is a tuple whose projection is maximal
     in the whole domain of wishes, not merely in R.  Deciding membership in
     max(P) needs the domain; [ideal] supplies a predicate for it (e.g. level
     1 under the intrinsic level function). *)
  Relation.select (fun t -> ideal t) (sigma schema p rel)
