open Pref_relation

let maxima (dom : Dominance.t) rows =
  List.filter
    (fun t -> not (List.exists (fun u -> dom u t) rows))
    rows

let query schema p rel =
  Pref_obs.Span.with_span "bmo.naive" (fun () ->
      let dom = Dominance.of_pref schema p in
      let rows = Relation.rows rel in
      if Pref_obs.Control.is_enabled () then begin
        let dom, comparisons = Dominance.counting dom in
        let best, ms = Pref_obs.Span.timed (fun () -> maxima dom rows) in
        Obs.record_query ~algorithm:"naive" ~n_in:(List.length rows)
          ~n_out:(List.length best) ~comparisons:(comparisons ()) ~ms;
        Relation.make (Relation.schema rel) best
      end
      else Relation.make (Relation.schema rel) (maxima dom rows))
