open Pref_relation

let maxima ~key (dom : Dominance.t) rows =
  (* Presort by a topological key (dominating tuples sort first), then run a
     single window pass.  Because no later tuple can dominate an earlier
     one, window tuples are never evicted — each candidate is only checked
     against the current window. *)
  let sorted =
    List.stable_sort (fun a b -> Float.compare (key b) (key a)) rows
  in
  let window =
    List.fold_left
      (fun window t ->
        if List.exists (fun w -> dom w t) window then window else t :: window)
      [] sorted
  in
  List.rev window

let sum_key schema attrs ~maximize =
  let idx = List.map (Schema.index_of_exn schema) attrs in
  let sign = if maximize then 1.0 else -1.0 in
  fun t ->
    List.fold_left
      (fun acc i ->
        match Value.as_float (Tuple.get t i) with
        | Some f -> acc +. (sign *. f)
        | None -> acc +. (sign *. Float.neg_infinity))
      0.0 idx

let query schema ~key p rel =
  Pref_obs.Span.with_span "bmo.sfs" (fun () ->
      let dom = Dominance.of_pref schema p in
      let rows = Relation.rows rel in
      if Pref_obs.Control.is_enabled () then begin
        let dom, comparisons = Dominance.counting dom in
        let best, ms = Pref_obs.Span.timed (fun () -> maxima ~key dom rows) in
        Obs.record_query ~algorithm:"sfs" ~n_in:(List.length rows)
          ~n_out:(List.length best) ~comparisons:(comparisons ()) ~ms;
        Relation.make (Relation.schema rel) best
      end
      else Relation.make (Relation.schema rel) (maxima ~key dom rows))

let progressive ~key (dom : Dominance.t) rows =
  (* With a topological presort every window insertion is final, so maxima
     can be emitted as soon as they are found — the progressive behaviour
     of [TEO01]-style skyline computation.  The window is shared across
     pulls of the sequence. *)
  let sorted =
    List.stable_sort (fun a b -> Float.compare (key b) (key a)) rows
  in
  let window = ref [] in
  let rec emit pending () =
    match pending with
    | [] -> Seq.Nil
    | t :: rest ->
      if List.exists (fun w -> dom w t) !window then emit rest ()
      else begin
        window := t :: !window;
        Seq.Cons (t, emit rest)
      end
  in
  emit sorted
