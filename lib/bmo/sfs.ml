open Pref_relation

(* Presort by a topological key (dominating tuples sort first), then run a
   single window pass.  Because no later tuple can dominate an earlier one,
   window tuples are never evicted — each candidate is only checked against
   the current window.

   Like {!Bnl}, the sort and the window are array-based: [Array.stable_sort]
   on a materialised array, then an append-only array window probed by a
   flat loop. *)

let sorted_array ~key rows =
  let arr = Array.of_list rows in
  Array.stable_sort (fun a b -> Float.compare (key b) (key a)) arr;
  arr

let maxima ~key (dom : Dominance.t) rows =
  match rows with
  | [] -> []
  | first :: _ ->
    let arr = sorted_array ~key rows in
    let n = Array.length arr in
    let win = Array.make n first in
    let size = ref 0 in
    for k = 0 to n - 1 do
      let t = Array.unsafe_get arr k in
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < !size do
        if dom (Array.unsafe_get win !i) t then dominated := true else incr i
      done;
      if not !dominated then begin
        win.(!size) <- t;
        incr size
      end
    done;
    Array.to_list (Array.sub win 0 !size)

let sum_key schema attrs ~maximize =
  let idx = List.map (Schema.index_of_exn schema) attrs in
  let sign = if maximize then 1.0 else -1.0 in
  fun t ->
    List.fold_left
      (fun acc i ->
        match Value.as_float (Tuple.get t i) with
        | Some f -> acc +. (sign *. f)
        | None -> acc +. (sign *. Float.neg_infinity))
      0.0 idx

(* ------------------------------------------------------------------ *)
(* Vectorized kernel                                                   *)

(* Filter pass over pre-sorted, pre-projected points: append-only window,
   no evictions.  Shared by the sequential path and the per-chunk workers
   of {!Parallel}. *)
let filter_sorted ~(dominates : 'p -> 'p -> bool) ?count
    (points : ('p * Tuple.t) array) =
  let n = Array.length points in
  if n = 0 then [||]
  else begin
    let tests = ref 0 in
    let win = Array.make n points.(0) in
    let size = ref 0 in
    for k = 0 to n - 1 do
      let ((pt, _) as cand) = Array.unsafe_get points k in
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < !size do
        incr tests;
        if dominates (fst (Array.unsafe_get win !i)) pt then dominated := true
        else incr i
      done;
      if not !dominated then begin
        win.(!size) <- cand;
        incr size
      end
    done;
    (match count with Some c -> c := !c + !tests | None -> ());
    Array.sub win 0 !size
  end

let project_sorted ~key (vec : Dominance.vec) rows =
  let arr = sorted_array ~key rows in
  match vec.Dominance.floats with
  | Some proj ->
    `Floats (Array.map (fun t -> (proj t, t)) arr)
  | None -> `General (Array.map (fun t -> (vec.Dominance.project t, t)) arr)

let maxima_vec ?count ~key (vec : Dominance.vec) rows =
  match project_sorted ~key vec rows with
  | `Floats pts ->
    Array.map snd
      (filter_sorted ~dominates:Dominance.float_dominates ?count pts)
  | `General pts ->
    Array.map snd (filter_sorted ~dominates:vec.Dominance.better ?count pts)

(* ------------------------------------------------------------------ *)

let query schema ~key p rel =
  Pref_obs.Span.with_span "bmo.sfs" (fun () ->
      let dom = Dominance.of_pref schema p in
      let rows = Relation.rows rel in
      if Pref_obs.Control.is_enabled () then begin
        let dom, comparisons = Dominance.counting dom in
        let best, ms = Pref_obs.Span.timed (fun () -> maxima ~key dom rows) in
        Obs.record_query ~algorithm:"sfs" ~n_in:(List.length rows)
          ~n_out:(List.length best) ~comparisons:(comparisons ()) ~ms;
        Relation.make (Relation.schema rel) best
      end
      else Relation.make (Relation.schema rel) (maxima ~key dom rows))

let progressive ~key (dom : Dominance.t) rows =
  (* With a topological presort every window insertion is final, so maxima
     can be emitted as soon as they are found — the progressive behaviour
     of [TEO01]-style skyline computation.  The window is shared across
     pulls of the sequence. *)
  let sorted = Array.to_list (sorted_array ~key rows) in
  let window = ref [] in
  let rec emit pending () =
    match pending with
    | [] -> Seq.Nil
    | t :: rest ->
      if List.exists (fun w -> dom w t) !window then emit rest ()
      else begin
        window := t :: !window;
        Seq.Cons (t, emit rest)
      end
  in
  emit sorted
