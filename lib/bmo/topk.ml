open Pref_relation
open Preferences

let score_of schema p =
  match
    Pref.score_via (fun t a -> Tuple.get_by_name schema t a) p
  with
  | Some s -> s
  | None -> invalid_arg "Topk: preference is not scorable"

let kbest schema p ~k rel =
  Pref_obs.Span.with_span "bmo.topk.kbest"
    ~attrs:[ ("k", string_of_int k) ]
  @@ fun () ->
  let s = score_of schema p in
  let scored = List.map (fun t -> (s t, t)) (Relation.rows rel) in
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare b a) scored
  in
  let rec take n = function
    | [] -> []
    | (_, t) :: rest -> if n = 0 then [] else t :: take (n - 1) rest
  in
  Relation.make (Relation.schema rel) (take k sorted)

type ta_result = {
  results : (float * Tuple.t) list;  (** k best, best first *)
  examined : int;  (** distinct objects for which F was evaluated *)
  depth : int;  (** sorted-access depth reached *)
}

let threshold_algorithm ~scores ~combine ~k rel =
  Pref_obs.Span.with_span "bmo.topk.ta" ~attrs:[ ("k", string_of_int k) ]
  @@ fun () ->
  let rows = Array.of_list (Relation.rows rel) in
  let n = Array.length rows in
  let m = Array.length scores in
  if m = 0 then invalid_arg "Topk.threshold_algorithm: no score dimensions";
  (* Sorted access lists: row indices ordered by each dimension score,
     descending — the per-feature indexes a multi-feature engine maintains. *)
  let lists =
    Array.map
      (fun s ->
        let idx = Array.init n (fun i -> i) in
        Array.sort (fun i j -> Float.compare (s rows.(j)) (s rows.(i))) idx;
        idx)
      scores
  in
  let overall i = combine (Array.map (fun s -> s rows.(i)) scores) in
  let seen = Hashtbl.create 64 in
  let top = ref [] (* (score, index), ascending size <= k, worst first *) in
  let insert entry =
    let merged =
      List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) (entry :: !top)
    in
    let len = List.length merged in
    top := if len > k then List.tl merged else merged
  in
  let kth_score () =
    match !top with
    | (s, _) :: _ when List.length !top = k -> Some s
    | _ -> None
  in
  let examined = ref 0 in
  let finished = ref false in
  let depth = ref 0 in
  while (not !finished) && !depth < n do
    (* One round of sorted access at the current depth on every list. *)
    for li = 0 to m - 1 do
      let i = lists.(li).(!depth) in
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        incr examined;
        insert (overall i, i)
      end
    done;
    (* Threshold: combine of the scores at the current depth. *)
    let t =
      combine (Array.mapi (fun li s -> s rows.(lists.(li).(!depth))) scores)
    in
    (match kth_score () with
    | Some worst_of_top when worst_of_top >= t -> finished := true
    | Some _ | None -> ());
    incr depth
  done;
  if Pref_obs.Control.is_enabled () then begin
    Pref_obs.Metrics.incr ~by:!examined Obs.ta_examined;
    Pref_obs.Span.add_attr "examined" (string_of_int !examined);
    Pref_obs.Span.add_attr "depth" (string_of_int !depth)
  end;
  {
    results =
      List.rev_map (fun (s, i) -> (s, rows.(i))) !top (* best first *);
    examined = !examined;
    depth = !depth;
  }

let ta_rank schema p ~k rel =
  match p with
  | Pref.Rank (f, p1, p2) ->
    let s1 = score_of schema p1 and s2 = score_of schema p2 in
    let combine arr =
      match arr with
      | [| a; b |] -> f.Pref.combine a b
      | _ -> invalid_arg "Topk.ta_rank: arity mismatch"
    in
    threshold_algorithm ~scores:[| s1; s2 |] ~combine ~k rel
  | Pref.Pos _ | Pref.Neg _ | Pref.Pos_neg _ | Pref.Pos_pos _
  | Pref.Explicit _ | Pref.Around _ | Pref.Between _ | Pref.Lowest _
  | Pref.Highest _ | Pref.Score _ | Pref.Antichain _ | Pref.Dual _
  | Pref.Pareto _ | Pref.Prior _ | Pref.Inter _ | Pref.Dunion _ | Pref.Lsum _
  | Pref.Two_graphs _ ->
    invalid_arg "Topk.ta_rank: expected a rank(F) preference"
