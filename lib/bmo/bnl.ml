open Pref_relation

let maxima (dom : Dominance.t) rows =
  (* Window of mutually undominated tuples seen so far.  A candidate
     dominated by a window tuple is discarded; window tuples dominated by
     the candidate are evicted.  With unbounded memory no temporary file is
     needed, so a single pass suffices (the in-memory special case of
     block-nested-loops from the skyline paper). *)
  let insert window t =
    let rec scan = function
      | [] -> Some []
      | w :: rest ->
        if dom w t then None
        else (
          match scan rest with
          | None -> None
          | Some kept -> Some (if dom t w then kept else w :: kept))
    in
    match scan window with
    | None -> window
    | Some kept -> t :: kept
  in
  List.rev (List.fold_left insert [] rows)

let maxima_traced (dom : Dominance.t) rows =
  (* Same pass as [maxima], threading the window size so the telemetry
     layer can report the peak without O(n) length scans. *)
  let peak = ref 0 in
  let insert (window, size) t =
    let evicted = ref 0 in
    let rec scan = function
      | [] -> Some []
      | w :: rest ->
        if dom w t then None
        else (
          match scan rest with
          | None -> None
          | Some kept ->
            if dom t w then begin
              incr evicted;
              Some kept
            end
            else Some (w :: kept))
    in
    match scan window with
    | None -> (window, size)
    | Some kept ->
      let size = size - !evicted + 1 in
      if size > !peak then peak := size;
      (t :: kept, size)
  in
  let window, _ = List.fold_left insert ([], 0) rows in
  (List.rev window, !peak)

let query schema p rel =
  Pref_obs.Span.with_span "bmo.bnl" (fun () ->
      let dom = Dominance.of_pref schema p in
      let rows = Relation.rows rel in
      if Pref_obs.Control.is_enabled () then begin
        let dom, comparisons = Dominance.counting dom in
        let (best, peak), ms =
          Pref_obs.Span.timed (fun () -> maxima_traced dom rows)
        in
        Obs.record_query ~algorithm:"bnl" ~n_in:(List.length rows)
          ~n_out:(List.length best) ~comparisons:(comparisons ()) ~ms;
        Pref_obs.Metrics.set_max Obs.window_peak (float_of_int peak);
        Pref_obs.Span.add_attr "window_peak" (string_of_int peak);
        Relation.make (Relation.schema rel) best
      end
      else Relation.make (Relation.schema rel) (maxima dom rows))
