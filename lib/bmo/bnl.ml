open Pref_relation

(* Window of mutually undominated tuples seen so far.  A candidate dominated
   by a window tuple is discarded; window tuples dominated by the candidate
   are evicted.  With unbounded memory no temporary file is needed, so a
   single pass suffices (the in-memory special case of block-nested-loops
   from the skyline paper).

   The window is a mutable array, not a list: the scan is two flat loops
   (probe for a dominator, then compact out evicted tuples in place), so the
   pass allocates nothing per candidate and survives windows of any size —
   the former recursive scan kept one stack frame per window tuple and
   overflowed on large anti-chains. *)

let maxima (dom : Dominance.t) rows =
  match rows with
  | [] -> []
  | first :: _ ->
    let arr = Array.of_list rows in
    let n = Array.length arr in
    let win = Array.make n first in
    let size = ref 0 in
    for k = 0 to n - 1 do
      let t = Array.unsafe_get arr k in
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < !size do
        if dom (Array.unsafe_get win !i) t then dominated := true else incr i
      done;
      if not !dominated then begin
        let j = ref 0 in
        for i = 0 to !size - 1 do
          let w = Array.unsafe_get win i in
          if not (dom t w) then begin
            Array.unsafe_set win !j w;
            incr j
          end
        done;
        win.(!j) <- t;
        size := !j + 1
      end
    done;
    Array.to_list (Array.sub win 0 !size)

(* Deadline-aware variant of [maxima]: identical window pass, but the
   monotonic clock is polled every [deadline_stride] candidates and the
   scan stops — returning the window built so far — once the budget is
   spent.  The window at any candidate boundary is the exact BMO set of
   the scanned prefix, so a degraded result is still sound, merely
   incomplete. *)

let deadline_stride = 128

let maxima_deadline ~deadline (dom : Dominance.t) rows =
  if not (Engine.has_deadline deadline) then (maxima dom rows, false)
  else if Engine.expired deadline then ([], true)
  else
    match rows with
    | [] -> ([], false)
    | first :: _ ->
      let arr = Array.of_list rows in
      let n = Array.length arr in
      let win = Array.make n first in
      let size = ref 0 in
      let k = ref 0 in
      let timed_out = ref false in
      while !k < n && not !timed_out do
        if !k land (deadline_stride - 1) = 0 && Engine.expired deadline then
          timed_out := true
        else begin
          let t = Array.unsafe_get arr !k in
          let dominated = ref false in
          let i = ref 0 in
          while (not !dominated) && !i < !size do
            if dom (Array.unsafe_get win !i) t then dominated := true
            else incr i
          done;
          if not !dominated then begin
            let j = ref 0 in
            for i = 0 to !size - 1 do
              let w = Array.unsafe_get win i in
              if not (dom t w) then begin
                Array.unsafe_set win !j w;
                incr j
              end
            done;
            win.(!j) <- t;
            size := !j + 1
          end;
          incr k
        end
      done;
      (Array.to_list (Array.sub win 0 !size), !timed_out)

let maxima_traced (dom : Dominance.t) rows =
  (* Same pass as [maxima], tracking the peak window size for telemetry
     without O(n) length scans. *)
  match rows with
  | [] -> ([], 0)
  | first :: _ ->
    let arr = Array.of_list rows in
    let n = Array.length arr in
    let win = Array.make n first in
    let size = ref 0 in
    let peak = ref 0 in
    for k = 0 to n - 1 do
      let t = Array.unsafe_get arr k in
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < !size do
        if dom (Array.unsafe_get win !i) t then dominated := true else incr i
      done;
      if not !dominated then begin
        let j = ref 0 in
        for i = 0 to !size - 1 do
          let w = Array.unsafe_get win i in
          if not (dom t w) then begin
            Array.unsafe_set win !j w;
            incr j
          end
        done;
        win.(!j) <- t;
        size := !j + 1;
        if !size > !peak then peak := !size
      end
    done;
    (Array.to_list (Array.sub win 0 !size), !peak)

(* ------------------------------------------------------------------ *)
(* Vectorized kernels                                                  *)

(* The same window pass over pre-projected vectors: each tuple is projected
   once up front, every dominance test then reads flat arrays.  [count], when
   given, accumulates the number of dominance tests (a plain ref the caller
   owns — safe for per-domain counting in the parallel layer). *)

let maxima_proj ~(dominates : 'p -> 'p -> bool) ?count
    (points : ('p * Tuple.t) array) =
  let n = Array.length points in
  if n = 0 then [||]
  else begin
    let tests = ref 0 in
    let win = Array.make n points.(0) in
    let size = ref 0 in
    for k = 0 to n - 1 do
      let ((pt, _) as cand) = Array.unsafe_get points k in
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < !size do
        incr tests;
        if dominates (fst (Array.unsafe_get win !i)) pt then dominated := true
        else incr i
      done;
      if not !dominated then begin
        let j = ref 0 in
        for i = 0 to !size - 1 do
          let ((wp, _) as w) = Array.unsafe_get win i in
          incr tests;
          if not (dominates pt wp) then begin
            Array.unsafe_set win !j w;
            incr j
          end
        done;
        win.(!j) <- cand;
        size := !j + 1
      end
    done;
    (match count with Some c -> c := !c + !tests | None -> ());
    Array.sub win 0 !size
  end

let project_floats proj rows = Array.map (fun t -> (proj t, t)) rows

let maxima_vec ?count (vec : Dominance.vec) (rows : Tuple.t array) =
  match vec.Dominance.floats with
  | Some proj ->
    let pts = project_floats proj rows in
    Array.map snd
      (maxima_proj ~dominates:Dominance.float_dominates ?count pts)
  | None ->
    let pts = Array.map (fun t -> (vec.Dominance.project t, t)) rows in
    Array.map snd (maxima_proj ~dominates:vec.Dominance.better ?count pts)

(* ------------------------------------------------------------------ *)

let query schema p rel =
  Pref_obs.Span.with_span "bmo.bnl" (fun () ->
      let dom = Dominance.of_pref schema p in
      let rows = Relation.rows rel in
      if Pref_obs.Control.is_enabled () then begin
        let dom, comparisons = Dominance.counting dom in
        let (best, peak), ms =
          Pref_obs.Span.timed (fun () -> maxima_traced dom rows)
        in
        Obs.record_query ~algorithm:"bnl" ~n_in:(List.length rows)
          ~n_out:(List.length best) ~comparisons:(comparisons ()) ~ms;
        Pref_obs.Metrics.set_max Obs.window_peak (float_of_int peak);
        Pref_obs.Span.add_attr "window_peak" (string_of_int peak);
        Relation.make (Relation.schema rel) best
      end
      else Relation.make (Relation.schema rel) (maxima dom rows))
