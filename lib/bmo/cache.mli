(** Preference-aware BMO result cache with semantic reuse.

    Entries are keyed by (relation fingerprint, canonical preference term,
    projection): the fingerprint is a structural hash of the row list so a
    reloaded-but-identical relation still hits, and the term key is
    {!Preferences.Canon.key} so queries equal up to the algebra's pure
    reordering laws (⊗/♦/+ commutativity, value-set order, …) share one
    entry.

    A lookup answers in one of three tiers:

    - {b exact}: the key is present — return the stored BMO set verbatim.
    - {b semantic}: the key is absent but the term is an algebraic
      refinement or composition of cached terms over the same relation
      version, and one of the paper's decomposition identities derives the
      answer from the cached sets:
      {ul
       {- prioritisation: when a prefix [Q] of the &-spine is cached,
          σ[Q & P'](R) = σ[P' groupby attrs(Q)](σ[Q](R)) — evaluated over
          the (small) cached set only;}
       {- disjoint union: when every +-operand is cached,
          σ[P1 + P2](R) = σ[P1](R) ∩ σ[P2](R) (Proposition 8);}
       {- Pareto: when an operand [P1] with attributes disjoint from the
          rest [P2] is cached, σ[P1 ⊗ P2](R) is evaluated over the
          restriction σ[P2 groupby attrs(P1)](R), seeding the scan with the
          pre-confirmed tuples of the cached σ[P1](R) that survive the
          restriction (Proposition 12's first term).}}
      Derived results are stored, so repeating the query is an exact hit.
    - {b miss}: the caller evaluates and should {!store} the result.

    Inserts and deletes on a base relation route through
    {!Incremental.of_parts} to {e patch} affected entries: each cached BMO
    set for the old relation version is rehydrated, updated, and re-stored
    under the new version's fingerprint (the stale entries age out by LRU).

    Capacity is bounded twice — by entry count and by an approximate byte
    budget ({!Stdlib.Obj.reachable_words} of the stored sets) — with LRU
    eviction. All operations also report into the [bmo.cache.*] metrics of
    {!Obs} (gated on {!Pref_obs.Control} like the rest of telemetry). *)

open Pref_relation

type t

val create : ?max_entries:int -> ?budget_bytes:int -> unit -> t
(** Defaults: 128 entries, 64 MiB. *)

val global : t
(** The process-wide instance the query layer uses. Starts {e disabled}:
    until {!set_enabled}[ true], [lookup]/[store]/[probe] on it are
    no-ops, so the cache-off path costs one flag load. *)

val is_enabled : unit -> bool
val set_enabled : bool -> unit

val clear : t -> unit
(** Drop all entries (statistics survive). *)

val set_budget : t -> ?max_entries:int -> ?budget_bytes:int -> unit -> unit
(** Adjust capacity; evicts immediately if the new budget is exceeded. *)

(** {1 Keys} *)

val fingerprint : Relation.t -> string
(** Structural version fingerprint of a relation: schema, cardinality and
    two independent row-hash accumulators. Memoised on the physical
    identity of the row list, so fingerprinting the same unmodified
    relation repeatedly is O(1). *)

(** {1 The cache protocol} *)

type reuse =
  | Exact
  | Semantic of string
      (** Which identity applied, e.g. ["prior-prefix"] — surfaced in
          plans, profiles and stats. *)

val lookup :
  t ->
  ?projection:string list ->
  ?gate:bool ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  (Relation.t * reuse) option
(** Three-tier lookup as described above. Counts exactly one of
    hit / semantic-reuse / miss per call. [None] on a disabled cache
    counts nothing.

    [gate] (default true) prices semantic reconstructions with {!Cost}
    before serving them: a derivation predicted to cost more than a cold
    evaluation (pareto-restrict re-groups the full base relation) is
    refused, counted as a miss plus one [cost_skipped]. prior-prefix and
    dunion-inter derive from the cached sets only and are never refused.
    [~gate:false] restores the pre-cost-model behaviour
    ([\set costmodel off]). *)

val probe :
  t ->
  ?projection:string list ->
  ?gate:bool ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  reuse option
(** Non-counting peek for the planner: would {!lookup} succeed, and in
    which tier? Does not derive, store, or touch LRU order. [gate] as in
    {!lookup}, so the planner's view matches what a lookup would serve. *)

type tier_probe = {
  tier : string;  (** [exact], [prior-prefix], [dunion-inter], [pareto-restrict] *)
  hit : bool;
  ms : float;
}

val probe_traced :
  t ->
  ?projection:string list ->
  ?gate:bool ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  reuse option * tier_probe list
(** {!probe} plus the per-tier timings it measured, in probe order (the
    exact tier always first; the one applicable semantic tier after it
    when the exact tier missed) — the rows of EXPLAIN's cache-probe
    table. A semantic match refused by the cost gate reports no reuse and
    marks its probe row with a [[cost-skip +N.Nms]] suffix carrying the
    predicted reconstruction overhead. Both [probe] and [lookup] feed the
    same timings into the [bmo.cache.probe_ms.<tier>] histograms. *)

val store :
  t ->
  ?projection:string list ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t ->
  unit
(** [store t schema p rel result] caches [result] as σ[P](rel). No-op when
    disabled. *)

(** {1 Incremental maintenance} *)

val on_insert :
  t -> old_rel:Relation.t -> new_rel:Relation.t -> Tuple.t -> int
(** The base relation changed from [old_rel] to [new_rel] by inserting the
    tuple. Every entry cached under [old_rel]'s fingerprint is patched via
    {!Incremental} and re-stored under [new_rel]'s fingerprint. Returns the
    number of entries patched. *)

val on_delete :
  t -> old_rel:Relation.t -> new_rel:Relation.t -> Tuple.t -> int
(** Dual of {!on_insert} for a single-tuple delete. *)

(** {1 Introspection} *)

type stats = {
  entries : int;
  bytes : int;  (** approximate, see module doc *)
  hits : int;
  misses : int;
  semantic_reuses : int;
  patched_entries : int;
  evictions : int;
  cost_skipped : int;
      (** semantic matches refused because reconstruction was predicted
          to lose to a cold run *)
}

val stats : t -> stats
val stats_lines : t -> string list
(** Human-readable dump for the shell's [\cache stats]. *)
