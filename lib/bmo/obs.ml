open Pref_obs

let dominance_tests = Metrics.counter "bmo.dominance_tests"
let tuples_scanned = Metrics.counter "bmo.tuples_scanned"
let tuples_pruned = Metrics.counter "bmo.tuples_pruned"
let queries = Metrics.counter "bmo.queries"
let window_peak = Metrics.gauge "bmo.window_peak"
let levels_computed = Metrics.counter "bmo.levels_computed"
let ta_examined = Metrics.counter "bmo.ta_examined"
let result_size = Metrics.histogram "bmo.result_size"

let query_ms =
  Metrics.histogram "bmo.query_ms"
    ~bounds:[| 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1_000.; 10_000. |]

let par_queries = Metrics.counter "bmo.par.queries"
let par_chunk_rows = Metrics.histogram "bmo.par.chunk_rows"

let par_merge_ms =
  Metrics.histogram "bmo.par.merge_ms"
    ~bounds:[| 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1_000.; 10_000. |]

let cache_hits = Metrics.counter "bmo.cache.hits"
let cache_misses = Metrics.counter "bmo.cache.misses"
let cache_semantic = Metrics.counter "bmo.cache.semantic_reuses"
let cache_patched = Metrics.counter "bmo.cache.patched_entries"
let cache_evictions = Metrics.counter "bmo.cache.evictions"
let cache_cost_skipped = Metrics.counter "bmo.cache.cost_skipped"
let cache_entries = Metrics.gauge "bmo.cache.entries"
let cache_bytes = Metrics.gauge "bmo.cache.bytes"

(* Cache probe cost sits well under a millisecond, so the default decade
   ladder would park everything in the first bucket. *)
let probe_ms_bounds = [| 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10.; 100. |]

let cache_probe_ms tier =
  Metrics.histogram ~bounds:probe_ms_bounds ("bmo.cache.probe_ms." ^ tier)

let observe_probe tier ms =
  (* gated here because the registry lookup itself is not free *)
  if Control.is_enabled () then Metrics.observe (cache_probe_ms tier) ms

let plan_chosen kind =
  (* gated here because the registry lookup itself is not free *)
  if Control.is_enabled () then
    Metrics.incr (Metrics.counter ("bmo.plan_chosen." ^ kind))

let record_query ~algorithm ~n_in ~n_out ~comparisons ~ms =
  if Control.is_enabled () then begin
    Metrics.incr queries;
    Metrics.incr ~by:n_in tuples_scanned;
    Metrics.incr ~by:(max 0 (n_in - n_out)) tuples_pruned;
    if comparisons >= 0 then Metrics.incr ~by:comparisons dominance_tests;
    Metrics.observe result_size (float_of_int n_out);
    Metrics.observe query_ms ms;
    Span.add_attr "algorithm" algorithm;
    Span.add_attr "rows" (Printf.sprintf "%d->%d" n_in n_out)
  end
