(* Calibrated cost model for BMO evaluation alternatives.

   The planner used to pick between its alternatives — sequential BNL/SFS,
   the KLP75 divide & conquer, chunked multi-domain evaluation, cache
   reuse — with fixed thresholds, and the benchmarks caught it picking
   wrong: parallel plans losing 20x at small n to their own spawn
   overhead, semantic cache reconstruction costing 60x a cold run.  This
   module prices every alternative in milliseconds from a small set of
   per-operation constants so {!Planner.choose} can compare them on one
   scale and {!Cache} can refuse a reuse that is predicted to lose.

   The model is deliberately coarse: each plan's cost is (dominant term
   count) x (calibrated per-operation cost).  Output cardinality comes
   from {!Estimate.expected_skyline_size_fast} — the independent-uniform
   expectation — bent by the sampled correlation the planner already
   measures (anti-correlation inflates skylines toward n, positive
   correlation deflates them toward 1) and, when online learning is
   enabled, by the Prop. 13 filter-effect ratios observed on finished
   queries.

   Constants have three sources, in increasing precedence:
   - compiled-in defaults, fitted against BENCH_2026-08-06.json;
   - a calibration file (key=value lines, see {!load}/{!save}; the
     [PREF_COST_CALIBRATION] environment variable names one to load at
     startup) or {!calibrate}, which micro-benchmarks the machine;
   - online refinement: {!observe} folds measured runtimes into a
     per-plan-kind EMA correction factor, clamped to [1/8, 8] so a noisy
     measurement can never invert the model's asymptotics. *)

type constants = {
  c_cmp_ns : float;  (** one dominance test, per dimension *)
  c_row_ns : float;  (** per-row scan / window bookkeeping *)
  c_sort_ns : float;  (** per element per log2 n of sorting *)
  c_dnc_ns : float;  (** divide & conquer, per row per log2 n per extra dim *)
  c_group_ns : float;  (** grouping/partitioning, per row *)
  c_derive_ns : float;  (** semantic-cache reconstruction, per scanned row *)
  c_probe_us : float;  (** one cache-tier probe (hash + fingerprint) *)
  c_par_fixed_us : float;  (** fixed overhead of any parallel plan *)
  c_par_domain_us : float;  (** per-domain spawn + merge overhead *)
  c_par_pessimism : float;  (** multiplier on the parallel scan term *)
  c_shard_rtt_us : float;  (** per-shard scatter dispatch + gather overhead *)
}

let defaults =
  {
    c_cmp_ns = 20.;
    c_row_ns = 40.;
    c_sort_ns = 25.;
    c_dnc_ns = 360.;
    c_group_ns = 60.;
    c_derive_ns = 120.;
    c_probe_us = 20.;
    c_par_fixed_us = 4000.;
    c_par_domain_us = 1500.;
    c_par_pessimism = 1.3;
    (* loopback frame round trip incl. CSV encode/decode of a small
       result; WAN deployments should calibrate this via the file *)
    c_shard_rtt_us = 400.;
  }

let state = ref defaults
let current () = !state
let install c = state := c

(* Per-plan-kind EMA correction factors refined by [observe], and the
   Prop. 13 filter-effect table (dims -> EMA of |sigma[P](R)| / |R|). *)
let factors : (string, float) Hashtbl.t = Hashtbl.create 8
let filter_effect : (int, float) Hashtbl.t = Hashtbl.create 8
let learning_on = ref false
let learning () = !learning_on
let set_learning b = learning_on := b

let reset () =
  state := defaults;
  Hashtbl.reset factors;
  Hashtbl.reset filter_effect;
  learning_on := false

let factor kind = Option.value (Hashtbl.find_opt factors kind) ~default:1.

(* ------------------------------------------------------------------ *)
(* Output-size estimation                                              *)

let clamp lo hi v = Float.min hi (Float.max lo v)

let effective_output ~n ~dims ~correlation =
  if n <= 0 then 0.
  else begin
    let nf = float_of_int n in
    let s = Estimate.expected_skyline_size_fast ~n ~dims in
    let r = clamp (-1.) 1. correlation in
    let analytic =
      if r < 0. then
        (* interpolate between the independent expectation (r = 0) and the
           worst case s = n (r = -1) in log space; the quadratic schedule
           reflects that moderate anti-correlation already produces large
           skylines (a third of a BKS01 anti-correlated input is maximal
           at r ~ -0.45) *)
        let t = (1. +. r) *. (1. +. r) in
        exp ((t *. log s) +. ((1. -. t) *. log nf))
      else if r > 0. then
        (* positive correlation thins the skyline toward a single point *)
        Float.max 1. (Float.pow s (1. -. r))
      else s
    in
    let analytic = clamp 1. nf analytic in
    match Hashtbl.find_opt filter_effect dims with
    | None -> analytic
    | Some ratio ->
      (* geometric blend of the model and the observed filter effect *)
      clamp 1. nf (sqrt (analytic *. Float.max 1. (ratio *. nf)))
  end

(* ------------------------------------------------------------------ *)
(* Plan pricing                                                        *)

type workload = { n : int; dims : int; domains : int; correlation : float }

let ns_to_ms x = x *. 1e-6
let us_to_ms x = x *. 1e-3
let log2f n = if n <= 2 then 1. else log (float_of_int n) /. log 2.

(* The average BNL window over the scan is about half the final result.
   Under anti-correlation most probes end incomparable: neither direction
   of the dominance test can early-exit and the window is scanned to the
   end, so the comparison term grows toward twice the independent case. *)
let scan_ms c w =
  let n = float_of_int w.n in
  let wbar = (effective_output ~n:w.n ~dims:w.dims ~correlation:w.correlation /. 2.) +. 1. in
  let incomparability = 1. -. Float.min 0. (clamp (-1.) 1. w.correlation) in
  ns_to_ms (c.c_cmp_ns *. float_of_int w.dims *. n *. wbar *. incomparability)

let base_ms kind w =
  let c = current () in
  let n = float_of_int w.n in
  let out = effective_output ~n:w.n ~dims:w.dims ~correlation:w.correlation in
  let sort = ns_to_ms (c.c_sort_ns *. n *. log2f w.n) in
  let par_base d =
    us_to_ms (c.c_par_fixed_us +. (c.c_par_domain_us *. float_of_int d))
  in
  let par_scan d = c.c_par_pessimism *. scan_ms c w /. float_of_int d in
  let par_merge d =
    ns_to_ms (c.c_cmp_ns *. float_of_int w.dims *. out *. out /. float_of_int d)
  in
  match kind with
  | "naive" -> ns_to_ms (c.c_cmp_ns *. float_of_int w.dims *. n *. n)
  | "bnl" -> scan_ms c w +. ns_to_ms (c.c_row_ns *. n)
  | "sfs" -> sort +. scan_ms c w +. ns_to_ms (c.c_row_ns *. n)
  | "dnc" ->
    ns_to_ms
      (c.c_dnc_ns *. n *. log2f w.n *. float_of_int (max 1 (w.dims - 1)))
  | "par_dnc" -> par_base w.domains +. par_scan w.domains +. par_merge w.domains
  | "par_sfs" ->
    par_base w.domains
    +. (sort /. float_of_int w.domains)
    +. par_scan w.domains
    +. (0.5 *. par_merge w.domains)
  | "cascade" ->
    (* one chain pass prunes to a thin slice; the rest is negligible *)
    ns_to_ms ((c.c_cmp_ns +. c.c_row_ns) *. n)
  | "decompose" ->
    (* rule-driven recursion tracks BNL with interpretation overhead *)
    1.25 *. (scan_ms c w +. ns_to_ms (c.c_row_ns *. n))
  | "refine" ->
    (* re-winnow of a cached BMO seed under the refined preference:
       a BNL pass where w.n is the seed size, not the base relation *)
    scan_ms c w +. ns_to_ms (c.c_row_ns *. n)
  | "delta" ->
    (* one subscription patch: a linear screen of the maintained
       result + shadow rows (w.n) against the updated tuple *)
    ns_to_ms (((c.c_cmp_ns *. float_of_int w.dims) +. c.c_row_ns) *. n)
  | _ -> invalid_arg ("Cost.predict_ms: unknown plan kind " ^ kind)

let predict_ms ~kind w = factor kind *. base_ms kind w

(* ------------------------------------------------------------------ *)
(* Cache-side pricing                                                  *)

let probe_overhead_ms () = us_to_ms (current ()).c_probe_us

(* prior-prefix and dunion-inter derivations operate on the cached result
   sets, never on the base relation — strictly cheaper than any cold run. *)
let derive_prior_ms ~rows ~dims =
  let c = current () in
  ns_to_ms
    (float_of_int rows
    *. (c.c_group_ns +. (c.c_cmp_ns *. float_of_int (max 1 dims) *. 4.)))

let derive_dunion_ms ~rows =
  ns_to_ms ((current ()).c_row_ns *. float_of_int rows)

(* pareto-restrict reconstruction re-groups the FULL base relation and
   re-filters against it: its overhead on top of a cold evaluation. *)
let derive_pareto_overhead_ms ~n =
  let c = current () in
  ns_to_ms (float_of_int n *. (c.c_group_ns +. c.c_derive_ns))

(* A reconstruction predicted to cost at most this much more than the
   cheapest cold plan is still allowed: at tiny n the model's resolution
   is below scheduling noise and refusing reuse would be pure loss. *)
let semantic_gate_slack_ms = 0.5

(* ------------------------------------------------------------------ *)
(* Scatter-gather pricing                                              *)

(* Partition-wise evaluation (Props. 8/10/12): per-shard sigma[P] runs in
   parallel, so the scatter phase costs the slowest shard; the gather
   phase pays one dispatch round trip per shard plus a final BNL pass
   over the union of the per-shard BMO sets. *)

let shard_overhead_ms ~shards =
  us_to_ms ((current ()).c_shard_rtt_us *. float_of_int (max 0 shards))

let merge_ms ~rows ~dims =
  if rows <= 0 then 0.
  else
    predict_ms ~kind:"bnl"
      { n = rows; dims = max 1 dims; domains = 1; correlation = 0. }

type scatter_gather = {
  sg_shards : int;
  sg_slowest_ms : float;  (** max over the per-shard predictions *)
  sg_dispatch_ms : float;  (** fan-out/fan-in round trips *)
  sg_merge_ms : float;  (** final BNL pass; 0 when the merge is skipped *)
  sg_total_ms : float;
}

let scatter_gather_ms ~per_shard_ms ~merge_rows ~dims ~merge =
  let shards = List.length per_shard_ms in
  let slowest = List.fold_left Float.max 0. per_shard_ms in
  let dispatch = shard_overhead_ms ~shards in
  let merge_cost = if merge then merge_ms ~rows:merge_rows ~dims else 0. in
  {
    sg_shards = shards;
    sg_slowest_ms = slowest;
    sg_dispatch_ms = dispatch;
    sg_merge_ms = merge_cost;
    sg_total_ms = slowest +. dispatch +. merge_cost;
  }

(* ------------------------------------------------------------------ *)
(* Online refinement                                                   *)

let ema_alpha = 0.2
let clamp_factor = clamp 0.125 8.

let observe ~kind w ~ms =
  match base_ms kind w with
  | base when base > 1e-6 && ms >= 0. ->
    let prev = factor kind in
    let next = ((1. -. ema_alpha) *. prev) +. (ema_alpha *. (ms /. base)) in
    Hashtbl.replace factors kind (clamp_factor next)
  | _ -> ()
  | exception Invalid_argument _ -> ()

let observe_filter ~dims ~n_in ~n_out =
  if n_in > 0 && n_out >= 0 then begin
    let ratio = float_of_int n_out /. float_of_int n_in in
    let next =
      match Hashtbl.find_opt filter_effect dims with
      | None -> ratio
      | Some prev -> ((1. -. ema_alpha) *. prev) +. (ema_alpha *. ratio)
    in
    Hashtbl.replace filter_effect dims (clamp 0. 1. next)
  end

(* ------------------------------------------------------------------ *)
(* Calibration                                                         *)

let time_ns f =
  let t0 = Pref_obs.Clock.now_ns () in
  let reps = f () in
  let elapsed = Pref_obs.Clock.elapsed_ms ~since:t0 in
  elapsed *. 1e6 /. float_of_int (max 1 reps)

let clamp_near default v =
  if Float.is_nan v || v <= 0. then default
  else clamp (default /. 8.) (default *. 8.) v

(* Micro-benchmark the scan-side constants; the parallel overheads keep
   their defaults (spawning domain pools from a calibration probe would
   perturb the very pool the engine is about to use). *)
let calibrate () =
  let d = defaults in
  let n = 20000 in
  let xs = Array.init n (fun i -> float_of_int ((i * 7919) mod n)) in
  let cmp_ns =
    time_ns (fun () ->
        let acc = ref 0 in
        for i = 0 to n - 2 do
          if xs.(i) <= xs.(i + 1) then incr acc
        done;
        ignore !acc;
        n - 1)
  in
  let row_ns =
    time_ns (fun () ->
        let acc = ref 0. in
        for i = 0 to n - 1 do
          acc := !acc +. xs.(i)
        done;
        ignore !acc;
        n)
  in
  let sort_ns =
    time_ns (fun () ->
        let ys = Array.copy xs in
        Array.sort compare ys;
        int_of_float (float_of_int n *. log2f n))
  in
  let c =
    {
      d with
      c_cmp_ns = clamp_near d.c_cmp_ns (cmp_ns *. 8.);
      c_row_ns = clamp_near d.c_row_ns (row_ns *. 8.);
      c_sort_ns = clamp_near d.c_sort_ns sort_ns;
    }
  in
  install c;
  c

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let to_assoc () =
  let c = current () in
  let base =
    [
      ("c_cmp_ns", c.c_cmp_ns);
      ("c_row_ns", c.c_row_ns);
      ("c_sort_ns", c.c_sort_ns);
      ("c_dnc_ns", c.c_dnc_ns);
      ("c_group_ns", c.c_group_ns);
      ("c_derive_ns", c.c_derive_ns);
      ("c_probe_us", c.c_probe_us);
      ("c_par_fixed_us", c.c_par_fixed_us);
      ("c_par_domain_us", c.c_par_domain_us);
      ("c_par_pessimism", c.c_par_pessimism);
      ("c_shard_rtt_us", c.c_shard_rtt_us);
    ]
  in
  let learned =
    Hashtbl.fold (fun k v acc -> ("factor." ^ k, v) :: acc) factors []
  in
  base @ List.sort compare learned

let save path =
  try
    let oc = open_out path in
    List.iter (fun (k, v) -> Printf.fprintf oc "%s=%.6g\n" k v) (to_assoc ());
    close_out oc;
    Ok ()
  with Sys_error msg -> Error msg

let apply_kv c (k, v) =
  match k with
  | "c_cmp_ns" -> { c with c_cmp_ns = v }
  | "c_row_ns" -> { c with c_row_ns = v }
  | "c_sort_ns" -> { c with c_sort_ns = v }
  | "c_dnc_ns" -> { c with c_dnc_ns = v }
  | "c_group_ns" -> { c with c_group_ns = v }
  | "c_derive_ns" -> { c with c_derive_ns = v }
  | "c_probe_us" -> { c with c_probe_us = v }
  | "c_par_fixed_us" -> { c with c_par_fixed_us = v }
  | "c_par_domain_us" -> { c with c_par_domain_us = v }
  | "c_par_pessimism" -> { c with c_par_pessimism = v }
  | "c_shard_rtt_us" -> { c with c_shard_rtt_us = v }
  | _ ->
    if String.length k > 7 && String.sub k 0 7 = "factor." then
      Hashtbl.replace factors
        (String.sub k 7 (String.length k - 7))
        (clamp_factor v);
    c

let load path =
  try
    let ic = open_in path in
    let rec go c =
      match input_line ic with
      | exception End_of_file -> c
      | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go c
        else
          match String.index_opt line '=' with
          | None -> go c
          | Some i -> (
            let k = String.trim (String.sub line 0 i) in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt (String.trim v) with
            | None -> go c
            | Some v when v > 0. -> go (apply_kv c (k, v))
            | Some _ -> go c))
    in
    let c = go (current ()) in
    close_in ic;
    install c;
    Ok c
  with Sys_error msg -> Error msg

let () =
  match Sys.getenv_opt "PREF_COST_CALIBRATION" with
  | Some path when Sys.file_exists path -> ignore (load path)
  | _ -> ()
