(** Incremental maintenance of σ[P](R) under inserts and deletes.

    Because BMO queries are non-monotonic (Example 9), inserts can evict
    current best matches and deletes can resurrect previously dominated
    tuples; this structure keeps the dominated tuples in a shadow set so
    both updates are handled without recomputing from scratch. The test
    suite checks every update sequence against batch recomputation. *)

open Pref_relation

type t

val create : Schema.t -> Preferences.Pref.t -> Tuple.t list -> t

val of_parts :
  Schema.t ->
  Preferences.Pref.t ->
  result:Tuple.t list ->
  shadow:Tuple.t list ->
  t
(** Build the structure from an already-known split — [result] must be
    exactly σ[P](result ∪ shadow) — without the O(n²) recomputation of
    {!create}. This is how the result cache ({!Cache}) rehydrates an entry
    before patching it: the cached BMO set is the result, the rest of the
    base relation the shadow. *)

val result : t -> Relation.t
(** The current σ[P](R), in insertion order. *)

val size : t -> int
(** Number of best matches. *)

val cardinality : t -> int
(** Total rows maintained (result + shadow). *)

val insert : t -> Tuple.t -> unit

val delete : t -> Tuple.t -> bool
(** Remove one occurrence; [false] when the tuple is not present. *)

(** {1 Delta-reporting updates}

    The same updates, also reporting how σ[P](R) itself changed — the
    primitive behind continuous queries (SUBSCRIBE): the reported delta
    is exactly the frame a subscriber must apply to its replica of the
    BMO set. *)

type delta = {
  added : Tuple.t list;  (** rows that entered σ[P](R) *)
  removed : Tuple.t list;  (** rows that left σ[P](R) *)
}

val no_delta : delta

val insert_delta : t -> Tuple.t -> delta
(** {!insert}, reporting the result-set change: empty when the new row
    arrived dominated, otherwise the row itself plus the result tuples it
    evicted. *)

val delete_delta : t -> Tuple.t -> delta option
(** {!delete}, reporting the result-set change: [None] when the tuple was
    not present, [Some no_delta] for a shadow deletion, and the removed
    row plus any promoted shadow tuples for a result deletion. *)
