(** Incremental maintenance of σ[P](R) under inserts and deletes.

    Because BMO queries are non-monotonic (Example 9), inserts can evict
    current best matches and deletes can resurrect previously dominated
    tuples; this structure keeps the dominated tuples in a shadow set so
    both updates are handled without recomputing from scratch. The test
    suite checks every update sequence against batch recomputation. *)

open Pref_relation

type t

val create : Schema.t -> Preferences.Pref.t -> Tuple.t list -> t

val of_parts :
  Schema.t ->
  Preferences.Pref.t ->
  result:Tuple.t list ->
  shadow:Tuple.t list ->
  t
(** Build the structure from an already-known split — [result] must be
    exactly σ[P](result ∪ shadow) — without the O(n²) recomputation of
    {!create}. This is how the result cache ({!Cache}) rehydrates an entry
    before patching it: the cached BMO set is the result, the rest of the
    base relation the shadow. *)

val result : t -> Relation.t
(** The current σ[P](R), in insertion order. *)

val size : t -> int
(** Number of best matches. *)

val cardinality : t -> int
(** Total rows maintained (result + shadow). *)

val insert : t -> Tuple.t -> unit

val delete : t -> Tuple.t -> bool
(** Remove one occurrence; [false] when the tuple is not present. *)
