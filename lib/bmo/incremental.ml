open Pref_relation

(* Incremental maintenance of sigma[P](R) under inserts and deletes.

   BMO results are non-monotonic (Example 9): an insert can both add to and
   evict from the result, and a delete can resurrect previously dominated
   tuples.  The classic approach keeps the non-result tuples around:

   - insert t: if some result tuple dominates t, t goes to the shadow;
     otherwise t enters the result and evicts the result tuples it
     dominates (they move to the shadow).
   - delete t: removing a shadow tuple changes nothing; removing a result
     tuple may promote shadow tuples that were only dominated by it —
     those are re-screened against the remaining rows.

   All operations are linear scans (no index), which is already far cheaper
   than recomputation for the common case. *)

type t = {
  schema : Schema.t;
  dominates : Dominance.t;
  mutable result : Tuple.t list;  (** current sigma[P](R), newest first *)
  mutable shadow : Tuple.t list;  (** dominated tuples, newest first *)
}

let create schema pref rows =
  let dominates = Dominance.of_pref schema pref in
  let result = Naive.maxima dominates rows in
  let shadow =
    List.filter (fun t -> not (List.memq t result)) rows
  in
  { schema; dominates; result; shadow }

let of_parts schema pref ~result ~shadow =
  (* trusts the caller's split (e.g. a cached BMO set plus the rest of the
     relation) instead of recomputing the maxima from scratch *)
  { schema; dominates = Dominance.of_pref schema pref; result; shadow }

let result t = Relation.make t.schema (List.rev t.result)
let size t = List.length t.result
let cardinality t = List.length t.result + List.length t.shadow

type delta = { added : Tuple.t list; removed : Tuple.t list }

let no_delta = { added = []; removed = [] }

let insert_delta t row =
  if List.exists (fun r -> t.dominates r row) t.result then begin
    (* dominated on arrival *)
    t.shadow <- row :: t.shadow;
    no_delta
  end
  else begin
    let evicted, kept = List.partition (fun r -> t.dominates row r) t.result in
    t.result <- row :: kept;
    t.shadow <- evicted @ t.shadow;
    { added = [ row ]; removed = evicted }
  end

let insert t row = ignore (insert_delta t row)

let delete_delta t row =
  let removed_from_result = List.exists (Tuple.equal row) t.result in
  let remove l =
    (* remove one occurrence *)
    let rec go acc = function
      | [] -> List.rev acc
      | x :: rest ->
        if Tuple.equal x row then List.rev_append acc rest else go (x :: acc) rest
    in
    go [] l
  in
  if removed_from_result then begin
    t.result <- remove t.result;
    (* shadow tuples may only have been dominated by the removed tuple.
       Screening against the remaining maxima suffices: every dominance
       chain in an SPO ends in a maximal element, so a tuple dominated by
       anything is dominated by a survivor of the result or by another
       promotion candidate — the candidates' own maxima settle the rest. *)
    let candidates, still_shadow =
      List.partition
        (fun s -> not (List.exists (fun u -> t.dominates u s) t.result))
        t.shadow
    in
    let promoted = Naive.maxima t.dominates candidates in
    let demoted =
      List.filter (fun s -> not (List.memq s promoted)) candidates
    in
    t.result <- promoted @ t.result;
    t.shadow <- demoted @ still_shadow;
    Some { added = promoted; removed = [ row ] }
  end
  else if List.exists (Tuple.equal row) t.shadow then begin
    t.shadow <- remove t.shadow;
    Some no_delta
  end
  else None

let delete t row = Option.is_some (delete_delta t row)
