(** Fixed-size Domain work pool for parallel BMO evaluation.

    [create ~domains:d] spawns [d - 1] worker domains; the calling domain
    participates as worker 0 during {!map}, so [d] domains execute jobs in
    total and [~domains:1] runs everything inline without spawning. The
    pool is reusable across batches — spawning domains is the expensive
    part, so {!Parallel} keeps one pool cached per configured size. *)

type t

exception
  Job_error of {
    index : int;  (** position of the failed item in the input array *)
    domain : int;  (** pool domain ({!self}) the job ran on *)
    exn : exn;  (** the original exception *)
    backtrace : string;
  }
(** What {!map} raises when a job fails: the raw worker exception is
    wrapped with its provenance so a poisoned chunk fails only the query
    that submitted it — the caller gets one typed, catchable error and
    the pool (and any server domain driving it) keeps running. *)

val set_fault_injection : (int -> unit) option -> unit
(** Test hook: when set, the callback runs at the start of every job with
    the job's item index; raising from it simulates a poisoned chunk. The
    setting is global and cross-domain (atomic); pass [None] to clear.
    Production code never sets it. *)

val create : domains:int -> t
(** Raises [Invalid_argument] when [domains < 1]. *)

val size : t -> int
(** Total executing domains, including the caller. *)

val self : unit -> int
(** Id of the domain running the current job: [0] for the caller (and for
    any code outside a pool job), [1 .. size-1] for worker domains. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] runs [f] over all items across the pool's domains
    and returns the results in input order (deterministic merge order, no
    matter which domain ran which item). Blocks until every item is done.
    If any [f] raises, the first failure observed is re-raised in the
    caller as {!Job_error} after the batch has drained — worker domains
    never die and the pool stays usable. Not re-entrant: do not call
    [map] from inside a job of the same pool. *)

val shutdown : t -> unit
(** Join all worker domains. Queued-but-unstarted batches finish first;
    the pool must not be used afterwards. *)

val chunks : domains:int -> int -> (int * int) array
(** [(offset, length)] slices splitting [n] elements into at most
    [domains] contiguous, balanced, non-empty chunks (fewer when
    [n < domains]). *)
