(** Fixed-size Domain work pool for parallel BMO evaluation.

    [create ~domains:d] spawns [d - 1] worker domains; the calling domain
    participates as worker 0 during {!map}, so [d] domains execute jobs in
    total and [~domains:1] runs everything inline without spawning. The
    pool is reusable across batches — spawning domains is the expensive
    part, so {!Parallel} keeps one pool cached per configured size. *)

type t

val create : domains:int -> t
(** Raises [Invalid_argument] when [domains < 1]. *)

val size : t -> int
(** Total executing domains, including the caller. *)

val self : unit -> int
(** Id of the domain running the current job: [0] for the caller (and for
    any code outside a pool job), [1 .. size-1] for worker domains. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] runs [f] over all items across the pool's domains
    and returns the results in input order (deterministic merge order, no
    matter which domain ran which item). Blocks until every item is done.
    If any [f] raises, the first exception observed is re-raised in the
    caller after the batch has drained. Not re-entrant: do not call [map]
    from inside a job of the same pool. *)

val shutdown : t -> unit
(** Join all worker domains. Queued-but-unstarted batches finish first;
    the pool must not be used afterwards. *)

val chunks : domains:int -> int -> (int * int) array
(** [(offset, length)] slices splitting [n] elements into at most
    [domains] contiguous, balanced, non-empty chunks (fewer when
    [n < domains]). *)
