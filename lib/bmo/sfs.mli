(** Sort-filter BMO evaluation (SFS-style).

    Requires a {e topological} key: whenever [a] dominates [b], [key a >=
    key b] must hold (e.g. the sum of the maximised dimensions for a Pareto
    preference over numeric chains). Under that precondition the window only
    grows, which makes SFS faster than BNL on data with large skylines.
    Supplying a non-topological key yields wrong results — the test suite
    checks both directions.

    The sort runs over a materialised array ([Array.stable_sort]) and the
    filter pass probes an append-only array window, so neither phase
    allocates per candidate. *)

open Pref_relation

val maxima : key:(Tuple.t -> float) -> Dominance.t -> Tuple.t list -> Tuple.t list

val sum_key : Schema.t -> string list -> maximize:bool -> Tuple.t -> float
(** Topological key for Pareto preferences of HIGHEST (or, with
    [maximize:false], LOWEST) chains over the named numeric attributes. *)

val maxima_vec :
  ?count:int ref ->
  key:(Tuple.t -> float) ->
  Dominance.vec ->
  Tuple.t list ->
  Tuple.t array
(** Vectorized sort-filter: sort, project each row once, filter over flat
    vectors. [count] accumulates dominance tests. Same result (and order:
    descending key) as {!maxima}. *)

val filter_sorted :
  dominates:('p -> 'p -> bool) ->
  ?count:int ref ->
  ('p * Tuple.t) array ->
  ('p * Tuple.t) array
(** The append-only filter pass over {e presorted}, caller-projected
    points — the building block the parallel layer splits across domains.
    Precondition: points are in descending topological-key order, so no
    later point dominates an earlier one. *)

val query :
  Schema.t -> key:(Tuple.t -> float) -> Preferences.Pref.t -> Relation.t -> Relation.t

val progressive :
  key:(Tuple.t -> float) -> Dominance.t -> Tuple.t list -> Tuple.t Seq.t
(** Progressive skyline delivery ([TEO01]): maxima are emitted as soon as
    they are identified, best presort key first; consuming the whole
    sequence yields exactly [maxima]. Same topological-key precondition as
    {!maxima}. The sequence is ephemeral (internal window state) — consume
    it once. *)
