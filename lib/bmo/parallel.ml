open Pref_relation

(* Parallel BMO evaluation over a reusable {!Pool} of domains.

   Divide-and-conquer skyline: split the input into P contiguous chunks,
   run the array-window BNL pass ({!Bnl.maxima_proj}) on each chunk in its
   own domain, then merge the chunk windows pairwise, filtering out
   cross-chunk dominated tuples.  Correct for every strict partial order:
   in a finite SPO every dominated tuple is dominated by some *maximal*
   tuple (domination chains are finite and transitivity closes them), so
   filtering chunk-local maxima against the other chunks' maxima is exact.

   Parallel SFS: one global presort by a topological key, then the
   append-only filter pass is split — each chunk filters locally, and in a
   second parallel phase chunk k drops its survivors dominated by a local
   survivor of any chunk before it (sound because SFS windows never evict:
   any cross-chunk dominator is, transitively, represented by a surviving
   one). *)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let default_domains_ref = ref (max 1 (Domain.recommended_domain_count ()))
let default_domains () = !default_domains_ref

let set_default_domains n =
  if n < 1 then invalid_arg "Parallel.set_default_domains: need >= 1";
  default_domains_ref := n

(* One cached pool, rebuilt when the requested size changes. Spawning
   domains costs far more than a skyline chunk, so reuse matters. *)
let pool_cache : (int * Pool.t) option ref = ref None

(* Serialises lookup/create/shutdown of the cached pool: concurrent server
   domains asking for the same size share one pool; a size change swaps the
   pool atomically (callers that already hold the old pool finish their
   in-flight batch before [shutdown] joins it — queued batches drain
   first). *)
let pool_mutex = Mutex.create ()

let pool_for domains =
  Mutex.lock pool_mutex;
  let p =
    match !pool_cache with
    | Some (d, p) when d = domains -> p
    | prev ->
      (match prev with Some (_, p) -> Pool.shutdown p | None -> ());
      let p = Pool.create ~domains in
      pool_cache := Some (domains, p);
      p
  in
  Mutex.unlock pool_mutex;
  p

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

type chunk_stat = { c_rows : int; c_out : int; c_tests : int; c_domain : int }

type stats = {
  s_domains : int;
  s_chunks : chunk_stat array;
  s_local_ms : float;
  s_merge_ms : float;
  s_merge_tests : int;
}

let total_tests st =
  Array.fold_left (fun acc c -> acc + c.c_tests) st.s_merge_tests st.s_chunks

let stats_attrs st =
  [
    ("domains", string_of_int st.s_domains);
    ( "chunk_rows",
      String.concat ","
        (Array.to_list (Array.map (fun c -> string_of_int c.c_rows) st.s_chunks))
    );
    ( "chunk_out",
      String.concat ","
        (Array.to_list (Array.map (fun c -> string_of_int c.c_out) st.s_chunks))
    );
    ( "chunk_tests",
      String.concat ","
        (Array.to_list (Array.map (fun c -> string_of_int c.c_tests) st.s_chunks))
    );
    ("merge_tests", string_of_int st.s_merge_tests);
    ("local_ms", Printf.sprintf "%.3f" st.s_local_ms);
    ("merge_ms", Printf.sprintf "%.3f" st.s_merge_ms);
  ]

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)

(* Keep the points of [xs] not dominated by any point of [against]. *)
let filter_against ~dominates ~tests xs against =
  let m = Array.length against in
  if m = 0 then xs
  else
    Array.to_list xs
    |> List.filter (fun (px, _) ->
           let dominated = ref false in
           let j = ref 0 in
           while (not !dominated) && !j < m do
             incr tests;
             if dominates (fst (Array.unsafe_get against !j)) px then
               dominated := true
             else incr j
           done;
           not !dominated)
    |> Array.of_list

(* Pairwise merge in chunk order. Filtering [part] against the already
   thinned [acc'] (rather than [acc]) is equivalent: an evicted [a] was
   dominated by some surviving point, which by transitivity also dominates
   whatever [a] dominated. *)
let merge_windows ~dominates ~tests parts =
  Array.fold_left
    (fun acc part ->
      if Array.length acc = 0 then part
      else begin
        let acc' = filter_against ~dominates ~tests acc part in
        let part' = filter_against ~dominates ~tests part acc' in
        Array.append acc' part'
      end)
    [||] parts

(* ------------------------------------------------------------------ *)
(* Parallel divide-and-conquer skyline                                 *)

let dnc_points ~dominates ~pool ~chunks ~project rows =
  let k = Array.length chunks in
  let counts = Array.init k (fun _ -> ref 0) in
  let doms = Array.make k 0 in
  let locals, local_ms =
    Pref_obs.Span.timed (fun () ->
        Pool.map pool
          (fun i ->
            let off, len = chunks.(i) in
            doms.(i) <- Pool.self ();
            Pref_obs.Span.with_span "bmo.par.chunk" (fun () ->
                let pts =
                  Array.init len (fun j ->
                      let t = Array.unsafe_get rows (off + j) in
                      (project t, t))
                in
                let out = Bnl.maxima_proj ~dominates ~count:counts.(i) pts in
                Pref_obs.Span.add_attrs
                  [
                    ("chunk", string_of_int i);
                    ("domain", string_of_int doms.(i));
                    ("rows", string_of_int len);
                    ("out", string_of_int (Array.length out));
                    ("tests", string_of_int !(counts.(i)));
                  ];
                out))
          (Array.init k Fun.id))
  in
  let merge_tests = ref 0 in
  let merged, merge_ms =
    Pref_obs.Span.timed (fun () ->
        Pref_obs.Span.with_span "bmo.par.merge" (fun () ->
            let m = merge_windows ~dominates ~tests:merge_tests locals in
            Pref_obs.Span.add_attrs
              [
                ("out", string_of_int (Array.length m));
                ("tests", string_of_int !merge_tests);
              ];
            m))
  in
  let stats =
    {
      s_domains = Pool.size pool;
      s_chunks =
        Array.init k (fun i ->
            {
              c_rows = snd chunks.(i);
              c_out = Array.length locals.(i);
              c_tests = !(counts.(i));
              c_domain = doms.(i);
            });
      s_local_ms = local_ms;
      s_merge_ms = merge_ms;
      s_merge_tests = !merge_tests;
    }
  in
  (Array.map snd merged, stats)

let maxima_dnc ~domains (vec : Dominance.vec) (rows : Tuple.t array) =
  let domains = max 1 domains in
  let chunks = Pool.chunks ~domains (Array.length rows) in
  let pool = pool_for domains in
  match vec.Dominance.floats with
  | Some proj ->
    dnc_points ~dominates:Dominance.float_dominates ~pool ~chunks ~project:proj
      rows
  | None ->
    dnc_points ~dominates:vec.Dominance.better ~pool ~chunks
      ~project:vec.Dominance.project rows

(* ------------------------------------------------------------------ *)
(* Parallel sort-filter skyline                                        *)

let sfs_points ~dominates ~pool ~chunks ~project sorted =
  let k = Array.length chunks in
  let counts = Array.init k (fun _ -> ref 0) in
  let doms = Array.make k 0 in
  (* Phase 1: local append-only windows over contiguous sorted ranges. *)
  let locals, local_ms =
    Pref_obs.Span.timed (fun () ->
        Pool.map pool
          (fun i ->
            let off, len = chunks.(i) in
            doms.(i) <- Pool.self ();
            Pref_obs.Span.with_span "bmo.par.chunk" (fun () ->
                let pts =
                  Array.init len (fun j ->
                      let t = Array.unsafe_get sorted (off + j) in
                      (project t, t))
                in
                Sfs.filter_sorted ~dominates ~count:counts.(i) pts))
          (Array.init k Fun.id))
  in
  (* Phase 2: drop chunk k's survivors dominated by a local survivor of
     any earlier chunk. Sound because phase-1 windows never evict: a
     cross-chunk dominator that was itself filtered out is dominated by a
     survivor, which dominates transitively. *)
  let merge_tests_per = Array.init k (fun _ -> ref 0) in
  let survivors, merge_ms =
    Pref_obs.Span.timed (fun () ->
        Pool.map pool
          (fun i ->
            if i = 0 then locals.(0)
            else begin
              let tests = merge_tests_per.(i) in
              Array.to_list locals.(i)
              |> List.filter (fun (px, _) ->
                     let dominated = ref false in
                     let j = ref 0 in
                     while (not !dominated) && !j < i do
                       let lj = locals.(!j) in
                       let m = Array.length lj in
                       let u = ref 0 in
                       while (not !dominated) && !u < m do
                         incr tests;
                         if dominates (fst (Array.unsafe_get lj !u)) px then
                           dominated := true
                         else incr u
                       done;
                       incr j
                     done;
                     not !dominated)
              |> Array.of_list
            end)
          (Array.init k Fun.id))
  in
  let merge_tests = Array.fold_left (fun a r -> a + !r) 0 merge_tests_per in
  let stats =
    {
      s_domains = Pool.size pool;
      s_chunks =
        Array.init k (fun i ->
            {
              c_rows = snd chunks.(i);
              c_out = Array.length survivors.(i);
              c_tests = !(counts.(i));
              c_domain = doms.(i);
            });
      s_local_ms = local_ms;
      s_merge_ms = merge_ms;
      s_merge_tests = merge_tests;
    }
  in
  (* Concatenation in chunk order = descending key order, the same output
     order as sequential SFS. *)
  (Array.map snd (Array.concat (Array.to_list survivors)), stats)

let maxima_sfs ~domains ~key (vec : Dominance.vec) (rows : Tuple.t array) =
  let domains = max 1 domains in
  let sorted = Array.copy rows in
  Array.stable_sort (fun a b -> Float.compare (key b) (key a)) sorted;
  let chunks = Pool.chunks ~domains (Array.length sorted) in
  let pool = pool_for domains in
  match vec.Dominance.floats with
  | Some proj ->
    sfs_points ~dominates:Dominance.float_dominates ~pool ~chunks ~project:proj
      sorted
  | None ->
    sfs_points ~dominates:vec.Dominance.better ~pool ~chunks
      ~project:vec.Dominance.project sorted

(* ------------------------------------------------------------------ *)
(* Relation-level wrappers                                             *)

let record ~algorithm ~n_in ~best ~stats ~ms =
  if Pref_obs.Control.is_enabled () then begin
    Obs.record_query ~algorithm ~n_in ~n_out:(Array.length best)
      ~comparisons:(total_tests stats) ~ms;
    Pref_obs.Metrics.incr Obs.par_queries;
    Array.iter
      (fun c -> Pref_obs.Metrics.observe Obs.par_chunk_rows (float_of_int c.c_rows))
      stats.s_chunks;
    Pref_obs.Metrics.observe Obs.par_merge_ms stats.s_merge_ms;
    Pref_obs.Span.add_attrs (stats_attrs stats)
  end

let query ?domains schema p rel =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  Pref_obs.Span.with_span "bmo.par_dnc" (fun () ->
      let vec = Dominance.of_pref_vec schema p in
      let rows = Array.of_list (Relation.rows rel) in
      let (best, stats), ms =
        Pref_obs.Span.timed (fun () -> maxima_dnc ~domains vec rows)
      in
      record ~algorithm:"par_dnc" ~n_in:(Array.length rows) ~best ~stats ~ms;
      Relation.make (Relation.schema rel) (Array.to_list best))

let query_sfs ?domains schema ~attrs ~maximize p rel =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  Pref_obs.Span.with_span "bmo.par_sfs" (fun () ->
      let vec = Dominance.of_pref_vec schema p in
      let key = Sfs.sum_key schema attrs ~maximize in
      let rows = Array.of_list (Relation.rows rel) in
      let (best, stats), ms =
        Pref_obs.Span.timed (fun () -> maxima_sfs ~domains ~key vec rows)
      in
      record ~algorithm:"par_sfs" ~n_in:(Array.length rows) ~best ~stats ~ms;
      Relation.make (Relation.schema rel) (Array.to_list best))
