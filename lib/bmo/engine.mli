(** The unified engine configuration — one record for every evaluation
    knob that used to be threaded as scattered optional arguments through
    [Query.sigma] / [Exec.run] / the shell / the CLIs.

    The record travels as a value: sessions hold one, the server's SET
    verb edits one, compatibility wrappers build one from the old
    optional arguments. {!set} is the single string-typed knob parser the
    shell's [\set] and the wire protocol's [SET] share.

    Deadlines implement graceful degradation rather than cancellation:
    when a query's budget expires mid-evaluation the engine returns the
    current BNL window with the [partial] flag set — a valid BMO set of
    the scanned prefix — instead of hanging or killing the query (see
    DESIGN.md §10 for the degradation ladder). *)

(** {1 Algorithms} *)

type algorithm =
  | Alg_naive  (** exhaustive better-than tests, O(n²) *)
  | Alg_bnl  (** block-nested-loops window algorithm *)
  | Alg_decompose  (** divide & conquer via Propositions 8–12 *)
  | Alg_parallel  (** chunked multi-domain evaluation ({!Parallel}) *)
  | Alg_auto  (** cost-based choice by {!Planner} *)

val algorithm_of_string : string -> algorithm option
val algorithm_to_string : algorithm -> string

(** {1 The configuration record} *)

type config = {
  algorithm : algorithm;
  domains : int option;
      (** degree of parallelism for [Alg_parallel]/[Alg_auto];
          [None] = engine default ({!Parallel.default_domains}) *)
  cache : bool;
      (** consult/fill the global BMO result cache (only acts when
          {!Cache.global} is enabled) *)
  check : bool;  (** static-check Preference SQL before executing *)
  profile : bool;  (** build a per-query profile *)
  deadline_ms : float option;
      (** per-query time budget in milliseconds; on expiry the engine
          degrades to the current BNL window with [partial] set *)
  max_rows : int option;
      (** result-row cap; overflow is dropped and [truncated] set *)
  slowlog_ms : float option;
      (** slow-query log threshold in milliseconds; queries at or above
          it are recorded by the session layer ([Pref_engine.Slowlog]).
          [None] disables the log. *)
  costmodel : bool;
      (** price plan alternatives and semantic cache reuse with the
          calibrated {!Cost} model (default); [false] falls back to the
          fixed-threshold heuristics and ungated cache tiers, so a cost
          model regression is bisectable with one knob *)
}

val default : config
(** [Alg_bnl], engine-default domains, cache on (inert until the global
    cache is enabled), no checking, no profile, no deadline, no cap —
    exactly the behaviour of the old optional-argument defaults. *)

(** {1 Result flags} *)

type flags = {
  partial : bool;  (** the deadline expired; this is a prefix BMO set *)
  truncated : bool;  (** [max_rows] dropped rows from the result *)
}

val complete : flags
val union_flags : flags -> flags -> flags
val flags_attrs : flags -> (string * string) list
(** Span/profile attributes; empty for {!complete}. *)

(** {1 Structured results}

    One record for everything a query evaluation hands back, so the
    session, wire and revision layers share a single result surface
    instead of parallel out-channels. *)

module Result : sig
  type nonrec t = {
    rows : Pref_relation.Relation.t;  (** the BMO set *)
    flags : flags;
    profile : Pref_obs.Profile.t option;
        (** present when the run was profiled ([config.profile]) *)
    plan : string option;
        (** the executed plan/algorithm in one word-ish string, e.g.
            ["bnl"], ["auto:dnc(4)"], ["cache:semantic:prior-prefix"] or
            ["refine:seed"] — the same identifier EXPLAIN reports *)
  }

  val make :
    ?profile:Pref_obs.Profile.t ->
    ?plan:string ->
    Pref_relation.Relation.t ->
    flags ->
    t
end

(** {1 Deadlines} *)

type deadline
(** An absolute monotonic-clock expiry, or none. Start one at query entry
    and thread it through the evaluation so parse / join / BMO phases all
    draw down the same budget. *)

val no_deadline : deadline
val deadline_of : config -> deadline
(** Start [config.deadline_ms] counting now ({!Pref_obs.Clock}). *)

val has_deadline : deadline -> bool
val expired : deadline -> bool
(** [false] for {!no_deadline}. *)

(** {1 String-typed knob access}

    Shared by the shell's [\set] and the server's [SET] wire verb, so
    both surfaces accept exactly the same keys and values. *)

val set : config -> key:string -> value:string -> (config, string) result
(** Keys: [algorithm] (naive|bnl|decompose|parallel|auto), [domains]
    (positive int), [cache]/[check]/[profile] (on|off), [deadline]
    (milliseconds, or [off]), [maxrows] (positive int, or [off]),
    [slowlog] (millisecond threshold, or [off]), [costmodel] (on|off).
    [Error] carries a usage message naming the valid values. *)

val describe : config -> (string * string) list
(** Current value of every knob, in {!set}-compatible spelling. *)
