open Pref_relation
module Pref = Preferences.Pref
module Canon = Preferences.Canon

(* Preference-aware BMO result cache. See the .mli for the reuse identities;
   the proofs live in DESIGN.md ("Result caching & semantic reuse"). *)

type entry = {
  e_schema : Schema.t;
  e_pref : Pref.t;  (** canonical form *)
  e_pref_key : string;
  e_fp : string;
  e_proj : string list;
  e_result : Relation.t;
  e_bytes : int;
  mutable e_tick : int;
}

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  semantic_reuses : int;
  patched_entries : int;
  evictions : int;
  cost_skipped : int;
}

type t = {
  (* One lock per cache around the public operations: the server's worker
     domains share [global] across sessions, and Hashtbl plus the mutable
     counters race without it.  Internal helpers ([store_entry],
     [find_*], [derive]) assume the lock is held and never re-take it
     (the mutex is not reentrant). *)
  m : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable enabled : bool;
  mutable tick : int;
  mutable max_entries : int;
  mutable budget_bytes : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable semantic : int;
  mutable patched : int;
  mutable evictions : int;
  mutable cost_skipped : int;
}

let create ?(max_entries = 128) ?(budget_bytes = 64 * 1024 * 1024) () =
  {
    m = Mutex.create ();
    table = Hashtbl.create 64;
    enabled = true;
    tick = 0;
    max_entries;
    budget_bytes;
    bytes = 0;
    hits = 0;
    misses = 0;
    semantic = 0;
    patched = 0;
    evictions = 0;
    cost_skipped = 0;
  }

let global =
  let t = create () in
  t.enabled <- false;
  t

let is_enabled () = global.enabled
let set_enabled b = global.enabled <- b

(* {1 Fingerprints} *)

(* Two independent accumulators over the per-row hash: a single polynomial
   hash truncated to an int is collision-prone at cache-relevant scales, and
   a false fingerprint match would serve a wrong result. Memoised on the
   physical identity of the row list — relations are immutable here, so the
   same physical list always denotes the same version. *)
let fp_memo : (Tuple.t list * string) list ref = ref []
let fp_memo_cap = 8

(* The memo list is shared global state touched from every domain that
   fingerprints a relation; its own small lock keeps the lock order
   simple (cache lock, then memo lock — never the reverse). *)
let fp_mutex = Mutex.create ()

let fingerprint rel =
  let rows = Relation.rows rel in
  Mutex.lock fp_mutex;
  let memoised = List.find_opt (fun (r, _) -> r == rows) !fp_memo in
  Mutex.unlock fp_mutex;
  match memoised with
  | Some (_, fp) -> fp
  | None ->
    let h1 = ref 0 and h2 = ref 0 and n = ref 0 in
    List.iter
      (fun t ->
        let h = Tuple.hash t in
        h1 := ((!h1 * 31) + h) land max_int;
        h2 := ((!h2 * 1000003) + (h lxor 0x9e3779b9)) land max_int;
        incr n)
      rows;
    let fp =
      Printf.sprintf "%s#%d:%x:%x"
        (String.concat "," (Schema.names (Relation.schema rel)))
        !n !h1 !h2
    in
    Mutex.lock fp_mutex;
    fp_memo :=
      List.filteri (fun i _ -> i < fp_memo_cap) ((rows, fp) :: !fp_memo);
    Mutex.unlock fp_mutex;
    fp

let entry_key ~fp ~proj ~pref_key =
  String.concat "\x00" (fp :: pref_key :: proj)

(* {1 Capacity} *)

let sync_gauges t =
  Pref_obs.Metrics.set Obs.cache_entries (float_of_int (Hashtbl.length t.table));
  Pref_obs.Metrics.set Obs.cache_bytes (float_of_int t.bytes)

let evict_until_fits t =
  let over () =
    Hashtbl.length t.table > t.max_entries || t.bytes > t.budget_bytes
  in
  while over () && Hashtbl.length t.table > 0 do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.e_tick <= e.e_tick -> acc
          | _ -> Some (key, e))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (key, e) ->
      Hashtbl.remove t.table key;
      t.bytes <- t.bytes - e.e_bytes;
      t.evictions <- t.evictions + 1;
      Pref_obs.Metrics.incr Obs.cache_evictions
  done;
  sync_gauges t

(* Public operations take the cache lock for their whole extent; the
   [locked] wrapper keeps the release exception-safe. *)
let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.bytes <- 0;
  sync_gauges t

let set_budget t ?max_entries ?budget_bytes () =
  locked t @@ fun () ->
  Option.iter (fun n -> t.max_entries <- max 1 n) max_entries;
  Option.iter (fun b -> t.budget_bytes <- max 0 b) budget_bytes;
  evict_until_fits t

(* {1 Store / exact lookup} *)

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

let store_entry t ~fp ~proj ~pref_key schema cpref result =
  let key = entry_key ~fp ~proj ~pref_key in
  (match Hashtbl.find_opt t.table key with
  | Some old ->
    Hashtbl.remove t.table key;
    t.bytes <- t.bytes - old.e_bytes
  | None -> ());
  let e =
    {
      e_schema = schema;
      e_pref = cpref;
      e_pref_key = pref_key;
      e_fp = fp;
      e_proj = proj;
      e_result = result;
      e_bytes = 0;
      e_tick = 0;
    }
  in
  (* approximate: stored sets share tuples with their base relation, and
     [reachable_words] counts the shared structure in full, so this bounds
     the cache's worst-case ownership from above *)
  let e = { e with e_bytes = Obj.reachable_words (Obj.repr e) * (Sys.word_size / 8) } in
  touch t e;
  Hashtbl.replace t.table key e;
  t.bytes <- t.bytes + e.e_bytes;
  evict_until_fits t

let store t ?(projection = []) schema p rel result =
  if t.enabled then begin
    let fp = fingerprint rel in
    let pref_key = Canon.key p in
    let cpref = Canon.canonical p in
    locked t @@ fun () ->
    store_entry t ~fp ~proj:projection ~pref_key schema cpref result
  end

let find_exact t ~fp ~proj pref_key =
  Hashtbl.find_opt t.table (entry_key ~fp ~proj ~pref_key)

(* {1 Semantic reuse} *)

type derivation =
  | D_prior of entry * Pref.t * string list
      (** cached σ[prefix](R); rest term; groupby attrs of the prefix *)
  | D_dunion of entry list  (** every +-operand cached: fold ∩ *)
  | D_pareto of entry * Pref.t * string list
      (** cached σ[P1](R); the remaining ⊗-term; attrs(P1) *)

let rebuild mk = function
  | [] -> invalid_arg "Cache.rebuild: empty operand list"
  | first :: rest -> List.fold_left mk first rest

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

(* Longest cached prefix of the &-spine: σ[Q & P'](R) = σ[P' groupby
   attrs(Q)](σ[Q](R)) (Proposition 10; the A1-group of every Q-maximal
   tuple lies wholly inside σ[Q](R), so grouping the cached set suffices). *)
let find_prior t ~fp ~proj spine =
  let n = List.length spine in
  let rec go k =
    if k < 1 then None
    else
      let prefix = take k spine in
      let prefix_term = rebuild (fun a b -> Pref.Prior (a, b)) prefix in
      match find_exact t ~fp ~proj (Preferences.Serialize.to_string prefix_term) with
      | Some e ->
        let rest = rebuild (fun a b -> Pref.Prior (a, b)) (drop k spine) in
        Some (D_prior (e, rest, Pref.attrs prefix_term))
      | None -> go (k - 1)
  in
  go (n - 1)

let find_dunion t ~fp ~proj ops =
  let cached =
    List.map
      (fun op -> find_exact t ~fp ~proj (Preferences.Serialize.to_string op))
      ops
  in
  if List.for_all Option.is_some cached then
    Some (D_dunion (List.filter_map Fun.id cached))
  else None

(* One cached ⊗-operand P1 with attributes disjoint from the rest P2:
   σ[P1 ⊗ P2](R) = σ[P1 ⊗ P2](σ[P2 groupby attrs(P1)](R)), and the cached
   σ[P1](R) tuples surviving that restriction are already final
   (Proposition 12's first term) — they seed the scan. *)
let find_pareto t ~fp ~proj ops =
  let rec go before = function
    | [] -> None
    | op :: after -> (
      let others = List.rev_append before after in
      let a1 = Pref.attrs op in
      let rest_attrs =
        List.fold_left
          (fun acc q -> Preferences.Attr.union acc (Pref.attrs q))
          [] others
      in
      if not (Preferences.Attr.disjoint a1 rest_attrs) then
        go (op :: before) after
      else
        match find_exact t ~fp ~proj (Preferences.Serialize.to_string op) with
        | Some e ->
          let rest = rebuild (fun a b -> Pref.Pareto (a, b)) others in
          Some (D_pareto (e, rest, a1))
        | None -> go (op :: before) after)
  in
  go [] ops

let find_semantic t ~fp ~proj cpref =
  match cpref with
  | Pref.Prior _ ->
    Option.map
      (fun d -> ("prior-prefix", d))
      (find_prior t ~fp ~proj (Canon.prior_spine cpref))
  | Pref.Dunion _ ->
    Option.map
      (fun d -> ("dunion-inter", d))
      (find_dunion t ~fp ~proj (Canon.dunion_operands cpref))
  | Pref.Pareto _ ->
    Option.map
      (fun d -> ("pareto-restrict", d))
      (find_pareto t ~fp ~proj (Canon.pareto_operands cpref))
  | _ -> None

let derive schema cpref rel = function
  | D_prior (e, rest, by) -> Groupby.query schema rest ~by e.e_result
  | D_dunion entries -> (
    match entries with
    | [] -> invalid_arg "Cache.derive: empty dunion"
    | first :: others ->
      List.fold_left
        (fun acc e -> Relation.inter acc e.e_result)
        first.e_result others)
  | D_pareto (e, rest, a1) ->
    let restricted = Groupby.query schema rest ~by:a1 rel in
    let seed =
      List.filter
        (fun r -> Relation.mem restricted r)
        (Relation.rows e.e_result)
    in
    let others =
      List.filter
        (fun r -> not (List.exists (Tuple.equal r) seed))
        (Relation.rows restricted)
    in
    let dominates = Dominance.of_pref schema cpref in
    Relation.make schema (Bnl.maxima dominates (seed @ others))

(* Predicted reconstruction overhead a derivation would pay on top of a
   cold evaluation, in ms — [None] means "serve it".  prior-prefix and
   dunion-inter derive from the cached result sets and are strictly
   cheaper than any cold run, so they are never refused (a test pins
   this).  pareto-restrict re-groups the full base relation: at bench
   scale that reconstruction measured ~60x a cold run (B10), so it only
   serves while the predicted overhead stays inside the model's slack. *)
let derivation_overhead_ms ~n = function
  | D_prior _ | D_dunion _ -> None
  | D_pareto _ ->
    let overhead = Cost.derive_pareto_overhead_ms ~n in
    if overhead > Cost.semantic_gate_slack_ms then Some overhead else None

(* {1 The counting protocol} *)

type reuse = Exact | Semantic of string
type tier_probe = { tier : string; hit : bool; ms : float }

(* The semantic tier a canonical term would be matched against — one per
   composition head, mirroring the dispatch in [find_semantic]. *)
let semantic_tier = function
  | Pref.Prior _ -> Some "prior-prefix"
  | Pref.Dunion _ -> Some "dunion-inter"
  | Pref.Pareto _ -> Some "pareto-restrict"
  | _ -> None

(* Time one tier's finder and feed the bmo.cache.probe_ms.<tier>
   histogram; the probe record also rides along in EXPLAIN output. *)
let timed_tier tier hit_of f =
  let since = Pref_obs.Clock.now_ns () in
  let r = f () in
  let ms = Pref_obs.Clock.elapsed_ms ~since in
  Obs.observe_probe tier ms;
  (r, { tier; hit = hit_of r; ms })

let lookup t ?(projection = []) ?(gate = true) schema p rel =
  if not t.enabled then None
  else begin
    let fp = fingerprint rel in
    let cpref = Canon.canonical p in
    let pref_key = Preferences.Serialize.to_string cpref in
    let n = List.length (Relation.rows rel) in
    locked t @@ fun () ->
    let exact, _ =
      timed_tier "exact" Option.is_some (fun () ->
          find_exact t ~fp ~proj:projection pref_key)
    in
    match exact with
    | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      Pref_obs.Metrics.incr Obs.cache_hits;
      Some (e.e_result, Exact)
    | None -> (
      let semantic =
        match semantic_tier cpref with
        | None -> None
        | Some tier ->
          fst
            (timed_tier tier Option.is_some (fun () ->
                 find_semantic t ~fp ~proj:projection cpref))
      in
      let semantic =
        match semantic with
        | Some (_, d) when gate && derivation_overhead_ms ~n d <> None ->
          (* predicted to lose to a cold run: miss instead of serving *)
          t.cost_skipped <- t.cost_skipped + 1;
          Pref_obs.Metrics.incr Obs.cache_cost_skipped;
          None
        | s -> s
      in
      match semantic with
      | Some (desc, d) ->
        let result = derive schema cpref rel d in
        (* repeat queries become exact hits *)
        store_entry t ~fp ~proj:projection ~pref_key schema cpref result;
        t.semantic <- t.semantic + 1;
        Pref_obs.Metrics.incr Obs.cache_semantic;
        Some (result, Semantic desc)
      | None ->
        t.misses <- t.misses + 1;
        Pref_obs.Metrics.incr Obs.cache_misses;
        None)
  end

let probe_traced t ?(projection = []) ?(gate = true) _schema p rel =
  if not t.enabled then (None, [])
  else begin
    let fp = fingerprint rel in
    let cpref = Canon.canonical p in
    let pref_key = Preferences.Serialize.to_string cpref in
    let n = List.length (Relation.rows rel) in
    locked t @@ fun () ->
    let exact, p_exact =
      timed_tier "exact" Option.is_some (fun () ->
          find_exact t ~fp ~proj:projection pref_key)
    in
    match exact with
    | Some _ -> (Some Exact, [ p_exact ])
    | None -> (
      match semantic_tier cpref with
      | None -> (None, [ p_exact ])
      | Some tier ->
        let found, p_sem =
          timed_tier tier Option.is_some (fun () ->
              find_semantic t ~fp ~proj:projection cpref)
        in
        match found with
        | Some (_, d) when gate && derivation_overhead_ms ~n d <> None ->
          (* a probe never counts, so the skip is only marked in the
             probe record EXPLAIN renders *)
          let overhead = Option.get (derivation_overhead_ms ~n d) in
          ( None,
            [
              p_exact;
              {
                tier =
                  Printf.sprintf "%s[cost-skip +%.1fms]" tier overhead;
                hit = false;
                ms = p_sem.ms;
              };
            ] )
        | _ ->
          ( Option.map (fun (desc, _) -> Semantic desc) found,
            [ p_exact; p_sem ] ))
  end

let probe t ?projection ?gate schema p rel =
  fst (probe_traced t ?projection ?gate schema p rel)

(* {1 Incremental maintenance} *)

let entries_for t fp =
  Hashtbl.fold (fun _ e acc -> if String.equal e.e_fp fp then e :: acc else acc)
    t.table []

let patch t ~old_rel ~new_rel update =
  if not t.enabled then 0
  else begin
    let old_fp = fingerprint old_rel in
    let new_fp = fingerprint new_rel in
    locked t @@ fun () ->
    let affected = entries_for t old_fp in
    List.iter
      (fun e ->
        let result_rows = Relation.rows e.e_result in
        (* every value-duplicate of a maximal tuple is itself maximal, so
           membership screening splits the base exactly into result/shadow *)
        let shadow =
          List.filter
            (fun r -> not (List.exists (Tuple.equal r) result_rows))
            (Relation.rows old_rel)
        in
        let inc =
          Incremental.of_parts e.e_schema e.e_pref
            ~result:(List.rev result_rows) ~shadow
        in
        update inc;
        store_entry t ~fp:new_fp ~proj:e.e_proj ~pref_key:e.e_pref_key
          e.e_schema e.e_pref (Incremental.result inc);
        t.patched <- t.patched + 1;
        Pref_obs.Metrics.incr Obs.cache_patched)
      affected;
    List.length affected
  end

let on_insert t ~old_rel ~new_rel row =
  patch t ~old_rel ~new_rel (fun inc -> Incremental.insert inc row)

let on_delete t ~old_rel ~new_rel row =
  patch t ~old_rel ~new_rel (fun inc -> ignore (Incremental.delete inc row))

(* {1 Introspection} *)

let stats t =
  locked t @@ fun () ->
  {
    entries = Hashtbl.length t.table;
    bytes = t.bytes;
    hits = t.hits;
    misses = t.misses;
    semantic_reuses = t.semantic;
    patched_entries = t.patched;
    evictions = t.evictions;
    cost_skipped = t.cost_skipped;
  }

let stats_lines t =
  let s = stats t in
  let mib b = float_of_int b /. (1024. *. 1024.) in
  [
    Printf.sprintf "cache: %s — %d entries, ~%.2f MiB (budget %.0f MiB, max %d entries)"
      (if t.enabled then "enabled" else "disabled")
      s.entries (mib s.bytes) (mib t.budget_bytes) t.max_entries;
    Printf.sprintf
      "hits %d  misses %d  semantic %d  cost-skipped %d  patched %d  evictions %d"
      s.hits s.misses s.semantic_reuses s.cost_skipped s.patched_entries
      s.evictions;
  ]
