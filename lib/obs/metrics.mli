(** Named engine metrics: counters, gauges, and fixed-bucket histograms.

    Instruments register a metric once (at module initialisation or first
    use) and mutate it from hot paths. All mutators are gated on
    {!Control}: with telemetry off they load one flag, branch, and return —
    no allocation, no registry lookup. Gauges and histograms keep their
    float state in unboxed float arrays so even the enabled path does not
    allocate per observation.

    Registration is idempotent by name; registering the same name as a
    different metric kind raises [Invalid_argument]. *)

type counter
type gauge
type histogram

(** {1 Registration} *)

val counter : string -> counter
val gauge : string -> gauge

val histogram : ?bounds:float array -> string -> histogram
(** [bounds] are strictly increasing bucket upper bounds; an implicit
    [+inf] overflow bucket is appended. Default bounds are a 1-2-5 decade
    ladder from 1 to 100k, suitable for cardinalities and milliseconds. *)

(** {1 Mutation (no-ops when telemetry is disabled)} *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Raise the gauge to the given value if it currently sits lower — for
    peaks such as the maximum BNL window size. *)

val observe : histogram -> float -> unit

(** {1 Reading} *)

val count : counter -> int
val value : gauge -> float
val hist_count : histogram -> int
val hist_sum : histogram -> float

val buckets : histogram -> (float * int) list
(** Upper bound / count pairs, overflow bucket last with bound [infinity]. *)

val counter_value : string -> int option
(** Look up a counter's current value by name (for tests and dumps). *)

(** {1 Registry-wide operations} *)

val reset : unit -> unit
(** Zero every registered metric (registration survives). *)

val dump : unit -> string list
(** One human-readable line per metric, in registration order. *)

val to_json : unit -> Json.t
(** The whole registry as one JSON object keyed by metric name. *)
