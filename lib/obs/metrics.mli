(** Named engine metrics: counters, gauges, and fixed-bucket histograms.

    Instruments register a metric once (at module initialisation or first
    use) and mutate it from hot paths. All mutators are gated on
    {!Control}: with telemetry off they load one flag, branch, and return —
    no allocation, no registry lookup. Gauges and histograms keep their
    float state in unboxed float arrays so even the enabled path does not
    allocate per observation.

    Registration is idempotent by name; registering the same name as a
    different metric kind raises [Invalid_argument]. *)

type counter
type gauge
type histogram

(** {1 Registration} *)

val counter : string -> counter
val gauge : string -> gauge

val histogram : ?bounds:float array -> string -> histogram
(** [bounds] are strictly increasing bucket upper bounds; an implicit
    [+inf] overflow bucket is appended. Default bounds are a 1-2-5 decade
    ladder from 1 to 100k, suitable for cardinalities and milliseconds. *)

(** {1 Mutation (no-ops when telemetry is disabled)} *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Raise the gauge to the given value if it currently sits lower — for
    peaks such as the maximum BNL window size. *)

val observe : histogram -> float -> unit

(** {1 Reading} *)

val count : counter -> int
val value : gauge -> float
val hist_count : histogram -> int
val hist_sum : histogram -> float

val buckets : histogram -> (float * int) list
(** Upper bound / count pairs, overflow bucket last with bound [infinity]. *)

val counter_value : string -> int option
(** Look up a counter's current value by name (for tests and dumps). *)

(** {1 Snapshots and derived summaries} *)

type snapshot =
  | Snap_counter of { name : string; count : int }
  | Snap_gauge of { name : string; value : float }
  | Snap_histogram of {
      name : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
          (** per-bucket (non-cumulative) counts, overflow last with bound
              [infinity] — same shape as {!buckets} *)
    }

val snapshot : unit -> snapshot list
(** A point-in-time copy of every registered metric, in registration
    order — what the exporters ({!Export}) render. *)

val quantile : buckets:(float * int) list -> count:int -> float -> float option
(** [quantile ~buckets ~count q] estimates the [q]-quantile (q in [0,1])
    from per-bucket counts by linear interpolation within the bucket the
    rank falls into (observations assumed uniform inside a bucket, first
    bucket starting at 0). A quantile in the +inf overflow bucket clamps
    to the highest finite bound. [None] when the histogram is empty or
    [q] is out of range. *)

type summary = {
  s_count : int;
  s_sum : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

val summary_of : histogram -> summary option
(** Count, sum and interpolated p50/p90/p99; [None] when empty. *)

val summaries : unit -> (string * summary) list
(** {!summary_of} for every non-empty histogram, in registration order —
    the payload of the wire protocol's extended STATS. *)

(** {1 Registry-wide operations} *)

val reset : unit -> unit
(** Zero every registered metric (registration survives). *)

val dump : unit -> string list
(** One human-readable line per metric, in registration order. *)

val to_json : unit -> Json.t
(** The whole registry as one JSON object keyed by metric name. *)
