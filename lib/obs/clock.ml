let now_ns () = Monotonic_clock.now ()
let ms_of_ns ns = Int64.to_float ns /. 1e6
let elapsed_ms ~since = ms_of_ns (Int64.sub (now_ns ()) since)
