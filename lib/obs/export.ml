(* Rendering the Metrics registry for external scrapers.

   The Prometheus text exposition format (version 0.0.4) wants one TYPE/
   HELP header per metric family followed by its samples. Our registry
   names metrics with dots ("bmo.cache.hits"), which are invalid in
   Prometheus metric names, so names are sanitised to underscores; a few
   registries of dynamically named metrics ("bmo.plan_chosen.<kind>",
   "bmo.cache.probe_ms.<tier>") are folded into one family each with the
   variant as a label, which is where label escaping earns its keep. *)

let sanitize_name s =
  String.init (String.length s) (fun i ->
      match s.[i] with
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c
      | _ -> '_')

(* Label values escape backslash, double quote and newline — exactly the
   three escapes the exposition format defines for quoted label values. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Dotted-name prefixes whose tail is a dynamic variant, exported as one
   family with the variant in a label. *)
let label_families =
  [ ("bmo.plan_chosen.", "plan"); ("bmo.cache.probe_ms.", "tier") ]

let split_family name =
  let rec go = function
    | [] -> (name, None)
    | (prefix, label) :: rest ->
      let pl = String.length prefix in
      if String.length name > pl && String.sub name 0 pl = prefix then
        ( String.sub prefix 0 (pl - 1),
          Some (label, String.sub name pl (String.length name - pl)) )
      else go rest
  in
  go label_families

let number f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let label_str = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") kvs)
    ^ "}"

type sample =
  | S_counter of (string * string) list * int
  | S_gauge of (string * string) list * float
  | S_hist of (string * string) list * int * float * (float * int) list

let kind_of = function
  | S_counter _ -> "counter"
  | S_gauge _ -> "gauge"
  | S_hist _ -> "histogram"

(* Group the snapshot into families, preserving first-seen order so the
   TYPE header precedes every sample of its family. *)
let families () =
  let order = ref [] in
  let table : (string, string * sample list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let add raw_name sample =
    let family, label = split_family raw_name in
    let labels = match label with None -> [] | Some (k, v) -> [ (k, v) ] in
    let sample =
      match sample with
      | `C n -> S_counter (labels, n)
      | `G v -> S_gauge (labels, v)
      | `H (n, sum, bs) -> S_hist (labels, n, sum, bs)
    in
    match Hashtbl.find_opt table family with
    | Some (_, samples) -> samples := sample :: !samples
    | None ->
      Hashtbl.add table family (raw_name, ref [ sample ]);
      order := family :: !order
  in
  List.iter
    (function
      | Metrics.Snap_counter { name; count } -> add name (`C count)
      | Metrics.Snap_gauge { name; value } -> add name (`G value)
      | Metrics.Snap_histogram { name; count; sum; buckets } ->
        add name (`H (count, sum, buckets)))
    (Metrics.snapshot ());
  List.rev_map
    (fun family ->
      let help_name, samples = Hashtbl.find table family in
      (family, help_name, List.rev !samples))
    !order

let prometheus () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (family, help_name, samples) ->
      let base = sanitize_name family in
      let kind = kind_of (List.hd samples) in
      (* counters follow the _total naming convention *)
      let base = if kind = "counter" then base ^ "_total" else base in
      line "# HELP %s Engine registry metric %s" base help_name;
      line "# TYPE %s %s" base kind;
      List.iter
        (function
          | S_counter (labels, n) -> line "%s%s %d" base (label_str labels) n
          | S_gauge (labels, v) -> line "%s%s %s" base (label_str labels) (number v)
          | S_hist (labels, n, sum, buckets) ->
            let cum = ref 0 in
            List.iter
              (fun (ub, c) ->
                cum := !cum + c;
                line "%s_bucket%s %d" base
                  (label_str (labels @ [ ("le", number ub) ]))
                  !cum)
              buckets;
            line "%s_sum%s %s" base (label_str labels) (number sum);
            line "%s_count%s %d" base (label_str labels) n)
        samples)
    (families ());
  Buffer.contents buf

let to_json () = Metrics.to_json ()

let summaries_json () =
  Json.Obj
    (List.map
       (fun (name, s) ->
         ( name,
           Json.Obj
             [
               ("count", Json.Int s.Metrics.s_count);
               ("sum", Json.Float s.Metrics.s_sum);
               ("p50", Json.Float s.Metrics.s_p50);
               ("p90", Json.Float s.Metrics.s_p90);
               ("p99", Json.Float s.Metrics.s_p99);
             ] ))
       (Metrics.summaries ()))

(* Tiny content-type router shared by the HTTP /metrics listener and the
   tests, so the endpoint logic is exercisable without sockets. *)
let content path =
  match path with
  | "/metrics" ->
    Some ("text/plain; version=0.0.4; charset=utf-8", prometheus ())
  | "/metrics.json" -> Some ("application/json", Json.to_string (to_json ()))
  | _ -> None
