type phase = { phase_name : string; phase_ms : float }

type t = {
  algorithm : string;
  input_rows : int;
  output_rows : int;
  comparisons : int;
  phases : phase list;
  attrs : (string * string) list;
}

let make ?(phases = []) ?(attrs = []) ?(comparisons = -1) ~algorithm ~input_rows
    ~output_rows () =
  { algorithm; input_rows; output_rows; comparisons; phases; attrs }

let phase phase_name phase_ms = { phase_name; phase_ms }
let add_attr p k v = { p with attrs = p.attrs @ [ (k, v) ] }
let add_phases p phases = { p with phases = phases @ p.phases }
let total_ms p = List.fold_left (fun acc ph -> acc +. ph.phase_ms) 0. p.phases

let to_lines p =
  Fmt.str "algorithm: %s" p.algorithm
  :: Fmt.str "rows: %d in -> %d out" p.input_rows p.output_rows
  :: (if p.comparisons >= 0 then
        [ Fmt.str "dominance tests: %d" p.comparisons ]
      else [])
  @ List.map
      (fun ph -> Fmt.str "phase %-12s %8.3f ms" ph.phase_name ph.phase_ms)
      p.phases
  @ (if p.phases <> [] then [ Fmt.str "total %18.3f ms" (total_ms p) ] else [])
  @ List.map (fun (k, v) -> Fmt.str "%s: %s" k v) p.attrs

let pp ppf p = Fmt.pf ppf "%s" (String.concat "\n" (to_lines p))

let to_json p =
  Json.Obj
    ([
       ("algorithm", Json.Str p.algorithm);
       ("input_rows", Json.Int p.input_rows);
       ("output_rows", Json.Int p.output_rows);
     ]
    @ (if p.comparisons >= 0 then [ ("comparisons", Json.Int p.comparisons) ]
       else [])
    @ [
        ( "phases",
          Json.List
            (List.map
               (fun ph ->
                 Json.Obj
                   [
                     ("name", Json.Str ph.phase_name);
                     ("ms", Json.Float ph.phase_ms);
                   ])
               p.phases) );
      ]
    @
    match p.attrs with
    | [] -> []
    | attrs ->
      [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ])
