type node = {
  name : string;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable attrs : (string * string) list;
  mutable children : node list;  (* reversed while open; ordered at exit *)
}

(* The open-span stack is domain-local: a worker domain opening spans builds
   its own tree instead of racing the coordinator for one global stack.
   Completed roots from every domain land in the shared ring, which is the
   only cross-domain state and is guarded by a mutex (touched once per root
   span, never per enter/exit). *)
let stack : node list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let max_roots = 32
let ring_mutex = Mutex.create ()
let root_ring : node list ref = ref []

let finish_root node =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Mutex.lock ring_mutex;
  root_ring := take max_roots (node :: !root_ring);
  Mutex.unlock ring_mutex

let enter ?(attrs = []) name =
  let node =
    { name; start_ns = Clock.now_ns (); dur_ns = 0L; attrs; children = [] }
  in
  let stack = Domain.DLS.get stack in
  stack := node :: !stack;
  node

let exit_span node =
  node.dur_ns <- Int64.sub (Clock.now_ns ()) node.start_ns;
  node.children <- List.rev node.children;
  let stack = Domain.DLS.get stack in
  (match !stack with
  | top :: rest when top == node -> stack := rest
  | _ -> stack := List.filter (fun n -> n != node) !stack);
  match !stack with
  | parent :: _ -> parent.children <- node :: parent.children
  | [] -> finish_root node

let with_span ?attrs name f =
  if not !Control.flag then f ()
  else begin
    let node = enter ?attrs name in
    Fun.protect ~finally:(fun () -> exit_span node) f
  end

let add_attr key value =
  if !Control.flag then
    match !(Domain.DLS.get stack) with
    | node :: _ -> node.attrs <- node.attrs @ [ (key, value) ]
    | [] -> ()

let add_attrs kvs = List.iter (fun (k, v) -> add_attr k v) kvs

let collect ?attrs name f =
  if not !Control.flag then (f (), None)
  else begin
    let node = enter ?attrs name in
    let result = Fun.protect ~finally:(fun () -> exit_span node) f in
    (result, Some node)
  end

let roots () =
  Mutex.lock ring_mutex;
  let r = !root_ring in
  Mutex.unlock ring_mutex;
  r

let clear () =
  Mutex.lock ring_mutex;
  root_ring := [];
  Mutex.unlock ring_mutex;
  Domain.DLS.get stack := []

let duration_ms node = Clock.ms_of_ns node.dur_ns

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let to_text node =
  let buf = Buffer.create 256 in
  let rec go indent node =
    Buffer.add_string buf
      (Fmt.str "%s%-*s %8.3f ms%s\n" indent
         (max 1 (24 - String.length indent))
         node.name (duration_ms node)
         (match node.attrs with
         | [] -> ""
         | attrs ->
           "  ["
           ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
           ^ "]"));
    List.iter (go (indent ^ "  ")) node.children
  in
  go "" node;
  (* drop the trailing newline for composability *)
  let s = Buffer.contents buf in
  if s <> "" && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

let rec to_json node =
  Json.Obj
    ([
       ("name", Json.Str node.name);
       ("ms", Json.Float (duration_ms node));
     ]
    @ (match node.attrs with
      | [] -> []
      | attrs ->
        [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ])
    @
    match node.children with
    | [] -> []
    | children -> [ ("children", Json.List (List.map to_json children)) ])

(* ------------------------------------------------------------------ *)
(* Plain timing                                                        *)

let timed f =
  let t0 = Clock.now_ns () in
  let r = f () in
  (r, Clock.elapsed_ms ~since:t0)

let timed_span ?attrs name f =
  let t0 = Clock.now_ns () in
  let r = with_span ?attrs name f in
  (r, Clock.elapsed_ms ~since:t0)
