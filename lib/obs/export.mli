(** Metrics export pipeline: the {!Metrics} registry rendered for
    external consumers.

    {!prometheus} produces the Prometheus text exposition format (version
    0.0.4): one [# HELP]/[# TYPE] header per metric family followed by its
    samples, counters under the [_total] naming convention, histograms as
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count]. Registry
    names are dotted ([bmo.cache.hits]); they are sanitised to
    underscores, and the dynamically named families
    [bmo.plan_chosen.<kind>] and [bmo.cache.probe_ms.<tier>] are folded
    into one family each with the variant carried in a [plan]/[tier]
    label (label values escaped per the format: backslash, quote,
    newline). *)

val prometheus : unit -> string
(** The whole registry in text exposition format, terminated by a
    newline. *)

val to_json : unit -> Json.t
(** JSON snapshot of the registry ({!Metrics.to_json}). *)

val summaries_json : unit -> Json.t
(** Histogram summaries (count/sum/p50/p90/p99) as one JSON object. *)

val content : string -> (string * string) option
(** Route an HTTP path to [(content_type, body)]: [/metrics] serves
    {!prometheus}, [/metrics.json] the JSON snapshot, anything else
    [None] — the logic behind [prefserve --metrics-port], factored out so
    tests can exercise it without sockets. *)

(** {1 Rendering helpers (exposed for the format validator tests)} *)

val sanitize_name : string -> string
(** Map a registry name to a valid Prometheus metric name:
    every character outside [[a-zA-Z0-9_:]] becomes [_]. *)

val escape_label : string -> string
(** Escape a label value: backslash, double quote and newline become
    their two-character escape sequences. *)
