type counter = { c_name : string; mutable count : int }

(* float state lives in float arrays: writes to a mutable float field of a
   mixed record box the float, and the mutators below must not allocate *)
type gauge = { g_name : string; cell : float array }

type histogram = {
  h_name : string;
  bounds : float array;  (** strictly increasing upper bounds *)
  counts : int array;  (** length = length bounds + 1; last is overflow *)
  acc : float array;  (** [| sum |] *)
  mutable n : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []

let register name mk =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = mk () in
    Hashtbl.add registry name m;
    order := name :: !order;
    m

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " registered with another kind")

let counter name =
  match register name (fun () -> Counter { c_name = name; count = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_error name

let gauge name =
  match register name (fun () -> Gauge { g_name = name; cell = [| 0.0 |] }) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_error name

let default_bounds = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 1_000.; 10_000.; 100_000. |]

let histogram ?(bounds = default_bounds) name =
  match
    register name (fun () ->
        Histogram
          {
            h_name = name;
            bounds = Array.copy bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            acc = [| 0.0 |];
            n = 0;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_error name

(* ------------------------------------------------------------------ *)
(* Mutation — every entry gates on the global flag first               *)

let incr ?(by = 1) c = if !Control.flag then c.count <- c.count + by
let set g v = if !Control.flag then g.cell.(0) <- v
let set_max g v = if !Control.flag && v > g.cell.(0) then g.cell.(0) <- v

let observe h v =
  if !Control.flag then begin
    let len = Array.length h.bounds in
    let i = ref 0 in
    while !i < len && v > h.bounds.(!i) do
      Stdlib.incr i
    done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.acc.(0) <- h.acc.(0) +. v;
    h.n <- h.n + 1
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let count c = c.count
let value g = g.cell.(0)
let hist_count h = h.n
let hist_sum h = h.acc.(0)

let buckets h =
  let len = Array.length h.bounds in
  List.init (len + 1) (fun i ->
      ((if i < len then h.bounds.(i) else Float.infinity), h.counts.(i)))

let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some c.count
  | Some (Gauge _ | Histogram _) | None -> None

(* ------------------------------------------------------------------ *)
(* Registry-wide                                                       *)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.cell.(0) <- 0.0
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.acc.(0) <- 0.0;
        h.n <- 0)
    registry

let in_order () =
  List.rev_map (fun name -> Hashtbl.find registry name) !order

(* ------------------------------------------------------------------ *)
(* Snapshots and derived summaries                                     *)

type snapshot =
  | Snap_counter of { name : string; count : int }
  | Snap_gauge of { name : string; value : float }
  | Snap_histogram of {
      name : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
    }

let snapshot () =
  List.map
    (function
      | Counter c -> Snap_counter { name = c.c_name; count = c.count }
      | Gauge g -> Snap_gauge { name = g.g_name; value = g.cell.(0) }
      | Histogram h ->
        Snap_histogram
          { name = h.h_name; count = h.n; sum = h.acc.(0); buckets = buckets h })
    (in_order ())

(* Quantile estimation over fixed buckets, the same linear-interpolation
   model Prometheus' histogram_quantile uses: observations are assumed
   uniform within their bucket, the first bucket starts at 0 (all our
   histograms observe non-negative values), and a quantile landing in the
   +inf overflow bucket clamps to that bucket's lower edge — the largest
   bound the data is known to exceed. *)
let quantile ~buckets ~count q =
  if count <= 0 || q < 0. || q > 1. then None
  else begin
    let rank = q *. float_of_int count in
    let rec go lower cum = function
      | [] -> None
      | (ub, c) :: rest ->
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= rank then
          if ub = Float.infinity then Some lower
          else Some (lower +. ((rank -. cum) /. float_of_int c *. (ub -. lower)))
        else go (if ub = Float.infinity then lower else ub) cum' rest
    in
    go 0. 0. buckets
  end

type summary = {
  s_count : int;
  s_sum : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let summary_of h =
  if h.n = 0 then None
  else begin
    let bs = buckets h in
    let qt q = Option.value (quantile ~buckets:bs ~count:h.n q) ~default:0. in
    Some
      {
        s_count = h.n;
        s_sum = h.acc.(0);
        s_p50 = qt 0.5;
        s_p90 = qt 0.9;
        s_p99 = qt 0.99;
      }
  end

let summaries () =
  List.filter_map
    (function
      | Counter _ | Gauge _ -> None
      | Histogram h -> Option.map (fun s -> (h.h_name, s)) (summary_of h))
    (in_order ())

let dump () =
  List.map
    (function
      | Counter c -> Fmt.str "%-32s counter   %d" c.c_name c.count
      | Gauge g -> Fmt.str "%-32s gauge     %g" g.g_name g.cell.(0)
      | Histogram h ->
        Fmt.str "%-32s histogram n=%d sum=%g %s" h.h_name h.n h.acc.(0)
          (String.concat " "
             (List.filter_map
                (fun (b, c) ->
                  if c = 0 then None
                  else if b = Float.infinity then Some (Fmt.str "+inf:%d" c)
                  else Some (Fmt.str "le%g:%d" b c))
                (buckets h))))
    (in_order ())

let to_json () =
  Json.Obj
    (List.map
       (function
         | Counter c -> (c.c_name, Json.Int c.count)
         | Gauge g -> (g.g_name, Json.Float g.cell.(0))
         | Histogram h ->
           ( h.h_name,
             Json.Obj
               [
                 ("count", Json.Int h.n);
                 ("sum", Json.Float h.acc.(0));
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (b, c) ->
                          Json.Obj
                            [
                              ( "le",
                                if b = Float.infinity then Json.Str "+inf"
                                else Json.Float b );
                              ("n", Json.Int c);
                            ])
                        (buckets h)) );
               ] ))
       (in_order ()))
