(** Global on/off switch for the telemetry layer.

    Every mutating entry point of {!Metrics} and {!Span} reads this flag
    first and returns immediately when telemetry is off, so instrumented
    hot paths pay one load-and-branch and allocate nothing. The flag
    starts [false]: an uninstrumented process behaves exactly like the
    pre-telemetry engine. *)

val flag : bool ref
(** The raw flag, exposed so hot paths can gate expensive-to-compute
    telemetry arguments ([if !Control.flag then ...]) without a call. *)

val is_enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the flag temporarily forced; restores the previous
    value even on exceptions. Used by tests and the bench harness. *)
