(** A minimal JSON value builder and printer.

    Just enough for the telemetry exporters and the bench's BENCH_JSON
    summary line — no parsing, no external dependency. Non-finite floats
    serialise as [null] to keep the output valid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering with escaped strings. *)
