(** Monotonic time source for spans and benchmarks.

    Wraps the CLOCK_MONOTONIC stub shipped with bechamel, so timings are
    immune to wall-clock adjustments and include time spent blocked (unlike
    the CPU-time [Sys.time] the bench harness used before). *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary origin; only differences are meaningful. *)

val ms_of_ns : int64 -> float

val elapsed_ms : since:int64 -> float
(** Milliseconds elapsed since a [now_ns] reading. *)
