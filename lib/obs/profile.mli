(** Query profiles — the per-query record a BMO evaluation hands back.

    Unlike {!Metrics} and {!Span}, a profile is built only when the caller
    explicitly asks for one (e.g. [Query.sigma_profiled] or the shell's
    [\profile] mode), so it carries exact numbers regardless of the global
    telemetry flag. *)

type phase = { phase_name : string; phase_ms : float }

type t = {
  algorithm : string;  (** evaluation algorithm, e.g. ["bnl"] or ["auto:dnc(...)"] *)
  input_rows : int;
  output_rows : int;
  comparisons : int;  (** dominance tests performed; [-1] when not tracked *)
  phases : phase list;  (** in execution order *)
  attrs : (string * string) list;  (** extras: window peak, plan, rewrite steps … *)
}

val make :
  ?phases:phase list ->
  ?attrs:(string * string) list ->
  ?comparisons:int ->
  algorithm:string ->
  input_rows:int ->
  output_rows:int ->
  unit ->
  t

val phase : string -> float -> phase

val add_attr : t -> string -> string -> t
val add_phases : t -> phase list -> t
(** Prepend phases (e.g. the executor's parse/translate phases) to a
    profile produced further down the stack. *)

val total_ms : t -> float

val to_lines : t -> string list
(** Human-readable rendering, one line per fact — what [\profile] prints. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
