(** Hierarchical tracing spans with monotonic-clock timings.

    A span covers the dynamic extent of a thunk; spans opened inside it
    become its children, giving a per-query trace tree. With telemetry
    disabled {!with_span} is the identity on its thunk (one flag load, no
    allocation).

    Completed root spans are kept in a small ring (most recent first) so a
    shell or test can fetch the trace of the query it just ran.

    The open-span stack is domain-local ([Domain.DLS]): spans opened inside
    a worker domain of the parallel evaluation layer form their own tree and
    never race the coordinator's stack. The shared root ring is
    mutex-guarded. *)

type node = {
  name : string;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable attrs : (string * string) list;
  mutable children : node list;  (** in execution order once finished *)
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (exception-safe). Identity when disabled. *)

val add_attr : string -> string -> unit
(** Attach a key/value to the innermost open span; no-op outside a span or
    when disabled. *)

val add_attrs : (string * string) list -> unit
(** [add_attr] for a batch of key/value pairs, in order. *)

val collect : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * node option
(** Like {!with_span} but also hands back the finished node — [None] when
    telemetry is disabled. *)

val roots : unit -> node list
(** Recently completed root spans, most recent first (bounded ring). *)

val clear : unit -> unit
(** Drop retained root spans and any stale open-span state. *)

val duration_ms : node -> float

(** {1 Exporters} *)

val to_text : node -> string
(** Indented tree with millisecond durations and attributes. *)

val to_json : node -> Json.t

(** {1 Plain timing (always on)} *)

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and return its monotonic wall time in milliseconds,
    regardless of the telemetry flag — the replacement for ad-hoc
    [Sys.time] deltas in the bench harness. *)

val timed_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** [timed] wrapped in [with_span]: the duration is measured even when
    telemetry is disabled, and additionally recorded as a span when on. *)
