(** The Preference SQL shell engine — the logic behind the [prefsql] CLI,
    as a library so it is testable.

    Besides queries, the shell keeps a {!Preferences.Repository} of named
    preferences: [.pref add cheap LOWEST(price)] stores a term,
    [$cheap] inside later query text expands to its surface syntax, and
    [.mine log.txt] stores a preference mined from a query log as
    [$mined]. *)

open Pref_relation

type t

type response = {
  text : string list;
  table : Relation.t option;
  quit : bool;
}

val create : ?registry:Pref_sql.Translate.registry -> unit -> t

val add_table : t -> string -> Relation.t -> unit

val execute : t -> string -> (response, string) result
(** Run one input line: a dot-command (backslash-commands are aliases:
    [\profile] ≡ [.profile]) or a Preference SQL statement. Never raises;
    failures come back as [Error message].

    Observability commands: [\explain [analyze] [json] <query>] prints
    the structured plan report ({!Pref_bmo.Explain.Plan}) — the plan
    chosen, the alternatives rejected and why, cache-tier probes, and
    with [analyze] the executed per-operator row counts and timings;
    against a connected server it uses the EXPLAIN wire verb so the
    report reflects the server's planner state.
    [\profile [on|off]] toggles per-query profiles
    (phase timings, chosen algorithm, dominance-test counts appended as
    [--] comment lines) and flips {!Pref_obs.Control} so engine metrics
    and spans accumulate; [\stats] dumps the metrics registry
    ([reset]/[json] variants); [\trace] prints the most recent query's
    span tree.

    Result-cache commands: [\cache on|off] flips the global BMO result
    cache ({!Pref_bmo.Cache.global}), [\cache stats] prints hit/miss/
    semantic-reuse/patch counters and byte usage, [\cache clear] drops all
    entries and [\cache budget N] caps the byte budget at N MiB. The
    single-row DML commands [.insert <table> v1,v2,...] and
    [.delete <table> v1,v2,...] update a loaded table and patch its cached
    BMO results incrementally instead of invalidating them.

    Static analysis: [\check <query>] runs {!Pref_analysis.Ast_check} over
    the query against the loaded tables and prints the findings without
    executing; [\lint on] does the same for every subsequent query
    (findings appear as [--] comment lines) and rejects queries with
    error-severity findings before execution.

    Engine knobs: the shell owns a {!Pref_engine.Session}, so every knob
    is a [\set key value] over {!Pref_bmo.Engine.set} — [\set] alone
    lists them, [\set deadline 250] bounds each query (expired queries
    return a [-- partial] prefix BMO set), [\set maxrows N] caps results
    ([-- truncated]), [\algorithm a] ≡ [\set algorithm a].
    [\prepare name <sql>] stores a statement the session runs as [@name].

    Client mode: [\connect host port] attaches the shell to a running
    [prefserve]; statements, [\set], [\prepare]/[@name] and [\stats] are
    then served over the wire by a per-connection remote session with the
    same rendering, and [\disconnect] returns to the local engine. *)
