open Pref_relation
open Preferences
open Pref_sql
module Session = Pref_engine.Session
module Revise = Pref_engine.Revise
module Client = Pref_server.Client

(* All engine knobs (algorithm, domains, cache, check, profile, deadline,
   maxrows) live in the session's [Pref_bmo.Engine.config]; the shell
   only keeps what is presentation-level: explain mode, the preference
   repository, and an optional remote connection. *)
type t = {
  session : Session.t;
  mutable remote : remote option;
  mutable explain : bool;
  repository : Repository.t;
  registry : Translate.registry;
}

and remote = { client : Client.t; rhost : string; rport : int }

type response = {
  text : string list;  (** informational lines, in order *)
  table : Relation.t option;  (** a relation to render, if any *)
  quit : bool;
}

let plain text = { text; table = None; quit = false }
let table ?(text = []) rel = { text; table = Some rel; quit = false }

let create ?(registry = Translate.default_registry) () =
  Pref_analysis.Install.install ();
  {
    session = Session.create ~registry ();
    remote = None;
    explain = false;
    repository =
      Repository.create
        ~registry:
          {
            Serialize.scores = registry.Translate.scores;
            combiners = registry.Translate.combiners;
          }
        ();
    registry;
  }

let env shell = Session.env shell.session
let config shell = Session.config shell.session
let add_table shell name rel = Session.add_table shell.session name rel

let load_table shell name path =
  let rel = Csv.load path in
  add_table shell name rel;
  Fmt.str "loaded %s: %a" (String.lowercase_ascii name) Relation.pp rel

(* $name references in queries expand to the stored preference's surface
   syntax. *)
let expand_references shell src =
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '/'
  in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if src.[i] = '$' then begin
      let j = ref (i + 1) in
      while !j < n && is_ident src.[!j] do
        incr j
      done;
      let name = String.sub src (i + 1) (!j - i - 1) in
      if name = "" then begin
        Buffer.add_char buf '$';
        go (i + 1)
      end
      else
        match Repository.find shell.repository name with
        | None -> failwith (Printf.sprintf "no stored preference named %S" name)
        | Some e -> (
          match Unparse.to_preferring e.Repository.term with
          | Some text ->
            Buffer.add_char buf '(';
            Buffer.add_string buf text;
            Buffer.add_char buf ')';
            go !j
          | None ->
            failwith
              (Printf.sprintf
                 "stored preference %S has no Preference SQL syntax" name))
    end
    else begin
      Buffer.add_char buf src.[i];
      go (i + 1)
    end
  in
  go 0

let check_lines shell src =
  Pref_analysis.Diagnostic.to_lines
    (Pref_analysis.Flow_check.check_source ~registry:shell.registry
       ~env:(env shell) src)

let flags_text (flags : Pref_bmo.Engine.flags) =
  (if flags.Pref_bmo.Engine.partial then
     [ "-- partial: deadline exceeded; this is the BMO set of the scanned \
        prefix" ]
   else [])
  @
  if flags.Pref_bmo.Engine.truncated then [ "-- truncated: maxrows cap" ]
  else []

let run_sql shell src =
  let src = expand_references shell src in
  match shell.remote with
  | Some r -> (
    (* prepared-statement references and knobs live server-side *)
    match Client.query r.client src with
    | Ok (rel, flags) -> table ~text:(flags_text flags) rel
    | Error msg -> failwith msg)
  | None ->
    let cfg = config shell in
    let lint_text =
      (* error-severity findings abort below via [Exec.Rejected]; what gets
         this far is warnings and hints *)
      if cfg.Pref_bmo.Engine.check then
        List.map (fun l -> "-- " ^ l) (check_lines shell src)
      else []
    in
    let result = Session.run shell.session src in
    let explain_text =
      if shell.explain then
        match result.Exec.preference with
        | Some p -> [ Fmt.str "-- preference: %a" Show.pp p ]
        | None -> [ "-- preference: (none - exact match query)" ]
      else []
    in
    let profile_text =
      match result.Exec.profile with
      | Some prof when cfg.Pref_bmo.Engine.profile ->
        "-- profile:"
        :: List.map (fun l -> "--   " ^ l) (Pref_obs.Profile.to_lines prof)
      | Some _ | None -> []
    in
    table
      ~text:
        (lint_text @ flags_text result.Exec.flags @ explain_text @ profile_text)
      result.Exec.relation

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let pref_command shell = function
  | [ "add"; name ] -> plain [ Printf.sprintf "usage: .pref add %s <preference>" name ]
  | "add" :: name :: rest ->
    let src = String.concat " " rest in
    let term = Translate.pref ~registry:shell.registry (Parser.parse_pref src) in
    Repository.replace shell.repository ~name term;
    plain [ Fmt.str "stored %s = %a" name Show.pp term ]
  | [ "list" ] ->
    if Repository.size shell.repository = 0 then plain [ "(no stored preferences)" ]
    else
      plain
        (List.map
           (fun e ->
             Fmt.str "  %-16s %a" e.Repository.name Show.pp e.Repository.term)
           (Repository.entries shell.repository))
  | [ "del"; name ] ->
    if Repository.remove shell.repository name then plain [ "removed " ^ name ]
    else plain [ Printf.sprintf "no stored preference named %S" name ]
  | [ "save"; path ] ->
    Repository.save path shell.repository;
    plain [ Printf.sprintf "saved %d preference(s) to %s" (Repository.size shell.repository) path ]
  | [ "load"; path ] ->
    let loaded =
      Repository.load
        ~registry:
          {
            Serialize.scores = shell.registry.Translate.scores;
            combiners = shell.registry.Translate.combiners;
          }
        path
    in
    List.iter
      (fun e ->
        Repository.replace shell.repository ~owner:e.Repository.owner
          ~description:e.Repository.description ~name:e.Repository.name
          e.Repository.term)
      (Repository.entries loaded);
    plain [ Printf.sprintf "loaded %d preference(s)" (Repository.size loaded) ]
  | _ -> plain [ "usage: .pref add <name> <pref> | list | del <name> | save <f> | load <f>" ]

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match In_channel.input_line ic with
    | Some line -> go (line :: acc)
    | None ->
      close_in ic;
      List.rev acc
  in
  go []

let mine_command shell path =
  let lines = read_lines path in
  let term, reports = Pref_mining.Miner.mine_log lines in
  let report_lines =
    List.map
      (fun r ->
        Fmt.str "  %-16s %3d events   %s" r.Pref_mining.Miner.attr
          r.Pref_mining.Miner.occurrences
          (match r.Pref_mining.Miner.mined with
          | Some p -> Show.to_string p
          | None -> "(no stable signal)"))
      reports
  in
  match term with
  | None -> plain (report_lines @ [ "no preference could be mined" ])
  | Some p ->
    Repository.replace shell.repository ~description:("mined from " ^ path)
      ~name:"mined" p;
    plain
      (report_lines
      @ [ Fmt.str "mined preference (stored as $mined): %a" Show.pp p ])

let cache_command args =
  let cache = Pref_bmo.Cache.global in
  match args with
  | [] | [ "stats" ] -> Ok (plain (Pref_bmo.Cache.stats_lines cache))
  | [ "on" ] ->
    Pref_bmo.Cache.set_enabled true;
    Ok (plain [ "cache: on" ])
  | [ "off" ] ->
    Pref_bmo.Cache.set_enabled false;
    Ok (plain [ "cache: off" ])
  | [ "clear" ] ->
    Pref_bmo.Cache.clear cache;
    Ok (plain [ "cache cleared" ])
  | [ "budget"; n ] -> (
    match int_of_string_opt n with
    | Some mib when mib >= 1 ->
      Pref_bmo.Cache.set_budget cache ~budget_bytes:(mib * 1024 * 1024) ();
      Ok (plain [ Printf.sprintf "cache budget: %d MiB" mib ])
    | Some _ | None ->
      Error (Printf.sprintf "budget must be a positive MiB count, got %s" n))
  | _ -> Error "usage: \\cache [on|off|stats|clear|budget <MiB>]"

let parse_row schema spec =
  let fields = String.split_on_char ',' spec |> List.map String.trim in
  let want = List.length schema and got = List.length fields in
  if want <> got then
    failwith (Printf.sprintf "expected %d value(s), got %d" want got)
  else
    Tuple.make
      (List.map2
         (fun (name, ty) field ->
           match Value.of_string_as ty field with
           | Some v -> v
           | None ->
             failwith
               (Printf.sprintf "%s: cannot read %S as %s" name field
                  (Value.ty_to_string ty)))
         schema fields)

let no_table shell name =
  Exec.unknown_table_message ~name
    ~hint:(Typo.nearest (List.map fst (env shell)) name)

(* Single-tuple DML, delegated to {!Session.insert}/[delete] (or the DML
   wire verb when connected): cached BMO results are patched
   incrementally instead of recomputed, and the session's revision seed
   stays consistent for \refine. *)
let dml_command shell op name spec =
  match shell.remote with
  | Some r -> (
    let reply =
      match op with
      | `Insert -> Client.insert r.client ~table:name spec
      | `Delete -> Client.delete r.client ~table:name spec
    in
    match reply with
    | Ok line -> Ok (plain [ line ])
    | Error msg -> Error msg)
  | None -> (
    match Exec.find_table (env shell) name with
    | None -> Error (no_table shell name)
    | Some rel -> (
      let row = parse_row (Relation.schema rel) spec in
      let describe verb patched =
        let rel' =
          match Session.find_table shell.session name with
          | Some rel' -> rel'
          | None -> rel
        in
        plain
          [
            Fmt.str "%s %s: %a — %d cached result(s) patched" verb
              (String.lowercase_ascii name) Relation.pp rel' patched;
          ]
      in
      match op with
      | `Insert -> Ok (describe "inserted into" (Session.insert shell.session name row))
      | `Delete -> (
        match Session.delete shell.session name row with
        | Some patched -> Ok (describe "deleted from" patched)
        | None -> Error (Printf.sprintf "no row in %s matches" name))))

(* \refine [explain] <term> — revise the last preference statement in
   place ({!Session.refine}); connected shells use the REFINE wire verb
   so the revision works from the server session's seed. *)
let refine_command shell args =
  let explain, args =
    match args with
    | w :: rest when String.lowercase_ascii w = "explain" -> (true, rest)
    | args -> (false, args)
  in
  if args = [] then Error "usage: \\refine [explain] <preference term>"
  else
    let term = expand_references shell (String.concat " " args) in
    match shell.remote with
    | Some r ->
      if explain then
        Error "\\refine explain works on the local session only"
      else (
        match Client.refine r.client term with
        | Ok (rel, flags) -> Ok (table ~text:(flags_text flags) rel)
        | Error msg -> Error msg)
    | None ->
      if explain then
        Ok (plain (Pref_bmo.Explain.Plan.to_text (Session.refine_explain shell.session term)))
      else
        let o = Session.refine shell.session term in
        let r = o.Revise.o_result in
        Ok
          (table
             ~text:
               (Fmt.str "-- refine: %s (%s; seed %d row(s))"
                  (Revise.kind_to_string o.Revise.o_kind)
                  o.Revise.o_plan o.Revise.o_seed_rows
               :: flags_text r.Exec.flags)
             r.Exec.relation)

(* One engine knob, routed to wherever the session lives: the local
   [Session.set] or the server's [SET] verb. This is the single path for
   .algorithm / .set / .lint / .profile — no per-knob plumbing. *)
let set_knob shell key value =
  match shell.remote with
  | Some r -> (
    match Client.set r.client ~key ~value with
    | Ok line -> Ok (plain [ line ])
    | Error msg -> Error msg)
  | None -> (
    match Session.set shell.session ~key ~value with
    | Ok line -> Ok (plain [ line ])
    | Error msg -> Error msg)

let set_profile shell on =
  (* [\profile] also flips the engine-wide telemetry switch so spans and
     metrics accumulate while profiling *)
  if shell.remote = None then Pref_obs.Control.set_enabled on;
  set_knob shell "profile" (if on then "on" else "off")

let disconnect shell =
  match shell.remote with
  | None -> Error "not connected"
  | Some r ->
    Client.close r.client;
    shell.remote <- None;
    Ok (plain [ Printf.sprintf "disconnected from %s:%d" r.rhost r.rport ])

let connect shell host port =
  (match shell.remote with Some _ -> ignore (disconnect shell) | None -> ());
  let client = Client.connect ~host ~port () in
  if not (Client.ping client) then begin
    Client.close client;
    Error (Printf.sprintf "%s:%d did not answer PING" host port)
  end
  else begin
    shell.remote <- Some { client; rhost = host; rport = port };
    Ok
      (plain
         [
           Printf.sprintf
             "connected to %s:%d — queries, .set, .prepare and .stats now \
              run server-side"
             host port;
         ])
  end

let stats_command shell rest =
  match (shell.remote, rest) with
  | Some r, [] -> (
    match Client.stats r.client with
    | Ok kvs -> Ok (plain (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
    | Error msg -> Error msg)
  | Some _, _ -> Error "remote .stats takes no arguments"
  | None, [] -> (
    match Pref_obs.Metrics.dump () with
    | [] -> Ok (plain [ "(no metrics registered)" ])
    | lines -> Ok (plain lines))
  | None, [ "reset" ] ->
    Pref_obs.Metrics.reset ();
    Ok (plain [ "metrics reset" ])
  | None, [ "json" ] ->
    Ok (plain [ Pref_obs.Json.to_string (Pref_obs.Metrics.to_json ()) ])
  | None, _ -> Error "usage: \\stats [reset|json]"

(* \explain [analyze] [json] <query or @name> — the structured plan
   report. Local sessions render via Explain.Plan directly; connected
   shells use the EXPLAIN wire verb so the report describes the server's
   planner state (its cache, its knobs), not ours. *)
let explain_command shell args =
  let rec opts analyze json = function
    | w :: rest when String.lowercase_ascii w = "analyze" && not analyze ->
      opts true json rest
    | w :: rest when String.lowercase_ascii w = "json" && not json ->
      opts analyze true rest
    | args -> (analyze, json, args)
  in
  let analyze, json, args = opts false false args in
  if args = [] then Error "usage: \\explain [analyze] [json] <query or @name>"
  else
    let src = expand_references shell (String.concat " " args) in
    match shell.remote with
    | Some r -> (
      match Client.explain ~analyze ~json r.client src with
      | Ok body -> Ok (plain (String.split_on_char '\n' body))
      | Error msg -> Error msg)
    | None ->
      let plan = Session.explain shell.session ~analyze src in
      if json then
        Ok (plain [ Pref_obs.Json.to_string (Pref_bmo.Explain.Plan.to_json plan) ])
      else Ok (plain (Pref_bmo.Explain.Plan.to_text plan))

let prepare_command shell name rest =
  let src = expand_references shell (String.concat " " rest) in
  match shell.remote with
  | Some r -> (
    match Client.prepare r.client ~name src with
    | Ok line -> Ok (plain [ line ])
    | Error msg -> Error msg)
  | None ->
    Session.prepare shell.session ~name src;
    Ok (plain [ "prepared " ^ name ])

let execute shell line =
  let line = String.trim line in
  (* backslash commands are dot commands: \profile == .profile *)
  let line =
    if line <> "" && line.[0] = '\\' then
      "." ^ String.sub line 1 (String.length line - 1)
    else line
  in
  try
    if line = "" then Ok (plain [])
    else if line.[0] = '.' then
      match split_words line with
      | [ ".quit" ] | [ ".exit" ] -> Ok { text = []; table = None; quit = true }
      | [ ".tables" ] ->
        Ok
          (plain
             (List.map
                (fun (n, r) -> Fmt.str "  %s: %a" n Relation.pp r)
                (env shell)))
      | [ ".schema"; t ] -> (
        match Exec.find_table (env shell) t with
        | Some r -> Ok (plain [ Fmt.str "%a" Schema.pp (Relation.schema r) ])
        | None -> Error (no_table shell t))
      | [ ".load"; name; path ] -> Ok (plain [ load_table shell name path ])
      | [ ".connect"; host; port ] -> (
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> connect shell host p
        | Some _ | None -> Error (Printf.sprintf "bad port %s" port))
      | [ ".disconnect" ] -> disconnect shell
      | [ ".algorithm"; a ] -> set_knob shell "algorithm" a
      | [ ".set" ] ->
        if shell.remote <> None then
          Error "usage when connected: .set <key> <value>"
        else
          Ok
            (plain
               (List.map
                  (fun (k, v) -> Printf.sprintf "  %-10s %s" k v)
                  (Session.describe shell.session)))
      | [ ".set"; "domains" ] when shell.remote = None ->
        Ok
          (plain
             [
               (match (config shell).Pref_bmo.Engine.domains with
               | Some d -> Printf.sprintf "domains: %d" d
               | None ->
                 Printf.sprintf "domains: %d (engine default)"
                   (Pref_bmo.Parallel.default_domains ()));
             ])
      | [ ".set"; "domains"; n ] when shell.remote = None -> (
        match set_knob shell "domains" n with
        | Ok _ as ok ->
          (* also raise the engine default so Alg_auto planning inside
             nested calls sees the same degree *)
          (match int_of_string_opt n with
          | Some d -> Pref_bmo.Parallel.set_default_domains d
          | None -> ());
          ok
        | Error _ as e -> e)
      | [ ".set"; key; value ] -> set_knob shell key value
      | [ ".explain"; "on" ] ->
        shell.explain <- true;
        Ok (plain [ "explain: on" ])
      | [ ".explain"; "off" ] ->
        shell.explain <- false;
        Ok (plain [ "explain: off" ])
      | ".explain" :: rest when rest <> [] -> explain_command shell rest
      | [ ".profile" ] ->
        if shell.remote <> None then
          Error "usage when connected: .profile on|off"
        else set_profile shell (not (config shell).Pref_bmo.Engine.profile)
      | [ ".profile"; "on" ] -> set_profile shell true
      | [ ".profile"; "off" ] -> set_profile shell false
      | ".stats" :: rest -> stats_command shell rest
      | [ ".trace" ] -> (
        match Pref_obs.Span.roots () with
        | [] ->
          Ok
            (plain
               [ "(no trace recorded - turn \\profile on and run a query)" ])
        | root :: _ ->
          Ok (plain (String.split_on_char '\n' (Pref_obs.Span.to_text root))))
      | ".cache" :: rest -> cache_command rest
      | ".insert" :: t :: rest when rest <> [] ->
        dml_command shell `Insert t (String.concat " " rest)
      | ".delete" :: t :: rest when rest <> [] ->
        dml_command shell `Delete t (String.concat " " rest)
      | ".refine" :: rest -> refine_command shell rest
      | ".prepare" :: name :: rest when rest <> [] ->
        prepare_command shell name rest
      | ".check" :: rest when rest <> [] ->
        let src = expand_references shell (String.concat " " rest) in
        Ok
          (plain
             (match check_lines shell src with
             | [] -> [ "no findings" ]
             | lines -> lines))
      | [ ".lint" ] ->
        Ok
          (plain
             [
               (if (config shell).Pref_bmo.Engine.check then "lint: on"
                else "lint: off");
             ])
      | [ ".lint"; ("on" | "off") as v ] -> set_knob shell "check" v
      | ".pref" :: rest -> Ok (pref_command shell rest)
      | ".sql92" :: rest when rest <> [] -> (
        let src = expand_references shell (String.concat " " (List.tl (split_words line))) in
        let q = Parser.parse_query src in
        match Sql92.rewrite_query ~registry:shell.registry q with
        | Some sql -> Ok (plain [ sql ])
        | None ->
          Error
            "this query has no SQL92 rewriting (needs a single table, an \
             expressible preference, and no BUT ONLY/GROUPING/TOP/ORDER BY)")
      | [ ".mine"; path ] -> Ok (mine_command shell path)
      | [ ".help" ] ->
        Ok
          (plain
             [
               "commands: .tables | .schema <t> | .load <name> <file.csv>";
               "          .set               show engine knobs";
               "          .set <key> <val>   algorithm | domains | cache | check";
               "                             | profile | deadline (ms) | maxrows";
               "                             | costmodel on|off (cost-based planning)";
               "          .algorithm naive|bnl|decompose|parallel|auto | .explain on|off";
               "          \\explain [analyze] [json] <query>  plan report: choice,";
               "                             rejected alternatives, cache probes;";
               "                             analyze also runs it (rows, timings)";
               "          .prepare <name> <query>; run it later as @name";
               "          \\connect <host> <port>  talk to a prefserve server";
               "          \\disconnect             back to the in-process engine";
               "          .pref add|list|del|save|load | .mine <log-file>";
               "          .sql92 <query>  (rewrite to plain SQL92, [KiK01])";
               "          \\profile [on|off]  per-query profiles (phase timings,";
               "                             algorithm, dominance-test counts)";
               "          \\stats [reset|json]  engine metrics | \\trace  last span tree";
               "          \\cache [on|off|stats|clear|budget <MiB>]  BMO result cache";
               "          .insert <t> v1,v2,..  .delete <t> v1,v2,..  single-row DML";
               "                                (patches cached results incrementally)";
               "          \\refine [explain] <pref>  revise the last preference query";
               "                                in place, reusing its BMO set as seed";
               "          \\check <query>  static analysis without executing";
               "          \\lint [on|off]  analyze every query; errors reject it";
               "          .help | .quit";
               "anything else runs as Preference SQL; $name expands a stored";
               "preference inside the query text";
             ])
      | _ -> Error ("unknown command: " ^ line)
    else Ok (run_sql shell line)
  with
  | Parser.Error (msg, p) -> Error (Printf.sprintf "syntax error at offset %d: %s" p msg)
  | Translate.Error msg -> Error ("translation error: " ^ msg)
  | Exec.Unknown_table { name; hint } ->
    Error (Exec.unknown_table_message ~name ~hint)
  | Exec.Error msg -> Error msg
  | Exec.Rejected findings ->
    Error
      (String.concat "\n"
         ("rejected by static analysis:"
         :: List.map
              (fun f ->
                "  "
                ^ Pref_analysis.Diagnostic.to_string
                    (Pref_analysis.Install.of_finding f))
              findings))
  | Pref.Ill_formed { code; message; _ } ->
    Error (Printf.sprintf "[%s] %s" code message)
  | Repository.Error msg -> Error msg
  | Serialize.Error (msg, _) -> Error msg
  | Client.Closed | Client.Response_lost Client.Closed ->
    shell.remote <- None;
    Error "server closed the connection; back to the in-process engine"
  | Client.Response_lost e ->
    (match shell.remote with
    | Some r ->
      Client.close r.client;
      shell.remote <- None
    | None -> ());
    Error
      ("response lost (" ^ Printexc.to_string e
     ^ "); disconnected — the server may still have executed the statement")
  | Pref_server.Protocol.Framing_error msg ->
    (match shell.remote with
    | Some r ->
      Client.close r.client;
      shell.remote <- None
    | None -> ());
    Error ("protocol error: " ^ msg ^ "; disconnected")
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
  | Sys_error msg -> Error msg
