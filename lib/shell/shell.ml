open Pref_relation
open Preferences
open Pref_sql

type t = {
  mutable env : Exec.env;
  mutable algorithm : Pref_bmo.Query.algorithm;
  mutable domains : int option;
      (* degree of parallelism; None = engine default *)
  mutable explain : bool;
  mutable profile : bool;
  mutable lint : bool;
      (* run the static analyzer on every query: findings are shown and
         error-severity findings reject the query before execution *)
  repository : Repository.t;
  registry : Translate.registry;
}

type response = {
  text : string list;  (** informational lines, in order *)
  table : Relation.t option;  (** a relation to render, if any *)
  quit : bool;
}

let plain text = { text; table = None; quit = false }
let table ?(text = []) rel = { text; table = Some rel; quit = false }

let create ?(registry = Translate.default_registry) () =
  Pref_analysis.Install.install ();
  {
    env = [];
    algorithm = Pref_bmo.Query.Alg_bnl;
    domains = None;
    explain = false;
    profile = false;
    lint = false;
    repository =
      Repository.create
        ~registry:
          {
            Serialize.scores = registry.Translate.scores;
            combiners = registry.Translate.combiners;
          }
        ();
    registry;
  }

let add_table shell name rel =
  let name = String.lowercase_ascii name in
  shell.env <- (name, rel) :: List.remove_assoc name shell.env

let load_table shell name path =
  let rel = Csv.load path in
  add_table shell name rel;
  Fmt.str "loaded %s: %a" (String.lowercase_ascii name) Relation.pp rel

(* $name references in queries expand to the stored preference's surface
   syntax. *)
let expand_references shell src =
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '/'
  in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if src.[i] = '$' then begin
      let j = ref (i + 1) in
      while !j < n && is_ident src.[!j] do
        incr j
      done;
      let name = String.sub src (i + 1) (!j - i - 1) in
      if name = "" then begin
        Buffer.add_char buf '$';
        go (i + 1)
      end
      else
        match Repository.find shell.repository name with
        | None -> failwith (Printf.sprintf "no stored preference named %S" name)
        | Some e -> (
          match Unparse.to_preferring e.Repository.term with
          | Some text ->
            Buffer.add_char buf '(';
            Buffer.add_string buf text;
            Buffer.add_char buf ')';
            go !j
          | None ->
            failwith
              (Printf.sprintf
                 "stored preference %S has no Preference SQL syntax" name))
    end
    else begin
      Buffer.add_char buf src.[i];
      go (i + 1)
    end
  in
  go 0

let check_lines shell src =
  Pref_analysis.Diagnostic.to_lines
    (Pref_analysis.Ast_check.check_source ~registry:shell.registry
       ~env:shell.env src)

let run_sql shell src =
  let src = expand_references shell src in
  let lint_text =
    (* error-severity findings abort below via [Exec.Rejected]; what gets
       this far is warnings and hints *)
    if shell.lint then List.map (fun l -> "-- " ^ l) (check_lines shell src)
    else []
  in
  let result =
    Exec.run ~registry:shell.registry ~algorithm:shell.algorithm
      ?domains:shell.domains ~profile:shell.profile ~check:shell.lint
      shell.env src
  in
  let explain_text =
    if shell.explain then
      match result.Exec.preference with
      | Some p -> [ Fmt.str "-- preference: %a" Show.pp p ]
      | None -> [ "-- preference: (none - exact match query)" ]
    else []
  in
  let profile_text =
    match result.Exec.profile with
    | Some prof when shell.profile ->
      "-- profile:"
      :: List.map (fun l -> "--   " ^ l) (Pref_obs.Profile.to_lines prof)
    | Some _ | None -> []
  in
  table ~text:(lint_text @ explain_text @ profile_text) result.Exec.relation

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let pref_command shell = function
  | [ "add"; name ] -> plain [ Printf.sprintf "usage: .pref add %s <preference>" name ]
  | "add" :: name :: rest ->
    let src = String.concat " " rest in
    let term = Translate.pref ~registry:shell.registry (Parser.parse_pref src) in
    Repository.replace shell.repository ~name term;
    plain [ Fmt.str "stored %s = %a" name Show.pp term ]
  | [ "list" ] ->
    if Repository.size shell.repository = 0 then plain [ "(no stored preferences)" ]
    else
      plain
        (List.map
           (fun e ->
             Fmt.str "  %-16s %a" e.Repository.name Show.pp e.Repository.term)
           (Repository.entries shell.repository))
  | [ "del"; name ] ->
    if Repository.remove shell.repository name then plain [ "removed " ^ name ]
    else plain [ Printf.sprintf "no stored preference named %S" name ]
  | [ "save"; path ] ->
    Repository.save path shell.repository;
    plain [ Printf.sprintf "saved %d preference(s) to %s" (Repository.size shell.repository) path ]
  | [ "load"; path ] ->
    let loaded =
      Repository.load
        ~registry:
          {
            Serialize.scores = shell.registry.Translate.scores;
            combiners = shell.registry.Translate.combiners;
          }
        path
    in
    List.iter
      (fun e ->
        Repository.replace shell.repository ~owner:e.Repository.owner
          ~description:e.Repository.description ~name:e.Repository.name
          e.Repository.term)
      (Repository.entries loaded);
    plain [ Printf.sprintf "loaded %d preference(s)" (Repository.size loaded) ]
  | _ -> plain [ "usage: .pref add <name> <pref> | list | del <name> | save <f> | load <f>" ]

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match In_channel.input_line ic with
    | Some line -> go (line :: acc)
    | None ->
      close_in ic;
      List.rev acc
  in
  go []

let mine_command shell path =
  let lines = read_lines path in
  let term, reports = Pref_mining.Miner.mine_log lines in
  let report_lines =
    List.map
      (fun r ->
        Fmt.str "  %-16s %3d events   %s" r.Pref_mining.Miner.attr
          r.Pref_mining.Miner.occurrences
          (match r.Pref_mining.Miner.mined with
          | Some p -> Show.to_string p
          | None -> "(no stable signal)"))
      reports
  in
  match term with
  | None -> plain (report_lines @ [ "no preference could be mined" ])
  | Some p ->
    Repository.replace shell.repository ~description:("mined from " ^ path)
      ~name:"mined" p;
    plain
      (report_lines
      @ [ Fmt.str "mined preference (stored as $mined): %a" Show.pp p ])

let cache_command args =
  let cache = Pref_bmo.Cache.global in
  match args with
  | [] | [ "stats" ] -> Ok (plain (Pref_bmo.Cache.stats_lines cache))
  | [ "on" ] ->
    Pref_bmo.Cache.set_enabled true;
    Ok (plain [ "cache: on" ])
  | [ "off" ] ->
    Pref_bmo.Cache.set_enabled false;
    Ok (plain [ "cache: off" ])
  | [ "clear" ] ->
    Pref_bmo.Cache.clear cache;
    Ok (plain [ "cache cleared" ])
  | [ "budget"; n ] -> (
    match int_of_string_opt n with
    | Some mib when mib >= 1 ->
      Pref_bmo.Cache.set_budget cache ~budget_bytes:(mib * 1024 * 1024) ();
      Ok (plain [ Printf.sprintf "cache budget: %d MiB" mib ])
    | Some _ | None ->
      Error (Printf.sprintf "budget must be a positive MiB count, got %s" n))
  | _ -> Error "usage: \\cache [on|off|stats|clear|budget <MiB>]"

let parse_row schema spec =
  let fields = String.split_on_char ',' spec |> List.map String.trim in
  let want = List.length schema and got = List.length fields in
  if want <> got then
    failwith (Printf.sprintf "expected %d value(s), got %d" want got)
  else
    Tuple.make
      (List.map2
         (fun (name, ty) field ->
           match Value.of_string_as ty field with
           | Some v -> v
           | None ->
             failwith
               (Printf.sprintf "%s: cannot read %S as %s" name field
                  (Value.ty_to_string ty)))
         schema fields)

(* Single-tuple DML so cached BMO results can be patched incrementally
   instead of recomputed: the relation is updated in the environment and
   every cache entry for its old version is carried to the new one. *)
let dml_command shell op name spec =
  match Exec.find_table shell.env name with
  | None -> Error (Printf.sprintf "no such table %s" name)
  | Some rel -> (
    let schema = Relation.schema rel in
    let row = parse_row schema spec in
    let cache = Pref_bmo.Cache.global in
    match op with
    | `Insert ->
      let new_rel = Relation.add_row rel row in
      let patched = Pref_bmo.Cache.on_insert cache ~old_rel:rel ~new_rel row in
      add_table shell name new_rel;
      Ok
        (plain
           [
             Fmt.str "inserted into %s: %a — %d cached result(s) patched"
               (String.lowercase_ascii name) Relation.pp new_rel patched;
           ])
    | `Delete ->
      let removed = ref false in
      let rows =
        List.filter
          (fun t ->
            if (not !removed) && Tuple.equal t row then begin
              removed := true;
              false
            end
            else true)
          (Relation.rows rel)
      in
      if not !removed then
        Error (Printf.sprintf "no row in %s matches" name)
      else begin
        let new_rel = Relation.make schema rows in
        let patched =
          Pref_bmo.Cache.on_delete cache ~old_rel:rel ~new_rel row
        in
        add_table shell name new_rel;
        Ok
          (plain
             [
               Fmt.str "deleted from %s: %a — %d cached result(s) patched"
                 (String.lowercase_ascii name) Relation.pp new_rel patched;
             ])
      end)

let set_profile shell on =
  shell.profile <- on;
  (* [\profile] also flips the engine-wide telemetry switch so spans and
     metrics accumulate while profiling *)
  Pref_obs.Control.set_enabled on;
  plain [ (if on then "profile: on" else "profile: off") ]

let execute shell line =
  let line = String.trim line in
  (* backslash commands are dot commands: \profile == .profile *)
  let line =
    if line <> "" && line.[0] = '\\' then
      "." ^ String.sub line 1 (String.length line - 1)
    else line
  in
  try
    if line = "" then Ok (plain [])
    else if line.[0] = '.' then
      match split_words line with
      | [ ".quit" ] | [ ".exit" ] -> Ok { text = []; table = None; quit = true }
      | [ ".tables" ] ->
        Ok
          (plain
             (List.map (fun (n, r) -> Fmt.str "  %s: %a" n Relation.pp r) shell.env))
      | [ ".schema"; t ] -> (
        match Exec.find_table shell.env t with
        | Some r -> Ok (plain [ Fmt.str "%a" Schema.pp (Relation.schema r) ])
        | None -> Error (Printf.sprintf "no such table %s" t))
      | [ ".load"; name; path ] -> Ok (plain [ load_table shell name path ])
      | [ ".algorithm"; a ] -> (
        match Pref_bmo.Query.algorithm_of_string a with
        | Some alg ->
          shell.algorithm <- alg;
          Ok (plain [ "algorithm: " ^ a ])
        | None ->
          Error
            (Printf.sprintf
               "unknown algorithm %s (naive | bnl | decompose | parallel | auto)"
               a))
      | [ ".set"; "domains" ] ->
        Ok
          (plain
             [
               (match shell.domains with
               | Some d -> Printf.sprintf "domains: %d" d
               | None ->
                 Printf.sprintf "domains: %d (engine default)"
                   (Pref_bmo.Parallel.default_domains ()));
             ])
      | [ ".set"; "domains"; n ] -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
          shell.domains <- Some d;
          (* also raise the engine default so Alg_auto planning inside
             nested calls sees the same degree *)
          Pref_bmo.Parallel.set_default_domains d;
          Ok (plain [ Printf.sprintf "domains: %d" d ])
        | Some _ | None ->
          Error (Printf.sprintf "domains must be a positive integer, got %s" n))
      | [ ".explain"; "on" ] ->
        shell.explain <- true;
        Ok (plain [ "explain: on" ])
      | [ ".explain"; "off" ] ->
        shell.explain <- false;
        Ok (plain [ "explain: off" ])
      | [ ".profile" ] -> Ok (set_profile shell (not shell.profile))
      | [ ".profile"; "on" ] -> Ok (set_profile shell true)
      | [ ".profile"; "off" ] -> Ok (set_profile shell false)
      | [ ".stats" ] -> (
        match Pref_obs.Metrics.dump () with
        | [] -> Ok (plain [ "(no metrics registered)" ])
        | lines -> Ok (plain lines))
      | [ ".stats"; "reset" ] ->
        Pref_obs.Metrics.reset ();
        Ok (plain [ "metrics reset" ])
      | [ ".stats"; "json" ] ->
        Ok (plain [ Pref_obs.Json.to_string (Pref_obs.Metrics.to_json ()) ])
      | [ ".trace" ] -> (
        match Pref_obs.Span.roots () with
        | [] ->
          Ok
            (plain
               [ "(no trace recorded - turn \\profile on and run a query)" ])
        | root :: _ ->
          Ok (plain (String.split_on_char '\n' (Pref_obs.Span.to_text root))))
      | ".cache" :: rest -> cache_command rest
      | ".insert" :: t :: rest when rest <> [] ->
        dml_command shell `Insert t (String.concat " " rest)
      | ".delete" :: t :: rest when rest <> [] ->
        dml_command shell `Delete t (String.concat " " rest)
      | ".check" :: rest when rest <> [] ->
        let src = expand_references shell (String.concat " " rest) in
        Ok
          (plain
             (match check_lines shell src with
             | [] -> [ "no findings" ]
             | lines -> lines))
      | [ ".lint" ] ->
        Ok (plain [ (if shell.lint then "lint: on" else "lint: off") ])
      | [ ".lint"; "on" ] ->
        shell.lint <- true;
        Ok (plain [ "lint: on" ])
      | [ ".lint"; "off" ] ->
        shell.lint <- false;
        Ok (plain [ "lint: off" ])
      | ".pref" :: rest -> Ok (pref_command shell rest)
      | ".sql92" :: rest when rest <> [] -> (
        let src = expand_references shell (String.concat " " (List.tl (split_words line))) in
        let q = Parser.parse_query src in
        match Sql92.rewrite_query ~registry:shell.registry q with
        | Some sql -> Ok (plain [ sql ])
        | None ->
          Error
            "this query has no SQL92 rewriting (needs a single table, an \
             expressible preference, and no BUT ONLY/GROUPING/TOP/ORDER BY)")
      | [ ".mine"; path ] -> Ok (mine_command shell path)
      | [ ".help" ] ->
        Ok
          (plain
             [
               "commands: .tables | .schema <t> | .load <name> <file.csv>";
               "          .algorithm naive|bnl|decompose|parallel|auto | .explain on|off";
               "          \\set domains [N]  degree of parallelism for parallel/auto";
               "          .pref add|list|del|save|load | .mine <log-file>";
               "          .sql92 <query>  (rewrite to plain SQL92, [KiK01])";
               "          \\profile [on|off]  per-query profiles (phase timings,";
               "                             algorithm, dominance-test counts)";
               "          \\stats [reset|json]  engine metrics | \\trace  last span tree";
               "          \\cache [on|off|stats|clear|budget <MiB>]  BMO result cache";
               "          .insert <t> v1,v2,..  .delete <t> v1,v2,..  single-row DML";
               "                                (patches cached results incrementally)";
               "          \\check <query>  static analysis without executing";
               "          \\lint [on|off]  analyze every query; errors reject it";
               "          .help | .quit";
               "anything else runs as Preference SQL; $name expands a stored";
               "preference inside the query text";
             ])
      | _ -> Error ("unknown command: " ^ line)
    else Ok (run_sql shell line)
  with
  | Parser.Error (msg, p) -> Error (Printf.sprintf "syntax error at offset %d: %s" p msg)
  | Translate.Error msg -> Error ("translation error: " ^ msg)
  | Exec.Error msg -> Error msg
  | Exec.Rejected findings ->
    Error
      (String.concat "\n"
         ("rejected by static analysis:"
         :: List.map
              (fun f ->
                "  "
                ^ Pref_analysis.Diagnostic.to_string
                    (Pref_analysis.Install.of_finding f))
              findings))
  | Pref.Ill_formed { code; message; _ } ->
    Error (Printf.sprintf "[%s] %s" code message)
  | Repository.Error msg -> Error msg
  | Serialize.Error (msg, _) -> Error msg
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
  | Sys_error msg -> Error msg
