open Preferences
open Pref_relation

type failure = {
  f_section : string;
  f_rule : string;
  f_term : Pref.t;
  f_rewritten : Pref.t option;
  f_relation : Relation.t;
  f_detail : string;
}

type section = {
  s_name : string;
  s_rules : int;
  s_cases : int;
  s_failures : failure list;
}

type report = { sections : section list; elapsed_ms : float; scope : string }

let broken_rule_hook : (Pref.t -> Pref.t option) ref = ref (fun _ -> None)

(* ------------------------------------------------------------------ *)
(* The small scope                                                     *)

let schema = Schema.make [ ("a", Value.TInt); ("b", Value.TInt) ]
let domain = [ 0; 1; 2 ]

let universe =
  List.concat_map
    (fun a -> List.map (fun b -> Tuple.make [ Value.Int a; Value.Int b ]) domain)
    domain

(* All ordered sublists of [universe] with at most [max_rows] elements,
   produced in increasing size — the first failing relation is minimal. *)
let relations max_rows =
  let rec subsets k = function
    | _ when k = 0 -> [ [] ]
    | [] -> [ [] ]
    | x :: rest ->
      subsets k rest @ List.map (fun s -> x :: s) (subsets (k - 1) rest)
  in
  let all = subsets max_rows universe in
  let sized = List.map (fun rows -> (List.length rows, rows)) all in
  List.stable_sort (fun (n1, _) (n2, _) -> compare n1 n2) sized
  |> List.map (fun (_, rows) -> Relation.make schema rows)

let bmo p rel = Pref_bmo.Naive.query schema p rel

(* ------------------------------------------------------------------ *)
(* Equivalence checking                                                *)

let pp_rows rel =
  List.map
    (fun t -> Fmt.str "  (%a)" Fmt.(list ~sep:comma Value.pp) (Tuple.to_list t))
    (Relation.rows rel)

(* Definition 13 equivalence on the tuple universe: lt must agree on
   every pair. A disagreeing pair is itself a 2-row counterexample. *)
let order_counterexample p q =
  let exception Found of Tuple.t * Tuple.t * bool * bool in
  try
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            let lp = Pref.lt schema p x y and lq = Pref.lt schema q x y in
            if lp <> lq then raise (Found (x, y, lp, lq)))
          universe)
      universe;
    None
  with Found (x, y, lp, lq) ->
    Some
      ( Relation.make schema [ x; y ],
        Fmt.str "lt(%a, %a) is %b under the original but %b under the rewrite"
          Tuple.pp x Tuple.pp y lp lq )

let bmo_counterexample rels p q =
  List.find_map
    (fun rel ->
      let rp = bmo p rel and rq = bmo q rel in
      if Relation.equal_as_sets rp rq then None
      else
        Some
          ( rel,
            Fmt.str "BMO sets differ: {%s} vs {%s}"
              (String.concat "; " (List.map String.trim (pp_rows rp)))
              (String.concat "; " (List.map String.trim (pp_rows rq))) ))
    rels

(* ------------------------------------------------------------------ *)
(* Section 1: Rewrite.step rules                                       *)

let a0 = Value.Int 0
let a1 = Value.Int 1
let a2 = Value.Int 2

let lsum_term =
  Pref.lsum ~attr:"a"
    (Pref.pos "a" [ a0 ], [ a0; a1 ])
    (Pref.pos "a" [ a2 ], [ a2 ])

(* One term per Rewrite.step rule; the verifier fails if an entry stops
   firing, so the catalog and the rule set cannot drift apart. *)
let rewrite_catalog =
  [
    ("dual-dual", Pref.Dual (Pref.Dual (Pref.lowest "a")));
    ("dual-lowest", Pref.Dual (Pref.lowest "a"));
    ("dual-highest", Pref.Dual (Pref.highest "a"));
    ("dual-pos", Pref.Dual (Pref.pos "a" [ a0 ]));
    ("dual-neg", Pref.Dual (Pref.neg "a" [ a0 ]));
    ("dual-antichain", Pref.Dual (Pref.antichain [ "a" ]));
    ("dual-lsum", Pref.Dual lsum_term);
    ("inter-idempotent", Pref.Inter (Pref.lowest "a", Pref.lowest "a"));
    ("inter-dual-pair", Pref.Inter (Pref.lowest "a", Pref.highest "a"));
    ( "inter-antichain-right",
      Pref.Inter (Pref.lowest "a", Pref.antichain [ "a" ]) );
    ( "inter-antichain-left",
      Pref.Inter (Pref.antichain [ "a" ], Pref.lowest "a") );
    ("prior-idempotent", Pref.Prior (Pref.lowest "a", Pref.lowest "a"));
    ("prior-dual-pair", Pref.Prior (Pref.lowest "a", Pref.highest "a"));
    ( "prior-antichain-absorbed",
      Pref.Prior (Pref.lowest "a", Pref.antichain [ "a" ]) );
    ( "prior-antichain-blocks",
      Pref.Prior (Pref.antichain [ "a" ], Pref.lowest "a") );
    ("prior-covered-4a", Pref.Prior (Pref.pos "a" [ a0 ], Pref.highest "a"));
    ("pareto-idempotent", Pref.Pareto (Pref.lowest "a", Pref.lowest "a"));
    ("pareto-dual-pair", Pref.Pareto (Pref.lowest "a", Pref.highest "a"));
    ( "pareto-antichain-left",
      Pref.Pareto (Pref.antichain [ "a" ], Pref.lowest "b") );
    ( "pareto-antichain-right",
      Pref.Pareto (Pref.lowest "b", Pref.antichain [ "a" ]) );
    ("pareto-shared-attrs-6", Pref.Pareto (Pref.pos "a" [ a0 ], Pref.neg "a" [ a1 ]));
    ( "dunion-antichain-right",
      Pref.Dunion (Pref.pos "a" [ a0; a1 ], Pref.antichain [ "a" ]) );
    ( "dunion-antichain-left",
      Pref.Dunion (Pref.antichain [ "a" ], Pref.pos "a" [ a0; a1 ]) );
  ]

(* Extra terms the injected-rule hook is applied to: shapes on which a
   plausible-but-wrong rule (e.g. "P & Q => P") actually differs. *)
let hook_pool =
  List.map snd rewrite_catalog
  @ [
      Pref.Prior (Pref.lowest "a", Pref.lowest "b");
      Pref.Pareto (Pref.lowest "a", Pref.highest "b");
      Pref.Inter (Pref.pos "a" [ a0 ], Pref.neg "a" [ a2 ]);
      Pref.Dunion (Pref.pos "a" [ a0 ], Pref.pos "a" [ a2 ]);
    ]

let check_equiv ~section ~rule rels p q failures =
  match order_counterexample p q with
  | Some (rel, detail) ->
    failures :=
      {
        f_section = section;
        f_rule = rule;
        f_term = p;
        f_rewritten = Some q;
        f_relation = rel;
        f_detail = detail;
      }
      :: !failures
  | None -> (
    match bmo_counterexample rels p q with
    | Some (rel, detail) ->
      failures :=
        {
          f_section = section;
          f_rule = rule;
          f_term = p;
          f_rewritten = Some q;
          f_relation = rel;
          f_detail = detail;
        }
        :: !failures
    | None -> ())

let rewrite_section rels =
  let failures = ref [] in
  let cases = ref 0 in
  List.iter
    (fun (rule, term) ->
      match Rewrite.step term with
      | None ->
        failures :=
          {
            f_section = "rewrite";
            f_rule = rule;
            f_term = term;
            f_rewritten = None;
            f_relation = Relation.empty schema;
            f_detail =
              "catalogued rule did not fire: Rewrite.step returned None \
               (catalog and rule set have drifted apart)";
          }
          :: !failures
      | Some q ->
        cases := !cases + List.length rels;
        check_equiv ~section:"rewrite" ~rule rels term q failures)
    rewrite_catalog;
  let injected =
    List.filter_map
      (fun term ->
        match !broken_rule_hook term with
        | Some q -> Some (term, q)
        | None -> None)
      hook_pool
  in
  List.iter
    (fun (term, q) ->
      cases := !cases + List.length rels;
      check_equiv ~section:"rewrite" ~rule:"injected" rels term q failures)
    injected;
  {
    s_name = "rewrite";
    s_rules = List.length rewrite_catalog + (if injected = [] then 0 else 1);
    s_cases = !cases;
    s_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Section 2: the Constraints prover                                   *)

let v7 = Value.Int 7
let v8 = Value.Int 8

(* One term per prover rule; every entry must produce at least one proof
   somewhere in the enumerated scope, and every proof must be true. *)
let constraints_catalog =
  [
    ("constancy", Pref.around "a" 1.);
    ("antichain", Pref.antichain [ "a" ]);
    ("dual", Pref.dual (Pref.pos "a" [ v7 ]));
    ("pos-none-in-set", Pref.pos "a" [ v7 ]);
    ("pos-all-in-set", Pref.pos "a" [ a0; a1; a2 ]);
    ("neg", Pref.neg "a" [ v7 ]);
    ("pos-neg", Pref.pos_neg "a" ~pos:[ v7 ] ~neg:[ v8 ]);
    ("pos-pos", Pref.pos_pos "a" ~pos1:[ v7 ] ~pos2:[ v8 ]);
    ("explicit", Pref.explicit "a" [ (v7, v8) ]);
    ("between", Pref.between "a" ~low:(-1.) ~up:3.);
    ("pareto", Pref.pareto (Pref.pos "a" [ v7 ]) (Pref.neg "b" [ v8 ]));
    ("prior", Pref.prior (Pref.pos "a" [ v7 ]) (Pref.neg "b" [ v8 ]));
    ("dunion", Pref.dunion (Pref.pos "a" [ v7 ]) (Pref.pos "a" [ v8 ]));
    ("inter", Pref.inter (Pref.pos "a" [ v7 ]) (Pref.lowest "a"));
  ]

let constraints_section rels =
  let failures = ref [] in
  let cases = ref 0 in
  List.iter
    (fun (rule, term) ->
      let fired = ref 0 in
      List.iter
        (fun rel ->
          incr cases;
          match Constraints.redundant schema term rel with
          | None -> ()
          | Some reason ->
            incr fired;
            let res = bmo term rel in
            if not (Relation.equal_as_sets res rel) then
              failures :=
                {
                  f_section = "constraints";
                  f_rule = rule;
                  f_term = term;
                  f_rewritten = None;
                  f_relation = rel;
                  f_detail =
                    Fmt.str
                      "prover claimed \"%s\" but the winnow drops rows: \
                       |input| = %d, |BMO| = %d"
                      reason (Relation.cardinality rel)
                      (Relation.cardinality res);
                }
                :: !failures)
        rels;
      if !fired = 0 then
        failures :=
          {
            f_section = "constraints";
            f_rule = rule;
            f_term = term;
            f_rewritten = None;
            f_relation = Relation.empty schema;
            f_detail = "prover rule never fired at this scope";
          }
          :: !failures)
    constraints_catalog;
  {
    s_name = "constraints";
    s_rules = List.length constraints_catalog;
    s_cases = !cases;
    s_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Section 3: cache decomposition tiers                                *)

(* Per tier: the composite term, the operands to pre-cache, and the
   tier name Cache.lookup must report. *)
let cache_catalog =
  [
    ( "prior-prefix",
      Pref.prior (Pref.lowest "a") (Pref.lowest "b"),
      [ Pref.lowest "a" ] );
    ( "dunion-inter",
      Pref.dunion (Pref.pos "a" [ a0 ]) (Pref.pos "a" [ a2 ]),
      [ Pref.pos "a" [ a0 ]; Pref.pos "a" [ a2 ] ] );
    ( "pareto-restrict",
      Pref.pareto (Pref.lowest "a") (Pref.highest "b"),
      [ Pref.lowest "a" ] );
  ]

let cache_section rels =
  let failures = ref [] in
  let cases = ref 0 in
  List.iter
    (fun (tier, term, operands) ->
      let hits = ref 0 in
      List.iter
        (fun rel ->
          if not (Relation.is_empty rel) then begin
            incr cases;
            let c = Pref_bmo.Cache.create () in
            List.iter
              (fun op -> Pref_bmo.Cache.store c schema op rel (bmo op rel))
              operands;
            match Pref_bmo.Cache.lookup c ~gate:false schema term rel with
            | Some (res, Pref_bmo.Cache.Semantic t) when t = tier ->
              incr hits;
              let expect = bmo term rel in
              if not (Relation.equal_as_sets res expect) then
                failures :=
                  {
                    f_section = "cache";
                    f_rule = tier;
                    f_term = term;
                    f_rewritten = None;
                    f_relation = rel;
                    f_detail =
                      Fmt.str
                        "tier %s reconstructed a wrong result: |derived| = \
                         %d, |σ[P](R)| = %d"
                        tier (Relation.cardinality res)
                        (Relation.cardinality expect);
                  }
                  :: !failures
            | Some (_, reuse) ->
              let name =
                match reuse with
                | Pref_bmo.Cache.Exact -> "exact"
                | Pref_bmo.Cache.Semantic t -> t
              in
              failures :=
                {
                  f_section = "cache";
                  f_rule = tier;
                  f_term = term;
                  f_rewritten = None;
                  f_relation = rel;
                  f_detail =
                    Fmt.str "expected tier %s, lookup answered via %s" tier
                      name;
                }
                :: !failures
            | None -> ()
          end)
        rels;
      if !hits = 0 then
        failures :=
          {
            f_section = "cache";
            f_rule = tier;
            f_term = term;
            f_rewritten = None;
            f_relation = Relation.empty schema;
            f_detail = "decomposition tier never matched at this scope";
          }
          :: !failures)
    cache_catalog;
  {
    s_name = "cache";
    s_rules = List.length cache_catalog;
    s_cases = !cases;
    s_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Section 4: the router merge                                         *)

let merge_queries =
  [
    "select * from t preferring lowest(a)";
    "select * from t preferring lowest(a) and highest(b)";
    "select * from t preferring lowest(a) prior to lowest(b)";
    "select * from t";
    "select * from t where a >= 1 preferring lowest(b)";
    "select * from t preferring lowest(b) grouping a";
  ]

let merge_schemes =
  [
    Pref_router.Shard_map.Hash "a";
    Pref_router.Shard_map.Range ("a", [ Value.Int 1 ]);
  ]

let merge_section rels =
  let module Shard_map = Pref_router.Shard_map in
  let module Merge = Pref_router.Merge in
  let module Engine = Pref_bmo.Engine in
  let config =
    { Engine.default with Engine.check = false; cache = false; profile = false }
  in
  let failures = ref [] in
  let cases = ref 0 in
  let fail ~rule ?(rel = Relation.empty schema) term detail =
    failures :=
      {
        f_section = "merge";
        f_rule = rule;
        f_term = term;
        f_rewritten = None;
        f_relation = rel;
        f_detail = detail;
      }
      :: !failures
  in
  List.iter
    (fun q_str ->
      let q = Pref_sql.Parser.parse_query q_str in
      let term =
        match Pref_sql.Exec.full_preference q with
        | Some p -> p
        | None -> Pref.antichain [ "a" ]
      in
      List.iter
        (fun scheme ->
          let rule =
            Fmt.str "%s | %s" q_str (Shard_map.scheme_to_string scheme)
          in
          let shard_map = Shard_map.add Shard_map.empty ~table:"t" scheme in
          match Merge.plan ~shard_map q with
          | Error msg -> fail ~rule term ("planner rejected the query: " ^ msg)
          | Ok Merge.Proxy ->
            fail ~rule term "planner proxied a query over the sharded table"
          | Ok (Merge.Scatter d) ->
            List.iter
              (fun rel ->
                incr cases;
                let parts = Shard_map.partition scheme ~shards:2 rel in
                let shard_answers =
                  Array.to_list parts
                  |> List.map (fun part ->
                         let r =
                           Pref_sql.Exec.run_cfg config
                             [ ("t", part) ]
                             d.Merge.shard_sql
                         in
                         (r.Pref_sql.Exec.relation, r.Pref_sql.Exec.flags))
                in
                match Merge.gather shard_answers with
                | Error msg -> fail ~rule ~rel term ("gather failed: " ^ msg)
                | Ok (union, _) ->
                  let fin =
                    Merge.finish ~config
                      ~deadline:(Engine.deadline_of config)
                      d union
                  in
                  let single =
                    Pref_sql.Exec.run_query_cfg config [ ("t", rel) ] q
                  in
                  if
                    not
                      (Relation.equal_as_sets fin.Pref_sql.Exec.relation
                         single.Pref_sql.Exec.relation)
                  then
                    fail ~rule ~rel term
                      (Fmt.str
                         "scatter-gather differs from single-node: |merged| \
                          = %d, |single| = %d"
                         (Relation.cardinality fin.Pref_sql.Exec.relation)
                         (Relation.cardinality single.Pref_sql.Exec.relation)))
              rels)
        merge_schemes)
    merge_queries;
  {
    s_name = "merge";
    s_rules = List.length merge_queries * List.length merge_schemes;
    s_cases = !cases;
    s_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Section 5: seeded-random large scope                                *)

let random_base st =
  let attr = if Random.State.bool st then "a" else "b" in
  let value () = Value.Int (Random.State.int st 5) in
  let set () = List.init (1 + Random.State.int st 3) (fun _ -> value ()) in
  match Random.State.int st 7 with
  | 0 -> Pref.Lowest attr
  | 1 -> Pref.Highest attr
  | 2 -> Pref.Pos (attr, set ())
  | 3 -> Pref.Neg (attr, set ())
  | 4 -> Pref.Around (attr, float_of_int (Random.State.int st 5))
  | 5 ->
    let l = float_of_int (Random.State.int st 5) in
    Pref.Between (attr, l, l +. float_of_int (Random.State.int st 3))
  | _ -> Pref.Antichain [ attr ]

let rec random_term st depth =
  if depth = 0 then random_base st
  else
    let sub () = random_term st (depth - 1) in
    match Random.State.int st 6 with
    | 0 -> Pref.Pareto (sub (), sub ())
    | 1 -> Pref.Prior (sub (), sub ())
    | 2 -> Pref.Dunion (sub (), sub ())
    | 3 -> Pref.Dual (sub ())
    | 4 ->
      (* ♦ needs equal attribute sets: draw both operands over one attr *)
      let attr = if Random.State.bool st then "a" else "b" in
      let base () =
        match Random.State.int st 3 with
        | 0 -> Pref.Lowest attr
        | 1 -> Pref.Pos (attr, [ Value.Int (Random.State.int st 5) ])
        | _ -> Pref.Highest attr
      in
      Pref.Inter (base (), base ())
    | _ -> random_base st

let random_relation st =
  let n = Random.State.int st 9 in
  Relation.make schema
    (List.init n (fun _ ->
         Tuple.make
           [ Value.Int (Random.State.int st 5); Value.Int (Random.State.int st 5) ]))

let random_section ~seed ~cases ~budget_s =
  let st = Random.State.make [| seed |] in
  let failures = ref [] in
  let ran = ref 0 in
  let t0 = Pref_obs.Clock.now_ns () in
  (try
     for _ = 1 to cases do
       if Pref_obs.Clock.elapsed_ms ~since:t0 > budget_s *. 1000. then
         raise Exit;
       incr ran;
       let p = random_term st 2 in
       let rel = random_relation st in
       let q = Rewrite.simplify p in
       if not (Relation.equal_as_sets (bmo p rel) (bmo q rel)) then
         failures :=
           {
             f_section = "random";
             f_rule = "simplify";
             f_term = p;
             f_rewritten = Some q;
             f_relation = rel;
             f_detail = "Rewrite.simplify changed the BMO set";
           }
           :: !failures;
       match Constraints.redundant schema p rel with
       | Some reason when not (Relation.equal_as_sets (bmo p rel) rel) ->
         failures :=
           {
             f_section = "random";
             f_rule = "constraints";
             f_term = p;
             f_rewritten = None;
             f_relation = rel;
             f_detail = "unsound proof: " ^ reason;
           }
           :: !failures
       | _ -> ()
     done
   with Exit -> ());
  {
    s_name = "random";
    s_rules = 2;
    s_cases = !ran;
    s_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Driver and rendering                                                *)

let run ?(max_rows = 3) ?(seed = 42) ?(random_cases = 150) ?(budget_s = 30.)
    () =
  let t0 = Pref_obs.Clock.now_ns () in
  let rels = relations max_rows in
  let sections =
    [
      rewrite_section rels;
      constraints_section rels;
      cache_section rels;
      merge_section rels;
      random_section ~seed ~cases:random_cases ~budget_s;
    ]
  in
  {
    sections;
    elapsed_ms = Pref_obs.Clock.elapsed_ms ~since:t0;
    scope =
      Fmt.str
        "2 int attributes x domain {0, 1, 2}; all %d relations up to %d \
         rows; seed %d"
        (List.length rels) max_rows seed;
  }

let ok report = List.for_all (fun s -> s.s_failures = []) report.sections

let counterexample_lines f =
  [
    Fmt.str "counterexample in %s/%s:" f.f_section f.f_rule;
    Fmt.str "  term:      %s" (Show.to_string f.f_term);
  ]
  @ (match f.f_rewritten with
    | Some q -> [ Fmt.str "  rewritten: %s" (Show.to_string q) ]
    | None -> [])
  @ [ Fmt.str "  relation over (a, b), %d rows:" (Relation.cardinality f.f_relation) ]
  @ pp_rows f.f_relation
  @ [ Fmt.str "  detail: %s" f.f_detail ]

let report_lines report =
  let total_cases =
    List.fold_left (fun acc s -> acc + s.s_cases) 0 report.sections
  and total_failures =
    List.fold_left (fun acc s -> acc + List.length s.s_failures) 0 report.sections
  in
  [ "verify scope: " ^ report.scope ]
  @ List.map
      (fun s ->
        Fmt.str "  %-12s %3d rules  %6d cases  %s" s.s_name s.s_rules s.s_cases
          (match s.s_failures with
          | [] -> "ok"
          | fs -> Fmt.str "%d FAILURE%s" (List.length fs)
                    (if List.length fs = 1 then "" else "S")))
      report.sections
  @ List.concat_map
      (fun s ->
        List.concat_map counterexample_lines
          (match s.s_failures with
          | a :: b :: c :: _ -> [ a; b; c ]
          | fs -> fs))
      report.sections
  @ [
      (if ok report then
         Fmt.str "VERIFY OK (%d cases in %.0f ms)" total_cases
           report.elapsed_ms
       else
         Fmt.str "VERIFY FAILED (%d failures over %d cases in %.0f ms)"
           total_failures total_cases report.elapsed_ms);
    ]
