(** Bounded soundness verification of the engine's rewrite machinery.

    A small-scope model checker in the Alloy tradition: enumerate every
    relation up to [max_rows] rows over a 2-attribute integer schema with
    a 3-value domain, and check each soundness-critical rule family
    against the reference semantics ({!Pref_bmo.Naive.query}, literal
    Definition 15):

    - {b rewrite}: every {!Preferences.Rewrite.step} rule, exercised by a
      curated term catalog (the verifier fails if a catalogued rule stops
      firing), checked two ways — order equivalence (Definition 13: [lt]
      agrees on every tuple pair of the universe) and BMO equality on
      every enumerated relation;
    - {b constraints}: whenever {!Preferences.Constraints.redundant}
      claims a proof, σ[P](R) = R must actually hold; every prover rule
      must fire at least once at this scope;
    - {b cache}: the three decomposition tiers (prior-prefix/Prop. 10,
      dunion-inter/Prop. 8, pareto-restrict/Prop. 12) of
      {!Pref_bmo.Cache} must reconstruct exactly σ[P](R) from cached
      operand results, and each tier must match at least once;
    - {b merge}: for a catalog of sharded queries,
      {!Pref_router.Merge.gather} + [finish] over per-shard executions
      must equal the single-node answer, for hash and range schemes;
    - {b random}: a seeded large-scope tier (more rows, wider domain)
      re-checking [Rewrite.simplify] and the constraints prover under a
      time budget.

    A failure carries a minimal counterexample — the enumeration visits
    relations in increasing size, so the first failing relation is a
    smallest one. Surfaced as [prefcheck --verify], [make verify] and a
    CI job. *)

open Pref_relation

type failure = {
  f_section : string;
  f_rule : string;
  f_term : Preferences.Pref.t;
  f_rewritten : Preferences.Pref.t option;
      (** the claimed-equivalent term, for rewrite failures *)
  f_relation : Relation.t;  (** minimal witness relation *)
  f_detail : string;
}

type section = {
  s_name : string;
  s_rules : int;  (** distinct rules checked *)
  s_cases : int;  (** (rule, relation) pairs examined *)
  s_failures : failure list;
}

type report = {
  sections : section list;
  elapsed_ms : float;
  scope : string;  (** human-readable scope description *)
}

val run :
  ?max_rows:int ->
  ?seed:int ->
  ?random_cases:int ->
  ?budget_s:float ->
  unit ->
  report
(** Defaults: [max_rows = 3] (130 relations over the 9-tuple universe),
    [seed = 42], [random_cases = 150], [budget_s = 30.] (the random tier
    stops early when the budget is spent). Deterministic for fixed
    parameters. *)

val ok : report -> bool

val report_lines : report -> string list
(** Per-section summary plus the first counterexamples of each failing
    section, ending in [VERIFY OK]/[VERIFY FAILED]. *)

val counterexample_lines : failure -> string list

val broken_rule_hook : (Preferences.Pref.t -> Preferences.Pref.t option) ref
(** Test hook: an extra "rewrite rule" checked like the real ones under
    the rule name [injected]. Default [fun _ -> None]. Negative tests
    plant a deliberately unsound rule here and assert the verifier
    produces a counterexample. *)
