open Pref_sql

let to_finding (d : Diagnostic.t) =
  {
    Exec.check_code = d.Diagnostic.code;
    check_severity = Diagnostic.severity_to_string d.Diagnostic.severity;
    check_path =
      (match d.Diagnostic.path with
      | [] -> "<root>"
      | p -> String.concat "." p);
    check_message = d.Diagnostic.message;
  }

let of_finding (f : Exec.check_finding) =
  Diagnostic.make
    ~path:(if f.Exec.check_path = "<root>" then [] else [ f.Exec.check_path ])
    f.Exec.check_code f.Exec.check_message

let install () =
  Exec.set_checker
    (Some
       (fun ?registry env q ->
         List.map to_finding
           (Diagnostic.sort (Ast_check.check_query ?registry ~env q))))
