(** Structured findings of the preference static analyzer.

    Every finding carries a stable code from the table below, a severity, a
    path into the checked term or query AST, a human-readable message and —
    where a law of §4 licenses one — a fix-it replacement term that is
    preference-equivalent (Definition 13) to the flagged subterm.

    Code space: [Exxx] errors (the construction or execution is guaranteed
    to fail at runtime), [Wxxx] warnings (well-formed but almost certainly
    not what was meant — trivial orders, dead operands, type mismatches),
    [Hxxx] hints (equivalent simpler formulations).

    {v
    E001 cyclic-explicit-graph         E101 unknown-table
    E002 overlapping-value-sets        E102 unknown-attribute
    E003 invalid-between-bounds        E103 unknown-scoring-function
    E004 rank-non-scorable             E104 unknown-combining-function
    E005 inter-attribute-mismatch      E105 non-numeric-bound
    E006 lsum-ill-formed               E106 but-only-without-preferring
    E007 multi-attribute-base          E107 level-without-base
    E010 construction-failure          E108 distance-without-base
                                       E109 select-star-mix
                                       E110 empty-from
                                       E111 syntax-error
                                       E112 duplicate-table
    W010 non-discriminating-prior      W101 unknown-xml-attribute
    W011 pareto-on-shared-attributes   W102 unknown-xml-tag
    W012 trivial-preference
    W013 antichain-operand
    W014 type-mismatch
    H020 redundant-operand
    H021 double-dual
    H022 rewritable-dual
    H023 simplifiable
    v}

    The 2xx families are the semantic-analysis layer: term satisfiability
    ({!Sat_check}), data/workload-aware query lints ({!Flow_check}) and the
    shard-aware statement classification ({!Shard_check}).

    {v
    E201 shard-key-unknown-attribute   W210 unsatisfiable-where
    E202 invalid-shard-spec            W211 winnow-always-total
    E203 duplicate-shard-table         W212 empty-table
    E210 unknown-set-knob              W220 shadowed-preference-suffix
    E220 rejected-by-router            W221 repeated-statement
    W201 explicit-graph-collapses      W222 dead-set-knob
    W202 unsatisfiable-between         W223 scatter-partial-risk
    W203 conflicting-numeric-zones     H210 refinement-cache-reuse
    H201 duplicate-set-values          H220 scatter-exact
    H221 scatter-final-winnow          H222 proxied-statement
    v} *)

type severity = Error | Warning | Hint

type t = {
  code : string;  (** stable code, e.g. ["E001"] *)
  severity : severity;  (** derived from the code's first letter *)
  path : string list;  (** root-to-leaf path into the term / query AST *)
  message : string;
  fixit : Preferences.Pref.t option;
      (** an equivalent replacement for the flagged subterm, when a §4 law
          licenses one *)
}

val codes : (string * string) list
(** The stable code table: code ↦ short slug, e.g.
    [("E001", "cyclic-explicit-graph")]. *)

val meaning : string -> string
(** The slug of a code; the code itself for unknown codes. *)

val severity_of_code : string -> severity
(** [E… ↦ Error], [W… ↦ Warning], everything else [Hint]. *)

val make : ?path:string list -> ?fixit:Preferences.Pref.t -> string -> string -> t
(** [make code message]; severity is derived from the code. *)

val severity_to_string : severity -> string

val is_error : t -> bool
val has_errors : t list -> bool

val sort : t list -> t list
(** Stable order for reports: errors before warnings before hints, then by
    path, then by code. *)

val to_string : t -> string
(** One line: [error[E001] at preferring.pareto[0]: message (fix: term)]. *)

val to_lines : t list -> string list
(** Sorted rendering; [["ok"]]-free — empty list for no findings. *)

val to_json : t -> Pref_obs.Json.t
(** Object with [code], [severity], [slug], [path], [message] and, when a
    fix-it exists, [fixit] in {!Preferences.Serialize} syntax. *)

val report_json : ?source:string -> t list -> Pref_obs.Json.t
(** [{ "source": …, "errors": n, "warnings": n, "hints": n,
      "findings": […] }] — the [prefcheck --json] payload for one query. *)
