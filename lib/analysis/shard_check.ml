open Pref_relation
open Pref_sql
open Pref_router

let check_specs ?(env = []) specs =
  let diags = ref [] in
  let emit i code message =
    diags :=
      Diagnostic.make ~path:[ Printf.sprintf "shard[%d]" i ] code message
      :: !diags
  in
  let map = ref Shard_map.empty in
  List.iteri
    (fun i spec ->
      match Shard_map.of_spec spec with
      | Error msg -> emit i "E202" msg
      | Ok (table, scheme) ->
        if Shard_map.find !map table <> None then
          emit i "E203"
            (Printf.sprintf
               "table %S is already mapped (%s): the router uses the first \
                entry; drop or merge the duplicate spec"
               table
               (Shard_map.scheme_to_string
                  (Option.get (Shard_map.find !map table))))
        else begin
          let bad_bound =
            match scheme with
            | Shard_map.Range (_, bounds) ->
              List.find_opt (fun b -> Value.as_float b = None) bounds
            | _ -> None
          in
          (match bad_bound with
          | Some b ->
            emit i "E202"
              (Printf.sprintf
                 "range bounds for table %S must be numeric, got %s" table
                 (Value.to_string b))
          | None -> ());
          (match (Shard_map.key_attr scheme, Exec.find_table env table) with
          | Some attr, Some rel ->
            let schema = Relation.schema rel in
            if not (Schema.mem schema attr) then
              emit i "E201"
                (Printf.sprintf
                   "shard key %S is not a column of table %S%s" attr table
                   (Ast_check.suggest (Schema.names schema) attr))
          | _ -> ());
          if bad_bound = None then map := Shard_map.add !map ~table scheme
        end)
    specs;
  (!map, List.rev !diags)

let classify ?registry ~shard_map (q : Ast.query) =
  let mk ?(path = [ "shard" ]) code message =
    [ Diagnostic.make ~path code message ]
  in
  match Merge.plan ?registry ~shard_map q with
  | Error msg -> mk "E220" (Printf.sprintf "rejected by the shard router: %s" msg)
  | Ok Merge.Proxy ->
    mk "H222" "no sharded table: proxied to a single backend, exact"
  | Ok (Merge.Scatter d) ->
    let has_pref = q.Ast.preferring <> None || q.Ast.cascade <> [] in
    if d.Merge.merge_needed then
      mk "H221"
        (Printf.sprintf "scatter + final winnow over the union: exact (%s)"
           d.Merge.reason)
    else if has_pref then
      mk "W223"
        (Printf.sprintf
           "scatter with the merge skipped (%s): exact only while the shard \
            map matches the data placement; a lost or misplaced shard \
            silently drops whole groups, with no final winnow to notice"
           d.Merge.reason)
    else mk "H220" (Printf.sprintf "scatter exact: %s" d.Merge.reason)
