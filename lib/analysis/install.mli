(** Wiring the analyzer into the executor.

    {!Pref_sql.Exec} exposes an injectable checker hook so it can vet
    queries (its [?check] argument) without depending on this library;
    [install] plugs {!Ast_check.check_query} into that hook. Idempotent;
    called by the shell on startup and by the CLI binaries. *)

val to_finding : Diagnostic.t -> Pref_sql.Exec.check_finding

val of_finding : Pref_sql.Exec.check_finding -> Diagnostic.t
(** Round-trip for rendering a {!Pref_sql.Exec.Rejected} payload with the
    {!Diagnostic} printers (the fix-it term does not survive the trip). *)

val install : unit -> unit
