open Pref_xpath

let doc_tags doc =
  List.filter_map Xml.tag_of (Xml.descendants_or_self doc)

let doc_attr_names doc =
  List.concat_map
    (function
      | Xml.Element e -> List.map fst e.Xml.attrs
      | Xml.Text _ -> [])
    (Xml.descendants_or_self doc)

let check_path ?registry ?doc path =
  let tags = Option.map doc_tags doc in
  let attrs = Option.map doc_attr_names doc in
  (* The evaluator matches tags and attribute names case-insensitively
     (and "*" matches any element), so the typo check must too. *)
  let known ~universe name =
    match universe with
    | None -> true
    | Some u ->
      let n = String.lowercase_ascii name in
      List.exists (fun c -> String.lowercase_ascii c = n) u
  in
  let check_attr dpath a =
    if not (known ~universe:attrs a) then
      [
        Diagnostic.make ~path:dpath "W101"
          (Printf.sprintf
             "attribute %S occurs nowhere in the document: it evaluates to \
              NULL everywhere%s"
             a
             (match attrs with
             | Some u -> Ast_check.suggest u a
             | None -> ""));
      ]
    else []
  in
  List.concat
    (List.mapi
       (fun i (step : Past.step) ->
         let spath =
           [ Printf.sprintf "step[%d](%s)" i step.Past.tag ]
         in
         let tag_diags =
           if step.Past.tag = "*" || known ~universe:tags step.Past.tag then []
           else
             [
               Diagnostic.make ~path:spath "W102"
                 (Printf.sprintf
                    "tag <%s> occurs nowhere in the document: this step \
                     selects nothing%s"
                    step.Past.tag
                    (match tags with
                    | Some u -> Ast_check.suggest u step.Past.tag
                    | None -> ""));
             ]
         in
         tag_diags
         @ List.concat
             (List.mapi
                (fun j qual ->
                  match qual with
                  | Past.Hard h ->
                    let qpath =
                      spath @ [ Printf.sprintf "hard[%d]" j ]
                    in
                    List.concat_map (check_attr qpath) (Past.hard_attrs h)
                  | Past.Soft p ->
                    let qpath =
                      spath @ [ Printf.sprintf "soft[%d]" j ]
                    in
                    Ast_check.check_pref ?registry ~path:qpath p
                    @ List.concat_map (check_attr qpath)
                        (Pref_sql.Ast.pref_attrs p))
                step.Past.quals))
       path)

let check_source ?registry ?doc src =
  match Pparser.parse src with
  | path -> check_path ?registry ?doc path
  | exception Pparser.Error (msg, pos) ->
    [
      Diagnostic.make ~path:[ "source" ] "E111"
        (Printf.sprintf "syntax error at offset %d: %s" pos msg);
    ]
