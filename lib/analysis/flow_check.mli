(** Data- and workload-aware query analysis.

    {!Ast_check} is purely structural; this layer additionally consults
    the execution environment (the loaded tables) and, in workload mode,
    reasons across the statements of a whole [.psql] file.

    Query-level data lints (all warnings — the statements execute fine):

    - [W210] [unsatisfiable-where]: the top-level WHERE conjuncts are
      contradictory (disjoint ranges, conflicting equalities, empty IN
      intersections), so the result is empty on every input;
    - [W211] [winnow-always-total]: the {!Preferences.Constraints} prover
      shows σ[P] never discards a row of the loaded table — and the proof
      is universally quantified over rows, hence stays valid under any
      WHERE filter and any GROUPING split;
    - [W212] [empty-table]: a FROM table is loaded and empty;
    - [W220] [shadowed-preference-suffix]: a prioritisation prefix whose
      attributes already identify every row of the loaded data, so the
      remaining & operands never discriminate (the data-dependent
      completion of Proposition 4(a)).

    Workload mode ({!check_statements}) additionally understands
    [SET knob value] statements and reports

    - [E210] [unknown-set-knob]: {!Pref_bmo.Engine.set} rejects the knob
      or its value — the statement errors at runtime;
    - [W222] [dead-set-knob]: a SET overwritten before any query runs, or
      a SET to the value already in effect;
    - [W221] [repeated-statement]: a statement whose base query and
      canonical preference are identical to an earlier one;
    - [H210] [refinement-cache-reuse]: a statement that extends an
      earlier statement's prioritisation spine over the same base query —
      the prior-prefix cache tier (Proposition 10) can derive its BMO
      from the earlier result. *)

open Pref_sql

val check_query :
  ?registry:Translate.registry -> env:Exec.env -> Ast.query -> Diagnostic.t list
(** {!Ast_check.check_query} plus the data lints. The data lints only run
    on structurally error-free queries. Never raises. *)

val check_source :
  ?registry:Translate.registry -> env:Exec.env -> string -> Diagnostic.t list
(** [check_query] after parsing; parse failures become one [E111]. *)

val check_statements :
  ?registry:Translate.registry ->
  env:Exec.env ->
  (string * string) list ->
  (string * Diagnostic.t list) list
(** Workload mode over the labelled statements of one file, in order.
    Result is aligned 1:1 with the input: per-statement findings
    ({!check_query} / SET validation) plus the cross-statement findings
    attached to the statement they concern. *)
