open Preferences
open Pref_relation

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let rec pareto_ops = function
  | Pref.Pareto (q, r) -> pareto_ops q @ pareto_ops r
  | p -> [ p ]

let rec prior_ops = function
  | Pref.Prior (q, r) -> prior_ops q @ prior_ops r
  | p -> [ p ]

let rec inter_ops = function
  | Pref.Inter (q, r) -> inter_ops q @ inter_ops r
  | p -> [ p ]

let dedup values =
  List.fold_left
    (fun acc v -> if List.exists (Value.equal v) acc then acc else v :: acc)
    [] values
  |> List.rev

(* Same compatibility notion as Term_check: Int and Float compare
   numerically, every other type only matches itself, NULL fits all. *)
let lit_compatible ty v =
  match Value.type_of v with
  | None -> true
  | Some vt -> (
    vt = ty
    ||
    match (ty, vt) with
    | (Value.TInt | Value.TFloat), (Value.TInt | Value.TFloat) -> true
    | _ -> false)

let subset_mod_equal s1 s2 =
  List.for_all (fun v -> List.exists (Value.equal v) s2) s1

(* The optimum zone of a numerical band constructor: the attribute values
   at distance 0 (Definition 7). *)
let zone = function
  | Pref.Between (a, low, up) when low <= up -> Some (a, low, up)
  | Pref.Around (a, z) -> Some (a, z, z)
  | _ -> None

let pp_set values =
  String.concat ", " (List.map Value.to_string values)

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)

let check ?schema ?(path = []) p0 =
  let diags = ref [] in
  let emit ?fixit path code message =
    diags := Diagnostic.make ~path ?fixit code message :: !diags
  in
  let sub path s = path @ [ s ] in
  (* H201: duplicate values in a POS/NEG-family set. [rebuild] receives
     the deduplicated sets and may raise on raw ill-formed terms. *)
  let check_sets path ~constructor a ~rebuild sets =
    let deduped = List.map dedup sets in
    if List.exists2 (fun s d -> List.length d < List.length s) sets deduped
    then
      let fixit = try Some (rebuild deduped) with _ -> None in
      emit ?fixit path "H201"
        (Printf.sprintf
           "%s(%s): duplicate values in the value set; sets are \
            duplicate-free under Definition 6"
           constructor a)
  in
  let rec walk schema path p =
    match p with
    | Pref.Pos (a, set) ->
      check_sets path ~constructor:"POS" a
        ~rebuild:(function [ s ] -> Pref.pos a s | _ -> assert false)
        [ set ]
    | Pref.Neg (a, set) ->
      check_sets path ~constructor:"NEG" a
        ~rebuild:(function [ s ] -> Pref.neg a s | _ -> assert false)
        [ set ]
    | Pref.Pos_neg (a, pset, nset) ->
      check_sets path ~constructor:"POS/NEG" a
        ~rebuild:(function
          | [ p; n ] -> Pref.pos_neg a ~pos:p ~neg:n
          | _ -> assert false)
        [ pset; nset ]
    | Pref.Pos_pos (a, p1, p2) ->
      check_sets path ~constructor:"POS/POS" a
        ~rebuild:(function
          | [ p1; p2 ] -> Pref.pos_pos a ~pos1:p1 ~pos2:p2
          | _ -> assert false)
        [ p1; p2 ]
    | Pref.Explicit (a, edges) -> (
      match schema with
      | Some schema when edges <> [] -> (
        match Schema.type_of schema a with
        | Some ty ->
          let dead (w, b) =
            not (lit_compatible ty w) || not (lit_compatible ty b)
          in
          if List.for_all dead edges then
            emit
              ~fixit:(Pref.antichain [ a ])
              path "W201"
              (Printf.sprintf
                 "EXPLICIT(%s): no edge can relate two values of the %s \
                  column; the order collapses to the anti-chain %s<->"
                 a (Value.ty_to_string ty) a)
        | None -> ())
      | _ -> ())
    | Pref.Between (a, low, up) -> (
      if low <= up then
        match schema with
        | Some schema -> (
          match Schema.type_of schema a with
          | Some (Value.TInt | Value.TDate)
            when Float.ceil low > Float.floor up ->
            emit path "W202"
              (Printf.sprintf
                 "BETWEEN(%s, [%g, %g]): the band contains no value of the \
                  integer-valued column; distance 0 is unachievable"
                 a low up)
          | _ -> ())
        | None -> ())
    | Pref.Around _ | Pref.Lowest _ | Pref.Highest _ | Pref.Score _
    | Pref.Antichain _ ->
      ()
    | Pref.Dual q -> walk schema (sub path "dual") q
    | Pref.Pareto _ ->
      let ops = pareto_ops p in
      check_conflicts path ~glyph:"pareto" ops;
      List.iteri
        (fun i q -> walk schema (sub path (Printf.sprintf "pareto[%d]" i)) q)
        ops
    | Pref.Inter _ ->
      let ops = inter_ops p in
      check_conflicts path ~glyph:"inter" ops;
      List.iteri
        (fun i q -> walk schema (sub path (Printf.sprintf "inter[%d]" i)) q)
        ops
    | Pref.Prior _ ->
      let ops = prior_ops p in
      List.iteri
        (fun i q -> walk schema (sub path (Printf.sprintf "prior[%d]" i)) q)
        ops
    | Pref.Dunion (q, r) ->
      walk schema (sub path "dunion[0]") q;
      walk schema (sub path "dunion[1]") r
    | Pref.Rank (_, q, r) ->
      walk schema (sub path "rank[0]") q;
      walk schema (sub path "rank[1]") r
    | Pref.Lsum s ->
      (* operand attribute references are rerouted to [ls_attr]: no
         schema-dependent checks inside *)
      walk None (sub path "lsum.left") s.Pref.ls_left;
      walk None (sub path "lsum.right") s.Pref.ls_right
    | Pref.Two_graphs _ -> ()
  (* W203 over a flattened commutative accumulation: two operands that
     can never both be satisfied on the shared attribute. *)
  and check_conflicts path ~glyph ops =
    let arr = Array.of_list ops in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        (match (zone arr.(i), zone arr.(j)) with
        | Some (a1, l1, u1), Some (a2, l2, u2)
          when a1 = a2 && (u1 < l2 || u2 < l1) ->
          emit path "W203"
            (Printf.sprintf
               "%s operands %d and %d want disjoint zones on %s ([%g, %g] \
                vs [%g, %g]): no value satisfies both; every best match \
                compromises one dimension entirely"
               glyph i j a1 l1 u1 l2 u2)
        | _ -> ());
        match (arr.(i), arr.(j)) with
        | Pref.Pos (a1, pset), Pref.Neg (a2, nset)
        | Pref.Neg (a2, nset), Pref.Pos (a1, pset)
          when a1 = a2 && pset <> [] && subset_mod_equal pset nset ->
          emit path "W203"
            (Printf.sprintf
               "%s operands %d and %d contradict on %s: every POS value \
                {%s} is in the sibling NEG set"
               glyph i j a1 (pp_set pset))
        | _ -> ()
      done
    done
  in
  walk schema path p0;
  !diags
