(** Static checks over Preference XPath location paths ({!Pref_xpath.Past}).

    Soft qualifiers carry the shared preference surface syntax, so they get
    the full {!Ast_check.check_pref} treatment (registry lookups, argument
    typing, law findings on the translated term). XML attribute values are
    dynamically typed and missing attributes evaluate to NULL, so there is
    no schema pass; instead, when a [doc] is supplied, tags and attribute
    names that occur nowhere in the document are flagged as [W102] /
    [W101] — near-certain typos, though not runtime failures.

    [check_source] parses first; syntax errors become a single [E111]. *)

val check_path :
  ?registry:Pref_sql.Translate.registry ->
  ?doc:Pref_xpath.Xml.t ->
  Pref_xpath.Past.path ->
  Diagnostic.t list
(** Never raises. *)

val check_source :
  ?registry:Pref_sql.Translate.registry ->
  ?doc:Pref_xpath.Xml.t ->
  string ->
  Diagnostic.t list
