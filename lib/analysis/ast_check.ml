open Pref_relation
open Preferences
open Pref_sql

(* ------------------------------------------------------------------ *)
(* "did you mean" suggestions for registry and table names — the edit-
   distance machinery lives in {!Pref_relation.Typo} so the executor's
   run-time errors share it; re-exported here for the check modules. *)

let suggest = Typo.suggest

(* ------------------------------------------------------------------ *)
(* AST-level checks: everything decidable before translation           *)

(* Mirror of {!Preferences.Pref.is_scorable} on the surface syntax. *)
let rec ast_scorable = function
  | Ast.P_score _ | Ast.P_around _ | Ast.P_between _ | Ast.P_lowest _
  | Ast.P_highest _ ->
    true
  | Ast.P_rank (_, p, q) -> ast_scorable p && ast_scorable q
  | Ast.P_dual p -> ast_scorable p
  | Ast.P_pos _ | Ast.P_neg _ | Ast.P_pos_pos _ | Ast.P_pos_neg _
  | Ast.P_explicit _ | Ast.P_pareto _ | Ast.P_prior _ ->
    false

let value_overlap s1 s2 =
  List.exists (fun v -> List.exists (Value.equal v) s2) s1

(* A raw edge list is cyclic iff its transitive closure would relate some
   value to itself — the condition [Pref.explicit] rejects. *)
let edges_cyclic edges =
  let values =
    List.fold_left
      (fun acc (x, y) ->
        let add v acc =
          if List.exists (Value.equal v) acc then acc else v :: acc
        in
        add x (add y acc))
      [] edges
  in
  let g =
    Pref_order.Graph.of_edges ~equal:Value.equal values
      (List.map (fun (w, b) -> (b, w)) edges)
  in
  not (Pref_order.Graph.is_acyclic g)

let ast_findings (registry : Translate.registry) path p =
  let diags = ref [] in
  let emit path code message =
    diags := Diagnostic.make ~path code message :: !diags
  in
  let rec walk path p =
    match p with
    | Ast.P_pos _ | Ast.P_neg _ | Ast.P_lowest _ | Ast.P_highest _ -> ()
    | Ast.P_pos_pos (a, v1, v2) ->
      if value_overlap v1 v2 then
        emit path "E002"
          (Printf.sprintf
             "PREFERRING %s: the two POS sets of an ELSE chain must be \
              disjoint" a)
    | Ast.P_pos_neg (a, vs, ns) ->
      if value_overlap vs ns then
        emit path "E002"
          (Printf.sprintf
             "PREFERRING %s: the POS and NEG sets must be disjoint" a)
    | Ast.P_explicit (a, edges) ->
      if edges_cyclic edges then
        emit path "E001"
          (Printf.sprintf "EXPLICIT(%s): better-than graph is cyclic" a)
    | Ast.P_around (a, lit) ->
      if Value.as_float lit = None then
        emit path "E105"
          (Printf.sprintf
             "AROUND(%s): needs a numeric or date argument, got %s" a
             (Value.to_string lit))
    | Ast.P_between (a, low, up) -> (
      match Value.as_float low, Value.as_float up with
      | None, _ | _, None ->
        let bad = if Value.as_float low = None then low else up in
        emit path "E105"
          (Printf.sprintf
             "BETWEEN(%s): needs numeric or date bounds, got %s" a
             (Value.to_string bad))
      | Some l, Some u ->
        if l > u then
          emit path "E003"
            (Printf.sprintf
               "BETWEEN(%s): lower bound %s exceeds upper bound %s" a
               (Value.to_string low) (Value.to_string up)))
    | Ast.P_score (a, name) ->
      if List.assoc_opt name registry.Translate.scores = None then
        emit path "E103"
          (Printf.sprintf "SCORE(%s, %S): unknown scoring function%s" a name
             (suggest (List.map fst registry.Translate.scores) name))
    | Ast.P_rank (name, p1, p2) ->
      if List.assoc_opt name registry.Translate.combiners = None then
        emit path "E104"
          (Printf.sprintf
             "RANK(%S) over %s: unknown combining function%s" name
             (String.concat ", " (Ast.pref_attrs p))
             (suggest (List.map fst registry.Translate.combiners) name));
      List.iteri
        (fun i op ->
          let opath = path @ [ Printf.sprintf "rank[%d]" i ] in
          if not (ast_scorable op) then
            emit opath "E004"
              (Printf.sprintf
                 "RANK needs SCORE or a sub-constructor of SCORE (AROUND, \
                  BETWEEN, LOWEST, HIGHEST) over %s"
                 (String.concat ", " (Ast.pref_attrs op)));
          walk opath op)
        [ p1; p2 ]
    | Ast.P_pareto (p1, p2) ->
      walk (path @ [ "pareto[0]" ]) p1;
      walk (path @ [ "pareto[1]" ]) p2
    | Ast.P_prior (p1, p2) ->
      walk (path @ [ "prior[0]" ]) p1;
      walk (path @ [ "prior[1]" ]) p2
    | Ast.P_dual p -> walk (path @ [ "dual" ]) p
  in
  walk path p;
  !diags

let translation_findings ?registry ?schema ~path p =
  match Translate.pref ?registry p with
  | term -> Term_check.check ?schema ~path term
  | exception Translate.Error msg -> [ Diagnostic.make ~path "E010" msg ]
  | exception Invalid_argument msg -> [ Diagnostic.make ~path "E010" msg ]
  | exception Pref.Ill_formed { code; message; _ } ->
    [ Diagnostic.make ~path code message ]

let check_pref ?(registry = Translate.default_registry) ?schema ?(path = []) p
    =
  let ast = ast_findings registry path p in
  if Diagnostic.has_errors ast then ast
  else ast @ translation_findings ~registry ?schema ~path p

(* ------------------------------------------------------------------ *)
(* Whole-query checks                                                  *)

(* Mirror of the executor's attribute resolver: [Schema.resolve], plus the
   single-table special case where [t.col] naming the FROM table is
   accepted and stripped. *)
let mirror_resolve (q : Ast.query) schema name =
  match Schema.resolve schema name with
  | Ok n -> Ok n
  | Error msg -> (
    match q.Ast.from, String.index_opt name '.' with
    | [ t ], Some i when String.sub name 0 i = t -> (
      let bare = String.sub name (i + 1) (String.length name - i - 1) in
      match Schema.resolve schema bare with
      | Ok n -> Ok n
      | Error _ -> Error msg)
    | _ -> Error msg)

(* Mirrors of the value-independent [None] domains of {!Preferences.Quality}:
   a BUT ONLY quality over such a base fails on the first tuple checked. *)
let rec level_always_none = function
  | Pref.Around _ | Pref.Between _ | Pref.Lowest _ | Pref.Highest _
  | Pref.Score _ ->
    true
  | Pref.Lsum s ->
    level_always_none s.Pref.ls_left && level_always_none s.Pref.ls_right
  | _ -> false

let distance_possible = function
  | Pref.Around _ | Pref.Between _ -> true
  | _ -> false

let check_query ?(registry = Translate.default_registry) ~env (q : Ast.query)
    =
  let diags = ref [] in
  let emit path code message =
    diags := Diagnostic.make ~path code message :: !diags
  in
  (* FROM: existence, duplicates, schema *)
  if q.Ast.from = [] then emit [ "from" ] "E110" "FROM requires at least one table";
  (* An empty environment means "no catalog available" (the router's
     pre-scatter check, prefcheck without tables): table existence and
     schema resolution are unknowable, so only the env-free checks run. *)
  let unknown =
    if env = [] then []
    else List.filter (fun t -> Exec.find_table env t = None) q.Ast.from
  in
  List.iter
    (fun t ->
      emit [ "from" ] "E101"
        (Printf.sprintf "unknown table %S%s" t
           (suggest (List.map fst env) t)))
    unknown;
  let duplicates =
    (* exact written names only, mirroring the executor: joins qualify
       columns with the written table name, so [FROM r, R] self-joins
       under distinct qualifiers while [FROM r, r] genuinely collides *)
    let rec dups seen = function
      | [] -> []
      | t :: rest ->
        if List.mem t seen then t :: dups seen rest else dups (t :: seen) rest
    in
    dups [] q.Ast.from
  in
  List.iter
    (fun t ->
      emit [ "from" ] "E112"
        (Printf.sprintf
           "table %S listed twice: the join would duplicate its columns" t))
    duplicates;
  let schema =
    if env = [] || q.Ast.from = [] || unknown <> [] || duplicates <> []
    then None
    else
      match q.Ast.from with
      | [ t ] ->
        Option.map Relation.schema (Exec.find_table env t)
      | ts ->
        Some
          (List.fold_left
             (fun acc t ->
               match Exec.find_table env t with
               | Some r -> Schema.union acc (Schema.prefix t (Relation.schema r))
               | None -> acc)
             Schema.empty ts)
  in
  (* attribute resolution per clause; falls back to the original name so the
     later term-level pass still runs *)
  let resolution_failed = ref false in
  let resolve path name =
    match schema with
    | None -> name
    | Some s -> (
      match mirror_resolve q s name with
      | Ok n -> n
      | Error msg ->
        resolution_failed := true;
        emit path "E102" (msg ^ suggest (Schema.names s) name);
        name)
  in
  (* SELECT *)
  (match q.Ast.select with
  | [ Ast.Star ] | [] -> ()
  | items ->
    if List.mem Ast.Star items then
      emit [ "select" ] "E109" "SELECT * cannot be mixed with columns"
    else
      List.iteri
        (fun i item ->
          match item with
          | Ast.Star -> ()
          | Ast.Column c ->
            ignore (resolve [ Printf.sprintf "select[%d]" i ] c))
        items);
  (* WHERE — mirroring the executor's join planning: over several tables,
     equi-join conjuncts are consumed by the join builder (each side
     resolved against a partial schema) and never hit the full-schema
     resolver, so only the remaining conjuncts are checked here. *)
  let where_conjuncts_to_check =
    match q.Ast.where, q.Ast.from, schema with
    | None, _, _ -> []
    | Some c, ([] | [ _ ]), _ | Some c, _, None -> [ c ]
    | Some c, first :: rest, Some _ ->
      let prefixed t =
        match Exec.find_table env t with
        | Some r -> Schema.prefix t (Relation.schema r)
        | None -> Schema.empty
      in
      let consumed left_schema right_schema = function
        | Ast.Cmp_attr (a, Ast.Eq, b) ->
          let try_pair x y =
            match
              Schema.resolve left_schema x, Schema.resolve right_schema y
            with
            | Ok _, Ok _ -> true
            | _ -> false
          in
          try_pair a b || try_pair b a
        | _ -> false
      in
      let _, remaining =
        List.fold_left
          (fun (left, conjuncts) t ->
            let right = prefixed t in
            ( Schema.union left right,
              List.filter (fun c -> not (consumed left right c)) conjuncts ))
          (prefixed first, Ast.conjuncts c)
          rest
      in
      remaining
  in
  List.iter
    (fun c ->
      List.iter
        (fun a -> ignore (resolve [ "where" ] a))
        (Ast.condition_attrs c))
    where_conjuncts_to_check;
  (* GROUPING / ORDER BY *)
  List.iteri
    (fun i a -> ignore (resolve [ Printf.sprintf "grouping[%d]" i ] a))
    q.Ast.grouping;
  List.iteri
    (fun i (a, _) -> ignore (resolve [ Printf.sprintf "order_by[%d]" i ] a))
    q.Ast.order_by;
  (* PREFERRING / CASCADE: AST-level per clause, then one term-level pass
     over the combined prioritisation chain (so a CASCADE level dead under
     Proposition 4(a) is visible) *)
  let clauses =
    (match q.Ast.preferring with
    | Some p -> [ ([ "preferring" ], p) ]
    | None -> [])
    @ List.mapi
        (fun i c -> ([ Printf.sprintf "cascade[%d]" i ], c))
        q.Ast.cascade
  in
  let clause_ast_diags =
    List.concat_map (fun (path, p) -> ast_findings registry path p) clauses
  in
  diags := clause_ast_diags @ !diags;
  let full_pref =
    if clauses = [] || Diagnostic.has_errors clause_ast_diags then None
    else begin
      let resolved =
        List.map
          (fun (path, p) -> Ast.map_pref_attrs (resolve path) p)
          clauses
      in
      match List.map (Translate.pref ~registry) resolved with
      | terms ->
        Some
          (List.fold_left
             (fun acc t -> Pref.Prior (acc, t))
             (List.hd terms) (List.tl terms))
      | exception Translate.Error msg ->
        emit [ "preferring" ] "E010" msg;
        None
      | exception Invalid_argument msg ->
        emit [ "preferring" ] "E010" msg;
        None
    end
  in
  (match full_pref with
  | None -> ()
  | Some term ->
    (* E102 for base attributes was already reported during resolution;
       withhold the schema when resolution failed, to avoid duplicates *)
    let schema = if !resolution_failed then None else schema in
    diags := Term_check.check ?schema ~path:[ "preferring" ] term @ !diags);
  (* BUT ONLY *)
  if q.Ast.but_only <> [] && clauses = [] then
    emit [ "but_only" ] "E106" "BUT ONLY requires a PREFERRING clause";
  List.iteri
    (fun i qual ->
      let path = [ Printf.sprintf "but_only[%d]" i ] in
      let a =
        match qual with Ast.Q_level (a, _, _) | Ast.Q_distance (a, _, _) -> a
      in
      let a = resolve path a in
      match full_pref with
      | None -> ()
      | Some term -> (
        match qual, Quality.base_for_attr term a with
        | Ast.Q_level _, None ->
          emit path "E107"
            (Printf.sprintf
               "LEVEL(%s): no base preference on this attribute in the \
                PREFERRING clause" a)
        | Ast.Q_level _, Some base ->
          if level_always_none base then
            emit path "E107"
              (Printf.sprintf
                 "LEVEL(%s): the base preference on this attribute is \
                  numerical and has no discrete levels" a)
        | Ast.Q_distance _, None ->
          emit path "E108"
            (Printf.sprintf
               "DISTANCE(%s): no base preference on this attribute in the \
                PREFERRING clause" a)
        | Ast.Q_distance _, Some base ->
          if not (distance_possible base) then
            emit path "E108"
              (Printf.sprintf
                 "DISTANCE(%s): the base preference on this attribute is \
                  not AROUND or BETWEEN" a)))
    q.Ast.but_only;
  !diags

let check_source ?registry ~env src =
  match Parser.parse_query src with
  | q -> check_query ?registry ~env q
  | exception Parser.Error (msg, pos) ->
    [
      Diagnostic.make ~path:[ "source" ] "E111"
        (Printf.sprintf "syntax error at offset %d: %s" pos msg);
    ]
  | exception Lexer.Error (msg, pos) ->
    [
      Diagnostic.make ~path:[ "source" ] "E111"
        (Printf.sprintf "lexical error at offset %d: %s" pos msg);
    ]
