open Preferences
open Pref_relation

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let value_overlap s1 s2 =
  List.exists (fun v -> List.exists (Value.equal v) s2) s1

let edge_values edges =
  List.fold_left
    (fun acc (x, y) ->
      let add v acc =
        if List.exists (Value.equal v) acc then acc else v :: acc
      in
      add x (add y acc))
    [] edges

(* Edges come in the paper's (worse, better) orientation. *)
let cyclic edges =
  let g =
    Pref_order.Graph.of_edges ~equal:Value.equal (edge_values edges)
      (List.map (fun (w, b) -> (b, w)) edges)
  in
  not (Pref_order.Graph.is_acyclic g)

let rec pareto_ops = function
  | Pref.Pareto (q, r) -> pareto_ops q @ pareto_ops r
  | p -> [ p ]

let rec prior_ops = function
  | Pref.Prior (q, r) -> prior_ops q @ prior_ops r
  | p -> [ p ]

let rec inter_ops = function
  | Pref.Inter (q, r) -> inter_ops q @ inter_ops r
  | p -> [ p ]

let rec dunion_ops = function
  | Pref.Dunion (q, r) -> dunion_ops q @ dunion_ops r
  | p -> [ p ]

let rebuild_with combine = function
  | [] -> None
  | op :: rest -> Some (List.fold_left combine op rest)

let without i ops = List.filteri (fun j _ -> j <> i) ops

(* Replace operand [i] by [q'] and drop operand [j] — the spine-level image
   of rewriting the pair (op_i, op_j) to [q'], valid by Proposition 2. *)
let merge_pair combine ops i j q' =
  rebuild_with combine
    (List.mapi (fun k op -> if k = i then q' else op) ops |> without j)

let constructor_name = function
  | Pref.Pos _ -> "POS"
  | Pref.Neg _ -> "NEG"
  | Pref.Pos_neg _ -> "POS/NEG"
  | Pref.Pos_pos _ -> "POS/POS"
  | Pref.Explicit _ -> "EXPLICIT"
  | Pref.Around _ -> "AROUND"
  | Pref.Between _ -> "BETWEEN"
  | Pref.Lowest _ -> "LOWEST"
  | Pref.Highest _ -> "HIGHEST"
  | Pref.Score _ -> "SCORE"
  | Pref.Antichain _ -> "ANTICHAIN"
  | Pref.Dual _ -> "DUAL"
  | Pref.Pareto _ -> "PARETO"
  | Pref.Prior _ -> "PRIOR"
  | Pref.Rank _ -> "RANK"
  | Pref.Inter _ -> "INTER"
  | Pref.Dunion _ -> "DUNION"
  | Pref.Lsum _ -> "LSUM"
  | Pref.Two_graphs _ -> "TWO-GRAPHS"

(* Literal/column type compatibility: Int and Float compare numerically
   (Value.equal), every other type only matches itself; NULL fits all. *)
let lit_compatible ty v =
  match Value.type_of v with
  | None -> true
  | Some vt -> (
    vt = ty
    ||
    match ty, vt with
    | (Value.TInt | Value.TFloat), (Value.TInt | Value.TFloat) -> true
    | _ -> false)

(* Types with the '<' / '-' structure the numerical constructors need
   (Definition 7); dates via day counts, bools as 0/1. *)
let numeric_ty = function
  | Value.TInt | Value.TFloat | Value.TDate | Value.TBool -> true
  | Value.TStr -> false

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)

let check ?schema ?(path = []) p0 =
  let diags = ref [] in
  let emit ?fixit path code message =
    diags := Diagnostic.make ~path ?fixit code message :: !diags
  in
  let sub path s = path @ [ s ] in
  (* Schema checks for a base constructor on attribute [a]. [schema] is
     None inside ⊕ operands, whose attribute references are rerouted to the
     linear sum's combined attribute at evaluation time. *)
  let base_schema schema path ~constructor ?(numeric = false) ?(values = []) a =
    match schema with
    | None -> ()
    | Some schema -> (
      match Schema.type_of schema a with
      | None ->
        emit path "E102"
          (Printf.sprintf "%s(%s): unknown attribute %S" constructor a a)
      | Some ty ->
        if numeric && not (numeric_ty ty) then
          emit path "W014"
            (Printf.sprintf
               "%s(%s): numerical constructor over a %s column" constructor a
               (Value.ty_to_string ty));
        let bad = List.filter (fun v -> not (lit_compatible ty v)) values in
        if bad <> [] then
          emit path "W014"
            (Printf.sprintf
               "%s(%s): value %s can never match the %s column" constructor a
               (Value.to_string (List.hd bad))
               (Value.ty_to_string ty)))
  in
  let rec walk schema path p =
    match p with
    | Pref.Pos (a, set) ->
      if set = [] then
        emit ~fixit:(Pref.antichain [ a ]) path "W012"
          (Printf.sprintf
             "POS(%s) with an empty value set denotes the empty order" a);
      base_schema schema path ~constructor:"POS" ~values:set a
    | Pref.Neg (a, set) ->
      if set = [] then
        emit ~fixit:(Pref.antichain [ a ]) path "W012"
          (Printf.sprintf
             "NEG(%s) with an empty value set denotes the empty order" a);
      base_schema schema path ~constructor:"NEG" ~values:set a
    | Pref.Pos_neg (a, pset, nset) ->
      if value_overlap pset nset then
        emit path "E002"
          (Printf.sprintf "POS/NEG(%s): POS and NEG sets must be disjoint" a);
      if pset = [] && nset = [] then
        emit ~fixit:(Pref.antichain [ a ]) path "W012"
          (Printf.sprintf "POS/NEG(%s) with empty value sets is trivial" a);
      base_schema schema path ~constructor:"POS/NEG" ~values:(pset @ nset) a
    | Pref.Pos_pos (a, p1, p2) ->
      if value_overlap p1 p2 then
        emit path "E002"
          (Printf.sprintf "POS/POS(%s): POS1 and POS2 sets must be disjoint" a);
      if p1 = [] && p2 = [] then
        emit ~fixit:(Pref.antichain [ a ]) path "W012"
          (Printf.sprintf "POS/POS(%s) with empty value sets is trivial" a);
      base_schema schema path ~constructor:"POS/POS" ~values:(p1 @ p2) a
    | Pref.Explicit (a, edges) ->
      if edges = [] then
        emit ~fixit:(Pref.antichain [ a ]) path "W012"
          (Printf.sprintf
             "EXPLICIT(%s) with no edges denotes the empty order" a)
      else if cyclic edges then
        emit path "E001"
          (Printf.sprintf "EXPLICIT(%s): better-than graph is cyclic" a);
      base_schema schema path ~constructor:"EXPLICIT"
        ~values:(edge_values edges) a
    | Pref.Around (a, _) ->
      base_schema schema path ~constructor:"AROUND" ~numeric:true a
    | Pref.Between (a, low, up) ->
      if low > up then
        emit
          ~fixit:(Pref.between a ~low:up ~up:low)
          path "E003"
          (Printf.sprintf "BETWEEN(%s): lower bound %g exceeds upper bound %g"
             a low up);
      base_schema schema path ~constructor:"BETWEEN" ~numeric:true a
    | Pref.Lowest a ->
      base_schema schema path ~constructor:"LOWEST" ~numeric:true a
    | Pref.Highest a ->
      base_schema schema path ~constructor:"HIGHEST" ~numeric:true a
    | Pref.Score (a, _) -> base_schema schema path ~constructor:"SCORE" a
    | Pref.Antichain _ ->
      (* Inert on its own; positional findings (absorption, trivial root)
         are emitted by the enclosing accumulation / the root check. *)
      ()
    | Pref.Dual q ->
      (match q with
      | Pref.Dual inner ->
        emit ~fixit:inner path "H021" "double dual: (P^d)^d == P (Prop. 3b)"
      | _ -> (
        match Rewrite.step p with
        | Some q' ->
          emit ~fixit:q' path "H022"
            (Printf.sprintf "dual has a direct form: %s (Prop. 3)"
               (Show.to_string q'))
        | None -> ()));
      walk schema (sub path "dual") q
    | Pref.Pareto _ ->
      let ops = pareto_ops p in
      check_assoc schema path ~glyph:"pareto"
        ~combine:(fun a b -> Pref.Pareto (a, b))
        ops
        ~classify:(fun qi qj -> Rewrite.step (Pref.Pareto (qi, qj)));
      List.iteri
        (fun i q -> walk schema (sub path (Printf.sprintf "pareto[%d]" i)) q)
        ops
    | Pref.Prior _ ->
      let ops = prior_ops p in
      check_prior schema path ops;
      List.iteri
        (fun i q -> walk schema (sub path (Printf.sprintf "prior[%d]" i)) q)
        ops
    | Pref.Inter _ ->
      let ops = inter_ops p in
      (match ops with
      | first :: rest ->
        List.iteri
          (fun i q ->
            if not (Attr.equal (Pref.attrs first) (Pref.attrs q)) then
              emit
                (sub path (Printf.sprintf "inter[%d]" (i + 1)))
                "E005"
                (Printf.sprintf
                   "intersection operands must share one attribute set: {%s} \
                    vs {%s}"
                   (String.concat ", " (Pref.attrs first))
                   (String.concat ", " (Pref.attrs q))))
          rest
      | [] -> ());
      check_assoc schema path ~glyph:"inter" ~combine:(fun a b -> Pref.Inter (a, b))
        ops ~classify:(fun qi qj -> Rewrite.step (Pref.Inter (qi, qj)));
      List.iteri
        (fun i q -> walk schema (sub path (Printf.sprintf "inter[%d]" i)) q)
        ops
    | Pref.Dunion _ ->
      let ops = dunion_ops p in
      check_assoc schema path ~glyph:"dunion"
        ~combine:(fun a b -> Pref.Dunion (a, b))
        ops
        ~classify:(fun qi qj -> Rewrite.step (Pref.Dunion (qi, qj)));
      List.iteri
        (fun i q -> walk schema (sub path (Printf.sprintf "dunion[%d]" i)) q)
        ops
    | Pref.Rank (_, q, r) ->
      List.iteri
        (fun i op ->
          if not (Pref.is_scorable op) then
            emit
              (sub path (Printf.sprintf "rank[%d]" i))
              "E004"
              (Printf.sprintf
                 "rank(F) needs SCORE or a sub-constructor of SCORE, got %s"
                 (constructor_name op)))
        [ q; r ];
      List.iteri
        (fun i op -> walk schema (sub path (Printf.sprintf "rank[%d]" i)) op)
        [ q; r ]
    | Pref.Lsum s ->
      if
        not
          (Pref.is_single_attribute s.Pref.ls_left
          && Pref.is_single_attribute s.Pref.ls_right)
      then
        emit path "E006"
          (Printf.sprintf
             "LSUM(%s): operands must be single-attribute preferences"
             s.Pref.ls_attr);
      if value_overlap s.Pref.ls_left_dom s.Pref.ls_right_dom then
        emit path "E002"
          (Printf.sprintf "LSUM(%s): operand domains must be disjoint"
             s.Pref.ls_attr);
      base_schema schema path ~constructor:"LSUM"
        ~values:(s.Pref.ls_left_dom @ s.Pref.ls_right_dom)
        s.Pref.ls_attr;
      (* operand attribute references are rerouted to [ls_attr] at
         evaluation time: no schema checks inside *)
      walk None (sub path "lsum.left") s.Pref.ls_left;
      walk None (sub path "lsum.right") s.Pref.ls_right
    | Pref.Two_graphs s ->
      if s.Pref.tg_pos <> [] && cyclic s.Pref.tg_pos then
        emit path "E001"
          (Printf.sprintf "TWO-GRAPHS(%s): POS graph is cyclic" s.Pref.tg_attr);
      if s.Pref.tg_neg <> [] && cyclic s.Pref.tg_neg then
        emit path "E001"
          (Printf.sprintf "TWO-GRAPHS(%s): NEG graph is cyclic" s.Pref.tg_attr);
      let pos_range = edge_values s.Pref.tg_pos @ s.Pref.tg_pos_singles in
      let neg_range = edge_values s.Pref.tg_neg @ s.Pref.tg_neg_singles in
      if value_overlap pos_range neg_range then
        emit path "E002"
          (Printf.sprintf "TWO-GRAPHS(%s): POS and NEG ranges must be disjoint"
             s.Pref.tg_attr);
      if pos_range = [] && neg_range = [] then
        emit
          ~fixit:(Pref.antichain [ s.Pref.tg_attr ])
          path "W012"
          (Printf.sprintf "TWO-GRAPHS(%s) with empty graphs is trivial"
             s.Pref.tg_attr);
      base_schema schema path ~constructor:"TWO-GRAPHS"
        ~values:(pos_range @ neg_range) s.Pref.tg_attr
  (* Pairwise checks over a flattened commutative accumulation (⊗, ♦, +):
     duplicates modulo canonical equality, then the pair image under one
     {!Rewrite} step classifies anti-chain absorption, dual-pair collapse
     and the Proposition 6 ⊗→♦ collapse. *)
  and check_assoc schema path ~glyph ~combine ~classify ops =
    ignore schema;
    let n = List.length ops in
    let arr = Array.of_list ops in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let qi = arr.(i) and qj = arr.(j) in
        if Canon.equal qi qj then
          emit
            ?fixit:(rebuild_with combine (without j ops))
            path "H020"
            (Printf.sprintf "duplicate %s operands %d and %d (idempotence)"
               glyph i j)
        else
          match classify qi qj with
          | Some (Pref.Antichain _ as q') ->
            if
              (match qi with Pref.Antichain _ -> true | _ -> false)
              || (match qj with Pref.Antichain _ -> true | _ -> false)
            then
              emit
                ?fixit:(merge_pair combine ops i j q')
                path "W013"
                (Printf.sprintf
                   "anti-chain operand collapses %s operands %d and %d \
                    (Prop. 3)"
                   glyph i j)
            else
              emit
                ?fixit:(merge_pair combine ops i j q')
                path "W012"
                (Printf.sprintf
                   "%s operands %d and %d are mutual duals: the pair denotes \
                    the empty order (Prop. 3)"
                   glyph i j)
          | Some (Pref.Prior _ as q') ->
            emit
              ?fixit:(merge_pair combine ops i j q')
              path "W013"
              (Printf.sprintf
                 "anti-chain operand: A<-> (x) P == A<-> & P for %s operands \
                  %d and %d (Prop. 3m)"
                 glyph i j)
          | Some (Pref.Inter _ as q') ->
            emit
              ?fixit:(merge_pair combine ops i j q')
              path "W011"
              (Printf.sprintf
                 "%s operands %d and %d share one attribute set: P1 (x) P2 \
                  == P1 <> P2 (Prop. 6)"
                 glyph i j)
          | Some q' ->
            emit
              ?fixit:(merge_pair combine ops i j q')
              path "W013"
              (Printf.sprintf "%s operands %d and %d simplify (Prop. 3)" glyph
                 i j)
          | None -> ()
      done
    done
  (* The prioritisation spine: operand [i] is evaluated only on tuples with
     equal projections onto all earlier attributes, so an operand whose
     attribute set is covered by the earlier union never discriminates
     (Proposition 4a, generalised). *)
  and check_prior _schema path ops =
    let arr = Array.of_list ops in
    let n = Array.length arr in
    let seen = ref [] in
    for i = 0 to n - 1 do
      let q = arr.(i) in
      let qattrs = Pref.attrs q in
      (if i > 0 && Attr.subset qattrs !seen then
         match q with
         | Pref.Antichain _ ->
           emit
             ?fixit:(rebuild_with (fun a b -> Pref.Prior (a, b)) (without i ops))
             path "W013"
             (Printf.sprintf
                "anti-chain operand %d is absorbed: P & A<-> == P (Prop. 3j)"
                i)
         | _ ->
           emit
             ?fixit:(rebuild_with (fun a b -> Pref.Prior (a, b)) (without i ops))
             path "W010"
             (Printf.sprintf
                "operand %d of & never discriminates: its attributes {%s} \
                 are covered by the earlier operands (Prop. 4a)"
                i
                (String.concat ", " qattrs)));
      (match q with
      | Pref.Antichain l when i < n - 1 ->
        let rest = Array.to_list (Array.sub arr (i + 1) (n - i - 1)) in
        if List.for_all (fun r -> Attr.subset (Pref.attrs r) l) rest then
          emit
            ?fixit:
              (rebuild_with (fun a b -> Pref.Prior (a, b))
                 (List.filteri (fun j _ -> j <= i) ops))
            path "W013"
            (Printf.sprintf
               "anti-chain operand %d blocks every later operand: A<-> & P \
                == A<-> (Prop. 3k)"
               i)
      | _ -> ());
      seen := Attr.union !seen qattrs
    done
  in
  let schema_opt = schema in
  walk schema_opt path p0;
  (match p0 with
  | Pref.Antichain l ->
    emit path "W012"
      (Printf.sprintf
         "the whole preference is the anti-chain {%s}: every tuple is a \
          best match"
         (String.concat ", " l))
  | _ -> ());
  (* The satisfiability layer rides on every term check. *)
  diags := Sat_check.check ?schema ~path p0 @ !diags;
  (* A generic simplification hint when nothing more specific fired. *)
  (if !diags = [] then
     let simplified = Rewrite.simplify p0 in
     if not (Pref.equal simplified p0) then
       emit ~fixit:simplified path "H023"
         (Printf.sprintf "term simplifies to %s (Section 4 laws)"
            (Show.to_string simplified)));
  !diags
