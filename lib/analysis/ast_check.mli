(** Static checks over Preference SQL surface syntax ({!Pref_sql.Ast}).

    [check_pref] analyses one preference clause: registry lookups ([E103],
    [E104] — with a nearest-name suggestion), argument typing ([E105]),
    side conditions detectable before construction ([E001]–[E004]); when
    the clause is error-free it is translated and the full term-level
    analysis of {!Term_check} runs on the result, so schema and law
    findings surface too.

    [check_query] analyses a whole query against an execution environment:
    unknown or duplicated FROM tables ([E101], [E112]), attribute
    resolution for every clause with the executor's resolver semantics
    ([E102]), SELECT list shape ([E109]), BUT ONLY prerequisites ([E106],
    [E107], [E108]) and the combined PREFERRING/CASCADE preference.

    [check_source] parses first and reports syntax errors as [E111].

    Every [E…] finding from [check_query] on a parsed query is sound:
    executing the query raises. ([E107]/[E108] fire on the first tuple that
    reaches the BUT ONLY filter, so an empty result may mask them.) *)

open Pref_sql

val suggest : string list -> string -> string
(** [" (did you mean %S?)"] for the nearest candidate within edit distance
    2, [""] otherwise — shared by the table/registry/tag typo messages. *)

val check_pref :
  ?registry:Translate.registry ->
  ?schema:Pref_relation.Schema.t ->
  ?path:string list ->
  Ast.pref ->
  Diagnostic.t list
(** Never raises. [schema] enables [E102]/[W014] on the translated term. *)

val check_query :
  ?registry:Translate.registry -> env:Exec.env -> Ast.query -> Diagnostic.t list
(** Never raises. [env] supplies the tables for schema-aware checks. *)

val check_source :
  ?registry:Translate.registry -> env:Exec.env -> string -> Diagnostic.t list
(** [check_query] after parsing; parse failures become a single [E111]. *)
