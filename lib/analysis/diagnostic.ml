open Preferences

type severity = Error | Warning | Hint

type t = {
  code : string;
  severity : severity;
  path : string list;
  message : string;
  fixit : Pref.t option;
}

let codes =
  [
    ("E001", "cyclic-explicit-graph");
    ("E002", "overlapping-value-sets");
    ("E003", "invalid-between-bounds");
    ("E004", "rank-non-scorable");
    ("E005", "inter-attribute-mismatch");
    ("E006", "lsum-ill-formed");
    ("E007", "multi-attribute-base");
    ("E010", "construction-failure");
    ("E101", "unknown-table");
    ("E102", "unknown-attribute");
    ("E103", "unknown-scoring-function");
    ("E104", "unknown-combining-function");
    ("E105", "non-numeric-bound");
    ("E106", "but-only-without-preferring");
    ("E107", "level-without-base");
    ("E108", "distance-without-base");
    ("E109", "select-star-mix");
    ("E110", "empty-from");
    ("E111", "syntax-error");
    ("E112", "duplicate-table");
    ("W010", "non-discriminating-prior");
    ("W011", "pareto-on-shared-attributes");
    ("W012", "trivial-preference");
    ("W013", "antichain-operand");
    ("W014", "type-mismatch");
    ("W101", "unknown-xml-attribute");
    ("W102", "unknown-xml-tag");
    ("H020", "redundant-operand");
    ("H021", "double-dual");
    ("H022", "rewritable-dual");
    ("H023", "simplifiable");
    (* Semantic analysis v2: satisfiability / contradiction lints (2xx
       term level), data- and workload-aware query lints (2xx query
       level) and the shard-aware classification of statements against a
       shard map. *)
    ("E201", "shard-key-unknown-attribute");
    ("E202", "invalid-shard-spec");
    ("E203", "duplicate-shard-table");
    ("E210", "unknown-set-knob");
    ("E220", "rejected-by-router");
    ("W201", "explicit-graph-collapses");
    ("W202", "unsatisfiable-between");
    ("W203", "conflicting-numeric-zones");
    ("W210", "unsatisfiable-where");
    ("W211", "winnow-always-total");
    ("W212", "empty-table");
    ("W220", "shadowed-preference-suffix");
    ("W221", "repeated-statement");
    ("W222", "dead-set-knob");
    ("W223", "scatter-partial-risk");
    ("H201", "duplicate-set-values");
    ("H210", "refinement-cache-reuse");
    ("H220", "scatter-exact");
    ("H221", "scatter-final-winnow");
    ("H222", "proxied-statement");
  ]

let meaning code =
  match List.assoc_opt code codes with Some slug -> slug | None -> code

let severity_of_code code =
  if code = "" then Hint
  else
    match code.[0] with 'E' -> Error | 'W' -> Warning | _ -> Hint

let make ?(path = []) ?fixit code message =
  { code; severity = severity_of_code code; path; message; fixit }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> (
        match compare a.path b.path with
        | 0 -> String.compare a.code b.code
        | c -> c)
      | c -> c)
    ds

let path_to_string = function [] -> "<root>" | p -> String.concat "." p

let to_string d =
  let fix =
    match d.fixit with
    | Some t -> Printf.sprintf " (fix: %s)" (Show.to_string t)
    | None -> ""
  in
  Printf.sprintf "%s[%s %s] at %s: %s%s"
    (severity_to_string d.severity)
    d.code (meaning d.code) (path_to_string d.path) d.message fix

let to_lines ds = List.map to_string (sort ds)

module J = Pref_obs.Json

let to_json d =
  J.Obj
    ([
       ("code", J.Str d.code);
       ("severity", J.Str (severity_to_string d.severity));
       ("slug", J.Str (meaning d.code));
       ("path", J.Str (path_to_string d.path));
       ("message", J.Str d.message);
     ]
    @
    match d.fixit with
    | Some t -> [ ("fixit", J.Str (Serialize.to_string t)) ]
    | None -> [])

let report_json ?source ds =
  let ds = sort ds in
  let count sev =
    List.length (List.filter (fun d -> d.severity = sev) ds)
  in
  J.Obj
    ((match source with Some s -> [ ("source", J.Str s) ] | None -> [])
    @ [
        ("errors", J.Int (count Error));
        ("warnings", J.Int (count Warning));
        ("hints", J.Int (count Hint));
        ("findings", J.List (List.map to_json ds));
      ])
