(** Static checks over core preference terms ({!Preferences.Pref.t}).

    Detects the side-condition violations the smart constructors and
    {!Preferences.Pref.compile} police at runtime (cyclic EXPLICIT graphs,
    overlapping value sets, ♦ attribute mismatches, rank over non-scorable
    operands, …) plus law-based triviality and redundancy findings from the
    §4 algebra (dead & operands per Proposition 4(a), ⊗ on shared attribute
    sets per Proposition 6, absorbed anti-chains, duplicate ⊗/♦/+ operands,
    double duals), with fix-it terms synthesised through
    {!Preferences.Rewrite} and the accumulation laws of Proposition 2.

    With a [schema], additionally checks that base-preference attributes
    exist ([E102]) and that constructors fit the column types ([W014]:
    numerical constructors over string columns, value-set literals of a
    foreign type).

    The checker never raises — ill-formed raw terms (built directly through
    the exposed representation, bypassing the smart constructors) come back
    as diagnostics. *)

val check :
  ?schema:Pref_relation.Schema.t ->
  ?path:string list ->
  Preferences.Pref.t ->
  Diagnostic.t list
(** All findings, unsorted; [path] prefixes every finding's location. *)
