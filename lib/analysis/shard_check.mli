(** Shard-aware static analysis.

    Validates [--shard] specs with named diagnostics and statically
    classifies statements against a shard map {e with the router's own
    planner} ({!Pref_router.Merge.plan}), so the classification agrees
    with the router's plan-time accept/reject by construction:

    - [E202] [invalid-shard-spec]: {!Pref_router.Shard_map.of_spec}
      rejects the spec, or a range spec carries non-numeric bounds;
    - [E203] [duplicate-shard-table]: a table mapped twice (the router
      would silently use the first entry);
    - [E201] [shard-key-unknown-attribute]: with an environment, the
      shard key attribute is not a column of the loaded table;
    - [E220] [rejected-by-router]: the planner refuses the statement
      (distributed joins);
    - [H222] [proxied-statement]: no sharded table — one backend answers
      exactly;
    - [H221] [scatter-final-winnow]: scatter with a final winnow over the
      gathered union — exact by Props. 8/10/12;
    - [H220] [scatter-exact]: scatter without preference — the union of
      shard scans is already the answer;
    - [W223] [scatter-partial-risk]: the merge is skipped because
      GROUPING covers the shard key — exact only while the shard map
      matches the data placement, and a lost shard silently drops whole
      groups with no final winnow to notice. *)

open Pref_sql
open Pref_router

val check_specs :
  ?env:Exec.env -> string list -> Shard_map.t * Diagnostic.t list
(** Parse and validate the spec strings in order. The returned map holds
    the valid entries (first mapping wins, like the router); diagnostics
    carry a [shard[i]] path per offending spec. *)

val classify :
  ?registry:Translate.registry ->
  shard_map:Shard_map.t ->
  Ast.query ->
  Diagnostic.t list
(** Exactly one classification finding per statement (E220 / H220 / H221
    / H222 / W223). *)
