open Preferences
open Pref_relation
open Pref_sql

(* ------------------------------------------------------------------ *)
(* W210: unsatisfiable WHERE conjunctions                              *)

(* Interval/set facts accumulated per attribute from the top-level
   conjuncts. Opaque conjuncts (OR, NOT, LIKE, NULL tests, attribute
   comparisons) are simply skipped: a contradiction among a subset of
   conjuncts already makes the whole conjunction unsatisfiable. *)
type facts = {
  mutable lo : (float * bool) option;  (** strongest lower bound, strict? *)
  mutable hi : (float * bool) option;  (** strongest upper bound, strict? *)
  mutable eqs : Value.t list;  (** equality constraints *)
  mutable sets : Value.t list list;  (** IN sets *)
}

let where_unsat (cond : Ast.condition) =
  let tbl : (string, facts) Hashtbl.t = Hashtbl.create 8 in
  let facts a =
    match Hashtbl.find_opt tbl a with
    | Some f -> f
    | None ->
      let f = { lo = None; hi = None; eqs = []; sets = [] } in
      Hashtbl.add tbl a f;
      f
  in
  let tighten_lo f v strict =
    match f.lo with
    | Some (v0, s0) when v0 > v || (v0 = v && s0) -> ignore strict
    | _ -> f.lo <- Some (v, strict)
  in
  let tighten_hi f v strict =
    match f.hi with
    | Some (v0, s0) when v0 < v || (v0 = v && s0) -> ignore strict
    | _ -> f.hi <- Some (v, strict)
  in
  List.iter
    (fun c ->
      match (c : Ast.condition) with
      | Ast.Cmp (a, Ast.Eq, v) ->
        let f = facts a in
        f.eqs <- v :: f.eqs
      | Ast.Cmp (a, op, v) -> (
        match (Value.as_float v, op) with
        | Some x, Ast.Lt -> tighten_hi (facts a) x true
        | Some x, Ast.Le -> tighten_hi (facts a) x false
        | Some x, Ast.Gt -> tighten_lo (facts a) x true
        | Some x, Ast.Ge -> tighten_lo (facts a) x false
        | _ -> ())
      | Ast.Between_cond (a, l, u) -> (
        match (Value.as_float l, Value.as_float u) with
        | Some fl, Some fu ->
          let f = facts a in
          tighten_lo f fl false;
          tighten_hi f fu false
        | _ -> ())
      | Ast.In (a, vs) ->
        let f = facts a in
        f.sets <- vs :: f.sets
      | _ -> ())
    (Ast.conjuncts cond);
  let pp_vals vs = String.concat ", " (List.map Value.to_string vs) in
  let contradiction = ref None in
  let found reason = if !contradiction = None then contradiction := Some reason in
  Hashtbl.iter
    (fun a f ->
      (* conflicting equalities *)
      (match f.eqs with
      | v1 :: rest -> (
        match List.find_opt (fun v -> not (Value.equal v v1)) rest with
        | Some v2 ->
          found
            (Printf.sprintf "%s = %s contradicts %s = %s" a
               (Value.to_string v1) a (Value.to_string v2))
        | None -> ())
      | [] -> ());
      (* an equality outside an IN set *)
      List.iter
        (fun v ->
          List.iter
            (fun set ->
              if not (List.exists (Value.equal v) set) then
                found
                  (Printf.sprintf "%s = %s is outside %s IN (%s)" a
                     (Value.to_string v) a (pp_vals set)))
            f.sets)
        f.eqs;
      (* disjoint IN sets *)
      (match f.sets with
      | s1 :: rest ->
        List.iter
          (fun s2 ->
            if
              not
                (List.exists
                   (fun v -> List.exists (Value.equal v) s2)
                   s1)
            then
              found
                (Printf.sprintf "%s IN (%s) and %s IN (%s) are disjoint" a
                   (pp_vals s1) a (pp_vals s2)))
          rest
      | [] -> ());
      (* empty numeric range *)
      (match (f.lo, f.hi) with
      | Some (lo, ls), Some (hi, hs) when lo > hi || (lo = hi && (ls || hs))
        ->
        found
          (Printf.sprintf "the bounds on %s leave the empty range %c%g, %g%c"
             a
             (if ls then '(' else '[')
             lo hi
             (if hs then ')' else ']'))
      | _ -> ());
      (* equalities vs bounds *)
      List.iter
        (fun v ->
          match Value.as_float v with
          | None -> ()
          | Some x ->
            let below =
              match f.lo with
              | Some (lo, strict) -> x < lo || (x = lo && strict)
              | None -> false
            and above =
              match f.hi with
              | Some (hi, strict) -> x > hi || (x = hi && strict)
              | None -> false
            in
            if below || above then
              found
                (Printf.sprintf "%s = %s violates the range bounds on %s" a
                   (Value.to_string v) a))
        f.eqs)
    tbl;
  !contradiction

(* ------------------------------------------------------------------ *)
(* Data lints                                                          *)

let pairwise_distinct schema attrs rows =
  let rec go = function
    | [] | [ _ ] -> true
    | x :: rest ->
      List.for_all (fun y -> not (Tuple.equal_on schema attrs x y)) rest
      && go rest
  in
  go rows

(* Cap for the O(n^2) distinctness scan of W220. *)
let max_scan_rows = 512

let data_findings ?registry ~env (q : Ast.query) =
  let diags = ref [] in
  let emit ?fixit path code message =
    diags := Diagnostic.make ~path ?fixit code message :: !diags
  in
  (* W212: loaded but empty FROM tables *)
  List.iter
    (fun t ->
      match Exec.find_table env t with
      | Some rel when Relation.is_empty rel ->
        emit [ "from" ] "W212"
          (Printf.sprintf
             "table %S is empty: the query returns no rows whatever the \
              preference"
             t)
      | _ -> ())
    q.Ast.from;
  (* W210: contradictory WHERE *)
  (match q.Ast.where with
  | Some c -> (
    match where_unsat c with
    | Some reason ->
      emit [ "where" ] "W210"
        (Printf.sprintf
           "WHERE is unsatisfiable (%s): the result is empty on every input"
           reason)
    | None -> ())
  | None -> ());
  (* single-table preference lints against the loaded data *)
  (match q.Ast.from with
  | [ t ] -> (
    match Exec.find_table env t with
    | Some rel when Relation.cardinality rel >= 2 -> (
      let schema = Relation.schema rel in
      let full =
        try Exec.full_preference ?registry q with _ -> None
      in
      match full with
      | None -> ()
      | Some p ->
        (* W211: σ[P] provably returns every row. The Constraints proof
           is a ∀-statement over rows, so it survives WHERE filtering and
           GROUPING splits of this relation. BUT ONLY still evaluates
           levels/distances, so it keeps the preference meaningful. *)
        (if q.Ast.but_only = [] then
           match (try Constraints.redundant schema p rel with _ -> None) with
           | Some reason ->
             emit [ "preferring" ] "W211"
               (Printf.sprintf
                  "the preference never discriminates on %S (%s): the \
                   winnow returns every row"
                  t reason)
           | None -> ());
        (* W220: a prioritisation prefix that already identifies rows *)
        let rows = Relation.rows rel in
        let spine = Canon.prior_spine p in
        if
          List.length spine >= 2
          && List.length rows <= max_scan_rows
        then begin
          let rec scan i seen = function
            | [] -> ()
            | op :: rest ->
              let seen = Attr.union seen (Pref.attrs op) in
              if rest = [] then ()
              else if
                List.for_all (fun a -> Schema.mem schema a) seen
                && pairwise_distinct schema seen rows
              then
                emit [ "preferring" ] "W220"
                  (Printf.sprintf
                     "the prioritisation prefix {%s} (operands 0..%d) \
                      already identifies every row of %S: the %d later \
                      operand(s) never discriminate on this data \
                      (Prop. 4a, per row)"
                     (String.concat ", " seen) i t (List.length rest))
              else scan (i + 1) seen rest
          in
          scan 0 [] spine
        end)
    | _ -> ())
  | _ -> ());
  !diags

let check_query ?registry ~env (q : Ast.query) =
  let base = Ast_check.check_query ?registry ~env q in
  if Diagnostic.has_errors base then base
  else base @ data_findings ?registry ~env q

let check_source ?registry ~env src =
  match Parser.parse_query src with
  | q -> check_query ?registry ~env q
  | exception Parser.Error (msg, pos) ->
    [
      Diagnostic.make ~path:[ "source" ] "E111"
        (Printf.sprintf "parse error at offset %d: %s" pos msg);
    ]
  | exception Lexer.Error (msg, pos) ->
    [
      Diagnostic.make ~path:[ "source" ] "E111"
        (Printf.sprintf "lex error at offset %d: %s" pos msg);
    ]

(* ------------------------------------------------------------------ *)
(* Workload mode                                                       *)

(* [SET knob value] is session syntax (shell [\set], wire [SET]); a
   workload file interleaves it with queries, so recognise it textually
   before SQL parsing. *)
let parse_set src =
  let words =
    String.split_on_char ' '
      (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) (String.trim src))
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | s :: key :: rest when String.lowercase_ascii s = "set" ->
    let value =
      match rest with
      | "=" :: tail -> String.concat " " tail
      | tail -> String.concat " " tail
    in
    Some (String.lowercase_ascii key, value)
  | _ -> None

type entry = {
  label : string;
  kind : [ `Set of string * string | `Query of Ast.query | `Opaque ];
  mutable found : Diagnostic.t list;
}

(* Canonical signature of the preference-free part of a statement. *)
let base_signature (q : Ast.query) =
  Pretty.query_to_string { q with Ast.preferring = None; cascade = [] }

let spine_keys ?registry (q : Ast.query) =
  match (try Exec.full_preference ?registry q with _ -> None) with
  | None -> None
  | Some p -> Some (List.map Canon.key (Canon.prior_spine p))

(* The reuse tier REFINE would pick for this revision, as measured by
   the revision classifier itself — the same code path a session runs. *)
let revise_tier ~old_p ~new_p =
  match Pref_engine.Revise.classify ~old_p ~new_p with
  | Pref_engine.Revise.Prior_suffix ->
    Some ("refine:seed", "re-winnows the cached BMO seed alone, Prop. 10")
  | Pref_engine.Revise.Pareto_extend ->
    Some ("refine:hot", "seed-first scan keeps the BNL window hot")
  | Pref_engine.Revise.Same | Pref_engine.Revise.Contraction
  | Pref_engine.Revise.Disjoint ->
    None

let check_statements ?registry ~env labeled =
  let entries =
    List.map
      (fun (label, text) ->
        match parse_set text with
        | Some (key, value) ->
          let found =
            match
              Pref_bmo.Engine.set Pref_bmo.Engine.default ~key ~value
            with
            | Ok _ -> []
            | Error msg ->
              [
                Diagnostic.make ~path:[ "set" ] "E210"
                  (Printf.sprintf "SET %s: %s" key msg);
              ]
          in
          { label; kind = `Set (key, value); found }
        | None -> (
          match Parser.parse_query text with
          | q -> { label; kind = `Query q; found = check_query ?registry ~env q }
          | exception _ ->
            { label; kind = `Opaque; found = check_source ?registry ~env text }
          ))
      labeled
  in
  let arr = Array.of_list entries in
  let n = Array.length arr in
  (* SET liveness: a knob set and overwritten before any query is dead;
     a SET to the value already in effect is redundant. *)
  let pending : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let effective : (string, string) Hashtbl.t = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    match arr.(i).kind with
    | `Query _ | `Opaque -> Hashtbl.reset pending
    | `Set (key, value) ->
      (match Hashtbl.find_opt pending key with
      | Some j ->
        arr.(j).found <-
          Diagnostic.make ~path:[ "set" ] "W222"
            (Printf.sprintf
               "dead SET: %s is overwritten by %s before any query runs" key
               arr.(i).label)
          :: arr.(j).found
      | None -> ());
      (match Hashtbl.find_opt effective key with
      | Some v
        when String.lowercase_ascii v = String.lowercase_ascii value
             && not (Hashtbl.mem pending key) ->
        arr.(i).found <-
          Diagnostic.make ~path:[ "set" ] "W222"
            (Printf.sprintf "redundant SET: %s is already %s" key value)
          :: arr.(i).found
      | _ -> ());
      Hashtbl.replace pending key i;
      Hashtbl.replace effective key value
  done;
  (* repeated / refining statements *)
  let seen = ref [] in
  for i = 0 to n - 1 do
    match arr.(i).kind with
    | `Set _ | `Opaque -> ()
    | `Query q ->
      let base = base_signature q in
      let spine = spine_keys ?registry q in
      let pref = try Exec.full_preference ?registry q with _ -> None in
      let plain =
        q.Ast.but_only = [] && q.Ast.grouping = [] && q.Ast.top = None
      in
      let repeat =
        List.find_opt
          (fun (_, base', spine', _, _) -> base' = base && spine' = spine)
          !seen
      and refines =
        match pref with
        | None -> None
        | Some new_p ->
          List.find_map
            (fun (label', base', _, pref', plain') ->
              if not (plain && plain' && base' = base) then None
              else
                match pref' with
                | None -> None
                | Some old_p ->
                  Option.map
                    (fun tier -> (label', tier))
                    (revise_tier ~old_p ~new_p))
            !seen
      in
      (match repeat with
      | Some (label', _, _, _, _) ->
        arr.(i).found <-
          Diagnostic.make ~path:[ "source" ] "W221"
            (Printf.sprintf
               "statement repeats %s: same base query and canonically \
                identical preference"
               label')
          :: arr.(i).found
      | None -> (
        match refines with
        | Some (label', (tier, how)) ->
          arr.(i).found <-
            Diagnostic.make ~path:[ "preferring" ] "H210"
              (Printf.sprintf
                 "refines the preference of %s: REFINE serves this \
                  revision at tier %s (%s)"
                 label' tier how)
            :: arr.(i).found
        | None -> ()));
      seen := (arr.(i).label, base, spine, pref, plain) :: !seen
  done;
  Array.to_list (Array.map (fun e -> (e.label, e.found)) arr)
