(** Satisfiability and contradiction analysis over preference terms.

    Where {!Term_check} polices well-formedness and the §4 laws, this
    layer asks whether a well-formed term can ever {e discriminate}: does
    any pair of column values exist that the order relates? It reports

    - [W201] [explicit-graph-collapses]: with a schema, an EXPLICIT graph
      none of whose edges can relate two values of the column's type —
      the order collapses to the anti-chain, so the fix-it [A↔] is
      preference-equivalent on every instance of the schema;
    - [W202] [unsatisfiable-between]: a BETWEEN band over an integer (or
      date) column that contains no representable value, so distance 0 is
      unachievable and the band degenerates to a pure distance order;
    - [W203] [conflicting-numeric-zones]: sibling ⊗/♦ operands whose
      optimum zones on the same attribute are disjoint (BETWEEN/AROUND
      bands that cannot both be satisfied), or a POS set that a sibling
      NEG penalises wholesale — the accumulated preference is
      contradictory: no tuple can be optimal in both dimensions;
    - [H201] [duplicate-set-values]: value sets containing duplicates
      modulo {!Pref_relation.Value.equal}; the fix-it drops them (set
      semantics, Definition 6).

    All findings are warnings or hints: the flagged terms execute fine,
    they just cannot mean what was written. The checker never raises,
    even on raw ill-formed terms. *)

val check :
  ?schema:Pref_relation.Schema.t ->
  ?path:string list ->
  Preferences.Pref.t ->
  Diagnostic.t list
(** Unsorted findings; [path] prefixes every location. Called by
    {!Term_check.check}, so every surface (SQL, XPath, shell, executor
    rejection hook) inherits these lints. *)
