open Pref_relation
open Pref_sql

type decision = {
  table : string;
  scheme : Shard_map.scheme;
  shard_sql : string;
  merge_needed : bool;
  reason : string;
  final : Ast.query;
  dims : int;
}

type mode =
  | Proxy
  | Scatter of decision

let pref_dims q =
  let attrs =
    List.fold_left
      (fun acc p -> Preferences.Attr.union acc (Ast.pref_attrs p))
      (match q.Ast.preferring with
      | Some p -> Ast.pref_attrs p
      | None -> [])
      q.Ast.cascade
  in
  List.length attrs

let plan ?registry ~shard_map q =
  let sharded =
    List.filter_map
      (fun t ->
        match Shard_map.find shard_map t with
        | Some ((Shard_map.Hash _ | Shard_map.Range _) as s) ->
          Some (String.lowercase_ascii t, s)
        | Some Shard_map.Replicated | None -> None)
      q.Ast.from
  in
  match sharded with
  | [] -> Ok Proxy
  | _ :: _ :: _ ->
    Error "queries joining two sharded tables are not supported"
  | [ (table, scheme) ] ->
    if List.length q.Ast.from > 1 then
      Error
        (Printf.sprintf
           "joining sharded table %S is not supported; register the other \
            table as replicated and shard neither, or shard neither"
           table)
    else
      let has_pref = q.Ast.preferring <> None || q.Ast.cascade <> [] in
      let scorable =
        match (try Exec.full_preference ?registry q with _ -> None) with
        | Some p -> Preferences.Pref.is_scorable p
        | None -> false
      in
      let keep_top =
        q.Ast.top <> None && q.Ast.but_only = []
        && ((not has_pref) || (scorable && q.Ast.grouping = []))
      in
      let shard_q =
        {
          q with
          Ast.select = [ Ast.Star ];
          but_only = [];
          order_by = (if keep_top && not has_pref then q.Ast.order_by else []);
          top = (if keep_top then q.Ast.top else None);
        }
      in
      let covers_key =
        match Shard_map.key_attr scheme with
        | Some k -> List.mem k q.Ast.grouping
        | None -> false
      in
      let merge_needed, reason, final =
        if not has_pref then
          ( false,
            "no preference: the union of shard scans is already exact",
            q )
        else if covers_key && q.Ast.but_only = [] then
          ( false,
            Printf.sprintf
              "GROUPING covers shard key %s: groups are shard-local, the \
               union of per-shard grouped winnows is exact (Prop. 12)"
              (Option.value ~default:"?" (Shard_map.key_attr scheme)),
            { q with Ast.preferring = None; cascade = []; grouping = [] } )
        else
          ( true,
            "final winnow over the gathered union: maxima(∪ Ri) = maxima(∪ \
             maxima(Ri)) (Props. 8/10; winnow commutes with union)",
            q )
      in
      Ok
        (Scatter
           {
             table;
             scheme;
             shard_sql = Pretty.query_to_string shard_q;
             merge_needed;
             reason;
             final;
             dims = max 1 (pref_dims q);
           })

let gather = function
  | [] -> Error "gather of zero shard results"
  | (first, fflags) :: rest ->
    let schema = Relation.schema first in
    let rec go rows flags = function
      | [] -> Ok (Relation.make schema (List.concat (List.rev rows)), flags)
      | (rel, f) :: rest ->
        if Relation.schema rel <> schema then
          Error "shard results disagree on the schema"
        else
          go
            (Relation.rows rel :: rows)
            (Pref_bmo.Engine.union_flags flags f)
            rest
    in
    go [ Relation.rows first ] fflags rest

let finish ?registry ~config ~deadline decision gathered =
  let config =
    {
      config with
      Pref_bmo.Engine.check = false;
      cache = false;
      profile = false;
    }
  in
  Exec.run_query_within ?registry ~deadline config
    [ (decision.table, gathered) ]
    decision.final
