open Pref_sql
module Client = Pref_server.Client
module Protocol = Pref_server.Protocol
module Relation = Pref_relation.Relation
module Tuple = Pref_relation.Tuple

type backend = { bhost : string; bport : int }

type config = {
  host : string;
  port : int;
  backends : backend list;
  shard_map : Shard_map.t;
  max_connections : int;
  shard_timeout_s : float;
  down_backoff_s : float;
  session_config : Pref_bmo.Engine.config;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 5876;
    backends = [];
    shard_map = Shard_map.empty;
    max_connections = 64;
    shard_timeout_s = 10.;
    down_backoff_s = 0.05;
    (* the backends run the static checker; re-checking the final pass
       would need the analyzer installed in the router process too *)
    session_config = { Pref_bmo.Engine.default with check = false };
  }

(* router.* metrics — mirrors of the always-on atomic counters, fed when
   telemetry is globally enabled *)
let m_queries = Pref_obs.Metrics.counter "router.queries"
let m_scatter = Pref_obs.Metrics.counter "router.scatter"
let m_proxied = Pref_obs.Metrics.counter "router.proxied"
let m_merged = Pref_obs.Metrics.counter "router.merged"
let m_merge_skipped = Pref_obs.Metrics.counter "router.merge_skipped"
let m_partial = Pref_obs.Metrics.counter "router.partial"
let m_shard_down = Pref_obs.Metrics.counter "router.shard_down"
let m_errors = Pref_obs.Metrics.counter "router.errors"
let m_deltas = Pref_obs.Metrics.counter "router.deltas"
let g_conns = Pref_obs.Metrics.gauge "router.connections"
let g_up = Pref_obs.Metrics.gauge "router.shards_up"
let g_subs = Pref_obs.Metrics.gauge "router.subscriptions"

type health = { mutable failures : int; mutable down_until : float }

type t = {
  cfg : config;
  registry : Translate.registry;
  backends : backend array;
  listen_fd : Unix.file_descr;
  bound_port : int;
  health : health array;
  health_m : Mutex.t;
  m : Mutex.t;
  mutable draining : bool;
  mutable drain_started : bool;
  mutable stopped : bool;
  stopped_c : Condition.t;
  stop_requested : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conns_m : Mutex.t;
  mutable conns : (int * Unix.file_descr) list;
  mutable conn_threads : (int * Thread.t) list;
  rr : int Atomic.t;  (* round-robin cursor for proxied requests *)
  (* table schemas learned from shard replies, for DML row placement *)
  schemas_m : Mutex.t;
  schemas : (string, Pref_relation.Schema.t) Hashtbl.t;
  (* always-on counters (STATS must work with telemetry off) *)
  c_accepted : int Atomic.t;
  c_conn_rejected : int Atomic.t;
  c_queries : int Atomic.t;
  c_scatter : int Atomic.t;
  c_proxied : int Atomic.t;
  c_merged : int Atomic.t;
  c_merge_skipped : int Atomic.t;
  c_partial : int Atomic.t;
  c_shard_down : int Atomic.t;
  c_errors : int Atomic.t;
  c_subscriptions : int Atomic.t;  (* currently active routed subscriptions *)
  c_deltas : int Atomic.t;
  c_next_id : int Atomic.t;
}

let port t = t.bound_port
let draining t = Mutex.protect t.m (fun () -> t.draining)
let nshards t = Array.length t.backends

(* ------------------------------------------------------------------ *)
(* Backend health                                                      *)

let now_s () = Unix.gettimeofday ()

let shard_up t i =
  Mutex.protect t.health_m (fun () -> t.health.(i).down_until <= now_s ())

let shards_up t =
  Mutex.protect t.health_m (fun () ->
      Array.fold_left
        (fun n h -> if h.down_until <= now_s () then n + 1 else n)
        0 t.health)

let mark_down t i =
  Mutex.protect t.health_m (fun () ->
      let h = t.health.(i) in
      h.failures <- h.failures + 1;
      let backoff =
        Float.min 5.0
          (t.cfg.down_backoff_s *. (2. ** float_of_int (h.failures - 1)))
      in
      h.down_until <- now_s () +. backoff);
  Pref_obs.Metrics.set g_up (float_of_int (shards_up t))

let mark_up t i =
  Mutex.protect t.health_m (fun () ->
      let h = t.health.(i) in
      h.failures <- 0;
      h.down_until <- 0.);
  Pref_obs.Metrics.set g_up (float_of_int (shards_up t))

(* ------------------------------------------------------------------ *)
(* Per-connection state                                                *)

type conn = {
  router : t;
  fd : Unix.file_descr;
  mutable config : Pref_bmo.Engine.config;  (* final-pass knobs *)
  mutable prepared : (string * Ast.query) list;
  mutable set_log : (string * string) list;  (* newest first; replayed *)
  mutable last_q : Ast.query option;  (* last answered statement, for REFINE *)
  clients : Client.t option array;  (* one lazy channel per backend *)
}

let drop_client conn i =
  match conn.clients.(i) with
  | None -> ()
  | Some c ->
    conn.clients.(i) <- None;
    (try Client.close c with _ -> ())

let get_client conn i =
  match conn.clients.(i) with
  | Some c -> Ok c
  | None -> (
    let t = conn.router in
    let b = t.backends.(i) in
    match
      Client.connect ~timeout_s:t.cfg.shard_timeout_s ~host:b.bhost
        ~port:b.bport ()
    with
    | exception e ->
      mark_down t i;
      Error (Printexc.to_string e)
    | c ->
      (* replay the session's SETs so a rebuilt channel behaves like the
         one it replaces *)
      List.iter
        (fun (k, v) -> try ignore (Client.set c ~key:k ~value:v) with _ -> ())
        (List.rev conn.set_log);
      conn.clients.(i) <- Some c;
      Ok c)

(* ------------------------------------------------------------------ *)
(* Shard calls                                                         *)

type 'a outcome =
  | O_ok of 'a
  | O_fatal of string  (* deterministic server error: every shard agrees *)
  | O_down of string  (* this shard cannot answer right now *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_busy msg = has_prefix "[busy]" msg
let is_drain msg = has_prefix "[drain" msg

(* One request against shard [i] with the degradation ladder: busy is
   retried within the shard budget, draining a few times (the backend is
   leaving — don't burn the whole budget on it), and lost connections
   mark the shard down for backoff. *)
let with_shard conn i f =
  let t = conn.router in
  if conn.clients.(i) = None && not (shard_up t i) then
    O_down "in health backoff"
  else
    match get_client conn i with
    | Error msg -> O_down msg
    | Ok client ->
      let deadline = now_s () +. t.cfg.shard_timeout_s in
      let drains = ref 0 in
      let rec go client =
        match f client with
        | Ok v ->
          mark_up t i;
          O_ok v
        | Error msg when is_busy msg ->
          if now_s () < deadline then begin
            Thread.delay 0.002;
            go client
          end
          else O_down msg
        | Error msg when is_drain msg ->
          incr drains;
          if !drains <= 3 && now_s () < deadline then begin
            Thread.delay 0.01;
            go client
          end
          else begin
            drop_client conn i;
            mark_down t i;
            O_down msg
          end
        | Error msg -> O_fatal msg
        | exception e ->
          drop_client conn i;
          mark_down t i;
          O_down (Printexc.to_string e)
      in
      go client

(* Fan one request out to every backend; each shard gets its own thread
   (the work is waiting on sockets, not computing). Slot [i] is only
   touched by thread [i]. *)
let scatter conn f =
  let results = Array.map (fun _ -> O_down "unreached") conn.clients in
  let threads =
    Array.mapi
      (fun i _ ->
        Thread.create (fun () -> results.(i) <- with_shard conn i (f i)) ())
      conn.clients
  in
  Array.iter Thread.join threads;
  results

let partition_outcomes results =
  let oks = ref [] and fatal = ref None and downs = ref [] in
  Array.iteri
    (fun i -> function
      | O_ok v -> oks := (i, v) :: !oks
      | O_fatal msg -> if !fatal = None then fatal := Some msg
      | O_down msg -> downs := (i, msg) :: !downs)
    results;
  (List.rev !oks, !fatal, List.rev !downs)

(* Try shards round-robin until one answers; deterministic errors stop
   the failover — a parse error is a parse error on every replica. *)
let proxy conn f =
  let t = conn.router in
  let n = nshards t in
  let start = Atomic.fetch_and_add t.rr 1 mod n in
  let rec go k last =
    if k >= n then
      Error
        (Protocol.Err
           {
             kind = "unavailable";
             retriable = true;
             message =
               Printf.sprintf "all %d backend(s) unavailable (%s)" n last;
             trace = None;
           })
    else
      match with_shard conn ((start + k) mod n) f with
      | O_ok v -> Ok v
      | O_fatal msg ->
        Error
          (Protocol.Err
             { kind = "shard"; retriable = false; message = msg; trace = None })
      | O_down msg -> go (k + 1) msg
  in
  go 0 "no backends"

(* Each shard request gets a derived span so backend slow-query logs can
   be stitched back to the client's trace through the router hop. *)
let child_trace trace i =
  Option.map
    (fun tr ->
      {
        tr with
        Protocol.span_id = tr.Protocol.span_id ^ "." ^ string_of_int i;
      })
    trace

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)

let error_response ?trace e =
  let err ?(retriable = false) kind message =
    Protocol.Err { kind; retriable; message; trace }
  in
  match e with
  | Parser.Error (msg, pos) ->
    err "parse" (Printf.sprintf "syntax error at offset %d: %s" pos msg)
  | Translate.Error msg -> err "translate" msg
  | Exec.Unknown_table { name; hint } ->
    err "exec" (Exec.unknown_table_message ~name ~hint)
  | Exec.Error msg -> err "exec" msg
  | Preferences.Pref.Ill_formed { code; message; _ } ->
    err "pref" (Printf.sprintf "[%s] %s" code message)
  | e -> err "internal" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* QUERY                                                               *)

(* [@name] resolves against the router's prepared store; everything else
   parses here so the merge planner sees an AST. *)
let resolve_query conn sql =
  let s = String.trim sql in
  if String.length s > 1 && s.[0] = '@' then
    let name = String.trim (String.sub s 1 (String.length s - 1)) in
    match List.assoc_opt name conn.prepared with
    | Some q -> Ok q
    | None ->
      Error
        (Printf.sprintf "no prepared statement %S on this connection" name)
  else
    match Parser.parse_query sql with
    | q -> Ok q
    | exception Parser.Error (msg, pos) ->
      Error (Printf.sprintf "syntax error at offset %d: %s" pos msg)

let scatter_query conn ?trace (d : Merge.decision) =
  let t = conn.router in
  Atomic.incr t.c_scatter;
  Pref_obs.Metrics.incr m_scatter;
  let results =
    scatter conn (fun i client ->
        Client.query_reply ?trace:(child_trace trace i) client d.Merge.shard_sql)
  in
  let oks, fatal, downs = partition_outcomes results in
  List.iter
    (fun _ ->
      Atomic.incr t.c_shard_down;
      Pref_obs.Metrics.incr m_shard_down)
    downs;
  match fatal with
  | Some msg ->
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_errors;
    Protocol.Err { kind = "shard"; retriable = false; message = msg; trace }
  | None when oks = [] ->
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_errors;
    Protocol.Err
      {
        kind = "unavailable";
        retriable = true;
        message =
          Printf.sprintf "all %d shard(s) unavailable (%s)" (nshards t)
            (match downs with (_, m) :: _ -> m | [] -> "no backends");
        trace;
      }
  | None -> (
    let replies = List.map snd oks in
    match
      Merge.gather
        (List.map (fun r -> (r.Client.rel, r.Client.flags)) replies)
    with
    | Error msg ->
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_errors;
      Protocol.Err { kind = "internal"; retriable = false; message = msg; trace }
    | Ok (union, shard_flags) -> (
      let deadline = Pref_bmo.Engine.deadline_of conn.config in
      match
        Merge.finish ~registry:t.registry ~config:conn.config ~deadline d union
      with
      | result ->
        if d.Merge.merge_needed then begin
          Atomic.incr t.c_merged;
          Pref_obs.Metrics.incr m_merged
        end
        else begin
          Atomic.incr t.c_merge_skipped;
          Pref_obs.Metrics.incr m_merge_skipped
        end;
        let flags =
          Pref_bmo.Engine.union_flags shard_flags result.Exec.flags
        in
        let flags =
          { flags with Pref_bmo.Engine.partial =
              flags.Pref_bmo.Engine.partial || downs <> [] }
        in
        if flags.Pref_bmo.Engine.partial then begin
          Atomic.incr t.c_partial;
          Pref_obs.Metrics.incr m_partial
        end;
        Protocol.Rows
          {
            relation = result.Exec.relation;
            flags;
            served = Some (List.length oks, nshards t);
            trace;
          }
      | exception e ->
        Atomic.incr t.c_errors;
        Pref_obs.Metrics.incr m_errors;
        error_response ?trace e))

let proxy_query conn ?trace q =
  let t = conn.router in
  Atomic.incr t.c_proxied;
  Pref_obs.Metrics.incr m_proxied;
  let sql = Pretty.query_to_string q in
  match
    proxy conn (fun client -> Client.query_reply ?trace client sql)
  with
  | Ok reply ->
    if reply.Client.flags.Pref_bmo.Engine.partial then begin
      Atomic.incr t.c_partial;
      Pref_obs.Metrics.incr m_partial
    end;
    Protocol.Rows
      {
        relation = reply.Client.rel;
        flags = reply.Client.flags;
        served = None;
        trace;
      }
  | Error (Protocol.Err e) ->
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_errors;
    Protocol.Err { e with trace }
  | Error resp -> resp

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

(* The shard plans arrive as EXPLAIN text; the chosen alternative's cost
   line reads "  <alt>  <ms>  <- chosen" and the cardinality line
   "  estimated BMO size: <n> (independence model)" — both emitted with
   plain %.*f numbers precisely so they stay machine-readable. *)
let chosen_ms text =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         if contains line "<- chosen" then
           match
             String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
           with
           | _alt :: ms :: _ -> float_of_string_opt ms
           | _ -> None
         else None)
  |> Option.value ~default:0.

let est_rows text =
  let marker = "estimated BMO size: " in
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         let line = String.trim line in
         if has_prefix marker line then
           let rest =
             String.sub line (String.length marker)
               (String.length line - String.length marker)
           in
           let num =
             match String.index_opt rest ' ' with
             | Some i -> String.sub rest 0 i
             | None -> rest
           in
           Option.map int_of_float (float_of_string_opt num)
         else None)
  |> Option.value ~default:0

let indent body =
  String.split_on_char '\n' body
  |> List.map (fun l -> if l = "" then l else "  " ^ l)
  |> String.concat "\n"

let scatter_explain conn ~analyze ~json ?trace (d : Merge.decision) =
  let t = conn.router in
  let results =
    scatter conn (fun i client ->
        Client.explain ~analyze ~json:false
          ?trace:(child_trace trace i)
          client d.Merge.shard_sql)
  in
  let oks, fatal, downs = partition_outcomes results in
  match fatal with
  | Some msg ->
    Protocol.Err { kind = "shard"; retriable = false; message = msg; trace }
  | None when oks = [] ->
    Protocol.Err
      {
        kind = "unavailable";
        retriable = true;
        message =
          Printf.sprintf "all %d shard(s) unavailable (%s)" (nshards t)
            (match downs with (_, m) :: _ -> m | [] -> "no backends");
        trace;
      }
  | None ->
    let per_shard_ms = List.map (fun (_, text) -> chosen_ms text) oks in
    let merge_rows =
      List.fold_left (fun acc (_, text) -> acc + est_rows text) 0 oks
    in
    let sg =
      Pref_bmo.Cost.scatter_gather_ms ~per_shard_ms ~merge_rows
        ~dims:d.Merge.dims ~merge:d.Merge.merge_needed
    in
    let body =
      if json then
        Pref_obs.Json.to_string
          (Pref_obs.Json.Obj
             [
               ( "scatter_gather",
                 Pref_obs.Json.Obj
                   [
                     ("table", Pref_obs.Json.Str d.Merge.table);
                     ( "scheme",
                       Pref_obs.Json.Str
                         (Shard_map.scheme_to_string d.Merge.scheme) );
                     ("shards", Pref_obs.Json.Int (nshards t));
                     ("answered", Pref_obs.Json.Int (List.length oks));
                     ("shard_statement", Pref_obs.Json.Str d.Merge.shard_sql);
                     ("merge", Pref_obs.Json.Bool d.Merge.merge_needed);
                     ("reason", Pref_obs.Json.Str d.Merge.reason);
                     ( "predicted_ms",
                       Pref_obs.Json.Obj
                         [
                           ( "slowest_shard",
                             Pref_obs.Json.Float sg.Pref_bmo.Cost.sg_slowest_ms
                           );
                           ( "dispatch",
                             Pref_obs.Json.Float sg.Pref_bmo.Cost.sg_dispatch_ms
                           );
                           ("merge", Pref_obs.Json.Float sg.Pref_bmo.Cost.sg_merge_ms);
                           ("total", Pref_obs.Json.Float sg.Pref_bmo.Cost.sg_total_ms);
                         ] );
                     ("estimated_gathered_rows", Pref_obs.Json.Int merge_rows);
                     ( "shard_plans",
                       Pref_obs.Json.List
                         (List.map
                            (fun (i, text) ->
                              Pref_obs.Json.Obj
                                [
                                  ("shard", Pref_obs.Json.Int i);
                                  ("plan", Pref_obs.Json.Str text);
                                ])
                            oks) );
                   ] );
             ])
      else begin
        let buf = Buffer.create 1024 in
        Buffer.add_string buf
          (Printf.sprintf
             "scatter-gather over %d shard(s): %s (%s), %d/%d answered\n"
             (nshards t) d.Merge.table
             (Shard_map.scheme_to_string d.Merge.scheme)
             (List.length oks) (nshards t));
        Buffer.add_string buf
          (Printf.sprintf "  shard statement: %s\n" d.Merge.shard_sql);
        Buffer.add_string buf
          (Printf.sprintf "  merge: %s%s\n"
             (if d.Merge.merge_needed then "" else "skipped — ")
             d.Merge.reason);
        Buffer.add_string buf "predicted costs (ms):\n";
        Buffer.add_string buf
          (Printf.sprintf "  %-14s %8.3f\n" "slowest-shard" sg.Pref_bmo.Cost.sg_slowest_ms);
        Buffer.add_string buf
          (Printf.sprintf "  %-14s %8.3f\n" "dispatch" sg.Pref_bmo.Cost.sg_dispatch_ms);
        Buffer.add_string buf
          (Printf.sprintf "  %-14s %8.3f\n" "merge" sg.Pref_bmo.Cost.sg_merge_ms);
        Buffer.add_string buf
          (Printf.sprintf "  %-14s %8.3f  <- chosen\n" "total" sg.Pref_bmo.Cost.sg_total_ms);
        Buffer.add_string buf
          (Printf.sprintf "estimated gathered rows: %d\n" merge_rows);
        List.iter
          (fun (i, text) ->
            Buffer.add_string buf (Printf.sprintf "shard %d plan:\n" i);
            Buffer.add_string buf (indent text);
            Buffer.add_char buf '\n')
          oks;
        List.iter
          (fun (i, msg) ->
            Buffer.add_string buf (Printf.sprintf "shard %d: down (%s)\n" i msg))
          downs;
        Buffer.contents buf
      end
    in
    Protocol.Explain_resp body

let answer_explain conn ~analyze ~json ?trace sql =
  let t = conn.router in
  match resolve_query conn sql with
  | Error msg ->
    Protocol.Err { kind = "parse"; retriable = false; message = msg; trace }
  | Ok q -> (
    match Merge.plan ~registry:t.registry ~shard_map:t.cfg.shard_map q with
    | Error msg ->
      Protocol.Err { kind = "exec"; retriable = false; message = msg; trace }
    | Ok Merge.Proxy -> (
      let sql = Pretty.query_to_string q in
      match
        proxy conn (fun client -> Client.explain ~analyze ~json ?trace client sql)
      with
      | Ok body -> Protocol.Explain_resp body
      | Error resp -> resp)
    | Ok (Merge.Scatter d) -> scatter_explain conn ~analyze ~json ?trace d)

(* Static checks run once in the router, against an empty catalog (the
   rows live on the backends), before a statement is scattered N ways.
   A no-op unless a checker has been installed (prefroute installs
   [Pref_analysis]); warnings and hints are left to the backends. *)
let pre_scatter_errors t q =
  match
    List.filter
      (fun f -> f.Exec.check_severity = "error")
      (Exec.static_check ~registry:t.registry [] q)
  with
  | [] -> None
  | errors ->
    Some
      (String.concat "; "
         (List.map
            (fun f ->
              Printf.sprintf "[%s] at %s: %s" f.Exec.check_code
                f.Exec.check_path f.Exec.check_message)
            errors))

(* Answer one already-parsed statement through the merge planner, and
   remember it as the connection's last statement when rows came back —
   the AST REFINE revises. *)
let answer_parsed conn ?trace q =
  let t = conn.router in
  let resp =
    match Merge.plan ~registry:t.registry ~shard_map:t.cfg.shard_map q with
    | Error msg ->
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_errors;
      Protocol.Err { kind = "exec"; retriable = false; message = msg; trace }
    | Ok Merge.Proxy -> proxy_query conn ?trace q
    | Ok (Merge.Scatter d) -> (
      match pre_scatter_errors t q with
      | Some msg ->
        Atomic.incr t.c_errors;
        Pref_obs.Metrics.incr m_errors;
        Protocol.Err { kind = "check"; retriable = false; message = msg; trace }
      | None -> scatter_query conn ?trace d)
  in
  (match resp with
  | Protocol.Rows _ -> conn.last_q <- Some q
  | _ -> ());
  resp

let answer_query conn ?trace sql =
  let t = conn.router in
  Atomic.incr t.c_queries;
  Pref_obs.Metrics.incr m_queries;
  (* a QUERY whose statement starts with EXPLAIN answers with the plan,
     matching the single-node server *)
  match Parser.explain_prefix sql with
  | Some (analyze, rest) ->
    answer_explain conn ~analyze ~json:false ?trace rest
  | None -> (
    match resolve_query conn sql with
    | Error msg ->
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_errors;
      Protocol.Err { kind = "parse"; retriable = false; message = msg; trace }
    | Ok q -> answer_parsed conn ?trace q)

(* ------------------------------------------------------------------ *)
(* REFINE: revise the connection's last statement and re-route it. The
   router keeps no BMO seed of its own — each backend session does, and
   the re-issued statement reaches them over the same channels, so the
   shard-local evaluations still profit from their caches. *)

let answer_refine conn ?trace term =
  let t = conn.router in
  Atomic.incr t.c_queries;
  Pref_obs.Metrics.incr m_queries;
  match conn.last_q with
  | None ->
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_errors;
    Protocol.Err
      {
        kind = "exec";
        retriable = false;
        message =
          "no preceding preference query to refine (run SELECT ... PREFERRING \
           ... first)";
        trace;
      }
  | Some q -> (
    match Parser.parse_pref term with
    | exception e ->
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_errors;
      error_response ?trace e
    | p -> answer_parsed conn ?trace { q with Ast.preferring = Some p; Ast.cascade = [] })

(* ------------------------------------------------------------------ *)
(* DML: inserts go to the owning shard (shard-map placement on the
   decoded row; replicated and unregistered tables go everywhere),
   deletes broadcast — the row lives on exactly one shard, the others
   answer "no matching row" and are ignored. *)

let is_no_match msg = has_prefix "[exec] no matching row" msg

(* The shard-key placement needs the table's schema, which lives on the
   backends; learn it once from any shard's answer and cache it. *)
let table_schema conn table =
  let t = conn.router in
  let table = String.lowercase_ascii table in
  match Mutex.protect t.schemas_m (fun () -> Hashtbl.find_opt t.schemas table) with
  | Some schema -> Ok schema
  | None -> (
    match
      proxy conn (fun client ->
          Client.query client (Printf.sprintf "SELECT * FROM %s TOP 1" table))
    with
    | Ok (rel, _) ->
      let schema = Relation.schema rel in
      Mutex.protect t.schemas_m (fun () -> Hashtbl.replace t.schemas table schema);
      Ok schema
    | Error resp -> Error resp)

let placement t scheme schema row =
  let pieces =
    Shard_map.partition scheme ~shards:(nshards t) (Relation.make schema [ row ])
  in
  let idx = ref 0 in
  Array.iteri (fun i piece -> if Relation.cardinality piece > 0 then idx := i) pieces;
  !idx

let shard_err ?trace msg =
  Protocol.Err { kind = "shard"; retriable = false; message = msg; trace }

let unavailable_err ?trace t msg =
  Protocol.Err
    {
      kind = "unavailable";
      retriable = true;
      message = Printf.sprintf "all %d shard(s) unavailable (%s)" (nshards t) msg;
      trace;
    }

let answer_dml conn ?trace op table row =
  let t = conn.router in
  Atomic.incr t.c_queries;
  Pref_obs.Metrics.incr m_queries;
  let table_lc = String.lowercase_ascii table in
  let scheme = Shard_map.find t.cfg.shard_map table_lc in
  match (op, scheme) with
  | Protocol.Dml_insert, (None | Some Shard_map.Replicated) -> (
    (* every backend holds a full copy: keep them all in step *)
    let results =
      scatter conn (fun i client ->
          Client.insert ?trace:(child_trace trace i) client ~table row)
    in
    let oks, fatal, downs = partition_outcomes results in
    match fatal with
    | Some msg ->
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_errors;
      shard_err ?trace msg
    | None when oks = [] ->
      unavailable_err ?trace t
        (match downs with (_, m) :: _ -> m | [] -> "no backends")
    | None ->
      Protocol.Done
        (Printf.sprintf "inserted into %s on %d/%d backend(s)" table_lc
           (List.length oks) (nshards t)))
  | Protocol.Dml_insert, Some scheme -> (
    match table_schema conn table_lc with
    | Error resp -> resp
    | Ok schema -> (
      match Protocol.decode_rows schema [ row ] with
      | Error msg | (exception Failure msg) ->
        Atomic.incr t.c_errors;
        Pref_obs.Metrics.incr m_errors;
        Protocol.Err { kind = "proto"; retriable = false; message = msg; trace }
      | Ok [] -> assert false
      | Ok (tuple :: _) -> (
        let i = placement t scheme schema tuple in
        match
          with_shard conn i (fun client ->
              Client.insert ?trace:(child_trace trace i) client ~table row)
        with
        | O_ok line -> Protocol.Done line
        | O_fatal msg ->
          Atomic.incr t.c_errors;
          Pref_obs.Metrics.incr m_errors;
          shard_err ?trace msg
        | O_down msg ->
          (* the owning shard is fixed by placement: no failover *)
          Protocol.Err
            {
              kind = "unavailable";
              retriable = true;
              message = Printf.sprintf "shard %d unavailable (%s)" i msg;
              trace;
            })))
  | Protocol.Dml_delete, _ ->
    let results =
      scatter conn (fun i client ->
          Client.delete ?trace:(child_trace trace i) client ~table row)
    in
    let oks = ref 0 and real_fatal = ref None and downs = ref 0 in
    Array.iter
      (function
        | O_ok _ -> incr oks
        | O_fatal msg when is_no_match msg -> ()
        | O_fatal msg -> if !real_fatal = None then real_fatal := Some msg
        | O_down _ -> incr downs)
      results;
    (match !real_fatal with
    | Some msg ->
      Atomic.incr t.c_errors;
      Pref_obs.Metrics.incr m_errors;
      shard_err ?trace msg
    | None ->
      if !oks > 0 then
        Protocol.Done
          (Printf.sprintf "deleted from %s (%d shard(s))" table_lc !oks)
      else if !downs > 0 then
        unavailable_err ?trace t "row not found on any reachable shard"
      else
        Protocol.Err
          {
            kind = "exec";
            retriable = false;
            message = Printf.sprintf "no matching row in %s" table_lc;
            trace;
          })

(* ------------------------------------------------------------------ *)
(* SUBSCRIBE: routed continuous queries. Each shard subscription keeps
   that shard's BMO set current (absorbing shard resyncs); after every
   shard delta the router re-winnows the union — exact by the
   winnow/union law σ[P](R) = σ[P](σ[P](R1) ∪ ... ∪ σ[P](Rn)) — and
   streams the multiset diff of consecutive answers downstream, so the
   client only ever sees plain deltas. *)

let remove_row x l =
  let rec go acc = function
    | [] -> None
    | y :: tl ->
      if Tuple.equal x y then Some (List.rev_append acc tl)
      else go (y :: acc) tl
  in
  go [] l

let multiset_diff ~before ~after =
  let removed, added_rev =
    List.fold_left
      (fun (rem, add) x ->
        match remove_row x rem with
        | Some rem -> (rem, add)
        | None -> (rem, x :: add))
      (before, []) after
  in
  (List.rev added_rev, removed)

(* All-or-nothing setup over the given shards — a missing shard would
   make the continuous answer silently partial forever. Each shard gets
   a dedicated channel: after SUBSCRIBE a connection is a one-way
   stream, so the pooled request channels must stay out of it. *)
let open_shard_subs t ?trace ~indices stmt =
  let opened = ref [] in
  let close_all () =
    List.iter (fun (_, c, _) -> try Client.close c with _ -> ()) !opened
  in
  let rec go = function
    | [] -> Ok (List.rev !opened)
    | i :: rest -> (
      let b = t.backends.(i) in
      match
        Client.connect ~timeout_s:t.cfg.shard_timeout_s ~host:b.bhost
          ~port:b.bport ()
      with
      | exception e ->
        mark_down t i;
        close_all ();
        Error (unavailable_err ?trace t (Printexc.to_string e))
      | c -> (
        match Client.subscribe ?trace:(child_trace trace i) c stmt with
        | Ok snap ->
          mark_up t i;
          opened := (i, c, snap) :: !opened;
          go rest
        | Error msg ->
          (try Client.close c with _ -> ());
          close_all ();
          Error (shard_err ?trace msg)
        | exception e ->
          (try Client.close c with _ -> ());
          mark_down t i;
          close_all ();
          Error (unavailable_err ?trace t (Printexc.to_string e))))
  in
  go indices

(* Replicated / unregistered table: one backend holds the full answer,
   so subscribe to a single healthy shard (failing over on connection
   trouble; a server-side rejection is deterministic on every replica). *)
let proxy_sub t ?trace stmt =
  let n = nshards t in
  let start = Atomic.fetch_and_add t.rr 1 mod n in
  let rec go k last =
    if k >= n then Error (unavailable_err ?trace t last)
    else
      let i = (start + k) mod n in
      let b = t.backends.(i) in
      match
        Client.connect ~timeout_s:t.cfg.shard_timeout_s ~host:b.bhost
          ~port:b.bport ()
      with
      | exception e ->
        mark_down t i;
        go (k + 1) (Printexc.to_string e)
      | c -> (
        match Client.subscribe ?trace:(child_trace trace i) c stmt with
        | Ok snap ->
          mark_up t i;
          Ok [ (i, c, snap) ]
        | Error msg ->
          (try Client.close c with _ -> ());
          Error (shard_err ?trace msg)
        | exception e ->
          (try Client.close c with _ -> ());
          mark_down t i;
          go (k + 1) (Printexc.to_string e))
  in
  go 0 "no backends"

(* Writes frames to the downstream client directly; returns the
   continue-bool for the connection loop ([false] once the stream has
   run, [true] after a setup error — the connection is still usable). *)
let answer_subscribe conn ?trace sql =
  let t = conn.router in
  Atomic.incr t.c_queries;
  Pref_obs.Metrics.incr m_queries;
  let send resp =
    Protocol.write_frame conn.fd (Protocol.encode_response resp)
  in
  let fail resp =
    Atomic.incr t.c_errors;
    Pref_obs.Metrics.incr m_errors;
    send resp;
    true
  in
  match Parser.parse_query sql with
  | exception e -> fail (error_response ?trace e)
  | q -> (
    match Exec.full_preference ~registry:t.registry q with
    | None ->
      fail
        (Protocol.Err
           {
             kind = "exec";
             retriable = false;
             message = "SUBSCRIBE requires a PREFERRING clause";
             trace;
           })
    | Some pref -> (
      let stmt = Pretty.query_to_string q in
      let setup =
        match Merge.plan ~registry:t.registry ~shard_map:t.cfg.shard_map q with
        | Error msg ->
          Error
            (Protocol.Err
               { kind = "exec"; retriable = false; message = msg; trace })
        | Ok Merge.Proxy -> proxy_sub t ?trace stmt
        | Ok (Merge.Scatter _) -> (
          match pre_scatter_errors t q with
          | Some msg ->
            Error
              (Protocol.Err
                 { kind = "check"; retriable = false; message = msg; trace })
          | None ->
            open_shard_subs t ?trace ~indices:(List.init (nshards t) Fun.id)
              stmt)
      in
      match setup with
      | Error resp -> fail resp
      | Ok [] -> fail (unavailable_err ?trace t "no backends")
      | Ok ((_, _, (rel0, flags0)) :: _ as subs) ->
        let subs = Array.of_list subs in
        let schema = Relation.schema rel0 in
        let rows = Array.map (fun (_, _, (rel, _)) -> Relation.rows rel) subs in
        let flags =
          Array.fold_left
            (fun f (_, _, (_, fl)) -> Pref_bmo.Engine.union_flags f fl)
            flags0 subs
        in
        let cfg = { conn.config with Pref_bmo.Engine.cache = false } in
        let winnow rs =
          Relation.rows
            (fst (Pref_bmo.Query.sigma_cfg cfg schema pref
                    (Relation.make schema rs)))
        in
        let union () = List.concat (Array.to_list rows) in
        let current = ref (winnow (union ())) in
        send
          (Protocol.Rows
             {
               relation = Relation.make schema !current;
               flags;
               served = Some (Array.length subs, nshards t);
               trace;
             });
        Atomic.incr t.c_subscriptions;
        Pref_obs.Metrics.set g_subs
          (float_of_int (Atomic.get t.c_subscriptions));
        let ev_m = Mutex.create () in
        let evs = Queue.create () in
        let push e = Mutex.protect ev_m (fun () -> Queue.add e evs) in
        (* one blocking reader per shard stream; a timed read could lose
           framing sync mid-frame, a blocked one cannot *)
        let readers =
          Array.mapi
            (fun slot (_, c, _) ->
              Thread.create
                (fun () ->
                  let rec go () =
                    match Client.next_delta c with
                    | Some d ->
                      push (`Delta (slot, d));
                      go ()
                    | None -> push `Closed
                    | exception _ -> push `Closed
                  in
                  go ())
                ())
            subs
        in
        let apply slot (d : Client.delta) =
          if d.Client.d_resync then rows.(slot) <- Relation.rows d.Client.d_added
          else begin
            let kept =
              List.fold_left
                (fun acc x ->
                  match remove_row x acc with Some acc -> acc | None -> acc)
                rows.(slot)
                (Relation.rows d.Client.d_removed)
            in
            rows.(slot) <- kept @ Relation.rows d.Client.d_added
          end
        in
        let rec pump () =
          if draining t then ()
          else
            match
              Mutex.protect ev_m (fun () ->
                  if Queue.is_empty evs then None else Some (Queue.pop evs))
            with
            | None ->
              Thread.delay 0.02;
              pump ()
            | Some `Closed -> ()  (* a shard stream ended: end ours *)
            | Some (`Delta (slot, d)) ->
              apply slot d;
              let next = winnow (union ()) in
              let added, removed = multiset_diff ~before:!current ~after:next in
              current := next;
              if added <> [] || removed <> [] then begin
                Atomic.incr t.c_deltas;
                Pref_obs.Metrics.incr m_deltas;
                send
                  (Protocol.Delta
                     {
                       added = Relation.make schema added;
                       removed = Relation.make schema removed;
                       resync = false;
                       trace;
                     })
              end;
              pump ()
        in
        Fun.protect
          ~finally:(fun () ->
            Array.iter (fun (_, c, _) -> try Client.close c with _ -> ()) subs;
            Array.iter (fun th -> try Thread.join th with _ -> ()) readers;
            Atomic.decr t.c_subscriptions;
            Pref_obs.Metrics.set g_subs
              (float_of_int (Atomic.get t.c_subscriptions)))
          (fun () -> pump ());
        false))

(* ------------------------------------------------------------------ *)
(* SET / STATS                                                         *)

(* maxrows is withheld from the shards: capping shard BMO sets would
   silently starve the final winnow of rows it still needs, while one
   cap at the final pass keeps the single-node semantics. *)
let forwarded_key key = String.lowercase_ascii key <> "maxrows"

let answer_set conn ~key ~value =
  match Pref_bmo.Engine.set conn.config ~key ~value with
  | Error msg ->
    Protocol.Err
      { kind = "set"; retriable = false; message = msg; trace = None }
  | Ok cfg ->
    conn.config <- cfg;
    if forwarded_key key then begin
      conn.set_log <- (key, value) :: conn.set_log;
      (* best effort: down shards get the full replay on reconnect *)
      Array.iteri
        (fun i -> function
          | None -> ()
          | Some client -> (
            try ignore (Client.set client ~key ~value)
            with _ -> drop_client conn i))
        conn.clients
    end;
    let shown =
      List.assoc_opt (String.lowercase_ascii key)
        (Pref_bmo.Engine.describe cfg)
    in
    Protocol.Done
      (Printf.sprintf "%s: %s"
         (String.lowercase_ascii key)
         (Option.value shown ~default:value))

let counters t =
  let active = Mutex.protect t.conns_m (fun () -> List.length t.conns) in
  let per_shard =
    Mutex.protect t.health_m (fun () ->
        List.concat
          (List.mapi
             (fun i h ->
               [
                 ( Printf.sprintf "shard.%d.up" i,
                   if h.down_until <= now_s () then 1 else 0 );
                 (Printf.sprintf "shard.%d.failures" i, h.failures);
               ])
             (Array.to_list t.health)))
  in
  [
    ("router.accepted", Atomic.get t.c_accepted);
    ("router.active_connections", active);
    ("router.connections_rejected", Atomic.get t.c_conn_rejected);
    ("router.queries", Atomic.get t.c_queries);
    ("router.scatter", Atomic.get t.c_scatter);
    ("router.proxied", Atomic.get t.c_proxied);
    ("router.merged", Atomic.get t.c_merged);
    ("router.merge_skipped", Atomic.get t.c_merge_skipped);
    ("router.partial", Atomic.get t.c_partial);
    ("router.shard_down", Atomic.get t.c_shard_down);
    ("router.errors", Atomic.get t.c_errors);
    ("router.subscriptions", Atomic.get t.c_subscriptions);
    ("router.deltas", Atomic.get t.c_deltas);
    ("router.backends", nshards t);
    ("router.shards_up", shards_up t);
    ("router.draining", if draining t then 1 else 0);
  ]
  @ per_shard

(* STATS: the router's own counters, then every backend's integer
   counters summed under a [shards.] prefix (float-valued histogram
   summaries don't sum meaningfully and are skipped). *)
let answer_stats conn =
  let t = conn.router in
  let results = scatter conn (fun _i client -> Client.stats client) in
  let sums : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (function
      | O_ok kvs ->
        List.iter
          (fun (k, v) ->
            match int_of_string_opt v with
            | None -> ()
            | Some n ->
              if not (Hashtbl.mem sums k) then order := k :: !order;
              Hashtbl.replace sums k
                (n + Option.value ~default:0 (Hashtbl.find_opt sums k)))
          kvs
      | O_fatal _ | O_down _ -> ())
    results;
  let shard_sums =
    List.rev_map
      (fun k -> ("shards." ^ k, string_of_int (Hashtbl.find sums k)))
      !order
  in
  Protocol.Stats_resp
    (List.map (fun (k, v) -> (k, string_of_int v)) (counters t) @ shard_sums)

(* ------------------------------------------------------------------ *)
(* Connection loop                                                     *)

exception Drain

let handle_connection t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25;
  let conn =
    {
      router = t;
      fd;
      config = t.cfg.session_config;
      prepared = [];
      set_log = [];
      last_q = None;
      clients = Array.map (fun _ -> None) t.backends;
    }
  in
  let send resp = Protocol.write_frame fd (Protocol.encode_response resp) in
  let on_wait () = if draining t then raise Drain in
  let rec loop () =
    match Protocol.read_frame ~on_wait fd with
    | None -> ()
    | Some payload ->
      let continue =
        match Protocol.parse_request payload with
        | Error msg ->
          send
            (Protocol.Err
               { kind = "proto"; retriable = false; message = msg; trace = None });
          true
        | Ok (Protocol.Query { sql; trace }) ->
          send (answer_query conn ?trace sql);
          true
        | Ok (Protocol.Prepare { name; sql; trace }) ->
          (match Parser.parse_query sql with
          | q ->
            conn.prepared <- (name, q) :: List.remove_assoc name conn.prepared;
            send (Protocol.Done ("prepared " ^ name))
          | exception e -> send (error_response ?trace e));
          true
        | Ok (Protocol.Explain { sql; analyze; json; trace }) ->
          send (answer_explain conn ~analyze ~json ?trace sql);
          true
        | Ok (Protocol.Refine { term; trace }) ->
          send (answer_refine conn ?trace term);
          true
        | Ok (Protocol.Dml { op; table; row; trace }) ->
          send (answer_dml conn ?trace op table row);
          true
        | Ok (Protocol.Subscribe { sql; trace }) ->
          answer_subscribe conn ?trace sql
        | Ok (Protocol.Set (key, value)) ->
          send (answer_set conn ~key ~value);
          true
        | Ok Protocol.Stats ->
          send (answer_stats conn);
          true
        | Ok (Protocol.Metrics { json }) ->
          let body =
            if json then Pref_obs.Json.to_string (Pref_obs.Export.to_json ())
            else Pref_obs.Export.prometheus ()
          in
          send (Protocol.Metrics_resp body);
          true
        | Ok Protocol.Ping ->
          send Protocol.Pong;
          true
      in
      if continue then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iteri (fun i _ -> drop_client conn i) conn.clients)
    (fun () ->
      try loop () with
      | Drain | Protocol.Framing_error _ | Unix.Unix_error _ | Sys_error _ ->
        ())

let spawn_connection t fd =
  let id = Atomic.fetch_and_add t.c_next_id 1 in
  Mutex.protect t.conns_m (fun () ->
      t.conns <- (id, fd) :: t.conns;
      Pref_obs.Metrics.set g_conns (float_of_int (List.length t.conns)));
  let thread =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect t.conns_m (fun () ->
                t.conns <- List.remove_assoc id t.conns;
                Pref_obs.Metrics.set g_conns
                  (float_of_int (List.length t.conns)));
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
            try Unix.close fd with _ -> ())
          (fun () -> handle_connection t fd))
      ()
  in
  Mutex.protect t.conns_m (fun () ->
      t.conn_threads <- (id, thread) :: t.conn_threads)

let accept_loop t () =
  Unix.setsockopt_float t.listen_fd Unix.SO_RCVTIMEO 0.25;
  let rec loop () =
    if draining t || Atomic.get t.stop_requested then ()
    else
      match Unix.accept t.listen_fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        loop ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Atomic.incr t.c_accepted;
        let active = Mutex.protect t.conns_m (fun () -> List.length t.conns) in
        if active >= t.cfg.max_connections then begin
          Atomic.incr t.c_conn_rejected;
          (try
             Protocol.write_frame fd
               (Protocol.encode_response
                  (Protocol.Err
                     {
                       kind = "busy";
                       retriable = true;
                       message = "router at max connections; retry";
                       trace = None;
                     }))
           with _ -> ());
          try Unix.close fd with _ -> ()
        end
        else spawn_connection t fd;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start ?(config = default_config) ?(registry = Translate.default_registry)
    () =
  if config.backends = [] then
    invalid_arg "Router.start: at least one backend required";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let backends = Array.of_list config.backends in
  let t =
    {
      cfg = config;
      registry;
      backends;
      listen_fd;
      bound_port;
      health =
        Array.map (fun _ -> { failures = 0; down_until = 0. }) backends;
      health_m = Mutex.create ();
      m = Mutex.create ();
      draining = false;
      drain_started = false;
      stopped = false;
      stopped_c = Condition.create ();
      stop_requested = Atomic.make false;
      accept_thread = None;
      conns_m = Mutex.create ();
      conns = [];
      conn_threads = [];
      rr = Atomic.make 0;
      schemas_m = Mutex.create ();
      schemas = Hashtbl.create 8;
      c_accepted = Atomic.make 0;
      c_conn_rejected = Atomic.make 0;
      c_queries = Atomic.make 0;
      c_scatter = Atomic.make 0;
      c_proxied = Atomic.make 0;
      c_merged = Atomic.make 0;
      c_merge_skipped = Atomic.make 0;
      c_partial = Atomic.make 0;
      c_shard_down = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_subscriptions = Atomic.make 0;
      c_deltas = Atomic.make 0;
      c_next_id = Atomic.make 0;
    }
  in
  Pref_obs.Metrics.set g_up (float_of_int (nshards t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let request_stop t = Atomic.set t.stop_requested true

let stop t =
  let first =
    Mutex.protect t.m (fun () ->
        if t.drain_started then false
        else begin
          t.drain_started <- true;
          t.draining <- true;
          true
        end)
  in
  if not first then
    Mutex.protect t.m (fun () ->
        while not t.stopped do
          Condition.wait t.stopped_c t.m
        done)
  else begin
    (* 1. stop accepting; the accept loop polls [draining] on its timeout *)
    Option.iter Thread.join t.accept_thread;
    t.accept_thread <- None;
    (try Unix.close t.listen_fd with _ -> ());
    (* 2. connection threads notice [draining] on their read timeout and
       exit after flushing the in-flight response; nudge blocked reads *)
    let conns = Mutex.protect t.conns_m (fun () -> t.conns) in
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    let threads = Mutex.protect t.conns_m (fun () -> t.conn_threads) in
    List.iter (fun (_, th) -> Thread.join th) threads;
    Mutex.protect t.conns_m (fun () -> t.conn_threads <- []);
    Mutex.protect t.m (fun () ->
        t.stopped <- true;
        Condition.broadcast t.stopped_c)
  end

let wait t =
  let rec poll () =
    let stopped = Mutex.protect t.m (fun () -> t.stopped) in
    if stopped then ()
    else if Atomic.get t.stop_requested then stop t
    else begin
      Thread.delay 0.1;
      poll ()
    end
  in
  poll ()
