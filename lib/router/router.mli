(** The scatter-gather router: one wire-protocol endpoint in front of N
    [prefserve] backends.

    Speaks exactly the {!Pref_server.Protocol} a single server speaks —
    clients (shell, soak driver, benches) cannot tell the difference
    except for the extra [served=k/n] word on ROWS responses. Per
    request:

    - QUERY over a sharded table: fan the {!Merge}-planned shard
      statement out to every backend in parallel, gather the per-shard
      BMO sets, run the final pass locally, answer one relation.
      Backends that are down, draining, saturated past the retry budget
      or silent past the shard timeout are skipped: the response carries
      [partial] and [served=k/n] instead of failing, as long as at least
      one shard answered. A backend erroring deterministically (parse,
      exec) fails the query — every shard would say the same.
    - QUERY over replicated/unregistered tables: proxied to one healthy
      backend, round-robin.
    - PREPARE is handled entirely at the router (parsed and stored per
      connection; [@name] re-plans the stored statement), so shard
      restarts cannot lose prepared state.
    - SET updates the router-side final-pass config and is forwarded to
      every backend connection, replayed on reconnect; [maxrows] is
      {e not} forwarded — shard-side caps would silently starve the
      final winnow, so the cap applies once, at the final pass.
    - EXPLAIN over a sharded table fans out to the shards, prices the
      scatter-gather plan with {!Pref_bmo.Cost.scatter_gather_ms}
      (slowest shard + per-shard dispatch + final merge) and renders the
      per-shard plans indented underneath.
    - STATS sums the backends' integer counters under a [shards.]
      prefix, adds per-shard [shard.<i>.up] health, and the router's own
      counters. METRICS answers the router process's registry.

    Backend health: a failed connect or lost response marks the shard
    down with exponential backoff (doubling from
    [config.down_backoff_s], capped at 5 s); the next query after the
    backoff re-probes it. *)

type backend = { bhost : string; bport : int }

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  backends : backend list;  (** shard [i] of [n] is the [i]-th entry *)
  shard_map : Shard_map.t;
  max_connections : int;
  shard_timeout_s : float;
      (** per-shard response budget per request; also bounds the
          busy-retry loop *)
  down_backoff_s : float;  (** initial health backoff after a failure *)
  session_config : Pref_bmo.Engine.config;
      (** final-pass engine config (per connection, mutable via SET) *)
}

val default_config : config
(** No backends — {!start} requires at least one. *)

type t

val start : ?config:config -> ?registry:Pref_sql.Translate.registry -> unit -> t
(** Bind and serve. Raises [Invalid_argument] without backends and
    [Unix.Unix_error] when the bind fails. Backends are dialed lazily,
    per connection, on first use — a backend may come up after the
    router. *)

val port : t -> int
val draining : t -> bool

val counters : t -> (string * int) list
(** The router-local counters (no backend round trips):
    [router.queries], [router.scatter], [router.proxied],
    [router.merged], [router.merge_skipped], [router.partial],
    [router.shard_down], [router.errors], [router.backends],
    [router.active_connections], plus [shard.<i>.up] /
    [shard.<i>.failures] per backend. *)

val stop : t -> unit
(** Graceful drain, idempotent: stop accepting, let in-flight requests
    flush, close backend connections. *)

val request_stop : t -> unit
(** Signal-handler-safe: ask {!wait} to run {!stop}. *)

val wait : t -> unit
