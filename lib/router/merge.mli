(** Partition-wise query planning for the router: what to send to each
    shard, and how to make the gathered union exact.

    Soundness rests on the decomposition theorems (Kießling Props.
    8/10/12) and on winnow commuting with union (Chomicki): for any
    partition [R = R1 ∪ ... ∪ Rn],

    {v σ[P](R) = σ[P](σ[P](R1) ∪ ... ∪ σ[P](Rn)) v}

    so per-shard σ[P] followed by one final winnow over the gathered
    union loses nothing and admits nothing. The shard statement is the
    original query with:

    - [SELECT *] — the final pass still needs the preference, WHERE and
      GROUPING attributes, whatever the user projects;
    - [BUT ONLY] stripped — quality supervision runs {e after} winnow,
      and a shard-locally quality-filtered dominator must still
      eliminate the tuples it dominates on other shards, so the filter
      may only run in the final pass;
    - [TOP k] kept only when it provably commutes: no preference at all,
      or a scorable preference without GROUPING/BUT ONLY (the ranked
      model of §6.2 scores globally, so the global top-[k] is contained
      in the union of per-shard top-[k]s). Otherwise TOP would truncate
      shard BMO sets whose tails the final winnow still needs;
    - [ORDER BY] stripped except in the no-preference TOP case, where it
      decides {e which} [k] rows each shard keeps.

    The final pass re-runs the original query over the union (WHERE is
    idempotent; winnow, grouped winnow and the presentation tail see
    exactly the single-node input). When the preference projection
    proves per-shard results disjoint — no preference at all, or
    GROUPING covers the shard key so every group is shard-local — the
    final winnow is skipped: the final statement drops
    PREFERRING/CASCADE/GROUPING and only applies the presentation
    tail. *)

open Pref_relation
open Pref_sql

type decision = {
  table : string;  (** the sharded FROM table, lowercased *)
  scheme : Shard_map.scheme;
  shard_sql : string;  (** statement sent to every shard *)
  merge_needed : bool;  (** a final winnow pass runs over the union *)
  reason : string;  (** one-line merge justification, for EXPLAIN *)
  final : Ast.query;  (** statement run over the gathered union *)
  dims : int;  (** preference attribute count, for {!Pref_bmo.Cost.merge_ms} *)
}

type mode =
  | Proxy
      (** no sharded table in FROM (replicated or unregistered): any one
          backend answers the original statement verbatim *)
  | Scatter of decision

val plan :
  ?registry:Translate.registry ->
  shard_map:Shard_map.t ->
  Ast.query ->
  (mode, string) result
(** [Error] when the query joins a sharded table with anything else —
    distributed joins are out of scope; replicate the small table
    instead. *)

val gather :
  (Relation.t * Pref_bmo.Engine.flags) list ->
  (Relation.t * Pref_bmo.Engine.flags, string) result
(** Union the per-shard results (schemas must agree) and OR their
    degradation flags. *)

val finish :
  ?registry:Translate.registry ->
  config:Pref_bmo.Engine.config ->
  deadline:Pref_bmo.Engine.deadline ->
  decision ->
  Relation.t ->
  Exec.result
(** Run [decision.final] over the gathered union bound to
    [decision.table]. Checking, caching and profiling are forced off —
    the shards already vetted the statement, and the union relation is
    transient. *)
