(** Table placement for the scatter-gather router: which backend shard
    holds which rows of each registered relation.

    Hash and range schemes partition a relation on one attribute, so
    rows with equal shard-key values always colocate — the property the
    merge planner exploits when GROUPING covers the shard key (every
    group is shard-local, Prop. 12). Replicated tables live in full on
    every backend and need no gathering at all. *)

open Pref_relation

type scheme =
  | Hash of string  (** partition by [Value.hash] of the named attribute *)
  | Range of string * Value.t list
      (** partition by sorted upper bounds: bucket [i] holds rows with
          [attr <= bounds.(i)], the last bucket the rest; buckets past
          [shards - 1] clamp into the final shard *)
  | Replicated  (** full copy on every backend *)

type t
(** Registered tables; names are lowercased, lookup case-insensitive. *)

val empty : t
val add : t -> table:string -> scheme -> t
val find : t -> string -> scheme option
val tables : t -> (string * scheme) list

val key_attr : scheme -> string option
(** The partitioning attribute; [None] for {!Replicated}. *)

val scheme_to_string : scheme -> string
(** Round-trips through {!of_spec}'s scheme syntax. *)

val of_spec : string -> (string * scheme, string) result
(** Parse one [--shard] CLI spec:

    - ["cars=hash:price"] — hash-partition [cars] on [price]
    - ["cars=range:price:10000,20000"] — range-partition with two bounds
      (three buckets); bounds parse as int, then float, then string
    - ["cars"] — replicated

    Names and attributes are lowercased. *)

val partition : scheme -> shards:int -> Relation.t -> Relation.t array
(** Split a relation into [shards] pieces under the scheme ({!Replicated}
    copies it whole into every piece) — used by [prefsplit], the router
    tests and bench B12 to fabricate shard datasets. Raises [Failure]
    when the shard-key attribute is missing from the schema. *)
