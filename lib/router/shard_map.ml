open Pref_relation

type scheme =
  | Hash of string
  | Range of string * Value.t list
  | Replicated

type t = (string * scheme) list

let empty = []
let add t ~table scheme = (String.lowercase_ascii table, scheme) :: t
let find t name = List.assoc_opt (String.lowercase_ascii name) t
let tables t = List.rev t

let key_attr = function
  | Hash a | Range (a, _) -> Some a
  | Replicated -> None

let scheme_to_string = function
  | Hash a -> "hash:" ^ a
  | Range (a, bounds) ->
    Printf.sprintf "range:%s:%s" a
      (String.concat "," (List.map Value.to_string bounds))
  | Replicated -> "replicated"

(* CLI literals carry no schema, so infer the narrowest numeric type;
   range comparison happens via [Value.compare], which orders ints and
   floats numerically against each other. *)
let parse_bound s =
  match int_of_string_opt s with
  | Some i -> Value.Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Value.Float f
    | None -> Value.Str s)

let of_spec spec =
  let lower = String.lowercase_ascii in
  match String.index_opt spec '=' with
  | None ->
    if String.trim spec = "" then Error "empty shard spec"
    else Ok (lower (String.trim spec), Replicated)
  | Some i -> (
    let name = lower (String.trim (String.sub spec 0 i)) in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    if name = "" then Error (Printf.sprintf "shard spec %S has no table" spec)
    else
      match String.split_on_char ':' rest with
      | [ "hash"; attr ] when String.trim attr <> "" ->
        Ok (name, Hash (lower (String.trim attr)))
      | [ "range"; attr; bounds ] when String.trim attr <> "" -> (
        let bounds =
          String.split_on_char ',' bounds
          |> List.map String.trim
          |> List.filter (fun b -> b <> "")
          |> List.map parse_bound
        in
        match bounds with
        | [] -> Error (Printf.sprintf "shard spec %S has no range bounds" spec)
        | _ ->
          let sorted = List.sort Value.compare bounds in
          if sorted <> bounds then
            Error (Printf.sprintf "range bounds in %S must be ascending" spec)
          else Ok (name, Range (lower (String.trim attr), bounds)))
      | [ "replicated" ] -> Ok (name, Replicated)
      | _ ->
        Error
          (Printf.sprintf
             "unreadable shard spec %S (want NAME, NAME=hash:ATTR or \
              NAME=range:ATTR:B1,B2,...)"
             spec))

let bucket_of scheme ~shards schema tuple =
  match scheme with
  | Replicated -> invalid_arg "Shard_map.bucket_of: replicated"
  | Hash attr ->
    let v =
      try Tuple.get_by_name schema tuple attr
      with _ -> failwith (Printf.sprintf "shard key %S not in schema" attr)
    in
    Value.hash v land max_int mod shards
  | Range (attr, bounds) ->
    let v =
      try Tuple.get_by_name schema tuple attr
      with _ -> failwith (Printf.sprintf "shard key %S not in schema" attr)
    in
    let rec go i = function
      | [] -> i
      | b :: rest -> if Value.compare v b <= 0 then i else go (i + 1) rest
    in
    min (go 0 bounds) (shards - 1)

let partition scheme ~shards rel =
  if shards < 1 then invalid_arg "Shard_map.partition: shards must be >= 1";
  let schema = Relation.schema rel in
  match scheme with
  | Replicated -> Array.make shards rel
  | _ ->
    let parts = Array.make shards [] in
    List.iter
      (fun row ->
        let i = bucket_of scheme ~shards schema row in
        parts.(i) <- row :: parts.(i))
      (Relation.rows rel);
    Array.map (fun rows -> Relation.make schema (List.rev rows)) parts
