.PHONY: all build test bench bench-quick bench-smoke bench-gates \
	server-smoke shard-smoke check fmt lint verify bad-corpus clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Fast subset: one worked example, the algebraic laws, one algorithmic
# comparison, the parallel evaluation section (B9), the result-cache
# gates (B10) and the server throughput section (B11).
bench-smoke:
	dune exec bench/main.exe -- --smoke

# Cost-model no-regression gates: run the smoke bench, pull its
# BENCH_JSON line, and fail if any b9_speedups / b10_cache cell is below
# 1.0x (parallel-chosen B9 cells are skipped on hosts with < 4 cores,
# where measured fan-out cannot win).
bench-gates:
	@dune exec bench/main.exe -- --smoke > _bench_smoke.log 2>&1; \
	status=$$?; cat _bench_smoke.log; \
	[ $$status -eq 0 ] || { echo "bench-gates: bench failed"; exit 1; }; \
	grep -o 'BENCH_JSON .*' _bench_smoke.log | cut -d' ' -f2- > _bench_smoke.json; \
	python3 scripts/bench_gates.py _bench_smoke.json

# Boot prefserve, soak it with concurrent clients, assert complete
# response accounting, zero unexpected deadline expiries, and a clean
# SIGTERM drain.
server-smoke:
	bash scripts/server_smoke.sh

# Boot 3 prefserve shards + prefroute, assert router == single-node
# parity, zero-loss accounting through the router (including with one
# backend SIGTERMed mid-soak), degraded served=2/3 responses afterwards,
# and a clean router drain.
shard-smoke:
	bash scripts/shard_smoke.sh

# Formatting gate; dune's (formatting) stanza covers the dune files
# everywhere and .ml/.mli sources when an ocamlformat binary is present.
fmt:
	dune build @fmt

# Static-analysis gate: the whole tree rebuilt under the strict profile
# (every enabled warning is an error), then prefcheck over the example
# query corpora — exits 1 on any error-severity finding.
lint:
	dune build @all --profile strict
	dune exec -- prefcheck --json -w cars examples/queries/cars.psql
	dune exec -- prefcheck --json -w hotels examples/queries/hotels.psql
	dune exec -- prefcheck --json -w trips examples/queries/trips.psql
	dune exec -- prefcheck --json examples/queries/tour.pxpath
	@$(MAKE) bad-corpus

# Negative corpus: every file in examples/queries/bad declares the codes
# it must trigger (`-- expect: CODE ...`); the harness runs prefcheck
# --json per file and fails on any missing or unexpectedly-clean code.
bad-corpus:
	python3 scripts/bad_corpus.py examples/queries/bad

# The bounded soundness verifier: small-scope model checking of every
# rewrite rule, constraints proof rule, cache decomposition tier and the
# router merge against the literal Definition 15 semantics. Exits 1 and
# prints a minimal counterexample (term + relation) on any failure.
verify:
	dune exec -- prefcheck --verify

# The pre-push gate: full build, the whole test suite, the static-analysis
# gate, and the bench smoke subset (correctness checks incl. parallel
# evaluation and the result cache, ends with BENCH_JSON). The explicit
# exit keeps a gate failure fatal even under `make -i` / overridden
# sub-make flags.
check:
	dune build @all
	dune runtest
	@$(MAKE) lint || { echo "make check: FAILED (lint gate)"; exit 1; }
	@$(MAKE) verify || { echo "make check: FAILED (verify gate)"; exit 1; }
	@$(MAKE) bench-gates || { echo "make check: FAILED (bench gates)"; exit 1; }
	@echo "make check: OK"

clean:
	dune clean
	rm -f _bench_smoke.log _bench_smoke.json
