.PHONY: all build test bench bench-quick bench-smoke check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# ~5-second subset: one worked example, the algebraic laws, one
# algorithmic comparison, and the parallel evaluation section (B9).
bench-smoke:
	dune exec bench/main.exe -- --smoke

# The pre-push gate: full build, the whole test suite, and the bench smoke
# subset (correctness checks incl. parallel evaluation, ends with BENCH_JSON).
check:
	dune build @all
	dune runtest
	$(MAKE) bench-smoke

clean:
	dune clean
