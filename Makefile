.PHONY: all build test bench check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The pre-push gate: full build, the whole test suite, and the quick bench
# sweep (correctness checks + telemetry-overhead guard, ends with BENCH_JSON).
check:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- --quick

clean:
	dune clean
