lib/negotiate/negotiate.mli: Fmt Pref Pref_relation Preferences Relation Schema Tuple
