lib/negotiate/negotiate.ml: Fmt List Option Pref Pref_bmo Pref_order Pref_relation Preferences Relation Show Tuple
