open Pref_relation
open Preferences

type party = {
  party_name : string;
  preference : Pref.t;
}

let party ~name preference = { party_name = name; preference }

type round_log = {
  round : int;
  acceptable : (string * int) list;
      (** how many candidates each party accepts at this concession level *)
  common : int;  (** size of the intersection *)
}

type outcome =
  | Agreement of {
      deal : Tuple.t;
      round : int;
      levels : (string * int) list;  (** the deal's level under each party *)
    }
  | No_agreement of int  (** rounds exhausted *)

let combined_preference parties =
  match parties with
  | [] -> invalid_arg "Negotiate: no parties"
  | _ -> Pref.pareto_all (List.map (fun p -> p.preference) parties)

(* The negotiation table: nobody rationally accepts a dominated offer, so
   bargaining happens over the Pareto-optimal set of the accumulated
   preferences (§4.1: unranked values are the reservoir for compromises). *)
let candidates schema parties rel =
  Pref_bmo.Query.sigma schema (combined_preference parties) rel

(* Per-party quality of every candidate: the level in the party's own
   better-than graph restricted to the candidate set.  Level 1 = the
   party's favourite candidates. *)
let level_table schema parties cands =
  let rows = Relation.rows cands in
  List.map
    (fun p ->
      let g = Show.better_than_graph schema p.preference cands in
      let level t = Pref_order.Graph.level_of g t in
      (p.party_name, List.map (fun t -> (t, level t)) rows))
    parties

(* Monotonic concession by quality level: in round k every party accepts
   the candidates within its own top k levels; the first non-empty common
   set ends the negotiation with the fairest deal (minimal worst-case
   level, then minimal total level). *)
let negotiate ?max_rounds schema parties rel =
  let cands = candidates schema parties rel in
  let rows = Relation.rows cands in
  if rows = [] then (No_agreement 0, [])
  else begin
    let levels = level_table schema parties cands in
    let deepest =
      List.fold_left
        (fun acc (_, table) ->
          List.fold_left (fun acc (_, l) -> max acc l) acc table)
        1 levels
    in
    let max_rounds = Option.value max_rounds ~default:deepest in
    let level_of name t =
      let table = List.assoc name levels in
      let rec find = function
        | [] -> max_int
        | (u, l) :: rest -> if Tuple.equal t u then l else find rest
      in
      find table
    in
    let logs = ref [] in
    let rec rounds k =
      if k > max_rounds then (No_agreement max_rounds, List.rev !logs)
      else begin
        let acceptable_of p =
          List.filter (fun t -> level_of p.party_name t <= k) rows
        in
        let acceptable = List.map (fun p -> (p, acceptable_of p)) parties in
        let common =
          List.filter
            (fun t ->
              List.for_all
                (fun (_, acc) -> List.exists (Tuple.equal t) acc)
                acceptable)
            rows
        in
        logs :=
          {
            round = k;
            acceptable =
              List.map (fun (p, acc) -> (p.party_name, List.length acc)) acceptable;
            common = List.length common;
          }
          :: !logs;
        match common with
        | [] -> rounds (k + 1)
        | _ ->
          (* fairest deal: minimise the worst level, then the level sum *)
          let score t =
            let ls = List.map (fun p -> level_of p.party_name t) parties in
            (List.fold_left max 0 ls, List.fold_left ( + ) 0 ls)
          in
          let deal =
            List.fold_left
              (fun best t -> if score t < score best then t else best)
              (List.hd common) (List.tl common)
          in
          ( Agreement
              {
                deal;
                round = k;
                levels =
                  List.map (fun p -> (p.party_name, level_of p.party_name deal)) parties;
              },
            List.rev !logs )
      end
    in
    rounds 1
  end

let pp_outcome ppf = function
  | Agreement a ->
    Fmt.pf ppf "agreement in round %d on %a (%a)" a.round Tuple.pp a.deal
      Fmt.(
        list ~sep:(any ", ") (fun ppf (name, l) -> pf ppf "%s: level %d" name l))
      a.levels
  | No_agreement rounds -> Fmt.pf ppf "no agreement after %d round(s)" rounds
