(** E-negotiation on top of the preference model (§7 outlook: "the conflict
    tolerance of our preference model forms the basis for research concerned
    with e-negotiations and e-haggling").

    Parties bring their own — possibly directly conflicting — preferences.
    The negotiation table is the Pareto-optimal set of their accumulation
    (no rational party accepts a dominated offer; the unranked candidates
    are §4.1's "natural reservoir to negotiate compromises"). The protocol
    is monotonic concession by quality level: in round k each party accepts
    the candidates within its top k levels of its own better-than graph;
    the first common candidate ends the negotiation, with ties broken
    toward the fairest deal (minimal worst-case level, then minimal total
    level). *)

open Pref_relation
open Preferences

type party = {
  party_name : string;
  preference : Pref.t;
}

val party : name:string -> Pref.t -> party

type round_log = {
  round : int;
  acceptable : (string * int) list;
  common : int;
}

type outcome =
  | Agreement of {
      deal : Tuple.t;
      round : int;
      levels : (string * int) list;
    }
  | No_agreement of int

val combined_preference : party list -> Pref.t
(** Pareto accumulation of all parties' preferences (equal importance).
    Raises on an empty party list. *)

val candidates : Schema.t -> party list -> Relation.t -> Relation.t
(** The negotiation table: σ[P₁ ⊗ ... ⊗ Pₖ](R). *)

val negotiate :
  ?max_rounds:int -> Schema.t -> party list -> Relation.t ->
  outcome * round_log list
(** Run the concession protocol; [max_rounds] defaults to the deepest level
    any party assigns to a candidate, which guarantees agreement on a
    non-empty table. *)

val pp_outcome : outcome Fmt.t
