(** Rendering core preference terms back into Preference SQL.

    Inverse of {!Translate.pref} on the expressible fragment: anti-chains,
    ♦, + and ⊕ have no PREFERRING surface syntax and yield [None]. SCORE
    and rank(F) render by registry name, so round-tripping them requires
    the same registry on the parse side. *)

val pref : Preferences.Pref.t -> Ast.pref option

val to_preferring : Preferences.Pref.t -> string option
(** The text of a PREFERRING clause. *)

val to_query :
  ?select:Ast.select_item list -> from:string -> Preferences.Pref.t ->
  string option
(** A complete [SELECT ... FROM ... PREFERRING ...] statement. *)
