open Pref_relation
open Preferences

(* Preference terms back to surface syntax.  Not every core term is
   expressible in Preference SQL: anti-chains, intersection and disjoint
   union aggregation and linear sums have no PREFERRING syntax (the first
   appears only implicitly via GROUPING), and SCORE / rank(F) are
   expressible only by registry name.  [None] marks those. *)

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Value.Int (int_of_float f)
  else Value.Float f

let rec pref (p : Pref.t) : Ast.pref option =
  match p with
  (* the grammar has no empty IN lists; an empty-set POS/NEG orders nothing
     and has no PREFERRING equivalent, and the degenerate POS/POS and
     POS/NEG collapse per the §3.4 hierarchy *)
  | Pref.Pos (_, []) | Pref.Neg (_, []) -> None
  | Pref.Pos (a, vs) -> Some (Ast.P_pos (a, vs))
  | Pref.Neg (a, vs) -> Some (Ast.P_neg (a, vs))
  | Pref.Pos_pos (a, [], v2) -> pref (Pref.Pos (a, v2))
  | Pref.Pos_pos (a, v1, []) -> pref (Pref.Pos (a, v1))
  | Pref.Pos_pos (a, v1, v2) -> Some (Ast.P_pos_pos (a, v1, v2))
  | Pref.Pos_neg (a, [], ns) -> pref (Pref.Neg (a, ns))
  | Pref.Pos_neg (a, vs, []) -> pref (Pref.Pos (a, vs))
  | Pref.Pos_neg (a, vs, ns) -> Some (Ast.P_pos_neg (a, vs, ns))
  | Pref.Explicit (a, edges) -> Some (Ast.P_explicit (a, edges))
  | Pref.Around (a, z) -> Some (Ast.P_around (a, float_literal z))
  | Pref.Between (a, low, up) ->
    Some (Ast.P_between (a, float_literal low, float_literal up))
  | Pref.Lowest a -> Some (Ast.P_lowest a)
  | Pref.Highest a -> Some (Ast.P_highest a)
  | Pref.Score (a, f) -> Some (Ast.P_score (a, f.Pref.sname))
  | Pref.Rank (f, q, r) -> (
    match pref q, pref r with
    | Some q', Some r' -> Some (Ast.P_rank (f.Pref.cname, q', r'))
    | _ -> None)
  | Pref.Pareto (q, r) -> (
    match pref q, pref r with
    | Some q', Some r' -> Some (Ast.P_pareto (q', r'))
    | _ -> None)
  | Pref.Prior (q, r) -> (
    match pref q, pref r with
    | Some q', Some r' -> Some (Ast.P_prior (q', r'))
    | _ -> None)
  | Pref.Dual q -> Option.map (fun q' -> Ast.P_dual q') (pref q)
  | Pref.Antichain _ | Pref.Inter _ | Pref.Dunion _ | Pref.Lsum _
  | Pref.Two_graphs _ ->
    None

let to_preferring p = Option.map Pretty.pref_to_string (pref p)

let to_query ?(select = [ Ast.Star ]) ~from p =
  Option.map
    (fun ast ->
      Pretty.query_to_string
        {
          Ast.select;
          from = [ from ];
          where = None;
          preferring = Some ast;
          cascade = [];
          but_only = [];
          grouping = [];
          order_by = [];
          top = None;
        })
    (pref p)
