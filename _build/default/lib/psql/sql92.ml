open Pref_relation
open Preferences

(* Rewriting preference queries into plain SQL92 — the "plug-and-go
   application integration by a clever rewriting of Preference SQL queries
   into SQL92 code" that made the original Preference SQL run on stock
   engines (§6.1, [KiK01]).

   sigma[P](R) = { t in R | not exists u in R . t <_P u }, so the whole
   query becomes a NOT EXISTS anti-join whose inner predicate is the
   'better-than' formula of the preference term.  The formula is built as a
   small expression AST with BOTH a SQL92 renderer and an evaluator, so the
   translation is differentially tested against the core semantics. *)

type expr =
  | Col of string * string  (** alias, attribute *)
  | Lit of Value.t
  | Abs of expr
  | Sub of expr * expr
  | Case of (bexpr * expr) list * expr  (** CASE WHEN .. THEN .. ELSE .. END *)

and bexpr =
  | Cmp of expr * Ast.comparison * expr
  | In_set of expr * Value.t list
  | And of bexpr * bexpr
  | Or of bexpr * bexpr
  | Not of bexpr
  | True
  | False

exception Not_expressible of string

(* ------------------------------------------------------------------ *)
(* Building the better-than formula                                    *)

let conj = function
  | [] -> True
  | b :: rest -> List.fold_left (fun acc b -> And (acc, b)) b rest

let disj = function
  | [] -> False
  | b :: rest -> List.fold_left (fun acc b -> Or (acc, b)) b rest

let value_in e = function
  | [] -> False
  | set -> In_set (e, set)

(* [x <_P y] with x read through alias [t] and y through alias [u];
   [attr c] maps the preference's attribute name to the column to use
   (identity except under linear sums). *)
let rec lt_formula ?(attr = fun a -> a) ~t ~u (p : Pref.t) =
  let col alias a = Col (alias, attr a) in
  match p with
  | Pref.Pos (a, set) ->
    And (Not (value_in (col t a) set), value_in (col u a) set)
  | Pref.Neg (a, set) ->
    And (Not (value_in (col u a) set), value_in (col t a) set)
  | Pref.Pos_neg (a, pset, nset) ->
    let x = col t a and y = col u a in
    Or
      ( And (value_in x nset, Not (value_in y nset)),
        conj [ Not (value_in x nset); Not (value_in x pset); value_in y pset ]
      )
  | Pref.Pos_pos (a, p1, p2) ->
    let x = col t a and y = col u a in
    Or
      ( And (value_in x p2, value_in y p1),
        conj
          [
            Not (value_in x p1); Not (value_in x p2);
            Or (value_in y p2, value_in y p1);
          ] )
  | Pref.Explicit (a, closed) ->
    let x = col t a and y = col u a in
    let range =
      List.sort_uniq Value.compare
        (List.concat_map (fun (w, b) -> [ w; b ]) closed)
    in
    Or
      ( disj
          (List.map
             (fun (w, b) ->
               And (Cmp (x, Ast.Eq, Lit w), Cmp (y, Ast.Eq, Lit b)))
             closed),
        And (Not (value_in x range), value_in y range) )
  | Pref.Around (a, z) ->
    let dist alias = Abs (Sub (col alias a, Lit (Value.Float z))) in
    Cmp (dist t, Ast.Gt, dist u)
  | Pref.Between (a, low, up) ->
    let dist alias =
      let v = col alias a in
      Case
        ( [
            (Cmp (v, Ast.Lt, Lit (Value.Float low)), Sub (Lit (Value.Float low), v));
            (Cmp (v, Ast.Gt, Lit (Value.Float up)), Sub (v, Lit (Value.Float up)));
          ],
          Lit (Value.Float 0.) )
    in
    Cmp (dist t, Ast.Gt, dist u)
  | Pref.Lowest a -> Cmp (col t a, Ast.Gt, col u a)
  | Pref.Highest a -> Cmp (col t a, Ast.Lt, col u a)
  | Pref.Antichain _ -> False
  | Pref.Dual q -> lt_formula ~attr ~t:u ~u:t q
  | Pref.Pareto (q, r) ->
    let lt1 = lt_formula ~attr ~t ~u q and lt2 = lt_formula ~attr ~t ~u r in
    let eq p' =
      conj
        (List.map
           (fun a -> Cmp (col t a, Ast.Eq, col u a))
           (Pref.attrs p'))
    in
    Or (And (lt1, Or (lt2, eq r)), And (lt2, Or (lt1, eq q)))
  | Pref.Prior (q, r) ->
    let eq1 =
      conj
        (List.map (fun a -> Cmp (col t a, Ast.Eq, col u a)) (Pref.attrs q))
    in
    Or (lt_formula ~attr ~t ~u q, And (eq1, lt_formula ~attr ~t ~u r))
  | Pref.Inter (q, r) ->
    And (lt_formula ~attr ~t ~u q, lt_formula ~attr ~t ~u r)
  | Pref.Dunion (q, r) ->
    Or (lt_formula ~attr ~t ~u q, lt_formula ~attr ~t ~u r)
  | Pref.Lsum s ->
    (* the operands read their values from the combined attribute *)
    let sub q = lt_formula ~attr:(fun _ -> attr s.Pref.ls_attr) ~t ~u q in
    let x = col t s.Pref.ls_attr and y = col u s.Pref.ls_attr in
    disj
      [
        sub s.Pref.ls_left; sub s.Pref.ls_right;
        And (value_in x s.Pref.ls_right_dom, value_in y s.Pref.ls_left_dom);
      ]
  | Pref.Two_graphs s ->
    let x = col t s.Pref.tg_attr and y = col u s.Pref.tg_attr in
    let range edges singles =
      List.sort_uniq Value.compare
        (List.concat_map (fun (w, b) -> [ w; b ]) edges @ singles)
    in
    let pos = range s.Pref.tg_pos s.Pref.tg_pos_singles in
    let neg = range s.Pref.tg_neg s.Pref.tg_neg_singles in
    let edge_formula edges =
      disj
        (List.map
           (fun (w, b) -> And (Cmp (x, Ast.Eq, Lit w), Cmp (y, Ast.Eq, Lit b)))
           edges)
    in
    disj
      [
        And (value_in x neg, Not (value_in y neg));
        And (value_in x neg, edge_formula s.Pref.tg_neg);
        conj [ Not (value_in x neg); Not (value_in x pos); value_in y pos ];
        And (value_in x pos, edge_formula s.Pref.tg_pos);
      ]
  | Pref.Score _ | Pref.Rank _ ->
    raise
      (Not_expressible
         "SCORE / rank(F) carry arbitrary functions and have no SQL92 form")

let better_than ?attr ~t ~u p =
  try Some (lt_formula ?attr ~t:u ~u:t p) with Not_expressible _ -> None
(* note the swap: [better_than t u] must mean "t is better", i.e. u <_P t *)

(* ------------------------------------------------------------------ *)
(* Evaluation (for the differential tests)                             *)

let rec eval_expr lookup = function
  | Col (alias, a) -> lookup alias a
  | Lit v -> v
  | Abs e -> (
    match Value.as_float (eval_expr lookup e) with
    | Some f -> Value.Float (Float.abs f)
    | None -> Value.Null)
  | Sub (e1, e2) -> (
    match
      ( Value.as_float (eval_expr lookup e1),
        Value.as_float (eval_expr lookup e2) )
    with
    | Some a, Some b -> Value.Float (a -. b)
    | _ -> Value.Null)
  | Case (branches, default) ->
    let rec go = function
      | [] -> eval_expr lookup default
      | (cond, e) :: rest ->
        if eval_bexpr lookup cond then eval_expr lookup e else go rest
    in
    go branches

and eval_bexpr lookup = function
  | Cmp (e1, op, e2) ->
    let a = eval_expr lookup e1 and b = eval_expr lookup e2 in
    (* SQL three-valued logic collapsed to false on NULL operands, matching
       the core semantics for numeric comparisons *)
    if Value.is_null a || Value.is_null b then
      (* NULLs: numeric NULL sorts as worst in the core; approximate by
         treating NULL as minus infinity for </>, never equal *)
      (match op with
      | Ast.Eq -> Value.is_null a && Value.is_null b
      | Ast.Neq -> not (Value.is_null a && Value.is_null b)
      | Ast.Lt -> Value.is_null a && not (Value.is_null b)
      | Ast.Gt -> Value.is_null b && not (Value.is_null a)
      | Ast.Le -> Value.is_null a
      | Ast.Ge -> Value.is_null b)
    else Translate.compare_values op a b
  | In_set (e, set) ->
    let v = eval_expr lookup e in
    List.exists (Value.equal v) set
  | And (b1, b2) -> eval_bexpr lookup b1 && eval_bexpr lookup b2
  | Or (b1, b2) -> eval_bexpr lookup b1 || eval_bexpr lookup b2
  | Not b -> not (eval_bexpr lookup b)
  | True -> true
  | False -> false

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let quote v =
  match v with
  | Value.Str s ->
    "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Value.Date d -> Printf.sprintf "DATE '%04d-%02d-%02d'" d.Value.year d.Value.month d.Value.day
  | Value.Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else Printf.sprintf "%g" f
  | v -> Value.to_string v

let rec render_expr = function
  | Col (alias, a) -> alias ^ "." ^ a
  | Lit v -> quote v
  | Abs e -> "ABS(" ^ render_expr e ^ ")"
  | Sub (e1, e2) -> "(" ^ render_expr e1 ^ " - " ^ render_expr e2 ^ ")"
  | Case (branches, default) ->
    "CASE "
    ^ String.concat " "
        (List.map
           (fun (c, e) ->
             "WHEN " ^ render_bexpr c ^ " THEN " ^ render_expr e)
           branches)
    ^ " ELSE " ^ render_expr default ^ " END"

and render_bexpr = function
  | Cmp (e1, op, e2) ->
    render_expr e1 ^ " " ^ Ast.comparison_to_string op ^ " " ^ render_expr e2
  | In_set (e, set) ->
    render_expr e ^ " IN (" ^ String.concat ", " (List.map quote set) ^ ")"
  | And (b1, b2) -> "(" ^ render_bexpr b1 ^ " AND " ^ render_bexpr b2 ^ ")"
  | Or (b1, b2) -> "(" ^ render_bexpr b1 ^ " OR " ^ render_bexpr b2 ^ ")"
  | Not b -> "NOT (" ^ render_bexpr b ^ ")"
  | True -> "1 = 1"
  | False -> "1 = 0"

(* ------------------------------------------------------------------ *)
(* Whole-query rewriting                                               *)

let rewrite_query ?registry (q : Ast.query) =
  if q.Ast.but_only <> [] || q.Ast.grouping <> [] || q.Ast.top <> None
     || q.Ast.order_by <> []
  then None
  else
  match q.Ast.from with
  | [ table ] -> (
    match Exec.full_preference ?registry q with
    | None -> None
    | Some p -> (
      try
        let better_u_over_t = lt_formula ~t:"t" ~u:"u" p in
        let select =
          match q.Ast.select with
          | [ Ast.Star ] -> "t.*"
          | items ->
            String.concat ", "
              (List.filter_map
                 (function Ast.Star -> None | Ast.Column c -> Some ("t." ^ c))
                 items)
        in
        let hard alias =
          match q.Ast.where with
          | None -> None
          | Some c ->
            let qualified =
              Ast.map_condition_attrs (fun a -> alias ^ "." ^ a) c
            in
            Some (Pretty.condition_to_string qualified)
        in
        let inner_where =
          match hard "u" with
          | None -> render_bexpr better_u_over_t
          | Some h -> h ^ " AND " ^ render_bexpr better_u_over_t
        in
        let outer_where =
          let anti =
            Printf.sprintf "NOT EXISTS (SELECT 1 FROM %s u WHERE %s)" table
              inner_where
          in
          match hard "t" with
          | None -> anti
          | Some h -> h ^ " AND " ^ anti
        in
        Some
          (Printf.sprintf "SELECT %s FROM %s t WHERE %s" select table
             outer_where)
      with Not_expressible _ -> None))
  | _ -> None
