open Pref_relation
open Preferences

exception Error of string

type env = (string * Relation.t) list

let find_table env name =
  match List.assoc_opt name env with
  | Some r -> Some r
  | None ->
    (* table names are case-insensitive *)
    List.fold_left
      (fun acc (n, r) ->
        if acc = None && String.lowercase_ascii n = String.lowercase_ascii name
        then Some r
        else acc)
      None env

type result = {
  relation : Relation.t;
  preference : Pref.t option;  (** the translated preference term, for explain *)
}

let full_preference ?registry (q : Ast.query) =
  (* PREFERRING p CASCADE c1 CASCADE c2 = (p & c1) & c2 *)
  match q.Ast.preferring with
  | None -> (
    match q.Ast.cascade with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun acc c -> Pref.prior acc (Translate.pref ?registry c))
           (Translate.pref ?registry first)
           rest))
  | Some p ->
    Some
      (List.fold_left
         (fun acc c -> Pref.prior acc (Translate.pref ?registry c))
         (Translate.pref ?registry p)
         q.Ast.cascade)

(* ------------------------------------------------------------------ *)
(* FROM clause: single tables stay unqualified; joins qualify every     *)
(* column as table.column and pull equi-join conjuncts out of WHERE.    *)

let get_table env name =
  match find_table env name with
  | Some r -> r
  | None -> raise (Error (Printf.sprintf "unknown table %S" name))

let qualified env name =
  let r = get_table env name in
  Relation.rename_schema r (Schema.prefix name (Relation.schema r))

(* Split the WHERE conjuncts into equi-join predicates usable between the
   already-joined schema and the next table, and the rest. *)
let split_join_keys left_schema right_schema conjuncts =
  List.partition_map
    (fun c ->
      match c with
      | Ast.Cmp_attr (a, Ast.Eq, b) -> (
        let try_pair x y =
          match Schema.resolve left_schema x, Schema.resolve right_schema y with
          | Ok l, Ok r -> Some (l, r)
          | _ -> None
        in
        match try_pair a b with
        | Some (l, r) -> Either.Left (l, r)
        | None -> (
          match try_pair b a with
          | Some (l, r) -> Either.Left (l, r)
          | None -> Either.Right c))
      | c -> Either.Right c)
    conjuncts

let build_from env (q : Ast.query) =
  match q.Ast.from with
  | [] -> raise (Error "FROM requires at least one table")
  | [ t ] -> (get_table env t, q.Ast.where)
  | first :: rest ->
    let conjuncts =
      match q.Ast.where with Some c -> Ast.conjuncts c | None -> []
    in
    let joined, remaining =
      List.fold_left
        (fun (acc, conjuncts) t ->
          let r = qualified env t in
          let keys, rest =
            split_join_keys (Relation.schema acc) (Relation.schema r) conjuncts
          in
          match keys with
          | [] -> (Relation.product acc r, rest)
          | _ ->
            ( Relation.hash_join acc r ~left_cols:(List.map fst keys)
                ~right_cols:(List.map snd keys),
              rest ))
        (qualified env first, conjuncts)
        rest
    in
    (joined, Ast.conjoin remaining)

(* Resolve a possibly-qualified attribute name against the working schema.
   Over a single table a [table.column] reference naming that table is
   accepted and stripped. *)
let resolver (q : Ast.query) schema name =
  match Schema.resolve schema name with
  | Ok n -> n
  | Error msg -> (
    match q.Ast.from, String.index_opt name '.' with
    | [ t ], Some i when String.sub name 0 i = t -> (
      let bare = String.sub name (i + 1) (String.length name - i - 1) in
      match Schema.resolve schema bare with
      | Ok n -> n
      | Error msg -> raise (Error msg))
    | _ -> raise (Error msg))

let project_result resolve (q : Ast.query) rel =
  match q.Ast.select with
  | [ Ast.Star ] -> rel
  | items ->
    let cols =
      List.map
        (function
          | Ast.Star -> raise (Error "SELECT * cannot be mixed with columns")
          | Ast.Column c -> resolve c)
        items
    in
    Relation.project rel cols

let run_query ?registry ?(algorithm = Pref_bmo.Query.Alg_bnl) env (q : Ast.query)
    : result =
  let rel, where = build_from env q in
  let schema = Relation.schema rel in
  let resolve = resolver q schema in
  (* hard constraints first: the exact-match world *)
  let filtered =
    match where with
    | None -> rel
    | Some c ->
      Relation.select
        (Translate.condition schema (Ast.map_condition_attrs resolve c))
        rel
  in
  let preference =
    Option.map
      (fun p -> p)
      (full_preference ?registry
         {
           q with
           Ast.preferring = Option.map (Ast.map_pref_attrs resolve) q.Ast.preferring;
           cascade = List.map (Ast.map_pref_attrs resolve) q.Ast.cascade;
         })
  in
  let grouping = List.map resolve q.Ast.grouping in
  (* soft constraints: BMO match-making *)
  let after_pref =
    match preference with
    | None -> filtered
    | Some p -> (
      match q.Ast.top, grouping with
      | Some k, [] when Pref.is_scorable p ->
        (* the ranked query model of §6.2: k best by score *)
        Pref_bmo.Topk.kbest schema p ~k filtered
      | _, [] -> Pref_bmo.Query.sigma ~algorithm schema p filtered
      | _, by -> Pref_bmo.Query.sigma_groupby ~algorithm schema p ~by filtered)
  in
  (* BUT ONLY quality supervision *)
  let after_quality =
    match q.Ast.but_only, preference with
    | [], _ -> after_pref
    | qs, Some p ->
      Relation.select
        (Translate.quality_filter schema p
           (List.map (Ast.map_quality_attrs resolve) qs))
        after_pref
    | _ :: _, None -> raise (Error "BUT ONLY requires a PREFERRING clause")
  in
  (* presentation order *)
  let ordered =
    match q.Ast.order_by with
    | [] -> after_quality
    | keys ->
      let idx =
        List.map
          (fun (a, asc) -> (Schema.index_of_exn schema (resolve a), asc))
          keys
      in
      Relation.sort_by
        (fun t u ->
          let rec go = function
            | [] -> 0
            | (i, asc) :: rest ->
              let c = Value.compare (Tuple.get t i) (Tuple.get u i) in
              if c <> 0 then if asc then c else -c else go rest
          in
          go idx)
        after_quality
  in
  let after_quality = ordered in
  (* TOP k truncation for non-ranked results *)
  let truncated =
    match q.Ast.top, preference with
    | Some _, Some p when Pref.is_scorable p && grouping = [] ->
      after_quality (* already the k best *)
    | Some k, _ ->
      let rows = Relation.rows after_quality in
      let rec take n = function
        | [] -> []
        | r :: rest -> if n = 0 then [] else r :: take (n - 1) rest
      in
      Relation.make (Relation.schema after_quality) (take k rows)
    | None, _ -> after_quality
  in
  { relation = project_result resolve q truncated; preference }

let run ?registry ?algorithm env src =
  run_query ?registry ?algorithm env (Parser.parse_query src)
