open Pref_relation

let pp_lit ppf v = Value.pp_quoted ppf v

let pp_lits ppf vs =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_lit) vs

let rec pp_condition ppf (c : Ast.condition) =
  match c with
  | Ast.Cmp (a, op, v) ->
    Fmt.pf ppf "%s %s %a" a (Ast.comparison_to_string op) pp_lit v
  | Ast.Cmp_attr (a, op, b) ->
    Fmt.pf ppf "%s %s %s" a (Ast.comparison_to_string op) b
  | Ast.In (a, vs) -> Fmt.pf ppf "%s IN %a" a pp_lits vs
  | Ast.Not_in (a, vs) -> Fmt.pf ppf "%s NOT IN %a" a pp_lits vs
  | Ast.Between_cond (a, low, up) ->
    Fmt.pf ppf "%s BETWEEN %a AND %a" a pp_lit low pp_lit up
  | Ast.Like (a, p) -> Fmt.pf ppf "%s LIKE '%s'" a p
  | Ast.Is_null a -> Fmt.pf ppf "%s IS NULL" a
  | Ast.Is_not_null a -> Fmt.pf ppf "%s IS NOT NULL" a
  | Ast.And (c1, c2) -> Fmt.pf ppf "(%a AND %a)" pp_condition c1 pp_condition c2
  | Ast.Or (c1, c2) -> Fmt.pf ppf "(%a OR %a)" pp_condition c1 pp_condition c2
  | Ast.Not c1 -> Fmt.pf ppf "NOT (%a)" pp_condition c1

let rec pp_pref ppf (p : Ast.pref) =
  match p with
  | Ast.P_pos (a, [ v ]) -> Fmt.pf ppf "%s = %a" a pp_lit v
  | Ast.P_pos (a, vs) -> Fmt.pf ppf "%s IN %a" a pp_lits vs
  | Ast.P_neg (a, [ v ]) -> Fmt.pf ppf "%s <> %a" a pp_lit v
  | Ast.P_neg (a, vs) -> Fmt.pf ppf "%s NOT IN %a" a pp_lits vs
  | Ast.P_pos_pos (a, vs1, [ v ]) ->
    Fmt.pf ppf "%a ELSE %s = %a" pp_pref (Ast.P_pos (a, vs1)) a pp_lit v
  | Ast.P_pos_pos (a, vs1, vs2) ->
    Fmt.pf ppf "%a ELSE %s IN %a" pp_pref (Ast.P_pos (a, vs1)) a pp_lits vs2
  | Ast.P_pos_neg (a, vs, [ v ]) ->
    Fmt.pf ppf "%a ELSE %s <> %a" pp_pref (Ast.P_pos (a, vs)) a pp_lit v
  | Ast.P_pos_neg (a, vs, ns) ->
    Fmt.pf ppf "%a ELSE %s NOT IN %a" pp_pref (Ast.P_pos (a, vs)) a pp_lits ns
  | Ast.P_around (a, v) -> Fmt.pf ppf "%s AROUND %a" a pp_lit v
  | Ast.P_between (a, low, up) ->
    Fmt.pf ppf "%s BETWEEN %a AND %a" a pp_lit low pp_lit up
  | Ast.P_lowest a -> Fmt.pf ppf "LOWEST(%s)" a
  | Ast.P_highest a -> Fmt.pf ppf "HIGHEST(%s)" a
  | Ast.P_explicit (a, edges) ->
    Fmt.pf ppf "EXPLICIT(%s%a)" a
      Fmt.(
        list ~sep:nop (fun ppf (w, b) ->
            pf ppf ", (%a, %a)" pp_lit w pp_lit b))
      edges
  | Ast.P_score (a, f) -> Fmt.pf ppf "SCORE(%s, %s)" a f
  | Ast.P_rank (f, p1, p2) ->
    Fmt.pf ppf "RANK(%s, %a, %a)" f pp_pref p1 pp_pref p2
  | Ast.P_pareto (p1, p2) ->
    Fmt.pf ppf "%a AND %a" pp_pref_atom p1 pp_pref_atom p2
  | Ast.P_prior (p1, p2) ->
    Fmt.pf ppf "%a PRIOR TO %a" pp_pref_atom p1 pp_pref_atom p2
  | Ast.P_dual p -> Fmt.pf ppf "DUAL(%a)" pp_pref p

and pp_pref_atom ppf p =
  match p with
  | Ast.P_pareto _ | Ast.P_prior _ -> Fmt.pf ppf "(%a)" pp_pref p
  | _ -> pp_pref ppf p

let pp_quality ppf (q : Ast.quality) =
  match q with
  | Ast.Q_level (a, op, k) ->
    Fmt.pf ppf "LEVEL(%s) %s %d" a (Ast.comparison_to_string op) k
  | Ast.Q_distance (a, op, d) ->
    Fmt.pf ppf "DISTANCE(%s) %s %g" a (Ast.comparison_to_string op) d

let pp_query ppf (q : Ast.query) =
  let pp_select ppf = function
    | [ Ast.Star ] -> Fmt.string ppf "*"
    | items ->
      Fmt.(list ~sep:(any ", ") string)
        ppf
        (List.map (function Ast.Star -> "*" | Ast.Column c -> c) items)
  in
  Fmt.pf ppf "SELECT %a FROM %a" pp_select q.Ast.select
    Fmt.(list ~sep:(any ", ") string)
    q.Ast.from;
  Option.iter (Fmt.pf ppf " WHERE %a" pp_condition) q.Ast.where;
  Option.iter (Fmt.pf ppf " PREFERRING %a" pp_pref) q.Ast.preferring;
  List.iter (Fmt.pf ppf " CASCADE %a" pp_pref) q.Ast.cascade;
  (match q.Ast.but_only with
  | [] -> ()
  | qs -> Fmt.pf ppf " BUT ONLY %a" Fmt.(list ~sep:(any " AND ") pp_quality) qs);
  (match q.Ast.grouping with
  | [] -> ()
  | gs -> Fmt.pf ppf " GROUPING %a" Fmt.(list ~sep:(any ", ") string) gs);
  (match q.Ast.order_by with
  | [] -> ()
  | os ->
    Fmt.pf ppf " ORDER BY %a"
      Fmt.(
        list ~sep:(any ", ") (fun ppf (a, asc) ->
            pf ppf "%s%s" a (if asc then "" else " DESC")))
      os);
  Option.iter (Fmt.pf ppf " TOP %d") q.Ast.top

let query_to_string q = Fmt.str "%a" pp_query q
let pref_to_string p = Fmt.str "%a" pp_pref p
let condition_to_string c = Fmt.str "%a" pp_condition c
