lib/psql/sql92.mli: Ast Pref_relation Preferences Translate Value
