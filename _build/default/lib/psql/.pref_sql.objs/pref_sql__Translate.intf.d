lib/psql/translate.mli: Ast Pref_relation Preferences Schema Tuple Value
