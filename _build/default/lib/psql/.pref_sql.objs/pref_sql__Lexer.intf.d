lib/psql/lexer.mli: Token
