lib/psql/lexer.ml: Buffer List Printf String Token
