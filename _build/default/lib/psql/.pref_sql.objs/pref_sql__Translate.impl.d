lib/psql/translate.ml: Ast Char Float List Option Pref Pref_relation Preferences Printf Quality Schema String Tuple Value
