lib/psql/exec.ml: Ast Either List Option Parser Pref Pref_bmo Pref_relation Preferences Printf Relation Schema String Translate Tuple Value
