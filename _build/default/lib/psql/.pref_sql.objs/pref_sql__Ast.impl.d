lib/psql/ast.ml: List Pref_relation Preferences Value
