lib/psql/parser.ml: Array Ast Lexer List Pref_relation Printf String Token Value
