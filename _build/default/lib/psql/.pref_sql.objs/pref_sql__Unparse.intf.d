lib/psql/unparse.mli: Ast Preferences
