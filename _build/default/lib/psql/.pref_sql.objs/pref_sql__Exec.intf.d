lib/psql/exec.mli: Ast Pref_bmo Pref_relation Preferences Relation Translate
