lib/psql/unparse.ml: Ast Float Option Pref Pref_relation Preferences Pretty Value
