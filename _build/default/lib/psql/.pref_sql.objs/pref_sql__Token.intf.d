lib/psql/token.mli:
