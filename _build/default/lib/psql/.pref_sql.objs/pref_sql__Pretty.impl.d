lib/psql/pretty.ml: Ast Fmt List Option Pref_relation Value
