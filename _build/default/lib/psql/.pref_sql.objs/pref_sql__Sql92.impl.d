lib/psql/sql92.ml: Ast Exec Float List Pref Pref_relation Preferences Pretty Printf String Translate Value
