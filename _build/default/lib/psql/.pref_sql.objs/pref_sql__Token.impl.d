lib/psql/token.ml: Printf String
