lib/psql/pretty.mli: Ast Fmt
