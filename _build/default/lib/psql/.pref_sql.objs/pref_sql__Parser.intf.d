lib/psql/parser.mli: Ast
