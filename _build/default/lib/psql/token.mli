(** Preference SQL tokens. *)

type t =
  | Word of string
  | String of string
  | Int of int
  | Float of float
  | Sym of string
  | Eof

type located = {
  token : t;
  pos : int;
}

val to_string : t -> string

val equal : t -> t -> bool
(** Words compare case-insensitively. *)
