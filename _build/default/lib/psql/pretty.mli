(** Pretty-printing of Preference SQL ASTs back to query text (the parser
    accepts its own output — round-trip tested). *)

val pp_condition : Ast.condition Fmt.t
val pp_pref : Ast.pref Fmt.t
val pp_quality : Ast.quality Fmt.t
val pp_query : Ast.query Fmt.t

val query_to_string : Ast.query -> string
val pref_to_string : Ast.pref -> string
val condition_to_string : Ast.condition -> string
