type t =
  | Word of string  (** identifier or keyword; keywords match case-insensitively *)
  | String of string  (** single-quoted literal, quotes stripped *)
  | Int of int
  | Float of float
  | Sym of string  (** punctuation and operators: ( ) , ; * = <> < <= > >= . *)
  | Eof

type located = {
  token : t;
  pos : int;  (** byte offset in the query text, for error reporting *)
}

let to_string = function
  | Word w -> w
  | String s -> Printf.sprintf "'%s'" s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Sym s -> s
  | Eof -> "<end of query>"

let equal a b =
  match a, b with
  | Word x, Word y -> String.uppercase_ascii x = String.uppercase_ascii y
  | String x, String y -> String.equal x y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Eof, Eof -> true
  | (Word _ | String _ | Int _ | Float _ | Sym _ | Eof), _ -> false
