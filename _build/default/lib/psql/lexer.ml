exception Error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit pos token = tokens := { Token.token; pos } :: !tokens in
  let rec skip_ws i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        (* SQL line comment *)
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        skip_ws (eol (i + 2))
      | _ -> i
  in
  let rec scan i =
    let i = skip_ws i in
    if i >= n then emit i Token.Eof
    else
      let c = src.[i] in
      if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        emit i (Token.Word (String.sub src i (!j - i)));
        scan !j
      end
      else if is_digit c || (c = '.' && i + 1 < n && is_digit src.[i + 1]) then begin
        let j = ref i in
        let seen_dot = ref false and seen_exp = ref false in
        while
          !j < n
          &&
          let ch = src.[!j] in
          is_digit ch
          || (ch = '.' && (not !seen_dot) && not !seen_exp)
          || ((ch = 'e' || ch = 'E') && not !seen_exp)
          || ((ch = '+' || ch = '-')
             && !j > i
             && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E'))
        do
          if src.[!j] = '.' then seen_dot := true;
          if src.[!j] = 'e' || src.[!j] = 'E' then seen_exp := true;
          incr j
        done;
        let text = String.sub src i (!j - i) in
        (match int_of_string_opt text with
        | Some k -> emit i (Token.Int k)
        | None -> (
          match float_of_string_opt text with
          | Some f -> emit i (Token.Float f)
          | None -> raise (Error (Printf.sprintf "malformed number %S" text, i))));
        scan !j
      end
      else if c = '\'' then begin
        (* single-quoted string; '' escapes a quote *)
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Error ("unterminated string literal", i))
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let after = str (i + 1) in
        emit i (Token.String (Buffer.contents buf));
        scan after
      end
      else begin
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | "<>" | "<=" | ">=" | "!=" ->
          emit i (Token.Sym (if two = "!=" then "<>" else two));
          scan (i + 2)
        | _ -> (
          match c with
          | '(' | ')' | ',' | ';' | '*' | '=' | '<' | '>' | '.' ->
            emit i (Token.Sym (String.make 1 c));
            scan (i + 1)
          | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, i)))
      end
  in
  scan 0;
  List.rev !tokens
