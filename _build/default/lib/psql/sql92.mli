(** Rewriting preference queries into plain SQL92 (§6.1).

    The original Preference SQL shipped as a rewriter producing SQL92 for
    stock engines (DB2, Oracle 8i, MS SQL Server). This module reproduces
    that translation: σ[P](R) becomes a NOT EXISTS anti-join whose inner
    predicate is the 'better-than' formula of the preference term, built as
    an expression AST with both a SQL92 renderer and an evaluator — the
    evaluator is differentially tested against the core semantics, so the
    emitted SQL is verified, not just printed.

    SCORE and rank(F) preferences carry arbitrary functions and are not
    expressible; queries using BUT ONLY / GROUPING / TOP / ORDER BY or
    multiple tables are likewise refused ([None]). NULL handling differs
    from the core's "NULL is worst" convention the way real SQL engines
    would; the differential tests run on NULL-free data. *)

open Pref_relation

type expr =
  | Col of string * string
  | Lit of Value.t
  | Abs of expr
  | Sub of expr * expr
  | Case of (bexpr * expr) list * expr

and bexpr =
  | Cmp of expr * Ast.comparison * expr
  | In_set of expr * Value.t list
  | And of bexpr * bexpr
  | Or of bexpr * bexpr
  | Not of bexpr
  | True
  | False

exception Not_expressible of string

val lt_formula :
  ?attr:(string -> string) ->
  t:string ->
  u:string ->
  Preferences.Pref.t ->
  bexpr
(** The formula for [x <_P y] with [x] read through alias [t] and [y]
    through alias [u]. Raises {!Not_expressible} on SCORE / rank(F). *)

val better_than :
  ?attr:(string -> string) ->
  t:string ->
  u:string ->
  Preferences.Pref.t ->
  bexpr option
(** "[t]'s tuple is strictly better than [u]'s": [u <_P t]. *)

val eval_expr : (string -> string -> Value.t) -> expr -> Value.t
val eval_bexpr : (string -> string -> Value.t) -> bexpr -> bool
(** Evaluate with a lookup from (alias, attribute) to a value. *)

val render_expr : expr -> string
val render_bexpr : bexpr -> string
(** SQL92 text ([ABS], [CASE WHEN], [IN], [NOT EXISTS] come out as written
    by the classic rewriter). *)

val rewrite_query : ?registry:Translate.registry -> Ast.query -> string option
(** The full rewriting: [SELECT ... FROM R t WHERE hard(t) AND NOT EXISTS
    (SELECT 1 FROM R u WHERE hard(u) AND t <_P u)]. *)
