(** Hand-written lexer for Preference SQL.

    Supports identifiers, single-quoted strings (with [''] escaping), int
    and float literals (with exponents), the operator and punctuation set of
    the grammar, and [--] line comments. *)

exception Error of string * int
(** Message and byte offset. *)

val tokenize : string -> Token.located list
(** Always ends with an {!Token.Eof} token. Raises {!Error} on malformed
    input. *)
