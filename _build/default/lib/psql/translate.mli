(** Translation of Preference SQL surface syntax into the core model.

    Preference ASTs become {!Preferences.Pref} terms; hard conditions become
    tuple predicates; BUT ONLY qualities become result filters over the
    LEVEL/DISTANCE quality functions. *)

open Pref_relation

exception Error of string

type registry = {
  scores : (string * (Value.t -> float)) list;
  combiners : (string * (float -> float -> float)) list;
}

val default_registry : registry
(** Scores: [identity], [negate], [length]. Combiners: [sum], [min], [max],
    [product] (all monotone, TA-compatible). *)

val pref : ?registry:registry -> Ast.pref -> Preferences.Pref.t
(** Raises {!Error} on unknown registry names or non-numeric AROUND/BETWEEN
    arguments; date literals are converted to day counts. *)

val condition : Schema.t -> Ast.condition -> Tuple.t -> bool
(** Hard-constraint evaluation; comparisons and [IN]/[BETWEEN] are
    null-rejecting, [IS NULL] / [IS NOT NULL] observe nulls. Raises
    [Invalid_argument] for attributes missing from the schema. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_], case-insensitive. *)

val compare_values : Ast.comparison -> Value.t -> Value.t -> bool
(** One comparison step, shared with the Preference XPath evaluator. *)

val quality_filter :
  Schema.t -> Preferences.Pref.t -> Ast.quality list -> Tuple.t -> bool
(** The BUT ONLY filter. Raises {!Error} when a named attribute has no base
    preference with the requested quality function inside the term. *)
