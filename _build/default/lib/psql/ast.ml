open Pref_relation

type literal = Value.t

type comparison = Eq | Neq | Lt | Le | Gt | Ge

let comparison_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Hard constraints (the WHERE clause): the exact-match world. *)
type condition =
  | Cmp of string * comparison * literal
  | Cmp_attr of string * comparison * string
      (** attribute-to-attribute comparison; [a = b] doubles as an equi-join
          predicate across FROM tables *)
  | In of string * literal list
  | Not_in of string * literal list
  | Between_cond of string * literal * literal
  | Like of string * string  (** pattern with % (any run) and _ (any char) *)
  | Is_null of string
  | Is_not_null of string
  | And of condition * condition
  | Or of condition * condition
  | Not of condition

(* Soft constraints (the PREFERRING clause): preference terms, surface
   syntax. *)
type pref =
  | P_pos of string * literal list  (** [a = v], [a IN (...)] *)
  | P_neg of string * literal list  (** [a <> v], [a NOT IN (...)] *)
  | P_pos_pos of string * literal list * literal list  (** [... ELSE a = v] *)
  | P_pos_neg of string * literal list * literal list  (** [... ELSE a <> v] *)
  | P_around of string * literal
  | P_between of string * literal * literal
  | P_lowest of string
  | P_highest of string
  | P_explicit of string * (literal * literal) list
      (** EXPLICIT(a; (worse, better), ...) *)
  | P_score of string * string  (** SCORE(a, registered function name) *)
  | P_rank of string * pref * pref  (** RANK(combiner, p1, p2) *)
  | P_pareto of pref * pref  (** AND *)
  | P_prior of pref * pref  (** PRIOR TO *)
  | P_dual of pref  (** DUAL(p) *)

(* BUT ONLY quality conditions. *)
type quality =
  | Q_level of string * comparison * int  (** LEVEL(attr) <= k *)
  | Q_distance of string * comparison * float  (** DISTANCE(attr) <= d *)

type select_item = Star | Column of string

type query = {
  select : select_item list;
  from : string list;
      (** FROM table list; several tables are joined (equi-join conditions
          are pulled out of WHERE, the rest is a filtered product) *)
  where : condition option;
  preferring : pref option;
  cascade : pref list;  (** each CASCADE level is prioritized below the last *)
  but_only : quality list;  (** conjunction *)
  grouping : string list;  (** GROUPING a, b — Definition 16 *)
  order_by : (string * bool) list;
      (** presentation order of the result; [true] = ascending *)
  top : int option;  (** TOP k — the ranked query model of §6.2 *)
}

let rec pref_attrs = function
  | P_pos (a, _) | P_neg (a, _) | P_pos_pos (a, _, _) | P_pos_neg (a, _, _)
  | P_around (a, _) | P_between (a, _, _) | P_lowest a | P_highest a
  | P_explicit (a, _) | P_score (a, _) ->
    [ a ]
  | P_rank (_, p, q) | P_pareto (p, q) | P_prior (p, q) ->
    Preferences.Attr.union (pref_attrs p) (pref_attrs q)
  | P_dual p -> pref_attrs p

let rec condition_attrs = function
  | Cmp (a, _, _) | In (a, _) | Not_in (a, _) | Between_cond (a, _, _)
  | Like (a, _) | Is_null a | Is_not_null a ->
    [ a ]
  | Cmp_attr (a, _, b) -> Preferences.Attr.union [ a ] [ b ]
  | And (c1, c2) | Or (c1, c2) ->
    Preferences.Attr.union (condition_attrs c1) (condition_attrs c2)
  | Not c -> condition_attrs c

(* Rename every attribute reference — used to resolve unqualified names
   against a joined schema. *)
let rec map_condition_attrs f = function
  | Cmp (a, op, v) -> Cmp (f a, op, v)
  | Cmp_attr (a, op, b) -> Cmp_attr (f a, op, f b)
  | In (a, vs) -> In (f a, vs)
  | Not_in (a, vs) -> Not_in (f a, vs)
  | Between_cond (a, low, up) -> Between_cond (f a, low, up)
  | Like (a, p) -> Like (f a, p)
  | Is_null a -> Is_null (f a)
  | Is_not_null a -> Is_not_null (f a)
  | And (c1, c2) -> And (map_condition_attrs f c1, map_condition_attrs f c2)
  | Or (c1, c2) -> Or (map_condition_attrs f c1, map_condition_attrs f c2)
  | Not c -> Not (map_condition_attrs f c)

let rec map_pref_attrs f = function
  | P_pos (a, vs) -> P_pos (f a, vs)
  | P_neg (a, vs) -> P_neg (f a, vs)
  | P_pos_pos (a, v1, v2) -> P_pos_pos (f a, v1, v2)
  | P_pos_neg (a, vs, ns) -> P_pos_neg (f a, vs, ns)
  | P_around (a, v) -> P_around (f a, v)
  | P_between (a, low, up) -> P_between (f a, low, up)
  | P_lowest a -> P_lowest (f a)
  | P_highest a -> P_highest (f a)
  | P_explicit (a, edges) -> P_explicit (f a, edges)
  | P_score (a, name) -> P_score (f a, name)
  | P_rank (name, p1, p2) ->
    P_rank (name, map_pref_attrs f p1, map_pref_attrs f p2)
  | P_pareto (p1, p2) -> P_pareto (map_pref_attrs f p1, map_pref_attrs f p2)
  | P_prior (p1, p2) -> P_prior (map_pref_attrs f p1, map_pref_attrs f p2)
  | P_dual p -> P_dual (map_pref_attrs f p)

let map_quality_attrs f = function
  | Q_level (a, op, k) -> Q_level (f a, op, k)
  | Q_distance (a, op, d) -> Q_distance (f a, op, d)

(* Flatten a top-level conjunction into its conjunct list. *)
let rec conjuncts = function
  | And (c1, c2) -> conjuncts c1 @ conjuncts c2
  | c -> [ c ]

let conjoin = function
  | [] -> None
  | c :: rest -> Some (List.fold_left (fun acc c -> And (acc, c)) c rest)
