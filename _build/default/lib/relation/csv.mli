(** CSV loading and saving with column-type inference.

    The first line is the header. Column types are inferred from the data
    (int, float, date [YYYY-MM-DD] or [YYYY/MM/DD], bool, falling back to
    string); empty fields and ["NULL"] become {!Value.Null}. Quoting follows
    RFC 4180 (double quotes, doubled to escape). *)

val parse_string : string -> Relation.t
(** Raises [Invalid_argument] on empty input. *)

val load : string -> Relation.t
(** Load a CSV file. Raises [Sys_error] on I/O failure. *)

val to_string : Relation.t -> string
val save : string -> Relation.t -> unit

val split_line : string -> string list
(** Exposed for testing: split one CSV record into raw fields. *)
