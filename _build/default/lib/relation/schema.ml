type t = (string * Value.ty) list

let empty = []
let make cols = cols

let arity (s : t) = List.length s
let names (s : t) = List.map fst s
let types (s : t) = List.map snd s

let mem (s : t) name = List.mem_assoc name s

let index_of (s : t) name =
  let rec go i = function
    | [] -> None
    | (n, _) :: _ when String.equal n name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 s

let index_of_exn s name =
  match index_of s name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema: unknown attribute %S" name)

let type_of (s : t) name = List.assoc_opt name s

let project (s : t) attrs =
  List.map
    (fun a ->
      match type_of s a with
      | Some ty -> (a, ty)
      | None -> invalid_arg (Printf.sprintf "Schema.project: unknown attribute %S" a))
    attrs

let equal (a : t) (b : t) =
  List.length a = List.length b
  && List.for_all2 (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && t1 = t2) a b

let union (a : t) (b : t) =
  a
  @ List.filter
      (fun (n, ty) ->
        match type_of a n with
        | None -> true
        | Some ty' ->
          if ty = ty' then false
          else
            invalid_arg
              (Printf.sprintf "Schema.union: attribute %S has conflicting types" n))
      b

let prefix name (s : t) =
  List.map (fun (n, ty) -> (name ^ "." ^ n, ty)) s

(* Resolve a possibly unqualified attribute against a schema whose columns
   may be qualified ("table.column").  Exact matches win; otherwise a
   unique ".name" suffix match resolves, anything else is an error. *)
let resolve (s : t) name =
  if mem s name then Ok name
  else
    let suffix = "." ^ name in
    let matches =
      List.filter
        (fun (n, _) ->
          let nl = String.length n and sl = String.length suffix in
          nl >= sl && String.sub n (nl - sl) sl = suffix)
        s
    in
    match matches with
    | [ (n, _) ] -> Ok n
    | [] -> Error (Printf.sprintf "unknown attribute %S" name)
    | _ :: _ :: _ ->
      Error
        (Printf.sprintf "ambiguous attribute %S (matches %s)" name
           (String.concat ", " (List.map fst matches)))

let pp ppf (s : t) =
  Fmt.pf ppf "(%a)"
    Fmt.(list ~sep:(any ", ") (fun ppf (n, ty) -> pf ppf "%s: %a" n Value.pp_ty ty))
    s
