let split_line line =
  (* RFC-4180-ish: commas split fields; double quotes protect commas and
     embedded quotes are doubled. *)
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let rec scan i in_quotes =
    if i >= n then begin
      fields := Buffer.contents buf :: !fields
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            scan (i + 2) true
          end
          else scan (i + 1) false
        else begin
          Buffer.add_char buf c;
          scan (i + 1) true
        end
      else if c = '"' then scan (i + 1) true
      else if c = ',' then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        scan (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        scan (i + 1) false
      end
  in
  scan 0 false;
  List.rev !fields

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let lines_of_string s =
  String.split_on_char '\n' s
  |> List.map strip_cr
  |> List.filter (fun l -> String.trim l <> "")

let unify_ty a b =
  let open Value in
  match a, b with
  | None, x | x, None -> x
  | Some a, Some b when a = b -> Some a
  | Some TInt, Some TFloat | Some TFloat, Some TInt -> Some TFloat
  | Some _, Some _ -> Some TStr

let infer_schema header rows =
  let ncols = List.length header in
  let tys = Array.make ncols None in
  List.iter
    (fun fields ->
      List.iteri
        (fun i field ->
          if i < ncols then
            tys.(i) <- unify_ty tys.(i) (Value.type_of (Value.infer field)))
        fields)
    rows;
  List.mapi
    (fun i name ->
      (name, match tys.(i) with Some ty -> ty | None -> Value.TStr))
    header

let parse_string s =
  match lines_of_string s with
  | [] -> invalid_arg "Csv.parse_string: empty input"
  | header_line :: data_lines ->
    let header = List.map String.trim (split_line header_line) in
    let raw_rows = List.map split_line data_lines in
    let schema = infer_schema header raw_rows in
    let parse_row fields =
      let padded =
        let missing = List.length header - List.length fields in
        if missing > 0 then fields @ List.init missing (fun _ -> "")
        else fields
      in
      Tuple.make
        (List.map2
           (fun (_, ty) field ->
             let trimmed = String.trim field in
             if trimmed = "" || String.uppercase_ascii trimmed = "NULL" then
               Value.Null
             else
               match Value.of_string_as ty field with
               | Some v -> v
               | None -> Value.Str field)
           schema padded)
    in
    Relation.make schema (List.map parse_row raw_rows)

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse_string s

let quote_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_string r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat "," (List.map quote_field (Schema.names (Relation.schema r))));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      let cells =
        List.map (fun v -> quote_field (Value.to_string v)) (Tuple.to_list row)
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    (Relation.rows r);
  Buffer.contents buf

let save path r =
  let oc = open_out path in
  output_string oc (to_string r);
  close_out oc
