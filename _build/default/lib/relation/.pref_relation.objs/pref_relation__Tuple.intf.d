lib/relation/tuple.mli: Fmt Schema Value
