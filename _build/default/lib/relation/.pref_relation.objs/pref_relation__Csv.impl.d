lib/relation/csv.ml: Array Buffer List Relation Schema String Tuple Value
