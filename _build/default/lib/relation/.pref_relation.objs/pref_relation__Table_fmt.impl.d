lib/relation/table_fmt.ml: Buffer Fmt List Printf Relation Schema String Tuple Value
