lib/relation/table_fmt.mli: Fmt Relation
