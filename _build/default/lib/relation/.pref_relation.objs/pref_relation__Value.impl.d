lib/relation/value.ml: Bool Float Fmt Hashtbl Int Option Printf String
