lib/relation/csv.mli: Relation
