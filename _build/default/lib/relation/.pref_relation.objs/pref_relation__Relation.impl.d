lib/relation/relation.ml: Array Fmt Hashtbl List Option Printf Schema String Tuple Value
