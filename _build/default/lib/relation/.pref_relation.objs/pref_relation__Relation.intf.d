lib/relation/relation.mli: Fmt Schema Tuple Value
