lib/relation/schema.ml: Fmt List Printf String Value
