lib/relation/tuple.ml: Array Fmt Hashtbl Int List Schema Value
