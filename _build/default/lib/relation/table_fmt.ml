let render ?(max_rows = 50) r =
  let schema = Relation.schema r in
  let names = Schema.names schema in
  let rows = Relation.rows r in
  let shown, elided =
    let n = List.length rows in
    if n <= max_rows then (rows, 0)
    else (List.filteri (fun i _ -> i < max_rows) rows, n - max_rows)
  in
  let cells = List.map (fun row -> List.map Value.to_string (Tuple.to_list row)) shown in
  let widths =
    List.mapi
      (fun i name ->
        List.fold_left
          (fun acc cs -> max acc (String.length (List.nth cs i)))
          (String.length name) cells)
      names
  in
  let buf = Buffer.create 1024 in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let rule () =
    Buffer.add_string buf
      ("+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+\n")
  in
  let line cs =
    Buffer.add_string buf
      ("| "
      ^ String.concat " | " (List.map2 pad cs widths)
      ^ " |\n")
  in
  rule ();
  line names;
  rule ();
  List.iter line cells;
  rule ();
  if elided > 0 then
    Buffer.add_string buf (Printf.sprintf "... %d more rows\n" elided);
  Buffer.contents buf

let print ?max_rows r = print_string (render ?max_rows r)

let pp ppf r = Fmt.string ppf (render r)
