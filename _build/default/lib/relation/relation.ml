type t = {
  schema : Schema.t;
  rows : Tuple.t list;
}

let schema r = r.schema
let rows r = r.rows
let cardinality r = List.length r.rows
let is_empty r = r.rows = []

let check_row schema row =
  if Tuple.arity row <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Relation: row arity %d does not match schema arity %d"
         (Tuple.arity row) (Schema.arity schema));
  List.iteri
    (fun i (name, ty) ->
      let v = Tuple.get row i in
      match Value.type_of v with
      | None -> () (* NULL fits any column *)
      | Some ty' ->
        let compatible =
          ty = ty'
          || (ty = Value.TFloat && ty' = Value.TInt) (* ints widen to float *)
        in
        if not compatible then
          invalid_arg
            (Printf.sprintf
               "Relation: column %S expects %s but row carries %s value %s" name
               (Value.ty_to_string ty) (Value.ty_to_string ty')
               (Value.to_string v)))
    schema

let make schema rows =
  List.iter (check_row schema) rows;
  { schema; rows }

let of_lists schema lists = make schema (List.map Tuple.make lists)

let empty schema = { schema; rows = [] }

let add_row r row =
  check_row r.schema row;
  { r with rows = r.rows @ [ row ] }

let mem r row = List.exists (Tuple.equal row) r.rows

let distinct r =
  let seen = Hashtbl.create (List.length r.rows) in
  let keep row =
    let k = List.map Value.to_string (Tuple.to_list row) in
    if Hashtbl.mem seen k then false
    else begin
      Hashtbl.add seen k ();
      true
    end
  in
  { r with rows = List.filter keep r.rows }

let project r attrs =
  let schema = Schema.project r.schema attrs in
  { schema; rows = List.map (fun t -> Tuple.project r.schema t attrs) r.rows }

let project_distinct r attrs = distinct (project r attrs)

let select p r = { r with rows = List.filter p r.rows }

let map_rows f r = { r with rows = List.map f r.rows }

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.union: schema mismatch";
  { a with rows = a.rows @ List.filter (fun row -> not (mem a row)) b.rows }

let inter a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.inter: schema mismatch";
  { a with rows = List.filter (mem b) a.rows }

let diff a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.diff: schema mismatch";
  { a with rows = List.filter (fun row -> not (mem b row)) a.rows }

let equal_as_sets a b =
  Schema.equal a.schema b.schema
  && List.for_all (mem b) a.rows
  && List.for_all (mem a) b.rows

let group_by r attrs =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let key =
        List.map (fun a -> Value.to_string (Tuple.get_by_name r.schema row a)) attrs
      in
      (match Hashtbl.find_opt tbl key with
      | None ->
        order := key :: !order;
        Hashtbl.add tbl key [ row ]
      | Some rs -> Hashtbl.replace tbl key (row :: rs)))
    r.rows;
  List.rev_map
    (fun key -> { r with rows = List.rev (Hashtbl.find tbl key) })
    !order

let sort_by cmp r = { r with rows = List.sort cmp r.rows }

let rename_schema r schema' =
  if Schema.arity schema' <> Schema.arity r.schema then
    invalid_arg "Relation.rename_schema: arity mismatch";
  { r with schema = schema' }

let product a b =
  let schema = Schema.union a.schema b.schema in
  if Schema.arity schema <> Schema.arity a.schema + Schema.arity b.schema then
    invalid_arg "Relation.product: overlapping column names";
  let rows =
    List.concat_map
      (fun ra ->
        List.map (fun rb -> Array.append ra rb) b.rows)
      a.rows
  in
  { schema; rows }

let hash_join a b ~left_cols ~right_cols =
  if List.length left_cols <> List.length right_cols || left_cols = [] then
    invalid_arg "Relation.hash_join: key column lists must match and be non-empty";
  let left_idx = List.map (Schema.index_of_exn a.schema) left_cols in
  let right_idx = List.map (Schema.index_of_exn b.schema) right_cols in
  let schema = Schema.union a.schema b.schema in
  if Schema.arity schema <> Schema.arity a.schema + Schema.arity b.schema then
    invalid_arg "Relation.hash_join: overlapping column names";
  (* a key compatible with Value.equal (ints and floats join numerically) *)
  let value_key v =
    match v with
    | Value.Null -> "n"
    | Value.Bool b -> "b" ^ string_of_bool b
    | Value.Int i -> "f" ^ string_of_float (float_of_int i)
    | Value.Float f -> "f" ^ string_of_float f
    | Value.Str s -> "s" ^ s
    | Value.Date d -> "d" ^ string_of_int (Value.date_to_days d)
  in
  let key idxs row =
    (* length-prefixed concatenation: unambiguous even when string values
       contain the separator *)
    String.concat ""
      (List.map
         (fun i ->
           let k = value_key (Tuple.get row i) in
           string_of_int (String.length k) ^ ":" ^ k)
         idxs)
  in
  let tbl = Hashtbl.create (List.length b.rows) in
  List.iter
    (fun rb ->
      let k = key right_idx rb in
      Hashtbl.replace tbl k (rb :: Option.value (Hashtbl.find_opt tbl k) ~default:[]))
    b.rows;
  let rows =
    List.concat_map
      (fun ra ->
        (* null keys never join, as in SQL *)
        if List.exists (fun i -> Value.is_null (Tuple.get ra i)) left_idx then []
        else
          match Hashtbl.find_opt tbl (key left_idx ra) with
          | Some matches ->
            List.rev_map (fun rb -> Array.append ra rb) matches
          | None -> [])
      a.rows
  in
  { schema; rows }

let column r name =
  let i = Schema.index_of_exn r.schema name in
  List.map (fun row -> Tuple.get row i) r.rows

let fold f init r = List.fold_left f init r.rows

let pp ppf r =
  Fmt.pf ppf "%a [%d rows]" Schema.pp r.schema (cardinality r)
