(** In-memory relations (the paper's "database sets" [R], §5.1).

    A relation is a schema plus a row list. Rows are validated against the
    schema on construction. Set-flavoured operations ([union], [inter],
    [diff], [equal_as_sets]) use tuple value equality, matching the paper's
    treatment of database sets as sets of values; duplicate rows are allowed
    and preserved unless [distinct] is applied. *)

type t

val make : Schema.t -> Tuple.t list -> t
(** Raises [Invalid_argument] if a row does not fit the schema. Integer
    values are accepted in float columns. *)

val of_lists : Schema.t -> Value.t list list -> t
val empty : Schema.t -> t

val schema : t -> Schema.t
val rows : t -> Tuple.t list
val cardinality : t -> int
val is_empty : t -> bool

val add_row : t -> Tuple.t -> t
val mem : t -> Tuple.t -> bool

val distinct : t -> t
(** Remove duplicate rows, keeping first occurrences. *)

val project : t -> string list -> t
(** [R[A]]: projection onto the named attributes, duplicates preserved. *)

val project_distinct : t -> string list -> t
(** Set-semantics projection — the paper's [R[A] ⊆ dom(A)]. *)

val select : (Tuple.t -> bool) -> t -> t
val map_rows : (Tuple.t -> Tuple.t) -> t -> t

val union : t -> t -> t
(** Set union (no duplicates introduced); raises on schema mismatch. *)

val inter : t -> t -> t
val diff : t -> t -> t

val equal_as_sets : t -> t -> bool

val group_by : t -> string list -> t list
(** Partition rows into groups with equal values on the named attributes,
    preserving first-appearance order of groups — the grouped evaluation of
    Definition 16. *)

val sort_by : (Tuple.t -> Tuple.t -> int) -> t -> t

(** Reinterpret the rows under a schema of the same arity (e.g. one with
    qualified column names); raises on arity mismatch. *)
val rename_schema : t -> Schema.t -> t

(** Cartesian product; raises [Invalid_argument] on overlapping column
    names (qualify them first with {!Schema.prefix}). *)
val product : t -> t -> t

(** Equi-join on the given key columns (hash-based, SQL semantics: NULL
    keys never join). Raises on empty/unequal key lists or overlapping
    column names. *)
val hash_join : t -> t -> left_cols:string list -> right_cols:string list -> t
val column : t -> string -> Value.t list
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc

val pp : t Fmt.t
(** Short summary ("schema [n rows]"); use {!Table_fmt} for full tables. *)
