(** Relation schemas: ordered lists of named, typed attributes.

    This is the paper's set [A = {A1: data_type1, ..., Ak: data_typek}]
    (Definition 1), concretised with a fixed column order so tuples can be
    stored as arrays. *)

type t = (string * Value.ty) list

val empty : t
val make : (string * Value.ty) list -> t

val arity : t -> int
val names : t -> string list
val types : t -> Value.ty list
val mem : t -> string -> bool

val index_of : t -> string -> int option
val index_of_exn : t -> string -> int
(** Raises [Invalid_argument] for an unknown attribute. *)

val type_of : t -> string -> Value.ty option

val project : t -> string list -> t
(** Sub-schema in the order of the requested attribute names; raises
    [Invalid_argument] on unknown attributes. *)

val equal : t -> t -> bool

val union : t -> t -> t
(** Attributes of the first schema followed by the new attributes of the
    second; raises [Invalid_argument] on a name carried at two different
    types. *)

val prefix : string -> t -> t
(** Qualify every column name with ["name."] — used when joining tables. *)

val resolve : t -> string -> (string, string) result
(** Resolve a possibly unqualified name against (possibly qualified)
    columns: exact match first, then a unique [".name"] suffix match.
    Errors describe unknown and ambiguous names. *)

val pp : t Fmt.t
