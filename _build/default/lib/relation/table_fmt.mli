(** ASCII table rendering of relations, for CLIs, examples and benches. *)

val render : ?max_rows:int -> Relation.t -> string
(** Render with column-aligned borders; at most [max_rows] rows (default 50),
    with a trailing "... n more rows" note when truncated. *)

val print : ?max_rows:int -> Relation.t -> unit
val pp : Relation.t Fmt.t
