(** Evaluation of Preference XPath queries over an XML document.

    Hard predicates filter node sets exactly; soft predicates run a BMO
    preference query over the node set of their location step: nodes become
    tuples over the preference's attributes (values parsed from attribute
    strings with type inference, missing attributes as NULL), the best
    matching nodes — and only those — survive. *)

val value_of_attr : Xml.t -> string -> Pref_relation.Value.t

val eval_hard : Xml.t -> Past.hard -> bool

val eval_soft :
  ?registry:Pref_sql.Translate.registry ->
  Xml.t list ->
  Pref_sql.Ast.pref ->
  Xml.t list
(** The BMO filter over one node set; node order preserved. *)

val eval_path :
  ?registry:Pref_sql.Translate.registry -> Xml.t -> Past.path -> Xml.t list
(** Evaluate a parsed path against the root element. *)

val run :
  ?registry:Pref_sql.Translate.registry -> Xml.t -> string -> Xml.t list
(** Parse and evaluate. Raises {!Pparser.Error} on syntax errors. *)
