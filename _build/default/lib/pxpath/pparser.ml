open Pref_relation
module Sql_ast = Pref_sql.Ast

exception Error of string * int

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Word of string
  | Str of string
  | Num of float
  | Int of int
  | Sym of string
  | Eof

type ltoken = { tok : token; pos : int }

let token_to_string = function
  | Word w -> w
  | Str s -> Printf.sprintf "%S" s
  | Num f -> Printf.sprintf "%g" f
  | Int i -> string_of_int i
  | Sym s -> s
  | Eof -> "<end of query>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit pos tok = out := { tok; pos } :: !out in
  let rec scan i =
    if i >= n then emit i Eof
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '#' when i + 1 < n && src.[i + 1] = '[' ->
        emit i (Sym "#[");
        scan (i + 2)
      | ']' when i + 1 < n && src.[i + 1] = '#' ->
        emit i (Sym "]#");
        scan (i + 2)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        emit i (Sym "//");
        scan (i + 2)
      | '/' ->
        emit i (Sym "/");
        scan (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
        emit i (Sym "!=");
        scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '>' ->
        emit i (Sym "!=");
        scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' ->
        emit i (Sym "<=");
        scan (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
        emit i (Sym ">=");
        scan (i + 2)
      | ('[' | ']' | '(' | ')' | '@' | ',' | '=' | '<' | '>' | '*') as c ->
        emit i (Sym (String.make 1 c));
        scan (i + 1)
      | ('"' | '\'') as quote ->
        let rec find j =
          if j >= n then raise (Error ("unterminated string literal", i))
          else if src.[j] = quote then j
          else find (j + 1)
        in
        let close = find (i + 1) in
        emit i (Str (String.sub src (i + 1) (close - i - 1)));
        scan (close + 1)
      | c when is_digit c ->
        let j = ref i in
        let dot = ref false in
        while
          !j < n && (is_digit src.[!j] || (src.[!j] = '.' && not !dot))
        do
          if src.[!j] = '.' then dot := true;
          incr j
        done;
        let text = String.sub src i (!j - i) in
        (match int_of_string_opt text with
        | Some k -> emit i (Int k)
        | None -> emit i (Num (float_of_string text)));
        scan !j
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        emit i (Word (String.sub src i (!j - i)));
        scan !j
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  scan 0;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

type state = {
  tokens : ltoken array;
  mutable i : int;
}

let peek st = st.tokens.(st.i).tok
let pos st = st.tokens.(st.i).pos
let advance st = if st.i < Array.length st.tokens - 1 then st.i <- st.i + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (token_to_string (peek st)), pos st))

let is_word st kw =
  match peek st with Word w -> String.lowercase_ascii w = kw | _ -> false

let try_word st kw =
  if is_word st kw then begin
    advance st;
    true
  end
  else false

let eat_word st kw =
  if not (try_word st kw) then fail st (Printf.sprintf "expected '%s'" kw)

let is_sym st s = match peek st with Sym x -> String.equal x s | _ -> false

let try_sym st s =
  if is_sym st s then begin
    advance st;
    true
  end
  else false

let eat_sym st s =
  if not (try_sym st s) then fail st (Printf.sprintf "expected '%s'" s)

let ident st =
  match peek st with
  | Word w ->
    advance st;
    String.lowercase_ascii w
  | _ -> fail st "expected a name"

let literal st =
  match peek st with
  | Int i ->
    advance st;
    Value.Int i
  | Num f ->
    advance st;
    Value.Float f
  | Str s -> (
    advance st;
    match Value.of_string_as Value.TDate s with
    | Some d -> d
    | None -> Value.Str s)
  | _ -> fail st "expected a literal"

let literal_list st =
  eat_sym st "(";
  let rec go acc =
    let v = literal st in
    if try_sym st "," then go (v :: acc)
    else begin
      eat_sym st ")";
      List.rev (v :: acc)
    end
  in
  go []

let comparison st =
  match peek st with
  | Sym "=" ->
    advance st;
    Sql_ast.Eq
  | Sym "!=" ->
    advance st;
    Sql_ast.Neq
  | Sym "<" ->
    advance st;
    Sql_ast.Lt
  | Sym "<=" ->
    advance st;
    Sql_ast.Le
  | Sym ">" ->
    advance st;
    Sql_ast.Gt
  | Sym ">=" ->
    advance st;
    Sql_ast.Ge
  | _ -> fail st "expected a comparison operator"

(* hard predicates inside [ ... ] *)
let rec hard st = hard_or st

and hard_or st =
  let left = hard_and st in
  if try_word st "or" then Past.H_or (left, hard_or st) else left

and hard_and st =
  let left = hard_not st in
  if try_word st "and" then Past.H_and (left, hard_and st) else left

and hard_not st =
  if try_word st "not" then begin
    eat_sym st "(";
    let h = hard st in
    eat_sym st ")";
    Past.H_not h
  end
  else if try_sym st "(" then begin
    let h = hard st in
    eat_sym st ")";
    h
  end
  else begin
    (* @attribute or bare child-element name *)
    ignore (try_sym st "@");
    let a = ident st in
    match peek st with
    | Sym ("=" | "!=" | "<" | "<=" | ">" | ">=") ->
      let op = comparison st in
      Past.H_cmp (a, op, literal st)
    | _ -> Past.H_exists a
  end

(* soft preferences inside #[ ... ]#, producing the shared SQL pref AST *)
let rec pref st = prior_pref st

and prior_pref st =
  let left = pareto_pref st in
  if try_word st "prior" then begin
    eat_word st "to";
    Sql_ast.P_prior (left, prior_pref st)
  end
  else left

and pareto_pref st =
  let left = pref_atom st in
  if try_word st "and" then Sql_ast.P_pareto (left, pareto_pref st) else left

and pref_atom st =
  if try_word st "dual" then begin
    eat_sym st "(";
    let p = pref st in
    eat_sym st ")";
    Sql_ast.P_dual p
  end
  else if try_sym st "(" then
    if try_sym st "@" then begin
      let a = ident st in
      eat_sym st ")";
      attr_spec st a
    end
    else begin
      (* '(name)' followed by a spec is a child-element preference;
         anything else is a parenthesised preference *)
      match peek st with
      | Word w
        when (match st.tokens.(st.i + 1).tok with
             | Sym ")" -> true
             | _ -> false)
             && not
                  (List.mem (String.lowercase_ascii w)
                     [ "dual" ]) ->
        let a = ident st in
        eat_sym st ")";
        attr_spec st a
      | _ ->
        let p = pref st in
        eat_sym st ")";
        p
    end
  else fail st "expected '(@attr) spec' or a parenthesised preference"

and attr_spec st a =
  if try_word st "highest" then Sql_ast.P_highest a
  else if try_word st "lowest" then Sql_ast.P_lowest a
  else if try_word st "around" then Sql_ast.P_around (a, literal st)
  else if try_word st "between" then begin
    let low = literal st in
    eat_word st "and";
    let up = literal st in
    Sql_ast.P_between (a, low, up)
  end
  else if try_word st "in" then begin
    let vs = literal_list st in
    else_clause st a vs
  end
  else if try_word st "not" then begin
    eat_word st "in";
    Sql_ast.P_neg (a, literal_list st)
  end
  else if try_sym st "=" then begin
    let v = literal st in
    else_clause st a [ v ]
  end
  else if try_sym st "!=" then Sql_ast.P_neg (a, [ literal st ])
  else fail st "expected a preference operator after the attribute"

and else_clause st a pos_set =
  if try_word st "else" then begin
    eat_sym st "(";
    eat_sym st "@";
    let a' = ident st in
    eat_sym st ")";
    if a' <> a then
      fail st
        (Printf.sprintf "else must refer to the same attribute (%s vs %s)" a a');
    if try_word st "in" then Sql_ast.P_pos_pos (a, pos_set, literal_list st)
    else if try_word st "not" then begin
      eat_word st "in";
      Sql_ast.P_pos_neg (a, pos_set, literal_list st)
    end
    else if try_sym st "=" then Sql_ast.P_pos_pos (a, pos_set, [ literal st ])
    else if try_sym st "!=" then Sql_ast.P_pos_neg (a, pos_set, [ literal st ])
    else fail st "expected =, !=, in or not in after else"
  end
  else Sql_ast.P_pos (a, pos_set)

let step st axis =
  let tag = if try_sym st "*" then "*" else ident st in
  let rec quals acc =
    if try_sym st "[" then begin
      let h = hard st in
      eat_sym st "]";
      quals (Past.Hard h :: acc)
    end
    else if try_sym st "#[" then begin
      let p = pref st in
      eat_sym st "]#";
      quals (Past.Soft p :: acc)
    end
    else List.rev acc
  in
  { Past.axis; tag; quals = quals [] }

let path st =
  let rec go acc =
    if try_sym st "//" then go (step st Past.Descendant :: acc)
    else if try_sym st "/" then go (step st Past.Child :: acc)
    else List.rev acc
  in
  let steps = go [] in
  if steps = [] then fail st "expected a path starting with '/' or '//'";
  (match peek st with
  | Eof -> ()
  | _ -> fail st "unexpected trailing input");
  steps

let parse src = path { tokens = Array.of_list (tokenize src); i = 0 }

let parse_pref src =
  let st = { tokens = Array.of_list (tokenize src); i = 0 } in
  let p = pref st in
  (match peek st with
  | Eof -> ()
  | _ -> fail st "unexpected trailing input");
  p
