(** Preference XPath abstract syntax (§6.1).

    Standard XPath location steps are upgraded from [axis nodetest
    predicate*] to [axis nodetest (predicate | preference)*]: hard
    selections stay in ['['...']'], soft selections go in ['#['...']#'].
    The preference language itself is shared with Preference SQL
    ({!Pref_sql.Ast.pref}), with [and] as Pareto accumulation and
    [prior to] as prioritized accumulation. *)

open Pref_relation

type hard =
  | H_cmp of string * Pref_sql.Ast.comparison * Value.t
  | H_exists of string
  | H_and of hard * hard
  | H_or of hard * hard
  | H_not of hard

type qualifier =
  | Hard of hard
  | Soft of Pref_sql.Ast.pref

type axis = Child | Descendant

type step = {
  axis : axis;
  tag : string;
  quals : qualifier list;
}

type path = step list

val hard_attrs : hard -> string list
