(** A minimal XML document model — the attribute-rich data substrate for
    Preference XPath (§6.1), standing in for the native XML store the
    prototype ran on. *)

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

val element : ?attrs:(string * string) list -> ?children:t list -> string -> t
val text : string -> t

val tag_of : t -> string option
val attr : t -> string -> string option
val children : t -> t list
val child_elements : t -> t list
val text_content : t -> string

val descendants_or_self : t -> t list
(** The node followed by all element descendants, document order. *)

val escape : string -> string
val to_string : t -> string
val pp : t Fmt.t
