type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) ?(children = []) tag = Element { tag; attrs; children }
let text s = Text s

let tag_of = function Element e -> Some e.tag | Text _ -> None

let attr node name =
  match node with
  | Element e -> List.assoc_opt name e.attrs
  | Text _ -> None

let children = function Element e -> e.children | Text _ -> []

let rec text_content = function
  | Text s -> s
  | Element e -> String.concat "" (List.map text_content e.children)

let child_elements node =
  List.filter_map
    (function Element e -> Some (Element e) | Text _ -> None)
    (children node)

let rec descendants_or_self node =
  node :: List.concat_map descendants_or_self (child_elements node)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buffer ~indent buf node =
  let pad = String.make (2 * indent) ' ' in
  match node with
  | Text s ->
    if String.trim s <> "" then begin
      Buffer.add_string buf pad;
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '\n'
    end
  | Element e ->
    Buffer.add_string buf pad;
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
      e.attrs;
    if e.children = [] then Buffer.add_string buf "/>\n"
    else if List.for_all (function Text _ -> true | Element _ -> false) e.children
    then begin
      (* text-only elements print inline so printing is idempotent *)
      Buffer.add_char buf '>';
      List.iter
        (function
          | Text s -> Buffer.add_string buf (escape s)
          | Element _ -> ())
        e.children;
      Buffer.add_string buf (Printf.sprintf "</%s>\n" e.tag)
    end
    else begin
      Buffer.add_string buf ">\n";
      List.iter (to_buffer ~indent:(indent + 1) buf) e.children;
      Buffer.add_string buf pad;
      Buffer.add_string buf (Printf.sprintf "</%s>\n" e.tag)
    end

let to_string node =
  let buf = Buffer.create 256 in
  to_buffer ~indent:0 buf node;
  Buffer.contents buf

let pp ppf node = Fmt.string ppf (to_string node)
