(** Rendering Preference XPath ASTs back to query text.

    The parser accepts its own output; [pp_pref] raises [Invalid_argument]
    for preference forms without XPath surface syntax (EXPLICIT, SCORE,
    RANK — they belong to Preference SQL). *)

val pp_hard : Past.hard Fmt.t
val pp_pref : Pref_sql.Ast.pref Fmt.t
val pp_step : Past.step Fmt.t
val pp_path : Past.path Fmt.t
val path_to_string : Past.path -> string
