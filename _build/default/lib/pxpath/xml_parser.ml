exception Error of string * int

type state = {
  src : string;
  mutable i : int;
}

let len st = String.length st.src
let peek st = if st.i < len st then Some st.src.[st.i] else None
let looking_at st s =
  st.i + String.length s <= len st && String.sub st.src st.i (String.length s) = s

let fail st msg = raise (Error (msg, st.i))

let skip_ws st =
  while
    st.i < len st
    && match st.src.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.i <- st.i + 1
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.'

let name st =
  let start = st.i in
  while st.i < len st && is_name_char st.src.[st.i] do
    st.i <- st.i + 1
  done;
  if st.i = start then fail st "expected a name";
  String.sub st.src start (st.i - start)

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      let entity_end =
        try String.index_from s i ';' with Not_found -> -1
      in
      if entity_end = -1 then begin
        Buffer.add_char buf '&';
        go (i + 1)
      end
      else begin
        (match String.sub s (i + 1) (entity_end - i - 1) with
        | "amp" -> Buffer.add_char buf '&'
        | "lt" -> Buffer.add_char buf '<'
        | "gt" -> Buffer.add_char buf '>'
        | "quot" -> Buffer.add_char buf '"'
        | "apos" -> Buffer.add_char buf '\''
        | other -> Buffer.add_string buf ("&" ^ other ^ ";"));
        go (entity_end + 1)
      end
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let skip_misc st =
  (* XML declarations, processing instructions, comments, doctype *)
  let rec go () =
    skip_ws st;
    if looking_at st "<?" then begin
      match
        let rec find j =
          if j + 1 >= len st then None
          else if st.src.[j] = '?' && st.src.[j + 1] = '>' then Some (j + 2)
          else find (j + 1)
        in
        find st.i
      with
      | Some j ->
        st.i <- j;
        go ()
      | None -> fail st "unterminated processing instruction"
    end
    else if looking_at st "<!--" then begin
      match
        let rec find j =
          if j + 2 >= len st then None
          else if String.sub st.src j 3 = "-->" then Some (j + 3)
          else find (j + 1)
        in
        find st.i
      with
      | Some j ->
        st.i <- j;
        go ()
      | None -> fail st "unterminated comment"
    end
    else if looking_at st "<!DOCTYPE" || looking_at st "<!doctype" then begin
      match String.index_from_opt st.src st.i '>' with
      | Some j ->
        st.i <- j + 1;
        go ()
      | None -> fail st "unterminated DOCTYPE"
    end
  in
  go ()

let attribute st =
  let k = name st in
  skip_ws st;
  (match peek st with
  | Some '=' -> st.i <- st.i + 1
  | _ -> fail st "expected '=' in attribute");
  skip_ws st;
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
      st.i <- st.i + 1;
      q
    | _ -> fail st "expected a quoted attribute value"
  in
  let start = st.i in
  (match String.index_from_opt st.src st.i quote with
  | Some j -> st.i <- j
  | None -> fail st "unterminated attribute value");
  let v = String.sub st.src start (st.i - start) in
  st.i <- st.i + 1;
  (k, unescape v)

let rec element st =
  (match peek st with
  | Some '<' -> st.i <- st.i + 1
  | _ -> fail st "expected '<'");
  let tag = name st in
  let rec attrs acc =
    skip_ws st;
    match peek st with
    | Some '>' ->
      st.i <- st.i + 1;
      (List.rev acc, `Open)
    | Some '/' when looking_at st "/>" ->
      st.i <- st.i + 2;
      (List.rev acc, `Selfclosing)
    | Some _ -> attrs (attribute st :: acc)
    | None -> fail st "unterminated start tag"
  in
  let attributes, kind = attrs [] in
  match kind with
  | `Selfclosing -> Xml.Element { tag; attrs = attributes; children = [] }
  | `Open ->
    let children = content st [] in
    if not (looking_at st "</") then fail st "expected a closing tag";
    st.i <- st.i + 2;
    let closing = name st in
    if closing <> tag then
      fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
    skip_ws st;
    (match peek st with
    | Some '>' -> st.i <- st.i + 1
    | _ -> fail st "expected '>' after closing tag");
    Xml.Element { tag; attrs = attributes; children }

and content st acc =
  if looking_at st "</" then List.rev acc
  else if looking_at st "<!--" then begin
    skip_misc st;
    content st acc
  end
  else
    match peek st with
    | None -> fail st "unexpected end of input inside an element"
    | Some '<' -> content st (element st :: acc)
    | Some _ ->
      let start = st.i in
      while st.i < len st && st.src.[st.i] <> '<' do
        st.i <- st.i + 1
      done;
      let txt = unescape (String.sub st.src start (st.i - start)) in
      if String.trim txt = "" then content st acc
      else content st (Xml.Text txt :: acc)

let parse src =
  let st = { src; i = 0 } in
  skip_misc st;
  let root = element st in
  skip_misc st;
  skip_ws st;
  if st.i < len st then fail st "trailing content after the root element";
  root

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s
