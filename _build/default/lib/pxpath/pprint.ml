open Pref_relation
module Sql_ast = Pref_sql.Ast

let pp_value ppf v =
  match v with
  | Value.Str s -> Fmt.pf ppf "\"%s\"" s
  | Value.Date d ->
    Fmt.pf ppf "\"%04d-%02d-%02d\"" d.Value.year d.Value.month d.Value.day
  | v -> Value.pp ppf v

let pp_values ppf vs =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_value) vs

let cmp_to_string (op : Sql_ast.comparison) =
  match op with
  | Sql_ast.Eq -> "="
  | Sql_ast.Neq -> "!="
  | Sql_ast.Lt -> "<"
  | Sql_ast.Le -> "<="
  | Sql_ast.Gt -> ">"
  | Sql_ast.Ge -> ">="

let rec pp_hard ppf (h : Past.hard) =
  match h with
  | Past.H_cmp (a, op, v) ->
    Fmt.pf ppf "@%s %s %a" a (cmp_to_string op) pp_value v
  | Past.H_exists a -> Fmt.pf ppf "@%s" a
  | Past.H_and (h1, h2) -> Fmt.pf ppf "%a and %a" pp_hard_atom h1 pp_hard_atom h2
  | Past.H_or (h1, h2) -> Fmt.pf ppf "%a or %a" pp_hard_atom h1 pp_hard_atom h2
  | Past.H_not h1 -> Fmt.pf ppf "not(%a)" pp_hard h1

and pp_hard_atom ppf h =
  match h with
  | Past.H_and _ | Past.H_or _ -> Fmt.pf ppf "(%a)" pp_hard h
  | _ -> pp_hard ppf h

let rec pp_pref ppf (p : Sql_ast.pref) =
  match p with
  | Sql_ast.P_pos (a, [ v ]) -> Fmt.pf ppf "(@%s) = %a" a pp_value v
  | Sql_ast.P_pos (a, vs) -> Fmt.pf ppf "(@%s) in %a" a pp_values vs
  | Sql_ast.P_neg (a, [ v ]) -> Fmt.pf ppf "(@%s) != %a" a pp_value v
  | Sql_ast.P_neg (a, vs) -> Fmt.pf ppf "(@%s) not in %a" a pp_values vs
  | Sql_ast.P_pos_pos (a, v1, v2) ->
    Fmt.pf ppf "%a else (@%s) %s" pp_pref (Sql_ast.P_pos (a, v1)) a
      (match v2 with
      | [ v ] -> Fmt.str "= %a" pp_value v
      | vs -> Fmt.str "in %a" pp_values vs)
  | Sql_ast.P_pos_neg (a, vs, ns) ->
    Fmt.pf ppf "%a else (@%s) %s" pp_pref (Sql_ast.P_pos (a, vs)) a
      (match ns with
      | [ v ] -> Fmt.str "!= %a" pp_value v
      | vs -> Fmt.str "not in %a" pp_values vs)
  | Sql_ast.P_around (a, v) -> Fmt.pf ppf "(@%s) around %a" a pp_value v
  | Sql_ast.P_between (a, low, up) ->
    Fmt.pf ppf "(@%s) between %a and %a" a pp_value low pp_value up
  | Sql_ast.P_lowest a -> Fmt.pf ppf "(@%s) lowest" a
  | Sql_ast.P_highest a -> Fmt.pf ppf "(@%s) highest" a
  | Sql_ast.P_pareto (p1, p2) ->
    Fmt.pf ppf "%a and %a" pp_pref_atom p1 pp_pref_atom p2
  | Sql_ast.P_prior (p1, p2) ->
    Fmt.pf ppf "%a prior to %a" pp_pref_atom p1 pp_pref_atom p2
  | Sql_ast.P_dual p1 -> Fmt.pf ppf "dual(%a)" pp_pref p1
  | Sql_ast.P_explicit _ | Sql_ast.P_score _ | Sql_ast.P_rank _ ->
    invalid_arg "Pprint.pp_pref: no Preference XPath syntax for this form"

and pp_pref_atom ppf p =
  match p with
  | Sql_ast.P_pareto _ | Sql_ast.P_prior _ -> Fmt.pf ppf "(%a)" pp_pref p
  | _ -> pp_pref ppf p

let pp_step ppf (s : Past.step) =
  Fmt.pf ppf "%s%s"
    (match s.Past.axis with Past.Child -> "/" | Past.Descendant -> "//")
    s.Past.tag;
  List.iter
    (fun q ->
      match q with
      | Past.Hard h -> Fmt.pf ppf "[%a]" pp_hard h
      | Past.Soft p -> Fmt.pf ppf " #[%a]#" pp_pref p)
    s.Past.quals

let pp_path ppf (p : Past.path) = List.iter (pp_step ppf) p

let path_to_string p = Fmt.str "%a" pp_path p
