(** Parser for the Preference XPath subset.

    {v
    path  ::= (('/' | '//') step)+
    step  ::= (name | '*') qual*
    qual  ::= '[' hard ']' | '#[' pref ']#'
    hard  ::= @a op lit | @a | not(...) | hard and hard | hard or hard
    pref  ::= pareto ('prior to' pareto)*
    pareto::= atom ('and' atom)*
    atom  ::= '(@a)' spec | '(' pref ')' | dual(pref)
    spec  ::= highest | lowest | around lit | between lit and lit
            | in (lits) [else (@a) ...] | not in (lits)
            | = lit [else (@a) ...] | != lit
    v}
    Keywords are case-insensitive; string literals take single or double
    quotes; [!=] and [<>] both mean inequality. *)

exception Error of string * int

val parse : string -> Past.path
val parse_pref : string -> Pref_sql.Ast.pref
