open Pref_relation

type hard =
  | H_cmp of string * Pref_sql.Ast.comparison * Value.t
      (** [@attr op literal] *)
  | H_exists of string  (** [@attr] — the attribute is present *)
  | H_and of hard * hard
  | H_or of hard * hard
  | H_not of hard

type qualifier =
  | Hard of hard  (** [ ... ] — hard selection *)
  | Soft of Pref_sql.Ast.pref  (** #[ ... ]# — soft selection under BMO *)

type axis = Child | Descendant

type step = {
  axis : axis;
  tag : string;  (** element name test; ["*"] matches any element *)
  quals : qualifier list;
}

type path = step list

let rec hard_attrs = function
  | H_cmp (a, _, _) | H_exists a -> [ a ]
  | H_and (h1, h2) | H_or (h1, h2) ->
    Preferences.Attr.union (hard_attrs h1) (hard_attrs h2)
  | H_not h -> hard_attrs h
