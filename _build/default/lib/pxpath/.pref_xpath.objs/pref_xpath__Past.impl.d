lib/pxpath/past.ml: Pref_relation Pref_sql Preferences Value
