lib/pxpath/xml.mli: Fmt
