lib/pxpath/xml_parser.mli: Xml
