lib/pxpath/pprint.mli: Fmt Past Pref_sql
