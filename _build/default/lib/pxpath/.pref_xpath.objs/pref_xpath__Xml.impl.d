lib/pxpath/xml.ml: Buffer Fmt List Printf String
