lib/pxpath/peval.ml: Array List Past Pparser Pref Pref_relation Pref_sql Preferences Schema String Tuple Value Xml
