lib/pxpath/pparser.mli: Past Pref_sql
