lib/pxpath/xml_parser.ml: Buffer List Printf String Xml
