lib/pxpath/peval.mli: Past Pref_relation Pref_sql Xml
