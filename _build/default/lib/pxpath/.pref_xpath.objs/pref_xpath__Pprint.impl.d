lib/pxpath/pprint.ml: Fmt List Past Pref_relation Pref_sql Value
