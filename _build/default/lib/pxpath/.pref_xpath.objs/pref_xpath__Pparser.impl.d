lib/pxpath/pparser.ml: Array List Past Pref_relation Pref_sql Printf String Value
