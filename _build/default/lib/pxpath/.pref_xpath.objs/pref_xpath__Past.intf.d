lib/pxpath/past.mli: Pref_relation Pref_sql Value
