open Pref_relation
open Preferences

let value_of_attr node a =
  match Xml.attr node a with
  | Some s -> Value.infer s
  | None -> (
    (* fall back to a child element's text content: attribute-style and
       element-style catalogs are queried uniformly *)
    match
      List.find_opt
        (fun c ->
          match Xml.tag_of c with
          | Some t -> String.lowercase_ascii t = String.lowercase_ascii a
          | None -> false)
        (Xml.child_elements node)
    with
    | Some c -> Value.infer (String.trim (Xml.text_content c))
    | None -> Value.Null)

let rec eval_hard node (h : Past.hard) =
  match h with
  | Past.H_cmp (a, op, lit) ->
    let v = value_of_attr node a in
    (not (Value.is_null v)) && Pref_sql.Translate.compare_values op v lit
  | Past.H_exists a -> not (Value.is_null (value_of_attr node a))
  | Past.H_and (h1, h2) -> eval_hard node h1 && eval_hard node h2
  | Past.H_or (h1, h2) -> eval_hard node h1 || eval_hard node h2
  | Past.H_not h1 -> not (eval_hard node h1)

(* Soft selection: evaluate the preference under BMO over the node set of
   the current location step.  Nodes become tuples over the preference's
   attribute set; missing attributes become NULL. *)
let eval_soft ?registry nodes (p : Pref_sql.Ast.pref) =
  match nodes with
  | [] -> []
  | _ ->
    let attrs = Pref_sql.Ast.pref_attrs p in
    let schema = Schema.make (List.map (fun a -> (a, Value.TStr)) attrs) in
    (* the schema's declared types are not used for evaluation: values are
       carried as inferred, and row validation is bypassed by building
       tuples directly *)
    let tuples =
      List.map
        (fun node -> Tuple.make (List.map (value_of_attr node) attrs))
        nodes
    in
    let term = Pref_sql.Translate.pref ?registry p in
    let lt = Pref.compile schema term in
    let arr = Array.of_list tuples in
    let node_arr = Array.of_list nodes in
    let n = Array.length arr in
    let keep = ref [] in
    for i = n - 1 downto 0 do
      let dominated = ref false in
      for j = 0 to n - 1 do
        if (not !dominated) && lt arr.(i) arr.(j) then dominated := true
      done;
      if not !dominated then keep := node_arr.(i) :: !keep
    done;
    !keep

let apply_qual ?registry nodes (q : Past.qualifier) =
  match q with
  | Past.Hard h -> List.filter (fun node -> eval_hard node h) nodes
  | Past.Soft p -> eval_soft ?registry nodes p

let matches_tag tag node =
  match Xml.tag_of node with
  | Some t -> tag = "*" || String.lowercase_ascii t = String.lowercase_ascii tag
  | None -> false

let apply_step ?registry nodes (s : Past.step) =
  let candidates =
    match s.Past.axis with
    | Past.Child -> List.concat_map Xml.child_elements nodes
    | Past.Descendant ->
      List.concat_map
        (fun node -> List.concat_map Xml.descendants_or_self (Xml.child_elements node))
        nodes
  in
  let named = List.filter (matches_tag s.Past.tag) candidates in
  List.fold_left (fun ns q -> apply_qual ?registry ns q) named s.Past.quals

let eval_path ?registry root (steps : Past.path) =
  (* wrap the root so the first step selects the root element by name *)
  let doc = Xml.element "#document" ~children:[ root ] in
  List.fold_left (fun nodes s -> apply_step ?registry nodes s) [ doc ] steps

let run ?registry root src = eval_path ?registry root (Pparser.parse src)
