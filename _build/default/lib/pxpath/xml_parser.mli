(** A small XML parser: elements, attributes (single- or double-quoted),
    text with the five predefined entities, comments, processing
    instructions and DOCTYPE headers. No namespaces or CDATA — enough for
    the attribute-rich catalogs Preference XPath targets. *)

exception Error of string * int
(** Message and byte offset. *)

val parse : string -> Xml.t
(** Parse a document; returns the root element. Whitespace-only text nodes
    are dropped. *)

val load : string -> Xml.t
