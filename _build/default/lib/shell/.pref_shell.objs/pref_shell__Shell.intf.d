lib/shell/shell.mli: Pref_relation Pref_sql Relation
