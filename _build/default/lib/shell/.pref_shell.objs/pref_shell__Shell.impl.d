lib/shell/shell.ml: Buffer Csv Exec Fmt In_channel List Parser Pref_bmo Pref_mining Pref_relation Pref_sql Preferences Printf Relation Repository Schema Serialize Show Sql92 String Translate Unparse
