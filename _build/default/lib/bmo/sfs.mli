(** Sort-filter BMO evaluation (SFS-style).

    Requires a {e topological} key: whenever [a] dominates [b], [key a >=
    key b] must hold (e.g. the sum of the maximised dimensions for a Pareto
    preference over numeric chains). Under that precondition the window only
    grows, which makes SFS faster than BNL on data with large skylines.
    Supplying a non-topological key yields wrong results — the test suite
    checks both directions. *)

open Pref_relation

val maxima : key:(Tuple.t -> float) -> Dominance.t -> Tuple.t list -> Tuple.t list

val sum_key : Schema.t -> string list -> maximize:bool -> Tuple.t -> float
(** Topological key for Pareto preferences of HIGHEST (or, with
    [maximize:false], LOWEST) chains over the named numeric attributes. *)

val query :
  Schema.t -> key:(Tuple.t -> float) -> Preferences.Pref.t -> Relation.t -> Relation.t

val progressive :
  key:(Tuple.t -> float) -> Dominance.t -> Tuple.t list -> Tuple.t Seq.t
(** Progressive skyline delivery ([TEO01]): maxima are emitted as soon as
    they are identified, best presort key first; consuming the whole
    sequence yields exactly [maxima]. Same topological-key precondition as
    {!maxima}. The sequence is ephemeral (internal window state) — consume
    it once. *)
