(** Naive BMO evaluation: exhaustive better-than tests.

    The paper's reference semantics (Definition 15): keep every tuple no
    other tuple dominates. O(n²) comparisons; correct for every strict
    partial order. All other algorithms are tested against this one. *)

open Pref_relation

val maxima : Dominance.t -> Tuple.t list -> Tuple.t list
(** Tuples not dominated by any other tuple (order preserved). *)

val query : Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t
(** σ[P](R) evaluated naively. *)
