open Pref_relation
open Preferences

(* Naive evaluation: correct even for relations that are not transitive
   (e.g. a disjoint union whose operands are not actually disjoint), where
   window algorithms may misbehave. *)
let result_size_on schema p ~attrs rel =
  let res = Naive.query schema p rel in
  Relation.cardinality (Relation.project_distinct res attrs)

let result_size schema p rel = result_size_on schema p ~attrs:(Pref.attrs p) rel

let stronger_filter schema p1 p2 rel =
  result_size schema p1 rel <= result_size schema p2 rel

let comparisons_of algo schema p rel =
  let dom, count = Dominance.counting (Dominance.of_pref schema p) in
  let rows = Relation.rows rel in
  let result =
    match algo with
    | `Naive -> Naive.maxima dom rows
    | `Bnl -> Bnl.maxima dom rows
  in
  (Relation.make (Relation.schema rel) result, count ())
