open Pref_relation

type t = Tuple.t -> Tuple.t -> bool

let of_pref schema p = Preferences.Pref.compile_better schema p

let counting dom =
  let n = ref 0 in
  let dom' a b =
    incr n;
    dom a b
  in
  (dom', fun () -> !n)
