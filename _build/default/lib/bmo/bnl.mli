(** Block-nested-loops BMO evaluation ([BKS01], in-memory variant).

    Maintains a window of mutually undominated tuples; average-case far
    fewer comparisons than {!Naive} because dominated tuples are discarded
    on the fly and never compared again. Correct for every strict partial
    order: transitivity guarantees a tuple dominated by an evicted window
    tuple is also dominated by the evicting one. Result order: first
    appearance order of the surviving tuples. *)

open Pref_relation

val maxima : Dominance.t -> Tuple.t list -> Tuple.t list
val query : Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t
