(* A kd-tree over d-dimensional float points, with per-node bounding boxes.
   This is the "index method for efficient better-than testing" of the
   paper's roadmap: bounding boxes let whole subtrees be discarded with a
   single dominance test (see {!Bbs}). *)

type node =
  | Leaf of int array  (** indices into the point array *)
  | Split of {
      left : node;
      right : node;
      bbox_min : float array;
      bbox_max : float array;
    }

type t = {
  points : float array array;
  root : node;
  dims : int;
}

let leaf_size = 16

let bbox_of points idxs =
  match idxs with
  | [] -> invalid_arg "Kdtree.bbox_of: empty"
  | first :: _ ->
    let d = Array.length points.(first) in
    let mins = Array.copy points.(first) and maxs = Array.copy points.(first) in
    List.iter
      (fun i ->
        let p = points.(i) in
        for k = 0 to d - 1 do
          if p.(k) < mins.(k) then mins.(k) <- p.(k);
          if p.(k) > maxs.(k) then maxs.(k) <- p.(k)
        done)
      idxs;
    (mins, maxs)

let node_bbox points = function
  | Leaf idxs -> bbox_of points (Array.to_list idxs)
  | Split s -> (s.bbox_min, s.bbox_max)

let rec build_node points idxs depth dims =
  if List.length idxs <= leaf_size then Leaf (Array.of_list idxs)
  else begin
    let axis = depth mod dims in
    let sorted =
      List.sort
        (fun i j -> Float.compare points.(i).(axis) points.(j).(axis))
        idxs
    in
    let n = List.length sorted in
    let rec split k left = function
      | [] -> (List.rev left, [])
      | rest when k = 0 -> (List.rev left, rest)
      | x :: rest -> split (k - 1) (x :: left) rest
    in
    let left_idxs, right_idxs = split (n / 2) [] sorted in
    match left_idxs, right_idxs with
    | [], _ | _, [] -> Leaf (Array.of_list idxs) (* degenerate: all equal *)
    | _ ->
      let left = build_node points left_idxs (depth + 1) dims in
      let right = build_node points right_idxs (depth + 1) dims in
      let lmin, lmax = node_bbox points left in
      let rmin, rmax = node_bbox points right in
      let d = Array.length lmin in
      let bbox_min = Array.init d (fun k -> Float.min lmin.(k) rmin.(k)) in
      let bbox_max = Array.init d (fun k -> Float.max lmax.(k) rmax.(k)) in
      Split { left; right; bbox_min; bbox_max }
  end

let build points =
  if Array.length points = 0 then invalid_arg "Kdtree.build: no points";
  let dims = Array.length points.(0) in
  Array.iter
    (fun p ->
      if Array.length p <> dims then
        invalid_arg "Kdtree.build: inconsistent dimensionality")
    points;
  let idxs = List.init (Array.length points) (fun i -> i) in
  { points; root = build_node points idxs 0 dims; dims }

let root t = t.root
let points t = t.points
let dims t = t.dims

let rec size_of = function
  | Leaf idxs -> Array.length idxs
  | Split s -> size_of s.left + size_of s.right

let rec depth_of = function
  | Leaf _ -> 1
  | Split s -> 1 + max (depth_of s.left) (depth_of s.right)
