open Pref_relation
open Preferences

let yy schema p1 p2 rel =
  let lt1 = Pref.compile schema p1 and lt2 = Pref.compile schema p2 in
  let rows = Relation.rows rel in
  List.filter
    (fun t ->
      List.exists (fun v -> lt1 t v) rows
      && List.exists (fun v -> lt2 t v) rows
      && not (List.exists (fun v -> lt1 t v && lt2 t v) rows))
    rows

let yy_relation schema p1 p2 rel =
  Relation.make (Relation.schema rel) (yy schema p1 p2 rel)

let rec eval schema p rel =
  match p with
  | Pref.Dunion (p1, p2) ->
    (* Proposition 8: σ[P1+P2](R) = σ[P1](R) ∩ σ[P2](R). *)
    Relation.inter (eval schema p1 rel) (eval schema p2 rel)
  | Pref.Inter (p1, p2) ->
    (* Proposition 9: σ[P1♦P2](R) = σ[P1](R) ∪ σ[P2](R) ∪ YY(P1,P2)R. *)
    Relation.union
      (Relation.union (eval schema p1 rel) (eval schema p2 rel))
      (yy_relation schema p1 p2 rel)
  | Pref.Prior (p1, p2) when Attr.subset (Pref.attrs p2) (Pref.attrs p1) ->
    (* Proposition 4(a): P1 & P2 ≡ P1 on shared attributes. *)
    eval schema p1 rel
  | Pref.Prior (p1, p2) when Attr.disjoint (Pref.attrs p1) (Pref.attrs p2) ->
    (* Proposition 10: σ[P1&P2](R) = σ[P1](R) ∩ σ[P2 groupby A1](R). *)
    Relation.inter
      (eval schema p1 rel)
      (Groupby.query schema p2 ~by:(Pref.attrs p1) rel)
  | Pref.Pareto (p1, p2) when Attr.disjoint (Pref.attrs p1) (Pref.attrs p2) ->
    (* Proposition 12, the main decomposition theorem. *)
    let a1 = Pref.attrs p1 and a2 = Pref.attrs p2 in
    let term1 =
      Relation.inter (eval schema p1 rel) (Groupby.query schema p2 ~by:a1 rel)
    in
    let term2 =
      Relation.inter (eval schema p2 rel) (Groupby.query schema p1 ~by:a2 rel)
    in
    let term3 =
      yy_relation schema (Pref.prior p1 p2) (Pref.prior p2 p1) rel
    in
    Relation.union (Relation.union term1 term2) term3
  | Pref.Pareto (p1, p2) when Attr.equal (Pref.attrs p1) (Pref.attrs p2) ->
    (* Proposition 6: ⊗ collapses to ♦ on identical attribute sets. *)
    eval schema (Pref.inter p1 p2) rel
  | Pref.Pos _ | Pref.Neg _ | Pref.Pos_neg _ | Pref.Pos_pos _
  | Pref.Explicit _ | Pref.Around _ | Pref.Between _ | Pref.Lowest _
  | Pref.Highest _ | Pref.Score _ | Pref.Antichain _ | Pref.Dual _
  | Pref.Pareto _ | Pref.Prior _ | Pref.Rank _ | Pref.Lsum _
  | Pref.Two_graphs _ ->
    Relation.distinct (Naive.query schema p rel)

let cascade schema p1 p2 rel =
  (* Proposition 11: σ[P1&P2](R) = σ[P2](σ[P1](R)) when P1 is a chain.  BNL
     is safe for both stages (each stage's preference is an SPO) and the
     chain stage degenerates to a single linear pass with a one-element
     window in the common case. *)
  Bnl.query schema p2 (Bnl.query schema p1 rel)
