open Pref_relation
open Preferences

type quality =
  | Level of int  (** discrete level under the intrinsic level function *)
  | Distance of float  (** distance under the continuous distance function *)
  | Opaque  (** no quality function for this base preference *)

type t = {
  tuple : Tuple.t;
  in_result : bool;
  dominators : Tuple.t list;  (** witnesses that exclude the tuple *)
  graph_level : int;  (** level in the database better-than graph *)
  qualities : (string * quality) list;  (** per attribute of the preference *)
}

let qualities_of schema p t =
  List.map
    (fun attr ->
      let q =
        match Quality.level_of schema p attr t with
        | Some l -> Level l
        | None -> (
          match Quality.distance_of schema p attr t with
          | Some d -> Distance d
          | None -> Opaque)
      in
      (attr, q))
    (Pref.attrs p)

let explain schema p rel t =
  let dom = Dominance.of_pref schema p in
  let dominators = List.filter (fun u -> dom u t) (Relation.rows rel) in
  {
    tuple = t;
    in_result = dominators = [];
    dominators;
    graph_level = Quality.level_in_graph schema p rel t;
    qualities = qualities_of schema p t;
  }

let pp_quality ppf = function
  | Level l -> Fmt.pf ppf "level %d" l
  | Distance d ->
    if Float.is_integer d then Fmt.pf ppf "distance %.0f" d
    else Fmt.pf ppf "distance %g" d
  | Opaque -> Fmt.string ppf "-"

let pp ppf e =
  Fmt.pf ppf "%a: %s (graph level %d)@." Tuple.pp e.tuple
    (if e.in_result then "BEST MATCH" else "dominated")
    e.graph_level;
  List.iter
    (fun (attr, q) -> Fmt.pf ppf "  %-16s %a@." attr pp_quality q)
    e.qualities;
  match e.dominators with
  | [] -> ()
  | ds ->
    Fmt.pf ppf "  dominated by %d tuple(s), e.g. %a@." (List.length ds) Tuple.pp
      (List.hd ds)

let to_string e = Fmt.str "%a" pp e

(* The negotiation reservoir (§4.1): unranked pairs within a tuple set are
   the compromises left open by the preference. *)
let unranked_pairs schema p rows =
  let lt = Pref.compile schema p in
  let names = Pref.attrs p in
  let rec go acc = function
    | [] -> List.rev acc
    | t :: rest ->
      let acc =
        List.fold_left
          (fun acc u ->
            if
              (not (Tuple.equal_on schema names t u))
              && (not (lt t u))
              && not (lt u t)
            then (t, u) :: acc
            else acc)
          acc rest
      in
      go acc rest
  in
  go [] rows
