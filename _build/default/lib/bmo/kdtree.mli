(** A kd-tree over d-dimensional float points with per-node bounding boxes —
    the index substrate for branch & bound BMO evaluation ({!Bbs}), per the
    paper's roadmap item "the use of index methods for efficient
    'better-than' testing". *)

type node =
  | Leaf of int array
  | Split of {
      left : node;
      right : node;
      bbox_min : float array;
      bbox_max : float array;
    }

type t

val build : float array array -> t
(** Median splits, cycling axes, leaves of ≤ 16 points. Raises
    [Invalid_argument] on empty input or mixed dimensionality. *)

val root : t -> node
val points : t -> float array array
val dims : t -> int

val node_bbox : float array array -> node -> float array * float array
(** (mins, maxs) of a node's points. *)

val size_of : node -> int
val depth_of : node -> int
