(** Result sizes and filter strength (Definitions 18 and 19).

    [size(P, R)] counts the distinct A-values in the BMO result; "P1 is a
    stronger preference filter than P2" iff its result size is no larger.
    Proposition 13's inequalities — the AND/OR-like adaptive filter effect
    of & and ⊗ — are tested and benched on top of these. *)

open Pref_relation

val result_size : Schema.t -> Preferences.Pref.t -> Relation.t -> int
(** size(P, R) = card(π_A(σ[P](R))). *)

val result_size_on :
  Schema.t -> Preferences.Pref.t -> attrs:string list -> Relation.t -> int
(** size measured over an explicit attribute set — Proposition 13's
    comparisons between preferences with different attribute sets project
    both onto the union, as its proof does. *)

val stronger_filter :
  Schema.t -> Preferences.Pref.t -> Preferences.Pref.t -> Relation.t -> bool
(** [stronger_filter schema p1 p2 rel] iff size(P1, R) ≤ size(P2, R). *)

val comparisons_of :
  [ `Naive | `Bnl ] ->
  Schema.t ->
  Preferences.Pref.t ->
  Relation.t ->
  Relation.t * int
(** Run an algorithm with an instrumented dominance test; returns the result
    and the number of better-than tests performed. *)
