(** The ranked ("k-best") query model of §6.2.

    rank(F) mostly builds chain preferences, so BMO would return a single
    best object; multi-feature and full-text engines therefore return the k
    best instead. [kbest] is the full-scan reference; [threshold_algorithm]
    is a Fagin-style TA over per-dimension sorted access with a monotone
    combining function — the textbook stand-in for Quick-Combine [GBK00]
    (see DESIGN.md, substitutions). *)

open Pref_relation

val kbest : Schema.t -> Preferences.Pref.t -> k:int -> Relation.t -> Relation.t
(** Top-k by the preference's score, best first; ties broken by input order.
    Raises [Invalid_argument] for non-scorable preferences. *)

type ta_result = {
  results : (float * Tuple.t) list;  (** the k best with scores, best first *)
  examined : int;  (** distinct objects whose combined score was computed *)
  depth : int;  (** sorted-access depth reached before the threshold stop *)
}

val threshold_algorithm :
  scores:(Tuple.t -> float) array ->
  combine:(float array -> float) ->
  k:int ->
  Relation.t ->
  ta_result
(** [combine] must be monotone (non-decreasing in every argument) for the
    early-termination threshold to be sound. *)

val ta_rank :
  Schema.t -> Preferences.Pref.t -> k:int -> Relation.t -> ta_result
(** Convenience wrapper running TA for a [Rank (f, p1, p2)] term; raises
    [Invalid_argument] on any other shape. *)
