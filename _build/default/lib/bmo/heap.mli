(** A binary max-heap keyed by float priorities. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Largest priority first. *)

val peek : 'a t -> (float * 'a) option
