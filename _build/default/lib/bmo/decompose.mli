(** Decomposition-based BMO evaluation (Propositions 8–12).

    Evaluates σ[P](R) by structurally decomposing the preference term: the
    disjoint-union and intersection aggregations decompose into set
    operations on sub-results (Prop. 8 and 9, the latter with the YY set of
    Definition 17), prioritized accumulation into grouping (Prop. 10), and
    Pareto accumulation into the three-way union of the main decomposition
    theorem (Prop. 12). Leaves and non-decomposable nodes fall back to
    {!Naive}. This is the divide & conquer skeleton the paper proposes for a
    preference query optimizer.

    Results carry {e set} semantics (duplicates removed); compare against
    other algorithms with {!Relation.equal_as_sets}. *)

open Pref_relation

val yy : Schema.t -> Preferences.Pref.t -> Preferences.Pref.t -> Relation.t
  -> Tuple.t list
(** YY(P1, P2)_R (Definition 17): tuples non-maximal in both database
    preferences whose better-than sets within R[A] do not intersect. The
    ↑-sets are evaluated within R, following the appendix proof of
    Proposition 9 (over the full domain the identity would fail). *)

val yy_relation :
  Schema.t -> Preferences.Pref.t -> Preferences.Pref.t -> Relation.t ->
  Relation.t
(** {!yy} packaged as a relation over the input's schema. *)

val eval : Schema.t -> Preferences.Pref.t -> Relation.t -> Relation.t
(** σ[P](R) via the decomposition theorems. *)

val cascade :
  Schema.t -> Preferences.Pref.t -> Preferences.Pref.t -> Relation.t ->
  Relation.t
(** Proposition 11: σ[P2](σ[P1](R)), equal to σ[P1 & P2](R) {e when P1 is a
    chain on R} — the caller is responsible for that precondition. *)
