lib/bmo/stats.ml: Bnl Dominance Naive Pref Pref_relation Preferences Relation
