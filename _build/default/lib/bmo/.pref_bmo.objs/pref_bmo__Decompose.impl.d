lib/bmo/decompose.ml: Attr Bnl Groupby List Naive Pref Pref_relation Preferences Relation
