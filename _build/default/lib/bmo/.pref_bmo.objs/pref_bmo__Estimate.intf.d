lib/bmo/estimate.mli:
