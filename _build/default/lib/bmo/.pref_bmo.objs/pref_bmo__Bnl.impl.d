lib/bmo/bnl.ml: Dominance List Pref_relation Relation
