lib/bmo/bbs.mli: Pref_relation Relation Schema Tuple
