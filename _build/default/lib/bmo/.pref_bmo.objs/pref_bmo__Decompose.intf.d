lib/bmo/decompose.mli: Pref_relation Preferences Relation Schema Tuple
