lib/bmo/topk.ml: Array Float Hashtbl List Pref Pref_relation Preferences Relation Tuple
