lib/bmo/stats.mli: Pref_relation Preferences Relation Schema
