lib/bmo/heap.ml: Array
