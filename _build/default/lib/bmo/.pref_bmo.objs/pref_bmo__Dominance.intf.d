lib/bmo/dominance.mli: Pref_relation Preferences Schema Tuple
