lib/bmo/groupby.ml: Dominance List Naive Pref Pref_relation Preferences Relation
