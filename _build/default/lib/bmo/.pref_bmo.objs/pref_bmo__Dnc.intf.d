lib/bmo/dnc.mli: Pref_relation Relation Schema Tuple
