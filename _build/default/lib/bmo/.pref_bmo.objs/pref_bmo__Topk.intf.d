lib/bmo/topk.mli: Pref_relation Preferences Relation Schema Tuple
