lib/bmo/planner.ml: Attr Bnl Decompose Dnc List Naive Pref Pref_relation Preferences Printf Relation Schema Sfs Show String Tuple Value
