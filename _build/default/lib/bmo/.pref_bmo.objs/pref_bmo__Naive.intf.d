lib/bmo/naive.mli: Dominance Pref_relation Preferences Relation Schema Tuple
