lib/bmo/incremental.mli: Pref_relation Preferences Relation Schema Tuple
