lib/bmo/sfs.ml: Dominance Float List Pref_relation Relation Schema Seq Tuple Value
