lib/bmo/groupby.mli: Pref_relation Preferences Relation Schema
