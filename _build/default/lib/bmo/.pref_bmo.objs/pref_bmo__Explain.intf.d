lib/bmo/explain.mli: Fmt Pref_relation Preferences Relation Schema Tuple
