lib/bmo/dominance.ml: Pref_relation Preferences Tuple
