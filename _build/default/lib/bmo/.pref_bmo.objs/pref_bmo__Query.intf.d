lib/bmo/query.mli: Pref_relation Preferences Relation Schema Tuple
