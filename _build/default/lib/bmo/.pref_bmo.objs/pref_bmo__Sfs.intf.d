lib/bmo/sfs.mli: Dominance Pref_relation Preferences Relation Schema Seq Tuple
