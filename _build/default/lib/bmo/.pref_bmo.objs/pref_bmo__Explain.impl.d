lib/bmo/explain.ml: Dominance Float Fmt List Pref Pref_relation Preferences Quality Relation Tuple
