lib/bmo/incremental.ml: Dominance List Naive Pref_relation Relation Schema Tuple
