lib/bmo/kdtree.mli:
