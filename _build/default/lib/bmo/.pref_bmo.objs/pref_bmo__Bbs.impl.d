lib/bmo/bbs.ml: Array Dnc Heap Kdtree List Pref_relation Relation
