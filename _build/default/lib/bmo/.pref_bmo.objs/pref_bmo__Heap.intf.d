lib/bmo/heap.mli:
