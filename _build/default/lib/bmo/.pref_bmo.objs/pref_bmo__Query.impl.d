lib/bmo/query.ml: Bnl Decompose Dominance Groupby List Naive Planner Pref_relation Relation
