lib/bmo/bnl.mli: Dominance Pref_relation Preferences Relation Schema Tuple
