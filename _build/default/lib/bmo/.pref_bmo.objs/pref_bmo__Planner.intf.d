lib/bmo/planner.mli: Pref_relation Preferences Relation Schema Tuple
