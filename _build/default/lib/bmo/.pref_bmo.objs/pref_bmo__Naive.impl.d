lib/bmo/naive.ml: Dominance List Pref_relation Relation
