lib/bmo/estimate.ml: Array Float
