lib/bmo/kdtree.ml: Array Float List
