lib/bmo/dnc.ml: Array Float Hashtbl List Pref_relation Relation Schema Tuple Value
