(** Grouped preference queries σ[P groupby A](R) (Definition 16).

    Declaratively, σ[P groupby A](R) := σ[A↔ & P](R); operationally it is a
    grouping of R by equal A-values with a per-group BMO query. Both
    implementations are provided and tested equal. *)

open Pref_relation

val query :
  Schema.t -> Preferences.Pref.t -> by:string list -> Relation.t -> Relation.t
(** Operational form: group by [by], evaluate σ[P] in each group. Result
    order: groups in first-appearance order. *)

val query_via_antichain :
  Schema.t -> Preferences.Pref.t -> by:string list -> Relation.t -> Relation.t
(** Declarative form: σ[A↔ & P](R), evaluated naively. *)
