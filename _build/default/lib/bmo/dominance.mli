(** Dominance tests — the 'better-than' checks driving BMO evaluation.

    [dom a b] holds when tuple [a] is strictly better than tuple [b]
    ([b <_P a]). All BMO algorithms are parameterised over such a test so
    they work for every preference constructor. *)

open Pref_relation

type t = Tuple.t -> Tuple.t -> bool

val of_pref : Schema.t -> Preferences.Pref.t -> t
(** Compiled dominance test of a preference term. *)

val counting : t -> t * (unit -> int)
(** Instrument a test with a comparison counter, for the cost experiments. *)
