open Pref_relation

type algorithm =
  | Alg_naive
  | Alg_bnl
  | Alg_decompose
  | Alg_auto

let algorithm_of_string = function
  | "naive" -> Some Alg_naive
  | "bnl" -> Some Alg_bnl
  | "decompose" -> Some Alg_decompose
  | "auto" -> Some Alg_auto
  | _ -> None

let algorithm_to_string = function
  | Alg_naive -> "naive"
  | Alg_bnl -> "bnl"
  | Alg_decompose -> "decompose"
  | Alg_auto -> "auto"

let sigma ?(algorithm = Alg_bnl) schema p rel =
  match algorithm with
  | Alg_naive -> Naive.query schema p rel
  | Alg_bnl -> Bnl.query schema p rel
  | Alg_decompose -> Decompose.eval schema p rel
  | Alg_auto -> fst (Planner.run schema p rel)

let sigma_groupby ?(algorithm = Alg_bnl) schema p ~by rel =
  match algorithm with
  | Alg_naive | Alg_decompose | Alg_auto -> Groupby.query schema p ~by rel
  | Alg_bnl ->
    let dom = Dominance.of_pref schema p in
    let rows =
      List.concat_map
        (fun g -> Bnl.maxima dom (Relation.rows g))
        (Relation.group_by rel by)
    in
    Relation.make (Relation.schema rel) rows

let sigma_levels schema p ~levels rel =
  (* iterated BMO: level 1 is sigma[P](R); level i+1 is sigma[P] of what is
     left after removing the better levels — exactly the level function of
     the database better-than graph (Definition 2), evaluated lazily *)
  if levels < 1 then invalid_arg "Query.sigma_levels: levels must be >= 1";
  let dom = Dominance.of_pref schema p in
  let rec go k remaining acc =
    if k = 0 || remaining = [] then List.concat (List.rev acc)
    else begin
      let best = Naive.maxima dom remaining in
      let rest = List.filter (fun t -> not (List.memq t best)) remaining in
      go (k - 1) rest (best :: acc)
    end
  in
  Relation.make (Relation.schema rel) (go levels (Relation.rows rel) [])

let perfect_matches schema p ~ideal rel =
  (* A perfect match (Definition 14b) is a tuple whose projection is maximal
     in the whole domain of wishes, not merely in R.  Deciding membership in
     max(P) needs the domain; [ideal] supplies a predicate for it (e.g. level
     1 under the intrinsic level function). *)
  Relation.select (fun t -> ideal t) (sigma schema p rel)
