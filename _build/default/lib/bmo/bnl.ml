open Pref_relation

let maxima (dom : Dominance.t) rows =
  (* Window of mutually undominated tuples seen so far.  A candidate
     dominated by a window tuple is discarded; window tuples dominated by
     the candidate are evicted.  With unbounded memory no temporary file is
     needed, so a single pass suffices (the in-memory special case of
     block-nested-loops from the skyline paper). *)
  let insert window t =
    let rec scan = function
      | [] -> Some []
      | w :: rest ->
        if dom w t then None
        else (
          match scan rest with
          | None -> None
          | Some kept -> Some (if dom t w then kept else w :: kept))
    in
    match scan window with
    | None -> window
    | Some kept -> t :: kept
  in
  List.rev (List.fold_left insert [] rows)

let query schema p rel =
  let dom = Dominance.of_pref schema p in
  Relation.make (Relation.schema rel) (maxima dom (Relation.rows rel))
