(** Divide & conquer maxima ([KLP75]) for Pareto preferences over numeric
    chains.

    Finds the maxima of d-dimensional float vectors (all coordinates
    maximised) by median splits on the first coordinate: the high half
    cannot be dominated by the low half, so only the low half's local maxima
    are filtered against the high half's. O(n log n) for fixed d on data
    without heavy first-coordinate ties; falls back to quadratic base cases
    otherwise. This is the divide & conquer family the paper's decomposition
    results are "preparing the ground" for. *)

open Pref_relation

val dominates : float array -> float array -> bool
(** Pointwise ≥ with at least one >. *)

val maxima : dims:(Tuple.t -> float array) -> Tuple.t list -> Tuple.t list
(** Maxima under vector dominance of [dims]; input order preserved. *)

val dims_of :
  Schema.t -> string list -> maximize:bool -> Tuple.t -> float array
(** Dimension extractor for HIGHEST ([maximize:true]) or LOWEST chains on
    the named numeric attributes. *)

val query :
  Schema.t -> attrs:string list -> maximize:bool -> Relation.t -> Relation.t
(** Skyline of the relation: σ[HIGHEST(a1) ⊗ ... ⊗ HIGHEST(ak)](R) (or all
    LOWEST with [maximize:false]). *)
