(* A binary max-heap on float priorities — the priority queue behind the
   best-first branch & bound traversal. *)

type 'a t = {
  mutable data : (float * 'a) array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let is_empty h = h.size = 0
let size h = h.size

let grow h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap (0., snd h.data.(0)) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst h.data.(i) > fst h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < h.size && fst h.data.(l) > fst h.data.(!largest) then largest := l;
  if r < h.size && fst h.data.(r) > fst h.data.(!largest) then largest := r;
  if !largest <> i then begin
    swap h i !largest;
    sift_down h !largest
  end

let push h priority v =
  if Array.length h.data = 0 then h.data <- Array.make 16 (priority, v);
  grow h;
  h.data.(h.size) <- (priority, v);
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let peek h = if h.size = 0 then None else Some h.data.(0)
