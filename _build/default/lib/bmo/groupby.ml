open Pref_relation
open Preferences

let query schema p ~by rel =
  let groups = Relation.group_by rel by in
  let dom = Dominance.of_pref schema p in
  let rows =
    List.concat_map (fun g -> Naive.maxima dom (Relation.rows g)) groups
  in
  Relation.make (Relation.schema rel) rows

let query_via_antichain schema p ~by rel =
  Naive.query schema (Pref.prior (Pref.antichain by) p) rel
