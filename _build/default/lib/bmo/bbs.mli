(** Branch & bound skyline over a kd-tree index (BBS-style).

    Realises the paper's roadmap item on index methods for efficient
    'better-than' testing: per-node bounding boxes let one dominance test
    discard a whole subtree, and the best-first order makes every reported
    point final (progressive delivery). Works for Pareto accumulations of
    same-direction numeric chains, like {!Dnc}. *)

open Pref_relation

type stats = {
  nodes_visited : int;
  points_tested : int;
  pruned_subtrees : int;
}

val maxima :
  dims:(Tuple.t -> float array) -> Tuple.t list -> Tuple.t list * stats
(** Skyline under vector dominance of [dims] (all coordinates maximised);
    input order preserved. *)

val query :
  Schema.t -> attrs:string list -> maximize:bool -> Relation.t ->
  Relation.t * stats
