(** Query explanation (§6.1: the LEVEL and DISTANCE quality functions "can
    be exploited for advanced query explanation").

    For a tuple, a preference and a database set, report whether the tuple
    is a best match, which tuples exclude it, its level in the database
    better-than graph, and its per-attribute quality values. *)

open Pref_relation

type quality =
  | Level of int
  | Distance of float
  | Opaque

type t = {
  tuple : Tuple.t;
  in_result : bool;
  dominators : Tuple.t list;
  graph_level : int;
  qualities : (string * quality) list;
}

val explain :
  Schema.t -> Preferences.Pref.t -> Relation.t -> Tuple.t -> t
(** O(|R|²) in the worst case (graph level computation); intended for
    interactive explanation, not bulk evaluation. *)

val qualities_of :
  Schema.t -> Preferences.Pref.t -> Tuple.t -> (string * quality) list

val unranked_pairs :
  Schema.t -> Preferences.Pref.t -> Tuple.t list -> (Tuple.t * Tuple.t) list
(** All unranked pairs with distinct projections — the "natural reservoir to
    negotiate compromises" of §4.1. *)

val pp : t Fmt.t
val to_string : t -> string
