open Pref_relation

let maxima (dom : Dominance.t) rows =
  List.filter
    (fun t -> not (List.exists (fun u -> dom u t) rows))
    rows

let query schema p rel =
  let dom = Dominance.of_pref schema p in
  Relation.make (Relation.schema rel) (maxima dom (Relation.rows rel))
