exception Error of string

type entry = {
  name : string;
  owner : string;
  description : string;
  term : Pref.t;
}

type t = {
  registry : Serialize.registry;
  mutable entries : entry list;  (** newest first; names unique *)
}

let create ?(registry = Serialize.empty_registry) () = { registry; entries = [] }

let entries repo = List.rev repo.entries
let size repo = List.length repo.entries

let find repo name =
  List.find_opt (fun e -> String.equal e.name name) repo.entries

let find_exn repo name =
  match find repo name with
  | Some e -> e
  | None -> raise (Error (Printf.sprintf "no preference named %S" name))

let mem repo name = find repo name <> None

let add repo ?(owner = "") ?(description = "") ~name term =
  if mem repo name then
    raise (Error (Printf.sprintf "preference %S already exists" name));
  repo.entries <- { name; owner; description; term } :: repo.entries

let replace repo ?(owner = "") ?(description = "") ~name term =
  repo.entries <-
    { name; owner; description; term }
    :: List.filter (fun e -> not (String.equal e.name name)) repo.entries

let remove repo name =
  let before = size repo in
  repo.entries <- List.filter (fun e -> not (String.equal e.name name)) repo.entries;
  size repo < before

let by_owner repo owner =
  List.rev (List.filter (fun e -> String.equal e.owner owner) repo.entries)

let term repo name = (find_exn repo name).term

(* Building complex preferences from stored ones — the compositional side
   of preference engineering over a repository. *)

let pareto_of repo names = Pref.pareto_all (List.map (term repo) names)
let prior_of repo names = Pref.prior_all (List.map (term repo) names)

(* ------------------------------------------------------------------ *)
(* Persistence: one record per line, tab-separated header fields, the
   term in the canonical Serialize format (which never contains tabs or
   newlines). *)

let escape_field s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_field s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      (match s.[i + 1] with
      | 't' -> Buffer.add_char buf '\t'
      | 'n' -> Buffer.add_char buf '\n'
      | c -> Buffer.add_char buf c);
      go (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let to_string repo =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# preference repository v1\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%s\t%s\n" (escape_field e.name)
           (escape_field e.owner)
           (escape_field e.description)
           (Serialize.to_string e.term)))
    (entries repo);
  Buffer.contents buf

let parse_line registry lineno line =
  match String.split_on_char '\t' line with
  | [ name; owner; description; term_src ] -> (
    try
      {
        name = unescape_field name;
        owner = unescape_field owner;
        description = unescape_field description;
        term = Serialize.of_string ~registry term_src;
      }
    with
    | Serialize.Error (msg, _) ->
      raise (Error (Printf.sprintf "line %d: %s" lineno msg))
    | Invalid_argument msg ->
      raise (Error (Printf.sprintf "line %d: %s" lineno msg)))
  | _ -> raise (Error (Printf.sprintf "line %d: malformed record" lineno))

let of_string ?(registry = Serialize.empty_registry) src =
  let repo = create ~registry () in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let e = parse_line registry (i + 1) line in
        if mem repo e.name then
          raise (Error (Printf.sprintf "line %d: duplicate name %S" (i + 1) e.name));
        repo.entries <- e :: repo.entries
      end)
    (String.split_on_char '\n' src);
  repo

let save path repo =
  let oc = open_out path in
  output_string oc (to_string repo);
  close_out oc

let load ?registry path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string ?registry s
