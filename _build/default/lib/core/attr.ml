type t = string list

let normalize l = List.sort_uniq String.compare l
let equal a b = normalize a = normalize b
let union a b = normalize (a @ b)
let mem a l = List.mem a l
let subset a b = List.for_all (fun x -> List.mem x b) a
let disjoint a b = not (List.exists (fun x -> List.mem x b) a)
let inter a b = normalize (List.filter (fun x -> List.mem x b) a)
let pp ppf l = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) l
