open Pref_relation

let pp_set ppf set =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Value.pp_quoted) set

(* Mixed binary operators are always parenthesised; only chains of one and
   the same associative operator print flat. *)
let rec pp ppf p = pp_in None ppf p

and pp_in parent ppf p =
  let open Pref in
  let binop sym p1 p2 =
    let doc ppf () =
      Fmt.pf ppf "%a %s %a" (pp_in (Some sym)) p1 sym (pp_in (Some sym)) p2
    in
    match parent with
    | Some psym when String.equal psym sym -> doc ppf ()
    | None -> doc ppf ()
    | Some _ -> Fmt.pf ppf "(%a)" doc ()
  in
  match p with
  | Pos (a, set) -> Fmt.pf ppf "POS(%s; %a)" a pp_set set
  | Neg (a, set) -> Fmt.pf ppf "NEG(%s; %a)" a pp_set set
  | Pos_neg (a, ps, ns) -> Fmt.pf ppf "POS/NEG(%s; %a; %a)" a pp_set ps pp_set ns
  | Pos_pos (a, p1, p2) -> Fmt.pf ppf "POS/POS(%s; %a; %a)" a pp_set p1 pp_set p2
  | Explicit (a, edges) ->
    Fmt.pf ppf "EXPLICIT(%s; {%a})" a
      Fmt.(
        list ~sep:(any ", ") (fun ppf (w, b) ->
            pf ppf "(%a < %a)" Value.pp_quoted w Value.pp_quoted b))
      edges
  | Around (a, z) -> Fmt.pf ppf "AROUND(%s, %g)" a z
  | Between (a, low, up) -> Fmt.pf ppf "BETWEEN(%s, [%g, %g])" a low up
  | Lowest a -> Fmt.pf ppf "LOWEST(%s)" a
  | Highest a -> Fmt.pf ppf "HIGHEST(%s)" a
  | Score (a, f) -> Fmt.pf ppf "SCORE(%s, %s)" a f.sname
  | Antichain l -> Fmt.pf ppf "%a<->" Attr.pp l
  | Dual p -> Fmt.pf ppf "(%a)^d" pp p
  | Pareto (p1, p2) -> binop "(x)" p1 p2
  | Prior (p1, p2) -> binop "&" p1 p2
  | Rank (f, p1, p2) ->
    Fmt.pf ppf "rank[%s](%a, %a)" f.cname (pp_in None) p1 (pp_in None) p2
  | Inter (p1, p2) -> binop "<>" p1 p2
  | Dunion (p1, p2) -> binop "+" p1 p2
  | Lsum s ->
    Fmt.pf ppf "(%a (+) %a : %s)" (pp_in None) s.ls_left (pp_in None)
      s.ls_right s.ls_attr
  | Two_graphs s ->
    let pp_edges ppf edges =
      Fmt.(list ~sep:(any ", "))
        (fun ppf (w, b) ->
          Fmt.pf ppf "(%a < %a)" Value.pp_quoted w Value.pp_quoted b)
        ppf edges
    in
    Fmt.pf ppf "TWOGRAPHS(%s; {%a}; %a; {%a}; %a)" s.tg_attr pp_edges s.tg_pos
      pp_set s.tg_pos_singles pp_edges s.tg_neg pp_set s.tg_neg_singles

let to_string p = Fmt.str "%a" pp p

let better_than_graph schema p rel =
  let rows = Relation.rows rel in
  let c = Pref.compile schema p in
  Pref_order.Graph.of_order ~equal:Tuple.equal (fun x y -> c y x) rows

let pp_graph schema attrs_to_show ppf g =
  let pp_node ppf t =
    match attrs_to_show with
    | [] -> Tuple.pp ppf t
    | names -> Tuple.pp ppf (Tuple.project schema t names)
  in
  Pref_order.Graph.pp_levels pp_node ppf g
