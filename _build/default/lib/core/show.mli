(** Rendering of preference terms and better-than graphs.

    ASCII stand-ins are used for the paper's operator glyphs: [(x)] for
    Pareto ⊗, [&] for prioritized, [<>] for intersection ♦, [+] for disjoint
    union, [(+)] for linear sum ⊕, [^d] for the dual. *)

open Pref_relation

val pp : Pref.t Fmt.t
val to_string : Pref.t -> string

val better_than_graph :
  Schema.t -> Pref.t -> Relation.t -> Tuple.t Pref_order.Graph.t
(** Materialise the better-than graph (Definition 2) of the database
    preference [P_R] — i.e. of [p] restricted to the rows of the relation. *)

val pp_graph :
  Schema.t -> string list -> Format.formatter -> Tuple.t Pref_order.Graph.t -> unit
(** Print a better-than graph level by level, as the paper's figures do,
    showing only the named attributes (all attributes when the list is
    empty). *)
