(** Equivalence-preserving simplification of preference terms.

    A small rewriting engine applying the laws of §4 syntactically: dual
    elimination, idempotence, anti-chain absorption, the generalised
    discrimination collapse (Proposition 4a) and the Pareto-to-intersection
    collapse on shared attribute sets (Proposition 6). This is the seed of
    the "preference query optimizer" the paper's outlook calls for: every
    rule preserves ≡ (Definition 13), hence BMO results (Proposition 7). *)

val step : Pref.t -> Pref.t option
(** One rewrite at the root, [None] if no rule applies. *)

val simplify : Pref.t -> Pref.t
(** Bottom-up rewriting to a fixpoint. Terminates: every rule either shrinks
    the term or moves strictly down a well-founded constructor ordering
    (⊗ → & / ♦, which no rule reverses). *)

val size : Pref.t -> int
(** Number of constructors, for optimizer metrics and tests. *)
