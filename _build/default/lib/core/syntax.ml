let ( &> ) p q = Pref.prior p q
let ( <*> ) p q = Pref.pareto p q
let ( <&> ) p q = Pref.inter p q
let ( <+> ) p q = Pref.dunion p q
let ( ~~ ) p = Pref.dual p

let pos = Pref.pos
let neg = Pref.neg
let around = Pref.around
let between = Pref.between
let lowest = Pref.lowest
let highest = Pref.highest
