(** Attribute-name sets, represented as sorted duplicate-free string lists.

    Preferences are formulated over sets of attribute names (Definition 1);
    combining preferences takes unions that may overlap — overlap is allowed
    by design ("conflicts ... must not be considered as a bug"). *)

type t = string list

val normalize : t -> t
val equal : t -> t -> bool
val union : t -> t -> t
val mem : string -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val inter : t -> t -> t
val pp : t Fmt.t
