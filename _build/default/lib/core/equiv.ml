open Pref_relation

let agree schema rows p q =
  Attr.equal (Pref.attrs p) (Pref.attrs q)
  &&
  let ltp = Pref.compile schema p and ltq = Pref.compile schema q in
  List.for_all
    (fun x -> List.for_all (fun y -> ltp x y = ltq x y) rows)
    rows

let agree_on_relation schema rel p q = agree schema (Relation.rows rel) p q

let agree_values p q values =
  List.for_all
    (fun x ->
      List.for_all (fun y -> Pref.lt_value p x y = Pref.lt_value q x y) values)
    values

(* Exhaustive tuples of a finite product domain. *)
let domain_tuples (domains : (string * Value.t list) list) =
  let schema =
    Schema.make
      (List.map
         (fun (a, vs) ->
           let ty =
             match vs with
             | v :: _ -> Option.value (Value.type_of v) ~default:Value.TStr
             | [] -> Value.TStr
           in
           (a, ty))
         domains)
  in
  let rec product = function
    | [] -> [ [] ]
    | (_, vs) :: rest ->
      let tails = product rest in
      List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) vs
  in
  (schema, List.map Tuple.make (product domains))

let agree_on_domains domains p q =
  let schema, tuples = domain_tuples domains in
  agree schema tuples p q

let counterexample schema rows p q =
  let ltp = Pref.compile schema p and ltq = Pref.compile schema q in
  let rec outer = function
    | [] -> None
    | x :: rest ->
      let rec inner = function
        | [] -> outer rest
        | y :: ys -> if ltp x y <> ltq x y then Some (x, y) else inner ys
      in
      inner rows
  in
  outer rows
