open Pref_relation

type layer =
  | Values of Value.t list
  | Others

type t = layer list

let validate layers =
  let seen_others = ref false in
  let all_values = ref [] in
  List.iter
    (fun layer ->
      match layer with
      | Others ->
        if !seen_others then
          invalid_arg "Layered: at most one 'other values' layer";
        seen_others := true
      | Values vs ->
        List.iter
          (fun v ->
            if List.exists (Value.equal v) !all_values then
              invalid_arg "Layered: layers must be pairwise disjoint";
            all_values := v :: !all_values)
          vs)
    layers;
  layers

let make layers = validate layers

let layer_index layers v =
  let rec go i = function
    | [] -> None
    | Values vs :: rest ->
      if List.exists (Value.equal v) vs then Some i else go (i + 1) rest
    | Others :: rest -> go (i + 1) rest
  in
  let explicit = go 0 layers in
  match explicit with
  | Some _ as r -> r
  | None ->
    let rec find_others i = function
      | [] -> None
      | Others :: _ -> Some i
      | Values _ :: rest -> find_others (i + 1) rest
    in
    find_others 0 layers

let lt layers x y =
  match layer_index layers x, layer_index layers y with
  | Some ix, Some iy -> ix > iy (* earlier layers are better *)
  | _ -> false

let better layers x y = lt layers y x

let level layers v = Option.map (fun i -> i + 1) (layer_index layers v)

(* The paper's informal characterisations (§3.3.2): each base preference as a
   linear sum of anti-chains. *)

let of_pos set = make [ Values set; Others ]
let of_neg set = make [ Others; Values set ]
let of_pos_neg ~pos ~neg = make [ Values pos; Others; Values neg ]
let of_pos_pos ~pos1 ~pos2 = make [ Values pos1; Values pos2; Others ]

let to_pref attr layers =
  (* Realise a layered order as a preference term.  The shapes below are
     exactly the paper's §3.3.2 characterisations:
       POS      = POS-set↔ ⊕ other-values↔
       NEG      = other-values↔ ⊕ NEG-set↔
       POS/NEG  = (POS-set↔ ⊕ other-values↔) ⊕ NEG-set↔
       POS/POS  = (POS1-set↔ ⊕ POS2-set↔) ⊕ other-values↔
       EXPLICIT = E ⊕ other-values↔  (k ≥ 2 explicit layers, Others last)  *)
  match layers with
  | [ Values s; Others ] -> Pref.pos attr s
  | [ Others; Values s ] -> Pref.neg attr s
  | [ Values p; Others; Values n ] -> Pref.pos_neg attr ~pos:p ~neg:n
  | [ Values p1; Values p2; Others ] -> Pref.pos_pos attr ~pos1:p1 ~pos2:p2
  | _ ->
    let rec explicit_prefix acc = function
      | Values vs :: rest -> explicit_prefix (vs :: acc) rest
      | [ Others ] -> Some (List.rev acc)
      | Others :: _ | [] -> None
    in
    (match explicit_prefix [] layers with
    | Some (upper_first :: _ :: _ as explicit_layers)
      when upper_first <> [] && List.for_all (fun l -> l <> []) explicit_layers
      ->
      let rec edges = function
        | upper :: (lower :: _ as rest) ->
          List.concat_map
            (fun worse -> List.map (fun b -> (worse, b)) upper)
            lower
          @ edges rest
        | [ _ ] | [] -> []
      in
      Pref.explicit attr (edges explicit_layers)
    | Some _ | None ->
      invalid_arg
        "Layered.to_pref: unsupported layer shape (need one of the POS \
         family shapes, or >= 2 non-empty explicit layers with 'others' \
         last)")
