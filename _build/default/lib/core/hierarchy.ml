open Pref_relation

let pos_as_pos_pos a set = Pref.pos_pos a ~pos1:set ~pos2:[]
let pos_as_pos_neg a set = Pref.pos_neg a ~pos:set ~neg:[]
let neg_as_pos_neg a set = Pref.pos_neg a ~pos:[] ~neg:set

let pos_pos_as_explicit a ~pos1 ~pos2 =
  if pos1 = [] || pos2 = [] then
    invalid_arg "Hierarchy.pos_pos_as_explicit: both value sets must be non-empty";
  let edges =
    List.concat_map (fun worse -> List.map (fun b -> (worse, b)) pos1) pos2
  in
  Pref.explicit a edges

let around_as_between a z = Pref.between a ~low:z ~up:z

let between_as_score a ~low ~up =
  Pref.score a
    ~name:(Printf.sprintf "-distance([%g, %g])" low up)
    (fun v -> -.Pref.distance_between v ~low ~up)

let around_as_score a z =
  Pref.score a
    ~name:(Printf.sprintf "-distance(%g)" z)
    (fun v -> -.Pref.distance_around v z)

let highest_as_score a =
  Pref.score a ~name:"identity" (fun v ->
      match Value.as_float v with Some f -> f | None -> Float.neg_infinity)

let lowest_as_score a =
  Pref.score a ~name:"negate" (fun v ->
      match Value.as_float v with Some f -> -.f | None -> Float.neg_infinity)

let inter_as_pareto p1 p2 = Pref.pareto p1 p2

let prior_as_rank ~scale p1 p2 =
  let f =
    {
      Pref.cname = Printf.sprintf "%g*x + y" scale;
      combine = (fun x y -> (scale *. x) +. y);
    }
  in
  Pref.rank f p1 p2
