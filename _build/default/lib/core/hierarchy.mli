(** The sub-constructor hierarchies of §3.4.

    [C1 ≼ C2] means the definition of C1 arises from C2 by specialising
    constraints. Each function here is the witness: it builds, with the
    super-constructor, a term equivalent to the given sub-constructor
    instance. The test suite checks the equivalences exhaustively.

    Hierarchies covered:
    - non-numerical: POS ≼ POS/POS ≼ EXPLICIT, POS ≼ POS/NEG, NEG ≼ POS/NEG
    - numerical: AROUND ≼ BETWEEN ≼ SCORE, LOWEST ≼ SCORE, HIGHEST ≼ SCORE
    - complex: ♦ ≼ ⊗ (Proposition 6) and the paper's suggested & ≼ rank(F). *)

open Pref_relation

val pos_as_pos_pos : string -> Value.t list -> Pref.t
(** POS(A, S) as POS/POS(A, S; ∅). *)

val pos_as_pos_neg : string -> Value.t list -> Pref.t
(** POS(A, S) as POS/NEG(A, S; ∅). *)

val neg_as_pos_neg : string -> Value.t list -> Pref.t
(** NEG(A, S) as POS/NEG(A, ∅; S). *)

val pos_pos_as_explicit : string -> pos1:Value.t list -> pos2:Value.t list -> Pref.t
(** POS/POS(A, S1; S2) as EXPLICIT with graph (S1)↔ ⊕ (S2)↔. Requires both
    sets non-empty (an empty EXPLICIT graph has no range and degenerates to
    an anti-chain). *)

val around_as_between : string -> float -> Pref.t
(** AROUND(A, z) as BETWEEN(A, [z, z]). *)

val between_as_score : string -> low:float -> up:float -> Pref.t
(** BETWEEN as SCORE with f(x) = -distance(x, [low, up]). *)

val around_as_score : string -> float -> Pref.t

val highest_as_score : string -> Pref.t
(** HIGHEST(A) as SCORE(A, f) with f(x) = x. *)

val lowest_as_score : string -> Pref.t
(** LOWEST(A) as SCORE(A, f) with f(x) = -x. *)

val inter_as_pareto : Pref.t -> Pref.t -> Pref.t
(** ♦ ≼ ⊗: for identical attribute sets, P1 ⊗ P2 ≡ P1 ♦ P2. *)

val prior_as_rank : scale:float -> Pref.t -> Pref.t -> Pref.t
(** The paper's suggested & ≼ rank(F) with a properly weighted F: combines
    scores as [scale*s1 + s2]. Equivalent to P1 & P2 when [s1] is injective
    on the carrier and [scale] exceeds the spread of [s2] divided by the
    smallest positive gap of [s1]. Raises if an operand is not scorable. *)
