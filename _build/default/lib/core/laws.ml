open Pref_relation

let agree = Equiv.agree

(* ------------------------------------------------------------------ *)
(* Order-theoretic predicates over a carrier                           *)

let spo_of schema p =
  let c = Pref.compile schema p in
  let names = Pref.attrs p in
  Pref_order.Spo.make
    ~equal:(fun x y -> Tuple.equal_on schema names x y)
    (fun x y -> c y x)

let is_spo_on schema rows p =
  Pref_order.Spo.is_strict_partial_order (spo_of schema p) rows

let is_chain_on schema rows p = Pref_order.Spo.is_chain (spo_of schema p) rows
let is_antichain_on schema rows p = Pref_order.Spo.is_antichain (spo_of schema p) rows

let disjoint_on schema rows p1 p2 =
  Pref_order.Spo.disjoint (spo_of schema p1) (spo_of schema p2) rows

(* ------------------------------------------------------------------ *)
(* Proposition 2: commutativity and associativity                      *)

let pareto_commutative schema rows p1 p2 =
  agree schema rows (Pref.pareto p1 p2) (Pref.pareto p2 p1)

let pareto_associative schema rows p1 p2 p3 =
  agree schema rows
    (Pref.pareto (Pref.pareto p1 p2) p3)
    (Pref.pareto p1 (Pref.pareto p2 p3))

let prior_associative schema rows p1 p2 p3 =
  agree schema rows
    (Pref.prior (Pref.prior p1 p2) p3)
    (Pref.prior p1 (Pref.prior p2 p3))

let inter_commutative schema rows p1 p2 =
  agree schema rows (Pref.inter p1 p2) (Pref.inter p2 p1)

let inter_associative schema rows p1 p2 p3 =
  agree schema rows
    (Pref.inter (Pref.inter p1 p2) p3)
    (Pref.inter p1 (Pref.inter p2 p3))

let dunion_commutative schema rows p1 p2 =
  agree schema rows (Pref.dunion p1 p2) (Pref.dunion p2 p1)

let dunion_associative schema rows p1 p2 p3 =
  agree schema rows
    (Pref.dunion (Pref.dunion p1 p2) p3)
    (Pref.dunion p1 (Pref.dunion p2 p3))

let lsum_associative ~attr (p1, d1) (p2, d2) (p3, d3) values =
  let left =
    Pref.lsum ~attr (Pref.lsum ~attr:"_l" (p1, d1) (p2, d2), d1 @ d2) (p3, d3)
  in
  let right =
    Pref.lsum ~attr (p1, d1) (Pref.lsum ~attr:"_r" (p2, d2) (p3, d3), d2 @ d3)
  in
  Equiv.agree_values left right values

(* ------------------------------------------------------------------ *)
(* Proposition 3: the law collection                                   *)

let dual_antichain schema rows names =
  agree schema rows (Pref.dual (Pref.antichain names)) (Pref.antichain names)

let dual_involution schema rows p = agree schema rows (Pref.dual (Pref.dual p)) p

let dual_lsum ~attr (p1, d1) (p2, d2) values =
  (* (P1 ⊕ P2)∂ ≡ P2∂ ⊕ P1∂ *)
  Equiv.agree_values
    (Pref.dual (Pref.lsum ~attr (p1, d1) (p2, d2)))
    (Pref.lsum ~attr (Pref.dual p2, d2) (Pref.dual p1, d1))
    values

let highest_is_dual_lowest schema rows a =
  agree schema rows (Pref.highest a) (Pref.dual (Pref.lowest a))

let dual_pos_is_neg schema rows a set =
  agree schema rows (Pref.dual (Pref.pos a set)) (Pref.neg a set)
  && agree schema rows (Pref.dual (Pref.neg a set)) (Pref.pos a set)

let inter_idempotent schema rows p = agree schema rows (Pref.inter p p) p

let inter_dual_is_antichain schema rows p =
  let a = Pref.attrs p in
  agree schema rows (Pref.inter p (Pref.dual p)) (Pref.antichain a)
  && agree schema rows
       (Pref.inter p (Pref.antichain a))
       (Pref.antichain a)

let prior_chain_preserving schema rows p1 p2 =
  (* Proposition 3(h): if P1 and P2 are chains then so are P1&P2, P2&P1. *)
  (not (is_chain_on schema rows p1 && is_chain_on schema rows p2))
  || (is_chain_on schema rows (Pref.prior p1 p2)
     && is_chain_on schema rows (Pref.prior p2 p1))

let prior_idempotent schema rows p =
  agree schema rows (Pref.prior p p) p
  && agree schema rows (Pref.prior p (Pref.dual p)) p

let prior_antichain_right schema rows p =
  agree schema rows (Pref.prior p (Pref.antichain (Pref.attrs p))) p

let prior_antichain_left schema rows p =
  let a = Pref.attrs p in
  agree schema rows (Pref.prior (Pref.antichain a) p) (Pref.antichain a)

let pareto_idempotent schema rows p = agree schema rows (Pref.pareto p p) p

let pareto_antichain_left schema rows names p =
  (* Proposition 3(m): A↔ ⊗ P ≡ A↔ & P, with no side condition. *)
  agree schema rows
    (Pref.pareto (Pref.antichain names) p)
    (Pref.prior (Pref.antichain names) p)

let pareto_dual_is_antichain schema rows p =
  let a = Pref.attrs p in
  agree schema rows (Pref.pareto p (Pref.dual p)) (Pref.antichain a)
  && agree schema rows (Pref.pareto p (Pref.antichain a)) (Pref.antichain a)

(* ------------------------------------------------------------------ *)
(* Propositions 4, 5 and 6                                             *)

let discrimination_shared schema rows p1 p2 =
  (* Proposition 4(a): P1 & P2 ≡ P1 when both act on the same attributes. *)
  Attr.equal (Pref.attrs p1) (Pref.attrs p2)
  && agree schema rows (Pref.prior p1 p2) p1

let discrimination_disjoint schema rows p1 p2 =
  (* Proposition 4(b): P1 & P2 ≡ P1 + (A1↔ & P2) for disjoint attributes. *)
  Attr.disjoint (Pref.attrs p1) (Pref.attrs p2)
  && agree schema rows
       (Pref.prior p1 p2)
       (Pref.dunion p1 (Pref.prior (Pref.antichain (Pref.attrs p1)) p2))

let non_discrimination schema rows p1 p2 =
  (* Proposition 5: P1 ⊗ P2 ≡ (P1 & P2) ♦ (P2 & P1). *)
  agree schema rows
    (Pref.pareto p1 p2)
    (Pref.inter (Pref.prior p1 p2) (Pref.prior p2 p1))

let pareto_is_inter_on_shared schema rows p1 p2 =
  (* Proposition 6: P1 ⊗ P2 ≡ P1 ♦ P2 for identical attribute sets. *)
  Attr.equal (Pref.attrs p1) (Pref.attrs p2)
  && agree schema rows (Pref.pareto p1 p2) (Pref.inter p1 p2)
