lib/core/syntax.ml: Pref
