lib/core/rewrite.ml: Attr Pref
