lib/core/attr.ml: Fmt List String
