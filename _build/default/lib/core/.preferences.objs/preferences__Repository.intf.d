lib/core/repository.mli: Pref Serialize
