lib/core/equiv.ml: Attr List Option Pref Pref_relation Relation Schema Tuple Value
