lib/core/hierarchy.mli: Pref Pref_relation Value
