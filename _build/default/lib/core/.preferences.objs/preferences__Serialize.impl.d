lib/core/serialize.ml: Buffer Char Fmt List Pref Pref_relation Printf String Value
