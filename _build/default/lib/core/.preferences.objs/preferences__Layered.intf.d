lib/core/layered.mli: Pref Pref_relation Value
