lib/core/laws.mli: Pref Pref_order Pref_relation Schema Tuple Value
