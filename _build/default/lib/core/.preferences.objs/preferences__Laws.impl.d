lib/core/laws.ml: Attr Equiv Pref Pref_order Pref_relation Tuple
