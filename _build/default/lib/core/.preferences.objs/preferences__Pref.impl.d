lib/core/pref.ml: Attr Float Hashtbl List Option Pref_order Pref_relation Printf Schema String Tuple Value
