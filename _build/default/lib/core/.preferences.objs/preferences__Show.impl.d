lib/core/show.ml: Attr Fmt Pref Pref_order Pref_relation Relation String Tuple Value
