lib/core/attr.mli: Fmt
