lib/core/serialize.mli: Fmt Pref Pref_relation Value
