lib/core/equiv.mli: Pref Pref_relation Relation Schema Tuple Value
