lib/core/quality.ml: Array List Option Pref Pref_order Pref_relation Show String Tuple Value
