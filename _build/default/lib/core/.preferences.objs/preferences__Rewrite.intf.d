lib/core/rewrite.mli: Pref
