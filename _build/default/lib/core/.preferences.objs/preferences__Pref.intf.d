lib/core/pref.mli: Attr Pref_order Pref_relation Schema Tuple Value
