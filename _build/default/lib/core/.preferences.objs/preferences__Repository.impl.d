lib/core/repository.ml: Buffer List Pref Printf Serialize String
