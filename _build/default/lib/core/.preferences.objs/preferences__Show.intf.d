lib/core/show.mli: Fmt Format Pref Pref_order Pref_relation Relation Schema Tuple
