lib/core/syntax.mli: Pref Pref_relation Value
