lib/core/hierarchy.ml: Float List Pref Pref_relation Printf Value
