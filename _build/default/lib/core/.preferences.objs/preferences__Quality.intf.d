lib/core/quality.mli: Pref Pref_relation Relation Schema Tuple Value
