lib/core/layered.ml: List Option Pref Pref_relation Value
