(** A persistent preference repository (§7 outlook).

    Named preference terms with owners and descriptions, persisted through
    {!Serialize}. Supports the compositional workflow of preference
    engineering: look up stored preferences by name and accumulate them with
    ⊗ or &, including preferences from several parties (owners). *)

exception Error of string

type entry = {
  name : string;
  owner : string;
  description : string;
  term : Pref.t;
}

type t

val create : ?registry:Serialize.registry -> unit -> t
(** The registry resolves SCORE / rank(F) function names on load. *)

val entries : t -> entry list
(** Insertion order. *)

val size : t -> int
val mem : t -> string -> bool
val find : t -> string -> entry option

val find_exn : t -> string -> entry
(** Raises {!Error} for unknown names. *)

val term : t -> string -> Pref.t

val add : t -> ?owner:string -> ?description:string -> name:string -> Pref.t -> unit
(** Raises {!Error} if the name is taken. *)

val replace : t -> ?owner:string -> ?description:string -> name:string -> Pref.t -> unit
val remove : t -> string -> bool

val by_owner : t -> string -> entry list

val pareto_of : t -> string list -> Pref.t
(** Pareto accumulation of stored preferences, by name. *)

val prior_of : t -> string list -> Pref.t

val to_string : t -> string
val of_string : ?registry:Serialize.registry -> string -> t
(** Raises {!Error} on malformed input or duplicate names. *)

val save : string -> t -> unit
val load : ?registry:Serialize.registry -> string -> t
