(** Infix operators for preference engineering.

    [open Preferences.Syntax] and write terms the way the paper does:
    {[
      let q1 = p5 &> (p1 <*> p2 <*> p3) &> p4
      (* P5 & ((P1 ⊗ P2 ⊗ P3) & P4) up to associativity *)
    ]}
    [&>] is prioritized accumulation (left associative, so a chain reads as
    cascading importance), [<*>] Pareto accumulation, [<&>] intersection,
    [<+>] disjoint union, [~~] the dual. The base constructors are
    re-exported for convenience. *)

open Pref_relation

val ( &> ) : Pref.t -> Pref.t -> Pref.t
val ( <*> ) : Pref.t -> Pref.t -> Pref.t
val ( <&> ) : Pref.t -> Pref.t -> Pref.t
val ( <+> ) : Pref.t -> Pref.t -> Pref.t
val ( ~~ ) : Pref.t -> Pref.t

val pos : string -> Value.t list -> Pref.t
val neg : string -> Value.t list -> Pref.t
val around : string -> float -> Pref.t
val between : string -> low:float -> up:float -> Pref.t
val lowest : string -> Pref.t
val highest : string -> Pref.t
