(** Equivalence of preference terms (Definition 13), checked exhaustively
    over finite carriers.

    [P1 ≡ P2] requires equal attribute sets and agreement of [<_P] on every
    pair of domain values. Over an infinite domain this is undecidable in
    general; the checks here quantify over a supplied finite carrier, which
    is exactly what the property-based tests need (and what Proposition 7
    needs: equivalent preferences give identical BMO results on every
    database set drawn from the carrier). *)

open Pref_relation

val agree : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
(** [agree schema rows p q]: same attribute sets and same order on every pair
    from [rows]. *)

val agree_on_relation : Schema.t -> Relation.t -> Pref.t -> Pref.t -> bool

val agree_values : Pref.t -> Pref.t -> Value.t list -> bool
(** Value-level variant for single-attribute preferences. *)

val domain_tuples :
  (string * Value.t list) list -> Schema.t * Tuple.t list
(** All tuples of the finite product domain, plus its schema; the carrier
    for exhaustive Definition-13 checks. *)

val agree_on_domains :
  (string * Value.t list) list -> Pref.t -> Pref.t -> bool
(** [P1 ≡ P2] decided exhaustively over the given finite domains — the
    literal Definition 13 when the attribute domains really are finite. *)

val counterexample :
  Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> (Tuple.t * Tuple.t) option
(** First pair on which the two orders disagree, for test diagnostics. *)
