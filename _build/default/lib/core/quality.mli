(** Quality functions LEVEL and DISTANCE (§2, §6.1).

    Non-numerical base preferences induce a discrete level function (level 1
    = maximal values); numerical base preferences induce a continuous
    distance function. Preference SQL exposes both through the [BUT ONLY]
    clause to supervise required quality, and they serve query explanation. *)

open Pref_relation

val level : Pref.t -> Value.t -> int option
(** Intrinsic level of a value under a non-numerical base preference:
    POS (1/2), NEG (1/2), POS/NEG (1/2/3), POS/POS (1/2/3), EXPLICIT (graph
    level, with out-of-range values one level below the deepest), and linear
    sums of such preferences. [None] for numerical or complex terms. *)

val distance : Pref.t -> Value.t -> float option
(** Distance for AROUND and BETWEEN (Definition 7); [None] otherwise. *)

val base_for_attr : Pref.t -> string -> Pref.t option
(** The first base preference on the given attribute inside a complex term —
    how [BUT ONLY LEVEL(color) <= 2] locates the preference it supervises. *)

val level_of : Schema.t -> Pref.t -> string -> Tuple.t -> int option
(** [level_of schema p attr t]: intrinsic level of [t]'s value under the base
    preference on [attr] inside [p]. *)

val distance_of : Schema.t -> Pref.t -> string -> Tuple.t -> float option

val level_in_graph : Schema.t -> Pref.t -> Relation.t -> Tuple.t -> int
(** Level of a tuple in the better-than graph of the database preference
    [P_R] (Definition 2 applied to [R]); an O(|R|²) diagnostic. *)
