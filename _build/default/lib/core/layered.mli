(** Layered value orders — the linear-sum (⊕) design method of §3.3.2.

    The paper characterises every non-numerical base preference as a linear
    sum of anti-chains: a stack of disjoint value layers, earlier layers
    strictly better, values within a layer unranked, with an optional
    "all other domain values" layer. This module implements that reading
    directly, and {!to_pref} realises a layered order back as a preference
    term, which the test suite proves equivalent to the Definition-6
    formal semantics — verifying the paper's claim that ⊕ is "a convenient
    design and proof method for base preference constructors". *)

open Pref_relation

type layer =
  | Values of Value.t list  (** an explicit anti-chain of values *)
  | Others  (** every domain value not listed in any explicit layer *)

type t = layer list
(** Layers in decreasing quality; level of layer [i] is [i + 1]. *)

val make : layer list -> t
(** Validates: explicit layers pairwise disjoint, at most one [Others].
    Raises [Invalid_argument] otherwise. *)

val lt : t -> Value.t -> Value.t -> bool
(** [lt l x y] iff the layer of [x] is strictly deeper than the layer of [y].
    Values in no layer (when [Others] is absent) are unranked. *)

val better : t -> Value.t -> Value.t -> bool
val level : t -> Value.t -> int option

val of_pos : Value.t list -> t
(** POS-set↔ ⊕ other-values↔. *)

val of_neg : Value.t list -> t
(** other-values↔ ⊕ NEG-set↔. *)

val of_pos_neg : pos:Value.t list -> neg:Value.t list -> t
(** (POS-set↔ ⊕ other-values↔) ⊕ NEG-set↔. *)

val of_pos_pos : pos1:Value.t list -> pos2:Value.t list -> t
(** (POS1-set↔ ⊕ POS2-set↔) ⊕ other-values↔. *)

val to_pref : string -> t -> Pref.t
(** Realise a layered order as a preference term on the given attribute.
    Supports the four POS-family shapes and stacks of ≥ 2 non-empty explicit
    layers with [Others] last (realised as EXPLICIT). Raises
    [Invalid_argument] on other shapes. *)
