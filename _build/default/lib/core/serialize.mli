(** Canonical textual serialization of preference terms.

    The paper's outlook (§7) calls for "a persistent preference repository";
    this module provides its storage format: a total printer covering every
    constructor (unlike the Preference SQL surface syntax) and a parser that
    round-trips it. Function-valued components (SCORE and rank(F)) are
    stored by name and resolved against a registry on load; combiners
    produced by {!Pref.weighted_sum} are recognised structurally and need no
    registration.

    Grammar sketch: [POS(attr; {values})], [POSNEG(a; {..}; {..})],
    [EXPLICIT(a; {(worse < better), ...})], [AROUND(a; num)],
    [BETWEEN(a; lo; hi)], [LOWEST(a)], [SCORE(a; "name")],
    [ANTICHAIN(a, b)], [DUAL(t)], [PARETO(t; t)], [PRIOR(t; t)],
    [RANK("name"; t; t)], [INTER(t; t)], [DUNION(t; t)],
    [LSUM(a; t; {dom}; t; {dom})]. Floats print in hexadecimal ([%h]) so the
    round-trip is exact; strings use OCaml escaping; dates print as
    [YYYY-MM-DD]. *)

open Pref_relation

exception Error of string * int
(** Message and byte offset. *)

type registry = {
  scores : (string * (Value.t -> float)) list;
  combiners : (string * (float -> float -> float)) list;
}

val empty_registry : registry

val parse_weighted_sum : string -> Pref.combine_fn option
(** Recognise the name shape produced by {!Pref.weighted_sum}. *)

val pp : Pref.t Fmt.t
val to_string : Pref.t -> string

val of_string : ?registry:registry -> string -> Pref.t
(** Raises {!Error} on malformed input or unknown function names. All smart
    constructor validations run, so a stored term that violates an invariant
    (e.g. a cyclic EXPLICIT graph) is rejected with [Invalid_argument]. *)
