(** The preference algebra's law collection (§4), as executable checks.

    Every function decides one law of Propositions 2–6 exhaustively over a
    finite carrier of tuples. The property-based test suite instantiates them
    with random preferences and carriers; the bench harness re-verifies them
    on large instances. A law function returns [true] when the law holds on
    the given carrier. *)

open Pref_relation

(** {1 Order-theoretic predicates} *)

val spo_of : Schema.t -> Pref.t -> Tuple.t Pref_order.Spo.t
(** The strict order denoted by a term, with projection equality on the
    term's attribute set. *)

val is_spo_on : Schema.t -> Tuple.t list -> Pref.t -> bool
(** Proposition 1 on a carrier: the term denotes a strict partial order. *)

val is_chain_on : Schema.t -> Tuple.t list -> Pref.t -> bool
val is_antichain_on : Schema.t -> Tuple.t list -> Pref.t -> bool

val disjoint_on : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
(** Definition 4 on a carrier: the ranges of the two preferences are
    disjoint — the semantic precondition of [P1 + P2]. *)

(** {1 Proposition 2 — commutativity and associativity} *)

val pareto_commutative : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
val pareto_associative :
  Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> Pref.t -> bool
val prior_associative :
  Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> Pref.t -> bool
val inter_commutative : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
val inter_associative :
  Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> Pref.t -> bool
val dunion_commutative : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
val dunion_associative :
  Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> Pref.t -> bool

val lsum_associative :
  attr:string ->
  Pref.t * Value.t list ->
  Pref.t * Value.t list ->
  Pref.t * Value.t list ->
  Value.t list ->
  bool
(** Associativity of ⊕ at the value level, over the given carrier values. *)

(** {1 Proposition 3 — further laws} *)

val dual_antichain : Schema.t -> Tuple.t list -> string list -> bool
(** (a) [(S↔)∂ ≡ S↔]. *)

val dual_involution : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (b) [(P∂)∂ ≡ P]. *)

val dual_lsum :
  attr:string ->
  Pref.t * Value.t list ->
  Pref.t * Value.t list ->
  Value.t list ->
  bool
(** (c) [(P1 ⊕ P2)∂ ≡ P2∂ ⊕ P1∂]. *)

val highest_is_dual_lowest : Schema.t -> Tuple.t list -> string -> bool
(** (d) [HIGHEST ≡ LOWEST∂]. *)

val dual_pos_is_neg : Schema.t -> Tuple.t list -> string -> Value.t list -> bool
(** (e) [POS∂ ≡ NEG] and [NEG∂ ≡ POS] for equal value sets. *)

val inter_idempotent : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (f) [P ♦ P ≡ P]. *)

val inter_dual_is_antichain : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (g) [P ♦ P∂ ≡ P ♦ A↔ ≡ A↔]. *)

val prior_chain_preserving : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
(** (h) chains are closed under &. *)

val prior_idempotent : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (i) [P & P ≡ P & P∂ ≡ P]. *)

val prior_antichain_right : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (j) [P & A↔ ≡ P]. *)

val prior_antichain_left : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (k) [A↔ & P ≡ A↔] for P on the attributes A. *)

val pareto_idempotent : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (l) [P ⊗ P ≡ P]. *)

val pareto_antichain_left :
  Schema.t -> Tuple.t list -> string list -> Pref.t -> bool
(** (m) [A↔ ⊗ P ≡ A↔ & P]. *)

val pareto_dual_is_antichain : Schema.t -> Tuple.t list -> Pref.t -> bool
(** (n) [P ⊗ A↔ ≡ P ⊗ P∂ ≡ A↔] for P on the attributes A. *)

(** {1 Propositions 4, 5 and 6 — the decomposition theorems} *)

val discrimination_shared : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
(** 4(a): [P1 & P2 ≡ P1] for identical attribute sets (includes the
    attribute-set precondition in the check). *)

val discrimination_disjoint :
  Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
(** 4(b): [P1 & P2 ≡ P1 + (A1↔ & P2)] for disjoint attribute sets. *)

val non_discrimination : Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
(** Proposition 5: [P1 ⊗ P2 ≡ (P1 & P2) ♦ (P2 & P1)]. *)

val pareto_is_inter_on_shared :
  Schema.t -> Tuple.t list -> Pref.t -> Pref.t -> bool
(** Proposition 6: [P1 ⊗ P2 ≡ P1 ♦ P2] for identical attribute sets. *)
