open Pref_relation
open Preferences

type event =
  | Wanted of string * Value.t
  | Rejected of string * Value.t
  | Target of string * float
  | Range of string * float * float
  | Wants_low of string
  | Wants_high of string

let event_attr = function
  | Wanted (a, _) | Rejected (a, _) | Target (a, _) | Range (a, _, _)
  | Wants_low a | Wants_high a ->
    a

(* ------------------------------------------------------------------ *)
(* Extracting events from Preference SQL queries                       *)

let rec events_of_condition (c : Pref_sql.Ast.condition) =
  match c with
  | Pref_sql.Ast.Cmp (a, Pref_sql.Ast.Eq, v) -> (
    match Value.as_float v with
    | Some f when (match v with Value.Str _ -> false | _ -> true) ->
      [ Wanted (a, v); Target (a, f) ]
    | _ -> [ Wanted (a, v) ])
  | Pref_sql.Ast.Cmp (a, Pref_sql.Ast.Neq, v) -> [ Rejected (a, v) ]
  | Pref_sql.Ast.Cmp (a, (Pref_sql.Ast.Le | Pref_sql.Ast.Lt), _) ->
    [ Wants_low a ]
  | Pref_sql.Ast.Cmp (a, (Pref_sql.Ast.Ge | Pref_sql.Ast.Gt), _) ->
    [ Wants_high a ]
  | Pref_sql.Ast.In (a, vs) -> List.map (fun v -> Wanted (a, v)) vs
  | Pref_sql.Ast.Not_in (a, vs) -> List.map (fun v -> Rejected (a, v)) vs
  | Pref_sql.Ast.Between_cond (a, low, up) -> (
    match Value.as_float low, Value.as_float up with
    | Some l, Some u -> [ Range (a, l, u) ]
    | _ -> [])
  | Pref_sql.Ast.Like _ | Pref_sql.Ast.Is_null _ | Pref_sql.Ast.Is_not_null _
  | Pref_sql.Ast.Cmp_attr _ ->
    []
  | Pref_sql.Ast.And (c1, c2) | Pref_sql.Ast.Or (c1, c2) ->
    events_of_condition c1 @ events_of_condition c2
  | Pref_sql.Ast.Not c1 ->
    (* a negated equality is a rejection; deeper negations are dropped *)
    (match c1 with
    | Pref_sql.Ast.Cmp (a, Pref_sql.Ast.Eq, v) -> [ Rejected (a, v) ]
    | Pref_sql.Ast.In (a, vs) -> List.map (fun v -> Rejected (a, v)) vs
    | _ -> [])

let rec events_of_pref (p : Pref_sql.Ast.pref) =
  match p with
  | Pref_sql.Ast.P_pos (a, vs) -> List.map (fun v -> Wanted (a, v)) vs
  | Pref_sql.Ast.P_neg (a, vs) -> List.map (fun v -> Rejected (a, v)) vs
  | Pref_sql.Ast.P_pos_pos (a, v1, v2) ->
    List.map (fun v -> Wanted (a, v)) (v1 @ v2)
  | Pref_sql.Ast.P_pos_neg (a, vs, ns) ->
    List.map (fun v -> Wanted (a, v)) vs @ List.map (fun v -> Rejected (a, v)) ns
  | Pref_sql.Ast.P_around (a, v) -> (
    match Value.as_float v with Some f -> [ Target (a, f) ] | None -> [])
  | Pref_sql.Ast.P_between (a, low, up) -> (
    match Value.as_float low, Value.as_float up with
    | Some l, Some u -> [ Range (a, l, u) ]
    | _ -> [])
  | Pref_sql.Ast.P_lowest a -> [ Wants_low a ]
  | Pref_sql.Ast.P_highest a -> [ Wants_high a ]
  | Pref_sql.Ast.P_explicit (a, edges) ->
    List.map (fun (_, better) -> Wanted (a, better)) edges
  | Pref_sql.Ast.P_score _ -> []
  | Pref_sql.Ast.P_rank (_, p1, p2)
  | Pref_sql.Ast.P_pareto (p1, p2)
  | Pref_sql.Ast.P_prior (p1, p2) ->
    events_of_pref p1 @ events_of_pref p2
  | Pref_sql.Ast.P_dual p1 -> events_of_pref p1

let events_of_query (q : Pref_sql.Ast.query) =
  let where = match q.Pref_sql.Ast.where with Some c -> events_of_condition c | None -> [] in
  let prefs =
    List.concat_map events_of_pref
      (Option.to_list q.Pref_sql.Ast.preferring @ q.Pref_sql.Ast.cascade)
  in
  where @ prefs

let events_of_log queries = List.concat_map events_of_query queries

let parse_log lines =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        try Some (Pref_sql.Parser.parse_query line) with
        | Pref_sql.Parser.Error _ -> None)
    lines

(* ------------------------------------------------------------------ *)
(* Mining                                                              *)

type config = {
  min_support : float;  (** fraction of the attribute's events a value needs *)
  max_set_size : int;  (** cap for mined POS/NEG sets *)
}

let default_config = { min_support = 0.2; max_set_size = 4 }

type attribute_report = {
  attr : string;
  occurrences : int;
  mined : Pref.t option;
}

let count_values pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let key = Pref.value_key v in
      match Hashtbl.find_opt tbl key with
      | Some (count, _) -> Hashtbl.replace tbl key (count + 1, v)
      | None -> Hashtbl.add tbl key (1, v))
    pairs;
  Hashtbl.fold (fun _ (count, v) acc -> (count, v) :: acc) tbl []
  |> List.sort (fun (c1, v1) (c2, v2) ->
         match compare c2 c1 with 0 -> Value.compare v1 v2 | c -> c)

let frequent config total counted =
  let threshold = config.min_support *. float_of_int total in
  List.filteri
    (fun i (count, _) ->
      i < config.max_set_size && float_of_int count >= threshold)
    counted
  |> List.map snd

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mine_attribute ?(config = default_config) attr events =
  let mine = List.filter (fun e -> String.equal (event_attr e) attr) events in
  let total = List.length mine in
  if total = 0 then None
  else begin
    let wanted = List.filter_map (function Wanted (_, v) -> Some v | _ -> None) mine in
    let rejected =
      List.filter_map (function Rejected (_, v) -> Some v | _ -> None) mine
    in
    let targets = List.filter_map (function Target (_, f) -> Some f | _ -> None) mine in
    let ranges =
      List.filter_map (function Range (_, l, u) -> Some (l, u) | _ -> None) mine
    in
    let lows = List.filter (function Wants_low _ -> true | _ -> false) mine in
    let highs = List.filter (function Wants_high _ -> true | _ -> false) mine in
    let n_wanted = List.length wanted
    and n_rejected = List.length rejected
    and n_targets = List.length targets
    and n_ranges = List.length ranges
    and n_lows = List.length lows
    and n_highs = List.length highs in
    (* pick the dominant signal family for this attribute *)
    let categorical = n_wanted + n_rejected in
    let numeric = n_targets + n_ranges in
    let directional = n_lows + n_highs in
    if categorical >= numeric && categorical >= directional && categorical > 0
    then begin
      let pos = frequent config (max 1 n_wanted) (count_values wanted) in
      let neg =
        List.filter
          (fun v -> not (List.exists (Value.equal v) pos))
          (frequent config (max 1 n_rejected) (count_values rejected))
      in
      match pos, neg with
      | [], [] -> None
      | pos, [] -> Some (Pref.pos attr pos)
      | [], neg -> Some (Pref.neg attr neg)
      | pos, neg -> Some (Pref.pos_neg attr ~pos ~neg)
    end
    else if numeric >= directional && numeric > 0 then
      if n_ranges > n_targets then begin
        let low = mean (List.map fst ranges) and up = mean (List.map snd ranges) in
        Some (Pref.between attr ~low:(Float.min low up) ~up:(Float.max low up))
      end
      else Some (Pref.around attr (mean targets))
    else if directional > 0 then
      Some (if n_lows >= n_highs then Pref.lowest attr else Pref.highest attr)
    else None
  end

let attribute_frequencies events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let a = event_attr e in
      Hashtbl.replace tbl a (1 + Option.value (Hashtbl.find_opt tbl a) ~default:0))
    events;
  Hashtbl.fold (fun a c acc -> (a, c) :: acc) tbl []
  |> List.sort (fun (a1, c1) (a2, c2) ->
         match compare c2 c1 with 0 -> String.compare a1 a2 | c -> c)

let mine ?(config = default_config) events =
  let freqs = attribute_frequencies events in
  let reports =
    List.map
      (fun (attr, occurrences) ->
        { attr; occurrences; mined = mine_attribute ~config attr events })
      freqs
  in
  (* attributes that are asked about more often matter more: bucket by
     frequency, Pareto within a bucket, prioritized across buckets *)
  let mined = List.filter (fun r -> r.mined <> None) reports in
  let rec buckets = function
    | [] -> []
    | r :: rest ->
      let same, others =
        List.partition (fun r' -> r'.occurrences = r.occurrences) rest
      in
      (r :: same) :: buckets others
  in
  let term =
    match mined with
    | [] -> None
    | _ ->
      let bucket_terms =
        List.map
          (fun bucket -> Pref.pareto_all (List.filter_map (fun r -> r.mined) bucket))
          (buckets mined)
      in
      Some (Pref.prior_all bucket_terms)
  in
  (term, reports)

let mine_queries ?config queries = mine ?config (events_of_log queries)

let mine_log ?config lines = mine_queries ?config (parse_log lines)
