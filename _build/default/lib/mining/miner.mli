(** Preference mining from query log files (§7 outlook).

    Repeated hard constraints in a user's query history reveal soft
    preferences: the values a user keeps asking for become POS sets, the
    ones they exclude become NEG sets, repeated numeric targets become
    AROUND preferences, repeated ranges become BETWEEN, and ordering
    comparisons become LOWEST / HIGHEST. Attributes that occur more often
    are treated as more important: mined per-attribute preferences are
    Pareto-accumulated within a frequency tier and prioritized across
    tiers. *)

open Pref_relation
open Preferences

type event =
  | Wanted of string * Value.t
  | Rejected of string * Value.t
  | Target of string * float
  | Range of string * float * float
  | Wants_low of string
  | Wants_high of string

val event_attr : event -> string

val events_of_condition : Pref_sql.Ast.condition -> event list
val events_of_pref : Pref_sql.Ast.pref -> event list
val events_of_query : Pref_sql.Ast.query -> event list
val events_of_log : Pref_sql.Ast.query list -> event list

val parse_log : string list -> Pref_sql.Ast.query list
(** One query per line; blank lines, [#] comments and unparsable lines are
    skipped. *)

type config = {
  min_support : float;
  max_set_size : int;
}

val default_config : config
(** min_support = 0.2, max_set_size = 4. *)

type attribute_report = {
  attr : string;
  occurrences : int;
  mined : Pref.t option;
}

val mine_attribute : ?config:config -> string -> event list -> Pref.t option

val attribute_frequencies : event list -> (string * int) list
(** Most frequently constrained attributes first. *)

val mine : ?config:config -> event list -> Pref.t option * attribute_report list
val mine_queries :
  ?config:config -> Pref_sql.Ast.query list -> Pref.t option * attribute_report list
val mine_log :
  ?config:config -> string list -> Pref.t option * attribute_report list
