lib/mining/miner.ml: Float Hashtbl List Option Pref Pref_relation Pref_sql Preferences String Value
