lib/mining/miner.mli: Pref Pref_relation Pref_sql Preferences Value
