open Pref_relation

type correlation = Independent | Correlated | Anti_correlated

let correlation_to_string = function
  | Independent -> "independent"
  | Correlated -> "correlated"
  | Anti_correlated -> "anti-correlated"

let point rng ~dims correlation =
  match correlation with
  | Independent -> Array.init dims (fun _ -> Rng.float rng)
  | Correlated ->
    (* Points near the diagonal: a base quality plus small per-dimension
       jitter (the skyline benchmark's 'correlated' family). *)
    let base = Rng.float rng in
    Array.init dims (fun _ ->
        Float.min 1.0
          (Float.max 0.0 (Dist.gaussian rng ~mean:base ~stddev:0.05)))
  | Anti_correlated ->
    (* Points near (not on) the anti-diagonal plane sum(x_i) = dims/2: good
       in one dimension means bad in the others, which blows up the skyline.
       The per-dimension jitter keeps a fraction of the points strictly
       inside the plane so the skyline is large but not the whole set. *)
    let target = float_of_int dims /. 2.0 in
    let v =
      Array.init dims (fun _ ->
          Float.min 1.0
            (Float.max 0.0 (Dist.gaussian rng ~mean:0.5 ~stddev:0.35)))
    in
    let sum = Array.fold_left ( +. ) 0.0 v in
    let shift = (target -. sum) /. float_of_int dims in
    Array.map
      (fun x ->
        let jitter = Dist.gaussian rng ~mean:0.0 ~stddev:0.03 in
        Float.min 1.0 (Float.max 0.0 (x +. shift +. jitter)))
      v

let dim_name i = Printf.sprintf "d%d" i

let relation ?(seed = 42) ~n ~dims correlation =
  let rng = Rng.create seed in
  let schema =
    Schema.make (List.init dims (fun i -> (dim_name i, Value.TFloat)))
  in
  let rows =
    List.init n (fun _ ->
        let p = point rng ~dims correlation in
        Tuple.of_array (Array.map (fun f -> Value.Float f) p))
  in
  Relation.make schema rows

let dim_names dims = List.init dims dim_name
