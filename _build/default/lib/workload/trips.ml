open Pref_relation

let schema =
  Schema.make
    [
      ("oid", Value.TInt);
      ("destination", Value.TStr);
      ("start_date", Value.TDate);
      ("duration", Value.TInt);
      ("price", Value.TInt);
    ]

let destinations =
  [| "Crete"; "Mallorca"; "Tenerife"; "Cyprus"; "Madeira"; "Malta"; "Rhodes" |]

let date_of_offset days =
  (* Offsets count from 2001-11-01, around the paper's trip query date.
     Invert the day count by scanning months; ranges here are tiny. *)
  let rec advance d ~year ~month ~day =
    if d = 0 then Value.date ~year ~month ~day
    else
      let dim =
        match month with
        | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
        | 4 | 6 | 9 | 11 -> 30
        | _ -> if (year mod 4 = 0 && year mod 100 <> 0) || year mod 400 = 0 then 29 else 28
      in
      if day < dim then advance (d - 1) ~year ~month ~day:(day + 1)
      else if month < 12 then advance (d - 1) ~year ~month:(month + 1) ~day:1
      else advance (d - 1) ~year:(year + 1) ~month:1 ~day:1
  in
  advance days ~year:2001 ~month:11 ~day:1

let row rng oid =
  let destination = Rng.choice rng destinations in
  let start = date_of_offset (Rng.range rng ~lo:0 ~hi:89) in
  let duration =
    Dist.weighted_choice rng [ (3., 7); (2., 10); (3., 14); (1., 21); (1., 5) ]
  in
  let price =
    int_of_float
      (Float.max 99.
         (Dist.gaussian rng
            ~mean:(250. +. (45. *. float_of_int duration))
            ~stddev:120.))
  in
  Tuple.make
    [
      Value.Int oid; Value.Str destination; start; Value.Int duration;
      Value.Int price;
    ]

let relation ?(seed = 23) ~n () =
  let rng = Rng.create seed in
  Relation.make schema (List.init n (fun i -> row rng (i + 1)))
