(** Distributions over a deterministic RNG. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
val gaussian : Rng.t -> mean:float -> stddev:float -> float
val clamped_gaussian :
  Rng.t -> mean:float -> stddev:float -> lo:float -> hi:float -> float

val zipf : Rng.t -> n:int -> s:float -> unit -> int
(** Sampler of ranks [0 .. n-1] with Zipf exponent [s] (rank 0 most
    frequent). *)

val zipf_weights : n:int -> s:float -> float array

val weighted_choice : Rng.t -> (float * 'a) list -> 'a
(** Pick a value with probability proportional to its weight. *)
