let uniform rng ~lo ~hi = lo +. (Rng.float rng *. (hi -. lo))

let gaussian rng ~mean ~stddev =
  (* Box–Muller; one value per call keeps the generator stateless beyond
     the RNG itself. *)
  let u1 = max epsilon_float (Rng.float rng) in
  let u2 = Rng.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let clamped_gaussian rng ~mean ~stddev ~lo ~hi =
  Float.min hi (Float.max lo (gaussian rng ~mean ~stddev))

let zipf_weights ~n ~s =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let zipf rng ~n ~s =
  let weights = zipf_weights ~n ~s in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  fun () ->
    let u = Rng.float rng in
    let rec find lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < u then find (mid + 1) hi else find lo mid
    in
    find 0 (n - 1)

let weighted_choice rng pairs =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Dist.weighted_choice: weights sum to 0";
  let u = Rng.float rng *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Dist.weighted_choice: empty list"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if acc +. w >= u then v else pick (acc +. w) rest
  in
  pick 0.0 pairs
