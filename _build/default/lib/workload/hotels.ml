open Pref_relation

let schema =
  Schema.make
    [
      ("oid", Value.TInt);
      ("name", Value.TStr);
      ("price", Value.TInt);
      ("distance_to_beach", Value.TFloat);
      ("stars", Value.TInt);
      ("rating", Value.TFloat);
    ]

let name_pool =
  [|
    "Seaview"; "Grand"; "Palm"; "Harbor"; "Sunset"; "Royal"; "Astoria";
    "Bellevue"; "Laguna"; "Mirador";
  |]

let row rng oid =
  let stars = Dist.weighted_choice rng [ (1., 2); (3., 3); (4., 4); (2., 5) ] in
  let distance = Dist.uniform rng ~lo:0.05 ~hi:8.0 in
  (* The classic skyline trade-off: closer to the beach and more stars both
     push the price up, so cheap-and-close is rare. *)
  let price =
    let base =
      (40. *. float_of_int stars) +. (90. /. (0.4 +. distance)) +. 20.
    in
    int_of_float (Float.max 25. (Dist.gaussian rng ~mean:base ~stddev:18.))
  in
  let rating =
    Dist.clamped_gaussian rng
      ~mean:(1.4 +. (0.65 *. float_of_int stars))
      ~stddev:0.5 ~lo:1.0 ~hi:5.0
  in
  let name =
    Printf.sprintf "%s %d" (Rng.choice rng name_pool) (Rng.range rng ~lo:1 ~hi:99)
  in
  Tuple.make
    [
      Value.Int oid;
      Value.Str name;
      Value.Int price;
      Value.Float (Float.round (distance *. 100.) /. 100.);
      Value.Int stars;
      Value.Float (Float.round (rating *. 10.) /. 10.);
    ]

let relation ?(seed = 11) ~n () =
  let rng = Rng.create seed in
  Relation.make schema (List.init n (fun i -> row rng (i + 1)))
