lib/workload/synthetic.mli: Pref_relation Relation Rng
