lib/workload/hotels.ml: Dist Float List Pref_relation Printf Relation Rng Schema Tuple Value
