lib/workload/rng.mli:
