lib/workload/synthetic.ml: Array Dist Float List Pref_relation Printf Relation Rng Schema Tuple Value
