lib/workload/cars.ml: Dist Float List Pref_relation Relation Rng Schema Tuple Value
