lib/workload/hotels.mli: Pref_relation Relation Schema
