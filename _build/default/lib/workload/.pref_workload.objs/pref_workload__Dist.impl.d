lib/workload/dist.ml: Array Float List Rng
