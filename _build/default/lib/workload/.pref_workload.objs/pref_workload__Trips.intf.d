lib/workload/trips.mli: Pref_relation Relation Schema Value
