lib/workload/cars.mli: Pref_relation Relation Schema
