(** Synthetic trip offers for the paper's §6.1 Preference SQL date query
    ("start_date AROUND '2001/11/23' AND duration AROUND 14 BUT ONLY ...").
    Schema: oid, destination, start_date, duration, price; start dates fall
    in the 90 days from 2001-11-01. *)

open Pref_relation

val schema : Schema.t
val relation : ?seed:int -> n:int -> unit -> Relation.t

val date_of_offset : int -> Value.t
(** The date [days] after 2001-11-01 (exposed for tests). *)
