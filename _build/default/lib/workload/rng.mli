(** Deterministic pseudo-random numbers (splitmix64).

    Every workload takes an explicit seed so experiments are reproducible
    bit for bit across runs and platforms. *)

type t

val create : int -> t
val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound); raises on non-positive bound. *)

val bool : t -> bool

val range : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi], inclusive. *)

val choice : t -> 'a array -> 'a

val split : t -> t
(** Derive an independent generator. *)
