(** Synthetic hotels with the classic price / distance-to-beach / stars
    trade-off — the canonical skyline workload for the Pareto examples.
    Schema: oid, name, price, distance_to_beach, stars, rating. *)

open Pref_relation

val schema : Schema.t
val relation : ?seed:int -> n:int -> unit -> Relation.t
