(** Synthetic used-car databases — the paper's running example domain
    (Example 6, §6.1 queries) and the substitute for the proprietary
    dealership data of the Preference SQL deployments (see DESIGN.md).

    Correlations are realistic: older cars have higher mileage and lower
    prices, horsepower and premium makes raise prices, commission tracks
    price. Schema: oid, make, category, color, transmission, horsepower,
    price, mileage, year, commission. *)

open Pref_relation

val schema : Schema.t
val makes : string array
val categories : string array
val colors : string array
val transmissions : string array

val relation : ?seed:int -> n:int -> unit -> Relation.t
