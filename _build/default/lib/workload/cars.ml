open Pref_relation

let makes =
  [| "Audi"; "BMW"; "VW"; "Opel"; "Mercedes"; "Ford"; "Toyota"; "Honda" |]

let categories = [| "cabriolet"; "roadster"; "passenger"; "suv"; "van" |]

let colors =
  [| "red"; "blue"; "green"; "yellow"; "black"; "white"; "gray"; "silver" |]

let transmissions = [| "automatic"; "manual" |]

let schema =
  Schema.make
    [
      ("oid", Value.TInt);
      ("make", Value.TStr);
      ("category", Value.TStr);
      ("color", Value.TStr);
      ("transmission", Value.TStr);
      ("horsepower", Value.TInt);
      ("price", Value.TInt);
      ("mileage", Value.TInt);
      ("year", Value.TInt);
      ("commission", Value.TInt);
    ]

let row rng oid =
  let make = Rng.choice rng makes in
  let category = Rng.choice rng categories in
  let color = Rng.choice rng colors in
  let transmission = Rng.choice rng transmissions in
  let year = Rng.range rng ~lo:1992 ~hi:2001 in
  let horsepower =
    let base =
      match category with
      | "roadster" -> 160.
      | "cabriolet" -> 130.
      | "suv" -> 150.
      | _ -> 95.
    in
    int_of_float (Dist.clamped_gaussian rng ~mean:base ~stddev:35. ~lo:45. ~hi:400.)
  in
  (* Age drives mileage up and price down; horsepower and premium makes
     drive price up — the correlations the BMO result-size claims rest on. *)
  let age = 2001 - year in
  let mileage =
    int_of_float
      (Dist.clamped_gaussian rng
         ~mean:(15_000. *. float_of_int age +. 8_000.)
         ~stddev:12_000. ~lo:0. ~hi:300_000.)
  in
  let premium = match make with "Audi" | "BMW" | "Mercedes" -> 1.35 | _ -> 1.0 in
  let price =
    let base =
      premium
      *. (6_000. +. (230. *. float_of_int horsepower))
      *. Float.pow 0.88 (float_of_int age)
      -. (0.04 *. float_of_int mileage)
    in
    int_of_float (Float.max 500. (Dist.gaussian rng ~mean:base ~stddev:1_500.))
  in
  let commission =
    int_of_float
      (Float.max 100. (Dist.gaussian rng ~mean:(0.05 *. float_of_int price) ~stddev:150.))
  in
  Tuple.make
    [
      Value.Int oid;
      Value.Str make;
      Value.Str category;
      Value.Str color;
      Value.Str transmission;
      Value.Int horsepower;
      Value.Int price;
      Value.Int mileage;
      Value.Int year;
      Value.Int commission;
    ]

let relation ?(seed = 7) ~n () =
  let rng = Rng.create seed in
  Relation.make schema (List.init n (fun i -> row rng (i + 1)))
