(* Splitmix64: tiny, fast, high-quality, and fully deterministic across
   platforms — important so every experiment in EXPERIMENTS.md is exactly
   reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t =
  (* 53 uniformly random mantissa bits in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative in OCaml's 63-bit int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let split t = create (Int64.to_int (next_int64 t))
