(** Synthetic d-dimensional data in the three classic skyline-benchmark
    correlation families ([BKS01]): independent, correlated (small
    skylines) and anti-correlated (large skylines). Values are floats in
    [0, 1]; attribute names are [d0, d1, ...]. *)

open Pref_relation

type correlation = Independent | Correlated | Anti_correlated

val correlation_to_string : correlation -> string

val point : Rng.t -> dims:int -> correlation -> float array

val relation : ?seed:int -> n:int -> dims:int -> correlation -> Relation.t

val dim_names : int -> string list
(** [d0; ...; d(dims-1)], matching {!relation}'s schema. *)
