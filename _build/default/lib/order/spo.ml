type 'a t = {
  better : 'a -> 'a -> bool;
  equal : 'a -> 'a -> bool;
}

let make ?(equal = ( = )) better = { better; equal }

let better o = o.better
let equal_values o = o.equal

let cmp o x y = Cmp.of_relations ~better:o.better ~equal:o.equal x y

let dual o = { o with better = (fun x y -> o.better y x) }

let unranked o x y =
  (not (o.equal x y)) && (not (o.better x y)) && not (o.better y x)

(* Finite-carrier law checks.  These are the verification workhorses behind
   Proposition 1: every preference term must denote a strict partial order. *)

let exists_pair carrier p =
  List.exists (fun x -> List.exists (fun y -> p x y) carrier) carrier

let is_irreflexive o carrier = not (List.exists (fun x -> o.better x x) carrier)

let is_asymmetric o carrier =
  not (exists_pair carrier (fun x y -> o.better x y && o.better y x))

let is_transitive o carrier =
  not
    (List.exists
       (fun x ->
         List.exists
           (fun y ->
             o.better x y
             && List.exists (fun z -> o.better y z && not (o.better x z)) carrier)
           carrier)
       carrier)

let is_strict_partial_order o carrier =
  is_irreflexive o carrier && is_transitive o carrier

let is_chain o carrier =
  not
    (exists_pair carrier (fun x y ->
         (not (o.equal x y)) && (not (o.better x y)) && not (o.better y x)))

let is_antichain o carrier = not (exists_pair carrier (fun x y -> o.better x y))

let equivalent o1 o2 carrier =
  not
    (exists_pair carrier (fun x y -> o1.better x y <> o2.better x y))

let maximals o carrier =
  List.filter (fun v -> not (List.exists (fun w -> o.better w v) carrier)) carrier

let minimals o carrier =
  List.filter (fun v -> not (List.exists (fun w -> o.better v w) carrier)) carrier

let range o carrier =
  List.filter
    (fun x -> List.exists (fun y -> o.better x y || o.better y x) carrier)
    carrier

let disjoint o1 o2 carrier =
  let r1 = range o1 carrier and r2 = range o2 carrier in
  not (List.exists (fun x -> List.exists (o1.equal x) r2) r1)
