(** Strict partial orders over an arbitrary value type.

    A preference [P = (A, <_P)] (Definition 1) is, mathematically, a strict
    partial order: an irreflexive and transitive (hence asymmetric) relation.
    This module packages such a relation together with the equality of its
    carrier, and provides the finite-carrier checks used throughout the test
    suite to verify Proposition 1 ("each preference term defines a
    preference") and the chain/anti-chain special cases of Definition 3. *)

type 'a t

val make : ?equal:('a -> 'a -> bool) -> ('a -> 'a -> bool) -> 'a t
(** [make better] packages a strict order. [better x y] must mean "[x] is
    strictly better than [y]", i.e. [y <_P x]. [equal] defaults to [( = )]. *)

val better : 'a t -> 'a -> 'a -> bool
val equal_values : 'a t -> 'a -> 'a -> bool

val cmp : 'a t -> 'a -> 'a -> Cmp.t
(** Classify a pair into better / worse / equal / unranked. *)

val dual : 'a t -> 'a t
(** The dual preference [P^d] of Definition 3(c): reverses the order. *)

val unranked : 'a t -> 'a -> 'a -> bool
(** [unranked o x y] holds when the two distinct values are incomparable. *)

(** {1 Finite-carrier law checks}

    All checks below are exhaustive over the given carrier list and hence are
    meant for verification and testing, not for production evaluation. *)

val is_irreflexive : 'a t -> 'a list -> bool
val is_asymmetric : 'a t -> 'a list -> bool
val is_transitive : 'a t -> 'a list -> bool

val is_strict_partial_order : 'a t -> 'a list -> bool
(** Irreflexivity plus transitivity; asymmetry follows (Definition 1). *)

val is_chain : 'a t -> 'a list -> bool
(** Definition 3(a): every pair of distinct carrier values is ranked. *)

val is_antichain : 'a t -> 'a list -> bool
(** Definition 3(b): no pair is ranked. *)

val equivalent : 'a t -> 'a t -> 'a list -> bool
(** Definition 13 restricted to a finite carrier: the two orders agree on
    every pair. *)

val maximals : 'a t -> 'a list -> 'a list
(** [max(P)] restricted to the carrier: values with no better carrier value. *)

val minimals : 'a t -> 'a list -> 'a list

val range : 'a t -> 'a list -> 'a list
(** Definition 4: carrier values that appear in at least one ranked pair. *)

val disjoint : 'a t -> 'a t -> 'a list -> bool
(** Definition 4: the ranges of the two orders do not intersect. *)
