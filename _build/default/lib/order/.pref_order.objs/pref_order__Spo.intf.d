lib/order/spo.mli: Cmp
