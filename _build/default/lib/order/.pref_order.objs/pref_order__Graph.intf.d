lib/order/graph.mli: Fmt Format
