lib/order/cmp.ml: Fmt
