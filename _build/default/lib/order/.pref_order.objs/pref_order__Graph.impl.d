lib/order/graph.ml: Array Buffer Fmt List Printf
