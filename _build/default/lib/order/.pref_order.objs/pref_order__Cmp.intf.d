lib/order/cmp.mli: Fmt
